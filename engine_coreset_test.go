package fam

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// TestEngineCoresetSharedArtifact pins the engine-side coreset contract:
// the ε-kernel survivor index is a shared prep-cache artifact (own
// coreset|… key, filled once under singleflight, traced as a
// fill.coreset span), the engine answer is bit-identical to the one-shot
// path, and the cache accounts the entry's exact bytes — a plain []int,
// sized like the skyline index.
func TestEngineCoresetSharedArtifact(t *testing.T) {
	const sliceHeader = 24
	fixtures := engineFixtures(t)
	e := newTestEngine(t, fixtures)
	q := Query{Dataset: "hotels", K: 2, Seed: 7, SampleSize: 80, Coreset: true}

	res, tel, err := e.Select(TraceContext(context.Background(), ""), q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoresetSize <= 0 || res.CoresetSize > res.SkylineSize {
		t.Fatalf("implausible CoresetSize %d (skyline %d)", res.CoresetSize, res.SkylineSize)
	}
	if tel.Trace == nil || !strings.Contains(tel.Trace.Shape(), "fill.coreset") {
		t.Fatalf("cold coreset select traced no fill.coreset span:\n%v", tel.Trace)
	}

	// Bit-identity with the one-shot path on the same dataset.
	var hotels *Dataset
	var dist Distribution
	for _, f := range fixtures {
		if f.name == "hotels" {
			hotels, dist = f.ds, f.dist
		}
	}
	oneShot := q
	oneShot.Dataset, oneShot.Data, oneShot.Dist = "", hotels, dist
	want, _, err := Select(context.Background(), oneShot, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CoresetSize != want.CoresetSize || res.SkylineSize != want.SkylineSize {
		t.Fatalf("engine (coreset %d of %d) diverged from one-shot (coreset %d of %d)",
			res.CoresetSize, res.SkylineSize, want.CoresetSize, want.SkylineSize)
	}
	if len(res.Indices) != len(want.Indices) {
		t.Fatalf("engine indices %v, one-shot %v", res.Indices, want.Indices)
	}
	for i := range want.Indices {
		if res.Indices[i] != want.Indices[i] {
			t.Fatalf("engine indices %v, one-shot %v", res.Indices, want.Indices)
		}
	}
	if res.Metrics.ARR != want.Metrics.ARR {
		t.Fatalf("engine ARR %v, one-shot %v", res.Metrics.ARR, want.Metrics.ARR)
	}

	// Exact byte accounting: the cold select filled exactly four prep
	// artifacts — skyline index, sampled functions, coreset index, and
	// the built instance — and every one is sized exactly. The coreset
	// entry is a []int like the skyline: sliceHeader + len*8.
	s := e.Stats()
	if s.PrepCache.Entries != 4 || s.PrepCache.Misses != 4 {
		t.Fatalf("cold coreset select: prep entries=%d misses=%d, want 4/4", s.PrepCache.Entries, s.PrepCache.Misses)
	}
	N, d := int64(q.SampleSize), int64(hotels.Dim())
	sky, cs := int64(res.SkylineSize), int64(res.CoresetSize)
	skyBytes := int64(sliceHeader) + sky*8
	funcsBytes := int64(sliceHeader) + N*16 + N*(sliceHeader+d*8) // N Linear funcs, d-dim weights
	coresetBytes := int64(sliceHeader) + cs*8
	instBytes := int64(sliceHeader*4) + cs*8 + N*16 + // prepared: candidates + interface headers
		3*sliceHeader + N*cs*8 + N*8 + N*4 // instance: matrix, satD, bestD
	if wantBytes := skyBytes + funcsBytes + coresetBytes + instBytes; s.PrepCache.Bytes != wantBytes {
		t.Fatalf("prep cache bytes = %d, want exactly %d (sky %d + funcs %d + coreset %d + inst %d)",
			s.PrepCache.Bytes, wantBytes, skyBytes, funcsBytes, coresetBytes, instBytes)
	}

	// A different K over the same (dataset, seed, N, eps) reuses every
	// shared artifact — the coreset entry included — filling nothing new.
	if _, _, err := e.Select(context.Background(), Query{Dataset: "hotels", K: 3, Seed: 7, SampleSize: 80, Coreset: true}, Exec{}); err != nil {
		t.Fatal(err)
	}
	s2 := e.Stats()
	if s2.PrepCache.Misses != s.PrepCache.Misses || s2.PrepCache.Entries != s.PrepCache.Entries {
		t.Fatalf("second coreset query refilled prep artifacts: misses %d→%d entries %d→%d",
			s.PrepCache.Misses, s2.PrepCache.Misses, s.PrepCache.Entries, s2.PrepCache.Entries)
	}
	if s2.PrepCache.Hits <= s.PrepCache.Hits {
		t.Fatalf("second coreset query hit no shared artifacts: hits %d→%d", s.PrepCache.Hits, s2.PrepCache.Hits)
	}
}

// TestSelectFloat32Tolerance pins the float32 storage-mode contract at
// the public layer: the opt-in changes the matrix precision only, so
// reported statistics stay within single-precision rounding of the
// float64 answer (selection may legitimately flip on a near-tie; the
// statistics contract is tolerance, not bit-identity).
func TestSelectFloat32Tolerance(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(200, 3, Anticorrelated, 5)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{GreedyShrink, GreedyShrinkLazy, GreedyAdd} {
		q := Query{Data: ds, Dist: dist, K: 4, Algorithm: algo, Seed: 2, SampleSize: 150}
		f64, _, err := Select(ctx, q, Exec{})
		if err != nil {
			t.Fatalf("%s float64: %v", algo, err)
		}
		q.Float32 = true
		f32, _, err := Select(ctx, q, Exec{})
		if err != nil {
			t.Fatalf("%s float32: %v", algo, err)
		}
		const tol = 1e-5 // single-precision rounding over a 150×|sky| matrix
		if math.Abs(f32.Metrics.ARR-f64.Metrics.ARR) > tol {
			t.Fatalf("%s: float32 ARR %v drifted beyond %v from float64 %v",
				algo, f32.Metrics.ARR, tol, f64.Metrics.ARR)
		}
		if math.Abs(f32.Metrics.MaxRR-f64.Metrics.MaxRR) > tol {
			t.Fatalf("%s: float32 MaxRR %v drifted beyond %v from float64 %v",
				algo, f32.Metrics.MaxRR, tol, f64.Metrics.MaxRR)
		}
	}
}

// The coreset and float32 knobs validate like every other Query field:
// ErrBadOptions, mappable to a 400.
func TestCoresetKnobValidation(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(30, 2, Independent, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	base := Query{Data: ds, Dist: dist, K: 2, SampleSize: 40}
	for _, tc := range []struct {
		name string
		mod  func(*Query)
	}{
		{"eps without coreset", func(q *Query) { q.CoresetEps = 0.1 }},
		{"eps negative", func(q *Query) { q.Coreset = true; q.CoresetEps = -0.1 }},
		{"eps at one", func(q *Query) { q.Coreset = true; q.CoresetEps = 1 }},
		{"eps NaN", func(q *Query) { q.Coreset = true; q.CoresetEps = math.NaN() }},
		{"coreset on evaluate", func(q *Query) { q.K = 0; q.ExplicitSet = []int{0, 1}; q.Coreset = true }},
	} {
		q := base
		tc.mod(&q)
		var serr error
		if q.K > 0 {
			_, _, serr = Select(ctx, q, Exec{})
		} else {
			_, serr = Evaluate(ctx, q, Exec{})
		}
		if !errors.Is(serr, ErrBadOptions) {
			t.Errorf("%s: err = %v, want ErrBadOptions", tc.name, serr)
		}
	}
	// The default eps kicks in when the knob is on with eps zero.
	q := base
	q.Coreset = true
	res, _, err := Select(ctx, q, Exec{})
	if err != nil {
		t.Fatalf("coreset with default eps: %v", err)
	}
	if res.CoresetSize < 0 {
		t.Fatalf("coreset run reported CoresetSize %d", res.CoresetSize)
	}
}
