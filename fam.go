// Package fam is a library for computing average-regret-ratio minimizing
// sets in databases, reproducing "Finding Average Regret Ratio Minimizing
// Set in Database" (Zeighami & Wong, ICDE 2019).
//
// Given a database of points, a distribution Θ over user utility
// functions, and a budget k, fam selects the k points that minimize the
// expected regret ratio of a random user — how much worse their best
// selected point is than their best database point, in relative terms.
//
// The primary algorithm is GREEDY-SHRINK (supermodular greedy removal with
// the paper's best-point-caching and lazy-evaluation improvements); an
// exact dynamic program is available for 2-d databases under uniform
// linear preferences, a brute-force solver for small instances, and three
// baselines from the literature (MRR-GREEDY, SKY-DOM, K-HIT) for
// comparison studies.
//
// The API splits every request into two halves: a Query (the semantic
// problem — dataset, Θ, k, algorithm, sampling parameters, seed) and an
// Exec (execution policy — worker bounds, batching knobs). Results
// depend only on the Query; the Exec moves only the Telemetry returned
// alongside. Basic usage:
//
//	ds, _ := fam.Hotels(200, 1)
//	dist, _ := fam.UniformLinear(ds.Dim())
//	res, _, err := fam.Select(ctx, fam.Query{Data: ds, Dist: dist, K: 5, Seed: 7}, fam.Exec{})
//	// res.Indices are the chosen rows; res.Metrics.ARR their average
//	// regret ratio.
//
// For serving workloads, fam.Engine answers Queries against registered
// datasets with shared preprocessing and result caches, and
// Engine.SelectBatch amortizes one preprocessing pass across a k-sweep
// or algorithm panel.
package fam

import (
	"fmt"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/utility"
)

// Dataset is a named point set with optional attribute and row labels.
// Larger attribute values are better.
type Dataset = dataset.Dataset

// Distribution is a probability distribution Θ over utility functions.
type Distribution = utility.Distribution

// UtilityFunc scores database points for one user.
type UtilityFunc = utility.Func

// Metrics bundles the quality statistics of a selection: average regret
// ratio, its variance/standard deviation and percentile curve, the sampled
// maximum regret ratio, and the degenerate-user count.
type Metrics = core.Metrics

// ShrinkStats reports the work GREEDY-SHRINK performed (iterations,
// evaluations, lazy skips, user rescans).
type ShrinkStats = core.ShrinkStats

// Algorithm selects the solver used by Select.
type Algorithm int

const (
	// GreedyShrink is the paper's algorithm with the fastest evaluation
	// strategy (delta). The default.
	GreedyShrink Algorithm = iota
	// GreedyShrinkLazy is GREEDY-SHRINK with the paper-faithful lazy
	// evaluation (Improvements 1 and 2).
	GreedyShrinkLazy
	// GreedyShrinkNaive recomputes every candidate from scratch; the
	// reference implementation for tests and ablations.
	GreedyShrinkNaive
	// DP2D is the exact dynamic program for 2-d databases under linear
	// utilities with weights uniform on [0,1]².
	DP2D
	// BruteForce enumerates all subsets; exact on the sampled objective,
	// only feasible for small instances.
	BruteForce
	// MRRGreedy is the max-regret-ratio greedy baseline (LP-exact for
	// monotone linear distributions, sampled otherwise).
	MRRGreedy
	// SkyDom is the dominance-maximizing representative skyline baseline.
	SkyDom
	// KHit is the favorite-point-probability baseline.
	KHit
	// GreedyAdd is the insertion-based greedy (the lineage of the authors'
	// SIGMOD 2016 poster): grow the set by the point that lowers arr the
	// most, with lazy-greedy acceleration. Faster than GreedyShrink when
	// k ≪ n, without Theorem 3's removal-side guarantee.
	GreedyAdd
)

// String returns the algorithm's short name as used in experiment tables.
func (a Algorithm) String() string {
	switch a {
	case GreedyShrink:
		return "greedy-shrink"
	case GreedyShrinkLazy:
		return "greedy-shrink-lazy"
	case GreedyShrinkNaive:
		return "greedy-shrink-naive"
	case DP2D:
		return "dp"
	case BruteForce:
		return "brute-force"
	case MRRGreedy:
		return "mrr-greedy"
	case SkyDom:
		return "sky-dom"
	case KHit:
		return "k-hit"
	case GreedyAdd:
		return "greedy-add"
	default:
		return "unknown"
	}
}

// MarshalText encodes the algorithm as its short name, so JSON requests
// and responses carry "greedy-shrink" rather than an opaque int.
// Marshaling an out-of-range value is an error (wrapping ErrBadOptions)
// rather than silently emitting "unknown".
func (a Algorithm) MarshalText() ([]byte, error) {
	if a < GreedyShrink || a > GreedyAdd {
		return nil, fmt.Errorf("%w: cannot marshal unknown algorithm %d", ErrBadOptions, int(a))
	}
	return []byte(a.String()), nil
}

// UnmarshalText decodes an algorithm short name via ParseAlgorithm
// (case-insensitive), so `{"algorithm": "greedy-add"}` round-trips
// through encoding/json and CLI flag values parse with the same rules.
func (a *Algorithm) UnmarshalText(text []byte) error {
	parsed, err := ParseAlgorithm(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}
