package fam

import (
	"io"

	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/gmm"
	"github.com/regretlab/fam/internal/mf"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

// Correlation selects the attribute dependence of Synthetic datasets.
type Correlation = dataset.Correlation

// Synthetic data families in the style of the skyline-operator generator,
// plus the spherical (convex-front) variant from the regret literature.
const (
	Independent    = dataset.Independent
	Correlated     = dataset.Correlated
	Anticorrelated = dataset.Anticorrelated
	Spherical      = dataset.Spherical
)

// Synthetic generates n points of dimension d with the given correlation
// structure.
func Synthetic(n, d int, corr Correlation, seed uint64) (*Dataset, error) {
	return dataset.Synthetic(n, d, corr, seed)
}

// Hotels generates the hotel-booking scenario dataset of the paper's
// introduction.
func Hotels(n int, seed uint64) (*Dataset, error) { return dataset.Hotels(n, seed) }

// SimulatedNBA generates the 15-attribute NBA-style stand-in dataset.
func SimulatedNBA(n int, seed uint64) (*Dataset, error) { return dataset.SimulatedNBA(n, seed) }

// SimulatedNBA22 generates the 22-attribute NBA stand-in used by the
// Table II experiment.
func SimulatedNBA22(n int, seed uint64) (*Dataset, error) { return dataset.SimulatedNBA22(n, seed) }

// SimulatedHousehold generates the 6-attribute household stand-in.
func SimulatedHousehold(n int, seed uint64) (*Dataset, error) {
	return dataset.SimulatedHousehold(n, seed)
}

// SimulatedForestCover generates the 11-attribute Forest-Cover stand-in.
func SimulatedForestCover(n int, seed uint64) (*Dataset, error) {
	return dataset.SimulatedForestCover(n, seed)
}

// SimulatedUSCensus generates the 10-attribute US-Census stand-in.
func SimulatedUSCensus(n int, seed uint64) (*Dataset, error) {
	return dataset.SimulatedUSCensus(n, seed)
}

// LoadCSV parses a dataset from CSV (header row required; a leading
// "label" column becomes row labels).
func LoadCSV(r io.Reader, name string) (*Dataset, error) { return dataset.ReadCSV(r, name) }

// SaveCSV writes the dataset as CSV with a header row.
func SaveCSV(w io.Writer, ds *Dataset) error { return dataset.WriteCSV(w, ds) }

// UniformLinear returns Θ with linear utilities whose weights are uniform
// on the probability simplex — the standard model when nothing is known
// about users.
func UniformLinear(d int) (Distribution, error) { return utility.NewUniformSimplexLinear(d) }

// UniformBoxLinear returns Θ with linear utilities whose weights are
// uniform on [0,1]^d — the measure the 2-d dynamic program optimizes
// exactly.
func UniformBoxLinear(d int) (Distribution, error) { return utility.NewUniformBoxLinear(d) }

// CESUniform returns Θ with concave CES utilities (rho in (0,1]) and
// simplex-uniform weights — a non-linear monotone preference model.
func CESUniform(d int, rho float64) (Distribution, error) { return utility.NewCESUniform(d, rho) }

// TableUsers returns a discrete Θ over explicit per-point utility vectors
// with the given probabilities (the countable-F case of the paper's
// Appendix A). monotone declares whether the tables respect dominance.
func TableUsers(tables [][]float64, probs []float64, monotone bool) (Distribution, error) {
	funcs := make([]UtilityFunc, len(tables))
	for i, tu := range tables {
		funcs[i] = utility.Table{U: tu}
	}
	return utility.NewDiscrete(funcs, probs, monotone)
}

// RatingsPipeline holds the artifacts of the Yahoo!-style learning
// pipeline: the matrix-factorization model, the latent-space dataset whose
// points are items, and the learned non-uniform distribution Θ over
// latent-linear utility functions.
type RatingsPipeline struct {
	Model     *mf.Model
	Mixture   *gmm.Model
	Items     *Dataset
	Dist      Distribution
	TrainRMSE float64
}

// Rating is one (user, item, score) observation.
type Rating = dataset.Rating

// RatingsPipelineConfig configures LearnDistribution.
type RatingsPipelineConfig struct {
	NumUsers   int
	NumItems   int
	Rank       int // latent dimensionality of the factorization
	Components int // GMM components; 0 means the paper's 5
	Epochs     int // SGD epochs; 0 means a default of 60
	Seed       uint64
}

// LearnDistribution runs the Section V-B2 pipeline on a sparse ratings
// matrix: matrix factorization completes the matrix, a Gaussian mixture is
// fitted over the user latent vectors, and the returned dataset/Θ pair
// poses FAM in the latent item space, where each sampled user is a linear
// functional drawn from the mixture.
func LearnDistribution(ratings []Rating, cfg RatingsPipelineConfig) (*RatingsPipeline, error) {
	data := &dataset.RatingsData{
		NumUsers: cfg.NumUsers,
		NumItems: cfg.NumItems,
		Ratings:  ratings,
	}
	mfCfg := mf.DefaultConfig(cfg.Rank)
	if cfg.Epochs > 0 {
		mfCfg.Epochs = cfg.Epochs
	}
	mfCfg.Seed = cfg.Seed
	model, err := mf.Train(data, mfCfg)
	if err != nil {
		return nil, err
	}
	rmse, err := model.RMSE(ratings)
	if err != nil {
		return nil, err
	}

	gmmCfg := gmm.DefaultConfig()
	if cfg.Components > 0 {
		gmmCfg.Components = cfg.Components
	}
	gmmCfg.Seed = cfg.Seed + 1
	mixture, err := gmm.Fit(model.UserVectors(), gmmCfg)
	if err != nil {
		return nil, err
	}

	itemPts := model.ItemPoints()
	items := &Dataset{Name: "latent-items", Points: itemPts}
	dist, err := utility.NewLatentLinear(latentSampler{m: mixture}, 0)
	if err != nil {
		return nil, err
	}
	return &RatingsPipeline{
		Model:     model,
		Mixture:   mixture,
		Items:     items,
		Dist:      dist,
		TrainRMSE: rmse,
	}, nil
}

// latentSampler adapts GMM samples (user latent vectors) to the weight
// layout of the latent item points.
type latentSampler struct {
	m *gmm.Model
}

func (s latentSampler) SampleVector(g *rng.RNG) []float64 {
	return mf.WeightVector(s.m.SampleVector(g))
}

func (s latentSampler) VectorDim() int { return s.m.VectorDim() + 1 }
