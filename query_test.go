package fam

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

// TestQueryFingerprintCanonical: the fingerprint folds the sampling
// parameters to their resolved form and excludes everything that is
// execution policy, so semantically equal queries share one identity.
func TestQueryFingerprintCanonical(t *testing.T) {
	base := Query{Dataset: "hotels", K: 5, Seed: 7}

	// ε = σ = 0.1 resolves to N = 691, so defaulted and explicit forms
	// collapse to one fingerprint.
	explicit := base
	explicit.Epsilon, explicit.Sigma = 0.1, 0.1
	fixed := base
	fixed.SampleSize = 691
	fpBase, err := base.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	for name, q := range map[string]Query{"explicit eps/sigma": explicit, "explicit N": fixed} {
		fp, err := q.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp != fpBase {
			t.Fatalf("%s: fingerprint %q != canonical %q", name, fp, fpBase)
		}
	}

	// Semantic fields move the fingerprint…
	for name, mod := range map[string]func(*Query){
		"K":           func(q *Query) { q.K = 6 },
		"Algorithm":   func(q *Query) { q.Algorithm = GreedyAdd },
		"Seed":        func(q *Query) { q.Seed = 8 },
		"SampleSize":  func(q *Query) { q.SampleSize = 100 },
		"Skyline":     func(q *Query) { q.DisableSkyline = true },
		"CacheBudget": func(q *Query) { q.CacheBudget = -1 },
		"Dataset":     func(q *Query) { q.Dataset = "nba" },
		"ExplicitSet": func(q *Query) { q.ExplicitSet = []int{1, 2} },
	} {
		q := base
		mod(&q)
		fp, err := q.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if fp == fpBase {
			t.Fatalf("changing %s did not change the fingerprint %q", name, fp)
		}
	}

	// …and Exec never enters it at all: the fingerprint is a method on
	// Query alone, which is the whole point of the split.

	// Invalid sampling parameters and unknown algorithms are rejected.
	bad := base
	bad.SampleSize = -1
	if _, err := bad.Fingerprint(); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("negative sample size: %v", err)
	}
	bad = base
	bad.Algorithm = Algorithm(99)
	if _, err := bad.Fingerprint(); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unknown algorithm: %v", err)
	}
}

// TestSelectOptionsSplit pins the shim mapping: every semantic field
// lands in the Query, every execution field in the Exec.
func TestSelectOptionsSplit(t *testing.T) {
	opts := SelectOptions{
		K: 5, Algorithm: GreedyShrinkLazy, Epsilon: 0.2, Sigma: 0.3,
		SampleSize: 42, Seed: 9, DisableSkyline: true, CacheBudget: 77,
		ExactDiscrete: true, Parallelism: 8, LazyBatch: 4,
	}
	q, exec := opts.Split()
	want := Query{
		K: 5, Algorithm: GreedyShrinkLazy, Epsilon: 0.2, Sigma: 0.3,
		SampleSize: 42, Seed: 9, DisableSkyline: true, CacheBudget: 77,
		ExactDiscrete: true,
	}
	if q.K != want.K || q.Algorithm != want.Algorithm || q.Epsilon != want.Epsilon ||
		q.Sigma != want.Sigma || q.SampleSize != want.SampleSize || q.Seed != want.Seed ||
		q.DisableSkyline != want.DisableSkyline || q.CacheBudget != want.CacheBudget ||
		q.ExactDiscrete != want.ExactDiscrete {
		t.Fatalf("Split query = %+v, want %+v", q, want)
	}
	if q.Data != nil || q.Dist != nil || q.Dataset != "" || q.ExplicitSet != nil {
		t.Fatalf("Split must not bind data: %+v", q)
	}
	if exec.Parallelism != 8 || exec.LazyBatch != 4 {
		t.Fatalf("Split exec = %+v", exec)
	}
}

// TestShimMatchesSplitAPI: the deprecated combined entry point and the
// split API must return bit-identical outcomes — the shim is a pure
// repackaging.
func TestShimMatchesSplitAPI(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	opts := SelectOptions{K: 4, Seed: 3, SampleSize: 150, Algorithm: GreedyAdd, Parallelism: 2}

	legacy, err := SelectWithOptions(ctx, ds, dist, opts)
	if err != nil {
		t.Fatal(err)
	}
	q, exec := opts.Split()
	q.Data, q.Dist = ds, dist
	res, tel, err := Select(ctx, q, exec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != len(legacy.Indices) {
		t.Fatalf("split %v vs shim %v", res.Indices, legacy.Indices)
	}
	for i := range legacy.Indices {
		if res.Indices[i] != legacy.Indices[i] || res.Labels[i] != legacy.Labels[i] {
			t.Fatalf("split %v vs shim %v", res.Indices, legacy.Indices)
		}
	}
	if res.Metrics.ARR != legacy.Metrics.ARR || res.SkylineSize != legacy.SkylineSize {
		t.Fatalf("split metrics %v vs shim %v", res.Metrics.ARR, legacy.Metrics.ARR)
	}
	if tel.Stats != legacy.Stats {
		t.Fatalf("split stats %+v vs shim %+v", tel.Stats, legacy.Stats)
	}

	m, err := EvaluateWithOptions(ctx, ds, dist, legacy.Indices, opts)
	if err != nil {
		t.Fatal(err)
	}
	q.ExplicitSet = legacy.Indices
	m2, err := Evaluate(ctx, q, exec)
	if err != nil {
		t.Fatal(err)
	}
	if m.ARR != m2.ARR || m.VRR != m2.VRR {
		t.Fatalf("evaluate split %v vs shim %v", m2, m)
	}

	// Select rejects evaluation queries instead of silently ignoring the
	// set.
	if _, _, err := Select(ctx, q, exec); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("Select with ExplicitSet: %v", err)
	}
}

// TestAlgorithmTextRoundTrip: MarshalText/UnmarshalText must agree with
// String/ParseAlgorithm so JSON and CLI surfaces speak names, not ints.
func TestAlgorithmTextRoundTrip(t *testing.T) {
	for a := GreedyShrink; a <= GreedyAdd; a++ {
		text, err := a.MarshalText()
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if string(text) != a.String() {
			t.Fatalf("MarshalText %q != String %q", text, a.String())
		}
		var back Algorithm
		if err := back.UnmarshalText(text); err != nil {
			t.Fatal(err)
		}
		if back != a {
			t.Fatalf("round trip %v -> %v", a, back)
		}
	}
	if _, err := Algorithm(99).MarshalText(); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("marshal unknown: %v", err)
	}
	var a Algorithm
	if err := a.UnmarshalText([]byte("nope")); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unmarshal unknown: %v", err)
	}

	// Through encoding/json, as the v2 API uses it.
	var payload struct {
		Algorithm Algorithm `json:"algorithm"`
	}
	if err := json.Unmarshal([]byte(`{"algorithm":"GREEDY-Add"}`), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Algorithm != GreedyAdd {
		t.Fatalf("json algorithm = %v", payload.Algorithm)
	}
	out, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"algorithm":"greedy-add"}` {
		t.Fatalf("json out = %s", out)
	}
}
