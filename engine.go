package fam

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/coreset"
	ecache "github.com/regretlab/fam/internal/engine"
	"github.com/regretlab/fam/internal/obs"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/sched"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

// Engine is the long-lived serving counterpart of the one-shot Select: a
// process-wide worker pool multiplexed across all concurrent queries, a
// registry of named datasets, a preprocessing cache that builds each
// expensive per-dataset artifact exactly once (the skyline index, the
// sampled utility functions, and the materialized utility matrix — each
// under singleflight deduplication, so a thundering herd of identical
// cold queries triggers one build), and a bounded result cache for whole
// query answers.
//
// Engine queries are (Query, Exec) pairs: the Query names a registered
// dataset and fixes the semantic problem, the Exec sets execution policy
// only. The result cache keys on Query.Fingerprint() alone — Results are
// pure functions of the Query, so equal-fingerprint queries share one
// cache entry no matter how their Parallelism or LazyBatch differ.
//
// Determinism: an Engine-served Result is bit-identical to a fresh
// one-shot Select with the same Query at any concurrency — same Indices,
// Labels, Metrics, ExactARR, and SkylineSize. Only the Telemetry differs
// (cached work is not re-done; a result-cache hit reports its own near-
// zero execution and carries the filling execution's Telemetry under
// Telemetry.Replay) and Result.Cached marks answers served from the
// result cache.
//
// All methods are safe for concurrent use. Close releases the pool;
// queries issued after Close return ErrEngineClosed.
type Engine struct {
	pool    *par.Pool
	prep    *ecache.Cache
	results *ecache.Cache

	mu       sync.RWMutex
	datasets map[string]*registration

	selects      atomic.Uint64
	evaluates    atomic.Uint64
	batches      atomic.Uint64
	batchQueries atomic.Uint64
	// sheds counts queries rejected by engine admission control (deadline
	// already passed, grant queue over the request's MaxQueue);
	// plannedDedups and planGroups report the batch planner's work.
	sheds         atomic.Uint64
	plannedDedups atomic.Uint64
	planGroups    atomic.Uint64
	closed        atomic.Bool
	start         time.Time
}

// registration binds a registered dataset to its distribution Θ. Both
// are fixed at registration time: the pair is what preprocessing is
// keyed on.
type registration struct {
	name string
	ds   *Dataset
	dist Distribution
}

// EngineConfig configures NewEngine. The zero value is serviceable:
// GOMAXPROCS pool workers, default cache capacities, no byte budgets,
// no expiry.
type EngineConfig struct {
	// Workers sizes the shared worker pool every query's shard fan-outs
	// are multiplexed over (0 = GOMAXPROCS). Individual queries still
	// bound their own shard width with Exec.Parallelism; the pool bounds
	// the helper goroutines of the whole process.
	Workers int
	// PrepCacheSize bounds the preprocessing cache in entries — each
	// entry is one skyline index, one sampled function set, or one built
	// instance (the utility matrix dominates). 0 = default (256),
	// negative = unbounded.
	PrepCacheSize int
	// ResultCacheSize bounds the result cache in entries. 0 = default
	// (1024), negative = unbounded.
	ResultCacheSize int
	// PrepCacheBytes and ResultCacheBytes additionally bound each cache
	// by estimated resident bytes (0 = no byte budget). Long-running
	// multi-tenant processes use these to cap memory instead of guessing
	// an entry count; the least recently used entries are evicted first.
	PrepCacheBytes   int64
	ResultCacheBytes int64
	// PrepCacheTTL and ResultCacheTTL expire entries that have lived
	// longer than the given duration (0 = never expire). Expiry is lazy:
	// an expired entry is dropped and rebuilt by the next lookup that
	// touches it.
	PrepCacheTTL   time.Duration
	ResultCacheTTL time.Duration
	// GrantPolicy selects how the shared pool orders queued helper
	// requests under load: "edf" (the default — weighted priority
	// classes, earliest-deadline-first within a class, arrival order as
	// the tie-break) or "fifo" (strict arrival order, the pre-scheduling
	// behavior). Unknown names fall back to the default.
	GrantPolicy string
}

// Grant policy names accepted by EngineConfig.GrantPolicy.
const (
	GrantPolicyEDF  = "edf"
	GrantPolicyFIFO = "fifo"
)

// DefaultPrepCacheSize and DefaultResultCacheSize are the zero-value
// capacities of EngineConfig.
const (
	DefaultPrepCacheSize   = 256
	DefaultResultCacheSize = 1024
)

// ErrUnknownDataset is returned by Engine queries naming an unregistered
// dataset.
var ErrUnknownDataset = errors.New("fam: unknown dataset")

// ErrDuplicateDataset is returned by Register when the name is taken.
var ErrDuplicateDataset = errors.New("fam: dataset already registered")

// ErrEngineClosed is returned by queries against a closed Engine.
var ErrEngineClosed = errors.New("fam: engine is closed")

// NewEngine starts an Engine. Callers own its lifecycle: Close it when
// the serving process shuts down.
func NewEngine(cfg EngineConfig) *Engine {
	var policy sched.Policy
	if cfg.GrantPolicy == GrantPolicyFIFO {
		policy = sched.FIFO{}
	}
	return &Engine{
		pool: par.NewPoolConfig(par.Config{Size: cfg.Workers, Policy: policy}),
		prep: ecache.NewCacheConfig(ecache.Config{
			MaxEntries: capacity(cfg.PrepCacheSize, DefaultPrepCacheSize),
			MaxBytes:   cfg.PrepCacheBytes,
			TTL:        cfg.PrepCacheTTL,
			Size:       prepSize,
		}),
		results: ecache.NewCacheConfig(ecache.Config{
			MaxEntries: capacity(cfg.ResultCacheSize, DefaultResultCacheSize),
			MaxBytes:   cfg.ResultCacheBytes,
			TTL:        cfg.ResultCacheTTL,
			Size:       answerSize,
		}),
		datasets: make(map[string]*registration),
		start:    time.Now(),
	}
}

func capacity(configured, def int) int {
	switch {
	case configured == 0:
		return def
	case configured < 0:
		return 0 // unbounded
	default:
		return configured
	}
}

// Close releases the worker pool. In-flight queries finish (their
// remaining shard work runs inline); later queries fail with
// ErrEngineClosed. Idempotent.
func (e *Engine) Close() {
	e.closed.Store(true)
	e.pool.Close()
}

// Register adds a named dataset with its utility distribution Θ. The
// pair is immutable once registered — preprocessing artifacts are cached
// under the name, so re-registering a name is an error rather than a
// silent cache poisoning.
func (e *Engine) Register(name string, ds *Dataset, dist Distribution) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if name == "" {
		return fmt.Errorf("%w: dataset name must be non-empty", ErrBadOptions)
	}
	if ds == nil || dist == nil {
		return ErrNilArgument
	}
	if err := ds.Validate(); err != nil {
		return err
	}
	if d := dist.Dim(); d != 0 && d != ds.Dim() {
		return fmt.Errorf("%w: distribution dimension %d != dataset dimension %d", ErrBadOptions, d, ds.Dim())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.datasets[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	e.datasets[name] = &registration{name: name, ds: ds, dist: dist}
	return nil
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name         string `json:"name"`
	N            int    `json:"n"`
	Dim          int    `json:"dim"`
	Distribution string `json:"distribution"`
}

// Datasets lists the registered datasets sorted by name.
func (e *Engine) Datasets() []DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(e.datasets))
	for _, reg := range e.datasets {
		out = append(out, DatasetInfo{
			Name:         reg.name,
			N:            reg.ds.N(),
			Dim:          reg.ds.Dim(),
			Distribution: reg.dist.Name(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (e *Engine) lookup(name string) (*registration, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	reg, ok := e.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return reg, nil
}

// resolve binds an Engine query to its registration: the Query must name
// a registered dataset and must not carry inline data.
func (e *Engine) resolve(q Query) (*registration, error) {
	if q.Data != nil || q.Dist != nil {
		return nil, fmt.Errorf("%w: Engine queries resolve data from the registry; leave Query.Data and Query.Dist nil", ErrBadOptions)
	}
	if q.Dataset == "" {
		return nil, fmt.Errorf("%w: Engine queries must name a registered dataset", ErrBadOptions)
	}
	return e.lookup(q.Dataset)
}

// answer is what the result cache stores: the pure Result plus the
// Telemetry of the execution that computed it.
type answer struct {
	res *Result
	tel *Telemetry
}

// Select answers a selection query against a registered dataset under
// the given execution policy. Cold queries build (and cache) the
// preprocessing artifacts and the result; warm queries with the same
// Fingerprint are answered from the result cache (Result.Cached = true,
// the original computation's Telemetry under Telemetry.Replay)
// regardless of their Exec, and queries that share preprocessing but
// differ in (K, Algorithm, …) skip straight to the query phase on the
// cached instance.
func (e *Engine) Select(ctx context.Context, q Query, exec Exec) (*Result, *Telemetry, error) {
	if e.closed.Load() {
		return nil, nil, ErrEngineClosed
	}
	if q.ExplicitSet != nil {
		return nil, nil, fmt.Errorf("%w: ExplicitSet makes this an evaluation query; call Evaluate", ErrBadOptions)
	}
	reg, err := e.resolve(q)
	if err != nil {
		return nil, nil, err
	}
	norm, err := normalizeQuery(reg.ds, reg.dist, q, true)
	if err != nil {
		return nil, nil, err
	}
	fp, err := q.Fingerprint()
	if err != nil {
		return nil, nil, err
	}
	ctx, span := obs.Start(ctx, "engine.select")
	span.SetAttr("dataset", q.Dataset)
	span.SetAttr("algorithm", q.Algorithm.String())
	span.SetAttrInt("k", q.K)
	defer span.End()
	if err := e.admitTraced(ctx, exec); err != nil {
		return nil, nil, err
	}
	// Per-query queue-wait attribution: every helper grant of this
	// query's own fan-outs adds its enqueue-to-grant latency here, so
	// Telemetry.QueueWait is the query's wait, not an engine-wide share.
	ownWait := new(sched.WaitCounter)
	exec = exec.withWait(ownWait)
	// The requester waits under its deadline; the detached fill keeps
	// the priority class and the deadline as a soft ordering signal
	// only (a fill that outlives its triggering request is shared
	// infrastructure — completing and caching it serves the next
	// arrival).
	ctx, cancel := exec.schedContext(ctx)
	defer cancel()
	e.selects.Add(1)

	lctx, lookup := obs.Start(ctx, "cache.result")
	lookup.SetAttr("key", "res|"+fp)
	v, hit, err := e.results.Do(lctx, "res|"+fp, func(fillCtx context.Context) (any, error) {
		fillCtx = sched.NewContext(fillCtx, exec.fillAttrs())
		fillCtx, fill := obs.Start(fillCtx, "fill.result")
		defer fill.End()
		prepStart := time.Now()
		prep, err := e.prepare(fillCtx, reg, q, norm, exec)
		if err != nil {
			return nil, err
		}
		preprocess := time.Since(prepStart)
		res, tel, err := solve(fillCtx, reg.ds, reg.dist, prep, q, exec.withPool(e.pool))
		if err != nil {
			return nil, err
		}
		// On a fully warm preprocessing cache this is near zero: the
		// expensive artifacts were reused, not rebuilt.
		tel.Preprocess = preprocess
		// The pool grant waits of the execution that computed this entry;
		// a hit carries it under Telemetry.Replay.
		tel.QueueWait = exec.wait.Load()
		markShared(fillCtx, fill)
		return &answer{res: res, tel: tel}, nil
	})
	lookup.SetAttrBool("hit", hit)
	lookup.End()
	if err != nil {
		return nil, nil, err
	}
	a := v.(*answer)
	res := copyResult(a.res)
	res.Cached = hit
	var tel Telemetry
	if hit {
		// A hit's own execution is the cache lookup: its timings are near
		// zero and its QueueWait is whatever the hit itself waited (no
		// fan-outs ran, so exactly its own grants — none). The filling
		// execution's Telemetry is preserved under Replay instead of being
		// reported as this query's (the pre-PR-8 behavior, which made a
		// warm hit claim the filler's QueueWait/Preprocess as its own).
		fillerTel := *a.tel
		tel = Telemetry{QueueWait: ownWait.Load(), Replay: &fillerTel}
	} else {
		tel = *a.tel
	}
	span.End()
	// The trace describes THIS execution (a hit's trace shows the lookup,
	// not the replayed fill), so it attaches after the value copy — never
	// into the cached entry.
	tel.Trace = traceOf(span)
	return res, &tel, nil
}

// markShared annotates a singleflight fill span with shared=true when
// the fill served coalesced waiters beyond its own requester.
func markShared(fillCtx context.Context, span *obs.Span) {
	if span == nil {
		return
	}
	if ecache.Waiters(fillCtx) > 0 {
		span.SetAttrBool("shared", true)
	}
}

// Evaluate measures the Metrics of q.ExplicitSet against a registered
// dataset, reusing the cached sampled functions and utility matrix. It
// is bit-identical to the one-shot Evaluate with the same Query.
func (e *Engine) Evaluate(ctx context.Context, q Query, exec Exec) (Metrics, error) {
	m, _, _, err := e.evaluate(ctx, q, exec)
	return m, err
}

// evaluate is the shared evaluation path of Evaluate and SelectBatch
// members: it additionally reports the registration (for labeling batch
// slots) and a Telemetry with the preprocess/query timing split.
func (e *Engine) evaluate(ctx context.Context, q Query, exec Exec) (Metrics, *registration, *Telemetry, error) {
	if e.closed.Load() {
		return Metrics{}, nil, nil, ErrEngineClosed
	}
	reg, err := e.resolve(q)
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	norm, err := normalizeQuery(reg.ds, reg.dist, q, false)
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	// Reject malformed sets before touching the caches.
	if err := core.ValidateSet(q.ExplicitSet, reg.ds.N()); err != nil {
		return Metrics{}, nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, nil, nil, err
	}
	ctx, span := obs.Start(ctx, "engine.evaluate")
	span.SetAttr("dataset", q.Dataset)
	span.SetAttrInt("set", len(q.ExplicitSet))
	defer span.End()
	if err := e.admitTraced(ctx, exec); err != nil {
		return Metrics{}, nil, nil, err
	}
	// Per-query queue-wait attribution, exactly as on the Select path.
	exec = exec.withWait(new(sched.WaitCounter))
	ctx, cancel := exec.schedContext(ctx)
	defer cancel()
	e.evaluates.Add(1)
	prepStart := time.Now()
	prep, err := e.prepare(ctx, reg, q, norm, exec)
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	tel := &Telemetry{Preprocess: time.Since(prepStart)}
	_, evalSpan := obs.Start(ctx, "evaluate")
	queryStart := time.Now()
	m, err := prep.in.Evaluate(q.ExplicitSet, nil)
	evalSpan.End()
	if err != nil {
		return Metrics{}, nil, nil, err
	}
	tel.Query = time.Since(queryStart)
	tel.QueueWait = exec.wait.Load()
	span.End()
	tel.Trace = traceOf(span)
	return m, reg, tel, nil
}

// prepare assembles the prepared state for one query from the
// preprocessing cache, filling missing artifacts exactly once each:
//
//	sky|<dataset>                      the skyline index
//	funcs|<dataset>|<seed>|<N>         the sampled utility functions
//	coreset|<dataset>|<class>|…        the ε-kernel survivor index
//	                                   (Coreset queries only)
//	inst|<dataset>|<class>|…           the built instance (utility
//	                                   matrix + best-point index)
//
// The returned prepared carries a zero-copy clone of the cached instance
// with this query's Exec and the shared pool.
func (e *Engine) prepare(ctx context.Context, reg *registration, q Query, norm normalized, exec Exec) (*prepared, error) {
	ctx, span := obs.Start(ctx, "prepare")
	defer span.End()
	candidates, class, err := e.candidates(ctx, reg, q, norm)
	if err != nil {
		return nil, err
	}
	skySize := len(candidates)
	csSize := -1
	if norm.useCoreset {
		cs, err := e.coreset(ctx, reg, q, norm, candidates, class)
		if err != nil {
			return nil, err
		}
		// Same guard as the one-shot path: pruning below K keeps the
		// unpruned candidates, and the class only gains the coreset
		// component when the pruning actually applied.
		if len(cs) > q.K {
			candidates = cs
			class = fmt.Sprintf("%s+cs%g", class, norm.coresetEps)
		}
		csSize = len(candidates)
	}
	instKey := fmt.Sprintf("inst|%s|%s|seed=%d|N=%d|exact=%t|budget=%d",
		reg.name, class, q.Seed, norm.sampleSize, norm.discrete != nil, effectiveBudget(q.CacheBudget))
	if q.Float32 {
		instKey += "|f32"
	}
	v, _, err := e.prep.Do(ctx, instKey, func(fillCtx context.Context) (any, error) {
		fillCtx, fill := e.fillSpan(fillCtx, instKey)
		defer fill.End()
		funcs, weights, err := e.funcs(fillCtx, reg, q, norm)
		if err != nil {
			return nil, err
		}
		// Shared artifacts are built at full pool width regardless of the
		// triggering request's Exec: the first requester's knob must not
		// throttle a dataset-wide build that every coalesced and future
		// query shares. Preprocessing output is bit-identical at any
		// width, and per-query execution settings are applied to the
		// clone below, so this affects fill latency only.
		prep, err := assemble(fillCtx, reg.ds, candidates, funcs, weights, q, Exec{pool: e.pool})
		markShared(fillCtx, fill)
		return prep, err
	})
	if err != nil {
		return nil, err
	}
	master := v.(*prepared)
	return &prepared{
		candidates:  master.candidates,
		funcs:       master.funcs,
		weights:     master.weights,
		in:          master.in.WithExecution(exec.Parallelism, exec.LazyBatch, e.pool, exec.fillAttrs()),
		skylineSize: skySize,
		coresetSize: csSize,
	}, nil
}

// coreset resolves the ε-kernel survivor index for the query's candidate
// class from the prep cache. Like the skyline it is a shared artifact:
// built once per (dataset, class, seed, N, exact, eps) at full pool
// width under attr-neutral scheduling, exactly sized in the cache as a
// plain []int, and traced as a "fill.coreset" span.
func (e *Engine) coreset(ctx context.Context, reg *registration, q Query, norm normalized, candidates []int, class string) ([]int, error) {
	key := fmt.Sprintf("coreset|%s|%s|seed=%d|N=%d|exact=%t|eps=%g",
		reg.name, class, q.Seed, norm.sampleSize, norm.discrete != nil, norm.coresetEps)
	v, _, err := e.prep.Do(ctx, key, func(fillCtx context.Context) (any, error) {
		fillCtx = sched.NewContext(fillCtx, sched.Attrs{})
		fillCtx, fill := e.fillSpan(fillCtx, key)
		defer fill.End()
		funcs, _, err := e.funcs(fillCtx, reg, q, norm)
		if err != nil {
			return nil, err
		}
		cs, err := coreset.Filter(fillCtx, reg.ds.Points, candidates, funcs, coreset.Options{
			Eps:  norm.coresetEps,
			Pool: e.pool,
		})
		if err != nil {
			return nil, err
		}
		fill.SetAttrInt("in", len(candidates))
		fill.SetAttrInt("out", len(cs))
		markShared(fillCtx, fill)
		return cs, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]int), nil
}

// QueueDepth reports the number of helper requests currently queued on
// the engine's shared pool — the live load signal admission control
// bounds against. Cheap enough for a health endpoint to poll.
func (e *Engine) QueueDepth() int {
	return e.pool.QueueDepth()
}

// admit applies admission control against the shared pool's grant
// queue, counting sheds.
func (e *Engine) admit(exec Exec) error {
	if err := exec.admit(e.pool.QueueDepth); err != nil {
		e.sheds.Add(1)
		return err
	}
	return nil
}

// fillSpan opens the span of one singleflight prep fill, named after
// the artifact kind ("fill.sky", "fill.funcs", "fill.inst") and
// annotated with the cache key — plus the plan-group key when the fill
// was triggered by a batch group's representative.
func (e *Engine) fillSpan(fillCtx context.Context, key string) (context.Context, *obs.Span) {
	name := "fill"
	if i := strings.IndexByte(key, '|'); i > 0 {
		name = "fill." + key[:i]
	}
	fillCtx, span := obs.Start(fillCtx, name)
	span.SetAttr("key", key)
	if g := planGroupKeyFrom(fillCtx); g != "" {
		span.SetAttr("group", g)
	}
	return fillCtx, span
}

// admitTraced is admit with the decision recorded as an "admit" span
// (shed=true when the query was rejected), so a trace shows where a
// 429 came from.
func (e *Engine) admitTraced(ctx context.Context, exec Exec) error {
	_, span := obs.Start(ctx, "admit")
	err := e.admit(exec)
	span.SetAttrBool("shed", err != nil)
	span.End()
	return err
}

// candidates resolves the query's candidate set: the cached skyline when
// the skyline restriction applies and is larger than K, the full dataset
// otherwise. class names the variant for the instance cache key.
func (e *Engine) candidates(ctx context.Context, reg *registration, q Query, norm normalized) ([]int, string, error) {
	if !norm.useSkyline {
		return identity(reg.ds.N()), "full", nil
	}
	// Workers 0 (full width): see the instance fill — shared builds do
	// not inherit one request's Exec. Likewise attr-neutral scheduling:
	// a dataset-wide artifact is not one request's work, so its fan-outs
	// run at the normal class with no deadline.
	v, _, err := e.prep.Do(ctx, "sky|"+reg.name, func(fillCtx context.Context) (any, error) {
		fillCtx = sched.NewContext(fillCtx, sched.Attrs{})
		fillCtx, fill := e.fillSpan(fillCtx, "sky|"+reg.name)
		defer fill.End()
		sky, err := skyline.ComputeOpts(fillCtx, reg.ds.Points, skyline.ComputeOptions{Pool: e.pool})
		markShared(fillCtx, fill)
		return sky, err
	})
	if err != nil {
		return nil, "", err
	}
	sky := v.([]int)
	if len(sky) > q.K {
		return sky, "sky", nil
	}
	return identity(reg.ds.N()), "full", nil
}

// funcs returns the sampled utility functions for (dataset, seed, N)
// from the cache. Exact-discrete distributions carry their own support —
// nothing to build, nothing to cache.
func (e *Engine) funcs(ctx context.Context, reg *registration, q Query, norm normalized) ([]UtilityFunc, []float64, error) {
	if norm.discrete != nil {
		return norm.discrete.Funcs, norm.discrete.Probs, nil
	}
	key := fmt.Sprintf("funcs|%s|seed=%d|N=%d", reg.name, q.Seed, norm.sampleSize)
	v, _, err := e.prep.Do(ctx, key, func(fillCtx context.Context) (any, error) {
		fillCtx, fill := e.fillSpan(fillCtx, key)
		defer fill.End()
		funcs, _, err := buildFuncs(fillCtx, reg.dist, norm, q.Seed)
		if err != nil {
			return nil, err
		}
		markShared(fillCtx, fill)
		return funcs, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return v.([]UtilityFunc), nil, nil
}

// effectiveBudget normalizes CacheBudget for cache keys: zero means the
// default, every negative value means "disabled".
func effectiveBudget(budget int64) int64 {
	if budget == 0 {
		return core.DefaultCacheBudget
	}
	if budget < 0 {
		return -1
	}
	return budget
}

// copyResult returns a deep copy so cache-stored results can never be
// mutated through a returned pointer.
func copyResult(r *Result) *Result {
	cp := *r
	cp.Indices = append([]int(nil), r.Indices...)
	cp.Labels = append([]string(nil), r.Labels...)
	cp.Metrics.Percentiles = append([]float64(nil), r.Metrics.Percentiles...)
	cp.Metrics.PercentileLevel = append([]float64(nil), r.Metrics.PercentileLevel...)
	return &cp
}

// answerSize estimates the resident bytes of one result-cache entry for
// the byte-budget eviction policy.
func answerSize(v any) int64 {
	a, ok := v.(*answer)
	if !ok {
		return 0
	}
	size := int64(256) // struct headers and scalars
	size += int64(len(a.res.Indices)) * 8
	for _, l := range a.res.Labels {
		size += int64(len(l)) + 16
	}
	size += int64(len(a.res.Metrics.Percentiles)+len(a.res.Metrics.PercentileLevel)) * 8
	return size
}

// prepSize reports the resident bytes of one preprocessing-cache entry
// exactly: skyline indexes and candidate/weight slices by length, the
// sampled function set through utility.Footprint (each function's real
// weight-vector payload), and built instances through
// core.Instance.MemoryFootprint (the materialized N×n utility matrix
// plus the satisfaction/best-point indexes). Instances share their
// function set with the funcs|… entry, so the functions are counted
// once there and the instance entry adds only the interface headers
// referencing them.
func prepSize(v any) int64 {
	const sliceHeader = 24
	switch t := v.(type) {
	case []int: // skyline index
		return sliceHeader + int64(len(t))*8
	case []UtilityFunc: // sampled functions
		return funcsSize(t)
	case *prepared:
		size := int64(sliceHeader * 4) // struct and slice headers
		size += int64(len(t.candidates)) * 8
		size += int64(len(t.funcs)) * 16 // interface headers; payloads owned by the funcs entry
		size += int64(len(t.weights)) * 8
		if t.in != nil {
			size += t.in.MemoryFootprint()
		}
		return size
	default:
		return 0
	}
}

// funcsSize sums the exact payload bytes of a sampled function set.
func funcsSize(funcs []UtilityFunc) int64 {
	size := int64(24) + int64(len(funcs))*16 // slice + interface headers
	for _, f := range funcs {
		size += utility.Footprint(f)
	}
	return size
}

// EngineStats is a point-in-time snapshot of an Engine's serving
// counters. Each counter is individually monotonic; see Stats for the
// cross-counter consistency guarantees a snapshot carries.
type EngineStats struct {
	// Datasets is the number of registered datasets.
	Datasets int `json:"datasets"`
	// PoolWorkers is the shared pool's helper goroutine count.
	PoolWorkers int `json:"pool_workers"`
	// Selects and Evaluates count queries accepted (after validation),
	// including ones answered from the result cache.
	Selects   uint64 `json:"selects"`
	Evaluates uint64 `json:"evaluates"`
	// Batches counts SelectBatch calls accepted; BatchQueries the member
	// queries they carried (each member also counts in Selects or
	// Evaluates).
	Batches      uint64 `json:"batches"`
	BatchQueries uint64 `json:"batch_queries"`
	// Shed counts queries rejected by engine admission control: their
	// deadline had already passed on arrival, or the grant queue was
	// deeper than their MaxQueue bound. Shed queries consumed no solver
	// time and do not count in Selects/Evaluates.
	Shed uint64 `json:"shed"`
	// PlannedDedups counts batch members answered by copying another
	// member with the same Fingerprint (the planner's within-batch
	// dedup — those members never reach the solver or the counters
	// above); PlanGroups counts the instance-key groups batches were
	// planned into.
	PlannedDedups uint64 `json:"planned_dedups"`
	PlanGroups    uint64 `json:"plan_groups"`
	// PrepCache tracks the preprocessing artifacts (skyline indexes,
	// sampled function sets, built instances); ResultCache tracks whole
	// query answers. Coalesced counts the singleflight savings: queries
	// that waited on an in-flight build instead of duplicating it. Bytes,
	// MaxBytes, Expired, and TTL report the eviction-policy knobs of
	// EngineConfig.
	PrepCache   CacheStats `json:"prep_cache"`
	ResultCache CacheStats `json:"result_cache"`
	// Sched reports the shared pool's grant-queue counters: the active
	// policy, grants and their summed queue wait, pool-level sheds, and
	// the current queue depth.
	Sched SchedStats `json:"sched"`
	// Uptime is the time since NewEngine.
	Uptime time.Duration `json:"uptime_ns"`
}

// CacheStats re-exports the cache counter snapshot used in EngineStats.
type CacheStats = ecache.CacheStats

// SchedStats re-exports the grant-queue counter snapshot used in
// EngineStats. Its PerClass map breaks grants, sheds, stale tickets,
// queue wait, and depth down by priority class, and DeficitGrants
// counts the starvation-relief grants where an overdue lighter class
// was served ahead of a heavier one.
type SchedStats = sched.Stats

// SchedClassStats re-exports the per-priority-class slice of the
// grant-queue counters (the values of SchedStats.PerClass).
type SchedClassStats = sched.ClassStats

// Stats returns a snapshot of the Engine's counters.
//
// Every counter is individually monotonic, but the snapshot is not one
// atomic cut: counters are loaded one at a time while queries run. Two
// guarantees are kept anyway, by ordering the increments in SelectBatch
// (member-derived counters move only after BatchQueries) and loading
// the counters here in the matching order — dependents before their
// bound:
//
//	Batches       ≤ BatchQueries (every batch carries ≥ 1 member)
//	PlannedDedups ≤ BatchQueries (only members dedup)
//	PlanGroups    ≤ BatchQueries (groups partition the members)
//
// Any other cross-counter relation (e.g. Selects vs BatchQueries) may
// be transiently off by in-flight queries; consumers needing an exact
// cut should quiesce traffic first.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	n := len(e.datasets)
	e.mu.RUnlock()
	// Load the bounded counters before their bound: a concurrent batch
	// increments BatchQueries first, so reading PlannedDedups/PlanGroups/
	// Batches earlier (never later) keeps every snapshot inside the
	// documented inequalities.
	planGroups := e.planGroups.Load()
	plannedDedups := e.plannedDedups.Load()
	batches := e.batches.Load()
	batchQueries := e.batchQueries.Load()
	return EngineStats{
		Datasets:      n,
		PoolWorkers:   e.pool.Size(),
		Selects:       e.selects.Load(),
		Evaluates:     e.evaluates.Load(),
		Batches:       batches,
		BatchQueries:  batchQueries,
		Shed:          e.sheds.Load(),
		PlannedDedups: plannedDedups,
		PlanGroups:    planGroups,
		PrepCache:     e.prep.Stats(),
		ResultCache:   e.results.Stats(),
		Sched:         e.pool.SchedStats(),
		Uptime:        time.Since(e.start),
	}
}
