package fam

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/regretlab/fam/internal/core"
	ecache "github.com/regretlab/fam/internal/engine"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/skyline"
)

// Engine is the long-lived serving counterpart of the one-shot Select: a
// process-wide worker pool multiplexed across all concurrent queries, a
// registry of named datasets, a preprocessing cache that builds each
// expensive per-dataset artifact exactly once (the skyline index, the
// sampled utility functions, and the materialized utility matrix — each
// under singleflight deduplication, so a thundering herd of identical
// cold queries triggers one build), and a bounded result cache for whole
// query answers.
//
// Determinism: an Engine-served result is bit-identical to a fresh
// one-shot Select with the same options at any concurrency — same
// Indices, Labels, Metrics, ExactARR, SkylineSize, and Stats counters.
// Only the timing fields differ (cached work is not re-done) and Cached
// marks answers served from the result cache. This holds because every
// cached artifact is deterministic in its key (dataset, distribution
// config, seed), instances are immutable after construction, and each
// query runs the solvers on its own zero-copy instance clone carrying
// the per-request Parallelism/LazyBatch.
//
// All methods are safe for concurrent use. Close releases the pool;
// queries issued after Close return ErrEngineClosed.
type Engine struct {
	pool    *par.Pool
	prep    *ecache.Cache
	results *ecache.Cache

	mu       sync.RWMutex
	datasets map[string]*registration

	selects   atomic.Uint64
	evaluates atomic.Uint64
	closed    atomic.Bool
	start     time.Time
}

// registration binds a registered dataset to its distribution Θ. Both
// are fixed at registration time: the pair is what preprocessing is
// keyed on.
type registration struct {
	name string
	ds   *Dataset
	dist Distribution
}

// EngineConfig configures NewEngine. The zero value is serviceable:
// GOMAXPROCS pool workers and default cache capacities.
type EngineConfig struct {
	// Workers sizes the shared worker pool every query's shard fan-outs
	// are multiplexed over (0 = GOMAXPROCS). Individual queries still
	// bound their own shard width with SelectOptions.Parallelism; the
	// pool bounds the helper goroutines of the whole process.
	Workers int
	// PrepCacheSize bounds the preprocessing cache in entries — each
	// entry is one skyline index, one sampled function set, or one built
	// instance (the utility matrix dominates). 0 = default (256),
	// negative = unbounded.
	PrepCacheSize int
	// ResultCacheSize bounds the result cache in entries. 0 = default
	// (1024), negative = unbounded.
	ResultCacheSize int
}

// DefaultPrepCacheSize and DefaultResultCacheSize are the zero-value
// capacities of EngineConfig.
const (
	DefaultPrepCacheSize   = 256
	DefaultResultCacheSize = 1024
)

// ErrUnknownDataset is returned by Engine queries naming an unregistered
// dataset.
var ErrUnknownDataset = errors.New("fam: unknown dataset")

// ErrDuplicateDataset is returned by Register when the name is taken.
var ErrDuplicateDataset = errors.New("fam: dataset already registered")

// ErrEngineClosed is returned by queries against a closed Engine.
var ErrEngineClosed = errors.New("fam: engine is closed")

// NewEngine starts an Engine. Callers own its lifecycle: Close it when
// the serving process shuts down.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{
		pool:     par.NewPool(cfg.Workers),
		prep:     ecache.NewCache(capacity(cfg.PrepCacheSize, DefaultPrepCacheSize)),
		results:  ecache.NewCache(capacity(cfg.ResultCacheSize, DefaultResultCacheSize)),
		datasets: make(map[string]*registration),
		start:    time.Now(),
	}
}

func capacity(configured, def int) int {
	switch {
	case configured == 0:
		return def
	case configured < 0:
		return 0 // unbounded
	default:
		return configured
	}
}

// Close releases the worker pool. In-flight queries finish (their
// remaining shard work runs inline); later queries fail with
// ErrEngineClosed. Idempotent.
func (e *Engine) Close() {
	e.closed.Store(true)
	e.pool.Close()
}

// Register adds a named dataset with its utility distribution Θ. The
// pair is immutable once registered — preprocessing artifacts are cached
// under the name, so re-registering a name is an error rather than a
// silent cache poisoning.
func (e *Engine) Register(name string, ds *Dataset, dist Distribution) error {
	if e.closed.Load() {
		return ErrEngineClosed
	}
	if name == "" {
		return fmt.Errorf("%w: dataset name must be non-empty", ErrBadOptions)
	}
	if ds == nil || dist == nil {
		return ErrNilArgument
	}
	if err := ds.Validate(); err != nil {
		return err
	}
	if d := dist.Dim(); d != 0 && d != ds.Dim() {
		return fmt.Errorf("%w: distribution dimension %d != dataset dimension %d", ErrBadOptions, d, ds.Dim())
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.datasets[name]; ok {
		return fmt.Errorf("%w: %q", ErrDuplicateDataset, name)
	}
	e.datasets[name] = &registration{name: name, ds: ds, dist: dist}
	return nil
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	Name         string `json:"name"`
	N            int    `json:"n"`
	Dim          int    `json:"dim"`
	Distribution string `json:"distribution"`
}

// Datasets lists the registered datasets sorted by name.
func (e *Engine) Datasets() []DatasetInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]DatasetInfo, 0, len(e.datasets))
	for _, reg := range e.datasets {
		out = append(out, DatasetInfo{
			Name:         reg.name,
			N:            reg.ds.N(),
			Dim:          reg.ds.Dim(),
			Distribution: reg.dist.Name(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (e *Engine) lookup(name string) (*registration, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	reg, ok := e.datasets[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	return reg, nil
}

// Select answers a selection query against a registered dataset. Cold
// queries build (and cache) the preprocessing artifacts and the result;
// warm queries with the same options are answered from the result cache
// (Result.Cached = true, timings reporting the original computation),
// and queries that share preprocessing but differ in (K, Algorithm, …)
// skip straight to the query phase on the cached instance.
func (e *Engine) Select(ctx context.Context, dataset string, opts SelectOptions) (*Result, error) {
	if e.closed.Load() {
		return nil, ErrEngineClosed
	}
	reg, err := e.lookup(dataset)
	if err != nil {
		return nil, err
	}
	norm, err := normalizeOptions(reg.ds, reg.dist, opts, true)
	if err != nil {
		return nil, err
	}
	e.selects.Add(1)

	key := resultKey(reg.name, opts, norm)
	v, hit, err := e.results.Do(ctx, key, func(fillCtx context.Context) (any, error) {
		prepStart := time.Now()
		prep, err := e.prepare(fillCtx, reg, opts, norm)
		if err != nil {
			return nil, err
		}
		preprocess := time.Since(prepStart)
		res, err := solve(fillCtx, reg.ds, reg.dist, prep, opts)
		if err != nil {
			return nil, err
		}
		// On a fully warm preprocessing cache this is near zero: the
		// expensive artifacts were reused, not rebuilt.
		res.Preprocess = preprocess
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	res := copyResult(v.(*Result))
	res.Cached = hit
	return res, nil
}

// Evaluate measures the Metrics of an explicit selection against a
// registered dataset, reusing the cached sampled functions and utility
// matrix. It is bit-identical to the one-shot Evaluate with the same
// options.
func (e *Engine) Evaluate(ctx context.Context, dataset string, set []int, opts SelectOptions) (Metrics, error) {
	if e.closed.Load() {
		return Metrics{}, ErrEngineClosed
	}
	reg, err := e.lookup(dataset)
	if err != nil {
		return Metrics{}, err
	}
	norm, err := normalizeOptions(reg.ds, reg.dist, opts, false)
	if err != nil {
		return Metrics{}, err
	}
	// Reject malformed sets before touching the caches.
	if err := core.ValidateSet(set, reg.ds.N()); err != nil {
		return Metrics{}, err
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	e.evaluates.Add(1)
	prep, err := e.prepare(ctx, reg, opts, norm)
	if err != nil {
		return Metrics{}, err
	}
	return prep.in.Evaluate(set, nil)
}

// prepare assembles the prepared state for one query from the
// preprocessing cache, filling missing artifacts exactly once each:
//
//	sky|<dataset>                      the skyline index
//	funcs|<dataset>|<seed>|<N>         the sampled utility functions
//	inst|<dataset>|<class>|…           the built instance (utility
//	                                   matrix + best-point index)
//
// The returned prepared carries a zero-copy clone of the cached instance
// with this query's Parallelism/LazyBatch and the shared pool.
func (e *Engine) prepare(ctx context.Context, reg *registration, opts SelectOptions, norm normalized) (*prepared, error) {
	candidates, class, err := e.candidates(ctx, reg, opts, norm)
	if err != nil {
		return nil, err
	}
	instKey := fmt.Sprintf("inst|%s|%s|seed=%d|N=%d|exact=%t|budget=%d",
		reg.name, class, opts.Seed, norm.sampleSize, norm.discrete != nil, effectiveBudget(opts.CacheBudget))
	v, _, err := e.prep.Do(ctx, instKey, func(fillCtx context.Context) (any, error) {
		funcs, weights, err := e.funcs(fillCtx, reg, opts, norm)
		if err != nil {
			return nil, err
		}
		// Shared artifacts are built at full pool width regardless of the
		// triggering request's Parallelism: the first requester's knob
		// must not throttle a dataset-wide build that every coalesced and
		// future query shares. Preprocessing output is bit-identical at
		// any width, and per-query execution settings are applied to the
		// clone below, so this affects fill latency only.
		fillOpts := opts
		fillOpts.Parallelism = 0
		return assemble(reg.ds, candidates, funcs, weights, fillOpts, e.pool)
	})
	if err != nil {
		return nil, err
	}
	master := v.(*prepared)
	return &prepared{
		candidates: master.candidates,
		funcs:      master.funcs,
		weights:    master.weights,
		in:         master.in.WithExecution(opts.Parallelism, opts.LazyBatch, e.pool),
	}, nil
}

// candidates resolves the query's candidate set: the cached skyline when
// the skyline restriction applies and is larger than K, the full dataset
// otherwise. class names the variant for the instance cache key.
func (e *Engine) candidates(ctx context.Context, reg *registration, opts SelectOptions, norm normalized) ([]int, string, error) {
	if !norm.useSkyline {
		return identity(reg.ds.N()), "full", nil
	}
	// Workers 0 (full width): see the instance fill — shared builds do
	// not inherit one request's Parallelism.
	v, _, err := e.prep.Do(ctx, "sky|"+reg.name, func(fillCtx context.Context) (any, error) {
		return skyline.ComputeOpts(fillCtx, reg.ds.Points, skyline.ComputeOptions{Pool: e.pool})
	})
	if err != nil {
		return nil, "", err
	}
	sky := v.([]int)
	if len(sky) > opts.K {
		return sky, "sky", nil
	}
	return identity(reg.ds.N()), "full", nil
}

// funcs returns the sampled utility functions for (dataset, seed, N)
// from the cache. Exact-discrete distributions carry their own support —
// nothing to build, nothing to cache.
func (e *Engine) funcs(ctx context.Context, reg *registration, opts SelectOptions, norm normalized) ([]UtilityFunc, []float64, error) {
	if norm.discrete != nil {
		return norm.discrete.Funcs, norm.discrete.Probs, nil
	}
	key := fmt.Sprintf("funcs|%s|seed=%d|N=%d", reg.name, opts.Seed, norm.sampleSize)
	v, _, err := e.prep.Do(ctx, key, func(context.Context) (any, error) {
		funcs, _, err := buildFuncs(reg.dist, norm, opts.Seed)
		if err != nil {
			return nil, err
		}
		return funcs, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return v.([]UtilityFunc), nil, nil
}

// resultKey folds every Result-affecting option into the result cache
// key. Parallelism is included because the dispatch counters in
// ShrinkStats report it; LazyBatch only matters for the lazy strategy.
func resultKey(name string, opts SelectOptions, norm normalized) string {
	lazy := 0
	if opts.Algorithm == GreedyShrinkLazy {
		lazy = opts.LazyBatch
	}
	return fmt.Sprintf("res|%s|algo=%s|k=%d|seed=%d|N=%d|exact=%t|sky=%t|budget=%d|par=%d|lazy=%d",
		name, opts.Algorithm, opts.K, opts.Seed, norm.sampleSize, norm.discrete != nil,
		norm.useSkyline, effectiveBudget(opts.CacheBudget), opts.Parallelism, lazy)
}

// effectiveBudget normalizes CacheBudget for cache keys: zero means the
// default, every negative value means "disabled".
func effectiveBudget(budget int64) int64 {
	if budget == 0 {
		return core.DefaultCacheBudget
	}
	if budget < 0 {
		return -1
	}
	return budget
}

// copyResult returns a deep copy so cache-stored results can never be
// mutated through a returned pointer.
func copyResult(r *Result) *Result {
	cp := *r
	cp.Indices = append([]int(nil), r.Indices...)
	cp.Labels = append([]string(nil), r.Labels...)
	cp.Metrics.Percentiles = append([]float64(nil), r.Metrics.Percentiles...)
	cp.Metrics.PercentileLevel = append([]float64(nil), r.Metrics.PercentileLevel...)
	return &cp
}

// EngineStats is a point-in-time snapshot of an Engine's serving
// counters.
type EngineStats struct {
	// Datasets is the number of registered datasets.
	Datasets int `json:"datasets"`
	// PoolWorkers is the shared pool's helper goroutine count.
	PoolWorkers int `json:"pool_workers"`
	// Selects and Evaluates count queries accepted (after validation),
	// including ones answered from the result cache.
	Selects   uint64 `json:"selects"`
	Evaluates uint64 `json:"evaluates"`
	// PrepCache tracks the preprocessing artifacts (skyline indexes,
	// sampled function sets, built instances); ResultCache tracks whole
	// query answers. Coalesced counts the singleflight savings: queries
	// that waited on an in-flight build instead of duplicating it.
	PrepCache   CacheStats `json:"prep_cache"`
	ResultCache CacheStats `json:"result_cache"`
	// Uptime is the time since NewEngine.
	Uptime time.Duration `json:"uptime_ns"`
}

// CacheStats re-exports the cache counter snapshot used in EngineStats.
type CacheStats = ecache.CacheStats

// Stats returns a snapshot of the Engine's counters.
func (e *Engine) Stats() EngineStats {
	e.mu.RLock()
	n := len(e.datasets)
	e.mu.RUnlock()
	return EngineStats{
		Datasets:    n,
		PoolWorkers: e.pool.Size(),
		Selects:     e.selects.Load(),
		Evaluates:   e.evaluates.Load(),
		PrepCache:   e.prep.Stats(),
		ResultCache: e.results.Stats(),
		Uptime:      time.Since(e.start),
	}
}
