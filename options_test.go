package fam

import (
	"context"
	"errors"
	"testing"
)

// TestSelectBadOptionsTyped: every validation failure of Select and
// Evaluate must match ErrBadOptions, so servers can map them to 400s
// without string matching.
func TestSelectBadOptionsTyped(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	cases := []struct {
		name string
		opts SelectOptions
	}{
		{"k zero", SelectOptions{K: 0}},
		{"k negative", SelectOptions{K: -3}},
		{"k beyond n", SelectOptions{K: ds.N() + 1}},
		{"unknown algorithm", SelectOptions{K: 3, Algorithm: Algorithm(42)}},
		{"negative algorithm", SelectOptions{K: 3, Algorithm: Algorithm(-1)}},
		{"epsilon too large", SelectOptions{K: 3, Epsilon: 1}},
		{"epsilon negative", SelectOptions{K: 3, Epsilon: -0.1}},
		{"sigma too large", SelectOptions{K: 3, Sigma: 2}},
		{"negative sample size", SelectOptions{K: 3, SampleSize: -10}},
		{"exact discrete on continuous dist", SelectOptions{K: 3, ExactDiscrete: true}},
	}
	for _, tc := range cases {
		if _, err := SelectWithOptions(ctx, ds, dist, tc.opts); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Select %s: err = %v, want ErrBadOptions", tc.name, err)
		}
	}

	// Evaluate shares the normalization but ignores K and Algorithm.
	if _, err := EvaluateWithOptions(ctx, ds, dist, []int{0, 1}, SelectOptions{Epsilon: 3}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Evaluate bad epsilon: want ErrBadOptions")
	}
	if _, err := EvaluateWithOptions(ctx, ds, dist, []int{0, 1}, SelectOptions{K: -5, SampleSize: 50}); err != nil {
		t.Errorf("Evaluate must ignore K: %v", err)
	}

	// Dimension mismatch is an options-level failure too.
	wrongDim, err := UniformLinear(ds.Dim() + 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectWithOptions(ctx, ds, wrongDim, SelectOptions{K: 3}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("dimension mismatch: want ErrBadOptions, got %v", err)
	}

	// Nil arguments keep their own sentinel.
	if _, err := SelectWithOptions(ctx, nil, dist, SelectOptions{K: 3}); !errors.Is(err, ErrNilArgument) {
		t.Errorf("nil dataset: want ErrNilArgument, got %v", err)
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for a := GreedyShrink; a <= GreedyAdd; a++ {
		got, err := ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, want %v", a.String(), got, a)
		}
	}
	// Case-insensitive: the CLI and the HTTP API accept the same names.
	if got, err := ParseAlgorithm("GREEDY-Shrink"); err != nil || got != GreedyShrink {
		t.Fatalf("ParseAlgorithm(GREEDY-Shrink) = (%v, %v)", got, err)
	}
	if _, err := ParseAlgorithm("nope"); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unknown name: err = %v, want ErrBadOptions", err)
	}
	if _, err := ParseAlgorithm("unknown"); err == nil {
		t.Fatal("the String() fallback name must not parse")
	}
}

// TestSampleSizeDefaults pins the resolved sample sizes the caches key
// on: defaults (ε = σ = 0.1 → 691) and explicit overrides.
func TestSampleSizeDefaults(t *testing.T) {
	ds, dist := hotelSetup(t)
	toQuery := func(o SelectOptions) Query { q, _ := o.Split(); return q }
	norm, err := normalizeQuery(ds, dist, toQuery(SelectOptions{K: 3}), true)
	if err != nil {
		t.Fatal(err)
	}
	if norm.sampleSize != 691 {
		t.Fatalf("default sample size = %d, want 691", norm.sampleSize)
	}
	norm, err = normalizeQuery(ds, dist, toQuery(SelectOptions{K: 3, SampleSize: 77}), true)
	if err != nil || norm.sampleSize != 77 {
		t.Fatalf("explicit sample size = %d (%v), want 77", norm.sampleSize, err)
	}
	if !norm.useSkyline {
		t.Fatal("monotone linear Θ must enable the skyline restriction")
	}
	norm, err = normalizeQuery(ds, dist, toQuery(SelectOptions{K: 3, Algorithm: SkyDom}), true)
	if err != nil || norm.useSkyline {
		t.Fatalf("SkyDom must bypass the skyline restriction (%v)", err)
	}
}
