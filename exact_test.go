package fam

import (
	"context"
	"math"
	"testing"
)

// tableIDataset builds the paper's Table I scenario as a dataset plus a
// discrete Θ.
func tableIDataset(t *testing.T) (*Dataset, Distribution) {
	t.Helper()
	ds := &Dataset{
		Name:   "hotels-tableI",
		Labels: []string{"Holiday Inn", "Shangri la", "Intercontinental", "Hilton"},
		Points: [][]float64{{0}, {1}, {2}, {3}},
	}
	dist, err := TableUsers([][]float64{
		{0.9, 0.7, 0.2, 0.4},
		{0.6, 1, 0.5, 0.2},
		{0.2, 0.6, 0.3, 1},
		{0.1, 0.2, 1, 0.9},
	}, []float64{0.25, 0.25, 0.25, 0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	return ds, dist
}

func TestExactDiscreteEvaluate(t *testing.T) {
	ctx := context.Background()
	ds, dist := tableIDataset(t)
	m, err := EvaluateWithOptions(ctx, ds, dist, []int{2, 3}, SelectOptions{ExactDiscrete: true})
	if err != nil {
		t.Fatal(err)
	}
	// Appendix A's exact value for S = {Intercontinental, Hilton}.
	if want := 19.0 / 72.0; math.Abs(m.ARR-want) > 1e-12 {
		t.Fatalf("exact ARR = %v, want %v", m.ARR, want)
	}
	if m.DegenerateUsers != 0 {
		t.Fatal("no degenerate users expected")
	}
}

func TestExactDiscreteSelect(t *testing.T) {
	ctx := context.Background()
	ds, dist := tableIDataset(t)
	res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{
		K: 2, Algorithm: BruteForce, ExactDiscrete: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify optimality against all pairs under exact evaluation.
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			m, err := EvaluateWithOptions(ctx, ds, dist, []int{a, b}, SelectOptions{ExactDiscrete: true})
			if err != nil {
				t.Fatal(err)
			}
			if m.ARR < res.Metrics.ARR-1e-12 {
				t.Fatalf("pair (%d,%d) arr %v beats exact brute force %v", a, b, m.ARR, res.Metrics.ARR)
			}
		}
	}
	// Exact mode is deterministic regardless of seed.
	res2, err := SelectWithOptions(ctx, ds, dist, SelectOptions{
		K: 2, Algorithm: BruteForce, ExactDiscrete: true, Seed: 999,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ARR != res2.Metrics.ARR || res.Indices[0] != res2.Indices[0] || res.Indices[1] != res2.Indices[1] {
		t.Fatal("exact discrete mode must not depend on the seed")
	}
}

func TestExactDiscreteGreedyMatchesSampling(t *testing.T) {
	ctx := context.Background()
	ds, dist := tableIDataset(t)
	exact, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 2, ExactDiscrete: true})
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 2, SampleSize: 20000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// With a large sample the Monte-Carlo estimate converges to the exact
	// weighted value.
	if math.Abs(exact.Metrics.ARR-sampled.Metrics.ARR) > 0.02 {
		t.Fatalf("exact %v vs sampled %v diverge", exact.Metrics.ARR, sampled.Metrics.ARR)
	}
}

func TestExactDiscreteRequiresDiscrete(t *testing.T) {
	ctx := context.Background()
	ds, _ := Hotels(20, 1)
	dist, _ := UniformLinear(ds.Dim())
	if _, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 2, ExactDiscrete: true}); err == nil {
		t.Fatal("ExactDiscrete with a continuous Θ must error")
	}
	if _, err := EvaluateWithOptions(ctx, ds, dist, []int{0}, SelectOptions{ExactDiscrete: true}); err == nil {
		t.Fatal("Evaluate ExactDiscrete with a continuous Θ must error")
	}
}
