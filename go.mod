module github.com/regretlab/fam

go 1.22
