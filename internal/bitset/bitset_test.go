package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 || s.Count() != 0 {
		t.Fatal("fresh set should be empty")
	}
	s.Add(0)
	s.Add(64)
	s.Add(129)
	if !s.Contains(0) || !s.Contains(64) || !s.Contains(129) {
		t.Fatal("Contains after Add failed")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	s.Remove(64)
	if s.Contains(64) || s.Count() != 2 {
		t.Fatal("Remove failed")
	}
	// Out of range operations are no-ops.
	s.Add(-1)
	s.Add(130)
	s.Remove(-1)
	if s.Count() != 2 || s.Contains(-1) || s.Contains(500) {
		t.Fatal("out-of-range must be ignored")
	}
}

func TestUnionAndCounts(t *testing.T) {
	a := New(100)
	b := New(100)
	for i := 0; i < 50; i++ {
		a.Add(i)
	}
	for i := 25; i < 75; i++ {
		b.Add(i)
	}
	if got := a.CountUnion(b); got != 75 {
		t.Fatalf("CountUnion = %d, want 75", got)
	}
	if got := a.AndNotCount(b); got != 25 {
		t.Fatalf("AndNotCount = %d, want 25", got)
	}
	c := a.Clone()
	c.UnionWith(b)
	if c.Count() != 75 || a.Count() != 50 {
		t.Fatal("UnionWith/Clone aliasing bug")
	}
}

func TestClearAndForEach(t *testing.T) {
	s := New(70)
	want := []int{3, 64, 69}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear failed")
	}
}

// Property: bitset agrees with a map-based reference under a random op
// sequence.
func TestAgainstMapReference(t *testing.T) {
	f := func(ops []uint16) bool {
		const n = 96
		s := New(n)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op) % n
			switch (op / 128) % 3 {
			case 0:
				s.Add(i)
				ref[i] = true
			case 1:
				s.Remove(i)
				delete(ref, i)
			case 2:
				if s.Contains(i) != ref[i] {
					return false
				}
			}
		}
		if s.Count() != len(ref) {
			return false
		}
		ok := true
		s.ForEach(func(i int) {
			if !ref[i] {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: CountUnion(a,b) == a.Clone().UnionWith(b).Count().
func TestCountUnionConsistency(t *testing.T) {
	f := func(aBits, bBits []uint8) bool {
		const n = 200
		a, b := New(n), New(n)
		for _, v := range aBits {
			a.Add(int(v) % n)
		}
		for _, v := range bBits {
			b.Add(int(v) % n)
		}
		u := a.Clone()
		u.UnionWith(b)
		return a.CountUnion(b) == u.Count() && a.AndNotCount(b) == u.Count()-a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
