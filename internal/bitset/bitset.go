// Package bitset provides a fixed-capacity bitset used for dominance
// coverage bookkeeping in the SKY-DOM baseline (selecting the k skyline
// points that together dominate the most points requires fast set union
// and cardinality over "which points does this skyline point dominate").
package bitset

import "math/bits"

// Set is a fixed-capacity bitset over [0, Len).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty bitset with capacity for n bits.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the capacity of the set.
func (s *Set) Len() int { return s.n }

// Add sets bit i. Out-of-range indices are ignored.
func (s *Set) Add(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Remove clears bit i. Out-of-range indices are ignored.
func (s *Set) Remove(i int) {
	if i < 0 || i >= s.n {
		return
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Contains reports whether bit i is set.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// UnionWith sets s = s ∪ other. The sets must have equal capacity.
func (s *Set) UnionWith(other *Set) {
	for i, w := range other.words {
		s.words[i] |= w
	}
}

// CountUnion returns |s ∪ other| without materializing the union.
func (s *Set) CountUnion(other *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(w | other.words[i])
	}
	return c
}

// AndNotCount returns |other \ s|: bits set in other but not in s.
func (s *Set) AndNotCount(other *Set) int {
	c := 0
	for i, w := range s.words {
		c += bits.OnesCount64(other.words[i] &^ w)
	}
	return c
}

// Clone returns a deep copy of s.
func (s *Set) Clone() *Set {
	out := New(s.n)
	copy(out.words, s.words)
	return out
}

// Clear removes all bits.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls fn with each set bit in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*64 + b)
			w &^= 1 << uint(b)
		}
	}
}
