// Package lp implements a dense two-phase primal simplex solver for small
// linear programs. It exists so the MRR-GREEDY baseline can evaluate the
// exact maximum regret ratio of a set under linear utility functions
// (Nanongkai et al., VLDB 2010 formulate that evaluation as one LP per
// candidate point); the LPs involved have d+1 variables and |S|+1
// constraints, so a simple dense tableau with Bland's anti-cycling rule is
// both adequate and robust.
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  A_i·x (<=|=|>=) b_i   for each row i
//	            x >= 0
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one linear constraint.
type Relation int

// Constraint senses.
const (
	LE Relation = iota // A_i·x <= b_i
	EQ                 // A_i·x == b_i
	GE                 // A_i·x >= b_i
)

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// Problem is a linear program in the form documented on the package.
type Problem struct {
	C   []float64   // objective coefficients, minimized
	A   [][]float64 // constraint matrix, one row per constraint
	B   []float64   // right-hand sides
	Rel []Relation  // sense of each constraint
}

// Solution is the result of Solve.
type Solution struct {
	Status Status
	X      []float64 // primal solution (valid when Status == Optimal)
	Value  float64   // objective value c·x (valid when Status == Optimal)
}

// ErrBadProblem is returned when the problem shape is inconsistent.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Solve runs two-phase simplex on the problem.
func Solve(p Problem) (Solution, error) {
	n := len(p.C)
	m := len(p.A)
	if len(p.B) != m || len(p.Rel) != m {
		return Solution{}, fmt.Errorf("%w: %d rows, %d rhs, %d relations", ErrBadProblem, m, len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != n {
			return Solution{}, fmt.Errorf("%w: row %d has %d coefficients, want %d", ErrBadProblem, i, len(row), n)
		}
	}

	// Standardize: ensure b >= 0 by flipping rows; add slack variables for
	// LE (+1) and GE (-1, then needing an artificial), artificials for EQ
	// and GE. Column layout: [x (n)] [slacks] [artificials].
	type rowSpec struct {
		a   []float64
		b   float64
		rel Relation
	}
	rows := make([]rowSpec, m)
	for i := range p.A {
		a := make([]float64, n)
		copy(a, p.A[i])
		b := p.B[i]
		rel := p.Rel[i]
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		rows[i] = rowSpec{a, b, rel}
	}

	numSlack := 0
	for _, r := range rows {
		if r.rel != EQ {
			numSlack++
		}
	}
	numArt := 0
	for _, r := range rows {
		if r.rel != LE {
			numArt++
		}
	}
	total := n + numSlack + numArt
	// Tableau: m rows x (total+1) columns (last column = rhs).
	t := make([][]float64, m)
	basis := make([]int, m)
	slackAt, artAt := n, n+numSlack
	for i, r := range rows {
		row := make([]float64, total+1)
		copy(row, r.a)
		row[total] = r.b
		switch r.rel {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		}
		t[i] = row
	}

	// Phase 1: minimize the sum of artificials.
	if numArt > 0 {
		obj := make([]float64, total+1)
		for j := n + numSlack; j < total; j++ {
			obj[j] = 1
		}
		// Express objective in terms of non-basic variables.
		for i, b := range basis {
			if b >= n+numSlack {
				for j := 0; j <= total; j++ {
					obj[j] -= t[i][j]
				}
			}
		}
		if status := pivotLoop(t, obj, basis, total); status == Unbounded {
			// Phase 1 objective is bounded below by 0; unbounded means a
			// numerical breakdown.
			return Solution{Status: Infeasible}, nil
		}
		if -obj[total] > 1e-7 {
			return Solution{Status: Infeasible}, nil
		}
		// Drive any artificial still in the basis out (degenerate case).
		for i, b := range basis {
			if b < n+numSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Row is all zeros over real variables: redundant
				// constraint; leave it, the artificial stays at zero.
				_ = i
			}
		}
	}

	// Phase 2: original objective over [x, slacks]; artificial columns are
	// frozen by giving them a prohibitive reduced cost.
	obj := make([]float64, total+1)
	copy(obj, p.C)
	for i, b := range basis {
		if math.Abs(obj[b]) > 0 {
			c := obj[b]
			for j := 0; j <= total; j++ {
				obj[j] -= c * t[i][j]
			}
		}
	}
	// Forbid artificials from re-entering.
	for j := n + numSlack; j < total; j++ {
		if obj[j] < 0 {
			obj[j] = 0
		}
	}
	if status := pivotLoop(t, obj, basis, n+numSlack); status == Unbounded {
		return Solution{Status: Unbounded}, nil
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = t[i][total]
		}
	}
	var val float64
	for j := range p.C {
		val += p.C[j] * x[j]
	}
	return Solution{Status: Optimal, X: x, Value: val}, nil
}

// pivotLoop runs simplex iterations until optimality or unboundedness.
// Entering columns are restricted to [0, allowedCols). Bland's rule
// (smallest eligible index) guarantees termination.
func pivotLoop(t [][]float64, obj []float64, basis []int, allowedCols int) Status {
	m := len(t)
	total := len(obj) - 1
	for iter := 0; iter < 10000; iter++ {
		enter := -1
		for j := 0; j < allowedCols; j++ {
			if obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		leave := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			a := t[i][enter]
			if a > eps {
				ratio := t[i][total] / a
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leave == -1 || basis[i] < basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave == -1 {
			return Unbounded
		}
		pivot(t, basis, leave, enter)
		// Update objective row.
		c := obj[enter]
		if c != 0 {
			for j := 0; j <= total; j++ {
				obj[j] -= c * t[leave][j]
			}
		}
	}
	return Optimal // iteration cap: return current basis (defensive)
}

// pivot performs a Gauss-Jordan pivot on t[row][col] and updates the basis.
func pivot(t [][]float64, basis []int, row, col int) {
	pr := t[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := range t[i] {
			t[i][j] -= f * pr[j]
		}
	}
	basis[row] = col
}
