package lp

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/regretlab/fam/internal/rng"
)

func solveOrFail(t *testing.T, p Problem) Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSimpleLE(t *testing.T) {
	// max x+y s.t. x<=2, y<=3  => min -(x+y), optimum -(5) at (2,3).
	s := solveOrFail(t, Problem{
		C:   []float64{-1, -1},
		A:   [][]float64{{1, 0}, {0, 1}},
		B:   []float64{2, 3},
		Rel: []Relation{LE, LE},
	})
	if s.Status != Optimal || math.Abs(s.Value+5) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
	if math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-3) > 1e-9 {
		t.Fatalf("x = %v", s.X)
	}
}

func TestEqualityAndGE(t *testing.T) {
	// min z s.t. x + y = 1, x - z <= 0, y - z <= 0 => z* = 1/2 is NOT
	// forced: minimize z with z >= x? No: constraints say z >= x and z >= y
	// is written as x - z <= 0 etc. Optimum puts x=y=0.5, z=0.5.
	s := solveOrFail(t, Problem{
		C:   []float64{0, 0, 1},
		A:   [][]float64{{1, 1, 0}, {1, 0, -1}, {0, 1, -1}},
		B:   []float64{1, 0, 0},
		Rel: []Relation{EQ, LE, LE},
	})
	if s.Status != Optimal || math.Abs(s.Value-0.5) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
	// GE form: min x s.t. x >= 3.
	s2 := solveOrFail(t, Problem{
		C:   []float64{1},
		A:   [][]float64{{1}},
		B:   []float64{3},
		Rel: []Relation{GE},
	})
	if s2.Status != Optimal || math.Abs(s2.Value-3) > 1e-9 {
		t.Fatalf("got %+v", s2)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2).
	s := solveOrFail(t, Problem{
		C:   []float64{1},
		A:   [][]float64{{-1}},
		B:   []float64{-2},
		Rel: []Relation{LE},
	})
	if s.Status != Optimal || math.Abs(s.Value-2) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2.
	s := solveOrFail(t, Problem{
		C:   []float64{1},
		A:   [][]float64{{1}, {1}},
		B:   []float64{1, 2},
		Rel: []Relation{LE, GE},
	})
	if s.Status != Infeasible {
		t.Fatalf("got %+v", s)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x s.t. x >= 0 (no upper bound).
	s := solveOrFail(t, Problem{
		C:   []float64{-1},
		A:   [][]float64{{1}},
		B:   []float64{0},
		Rel: []Relation{GE},
	})
	if s.Status != Unbounded {
		t.Fatalf("got %+v", s)
	}
}

func TestMalformed(t *testing.T) {
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}, Rel: []Relation{LE}}); err == nil {
		t.Fatal("ragged row must error")
	}
	if _, err := Solve(Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{1, 2}, Rel: []Relation{LE}}); err == nil {
		t.Fatal("rhs length mismatch must error")
	}
}

func TestDegenerateRedundantConstraints(t *testing.T) {
	// Redundant equalities: x + y = 1 stated twice.
	s := solveOrFail(t, Problem{
		C:   []float64{1, 0},
		A:   [][]float64{{1, 1}, {1, 1}},
		B:   []float64{1, 1},
		Rel: []Relation{EQ, EQ},
	})
	if s.Status != Optimal || math.Abs(s.Value) > 1e-9 {
		t.Fatalf("got %+v", s)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() == "" {
		t.Fatal("Status.String broken")
	}
}

// Property: on random box-constrained LPs (0 <= x_i <= u_i, minimize c·x
// plus one coupling constraint), the simplex optimum matches brute-force
// enumeration over the vertices of the feasible box intersected with the
// half-space — evaluated by dense grid search over box corners and the
// constraint boundary. We use a simpler exact check: without the coupling
// row the optimum is attained at x_i = u_i when c_i < 0 else 0.
func TestBoxLPProperty(t *testing.T) {
	g := rng.New(7)
	f := func(seed uint32) bool {
		n := int(seed%4) + 1
		c := make([]float64, n)
		u := make([]float64, n)
		a := make([][]float64, n)
		b := make([]float64, n)
		rel := make([]Relation, n)
		for i := 0; i < n; i++ {
			c[i] = g.Float64()*4 - 2
			u[i] = g.Float64()*3 + 0.5
			row := make([]float64, n)
			row[i] = 1
			a[i] = row
			b[i] = u[i]
			rel[i] = LE
		}
		s, err := Solve(Problem{C: c, A: a, B: b, Rel: rel})
		if err != nil || s.Status != Optimal {
			return false
		}
		var want float64
		for i := 0; i < n; i++ {
			if c[i] < 0 {
				want += c[i] * u[i]
			}
		}
		return math.Abs(s.Value-want) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: simplex matches brute-force vertex enumeration on random small
// LPs with constraints x_i <= u_i plus one random coupling constraint
// a·x <= b with a >= 0 (feasible region is a bounded polytope containing 0).
func TestCouplingLPMatchesEnumeration(t *testing.T) {
	g := rng.New(21)
	for trial := 0; trial < 200; trial++ {
		n := g.IntN(3) + 2
		c := make([]float64, n)
		u := make([]float64, n)
		coup := make([]float64, n)
		for i := 0; i < n; i++ {
			c[i] = g.Float64()*4 - 2
			u[i] = g.Float64()*2 + 0.5
			coup[i] = g.Float64() + 0.1
		}
		bCoup := g.Float64()*2 + 0.2
		a := make([][]float64, 0, n+1)
		b := make([]float64, 0, n+1)
		rel := make([]Relation, 0, n+1)
		for i := 0; i < n; i++ {
			row := make([]float64, n)
			row[i] = 1
			a = append(a, row)
			b = append(b, u[i])
			rel = append(rel, LE)
		}
		a = append(a, coup)
		b = append(b, bCoup)
		rel = append(rel, LE)

		s, err := Solve(Problem{C: c, A: a, B: b, Rel: rel})
		if err != nil || s.Status != Optimal {
			t.Fatalf("trial %d: %v %+v", trial, err, s)
		}
		// Feasibility of the reported solution.
		var dot float64
		for i := 0; i < n; i++ {
			if s.X[i] < -1e-7 || s.X[i] > u[i]+1e-7 {
				t.Fatalf("trial %d: x out of box: %v", trial, s.X)
			}
			dot += coup[i] * s.X[i]
		}
		if dot > bCoup+1e-7 {
			t.Fatalf("trial %d: coupling violated", trial)
		}
		// Grid search lower bound: optimum of an LP over this polytope is
		// at a vertex; sample a fine grid of box corners projected onto the
		// coupling constraint and verify simplex is no worse.
		best := 0.0 // x = 0 is feasible
		var rec func(i int, x []float64)
		rec = func(i int, x []float64) {
			if i == n {
				var cd, obj float64
				for j := 0; j < n; j++ {
					cd += coup[j] * x[j]
					obj += c[j] * x[j]
				}
				if cd <= bCoup+1e-12 && obj < best {
					best = obj
				}
				// Also try scaling the corner back onto the coupling plane.
				if cd > bCoup {
					scale := bCoup / cd
					obj = 0
					for j := 0; j < n; j++ {
						obj += c[j] * x[j] * scale
					}
					if obj < best {
						best = obj
					}
				}
				return
			}
			x[i] = 0
			rec(i+1, x)
			x[i] = u[i]
			rec(i+1, x)
		}
		rec(0, make([]float64, n))
		if s.Value > best+1e-6 {
			t.Fatalf("trial %d: simplex %v worse than enumeration %v", trial, s.Value, best)
		}
	}
}
