package kernelbench

import (
	"context"
	"path/filepath"
	"testing"
)

func row(n int, algo string, coreset bool, sky, cand int, ns int64) Row {
	return Row{N: n, Corr: "anticorrelated", Algorithm: algo, Coreset: coreset,
		SkylineSize: sky, Candidates: cand, NsPerOp: ns}
}

func TestGate(t *testing.T) {
	base := &Report{SchemaVersion: SchemaVersion, Rows: []Row{
		row(10_000, "greedy-shrink", true, 2618, 909, 1_000_000),
		row(100_000, "greedy-shrink", true, 7159, 2400, 5_000_000),
	}}

	// Identical run: clean gate.
	if f := Gate(base, base, 0.15); len(f) != 0 {
		t.Fatalf("identical run failed the gate: %v", f)
	}

	// Timing within the gate fraction passes; beyond it fails.
	run := &Report{SchemaVersion: SchemaVersion, Rows: []Row{
		row(10_000, "greedy-shrink", true, 2618, 909, 1_100_000),
	}}
	if f := Gate(run, base, 0.15); len(f) != 0 {
		t.Fatalf("10%% slower run failed a 15%% gate: %v", f)
	}
	run.Rows[0].NsPerOp = 1_200_000
	if f := Gate(run, base, 0.15); len(f) != 1 {
		t.Fatalf("20%% regression produced %d failures, want 1", len(f))
	}
	// gate=0 disables the timing gate entirely.
	if f := Gate(run, base, 0); len(f) != 0 {
		t.Fatalf("gate=0 still failed on timing: %v", f)
	}

	// Candidate counts are machine-independent and always gated exactly.
	run.Rows[0] = row(10_000, "greedy-shrink", true, 2618, 910, 1_000_000)
	if f := Gate(run, base, 0); len(f) != 1 {
		t.Fatalf("candidate drift produced %d failures, want 1", len(f))
	}

	// Rows without a baseline counterpart are ignored (reduced-scale CI
	// runs gate against the full committed baseline).
	run.Rows[0] = row(10_000, "greedy-add", true, 2618, 909, 99_000_000)
	if f := Gate(run, base, 0.15); len(f) != 0 {
		t.Fatalf("unmatched row failed the gate: %v", f)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{SchemaVersion: SchemaVersion, Label: "t", Rows: []Row{
		row(10_000, "greedy-shrink", true, 2618, 909, 1_000_000),
	}}
	path := filepath.Join(t.TempDir(), "BENCH_kernel.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 1 || got.Rows[0] != rep.Rows[0] || got.Label != "t" {
		t.Fatalf("round trip mismatch: %+v", got)
	}

	// Unknown schema versions are rejected, not silently compared.
	rep.SchemaVersion = 99
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("schema_version 99 loaded without error")
	}
}

// The sweep itself is deterministic in its candidate counts: two runs at
// the smallest scale agree row-for-row on everything but wall time.
func TestRunDeterministicCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep run in -short mode")
	}
	ctx := context.Background()
	cfg := Config{MaxN: 10_000, Seed: 1}
	a, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) == 0 || len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		x, y := a.Rows[i], b.Rows[i]
		if x.key() != y.key() || x.SkylineSize != y.SkylineSize || x.Candidates != y.Candidates || x.ARR != y.ARR {
			t.Fatalf("row %d diverged: %+v vs %+v", i, x, y)
		}
		if x.Coreset && (x.Candidates <= 0 || x.Candidates > x.SkylineSize) {
			t.Fatalf("row %d: implausible coreset size %d of %d", i, x.Candidates, x.SkylineSize)
		}
	}
	// The gate passes against the run's own twin (timing gate off: wall
	// clock is the one non-deterministic column, covered by TestGate).
	if f := Gate(a, b, 0); len(f) != 0 {
		t.Fatalf("twin runs failed the count gate: %v", f)
	}
}
