// Package kernelbench runs the coreset/kernel performance sweep behind
// BENCH_kernel.json: one-shot fam.Select calls over synthetic datasets
// at n ∈ {10⁴, 10⁵, 10⁶}, per (n, algorithm, coreset on/off) variant,
// reporting solver ns/op together with the deterministic candidate
// counts (skyline and coreset sizes). famexp -kernel-bench emits the
// report and gates it against a committed baseline: candidate counts
// must match exactly (they are machine-independent), and solver time
// may not regress beyond the gate fraction.
package kernelbench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	fam "github.com/regretlab/fam"
)

// SchemaVersion identifies the BENCH_kernel.json layout.
const SchemaVersion = 1

// Row is one measured variant of the sweep.
type Row struct {
	// N is the dataset size; Corr the synthetic correlation class.
	N    int    `json:"n"`
	Corr string `json:"corr"`
	// Algorithm is the solver's short name.
	Algorithm string `json:"algorithm"`
	// Coreset reports whether the ε-kernel prepass was enabled; NoSky
	// marks the variant that disables the skyline so the coreset alone
	// carries the pruning (the n=10⁶ demonstration row).
	Coreset bool `json:"coreset"`
	NoSky   bool `json:"nosky,omitempty"`
	// SkylineSize and Candidates are the deterministic candidate counts
	// before and after pruning (Candidates = −1 when Coreset is off).
	SkylineSize int `json:"skyline_size"`
	Candidates  int `json:"candidates"`
	// NsPerOp is the solver (query-phase) wall time of the best run;
	// PreprocessNs the matching preprocessing time (skyline, sampling,
	// coreset, matrix build).
	NsPerOp      int64 `json:"ns_per_op"`
	PreprocessNs int64 `json:"preprocess_ns"`
	// ARR records the reported quality so baseline diffs also show any
	// answer drift.
	ARR float64 `json:"arr"`
}

// Report is the BENCH_kernel.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label,omitempty"`
	Rows          []Row  `json:"rows"`
}

// variant is one sweep entry; runs is the best-of count (wall-clock
// noise suppression for the cheap rows, a single run for the 10⁶ ones).
type variant struct {
	n       int
	corr    fam.Correlation
	algo    fam.Algorithm
	coreset bool
	noSky   bool
	runs    int
}

// sweep returns the variants for maxN, the largest dataset size to
// include. The greedy-shrink delta strategy is omitted from the
// unpruned 10⁵ row (quadratic in the 7k-point skyline) and every
// unpruned variant is omitted at 10⁶, where only the coreset makes the
// GREEDY-SHRINK family feasible; the NoSky row demonstrates the coreset
// pruning 10⁶ raw candidates without skyline help.
func sweep(maxN int) []variant {
	var out []variant
	shrinkFamily := []fam.Algorithm{fam.GreedyShrink, fam.GreedyShrinkLazy, fam.GreedyAdd}
	// Best-of counts rise as rows shrink: millisecond-scale solver times
	// need several samples before a 15% regression gate is meaningful.
	if maxN >= 10_000 {
		for _, a := range shrinkFamily {
			out = append(out,
				variant{n: 10_000, corr: fam.Anticorrelated, algo: a, coreset: false, runs: 9},
				variant{n: 10_000, corr: fam.Anticorrelated, algo: a, coreset: true, runs: 9})
		}
	}
	if maxN >= 100_000 {
		for _, a := range shrinkFamily {
			if a != fam.GreedyShrink {
				out = append(out, variant{n: 100_000, corr: fam.Anticorrelated, algo: a, coreset: false, runs: 5})
			}
			out = append(out, variant{n: 100_000, corr: fam.Anticorrelated, algo: a, coreset: true, runs: 5})
		}
	}
	if maxN >= 1_000_000 {
		for _, a := range shrinkFamily {
			out = append(out, variant{n: 1_000_000, corr: fam.Independent, algo: a, coreset: true, runs: 1})
		}
		out = append(out, variant{n: 1_000_000, corr: fam.Independent, algo: fam.GreedyShrinkLazy,
			coreset: true, noSky: true, runs: 1})
	}
	return out
}

// Config parameterizes a sweep run.
type Config struct {
	// MaxN bounds the dataset sizes (10_000, 100_000, or 1_000_000).
	MaxN int
	// Seed drives dataset generation and utility sampling.
	Seed uint64
	// K and SampleSize fix the query shape; zero values take 10 and 200.
	K          int
	SampleSize int
	// Log, when non-nil, receives one progress line per variant.
	Log io.Writer
}

// Run executes the sweep and returns the report rows in sweep order.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.MaxN == 0 {
		cfg.MaxN = 100_000
	}
	if cfg.K == 0 {
		cfg.K = 10
	}
	if cfg.SampleSize == 0 {
		cfg.SampleSize = 200
	}
	datasets := map[int]*fam.Dataset{}
	rep := &Report{SchemaVersion: SchemaVersion}
	for _, v := range sweep(cfg.MaxN) {
		ds, ok := datasets[v.n]
		if !ok {
			var err error
			ds, err = fam.Synthetic(v.n, 4, v.corr, cfg.Seed)
			if err != nil {
				return nil, err
			}
			datasets[v.n] = ds
		}
		dist, err := fam.UniformLinear(ds.Dim())
		if err != nil {
			return nil, err
		}
		q := fam.Query{
			Data: ds, Dist: dist,
			K: cfg.K, Algorithm: v.algo,
			SampleSize: cfg.SampleSize, Seed: cfg.Seed,
			DisableSkyline: v.noSky,
			Coreset:        v.coreset,
		}
		row := Row{N: v.n, Corr: v.corr.String(), Algorithm: v.algo.String(), Coreset: v.coreset, NoSky: v.noSky}
		for r := 0; r < v.runs; r++ {
			// A fixed worker count keeps the best-of-k timings comparable
			// across machines with different core counts (results are
			// bit-identical at any setting — only the wall clock moves).
			res, tel, err := fam.Select(ctx, q, fam.Exec{Parallelism: 4})
			if err != nil {
				return nil, fmt.Errorf("n=%d algo=%s coreset=%t: %w", v.n, v.algo, v.coreset, err)
			}
			if r == 0 || int64(tel.Query) < row.NsPerOp {
				row.NsPerOp = int64(tel.Query)
				row.PreprocessNs = int64(tel.Preprocess)
			}
			row.SkylineSize = res.SkylineSize
			row.Candidates = res.CoresetSize
			row.ARR = res.Metrics.ARR
		}
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "n=%-8d %-18s coreset=%-5t nosky=%-5t candidates=%d/%d query=%v preprocess=%v\n",
				row.N, row.Algorithm, row.Coreset, row.NoSky, row.Candidates, row.SkylineSize,
				time.Duration(row.NsPerOp), time.Duration(row.PreprocessNs))
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// key identifies a row for baseline matching (everything deterministic
// about the variant, nothing measured).
func (r Row) key() string {
	return fmt.Sprintf("%d|%s|%s|%t|%t", r.N, r.Corr, r.Algorithm, r.Coreset, r.NoSky)
}

// Load reads a Report from disk, rejecting unknown schema versions.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("%s: schema_version %d, want %d", path, rep.SchemaVersion, SchemaVersion)
	}
	return &rep, nil
}

// Write stores the report as indented JSON.
func (rep *Report) Write(path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Gate compares the run against a baseline: rows present in both must
// agree exactly on candidate counts (machine-independent determinism)
// and may not regress solver time by more than the gate fraction
// (benchstat-style, per row). Rows only one side has are ignored, so a
// reduced-scale CI run gates against a full-scale committed baseline.
// Returns the human-readable failures, empty when the gate passes.
func Gate(run, base *Report, gate float64) []string {
	baseRows := make(map[string]Row, len(base.Rows))
	for _, r := range base.Rows {
		baseRows[r.key()] = r
	}
	var failures []string
	for _, r := range run.Rows {
		b, ok := baseRows[r.key()]
		if !ok {
			continue
		}
		if r.SkylineSize != b.SkylineSize || r.Candidates != b.Candidates {
			failures = append(failures, fmt.Sprintf(
				"%s: candidate counts diverged from baseline: skyline %d→%d, coreset %d→%d",
				r.key(), b.SkylineSize, r.SkylineSize, b.Candidates, r.Candidates))
		}
		if gate > 0 && b.NsPerOp > 0 && float64(r.NsPerOp) > float64(b.NsPerOp)*(1+gate) {
			failures = append(failures, fmt.Sprintf(
				"%s: solver time regressed %.1f%% (baseline %v, run %v, gate %.0f%%)",
				r.key(), 100*(float64(r.NsPerOp)/float64(b.NsPerOp)-1),
				time.Duration(b.NsPerOp), time.Duration(r.NsPerOp), 100*gate))
		}
	}
	return failures
}
