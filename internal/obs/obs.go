// Package obs is the zero-dependency span-tree tracer behind per-query
// observability: a per-request Collector assembles the spans every layer
// of a query opens (serve request handling, engine admission, cache
// lookups and singleflight fills, the select stages, solver rounds) into
// one finished tree, carried across layers by context.
//
// Design constraints, in order:
//
//   - Tracing off must cost nothing. A context without a collector makes
//     Start return (ctx, nil), and every Span method is a nil-receiver
//     no-op — no allocations, no formatting, no locking on the disabled
//     path (obs_test proves 0 allocs/op).
//   - Span structure must be deterministic. For a fixed (Query, Exec)
//     the tree's names, nesting, counts, and attributes are identical at
//     any worker count — only durations (and the pool-grant events,
//     which exist per granted ticket) vary. Node.Shape renders exactly
//     the deterministic part, so trees are golden-testable.
//   - Trace identity must cross processes. Trace IDs are 32 lowercase
//     hex characters and span IDs 16, matching the W3C traceparent
//     format, so the serve layer can fold an incoming traceparent /
//     X-Fam-Trace header into the collector and echo it outward — the
//     seam a multi-node router needs.
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key=value annotation on a span. Values are preformatted
// strings: attrs are part of the deterministic tree shape, so anything
// timing-dependent belongs in an Event instead.
type Attr struct {
	Key   string
	Value string
}

// Event is one timed occurrence inside a span — e.g. one pool helper
// grant with its enqueue-to-grant wait. Events may be appended by
// helper goroutines concurrently with the span owner, and they are
// excluded from Node.Shape: their count and durations depend on
// scheduling timing (a ticket that went stale grants no event).
type Event struct {
	Name string
	Dur  time.Duration
}

// Span is one timed operation in a trace. TraceID/SpanID/Parent link it
// into the tree; Attrs annotate it. The creating goroutine owns Name,
// Start, Dur, and Attrs (set attrs before End); Event is safe to call
// from any goroutine.
type Span struct {
	TraceID string
	SpanID  string
	Parent  string
	Name    string
	Start   time.Time
	Dur     time.Duration
	Attrs   []Attr

	col    *Collector
	mu     sync.Mutex
	events []Event
	ended  bool
}

// Collector gathers the finished spans of one request. All methods are
// safe for concurrent use; span IDs are a per-collector counter, so a
// single-threaded request produces identical IDs run after run.
type Collector struct {
	traceID string
	remote  string // parent span id from an incoming traceparent
	seq     atomic.Uint64

	mu   sync.Mutex
	done []*Span
}

// NewCollector returns a collector for one request. An empty traceID
// (or an invalid one) draws a fresh random 32-hex ID; a valid incoming
// ID is adopted verbatim so the trace continues across processes.
func NewCollector(traceID string) *Collector {
	if !ValidTraceID(traceID) {
		traceID = NewTraceID()
	}
	return &Collector{traceID: traceID}
}

// SetRemoteParent records the caller's span ID from an incoming
// traceparent header: root spans of this collector carry it as their
// Parent, linking the local tree under the remote caller's span.
func (c *Collector) SetRemoteParent(spanID string) {
	if c != nil {
		c.remote = spanID
	}
}

// TraceID returns the collector's trace ID ("" for a nil collector).
func (c *Collector) TraceID() string {
	if c == nil {
		return ""
	}
	return c.traceID
}

// StartSpan opens a root-level span (Parent = the remote caller's span
// when one was set). Nil-safe: a nil collector returns a nil span.
func (c *Collector) StartSpan(name string) *Span {
	if c == nil {
		return nil
	}
	return &Span{
		TraceID: c.traceID,
		SpanID:  c.nextSpanID(),
		Parent:  c.remote,
		Name:    name,
		Start:   time.Now(),
		col:     c,
	}
}

func (c *Collector) nextSpanID() string {
	return fmt.Sprintf("%016x", c.seq.Add(1))
}

// StartChild opens a child span under s. Nil-safe: children of a nil
// span are nil, so instrumented code needs no enabled-check.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		TraceID: s.TraceID,
		SpanID:  s.col.nextSpanID(),
		Parent:  s.SpanID,
		Name:    name,
		Start:   time.Now(),
		col:     s.col,
	}
}

// End fixes the span's duration and hands it to the collector. Only
// ended spans appear in Tree/Node/Spans — a span abandoned mid-flight
// (e.g. a detached fill still running at sink time) is simply absent.
// Idempotent (second and later calls are no-ops, so "explicit End to
// read the tree + deferred End for error paths" is safe) and nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.mu.Unlock()
	s.Dur = time.Since(s.Start)
	s.col.mu.Lock()
	s.col.done = append(s.col.done, s)
	s.col.mu.Unlock()
}

// SetAttr annotates the span. Attrs join the deterministic tree shape:
// only values that are pure functions of (Query, Exec) belong here.
// Nil-safe; call from the owning goroutine before End.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// SetAttrInt annotates the span with an integer value. The nil-check
// runs before any formatting, keeping the disabled path allocation-free.
func (s *Span) SetAttrInt(key string, value int) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.Itoa(value)})
}

// SetAttrBool annotates the span with a boolean value. Nil-safe.
func (s *Span) SetAttrBool(key string, value bool) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: strconv.FormatBool(value)})
}

// Event appends a timed event. Safe from any goroutine (pool helpers
// report their grant waits onto the span of the query that enqueued
// them); nil-safe.
func (s *Span) Event(name string, d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, Event{Name: name, Dur: d})
	s.mu.Unlock()
}

// Events returns a snapshot of the span's events. Nil-safe.
func (s *Span) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Collector returns the span's collector (nil for a nil span).
func (s *Span) Collector() *Collector {
	if s == nil {
		return nil
	}
	return s.col
}

// Spans returns a snapshot of the finished spans in End order.
func (c *Collector) Spans() []*Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Span(nil), c.done...)
}

// SpanCount returns the number of finished spans.
func (c *Collector) SpanCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Node is one assembled position in the finished span tree. Children
// are ordered by span ID (creation order for single-threaded requests).
type Node struct {
	Span     *Span
	Children []*Node
}

// assemble builds the id→node index over the finished spans. Caller
// must not hold c.mu.
func (c *Collector) assemble() (map[string]*Node, []*Node) {
	spans := c.Spans()
	nodes := make(map[string]*Node, len(spans))
	for _, sp := range spans {
		nodes[sp.SpanID] = &Node{Span: sp}
	}
	var roots []*Node
	for _, sp := range spans {
		n := nodes[sp.SpanID]
		if parent, ok := nodes[sp.Parent]; ok && sp.Parent != sp.SpanID {
			parent.Children = append(parent.Children, n)
		} else {
			// No locally-collected parent: a root (possibly continuing a
			// remote caller's span).
			roots = append(roots, n)
		}
	}
	order := func(ns []*Node) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].Span.SpanID < ns[j].Span.SpanID })
	}
	for _, n := range nodes {
		order(n.Children)
	}
	order(roots)
	return nodes, roots
}

// Tree assembles the finished spans and returns the first root (nil
// when nothing finished). The usual request has exactly one root — the
// serve layer's http.request span, or engine.select when the library
// is traced directly.
func (c *Collector) Tree() *Node {
	if c == nil {
		return nil
	}
	_, roots := c.assemble()
	if len(roots) == 0 {
		return nil
	}
	return roots[0]
}

// Node assembles the finished spans and returns the subtree rooted at
// spanID (nil when that span has not ended). The engine uses it to
// attach its own subtree to Telemetry while the serve layer's enclosing
// request span is still open.
func (c *Collector) Node(spanID string) *Node {
	if c == nil {
		return nil
	}
	nodes, _ := c.assemble()
	return nodes[spanID]
}

// Shape renders the deterministic structure of the subtree: one line
// per span — the indented name plus its attrs in key=value form — with
// children ordered by their own rendered shape (span ID as the final
// tie-break, which only orders identical siblings). Durations, span
// IDs, and events are excluded, so Shape is identical run after run
// and at any worker count for a fixed (Query, Exec): the
// golden-testable view of a trace.
func (n *Node) Shape() string {
	var sb strings.Builder
	n.shape(&sb, 0)
	return sb.String()
}

func (n *Node) shape(sb *strings.Builder, depth int) {
	if n == nil {
		return
	}
	for i := 0; i < depth; i++ {
		sb.WriteString("  ")
	}
	sb.WriteString(n.Span.Name)
	for _, a := range n.Span.Attrs {
		sb.WriteByte(' ')
		sb.WriteString(a.Key)
		sb.WriteByte('=')
		sb.WriteString(a.Value)
	}
	sb.WriteByte('\n')
	type childShape struct {
		rendered string
		id       string
	}
	shapes := make([]childShape, len(n.Children))
	for i, ch := range n.Children {
		var csb strings.Builder
		ch.shape(&csb, depth+1)
		shapes[i] = childShape{rendered: csb.String(), id: ch.Span.SpanID}
	}
	sort.Slice(shapes, func(i, j int) bool {
		if shapes[i].rendered != shapes[j].rendered {
			return shapes[i].rendered < shapes[j].rendered
		}
		return shapes[i].id < shapes[j].id
	})
	for _, cs := range shapes {
		sb.WriteString(cs.rendered)
	}
}

// JSONSpan is the wire form of one span subtree, used by the serve
// layer's JSONL trace log.
type JSONSpan struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	Parent   string            `json:"parent_span_id,omitempty"`
	Start    time.Time         `json:"start"`
	DurNS    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []JSONEvent       `json:"events,omitempty"`
	Children []*JSONSpan       `json:"children,omitempty"`
}

// JSONEvent is the wire form of one span event.
type JSONEvent struct {
	Name  string `json:"name"`
	DurNS int64  `json:"dur_ns"`
}

// JSON renders the subtree in its wire form.
func (n *Node) JSON() *JSONSpan {
	if n == nil {
		return nil
	}
	sp := n.Span
	out := &JSONSpan{
		Name:   sp.Name,
		SpanID: sp.SpanID,
		Parent: sp.Parent,
		Start:  sp.Start,
		DurNS:  int64(sp.Dur),
	}
	if len(sp.Attrs) > 0 {
		out.Attrs = make(map[string]string, len(sp.Attrs))
		for _, a := range sp.Attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, ev := range sp.Events() {
		out.Events = append(out.Events, JSONEvent{Name: ev.Name, DurNS: int64(ev.Dur)})
	}
	for _, ch := range n.Children {
		out.Children = append(out.Children, ch.JSON())
	}
	return out
}

// ctxKey carries either the current *Span or, before the first span
// opens, the request's *Collector.
type ctxKey struct{}

// NewContext returns a context carrying sp as the current span; spans
// started from the returned context become its children.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// NewCollectorContext arms a context for tracing before any span is
// open: the first Start against it opens a root span on col.
func NewCollectorContext(ctx context.Context, col *Collector) context.Context {
	return context.WithValue(ctx, ctxKey{}, col)
}

// FromContext returns the current span (nil when the context carries no
// span — including when it carries only a collector).
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// Active reports whether the context is armed for tracing (carries a
// span or a collector).
func Active(ctx context.Context) bool {
	return ctx.Value(ctxKey{}) != nil
}

// CollectorFromContext returns the context's collector whether the
// context carries a bare collector or a span (nil when unarmed).
func CollectorFromContext(ctx context.Context) *Collector {
	switch v := ctx.Value(ctxKey{}).(type) {
	case *Span:
		return v.Collector()
	case *Collector:
		return v
	default:
		return nil
	}
}

// Start opens a span named name under the context's current position —
// a child of the current span, or a root span when the context carries
// a bare collector — and returns a context with the new span current.
// On an unarmed context it returns (ctx, nil) with zero allocations:
// the disabled fast path every hot loop relies on.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	switch v := ctx.Value(ctxKey{}).(type) {
	case *Span:
		sp := v.StartChild(name)
		return NewContext(ctx, sp), sp
	case *Collector:
		sp := v.StartSpan(name)
		return NewContext(ctx, sp), sp
	default:
		return ctx, nil
	}
}

// NewTraceID draws a random 32-hex trace ID. math/rand/v2's global
// generator is seeded per process and safe for concurrent use; trace
// IDs need uniqueness, not unpredictability.
func NewTraceID() string {
	return fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
}

// ValidTraceID reports whether s is a well-formed trace ID: 32
// lowercase hex characters, not all zero (the W3C invalid sentinel).
func ValidTraceID(s string) bool {
	return validHex(s, 32)
}

// ValidSpanID reports whether s is a well-formed span ID: 16 lowercase
// hex characters, not all zero.
func ValidSpanID(s string) bool {
	return validHex(s, 16)
}

func validHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	zero := true
	for i := 0; i < n; i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
		if c != '0' {
			zero = false
		}
	}
	return !zero
}

// ParseTraceparent parses a W3C traceparent header value
// (version-traceid-spanid-flags). It accepts any version byte and
// ignores the flags, returning ok only when both IDs are well-formed.
func ParseTraceparent(v string) (traceID, spanID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(v), "-")
	if len(parts) < 4 {
		return "", "", false
	}
	if len(parts[0]) != 2 || !ValidTraceID(parts[1]) || !ValidSpanID(parts[2]) {
		return "", "", false
	}
	return parts[1], parts[2], true
}

// FormatTraceparent renders a version-00 traceparent value with the
// sampled flag set — what the serve layer echoes (and what a router
// would forward downstream).
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}
