package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObsSpanTreeAssembly(t *testing.T) {
	col := NewCollector("")
	ctx := NewCollectorContext(context.Background(), col)

	ctx, root := Start(ctx, "request")
	if root == nil {
		t.Fatal("Start on collector context returned nil span")
	}
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.SetAttrInt("k", 3)
	grand.End()
	child.End()
	_, sib := Start(ctx, "sibling")
	sib.End()
	root.End()

	tree := col.Tree()
	if tree == nil {
		t.Fatal("Tree returned nil")
	}
	if tree.Span.Name != "request" {
		t.Fatalf("root = %q, want request", tree.Span.Name)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(tree.Children))
	}
	want := "request\n  child\n    grandchild k=3\n  sibling\n"
	if got := tree.Shape(); got != want {
		t.Fatalf("Shape:\n%s\nwant:\n%s", got, want)
	}
	for _, sp := range col.Spans() {
		if sp.TraceID != col.TraceID() {
			t.Fatalf("span %s trace ID %q != collector %q", sp.Name, sp.TraceID, col.TraceID())
		}
	}
}

func TestObsSubtreeNode(t *testing.T) {
	col := NewCollector("")
	ctx := NewCollectorContext(context.Background(), col)
	ctx, root := Start(ctx, "outer")
	ictx, inner := Start(ctx, "inner")
	_, leaf := Start(ictx, "leaf")
	leaf.End()
	inner.End()

	// Subtree is available while the enclosing span is still open.
	sub := col.Node(inner.SpanID)
	if sub == nil || sub.Span.Name != "inner" {
		t.Fatalf("Node(inner) = %+v", sub)
	}
	if got, want := sub.Shape(), "inner\n  leaf\n"; got != want {
		t.Fatalf("subtree shape %q, want %q", got, want)
	}
	root.End()
}

func TestObsDisabledFastPath(t *testing.T) {
	ctx := context.Background()
	got, sp := Start(ctx, "anything")
	if sp != nil {
		t.Fatal("Start on unarmed context returned a span")
	}
	if got != ctx {
		t.Fatal("Start on unarmed context returned a new context")
	}
	// Every method must be a nil-receiver no-op.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 1)
	sp.SetAttrBool("b", true)
	sp.Event("e", time.Millisecond)
	sp.End()
	if sp.StartChild("c") != nil {
		t.Fatal("StartChild on nil span returned a span")
	}
	if Active(ctx) {
		t.Fatal("unarmed context reports Active")
	}
}

func TestObsDisabledZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := Start(ctx, "hot")
		sp.SetAttrInt("n", 42)
		sp.SetAttrBool("shared", true)
		sp.Event("grant", time.Microsecond)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestObsShapeDeterministicAcrossEndOrder(t *testing.T) {
	build := func(reverse bool) string {
		col := NewCollector("")
		ctx := NewCollectorContext(context.Background(), col)
		ctx, root := Start(ctx, "root")
		_, a := Start(ctx, "alpha")
		_, b := Start(ctx, "beta")
		if reverse {
			b.End()
			a.End()
		} else {
			a.End()
			b.End()
		}
		root.End()
		return col.Tree().Shape()
	}
	if f, r := build(false), build(true); f != r {
		t.Fatalf("shape depends on End order:\n%s\nvs\n%s", f, r)
	}
}

func TestObsConcurrentEvents(t *testing.T) {
	col := NewCollector("")
	sp := col.StartSpan("pooled")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp.Event("grant", time.Microsecond)
		}()
	}
	wg.Wait()
	sp.End()
	if got := len(sp.Events()); got != 16 {
		t.Fatalf("events = %d, want 16", got)
	}
	// Events must not appear in the deterministic shape.
	if got := col.Tree().Shape(); got != "pooled\n" {
		t.Fatalf("shape %q includes events", got)
	}
}

func TestObsTraceIDValidation(t *testing.T) {
	id := NewTraceID()
	if !ValidTraceID(id) {
		t.Fatalf("NewTraceID produced invalid ID %q", id)
	}
	for _, bad := range []string{
		"", "abc", strings.Repeat("0", 32), strings.Repeat("G", 32),
		strings.Repeat("A", 32), // uppercase hex is rejected
		strings.Repeat("a", 31), strings.Repeat("a", 33),
	} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true", bad)
		}
	}
	// An invalid incoming ID is replaced, a valid one adopted.
	if col := NewCollector("not-hex"); !ValidTraceID(col.TraceID()) {
		t.Fatalf("collector kept invalid trace ID %q", col.TraceID())
	}
	if col := NewCollector(id); col.TraceID() != id {
		t.Fatalf("collector replaced valid trace ID: %q", col.TraceID())
	}
}

func TestObsTraceparentRoundTrip(t *testing.T) {
	traceID := NewTraceID()
	spanID := "00f067aa0ba902b7"
	v := FormatTraceparent(traceID, spanID)
	gotTrace, gotSpan, ok := ParseTraceparent(v)
	if !ok || gotTrace != traceID || gotSpan != spanID {
		t.Fatalf("round trip failed: %q -> (%q, %q, %v)", v, gotTrace, gotSpan, ok)
	}
	for _, bad := range []string{
		"", "00-zz-b7-01",
		"00-" + strings.Repeat("0", 32) + "-" + spanID + "-01",
		"00-" + traceID + "-" + strings.Repeat("0", 16) + "-01",
		"0-" + traceID + "-" + spanID + "-01",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Fatalf("ParseTraceparent(%q) accepted", bad)
		}
	}
	// Remote parent links local roots under the caller's span.
	col := NewCollector(traceID)
	col.SetRemoteParent(spanID)
	sp := col.StartSpan("local")
	sp.End()
	if sp.Parent != spanID {
		t.Fatalf("root parent = %q, want remote %q", sp.Parent, spanID)
	}
	if tree := col.Tree(); tree == nil || tree.Span.Name != "local" {
		t.Fatalf("remote-parent span is not a local root: %+v", tree)
	}
}

func TestObsJSONTree(t *testing.T) {
	col := NewCollector("")
	ctx := NewCollectorContext(context.Background(), col)
	ctx, root := Start(ctx, "req")
	root.SetAttr("endpoint", "/v2/select")
	_, ch := Start(ctx, "inner")
	ch.Event("pool.grant", 5*time.Microsecond)
	ch.End()
	root.End()

	j := col.Tree().JSON()
	if j.Name != "req" || j.Attrs["endpoint"] != "/v2/select" {
		t.Fatalf("JSON root = %+v", j)
	}
	if len(j.Children) != 1 || j.Children[0].Name != "inner" {
		t.Fatalf("JSON children = %+v", j.Children)
	}
	ev := j.Children[0].Events
	if len(ev) != 1 || ev[0].Name != "pool.grant" || ev[0].DurNS != 5000 {
		t.Fatalf("JSON events = %+v", ev)
	}
}
