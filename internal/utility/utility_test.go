package utility

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/regretlab/fam/internal/rng"
)

func TestLinearValue(t *testing.T) {
	f := Linear{W: []float64{0.5, 2}}
	if got := f.Value(0, []float64{2, 1}); got != 3 {
		t.Fatalf("Linear = %v", got)
	}
}

func TestCESValue(t *testing.T) {
	// rho = 1 degenerates to linear.
	f := CES{W: []float64{0.5, 0.5}, Rho: 1}
	if got := f.Value(0, []float64{0.4, 0.8}); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("CES rho=1 = %v", got)
	}
	// rho = 0.5 rewards balance: balanced point beats lopsided one of the
	// same linear score.
	g := CES{W: []float64{0.5, 0.5}, Rho: 0.5}
	balanced := g.Value(0, []float64{0.5, 0.5})
	lopsided := g.Value(0, []float64{1, 0})
	if balanced <= lopsided {
		t.Fatalf("CES should favor balance: %v vs %v", balanced, lopsided)
	}
	// Negative attributes clamp to zero, zero score stays zero.
	if got := g.Value(0, []float64{-1, 0}); got != 0 {
		t.Fatalf("CES negative clamp = %v", got)
	}
}

func TestTableValue(t *testing.T) {
	f := Table{U: []float64{0.9, 0.1}}
	if f.Value(0, nil) != 0.9 || f.Value(1, nil) != 0.1 {
		t.Fatal("Table lookup failed")
	}
	if f.Value(-1, nil) != 0 || f.Value(5, nil) != 0 {
		t.Fatal("out-of-range index must score 0")
	}
}

func TestConstructorsValidate(t *testing.T) {
	if _, err := NewUniformSimplexLinear(0); err == nil {
		t.Fatal("d=0 must error")
	}
	if _, err := NewUniformBoxLinear(-1); err == nil {
		t.Fatal("d<0 must error")
	}
	if _, err := NewUniformSphereLinear(0); err == nil {
		t.Fatal("d=0 must error")
	}
	if _, err := NewCESUniform(2, 0); err == nil {
		t.Fatal("rho=0 must error")
	}
	if _, err := NewCESUniform(2, 1.5); err == nil {
		t.Fatal("rho>1 must error")
	}
	if _, err := NewDiscrete(nil, nil, true); err == nil {
		t.Fatal("empty Discrete must error")
	}
	if _, err := NewDiscrete([]Func{Linear{W: []float64{1}}}, []float64{1, 2}, true); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := NewDiscrete([]Func{Linear{W: []float64{1}}}, []float64{-1}, true); err == nil {
		t.Fatal("negative probability must error")
	}
	if _, err := NewDiscrete([]Func{Linear{W: []float64{1}}}, []float64{0}, true); err == nil {
		t.Fatal("zero mass must error")
	}
	if _, err := NewLatentLinear(nil, 0); err == nil {
		t.Fatal("nil sampler must error")
	}
}

func TestDistributionMetadata(t *testing.T) {
	us, _ := NewUniformSimplexLinear(3)
	ub, _ := NewUniformBoxLinear(4)
	usp, _ := NewUniformSphereLinear(2)
	ces, _ := NewCESUniform(5, 0.5)
	for _, d := range []Distribution{us, ub, usp, ces} {
		if !d.Monotone() {
			t.Fatalf("%s should be monotone", d.Name())
		}
		if d.Dim() <= 0 {
			t.Fatalf("%s dim = %d", d.Name(), d.Dim())
		}
		if d.Name() == "" {
			t.Fatal("empty name")
		}
	}
}

func TestSimplexSampling(t *testing.T) {
	g := rng.New(1)
	us, _ := NewUniformSimplexLinear(4)
	for i := 0; i < 50; i++ {
		f := us.Sample(g).(Linear)
		var sum float64
		for _, w := range f.W {
			if w < 0 {
				t.Fatal("negative simplex weight")
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("simplex weights sum = %v", sum)
		}
	}
}

func TestBoxSampling(t *testing.T) {
	g := rng.New(2)
	ub, _ := NewUniformBoxLinear(3)
	for i := 0; i < 50; i++ {
		f := ub.Sample(g).(Linear)
		for _, w := range f.W {
			if w < 0 || w >= 1 {
				t.Fatalf("box weight out of range: %v", w)
			}
		}
	}
}

func TestDiscreteSampling(t *testing.T) {
	fa := Table{U: []float64{1, 0}}
	fb := Table{U: []float64{0, 1}}
	d, err := NewDiscrete([]Func{fa, fb}, []float64{3, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.Monotone() {
		t.Fatal("declared non-monotone")
	}
	if d.Dim() != 0 {
		t.Fatal("Table-based Discrete should report dim 0")
	}
	g := rng.New(3)
	counts := map[bool]int{}
	for i := 0; i < 40000; i++ {
		f := d.Sample(g).(Table)
		counts[f.U[0] == 1]++
	}
	p := float64(counts[true]) / 40000
	if math.Abs(p-0.75) > 0.01 {
		t.Fatalf("discrete p = %v, want 0.75", p)
	}
}

func TestDiscreteDimLinearAndCES(t *testing.T) {
	dl, _ := NewDiscrete([]Func{Linear{W: []float64{1, 2}}}, []float64{1}, true)
	if dl.Dim() != 2 {
		t.Fatalf("linear Discrete dim = %d", dl.Dim())
	}
	dc, _ := NewDiscrete([]Func{CES{W: []float64{1, 2, 3}, Rho: 0.5}}, []float64{1}, true)
	if dc.Dim() != 3 {
		t.Fatalf("CES Discrete dim = %d", dc.Dim())
	}
}

type fixedSampler struct {
	w []float64
}

func (f fixedSampler) SampleVector(*rng.RNG) []float64 { return f.w }
func (f fixedSampler) VectorDim() int                  { return len(f.w) }

func TestLatentLinear(t *testing.T) {
	ll, err := NewLatentLinear(fixedSampler{w: []float64{1, -2}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ll.Monotone() {
		t.Fatal("latent linear must be non-monotone")
	}
	if ll.Dim() != 2 {
		t.Fatalf("dim = %d", ll.Dim())
	}
	g := rng.New(4)
	f := ll.Sample(g)
	// 1*1 + (-2)*0.5 + 0.5 = 0.5
	if got := f.Value(0, []float64{1, 0.5}); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("offset linear = %v", got)
	}
	// Clamped at zero.
	if got := f.Value(0, []float64{0, 10}); got != 0 {
		t.Fatalf("negative utility must clamp to 0, got %v", got)
	}
	if _, err := NewLatentLinear(fixedSampler{w: nil}, 0); err == nil {
		t.Fatal("zero-dim sampler must error")
	}
}

// Property: all monotone families really are monotone — increasing one
// attribute never decreases the utility.
func TestMonotoneFamiliesProperty(t *testing.T) {
	g := rng.New(5)
	us, _ := NewUniformSimplexLinear(4)
	ces, _ := NewCESUniform(4, 0.7)
	dists := []Distribution{us, ces}
	f := func(pRaw [4]uint8, inc uint8, coordRaw uint8) bool {
		p := make([]float64, 4)
		for i, v := range pRaw {
			p[i] = float64(v) / 255
		}
		q := append([]float64(nil), p...)
		coord := int(coordRaw) % 4
		q[coord] += float64(inc%100) / 100
		for _, d := range dists {
			fn := d.Sample(g)
			if fn.Value(0, q) < fn.Value(0, p)-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
