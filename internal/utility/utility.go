// Package utility defines the utility-function model of the paper
// (Definition 1) and the probability distributions Θ over utility functions
// (Section II-A). A utility function assigns a non-negative score to each
// point; a distribution samples utility functions for the Monte-Carlo
// estimator of the average regret ratio (Theorem 4).
//
// Families provided:
//
//   - Linear: f(p) = w·p, the workhorse of the k-regret literature.
//   - CES: f(p) = (Σ w_i p_i^ρ)^(1/ρ), the non-linear concave family used
//     by the "k-regret queries with nonlinear utilities" line of work.
//   - Table: explicit per-point utilities (the paper's Table I example and
//     the countable-F case of Appendix A).
//
// Distributions provided:
//
//   - UniformSimplexLinear: weights uniform on the probability simplex
//     (Dirichlet(1)), the standard "uniform linear" model.
//   - UniformBoxLinear: weights uniform on [0,1]^d, the measure the 2-d
//     dynamic program integrates in closed form (Section IV-C2).
//   - UniformSphereLinear: weights uniform on the non-negative unit sphere.
//   - CESUniform: CES with simplex-uniform weights and fixed ρ.
//   - Discrete: a finite set of utility functions with probabilities
//     (Appendix A).
//   - LatentLinear: linear in a latent-feature space with weight vectors
//     drawn from an arbitrary vector sampler (used for the GMM-learned Θ of
//     the Yahoo! pipeline; weights may be negative, so it is non-monotone).
package utility

import (
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/rng"
)

// Func is a utility function over database points. Implementations receive
// both the point's index in the database and its attribute vector:
// vector-based families (Linear, CES) ignore the index, while Table-based
// families ignore the vector. All utilities must be non-negative and finite
// for valid inputs.
type Func interface {
	Value(idx int, p []float64) float64
}

// Linear is f(p) = W·p.
type Linear struct {
	W []float64
}

// Value implements Func.
func (l Linear) Value(_ int, p []float64) float64 {
	var s float64
	for i, w := range l.W {
		s += w * p[i]
	}
	return s
}

// CES is the constant-elasticity-of-substitution utility
// f(p) = (Σ w_i p_i^ρ)^(1/ρ) with 0 < ρ <= 1. At ρ = 1 it degenerates to
// Linear; smaller ρ rewards balanced points more.
type CES struct {
	W   []float64
	Rho float64
}

// Value implements Func.
func (c CES) Value(_ int, p []float64) float64 {
	var s float64
	for i, w := range c.W {
		v := p[i]
		if v < 0 {
			v = 0
		}
		s += w * math.Pow(v, c.Rho)
	}
	if s <= 0 {
		return 0
	}
	return math.Pow(s, 1/c.Rho)
}

// Table holds one explicit utility value per database point, indexed by the
// point's position in the database.
type Table struct {
	U []float64
}

// Value implements Func. Out-of-range indices score zero.
func (t Table) Value(idx int, _ []float64) float64 {
	if idx < 0 || idx >= len(t.U) {
		return 0
	}
	return t.U[idx]
}

// Distribution is a distribution Θ over utility functions.
type Distribution interface {
	// Sample draws one utility function.
	Sample(g *rng.RNG) Func
	// Monotone reports whether every function in the support is
	// non-decreasing in every attribute. When true, each user's favorite
	// point lies on the skyline, enabling the skyline preprocessing step.
	Monotone() bool
	// Dim returns the attribute dimensionality the sampled functions
	// expect, or 0 when the functions are index-based (Table).
	Dim() int
	// Name is a short identifier used in experiment reports.
	Name() string
}

// ErrBadDim is returned by constructors given non-positive dimensions.
var ErrBadDim = errors.New("utility: dimension must be positive")

// UniformSimplexLinear samples Linear functions with weights uniform on the
// probability simplex.
type UniformSimplexLinear struct {
	D int
}

// NewUniformSimplexLinear validates the dimension.
func NewUniformSimplexLinear(d int) (UniformSimplexLinear, error) {
	if d <= 0 {
		return UniformSimplexLinear{}, ErrBadDim
	}
	return UniformSimplexLinear{D: d}, nil
}

// Sample implements Distribution.
func (u UniformSimplexLinear) Sample(g *rng.RNG) Func { return Linear{W: g.Dirichlet(1, u.D)} }

// Monotone implements Distribution.
func (u UniformSimplexLinear) Monotone() bool { return true }

// Dim implements Distribution.
func (u UniformSimplexLinear) Dim() int { return u.D }

// Name implements Distribution.
func (u UniformSimplexLinear) Name() string { return fmt.Sprintf("uniform-simplex-linear(d=%d)", u.D) }

// UniformBoxLinear samples Linear functions with weights uniform on the
// unit box [0,1]^d — the measure integrated in closed form by the 2-d
// dynamic program.
type UniformBoxLinear struct {
	D int
}

// NewUniformBoxLinear validates the dimension.
func NewUniformBoxLinear(d int) (UniformBoxLinear, error) {
	if d <= 0 {
		return UniformBoxLinear{}, ErrBadDim
	}
	return UniformBoxLinear{D: d}, nil
}

// Sample implements Distribution.
func (u UniformBoxLinear) Sample(g *rng.RNG) Func {
	w := make([]float64, u.D)
	g.UniformVec(w)
	return Linear{W: w}
}

// Monotone implements Distribution.
func (u UniformBoxLinear) Monotone() bool { return true }

// Dim implements Distribution.
func (u UniformBoxLinear) Dim() int { return u.D }

// Name implements Distribution.
func (u UniformBoxLinear) Name() string { return fmt.Sprintf("uniform-box-linear(d=%d)", u.D) }

// UniformSphereLinear samples Linear functions with weights uniform on the
// non-negative orthant of the unit sphere.
type UniformSphereLinear struct {
	D int
}

// NewUniformSphereLinear validates the dimension.
func NewUniformSphereLinear(d int) (UniformSphereLinear, error) {
	if d <= 0 {
		return UniformSphereLinear{}, ErrBadDim
	}
	return UniformSphereLinear{D: d}, nil
}

// Sample implements Distribution.
func (u UniformSphereLinear) Sample(g *rng.RNG) Func { return Linear{W: g.UnitSphereNonNeg(u.D)} }

// Monotone implements Distribution.
func (u UniformSphereLinear) Monotone() bool { return true }

// Dim implements Distribution.
func (u UniformSphereLinear) Dim() int { return u.D }

// Name implements Distribution.
func (u UniformSphereLinear) Name() string { return fmt.Sprintf("uniform-sphere-linear(d=%d)", u.D) }

// CESUniform samples CES functions with simplex-uniform weights and a fixed
// elasticity parameter ρ in (0, 1].
type CESUniform struct {
	D   int
	Rho float64
}

// NewCESUniform validates the parameters.
func NewCESUniform(d int, rho float64) (CESUniform, error) {
	if d <= 0 {
		return CESUniform{}, ErrBadDim
	}
	if rho <= 0 || rho > 1 {
		return CESUniform{}, fmt.Errorf("utility: CES rho must be in (0,1], got %v", rho)
	}
	return CESUniform{D: d, Rho: rho}, nil
}

// Sample implements Distribution.
func (c CESUniform) Sample(g *rng.RNG) Func { return CES{W: g.Dirichlet(1, c.D), Rho: c.Rho} }

// Monotone implements Distribution.
func (c CESUniform) Monotone() bool { return true }

// Dim implements Distribution.
func (c CESUniform) Dim() int { return c.D }

// Name implements Distribution.
func (c CESUniform) Name() string { return fmt.Sprintf("ces(d=%d,rho=%g)", c.D, c.Rho) }

// Discrete is a finite distribution over explicit utility functions
// (Appendix A of the paper). Probabilities need not be normalized.
type Discrete struct {
	Funcs    []Func
	Probs    []float64
	monotone bool
	cdf      []float64
}

// NewDiscrete builds a Discrete distribution. monotone declares whether all
// member functions are monotone (the constructor cannot verify arbitrary
// Funcs, so the caller asserts it).
func NewDiscrete(funcs []Func, probs []float64, monotone bool) (*Discrete, error) {
	if len(funcs) == 0 {
		return nil, errors.New("utility: Discrete needs at least one function")
	}
	if len(probs) != len(funcs) {
		return nil, fmt.Errorf("utility: %d funcs but %d probabilities", len(funcs), len(probs))
	}
	cdf := make([]float64, len(probs))
	var run float64
	for i, p := range probs {
		if p < 0 || math.IsNaN(p) {
			return nil, fmt.Errorf("utility: probability %d is %v", i, p)
		}
		run += p
		cdf[i] = run
	}
	if run <= 0 {
		return nil, errors.New("utility: probabilities sum to zero")
	}
	return &Discrete{Funcs: funcs, Probs: probs, monotone: monotone, cdf: cdf}, nil
}

// Sample implements Distribution.
func (d *Discrete) Sample(g *rng.RNG) Func { return d.Funcs[g.CategoricalCDF(d.cdf)] }

// Monotone implements Distribution.
func (d *Discrete) Monotone() bool { return d.monotone }

// Dim implements Distribution. Table-based members make this 0.
func (d *Discrete) Dim() int {
	if l, ok := d.Funcs[0].(Linear); ok {
		return len(l.W)
	}
	if c, ok := d.Funcs[0].(CES); ok {
		return len(c.W)
	}
	return 0
}

// Name implements Distribution.
func (d *Discrete) Name() string { return fmt.Sprintf("discrete(%d)", len(d.Funcs)) }

// VectorSampler produces weight vectors; the Gaussian-mixture model in
// internal/gmm implements it.
type VectorSampler interface {
	SampleVector(g *rng.RNG) []float64
	VectorDim() int
}

// LatentLinear samples Linear utility functions whose weight vectors come
// from an arbitrary VectorSampler, e.g. a GMM fitted to matrix-factorized
// user latent vectors (the Yahoo! pipeline of Section V-B2). Points are
// expected to be latent item-factor vectors. Weights may be negative, so
// the distribution is declared non-monotone; sampled utilities are shifted
// by Offset to keep them non-negative if the caller requests it.
type LatentLinear struct {
	Sampler VectorSampler
	// Offset is added to every utility value so that scores stay
	// non-negative when the latent space allows negative dot products.
	Offset float64
}

// NewLatentLinear validates the sampler.
func NewLatentLinear(s VectorSampler, offset float64) (*LatentLinear, error) {
	if s == nil {
		return nil, errors.New("utility: nil vector sampler")
	}
	if s.VectorDim() <= 0 {
		return nil, ErrBadDim
	}
	return &LatentLinear{Sampler: s, Offset: offset}, nil
}

// offsetLinear is Linear plus a constant, clamped at zero.
type offsetLinear struct {
	w      []float64
	offset float64
}

// Value implements Func.
func (o offsetLinear) Value(_ int, p []float64) float64 {
	var s float64
	for i, w := range o.w {
		s += w * p[i]
	}
	s += o.offset
	if s < 0 {
		return 0
	}
	return s
}

// Sample implements Distribution.
func (l *LatentLinear) Sample(g *rng.RNG) Func {
	return offsetLinear{w: l.Sampler.SampleVector(g), offset: l.Offset}
}

// Monotone implements Distribution.
func (l *LatentLinear) Monotone() bool { return false }

// Dim implements Distribution.
func (l *LatentLinear) Dim() int { return l.Sampler.VectorDim() }

// Name implements Distribution.
func (l *LatentLinear) Name() string { return fmt.Sprintf("latent-linear(d=%d)", l.Dim()) }

// Footprint returns the exact resident bytes of one utility function's
// payload: the weight (or table) vector plus its slice header and any
// scalar fields. Unknown implementations get a conservative 64-byte
// estimate — the pre-exact-sizing default. Serving-side caches use this
// to make byte budgets real instead of guessed.
func Footprint(f Func) int64 {
	const sliceHeader = 24
	switch t := f.(type) {
	case Linear:
		return sliceHeader + int64(len(t.W))*8
	case CES:
		return sliceHeader + 8 + int64(len(t.W))*8
	case Table:
		return sliceHeader + int64(len(t.U))*8
	case offsetLinear:
		return sliceHeader + 8 + int64(len(t.w))*8
	default:
		return 64
	}
}
