package skyline

import (
	"context"
	"testing"

	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/rng"
)

// antiPoints generates an anticorrelated-ish cloud with a large skyline:
// points near the simplex plane Σx = 1, so most are mutually
// non-dominated — the worst case for the SFS window scan.
func antiPoints(n, d int, seed uint64) [][]float64 {
	g := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		var sum float64
		for j := range p {
			p[j] = g.Float64()
			sum += p[j]
		}
		scale := (0.8 + 0.4*g.Float64()) / sum
		for j := range p {
			p[j] *= scale
		}
		pts[i] = p
	}
	return pts
}

// TestComputeOptsMatchesSerial pins the satellite guarantee: the sharded
// SFS window scan returns exactly the serial skyline at any worker
// count, with and without an externally owned pool, on inputs larger
// than one parallel block.
func TestComputeOptsMatchesSerial(t *testing.T) {
	pool := par.NewPool(4)
	defer pool.Close()
	cases := [][][]float64{
		antiPoints(37, 3, 1),              // sub-block
		antiPoints(computeBlock+13, 4, 2), // crosses one block boundary
		antiPoints(3*computeBlock+5, 2, 3),
	}
	for ci, pts := range cases {
		want, err := Compute(pts)
		if err != nil {
			t.Fatal(err)
		}
		bnl, err := ComputeBNL(pts)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(want, bnl) {
			t.Fatalf("case %d: SFS %d points vs BNL %d points", ci, len(want), len(bnl))
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, p := range []*par.Pool{nil, pool} {
				got, err := ComputeOpts(context.Background(), pts, ComputeOptions{Workers: workers, Pool: p})
				if err != nil {
					t.Fatal(err)
				}
				if !equalInts(got, want) {
					t.Fatalf("case %d workers=%d pool=%v: parallel skyline %d points differs from serial %d",
						ci, workers, p != nil, len(got), len(want))
				}
			}
		}
	}
}

// TestComputeOptsPreCanceled: a canceled context must stop before the
// scan emits anything.
func TestComputeOptsPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeOpts(ctx, antiPoints(600, 3, 4), ComputeOptions{Workers: 4}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
