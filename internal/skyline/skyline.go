// Package skyline computes skylines (Pareto-optimal subsets) and dominance
// statistics. GREEDY-SHRINK's preprocessing step restricts the candidate
// set to the skyline (for monotone utility distributions, every user's best
// point is a skyline point), and the SKY-DOM baseline operates directly on
// skyline points and their dominance sets.
//
// Two algorithms are provided: a block-nested-loop scan (the reference
// implementation, quadratic) and a sort-first filter (sort by descending
// attribute sum before the scan), which is the classic SFS optimization —
// after sorting, a point can only be dominated by points earlier in the
// order, so the inner loop shrinks drastically on correlated data.
package skyline

import (
	"context"
	"fmt"
	"sort"

	"github.com/regretlab/fam/internal/bitset"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/sched"
)

// Compute returns the indices (in increasing order) of the skyline points
// of the input set using the sort-filter-skyline algorithm. Duplicate
// points are all kept if they are on the skyline (none dominates another).
// Compute runs serially; ComputeOpts shards the dominance tests.
func Compute(points [][]float64) ([]int, error) {
	return ComputeOpts(nil, points, ComputeOptions{Workers: 1})
}

// ComputeOptions configures ComputeOpts.
type ComputeOptions struct {
	// Workers bounds the goroutines sharding the dominance tests (0 = all
	// CPUs, 1 = serial). The result is identical at any setting.
	Workers int
	// Pool is an optional externally owned worker pool; nil spawns
	// per-call goroutines.
	Pool *par.Pool
	// Sched tags the pool fan-outs with scheduling attributes for the
	// pool's grant policy when the context carries none of its own. The
	// skyline is identical under any scheduling.
	Sched sched.Attrs
}

// computeBlock bounds the number of sorted points filtered per parallel
// round. Larger blocks amortize dispatch; smaller blocks keep the window
// (the only data the parallel phase reads) growing frequently so later
// tests prune against a fuller skyline.
const computeBlock = 512

// ComputeOpts is Compute with the SFS window scan parallelized — the
// preprocessing bottleneck on large anticorrelated datasets, where the
// skyline (and therefore the window every point is tested against) is
// huge. The sorted order is processed in blocks: each block's points are
// tested against the current window concurrently (sharded across the
// workers with contiguous blocks), then the survivors are resolved
// against each other serially in sorted order and appended. Dominance is
// a pure transitive predicate and survivors are appended in the same
// order the serial scan would, so the result is bit-identical to Compute
// at any worker count. A nil context is treated as background.
func ComputeOpts(ctx context.Context, points [][]float64, opts ComputeOptions) ([]int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = sched.ContextWithDefault(ctx, opts.Sched)
	if _, err := point.Validate(points); err != nil {
		return nil, err
	}
	n := len(points)
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range points {
		order[i] = i
		var s float64
		for _, v := range p {
			s += v
		}
		sums[i] = s
	}
	// Descending attribute sum: a dominating point always has a strictly
	// larger sum, so dominators precede dominated points in this order.
	sort.SliceStable(order, func(a, b int) bool { return sums[order[a]] > sums[order[b]] })

	var window []int // indices into points, all mutually non-dominated
	survives := make([]bool, computeBlock)
	for start := 0; start < n; start += computeBlock {
		end := start + computeBlock
		if end > n {
			end = n
		}
		block := order[start:end]
		// Parallel phase: test each block member against the frozen
		// window. Per-item work is one dominance scan — cheap — so small
		// blocks shed workers (par.Bounded).
		nw := par.Bounded(opts.Workers, len(block))
		if err := opts.Pool.Shards(ctx, nw, len(block), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				dominated := false
				for _, wi := range window {
					if point.Dominates(points[wi], points[block[i]]) {
						dominated = true
						break
					}
				}
				survives[i] = !dominated
			}
		}); err != nil {
			return nil, err
		}
		// Serial phase: a survivor can still be dominated by an earlier
		// member of its own block. Only window-surviving earlier members
		// need checking — if the dominator was itself dominated, then by
		// transitivity a window point dominates this one too, and the
		// parallel phase already caught it.
		windowLen := len(window)
		for i, idx := range block {
			if !survives[i] {
				continue
			}
			dominated := false
			for _, wi := range window[windowLen:] {
				if point.Dominates(points[wi], points[idx]) {
					dominated = true
					break
				}
			}
			if !dominated {
				window = append(window, idx)
			}
		}
	}
	sort.Ints(window)
	return window, nil
}

// ComputeBNL returns the skyline via the block-nested-loop reference
// algorithm. It is used to cross-check Compute in tests and kept exported
// for the ablation benches.
func ComputeBNL(points [][]float64) ([]int, error) {
	if _, err := point.Validate(points); err != nil {
		return nil, err
	}
	var out []int
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && point.Dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	return out, nil
}

// DominanceSets returns, for each of the given candidate indices, the set
// of point indices (over the full point set) that the candidate dominates.
// Used by the SKY-DOM baseline's max-coverage greedy. Each candidate's
// dominance scan is independent, so the candidates are sharded across
// `workers` goroutines (0 = all CPUs, 1 = serial), dispatched on the
// optional pool (nil spawns per-call goroutines); set membership is a
// pure predicate, so the result is identical at any worker count. A nil
// context is treated as background.
func DominanceSets(ctx context.Context, points [][]float64, candidates []int, workers int, pool *par.Pool) ([]*bitset.Set, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(points)
	out := make([]*bitset.Set, len(candidates))
	nw := par.Workers(workers, len(candidates))
	if err := pool.Shards(ctx, nw, len(candidates), func(w, lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			if ctx.Err() != nil {
				return
			}
			c := candidates[ci]
			s := bitset.New(n)
			for j, q := range points {
				if j != c && point.Dominates(points[c], q) {
					s.Add(j)
				}
			}
			out[ci] = s
		}
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Skyline2DSorted returns the 2-d skyline points sorted by strictly
// descending first attribute (and therefore strictly ascending second
// attribute), which is the input convention of the Section IV dynamic
// program. Points that tie on both attributes are collapsed to one.
// The returned indices refer to the input set.
func Skyline2DSorted(points [][]float64) ([]int, error) {
	d, err := point.Validate(points)
	if err != nil {
		return nil, err
	}
	if d != 2 {
		return nil, fmt.Errorf("skyline: Skyline2DSorted requires 2-d points, got dimension %d", d)
	}
	idx, err := Compute(points)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := points[idx[a]], points[idx[b]]
		if pa[0] != pb[0] {
			return pa[0] > pb[0]
		}
		return pa[1] > pb[1]
	})
	// Collapse exact duplicates; skyline guarantees no dominance between
	// members, so after sorting, consecutive equal points are duplicates.
	out := idx[:0]
	for i, id := range idx {
		if i > 0 {
			prev := points[out[len(out)-1]]
			cur := points[id]
			if prev[0] == cur[0] && prev[1] == cur[1] {
				continue
			}
		}
		out = append(out, id)
	}
	return out, nil
}
