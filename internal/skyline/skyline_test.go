package skyline

import (
	"testing"
	"testing/quick"

	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/rng"
)

func TestComputeSimple(t *testing.T) {
	pts := [][]float64{
		{1, 0},     // skyline
		{0, 1},     // skyline
		{0.5, 0},   // dominated by {1,0}
		{0.6, 0.6}, // skyline
		{0.6, 0.5}, // dominated by {0.6,0.6}
	}
	idx, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 3}
	if len(idx) != len(want) {
		t.Fatalf("skyline = %v, want %v", idx, want)
	}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("skyline = %v, want %v", idx, want)
		}
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(nil); err == nil {
		t.Fatal("empty input must error")
	}
	if _, err := ComputeBNL([][]float64{{1}, {1, 2}}); err == nil {
		t.Fatal("ragged input must error")
	}
}

func TestDuplicatesKept(t *testing.T) {
	pts := [][]float64{{1, 1}, {1, 1}, {0, 0}}
	idx, err := Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Equal points do not dominate each other; both stay.
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Fatalf("skyline with duplicates = %v", idx)
	}
}

// Property: SFS and BNL agree on random data, every skyline point is
// undominated, and every non-skyline point is dominated by some skyline
// point.
func TestComputeMatchesBNLProperty(t *testing.T) {
	g := rng.New(1234)
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%40) + 1
		d := int(dRaw%4) + 1
		pts := make([][]float64, n)
		for i := range pts {
			p := make([]float64, d)
			for j := range p {
				// Coarse grid to force ties and duplicates.
				p[j] = float64(g.IntN(5))
			}
			pts[i] = p
		}
		sfs, err := Compute(pts)
		if err != nil {
			return false
		}
		bnl, err := ComputeBNL(pts)
		if err != nil {
			return false
		}
		if len(sfs) != len(bnl) {
			return false
		}
		for i := range sfs {
			if sfs[i] != bnl[i] {
				return false
			}
		}
		inSky := make(map[int]bool, len(sfs))
		for _, i := range sfs {
			inSky[i] = true
		}
		for i, p := range pts {
			if inSky[i] {
				for j, q := range pts {
					if i != j && point.Dominates(q, p) {
						return false // skyline member dominated
					}
				}
			} else {
				found := false
				for _, s := range sfs {
					if point.Dominates(pts[s], p) {
						found = true
						break
					}
				}
				if !found {
					return false // non-member not dominated by skyline
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDominanceSets(t *testing.T) {
	pts := [][]float64{
		{2, 2}, // dominates 1,2,3
		{1, 1}, // dominates 3
		{2, 0},
		{0, 0},
	}
	sets, err := DominanceSets(nil, pts, []int{0, 1}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := sets[0].Count(); got != 3 {
		t.Fatalf("point 0 dominates %d, want 3", got)
	}
	if got := sets[1].Count(); got != 1 {
		t.Fatalf("point 1 dominates %d, want 1", got)
	}
	if !sets[1].Contains(3) {
		t.Fatal("point 1 should dominate point 3")
	}
}

func TestSkyline2DSorted(t *testing.T) {
	pts := [][]float64{
		{0.2, 0.9},
		{0.9, 0.2},
		{0.5, 0.5},
		{0.1, 0.1}, // dominated
		{0.9, 0.2}, // duplicate of index 1
	}
	idx, err := Skyline2DSorted(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 3 {
		t.Fatalf("got %v", idx)
	}
	// Sorted by descending first attribute.
	if pts[idx[0]][0] != 0.9 || pts[idx[1]][0] != 0.5 || pts[idx[2]][0] != 0.2 {
		t.Fatalf("order wrong: %v", idx)
	}
	// Second attribute strictly ascending.
	for i := 1; i < len(idx); i++ {
		if pts[idx[i]][1] <= pts[idx[i-1]][1] {
			t.Fatalf("second attribute not strictly ascending: %v", idx)
		}
	}
	if _, err := Skyline2DSorted([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("3-d input must error")
	}
}

// Property: Skyline2DSorted output has strictly decreasing x and strictly
// increasing y.
func TestSkyline2DSortedMonotoneProperty(t *testing.T) {
	g := rng.New(99)
	f := func(nRaw uint8) bool {
		n := int(nRaw%30) + 1
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{float64(g.IntN(8)), float64(g.IntN(8))}
		}
		idx, err := Skyline2DSorted(pts)
		if err != nil || len(idx) == 0 {
			return false
		}
		for i := 1; i < len(idx); i++ {
			a, b := pts[idx[i-1]], pts[idx[i]]
			if !(b[0] < a[0] && b[1] > a[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
