// Package sched is the scheduling subsystem of the serving path: the
// grant policy that decides which queued helper request a freed pool
// worker serves next, the priority/deadline attributes that requests
// carry (threaded through a context so every Shards fan-out inherits
// them without signature changes), and the admission control that sheds
// work whose deadline has already passed.
//
// The package deliberately knows nothing about shard decomposition —
// internal/par owns block boundaries and the caller-participating
// execution loop, and delegates only the ordering of pending helper
// requests here. That split keeps every bit-determinism guarantee of
// the pool intact: a policy changes which request a helper serves
// first, never which blocks a request is cut into.
package sched

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Priority is a request's scheduling class. The zero value is Normal,
// so attribute-less traffic (every pre-existing caller) schedules
// exactly as before.
type Priority int8

// The three priority classes. Grant policies see them through their
// weights, so the classes are a vocabulary, not a hard-coded ladder.
const (
	Low    Priority = -1
	Normal Priority = 0
	High   Priority = 1
)

// Attrs are the scheduling attributes of one request: its priority
// class and its absolute deadline (zero = none). The zero value means
// "normal class, no deadline" — the behavior of every request before
// scheduling existed.
type Attrs struct {
	Priority Priority
	Deadline time.Time
	// SoftDeadline keeps the deadline as an ordering signal only: the
	// request still sorts earliest-deadline-first among its class, but
	// admission never sheds it when the deadline has passed. Detached
	// cache fills use it — a fill that outlives its requester's deadline
	// should complete and warm the cache, not abort half-built.
	SoftDeadline bool
	// Wait, when non-nil, accumulates the queue wait of every helper
	// ticket enqueued under these attrs: each grant adds its
	// enqueue-to-grant latency. Serving layers attach one counter per
	// query so queue wait is attributable per request, not only
	// engine-wide (Stats.QueueWait keeps the global sum).
	Wait *WaitCounter
}

// WaitCounter accumulates queue-wait durations across concurrent
// grants. The zero value is ready to use; all methods are safe for
// concurrent use.
type WaitCounter struct {
	ns atomic.Int64
}

// Add records one grant's queue wait.
func (w *WaitCounter) Add(d time.Duration) {
	if w != nil {
		w.ns.Add(int64(d))
	}
}

// Load returns the total queue wait accumulated so far.
func (w *WaitCounter) Load() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.ns.Load())
}

// zero reports whether the attrs carry no scheduling signal. A wait
// counter alone is a signal: it must reach the grant queue to
// attribute waits, even for normal-class no-deadline requests.
func (a Attrs) zero() bool { return a.Priority == Normal && a.Deadline.IsZero() && a.Wait == nil }

type ctxKey struct{}

// NewContext returns a context carrying the scheduling attributes.
// Everything dispatched under the returned context — skyline scans,
// utility materialization, solver evaluations — is granted pool helpers
// per these attrs.
func NewContext(ctx context.Context, a Attrs) context.Context {
	return context.WithValue(ctx, ctxKey{}, a)
}

// FromContext returns the context's scheduling attributes (the zero
// Attrs when none were attached).
func FromContext(ctx context.Context) Attrs {
	a, _ := ctx.Value(ctxKey{}).(Attrs)
	return a
}

// ContextWithDefault attaches attrs only when the context does not
// already carry any: an instance-level default that request-level
// attrs always win over.
func ContextWithDefault(ctx context.Context, a Attrs) context.Context {
	if a.zero() {
		return ctx
	}
	if _, ok := ctx.Value(ctxKey{}).(Attrs); ok {
		return ctx
	}
	return NewContext(ctx, a)
}

// ErrShed is returned when admission control rejects a request whose
// deadline has already passed: running it could only waste helpers that
// live requests are waiting for. It wraps context.DeadlineExceeded so
// callers that only understand deadlines (e.g. an HTTP layer mapping
// overruns to 503) classify an escaped shed correctly.
var ErrShed = fmt.Errorf("sched: deadline already passed; request shed: %w", context.DeadlineExceeded)

// Clock abstracts time for deadline admission and queue-wait
// accounting; tests inject a fixed clock to make EDF ordering and shed
// decisions fully deterministic.
type Clock func() time.Time

// Ticket is the policy-visible view of one queued helper request: its
// attributes and its arrival sequence number. Seq is a total order over
// arrivals, so any policy that falls back to it is deterministic.
type Ticket struct {
	Attrs Attrs
	Seq   uint64
}

// Policy orders pending helper requests. Less reports whether a should
// be granted before b; it must be a strict weak ordering and must break
// every tie deterministically (falling back to Seq guarantees that).
type Policy interface {
	Name() string
	Less(a, b Ticket) bool
}

// FIFO is the legacy grant policy: strict arrival order, ignoring
// priorities and deadlines.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Less implements Policy: earlier arrivals first.
func (FIFO) Less(a, b Ticket) bool { return a.Seq < b.Seq }

// DefaultWeights are the class weights of the default WeightedEDF
// policy. The spacing leaves room for operators to slot custom classes
// between the built-in ones.
var DefaultWeights = map[Priority]int{Low: 1, Normal: 4, High: 16}

// WeightedEDF is the production grant policy: weighted priority classes
// first (higher weight granted first; classes given equal weights
// interleave), earliest-deadline-first among requests of equal weight
// (a request without a deadline sorts after every request with one),
// arrival order as the final tie-break. With every request at the zero
// Attrs it degenerates to exact FIFO.
type WeightedEDF struct {
	// Weights maps each priority class to its weight; nil uses
	// DefaultWeights, and classes absent from the map weigh as Normal.
	Weights map[Priority]int
}

// Name implements Policy.
func (WeightedEDF) Name() string { return "weighted-edf" }

func (p WeightedEDF) weight(c Priority) int {
	w := p.Weights
	if w == nil {
		w = DefaultWeights
	}
	if v, ok := w[c]; ok {
		return v
	}
	// Absent classes weigh as Normal — from the custom map when it
	// defines Normal, else from the defaults (a partial map must never
	// zero the classes it does not mention).
	if v, ok := w[Normal]; ok {
		return v
	}
	return DefaultWeights[Normal]
}

// Less implements Policy.
func (p WeightedEDF) Less(a, b Ticket) bool {
	if wa, wb := p.weight(a.Attrs.Priority), p.weight(b.Attrs.Priority); wa != wb {
		return wa > wb
	}
	da, db := a.Attrs.Deadline, b.Attrs.Deadline
	switch {
	case da.IsZero() != db.IsZero():
		return !da.IsZero() // the request with a deadline is more urgent
	case !da.IsZero() && !da.Equal(db):
		return da.Before(db)
	}
	return a.Seq < b.Seq
}

// Stats is a point-in-time snapshot of a grant queue's counters.
type Stats struct {
	// Policy names the active grant policy.
	Policy string `json:"policy"`
	// Granted counts helper requests handed to a worker; Stale counts
	// requests discarded because their Shards call had already finished
	// by the time a worker reached them (their blocks were all claimed —
	// a stale grant costs one queue pop, no work).
	Granted uint64 `json:"granted"`
	Stale   uint64 `json:"stale"`
	// Shed counts requests rejected by admission control because their
	// deadline had already passed when they asked for helpers.
	Shed uint64 `json:"shed"`
	// QueueWait is the summed time granted requests spent queued between
	// enqueue and grant; QueueWait/Granted is the average grant latency.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// Depth is the current number of queued requests (stale entries not
	// yet discarded included).
	Depth int `json:"depth"`
}

// Call marks the lifetime of one Shards invocation so the queue can
// discard its tickets once every block is claimed. It is created by the
// pool per Shards call, passed to every Push of that call, and finished
// through Queue.FinishCall after the join. A Call belongs to exactly
// one Queue; its fields are guarded by that queue's lock.
type Call struct {
	done  bool
	items []*item
}

// item is one queued helper request.
type item struct {
	ticket   Ticket
	enqueued time.Time
	call     *Call
	run      func()
	index    int // heap position
}

// Queue is the policy-ordered set of pending helper requests. All
// methods are safe for concurrent use.
type Queue struct {
	mu     sync.Mutex
	policy Policy
	clock  Clock
	h      itemHeap
	seq    uint64
	stats  Stats
}

// NewQueue builds a grant queue over the policy (nil = WeightedEDF
// defaults) and clock (nil = time.Now).
func NewQueue(policy Policy, clock Clock) *Queue {
	if policy == nil {
		policy = WeightedEDF{}
	}
	if clock == nil {
		clock = time.Now
	}
	return &Queue{policy: policy, clock: clock, h: itemHeap{policy: policy}}
}

// ShedExpired implements admission control: when the attrs carry a
// hard deadline that has already passed, the request is counted as
// shed and true is returned — the caller must not enqueue or run it.
// Soft deadlines order grants but never shed.
func (q *Queue) ShedExpired(a Attrs) bool {
	if a.Deadline.IsZero() || a.SoftDeadline {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.clock().Before(a.Deadline) {
		return false
	}
	q.stats.Shed++
	return true
}

// Push enqueues one helper request for the call. Requests for an
// already finished call are dropped (counted stale) rather than queued.
func (q *Queue) Push(a Attrs, call *Call, run func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if call != nil && call.done {
		q.stats.Stale++
		return
	}
	q.seq++
	it := &item{
		ticket:   Ticket{Attrs: a, Seq: q.seq},
		enqueued: q.clock(),
		call:     call,
		run:      run,
	}
	heap.Push(&q.h, it)
	if call != nil {
		call.items = append(call.items, it)
	}
}

// FinishCall marks the call complete and removes its still-queued
// tickets (counted stale): every block of the call is claimed, so
// granting them could only waste a pop, and leaving them queued would
// inflate Depth — which admission control reads as genuine load.
func (q *Queue) FinishCall(c *Call) {
	if c == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	c.done = true
	for _, it := range c.items {
		if it.index >= 0 {
			heap.Remove(&q.h, it.index)
			it.index = -1
			q.stats.Stale++
		}
	}
	c.items = nil
}

// Pop removes and returns the best pending request per the policy,
// discarding stale tickets along the way. It returns nil when the queue
// is empty.
func (q *Queue) Pop() func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.h.Len() > 0 {
		it := heap.Pop(&q.h).(*item)
		it.index = -1
		if it.call != nil && it.call.done {
			q.stats.Stale++
			continue
		}
		q.stats.Granted++
		wait := q.clock().Sub(it.enqueued)
		q.stats.QueueWait += wait
		// Attribute the same wait to the request's own counter, so the
		// query that enqueued the ticket can report its personal queue
		// wait alongside the engine-wide sum.
		it.ticket.Attrs.Wait.Add(wait)
		return it.run
	}
	return nil
}

// Depth returns the number of queued requests (including not yet
// discarded stale tickets).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.h.Len()
}

// Stats returns a snapshot of the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Policy = q.policy.Name()
	s.Depth = q.h.Len()
	return s
}

// itemHeap orders items by the queue's policy (the heap carries the
// policy so container/heap's Less can reach it).
type itemHeap struct {
	policy Policy
	items  []*item
}

func (h *itemHeap) Len() int { return len(h.items) }
func (h *itemHeap) Less(i, j int) bool {
	return h.policy.Less(h.items[i].ticket, h.items[j].ticket)
}
func (h *itemHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index, h.items[j].index = i, j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(h.items)
	h.items = append(h.items, it)
}
func (h *itemHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	return it
}
