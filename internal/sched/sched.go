// Package sched is the scheduling subsystem of the serving path: the
// grant policy that decides which queued helper request a freed pool
// worker serves next, the priority/deadline attributes that requests
// carry (threaded through a context so every Shards fan-out inherits
// them without signature changes), and the admission control that sheds
// work whose deadline has already passed.
//
// The package deliberately knows nothing about shard decomposition —
// internal/par owns block boundaries and the caller-participating
// execution loop, and delegates only the ordering of pending helper
// requests here. That split keeps every bit-determinism guarantee of
// the pool intact: a policy changes which request a helper serves
// first, never which blocks a request is cut into.
package sched

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/regretlab/fam/internal/obs"
)

// Priority is a request's scheduling class. The zero value is Normal,
// so attribute-less traffic (every pre-existing caller) schedules
// exactly as before.
type Priority int8

// The three priority classes. Grant policies see them through their
// weights, so the classes are a vocabulary, not a hard-coded ladder.
const (
	Low    Priority = -1
	Normal Priority = 0
	High   Priority = 1
)

// String returns the stable lower-case class name used as the key of
// per-class stats maps and metric labels ("low", "normal", "high";
// custom classes render as "priority(<n>)").
func (p Priority) String() string {
	switch p {
	case Low:
		return "low"
	case Normal:
		return "normal"
	case High:
		return "high"
	}
	return fmt.Sprintf("priority(%d)", int8(p))
}

// Attrs are the scheduling attributes of one request: its priority
// class and its absolute deadline (zero = none). The zero value means
// "normal class, no deadline" — the behavior of every request before
// scheduling existed.
type Attrs struct {
	Priority Priority
	Deadline time.Time
	// Weight, when positive, overrides the request's class weight in
	// weight-aware policies — the per-tenant hook: a tenant granted
	// Weight 8 inside the Normal class outranks default Normal traffic
	// and accrues deficit at its own rate, without defining a new
	// Priority. Zero means "use the policy's class weight".
	Weight int
	// SoftDeadline keeps the deadline as an ordering signal only: the
	// request still sorts earliest-deadline-first among its class, but
	// admission never sheds it when the deadline has passed. Detached
	// cache fills use it — a fill that outlives its requester's deadline
	// should complete and warm the cache, not abort half-built.
	SoftDeadline bool
	// Wait, when non-nil, accumulates the queue wait of every helper
	// ticket enqueued under these attrs: each grant adds its
	// enqueue-to-grant latency. Serving layers attach one counter per
	// query so queue wait is attributable per request, not only
	// engine-wide (Stats.QueueWait keeps the global sum).
	Wait *WaitCounter
	// Span, when non-nil, receives a "pool.grant" event with the
	// enqueue-to-grant wait for every granted ticket, so a trace shows
	// each individual grant beside the Wait counter's sum. Like Wait it
	// is observability, not a scheduling signal (zero() ignores it):
	// tracing a request must not change how it is granted helpers.
	Span *obs.Span
}

// WaitCounter accumulates queue-wait durations across concurrent
// grants. The zero value is ready to use; all methods are safe for
// concurrent use.
type WaitCounter struct {
	ns atomic.Int64
}

// Add records one grant's queue wait.
func (w *WaitCounter) Add(d time.Duration) {
	if w != nil {
		w.ns.Add(int64(d))
	}
}

// Load returns the total queue wait accumulated so far.
func (w *WaitCounter) Load() time.Duration {
	if w == nil {
		return 0
	}
	return time.Duration(w.ns.Load())
}

// zero reports whether the attrs carry no scheduling signal. A wait
// counter alone is a signal: it must reach the grant queue to
// attribute waits, even for normal-class no-deadline requests. So is a
// weight override — it changes grant order even within Normal.
func (a Attrs) zero() bool {
	return a.Priority == Normal && a.Deadline.IsZero() && a.Wait == nil && a.Weight == 0
}

type ctxKey struct{}

// NewContext returns a context carrying the scheduling attributes.
// Everything dispatched under the returned context — skyline scans,
// utility materialization, solver evaluations — is granted pool helpers
// per these attrs.
func NewContext(ctx context.Context, a Attrs) context.Context {
	return context.WithValue(ctx, ctxKey{}, a)
}

// FromContext returns the context's scheduling attributes (the zero
// Attrs when none were attached).
func FromContext(ctx context.Context) Attrs {
	a, _ := ctx.Value(ctxKey{}).(Attrs)
	return a
}

// ContextWithDefault attaches attrs only when the context does not
// already carry any: an instance-level default that request-level
// attrs always win over.
func ContextWithDefault(ctx context.Context, a Attrs) context.Context {
	if a.zero() {
		return ctx
	}
	if _, ok := ctx.Value(ctxKey{}).(Attrs); ok {
		return ctx
	}
	return NewContext(ctx, a)
}

// ErrShed is returned when admission control rejects a request whose
// deadline has already passed: running it could only waste helpers that
// live requests are waiting for. It wraps context.DeadlineExceeded so
// callers that only understand deadlines (e.g. an HTTP layer mapping
// overruns to 503) classify an escaped shed correctly.
var ErrShed = fmt.Errorf("sched: deadline already passed; request shed: %w", context.DeadlineExceeded)

// Clock abstracts time for deadline admission and queue-wait
// accounting; tests inject a fixed clock to make EDF ordering and shed
// decisions fully deterministic.
type Clock func() time.Time

// Ticket is the policy-visible view of one queued helper request: its
// attributes and its arrival sequence number. Seq is a total order over
// arrivals, so any policy that falls back to it is deterministic.
type Ticket struct {
	Attrs Attrs
	Seq   uint64
}

// Policy orders pending helper requests. Less reports whether a should
// be granted before b; it must be a strict weak ordering and must break
// every tie deterministically (falling back to Seq guarantees that).
type Policy interface {
	Name() string
	Less(a, b Ticket) bool
}

// FIFO is the legacy grant policy: strict arrival order, ignoring
// priorities and deadlines.
type FIFO struct{}

// Name implements Policy.
func (FIFO) Name() string { return "fifo" }

// Less implements Policy: earlier arrivals first.
func (FIFO) Less(a, b Ticket) bool { return a.Seq < b.Seq }

// DefaultWeights are the class weights of the default WeightedEDF
// policy. The spacing leaves room for operators to slot custom classes
// between the built-in ones.
var DefaultWeights = map[Priority]int{Low: 1, Normal: 4, High: 16}

// WeightedEDF is the production grant policy: weighted priority classes
// first (higher weight granted first; classes given equal weights
// interleave), earliest-deadline-first among requests of equal weight
// (a request without a deadline sorts after every request with one),
// arrival order as the final tie-break. With every request at the zero
// Attrs it degenerates to exact FIFO.
//
// Pure weight ordering would starve light classes without bound, so
// Queue pairs any policy implementing ClassWeights — this one — with
// deficit-bounded grants: see the Queue documentation for the bound.
// A request's effective weight is Attrs.Weight when positive (the
// per-tenant override), else the class weight from Weights.
type WeightedEDF struct {
	// Weights maps each priority class to its weight; nil uses
	// DefaultWeights, and classes absent from the map weigh as Normal.
	Weights map[Priority]int
}

// ClassWeights is the optional Policy extension that enables the
// queue's deficit-bounded anti-starvation machinery: a policy that can
// name each class's weight lets the queue compute the round quantum
// (the sum of backlogged classes' weights) and accrue per-class
// deficit against it. Policies without it (FIFO) grant in pure policy
// order — FIFO cannot starve, so it needs no bound.
type ClassWeights interface {
	// ClassWeight returns the configured weight of the priority class;
	// it must be positive and constant for the queue's lifetime.
	ClassWeight(c Priority) int
}

// Name implements Policy.
func (WeightedEDF) Name() string { return "weighted-edf" }

func (p WeightedEDF) weight(c Priority) int {
	w := p.Weights
	if w == nil {
		w = DefaultWeights
	}
	if v, ok := w[c]; ok {
		return v
	}
	// Absent classes weigh as Normal — from the custom map when it
	// defines Normal, else from the defaults (a partial map must never
	// zero the classes it does not mention).
	if v, ok := w[Normal]; ok {
		return v
	}
	return DefaultWeights[Normal]
}

// ClassWeight implements ClassWeights, opting WeightedEDF into the
// queue's deficit-bounded grants.
func (p WeightedEDF) ClassWeight(c Priority) int { return p.weight(c) }

// ticketWeight is the effective weight of one request: its per-tenant
// override when set, else its class weight.
func (p WeightedEDF) ticketWeight(t Ticket) int {
	if t.Attrs.Weight > 0 {
		return t.Attrs.Weight
	}
	return p.weight(t.Attrs.Priority)
}

// Less implements Policy.
func (p WeightedEDF) Less(a, b Ticket) bool {
	if wa, wb := p.ticketWeight(a), p.ticketWeight(b); wa != wb {
		return wa > wb
	}
	da, db := a.Attrs.Deadline, b.Attrs.Deadline
	switch {
	case da.IsZero() != db.IsZero():
		return !da.IsZero() // the request with a deadline is more urgent
	case !da.IsZero() && !da.Equal(db):
		return da.Before(db)
	}
	return a.Seq < b.Seq
}

// ClassStats is the per-priority-class slice of a queue's counters:
// the observable proof that no class is starving.
type ClassStats struct {
	// Granted, Stale, Shed and QueueWait are the class's share of the
	// same-named queue-wide counters.
	Granted   uint64        `json:"granted"`
	Stale     uint64        `json:"stale"`
	Shed      uint64        `json:"shed"`
	QueueWait time.Duration `json:"queue_wait_ns"`
	// Depth is the class's share of the current queue depth.
	Depth int `json:"depth"`
}

// Stats is a point-in-time snapshot of a grant queue's counters.
type Stats struct {
	// Policy names the active grant policy.
	Policy string `json:"policy"`
	// Granted counts helper requests handed to a worker; Stale counts
	// requests discarded because their Shards call had already finished
	// by the time a worker reached them (their blocks were all claimed —
	// a stale grant costs one queue pop, no work).
	Granted uint64 `json:"granted"`
	Stale   uint64 `json:"stale"`
	// Shed counts requests rejected by admission control because their
	// deadline had already passed when they asked for helpers.
	Shed uint64 `json:"shed"`
	// QueueWait is the summed time granted requests spent queued between
	// enqueue and grant; QueueWait/Granted is the average grant latency.
	QueueWait time.Duration `json:"queue_wait_ns"`
	// Depth is the current number of queued requests (stale entries not
	// yet discarded included).
	Depth int `json:"depth"`
	// DeficitGrants counts grants where the anti-starvation machinery
	// overrode the policy's pick: an overdue lighter class was granted
	// ahead of a heavier one. Zero under any load the policy's own
	// ordering serves fairly.
	DeficitGrants uint64 `json:"deficit_grants"`
	// PerClass breaks the counters down by priority class, keyed by
	// Priority.String(). Nil until the queue has seen any traffic.
	PerClass map[string]ClassStats `json:"per_class,omitempty"`
}

// Call marks the lifetime of one Shards invocation so the queue can
// discard its tickets once every block is claimed. It is created by the
// pool per Shards call, passed to every Push of that call, and finished
// through Queue.FinishCall after the join. A Call belongs to exactly
// one Queue; its fields are guarded by that queue's lock.
type Call struct {
	done  bool
	items []*item
}

// item is one queued helper request.
type item struct {
	ticket   Ticket
	enqueued time.Time
	call     *Call
	run      func()
	index    int // heap position
}

// classKey identifies one deficit-accounting class: the priority plus
// any per-tenant weight override. Overridden tickets form their own
// class, so a tenant's custom weight earns deficit at its own rate
// instead of piggybacking on the class default.
type classKey struct {
	prio   Priority
	weight int // Attrs.Weight override; 0 = class default
}

// classState is the live accounting of one backlogged class: how many
// of its tickets are queued and how much deficit it has accrued.
// Deficit resets when the class drains — credit never banks across
// idle periods, which is what keeps the deficit path exactly inactive
// (and grant order bit-identical to the pure policy) whenever classes
// are not simultaneously backlogged.
type classState struct {
	queued  int
	deficit int64
}

// Queue is the policy-ordered set of pending helper requests. All
// methods are safe for concurrent use.
//
// # Starvation bound
//
// A weight-priority policy alone starves: under a sustained flood of a
// heavy class, a queued light ticket is never granted. When the policy
// implements ClassWeights, the queue layers deficit-bounded grants on
// top of the policy order. On every grant while two or more classes
// are backlogged, each backlogged class accrues deficit equal to its
// weight, and the granted class pays back the round quantum (the sum
// of the backlogged classes' weights). A class whose deficit reaches
// the quantum is overdue and is granted next — its best ticket per the
// policy — ahead of any heavier class. A class backlogged alongside
// classes of total weight Σw therefore waits at most ⌈Σw/w_class⌉
// grants between consecutive grants of its own: with the default
// weights (1/4/16) a Low ticket is granted within 21 grants of the
// flood, no matter how much High traffic keeps arriving.
type Queue struct {
	mu     sync.Mutex
	policy Policy
	// weights is the policy's ClassWeights view; nil (policy doesn't
	// implement it) disables the deficit machinery entirely.
	weights ClassWeights
	clock   Clock
	h       itemHeap
	seq     uint64
	stats   Stats
	// backlog tracks queued-ticket counts and deficits per class; keys
	// exist only while the class has tickets queued.
	backlog map[classKey]*classState
	// perClass accumulates the monotonic per-class counters (Depth is
	// derived from backlog at snapshot time instead).
	perClass map[Priority]*ClassStats
}

// NewQueue builds a grant queue over the policy (nil = WeightedEDF
// defaults) and clock (nil = time.Now).
func NewQueue(policy Policy, clock Clock) *Queue {
	if policy == nil {
		policy = WeightedEDF{}
	}
	if clock == nil {
		clock = time.Now
	}
	q := &Queue{
		policy:   policy,
		clock:    clock,
		h:        itemHeap{policy: policy},
		backlog:  map[classKey]*classState{},
		perClass: map[Priority]*ClassStats{},
	}
	q.weights, _ = policy.(ClassWeights)
	return q
}

// class returns (creating if needed) the monotonic counter bucket of
// the priority class. Callers hold q.mu.
func (q *Queue) class(p Priority) *ClassStats {
	cs := q.perClass[p]
	if cs == nil {
		cs = &ClassStats{}
		q.perClass[p] = cs
	}
	return cs
}

func keyOf(t Ticket) classKey {
	k := classKey{prio: t.Attrs.Priority}
	if t.Attrs.Weight > 0 {
		k.weight = t.Attrs.Weight
	}
	return k
}

// effWeight is the grant weight one ticket of the class carries: the
// per-tenant override when the key has one, else the policy's class
// weight. Only called with q.weights non-nil.
func (q *Queue) effWeight(k classKey) int64 {
	if k.weight > 0 {
		return int64(k.weight)
	}
	if w := q.weights.ClassWeight(k.prio); w > 0 {
		return int64(w)
	}
	return 1
}

// backlogAdd/backlogRemove maintain the per-class queued counts; a
// class's deficit dies with its last queued ticket. Callers hold q.mu.
func (q *Queue) backlogAdd(t Ticket) {
	k := keyOf(t)
	st := q.backlog[k]
	if st == nil {
		st = &classState{}
		q.backlog[k] = st
	}
	st.queued++
}

func (q *Queue) backlogRemove(t Ticket) {
	k := keyOf(t)
	if st := q.backlog[k]; st != nil {
		if st.queued--; st.queued <= 0 {
			delete(q.backlog, k)
		}
	}
}

// ShedExpired implements admission control: when the attrs carry a
// hard deadline that has already passed, the request is counted as
// shed and true is returned — the caller must not enqueue or run it.
// Soft deadlines order grants but never shed.
func (q *Queue) ShedExpired(a Attrs) bool {
	if a.Deadline.IsZero() || a.SoftDeadline {
		return false
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.clock().Before(a.Deadline) {
		return false
	}
	q.stats.Shed++
	q.class(a.Priority).Shed++
	return true
}

// Push enqueues one helper request for the call. Requests for an
// already finished call are dropped (counted stale) rather than queued.
func (q *Queue) Push(a Attrs, call *Call, run func()) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if call != nil && call.done {
		q.stats.Stale++
		q.class(a.Priority).Stale++
		return
	}
	q.seq++
	it := &item{
		ticket:   Ticket{Attrs: a, Seq: q.seq},
		enqueued: q.clock(),
		call:     call,
		run:      run,
	}
	heap.Push(&q.h, it)
	q.backlogAdd(it.ticket)
	if call != nil {
		call.items = append(call.items, it)
	}
}

// FinishCall marks the call complete and removes its still-queued
// tickets (counted stale): every block of the call is claimed, so
// granting them could only waste a pop, and leaving them queued would
// inflate Depth — which admission control reads as genuine load.
func (q *Queue) FinishCall(c *Call) {
	if c == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	c.done = true
	for _, it := range c.items {
		if it.index >= 0 {
			heap.Remove(&q.h, it.index)
			it.index = -1
			q.backlogRemove(it.ticket)
			q.stats.Stale++
			q.class(it.ticket.Attrs.Priority).Stale++
		}
	}
	c.items = nil
}

// Pop removes and returns the best pending request per the policy —
// or, when a lighter class has gone unserved long enough to become
// overdue, that class's best request (see the Queue doc for the bound)
// — discarding stale tickets along the way. It returns nil when the
// queue is empty.
func (q *Queue) Pop() func() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.h.Len() > 0 {
		it, quantum, overrode := q.grantNext()
		it.index = -1
		q.backlogRemove(it.ticket)
		if it.call != nil && it.call.done {
			q.stats.Stale++
			q.class(it.ticket.Attrs.Priority).Stale++
			continue
		}
		q.stats.Granted++
		if overrode {
			q.stats.DeficitGrants++
		}
		wait := q.clock().Sub(it.enqueued)
		q.stats.QueueWait += wait
		cs := q.class(it.ticket.Attrs.Priority)
		cs.Granted++
		cs.QueueWait += wait
		// Attribute the same wait to the request's own counter, so the
		// query that enqueued the ticket can report its personal queue
		// wait alongside the engine-wide sum.
		it.ticket.Attrs.Wait.Add(wait)
		it.ticket.Attrs.Span.Event("pool.grant", wait)
		q.accrue(keyOf(it.ticket), quantum)
		return it.run
	}
	return nil
}

// grantNext selects the next request. The plain path is a heap pop in
// pure policy order; the deficit path activates only when the policy
// exposes class weights AND two or more classes are simultaneously
// backlogged — the only situation where starvation is possible. It
// returns the selected item, the round quantum in force (0 when the
// deficit path was inactive), and whether an overdue class overrode
// the policy's pick. Callers hold q.mu.
func (q *Queue) grantNext() (it *item, quantum int64, overrode bool) {
	if q.weights == nil || len(q.backlog) < 2 {
		return heap.Pop(&q.h).(*item), 0, false
	}
	for k := range q.backlog {
		quantum += q.effWeight(k)
	}
	overdueKey, ok := q.overdue(quantum)
	if !ok || keyOf(q.h.items[0].ticket) == overdueKey {
		return heap.Pop(&q.h).(*item), quantum, false
	}
	// The overdue class is not at the heap head: grant its best ticket
	// per the policy order instead. Linear scan — queue depths are
	// bounded by workers×calls in practice, and the scan runs only on
	// the starvation-relief path.
	best := -1
	for i, cand := range q.h.items {
		if keyOf(cand.ticket) != overdueKey {
			continue
		}
		if best < 0 || q.policy.Less(cand.ticket, q.h.items[best].ticket) {
			best = i
		}
	}
	return heap.Remove(&q.h, best).(*item), quantum, true
}

// overdue returns the backlogged class whose deficit has reached the
// round quantum, if any. Ties (and the pick among several overdue
// classes) resolve deterministically: larger deficit first, then
// smaller weight (the lighter class has waited proportionally longer),
// then smaller priority, then smaller override value. Callers hold
// q.mu.
func (q *Queue) overdue(quantum int64) (classKey, bool) {
	var bestKey classKey
	var bestState *classState
	for k, st := range q.backlog {
		if st.deficit < quantum {
			continue
		}
		if bestState == nil || moreOverdue(st, k, bestState, bestKey, q) {
			bestKey, bestState = k, st
		}
	}
	return bestKey, bestState != nil
}

func moreOverdue(a *classState, ak classKey, b *classState, bk classKey, q *Queue) bool {
	if a.deficit != b.deficit {
		return a.deficit > b.deficit
	}
	if wa, wb := q.effWeight(ak), q.effWeight(bk); wa != wb {
		return wa < wb
	}
	if ak.prio != bk.prio {
		return ak.prio < bk.prio
	}
	return ak.weight < bk.weight
}

// accrue runs the deficit round after a grant: every still-backlogged
// class earns its weight, and the granted class pays back the quantum
// (clamped at zero — credit is relief, not a bankable balance). A
// quantum of zero means the deficit path was inactive for this grant.
// Callers hold q.mu.
func (q *Queue) accrue(granted classKey, quantum int64) {
	if quantum == 0 {
		return
	}
	for k, st := range q.backlog {
		st.deficit += q.effWeight(k)
	}
	if st := q.backlog[granted]; st != nil {
		if st.deficit -= quantum; st.deficit < 0 {
			st.deficit = 0
		}
	}
}

// Depth returns the number of queued requests (including not yet
// discarded stale tickets).
func (q *Queue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.h.Len()
}

// Stats returns a snapshot of the counters. The PerClass map is a deep
// copy the caller owns.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := q.stats
	s.Policy = q.policy.Name()
	s.Depth = q.h.Len()
	if len(q.perClass) > 0 || len(q.backlog) > 0 {
		s.PerClass = make(map[string]ClassStats, len(q.perClass))
		for p, cs := range q.perClass {
			s.PerClass[p.String()] = *cs
		}
		for k, st := range q.backlog {
			c := s.PerClass[k.prio.String()]
			c.Depth += st.queued
			s.PerClass[k.prio.String()] = c
		}
	}
	return s
}

// itemHeap orders items by the queue's policy (the heap carries the
// policy so container/heap's Less can reach it).
type itemHeap struct {
	policy Policy
	items  []*item
}

func (h *itemHeap) Len() int { return len(h.items) }
func (h *itemHeap) Less(i, j int) bool {
	return h.policy.Less(h.items[i].ticket, h.items[j].ticket)
}
func (h *itemHeap) Swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].index, h.items[j].index = i, j
}
func (h *itemHeap) Push(x any) {
	it := x.(*item)
	it.index = len(h.items)
	h.items = append(h.items, it)
}
func (h *itemHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items[n-1] = nil
	h.items = h.items[:n-1]
	return it
}
