package sched

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fixedClock returns a Clock pinned to t0; EDF ordering and shed
// decisions under it are fully deterministic.
func fixedClock(t0 time.Time) Clock {
	return func() time.Time { return t0 }
}

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// popOrder drains the queue and reports the labels of granted requests
// in grant order.
func popOrder(t *testing.T, q *Queue, labels map[*int]string) []string {
	t.Helper()
	var got []string
	for {
		run := q.Pop()
		if run == nil {
			return got
		}
		run()
		for k, v := range labels {
			if *k == 1 {
				*k = 2
				got = append(got, v)
			}
		}
	}
}

// push enqueues a request that flips its marker 0→1 when granted.
func push(q *Queue, a Attrs, labels map[*int]string, name string) {
	marker := new(int)
	labels[marker] = name
	q.Push(a, nil, func() { *marker = 1 })
}

// TestWeightedEDFGrantOrder pins the full ordering of the default
// policy: class weight first, earliest deadline within a class (no
// deadline sorts last), arrival order as the final tie-break — all
// deterministic under a fixed clock.
func TestWeightedEDFGrantOrder(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	labels := map[*int]string{}

	// Arrival order is deliberately adversarial: low first, urgent last.
	push(q, Attrs{Priority: Low}, labels, "low-first")
	push(q, Attrs{Priority: Normal, Deadline: t0.Add(5 * time.Second)}, labels, "normal-5s")
	push(q, Attrs{Priority: Normal}, labels, "normal-nodeadline")
	push(q, Attrs{Priority: Low, Deadline: t0.Add(time.Second)}, labels, "low-1s")
	push(q, Attrs{Priority: High}, labels, "high-nodeadline")
	push(q, Attrs{Priority: Normal, Deadline: t0.Add(2 * time.Second)}, labels, "normal-2s")
	push(q, Attrs{Priority: High, Deadline: t0.Add(10 * time.Second)}, labels, "high-10s")

	want := []string{
		"high-10s",          // highest class, has a deadline
		"high-nodeadline",   // highest class, no deadline
		"normal-2s",         // normal class, earliest deadline
		"normal-5s",         // normal class, later deadline
		"normal-nodeadline", // normal class, no deadline
		"low-1s",            // low class, deadline beats none
		"low-first",         // low class, no deadline
	}
	got := popOrder(t, q, labels)
	if len(got) != len(want) {
		t.Fatalf("granted %d requests, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
	if s := q.Stats(); s.Granted != 7 || s.Policy != "weighted-edf" {
		t.Fatalf("stats = %+v, want 7 grants under weighted-edf", s)
	}
}

// TestWeightedEDFEqualWeightsInterleave: classes configured with equal
// weights fall through to EDF, then arrival order.
func TestWeightedEDFEqualWeightsInterleave(t *testing.T) {
	q := NewQueue(WeightedEDF{Weights: map[Priority]int{Low: 3, Normal: 3, High: 3}}, fixedClock(t0))
	labels := map[*int]string{}
	push(q, Attrs{Priority: High}, labels, "high-none")
	push(q, Attrs{Priority: Low, Deadline: t0.Add(time.Second)}, labels, "low-1s")
	push(q, Attrs{Priority: Normal, Deadline: t0.Add(3 * time.Second)}, labels, "normal-3s")
	want := []string{"low-1s", "normal-3s", "high-none"}
	got := popOrder(t, q, labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestFIFOIgnoresAttrs: the legacy policy grants strictly by arrival.
func TestFIFOIgnoresAttrs(t *testing.T) {
	q := NewQueue(FIFO{}, fixedClock(t0))
	labels := map[*int]string{}
	push(q, Attrs{Priority: Low}, labels, "a")
	push(q, Attrs{Priority: High, Deadline: t0.Add(time.Second)}, labels, "b")
	push(q, Attrs{Priority: Normal}, labels, "c")
	got := popOrder(t, q, labels)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestZeroAttrsDegeneratesToFIFO: without scheduling attributes the
// default policy is exact arrival order — pre-scheduling behavior.
func TestZeroAttrsDegeneratesToFIFO(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	labels := map[*int]string{}
	for _, name := range []string{"a", "b", "c", "d"} {
		push(q, Attrs{}, labels, name)
	}
	got := popOrder(t, q, labels)
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestShedExpired pins admission control under an injectable clock: a
// deadline in the past sheds, the present moment sheds (the deadline is
// no longer meetable), a future deadline admits.
func TestShedExpired(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	if q.ShedExpired(Attrs{}) {
		t.Fatal("deadline-less request was shed")
	}
	if q.ShedExpired(Attrs{Deadline: t0.Add(time.Nanosecond)}) {
		t.Fatal("future deadline was shed")
	}
	if !q.ShedExpired(Attrs{Deadline: t0.Add(-time.Second)}) {
		t.Fatal("expired deadline was admitted")
	}
	if !q.ShedExpired(Attrs{Deadline: t0}) {
		t.Fatal("deadline exactly now was admitted")
	}
	if s := q.Stats(); s.Shed != 2 {
		t.Fatalf("shed count = %d, want 2", s.Shed)
	}
}

// TestStaleTicketsDiscarded: finishing a call removes its still-queued
// tickets immediately — they are never granted, and they stop counting
// against the queue depth that admission control reads.
func TestStaleTicketsDiscarded(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	call := &Call{}
	ran := 0
	q.Push(Attrs{}, call, func() { ran++ })
	q.Push(Attrs{}, call, func() { ran++ })
	live := 0
	q.Push(Attrs{Priority: Low}, nil, func() { live++ })
	q.FinishCall(call)
	if q.Depth() != 1 {
		t.Fatalf("depth = %d after FinishCall, want 1 (only the live ticket)", q.Depth())
	}
	// A late push for a finished call is dropped, not queued.
	q.Push(Attrs{}, call, func() { ran++ })
	if q.Depth() != 1 {
		t.Fatalf("depth = %d after late push, want 1", q.Depth())
	}
	for {
		run := q.Pop()
		if run == nil {
			break
		}
		run()
	}
	if ran != 0 || live != 1 {
		t.Fatalf("stale ran %d times, live %d times; want 0 and 1", ran, live)
	}
	s := q.Stats()
	if s.Stale != 3 || s.Granted != 1 || s.Depth != 0 {
		t.Fatalf("stats = %+v, want 3 stale, 1 granted, depth 0", s)
	}
}

// TestContextCarrier round-trips attrs through a context and pins the
// default-attachment rule: explicit attrs always win over defaults.
func TestContextCarrier(t *testing.T) {
	base := context.Background()
	if a := FromContext(base); !a.zero() {
		t.Fatalf("bare context carries attrs %+v", a)
	}
	attrs := Attrs{Priority: High, Deadline: t0}
	ctx := NewContext(base, attrs)
	if got := FromContext(ctx); got != attrs {
		t.Fatalf("FromContext = %+v, want %+v", got, attrs)
	}
	// A default must not override explicit attrs...
	d := ContextWithDefault(ctx, Attrs{Priority: Low})
	if got := FromContext(d); got != attrs {
		t.Fatalf("default overrode explicit attrs: %+v", got)
	}
	// ...but attaches to a bare context...
	d = ContextWithDefault(base, Attrs{Priority: Low})
	if got := FromContext(d); got.Priority != Low {
		t.Fatalf("default not attached: %+v", got)
	}
	// ...and a zero default attaches nothing.
	if d := ContextWithDefault(base, Attrs{}); d != base {
		t.Fatal("zero default wrapped the context")
	}
}

// TestQueueWaitAccounting: queue wait is measured between enqueue and
// grant on the injected clock.
func TestQueueWaitAccounting(t *testing.T) {
	now := t0
	q := NewQueue(nil, func() time.Time { return now })
	q.Push(Attrs{}, nil, func() {})
	now = now.Add(250 * time.Millisecond)
	if run := q.Pop(); run == nil {
		t.Fatal("no grant")
	}
	if s := q.Stats(); s.QueueWait != 250*time.Millisecond {
		t.Fatalf("queue wait = %v, want 250ms", s.QueueWait)
	}
}

// TestWeightedEDFPartialWeightsMap: a custom map that mentions only
// some classes must not zero the others — absent classes weigh as
// Normal (from the map when it defines Normal, else the default), so a
// partial map can never invert priorities.
func TestWeightedEDFPartialWeightsMap(t *testing.T) {
	p := WeightedEDF{Weights: map[Priority]int{Low: 1}}
	if w := p.weight(Low); w != 1 {
		t.Fatalf("weight(Low) = %d, want 1", w)
	}
	if wn, wh := p.weight(Normal), p.weight(High); wn != DefaultWeights[Normal] || wh != DefaultWeights[Normal] {
		t.Fatalf("absent classes weigh (%d, %d), want both %d", wn, wh, DefaultWeights[Normal])
	}
	// Low must still lose to the unmentioned classes.
	if p.Less(Ticket{Attrs: Attrs{Priority: Low}, Seq: 1}, Ticket{Attrs: Attrs{Priority: High}, Seq: 2}) {
		t.Fatal("partial map inverted priorities: Low granted before High")
	}
	// A map that redefines Normal lends that weight to absent classes.
	p2 := WeightedEDF{Weights: map[Priority]int{Normal: 7}}
	if w := p2.weight(High); w != 7 {
		t.Fatalf("weight(High) under Normal-only map = %d, want 7", w)
	}
}

// TestSoftDeadlineOrdersButNeverSheds: a soft deadline (detached cache
// fills) participates in EDF ordering exactly like a hard one but is
// exempt from admission shedding even when expired.
func TestSoftDeadlineOrdersButNeverSheds(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	if q.ShedExpired(Attrs{Deadline: t0.Add(-time.Hour), SoftDeadline: true}) {
		t.Fatal("expired soft deadline was shed")
	}
	labels := map[*int]string{}
	push(q, Attrs{Deadline: t0.Add(9 * time.Second)}, labels, "hard-9s")
	push(q, Attrs{Deadline: t0.Add(3 * time.Second), SoftDeadline: true}, labels, "soft-3s")
	push(q, Attrs{}, labels, "none")
	want := []string{"soft-3s", "hard-9s", "none"}
	got := popOrder(t, q, labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestErrShedWrapsDeadlineExceeded: an escaped pool-level shed must
// classify as a deadline failure for layers that map errors to
// statuses.
func TestErrShedWrapsDeadlineExceeded(t *testing.T) {
	if !errors.Is(ErrShed, context.DeadlineExceeded) {
		t.Fatal("ErrShed does not wrap context.DeadlineExceeded")
	}
}

// TestQueueWaitAttributedPerRequest: grants add their wait both to the
// queue-wide sum and to the request's own WaitCounter, so a serving
// layer can report per-query queue wait. Requests without a counter
// still count in the queue-wide sum only.
func TestQueueWaitAttributedPerRequest(t *testing.T) {
	now := t0
	q := NewQueue(nil, func() time.Time { return now })
	var mine, other WaitCounter
	q.Push(Attrs{Wait: &mine}, nil, func() {})
	q.Push(Attrs{Wait: &other}, nil, func() {})
	q.Push(Attrs{}, nil, func() {}) // counter-less legacy request
	now = now.Add(100 * time.Millisecond)
	if run := q.Pop(); run == nil { // grants the first push (FIFO at equal attrs)
		t.Fatal("no grant")
	}
	now = now.Add(150 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if run := q.Pop(); run == nil {
			t.Fatalf("grant %d missing", i)
		}
	}
	if got := mine.Load(); got != 100*time.Millisecond {
		t.Fatalf("mine = %v, want 100ms", got)
	}
	if got := other.Load(); got != 250*time.Millisecond {
		t.Fatalf("other = %v, want 250ms", got)
	}
	// Queue-wide sum covers all three grants: 100 + 250 + 250.
	if s := q.Stats(); s.QueueWait != 600*time.Millisecond {
		t.Fatalf("queue-wide wait = %v, want 600ms", s.QueueWait)
	}
}

// TestWaitCounterNilSafe: a nil counter is a no-op sink, so attribution
// never needs nil checks at the grant site.
func TestWaitCounterNilSafe(t *testing.T) {
	var w *WaitCounter
	w.Add(time.Second)
	if w.Load() != 0 {
		t.Fatal("nil WaitCounter accumulated")
	}
	var attrs Attrs
	if !attrs.zero() {
		t.Fatal("zero Attrs with nil Wait must be zero")
	}
	attrs.Wait = new(WaitCounter)
	if attrs.zero() {
		t.Fatal("Attrs carrying a wait counter must count as a scheduling signal")
	}
}
