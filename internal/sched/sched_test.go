package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fixedClock returns a Clock pinned to t0; EDF ordering and shed
// decisions under it are fully deterministic.
func fixedClock(t0 time.Time) Clock {
	return func() time.Time { return t0 }
}

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// popOrder drains the queue and reports the labels of granted requests
// in grant order.
func popOrder(t *testing.T, q *Queue, labels map[*int]string) []string {
	t.Helper()
	var got []string
	for {
		run := q.Pop()
		if run == nil {
			return got
		}
		run()
		for k, v := range labels {
			if *k == 1 {
				*k = 2
				got = append(got, v)
			}
		}
	}
}

// push enqueues a request that flips its marker 0→1 when granted.
func push(q *Queue, a Attrs, labels map[*int]string, name string) {
	marker := new(int)
	labels[marker] = name
	q.Push(a, nil, func() { *marker = 1 })
}

// TestWeightedEDFGrantOrder pins the full ordering of the default
// policy: class weight first, earliest deadline within a class (no
// deadline sorts last), arrival order as the final tie-break — all
// deterministic under a fixed clock.
func TestWeightedEDFGrantOrder(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	labels := map[*int]string{}

	// Arrival order is deliberately adversarial: low first, urgent last.
	push(q, Attrs{Priority: Low}, labels, "low-first")
	push(q, Attrs{Priority: Normal, Deadline: t0.Add(5 * time.Second)}, labels, "normal-5s")
	push(q, Attrs{Priority: Normal}, labels, "normal-nodeadline")
	push(q, Attrs{Priority: Low, Deadline: t0.Add(time.Second)}, labels, "low-1s")
	push(q, Attrs{Priority: High}, labels, "high-nodeadline")
	push(q, Attrs{Priority: Normal, Deadline: t0.Add(2 * time.Second)}, labels, "normal-2s")
	push(q, Attrs{Priority: High, Deadline: t0.Add(10 * time.Second)}, labels, "high-10s")

	want := []string{
		"high-10s",          // highest class, has a deadline
		"high-nodeadline",   // highest class, no deadline
		"normal-2s",         // normal class, earliest deadline
		"normal-5s",         // normal class, later deadline
		"normal-nodeadline", // normal class, no deadline
		"low-1s",            // low class, deadline beats none
		"low-first",         // low class, no deadline
	}
	got := popOrder(t, q, labels)
	if len(got) != len(want) {
		t.Fatalf("granted %d requests, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
	if s := q.Stats(); s.Granted != 7 || s.Policy != "weighted-edf" {
		t.Fatalf("stats = %+v, want 7 grants under weighted-edf", s)
	}
}

// TestWeightedEDFEqualWeightsInterleave: classes configured with equal
// weights fall through to EDF, then arrival order.
func TestWeightedEDFEqualWeightsInterleave(t *testing.T) {
	q := NewQueue(WeightedEDF{Weights: map[Priority]int{Low: 3, Normal: 3, High: 3}}, fixedClock(t0))
	labels := map[*int]string{}
	push(q, Attrs{Priority: High}, labels, "high-none")
	push(q, Attrs{Priority: Low, Deadline: t0.Add(time.Second)}, labels, "low-1s")
	push(q, Attrs{Priority: Normal, Deadline: t0.Add(3 * time.Second)}, labels, "normal-3s")
	want := []string{"low-1s", "normal-3s", "high-none"}
	got := popOrder(t, q, labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestFIFOIgnoresAttrs: the legacy policy grants strictly by arrival.
func TestFIFOIgnoresAttrs(t *testing.T) {
	q := NewQueue(FIFO{}, fixedClock(t0))
	labels := map[*int]string{}
	push(q, Attrs{Priority: Low}, labels, "a")
	push(q, Attrs{Priority: High, Deadline: t0.Add(time.Second)}, labels, "b")
	push(q, Attrs{Priority: Normal}, labels, "c")
	got := popOrder(t, q, labels)
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestZeroAttrsDegeneratesToFIFO: without scheduling attributes the
// default policy is exact arrival order — pre-scheduling behavior.
func TestZeroAttrsDegeneratesToFIFO(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	labels := map[*int]string{}
	for _, name := range []string{"a", "b", "c", "d"} {
		push(q, Attrs{}, labels, name)
	}
	got := popOrder(t, q, labels)
	want := []string{"a", "b", "c", "d"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestShedExpired pins admission control under an injectable clock: a
// deadline in the past sheds, the present moment sheds (the deadline is
// no longer meetable), a future deadline admits.
func TestShedExpired(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	if q.ShedExpired(Attrs{}) {
		t.Fatal("deadline-less request was shed")
	}
	if q.ShedExpired(Attrs{Deadline: t0.Add(time.Nanosecond)}) {
		t.Fatal("future deadline was shed")
	}
	if !q.ShedExpired(Attrs{Deadline: t0.Add(-time.Second)}) {
		t.Fatal("expired deadline was admitted")
	}
	if !q.ShedExpired(Attrs{Deadline: t0}) {
		t.Fatal("deadline exactly now was admitted")
	}
	if s := q.Stats(); s.Shed != 2 {
		t.Fatalf("shed count = %d, want 2", s.Shed)
	}
}

// TestStaleTicketsDiscarded: finishing a call removes its still-queued
// tickets immediately — they are never granted, and they stop counting
// against the queue depth that admission control reads.
func TestStaleTicketsDiscarded(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	call := &Call{}
	ran := 0
	q.Push(Attrs{}, call, func() { ran++ })
	q.Push(Attrs{}, call, func() { ran++ })
	live := 0
	q.Push(Attrs{Priority: Low}, nil, func() { live++ })
	q.FinishCall(call)
	if q.Depth() != 1 {
		t.Fatalf("depth = %d after FinishCall, want 1 (only the live ticket)", q.Depth())
	}
	// A late push for a finished call is dropped, not queued.
	q.Push(Attrs{}, call, func() { ran++ })
	if q.Depth() != 1 {
		t.Fatalf("depth = %d after late push, want 1", q.Depth())
	}
	for {
		run := q.Pop()
		if run == nil {
			break
		}
		run()
	}
	if ran != 0 || live != 1 {
		t.Fatalf("stale ran %d times, live %d times; want 0 and 1", ran, live)
	}
	s := q.Stats()
	if s.Stale != 3 || s.Granted != 1 || s.Depth != 0 {
		t.Fatalf("stats = %+v, want 3 stale, 1 granted, depth 0", s)
	}
}

// TestContextCarrier round-trips attrs through a context and pins the
// default-attachment rule: explicit attrs always win over defaults.
func TestContextCarrier(t *testing.T) {
	base := context.Background()
	if a := FromContext(base); !a.zero() {
		t.Fatalf("bare context carries attrs %+v", a)
	}
	attrs := Attrs{Priority: High, Deadline: t0}
	ctx := NewContext(base, attrs)
	if got := FromContext(ctx); got != attrs {
		t.Fatalf("FromContext = %+v, want %+v", got, attrs)
	}
	// A default must not override explicit attrs...
	d := ContextWithDefault(ctx, Attrs{Priority: Low})
	if got := FromContext(d); got != attrs {
		t.Fatalf("default overrode explicit attrs: %+v", got)
	}
	// ...but attaches to a bare context...
	d = ContextWithDefault(base, Attrs{Priority: Low})
	if got := FromContext(d); got.Priority != Low {
		t.Fatalf("default not attached: %+v", got)
	}
	// ...and a zero default attaches nothing.
	if d := ContextWithDefault(base, Attrs{}); d != base {
		t.Fatal("zero default wrapped the context")
	}
}

// TestQueueWaitAccounting: queue wait is measured between enqueue and
// grant on the injected clock.
func TestQueueWaitAccounting(t *testing.T) {
	now := t0
	q := NewQueue(nil, func() time.Time { return now })
	q.Push(Attrs{}, nil, func() {})
	now = now.Add(250 * time.Millisecond)
	if run := q.Pop(); run == nil {
		t.Fatal("no grant")
	}
	if s := q.Stats(); s.QueueWait != 250*time.Millisecond {
		t.Fatalf("queue wait = %v, want 250ms", s.QueueWait)
	}
}

// TestWeightedEDFPartialWeightsMap: a custom map that mentions only
// some classes must not zero the others — absent classes weigh as
// Normal (from the map when it defines Normal, else the default), so a
// partial map can never invert priorities.
func TestWeightedEDFPartialWeightsMap(t *testing.T) {
	p := WeightedEDF{Weights: map[Priority]int{Low: 1}}
	if w := p.weight(Low); w != 1 {
		t.Fatalf("weight(Low) = %d, want 1", w)
	}
	if wn, wh := p.weight(Normal), p.weight(High); wn != DefaultWeights[Normal] || wh != DefaultWeights[Normal] {
		t.Fatalf("absent classes weigh (%d, %d), want both %d", wn, wh, DefaultWeights[Normal])
	}
	// Low must still lose to the unmentioned classes.
	if p.Less(Ticket{Attrs: Attrs{Priority: Low}, Seq: 1}, Ticket{Attrs: Attrs{Priority: High}, Seq: 2}) {
		t.Fatal("partial map inverted priorities: Low granted before High")
	}
	// A map that redefines Normal lends that weight to absent classes.
	p2 := WeightedEDF{Weights: map[Priority]int{Normal: 7}}
	if w := p2.weight(High); w != 7 {
		t.Fatalf("weight(High) under Normal-only map = %d, want 7", w)
	}
}

// TestSoftDeadlineOrdersButNeverSheds: a soft deadline (detached cache
// fills) participates in EDF ordering exactly like a hard one but is
// exempt from admission shedding even when expired.
func TestSoftDeadlineOrdersButNeverSheds(t *testing.T) {
	q := NewQueue(nil, fixedClock(t0))
	if q.ShedExpired(Attrs{Deadline: t0.Add(-time.Hour), SoftDeadline: true}) {
		t.Fatal("expired soft deadline was shed")
	}
	labels := map[*int]string{}
	push(q, Attrs{Deadline: t0.Add(9 * time.Second)}, labels, "hard-9s")
	push(q, Attrs{Deadline: t0.Add(3 * time.Second), SoftDeadline: true}, labels, "soft-3s")
	push(q, Attrs{}, labels, "none")
	want := []string{"soft-3s", "hard-9s", "none"}
	got := popOrder(t, q, labels)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
}

// TestErrShedWrapsDeadlineExceeded: an escaped pool-level shed must
// classify as a deadline failure for layers that map errors to
// statuses.
func TestErrShedWrapsDeadlineExceeded(t *testing.T) {
	if !errors.Is(ErrShed, context.DeadlineExceeded) {
		t.Fatal("ErrShed does not wrap context.DeadlineExceeded")
	}
}

// TestQueueWaitAttributedPerRequest: grants add their wait both to the
// queue-wide sum and to the request's own WaitCounter, so a serving
// layer can report per-query queue wait. Requests without a counter
// still count in the queue-wide sum only.
func TestQueueWaitAttributedPerRequest(t *testing.T) {
	now := t0
	q := NewQueue(nil, func() time.Time { return now })
	var mine, other WaitCounter
	q.Push(Attrs{Wait: &mine}, nil, func() {})
	q.Push(Attrs{Wait: &other}, nil, func() {})
	q.Push(Attrs{}, nil, func() {}) // counter-less legacy request
	now = now.Add(100 * time.Millisecond)
	if run := q.Pop(); run == nil { // grants the first push (FIFO at equal attrs)
		t.Fatal("no grant")
	}
	now = now.Add(150 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if run := q.Pop(); run == nil {
			t.Fatalf("grant %d missing", i)
		}
	}
	if got := mine.Load(); got != 100*time.Millisecond {
		t.Fatalf("mine = %v, want 100ms", got)
	}
	if got := other.Load(); got != 250*time.Millisecond {
		t.Fatalf("other = %v, want 250ms", got)
	}
	// Queue-wide sum covers all three grants: 100 + 250 + 250.
	if s := q.Stats(); s.QueueWait != 600*time.Millisecond {
		t.Fatalf("queue-wide wait = %v, want 600ms", s.QueueWait)
	}
}

// TestWaitCounterNilSafe: a nil counter is a no-op sink, so attribution
// never needs nil checks at the grant site.
func TestWaitCounterNilSafe(t *testing.T) {
	var w *WaitCounter
	w.Add(time.Second)
	if w.Load() != 0 {
		t.Fatal("nil WaitCounter accumulated")
	}
	var attrs Attrs
	if !attrs.zero() {
		t.Fatal("zero Attrs with nil Wait must be zero")
	}
	attrs.Wait = new(WaitCounter)
	if attrs.zero() {
		t.Fatal("Attrs carrying a wait counter must count as a scheduling signal")
	}
}

// TestDeficitStarvationBound is the headline regression test of the
// anti-starvation machinery: with a frozen clock and an unbounded
// sustained flood of High tickets, a queued Low ticket must be granted
// within the documented ⌈Σw/w_low⌉+1 grant bound. Against the old pure
// weight ordering the Low ticket is never granted — this test would
// spin to the bound and fail.
func TestDeficitStarvationBound(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	granted := []string{}
	pushClass := func(name string, p Priority) {
		q.Push(Attrs{Priority: p}, nil, func() { granted = append(granted, name) })
	}

	pushClass("low", Low)
	for i := 0; i < 3; i++ {
		pushClass("high", High)
	}

	// Σw over the backlogged classes is 1+16=17; the Low class accrues
	// +1 per grant, so it is overdue after 17 grants and granted on the
	// 18th at the latest.
	const bound = 18
	lowAt := 0
	for grant := 1; grant <= bound; grant++ {
		run := q.Pop()
		if run == nil {
			t.Fatalf("queue empty at grant %d", grant)
		}
		run()
		if granted[len(granted)-1] == "low" {
			lowAt = grant
			break
		}
		// Sustain the flood: High backlog never drains.
		pushClass("high", High)
	}
	if lowAt == 0 {
		t.Fatalf("low ticket starved: not granted within the %d-grant bound under a sustained High flood", bound)
	}
	if lowAt != bound {
		// The deficit schedule is fully deterministic under a frozen
		// clock: the low grant lands exactly on the bound.
		t.Fatalf("low granted at grant %d, want exactly %d", lowAt, bound)
	}

	s := q.Stats()
	if s.DeficitGrants != 1 {
		t.Fatalf("DeficitGrants = %d, want 1 (the single starvation-relief grant)", s.DeficitGrants)
	}
	if got := s.PerClass["low"]; got.Granted != 1 {
		t.Fatalf("PerClass[low].Granted = %d, want 1", got.Granted)
	}
	if got := s.PerClass["high"]; got.Granted != uint64(bound-1) {
		t.Fatalf("PerClass[high].Granted = %d, want %d", got.Granted, bound-1)
	}
}

// TestDeficitStarvationBoundThreeClasses: the bound holds with all
// three classes backlogged — quantum 21, so Low is overdue after 21
// grants; Normal (weight 4) after ⌈21/4⌉=6 accruals.
func TestDeficitStarvationBoundThreeClasses(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	granted := []string{}
	pushClass := func(name string, p Priority) {
		q.Push(Attrs{Priority: p}, nil, func() { granted = append(granted, name) })
	}
	pushClass("low", Low)
	for i := 0; i < 3; i++ {
		pushClass("normal", Normal)
		pushClass("high", High)
	}

	const bound = 22 // ⌈(1+4+16)/1⌉ + 1
	lowAt, normalAt := 0, 0
	for grant := 1; grant <= bound; grant++ {
		run := q.Pop()
		if run == nil {
			t.Fatalf("queue empty at grant %d", grant)
		}
		run()
		switch granted[len(granted)-1] {
		case "low":
			lowAt = grant
		case "normal":
			if normalAt == 0 {
				normalAt = grant
			}
			pushClass("normal", Normal)
		default:
			pushClass("high", High)
		}
		if lowAt != 0 {
			break
		}
	}
	if lowAt == 0 || lowAt > bound {
		t.Fatalf("low granted at %d, want within %d", lowAt, bound)
	}
	if normalAt == 0 || normalAt > 7 {
		t.Fatalf("normal first granted at %d, want within 7 (⌈21/4⌉+1)", normalAt)
	}
}

// TestDeficitInactiveSingleClass: with only one class ever backlogged
// the deficit machinery must stay fully inactive — grant order is the
// pure policy order and DeficitGrants stays zero. This is the guard
// that keeps every bit-determinism suite byte-identical.
func TestDeficitInactiveSingleClass(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	labels := map[*int]string{}
	push(q, Attrs{Priority: High, Deadline: t0.Add(9 * time.Second)}, labels, "9s")
	push(q, Attrs{Priority: High, Deadline: t0.Add(3 * time.Second)}, labels, "3s")
	push(q, Attrs{Priority: High, Deadline: t0.Add(6 * time.Second)}, labels, "6s")
	got := popOrder(t, q, labels)
	want := []string{"3s", "6s", "9s"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}
	if s := q.Stats(); s.DeficitGrants != 0 {
		t.Fatalf("DeficitGrants = %d with a single backlogged class, want 0", s.DeficitGrants)
	}
}

// TestPerTenantWeightOverride: Attrs.Weight lets one tenant outrank its
// class without a new Priority — a Normal request at Weight 32 is
// granted before default High (weight 16), and default Normal traffic
// still cannot be starved by the heavy tenant thanks to the override
// class accruing its own deficit.
func TestPerTenantWeightOverride(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	labels := map[*int]string{}
	push(q, Attrs{Priority: Normal}, labels, "normal-default")
	push(q, Attrs{Priority: High}, labels, "high")
	push(q, Attrs{Priority: Normal, Weight: 32}, labels, "tenant-32")
	got := popOrder(t, q, labels)
	want := []string{"tenant-32", "high", "normal-default"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grant order %v, want %v", got, want)
		}
	}

	// A sustained flood from the weight-32 tenant cannot starve default
	// Normal: quantum 4+32=36, Normal overdue after 9 grants.
	q2 := NewQueue(WeightedEDF{}, fixedClock(t0))
	granted := []string{}
	pushW := func(name string, a Attrs) {
		q2.Push(a, nil, func() { granted = append(granted, name) })
	}
	pushW("normal", Attrs{Priority: Normal})
	for i := 0; i < 3; i++ {
		pushW("tenant", Attrs{Priority: Normal, Weight: 32})
	}
	const bound = 10 // ⌈36/4⌉ + 1
	normalAt := 0
	for grant := 1; grant <= bound; grant++ {
		run := q2.Pop()
		if run == nil {
			t.Fatalf("queue empty at grant %d", grant)
		}
		run()
		if granted[len(granted)-1] == "normal" {
			normalAt = grant
			break
		}
		pushW("tenant", Attrs{Priority: Normal, Weight: 32})
	}
	if normalAt == 0 {
		t.Fatalf("default-normal ticket starved by weight-override tenant flood (bound %d)", bound)
	}
}

// TestPerClassStatsAccounting: the per-class counters partition the
// queue-wide ones across grant, shed, and stale outcomes.
func TestPerClassStatsAccounting(t *testing.T) {
	clock := fixedClock(t0)
	q := NewQueue(WeightedEDF{}, clock)

	// One granted High, one granted Low.
	q.Push(Attrs{Priority: High}, nil, func() {})
	q.Push(Attrs{Priority: Low}, nil, func() {})
	// One shed Low (hard deadline already passed).
	if !q.ShedExpired(Attrs{Priority: Low, Deadline: t0.Add(-time.Second)}) {
		t.Fatal("expired deadline not shed")
	}
	// One stale Normal (its call finishes before any pop).
	call := &Call{}
	q.Push(Attrs{Priority: Normal}, call, func() { t.Fatal("stale ticket ran") })
	q.FinishCall(call)

	for q.Pop() != nil {
	}
	s := q.Stats()
	if s.Granted != 2 || s.Stale != 1 || s.Shed != 1 {
		t.Fatalf("queue-wide counters: %+v", s)
	}
	if got := s.PerClass["high"]; got.Granted != 1 || got.Shed != 0 || got.Stale != 0 {
		t.Fatalf("PerClass[high] = %+v", got)
	}
	if got := s.PerClass["low"]; got.Granted != 1 || got.Shed != 1 {
		t.Fatalf("PerClass[low] = %+v", got)
	}
	if got := s.PerClass["normal"]; got.Stale != 1 || got.Granted != 0 {
		t.Fatalf("PerClass[normal] = %+v", got)
	}
	var granted, stale, shed uint64
	for _, cs := range s.PerClass {
		granted += cs.Granted
		stale += cs.Stale
		shed += cs.Shed
	}
	if granted != s.Granted || stale != s.Stale || shed != s.Shed {
		t.Fatalf("per-class sums (%d/%d/%d) do not partition queue-wide (%d/%d/%d)",
			granted, stale, shed, s.Granted, s.Stale, s.Shed)
	}
}

// TestPerClassDepthSnapshot: Depth in the per-class view counts only
// currently queued tickets and sums to the queue-wide Depth.
func TestPerClassDepthSnapshot(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	q.Push(Attrs{Priority: High}, nil, func() {})
	q.Push(Attrs{Priority: High}, nil, func() {})
	q.Push(Attrs{Priority: Low}, nil, func() {})
	s := q.Stats()
	if s.Depth != 3 || s.PerClass["high"].Depth != 2 || s.PerClass["low"].Depth != 1 {
		t.Fatalf("depth snapshot: %+v", s)
	}
	q.Pop()
	s = q.Stats()
	if s.Depth != 2 || s.PerClass["high"].Depth != 1 {
		t.Fatalf("depth after pop: %+v", s)
	}
}

// TestPopDefensiveStaleBranch exercises Pop's stale skip directly: a
// call marked done without FinishCall's heap sweep (the window a
// concurrent finisher can leave) must be discarded by Pop, counted
// stale — never run, never counted granted.
func TestPopDefensiveStaleBranch(t *testing.T) {
	q := NewQueue(WeightedEDF{}, fixedClock(t0))
	call := &Call{}
	q.Push(Attrs{Priority: Low}, call, func() { t.Fatal("stale ticket ran") })
	q.mu.Lock()
	call.done = true // simulate FinishCall racing ahead of its sweep
	q.mu.Unlock()
	if run := q.Pop(); run != nil {
		t.Fatal("Pop returned a stale ticket")
	}
	s := q.Stats()
	if s.Stale != 1 || s.Granted != 0 || s.Depth != 0 {
		t.Fatalf("stale accounting: %+v", s)
	}
	if got := s.PerClass["low"]; got.Stale != 1 || got.Depth != 0 {
		t.Fatalf("PerClass[low] = %+v", got)
	}
}

// TestPerClassStaleAccountingConcurrent hammers FinishCall against
// concurrent Pops under -race and pins the accounting invariant: every
// pushed ticket ends exactly once as granted or stale, Depth() never
// counts removed tickets, and the per-class counters partition the
// totals.
func TestPerClassStaleAccountingConcurrent(t *testing.T) {
	q := NewQueue(WeightedEDF{}, nil)
	const calls = 60
	const perCall = 4
	classes := []Priority{Low, Normal, High}

	var executed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Poppers race FinishCall for every ticket.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if run := q.Pop(); run != nil {
					run()
					continue
				}
				select {
				case <-stop:
					if q.Pop() == nil {
						return
					}
				default:
				}
			}
		}()
	}

	for i := 0; i < calls; i++ {
		call := &Call{}
		for j := 0; j < perCall; j++ {
			q.Push(Attrs{Priority: classes[(i+j)%len(classes)]}, call, func() { executed.Add(1) })
		}
		// Even calls finish immediately — their unpopped tickets must be
		// swept stale; odd calls are left live for the poppers.
		if i%2 == 0 {
			q.FinishCall(call)
		}
	}
	close(stop)
	wg.Wait()

	s := q.Stats()
	total := uint64(calls * perCall)
	if s.Granted+s.Stale != total {
		t.Fatalf("granted %d + stale %d != pushed %d", s.Granted, s.Stale, total)
	}
	if s.Granted != uint64(executed.Load()) {
		t.Fatalf("granted %d != executed %d", s.Granted, executed.Load())
	}
	if d := q.Depth(); d != 0 {
		t.Fatalf("Depth() = %d after drain, want 0 (removed tickets still counted?)", d)
	}
	var granted, stale uint64
	for _, cs := range s.PerClass {
		granted += cs.Granted
		stale += cs.Stale
		if cs.Depth != 0 {
			t.Fatalf("per-class depth nonzero after drain: %+v", s.PerClass)
		}
	}
	if granted != s.Granted || stale != s.Stale {
		t.Fatalf("per-class sums (%d/%d) do not partition totals (%d/%d)", granted, stale, s.Granted, s.Stale)
	}
}

// TestPriorityString pins the class names used as stats keys and
// metric labels.
func TestPriorityString(t *testing.T) {
	cases := map[Priority]string{Low: "low", Normal: "normal", High: "high", Priority(3): "priority(3)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Fatalf("Priority(%d).String() = %q, want %q", p, got, want)
		}
	}
}
