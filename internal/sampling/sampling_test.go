package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

func TestSampleSizeMatchesTableV(t *testing.T) {
	// The paper's Table V values.
	want := []struct {
		eps, sigma float64
		n          int
	}{
		{0.01, 0.1, 69078},
		{0.001, 0.1, 6907756},
		{0.0001, 0.1, 690775528},
		{0.01, 0.05, 89872},
		{0.001, 0.05, 8987197},
		{0.0001, 0.05, 898719682},
	}
	for _, w := range want {
		got, err := SampleSize(w.eps, w.sigma)
		if err != nil {
			t.Fatal(err)
		}
		// The paper prints floor/rounded values (69,077 vs our ceil 69,078);
		// accept ±1 on the ceiling.
		if got != w.n && got != w.n-1 && got != w.n+1 {
			t.Errorf("SampleSize(%v,%v) = %d, want ~%d", w.eps, w.sigma, got, w.n)
		}
	}
}

func TestSampleSizeValidation(t *testing.T) {
	for _, c := range []struct{ eps, sigma float64 }{
		{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-0.1, 0.5}, {0.5, -0.5},
	} {
		if _, err := SampleSize(c.eps, c.sigma); err == nil {
			t.Errorf("SampleSize(%v,%v) should error", c.eps, c.sigma)
		}
	}
}

func TestEpsInvertsSampleSize(t *testing.T) {
	for _, eps := range []float64{0.1, 0.01, 0.005} {
		n, err := SampleSize(eps, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Eps(n, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if got > eps+1e-9 {
			t.Errorf("Eps(SampleSize(%v)) = %v > %v", eps, got, eps)
		}
	}
	if _, err := Eps(0, 0.1); err == nil {
		t.Fatal("N=0 must error")
	}
	if _, err := Eps(10, 0); err == nil {
		t.Fatal("sigma=0 must error")
	}
}

func TestTableV(t *testing.T) {
	rows := TableV()
	if len(rows) != 6 {
		t.Fatalf("TableV has %d rows", len(rows))
	}
	if rows[0].N >= rows[1].N || rows[1].N >= rows[2].N {
		t.Fatal("N must grow as eps shrinks")
	}
	if rows[0].N >= rows[3].N {
		t.Fatal("N must grow as sigma shrinks")
	}
}

func TestSample(t *testing.T) {
	dist, _ := utility.NewUniformSimplexLinear(3)
	g := rng.New(1)
	fs, err := Sample(dist, 10, g)
	if err != nil || len(fs) != 10 {
		t.Fatalf("Sample = %d funcs, %v", len(fs), err)
	}
	if _, err := Sample(nil, 10, g); err == nil {
		t.Fatal("nil distribution must error")
	}
	if _, err := Sample(dist, 0, g); err == nil {
		t.Fatal("zero count must error")
	}
}

// Property: SampleSize is antitone in both eps and sigma.
func TestSampleSizeMonotoneProperty(t *testing.T) {
	f := func(e1, e2, s1, s2 uint16) bool {
		eps1 := 0.001 + float64(e1%500)/1000
		eps2 := 0.001 + float64(e2%500)/1000
		sig1 := 0.001 + float64(s1%500)/1000
		sig2 := 0.001 + float64(s2%500)/1000
		if eps1 > eps2 {
			eps1, eps2 = eps2, eps1
		}
		if sig1 > sig2 {
			sig1, sig2 = sig2, sig1
		}
		nBig, err1 := SampleSize(eps1, sig1) // smaller params => bigger N
		nSmall, err2 := SampleSize(eps2, sig2)
		if err1 != nil || err2 != nil {
			return false
		}
		return nBig >= nSmall
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Statistical check of the Chernoff guarantee itself: estimate the mean of
// a Bernoulli(0.3) "regret ratio" with N = SampleSize(0.05, 0.1) samples;
// the empirical deviation should be below eps in (far) more than 90% of
// trials.
func TestChernoffEmpiricalCoverage(t *testing.T) {
	eps, sigma := 0.05, 0.1
	n, err := SampleSize(eps, sigma)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(77)
	const trials = 30
	bad := 0
	for tr := 0; tr < trials; tr++ {
		var sum float64
		for i := 0; i < n; i++ {
			if g.Float64() < 0.3 {
				sum++
			}
		}
		if math.Abs(sum/float64(n)-0.3) >= eps {
			bad++
		}
	}
	if bad > trials/10 {
		t.Fatalf("deviation exceeded eps in %d/%d trials", bad, trials)
	}
}
