// Package sampling implements the Monte-Carlo machinery of Section III-C:
// the Chernoff-bound sample-size formula of Theorem 4 (N ≥ 3·ln(1/σ)/ε²),
// drawing N utility functions from Θ, and the Table V sample-size table.
package sampling

import (
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

// ErrBadParam is returned for error/confidence parameters outside (0, 1).
var ErrBadParam = errors.New("sampling: parameters must lie in (0,1)")

// SampleSize returns the smallest N satisfying Theorem 4: with N sampled
// utility functions the estimated average regret ratio deviates from the
// exact value by less than eps with confidence at least 1-sigma.
func SampleSize(eps, sigma float64) (int, error) {
	if eps <= 0 || eps >= 1 || sigma <= 0 || sigma >= 1 {
		return 0, fmt.Errorf("%w: eps=%v sigma=%v", ErrBadParam, eps, sigma)
	}
	n := 3 * math.Log(1/sigma) / (eps * eps)
	return int(math.Ceil(n)), nil
}

// Eps inverts SampleSize: the error bound achieved by N samples at
// confidence 1-sigma (eps = sqrt(3·ln(1/σ)/N), from the proof of
// Theorem 4).
func Eps(n int, sigma float64) (float64, error) {
	if n <= 0 {
		return 0, errors.New("sampling: N must be positive")
	}
	if sigma <= 0 || sigma >= 1 {
		return 0, fmt.Errorf("%w: sigma=%v", ErrBadParam, sigma)
	}
	return math.Sqrt(3 * math.Log(1/sigma) / float64(n)), nil
}

// Sample draws n utility functions from dist using g.
func Sample(dist utility.Distribution, n int, g *rng.RNG) ([]utility.Func, error) {
	if dist == nil {
		return nil, errors.New("sampling: nil distribution")
	}
	if n <= 0 {
		return nil, errors.New("sampling: sample count must be positive")
	}
	out := make([]utility.Func, n)
	for i := range out {
		out[i] = dist.Sample(g)
	}
	return out, nil
}

// TableVRow is one row of the paper's Table V.
type TableVRow struct {
	Eps   float64
	Sigma float64
	N     int
}

// TableV reproduces the paper's Table V: the sample size N for the listed
// (ε, σ) pairs.
func TableV() []TableVRow {
	pairs := []struct{ eps, sigma float64 }{
		{0.01, 0.1},
		{0.001, 0.1},
		{0.0001, 0.1},
		{0.01, 0.05},
		{0.001, 0.05},
		{0.0001, 0.05},
	}
	rows := make([]TableVRow, len(pairs))
	for i, p := range pairs {
		n, err := SampleSize(p.eps, p.sigma)
		if err != nil {
			// The hard-coded pairs are valid; this is unreachable.
			panic(err)
		}
		rows[i] = TableVRow{Eps: p.eps, Sigma: p.sigma, N: n}
	}
	return rows
}
