package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := New(43)
	same := 0
	a42 := New(42)
	for i := 0; i < 100; i++ {
		if a42.Float64() == c.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds should diverge, %d/100 collisions", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	g := New(7)
	s1 := g.Split()
	s2 := g.Split()
	if s1.Float64() == s2.Float64() && s1.Float64() == s2.Float64() {
		t.Fatal("split streams should differ")
	}
}

func TestNormalMoments(t *testing.T) {
	g := New(1)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := g.Normal()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	g := New(2)
	for _, shape := range []float64{0.5, 1, 2.5, 7} {
		const n = 100000
		var sum float64
		for i := 0; i < n; i++ {
			sum += g.Gamma(shape)
		}
		mean := sum / n
		if math.Abs(mean-shape) > 0.08*math.Max(1, shape) {
			t.Fatalf("gamma(%v) mean = %v", shape, mean)
		}
	}
	if g.Gamma(0) != 0 || g.Gamma(-1) != 0 {
		t.Fatal("non-positive shape must return 0")
	}
}

func TestDirichletOnSimplex(t *testing.T) {
	g := New(3)
	for i := 0; i < 100; i++ {
		w := g.Dirichlet(1, 5)
		var sum float64
		for _, v := range w {
			if v < 0 {
				t.Fatal("negative Dirichlet component")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("Dirichlet sum = %v", sum)
		}
	}
	// Symmetric Dirichlet(1): each component has mean 1/dim.
	const n = 50000
	dim := 4
	means := make([]float64, dim)
	for i := 0; i < n; i++ {
		w := g.Dirichlet(1, dim)
		for j, v := range w {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= n
		if math.Abs(means[j]-0.25) > 0.01 {
			t.Fatalf("Dirichlet mean[%d] = %v", j, means[j])
		}
	}
}

func TestUnitSphereNonNeg(t *testing.T) {
	g := New(4)
	for i := 0; i < 200; i++ {
		w := g.UnitSphereNonNeg(6)
		var norm float64
		for _, v := range w {
			if v < 0 {
				t.Fatal("component must be non-negative")
			}
			norm += v * v
		}
		if math.Abs(norm-1) > 1e-12 {
			t.Fatalf("norm^2 = %v", norm)
		}
	}
}

func TestChoice(t *testing.T) {
	g := New(5)
	idx := g.Choice(10, 4)
	if len(idx) != 4 {
		t.Fatalf("Choice returned %d items", len(idx))
	}
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad choice %v", idx)
		}
		seen[v] = true
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Choice(2,3) should panic")
		}
	}()
	g.Choice(2, 3)
}

func TestCategorical(t *testing.T) {
	g := New(6)
	counts := make([]int, 3)
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[g.Categorical(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("categorical p[%d] = %v, want %v", i, got, want)
		}
	}
	// Degenerate all-zero weights fall back to uniform without panicking.
	for i := 0; i < 10; i++ {
		if v := g.Categorical([]float64{0, 0}); v < 0 || v > 1 {
			t.Fatalf("zero-weight categorical out of range: %d", v)
		}
	}
}

func TestCategoricalCDFBoundaries(t *testing.T) {
	g := New(8)
	cdf := []float64{0.25, 0.5, 1.0}
	counts := make([]int, 3)
	for i := 0; i < 60000; i++ {
		counts[g.CategoricalCDF(cdf)]++
	}
	if counts[0] == 0 || counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("all buckets should be hit: %v", counts)
	}
	if math.Abs(float64(counts[2])/60000-0.5) > 0.02 {
		t.Fatalf("last bucket p = %v", float64(counts[2])/60000)
	}
}

// Property: Perm always yields a permutation.
func TestPermProperty(t *testing.T) {
	g := New(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw%20) + 1
		p := g.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
