// Package rng centralizes all randomness in the repository. Every sampler
// takes an explicit *RNG constructed from a 64-bit seed, so experiments are
// reproducible bit-for-bit across runs and machines.
package rng

import (
	"math"
	"math/rand/v2"
)

// RNG wraps a seeded PCG source with the distribution samplers the
// reproduction needs (Gaussian, Dirichlet, unit sphere/simplex, choice).
type RNG struct {
	r *rand.Rand
}

// New returns a deterministic RNG derived from seed.
func New(seed uint64) *RNG {
	// Two distinct streams derived from one seed; the golden-ratio constant
	// decorrelates the second word.
	return &RNG{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// IntN returns a uniform value in [0, n).
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Split derives an independent RNG stream; useful to give each worker or
// dataset its own stream without coupling consumption order.
func (g *RNG) Split() *RNG {
	return New(g.r.Uint64())
}

// Normal returns a standard Gaussian sample (Box–Muller is avoided in favor
// of the rand/v2 ziggurat-backed NormFloat64).
func (g *RNG) Normal() float64 { return g.r.NormFloat64() }

// NormalVec fills out with i.i.d. standard Gaussians.
func (g *RNG) NormalVec(out []float64) {
	for i := range out {
		out[i] = g.r.NormFloat64()
	}
}

// UniformVec fills out with i.i.d. Uniform[0,1) samples.
func (g *RNG) UniformVec(out []float64) {
	for i := range out {
		out[i] = g.r.Float64()
	}
}

// Exponential returns an Exp(1) sample.
func (g *RNG) Exponential() float64 { return g.r.ExpFloat64() }

// Dirichlet samples from a symmetric Dirichlet(alpha) distribution of the
// given dimension. alpha = 1 gives the uniform distribution on the simplex,
// which is the standard model for "uniformly distributed linear utility
// functions" over normalized weight vectors.
func (g *RNG) Dirichlet(alpha float64, dim int) []float64 {
	out := make([]float64, dim)
	var sum float64
	for i := range out {
		out[i] = g.Gamma(alpha)
		sum += out[i]
	}
	if sum == 0 {
		// All-zero draw is measure zero but guard anyway: fall back to the
		// barycenter.
		for i := range out {
			out[i] = 1 / float64(dim)
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Gamma samples from Gamma(shape, 1) using Marsaglia–Tsang for shape >= 1
// and the boosting trick for shape < 1.
func (g *RNG) Gamma(shape float64) float64 {
	if shape <= 0 {
		return 0
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := g.r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// UnitSphereNonNeg samples a uniform direction on the non-negative orthant
// of the unit sphere in the given dimension (the standard distribution for
// max-regret-ratio experiments).
func (g *RNG) UnitSphereNonNeg(dim int) []float64 {
	out := make([]float64, dim)
	for {
		var norm float64
		for i := range out {
			v := math.Abs(g.r.NormFloat64())
			out[i] = v
			norm += v * v
		}
		if norm > 0 {
			norm = math.Sqrt(norm)
			for i := range out {
				out[i] /= norm
			}
			return out
		}
	}
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomly permutes the first n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Choice returns k distinct indices sampled uniformly from [0, n) in random
// order. It panics if k > n.
func (g *RNG) Choice(n, k int) []int {
	if k > n {
		panic("rng: Choice k > n")
	}
	perm := g.r.Perm(n)
	return perm[:k]
}

// CategoricalCDF samples an index from the categorical distribution whose
// cumulative weights are cdf (cdf must be non-decreasing with cdf[len-1]
// equal to the total mass).
func (g *RNG) CategoricalCDF(cdf []float64) int {
	total := cdf[len(cdf)-1]
	u := g.r.Float64() * total
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Categorical samples an index proportional to the non-negative weights.
func (g *RNG) Categorical(weights []float64) int {
	cdf := make([]float64, len(weights))
	var run float64
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		run += w
		cdf[i] = run
	}
	if run == 0 {
		return g.IntN(len(weights))
	}
	return g.CategoricalCDF(cdf)
}
