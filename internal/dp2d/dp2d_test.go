package dp2d

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/rng"
)

func randPoints(g *rng.RNG, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{g.Float64(), g.Float64()}
	}
	return pts
}

func TestSolveValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := Solve(ctx, [][]float64{{1, 0}}, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := Solve(ctx, [][]float64{{1, 2, 3}}, 1); err == nil {
		t.Fatal("3-d must error")
	}
	if _, err := Solve(ctx, nil, 1); err == nil {
		t.Fatal("empty must error")
	}
}

func TestSolveWholeSkylineFits(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {0.9, 0}} // third point dominated by (1,0)
	res, err := Solve(context.Background(), pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.ARR != 0 {
		t.Fatalf("arr = %v, want 0", res.ARR)
	}
	if res.SkylineSize != 2 || len(res.Set) != 2 {
		t.Fatalf("skyline %d, set %v", res.SkylineSize, res.Set)
	}
}

func TestSolveHandComputedK1(t *testing.T) {
	// D = {(1,0), (0,1)}: by symmetry each single point has arr 1/4;
	// the DP must achieve exactly 0.25 with one of them.
	pts := [][]float64{{1, 0}, {0, 1}}
	res, err := Solve(context.Background(), pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ARR-0.25) > 1e-12 {
		t.Fatalf("arr = %v, want 0.25", res.ARR)
	}
	if len(res.Set) != 1 {
		t.Fatalf("set = %v", res.Set)
	}
}

func TestSolveDominatedPointsIgnored(t *testing.T) {
	// Adding dominated points must not change the solution value.
	base := [][]float64{{1, 0.1}, {0.6, 0.7}, {0.1, 1}}
	with := append([][]float64{}, base...)
	with = append(with, []float64{0.05, 0.05}, []float64{0.5, 0.5})
	r1, err := Solve(context.Background(), base, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Solve(context.Background(), with, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.ARR-r2.ARR) > 1e-12 {
		t.Fatalf("arr changed with dominated points: %v vs %v", r1.ARR, r2.ARR)
	}
}

// The core correctness test: DP optimum equals brute-force enumeration
// with exact integration, on random instances.
func TestSolveMatchesBruteForce(t *testing.T) {
	g := rng.New(71)
	for trial := 0; trial < 25; trial++ {
		n := g.IntN(10) + 3
		pts := randPoints(g, n)
		maxK := 4
		if n < maxK {
			maxK = n
		}
		k := g.IntN(maxK) + 1
		res, err := Solve(context.Background(), pts, k)
		if err != nil {
			t.Fatal(err)
		}
		// Exhaustive search over all k-subsets with exact arr.
		best := math.Inf(1)
		var bestSet []int
		var rec func(start int, chosen []int)
		rec = func(start int, chosen []int) {
			if len(chosen) == k {
				arr, err := geom.ExactARR(pts, chosen)
				if err != nil {
					t.Fatal(err)
				}
				if arr < best {
					best = arr
					bestSet = append([]int(nil), chosen...)
				}
				return
			}
			for p := start; p < n; p++ {
				rec(p+1, append(chosen, p))
			}
		}
		rec(0, nil)
		if math.Abs(res.ARR-best) > 1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): DP %v vs brute %v (DP set %v, brute set %v)",
				trial, n, k, res.ARR, best, res.Set, bestSet)
		}
		// The reported set must achieve the reported value.
		check, err := geom.ExactARR(pts, res.Set)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(check-res.ARR) > 1e-9 {
			t.Fatalf("trial %d: set %v has arr %v, reported %v", trial, res.Set, check, res.ARR)
		}
	}
}

func TestSolveReturnsExactlyK(t *testing.T) {
	g := rng.New(77)
	pts := randPoints(g, 40)
	res, err := Solve(context.Background(), pts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SkylineSize > 3 && len(res.Set) != 3 {
		t.Fatalf("set size %d, want 3", len(res.Set))
	}
	for i := 1; i < len(res.Set); i++ {
		if res.Set[i] <= res.Set[i-1] {
			t.Fatalf("set not sorted: %v", res.Set)
		}
	}
}

func TestSolveMonotoneInK(t *testing.T) {
	g := rng.New(79)
	pts := randPoints(g, 60)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := Solve(context.Background(), pts, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.ARR > prev+1e-12 {
			t.Fatalf("optimal arr increased with k: %v -> %v", prev, res.ARR)
		}
		prev = res.ARR
	}
}

func TestSolveContextCancel(t *testing.T) {
	g := rng.New(83)
	// Anticorrelated-ish points to get a large skyline so the DP actually
	// checks the context.
	pts := make([][]float64, 300)
	for i := range pts {
		x := g.Float64()
		pts[i] = []float64{x, 1 - x + 0.01*g.Float64()}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, pts, 5); err == nil {
		t.Fatal("canceled context must error")
	}
}

func TestSolveDeterminism(t *testing.T) {
	g := rng.New(89)
	pts := randPoints(g, 30)
	r1, err1 := Solve(context.Background(), pts, 4)
	r2, err2 := Solve(context.Background(), pts, 4)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.ARR != r2.ARR || len(r1.Set) != len(r2.Set) {
		t.Fatal("non-deterministic result")
	}
	for i := range r1.Set {
		if r1.Set[i] != r2.Set[i] {
			t.Fatal("non-deterministic set")
		}
	}
}
