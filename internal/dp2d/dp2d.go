// Package dp2d implements the exact dynamic program of Section IV: for a
// 2-dimensional database under linear utility functions whose weights are
// uniform on [0,1]², it finds the size-k set minimizing the exact average
// regret ratio in O(n⁴) (n = skyline size).
//
// The recurrence (Theorem 6), written in tangent space t = w2/w1:
//
//	arr*(r, i, tl) = min over j ∈ (i, n] with t(i,j) ≥ tl of
//	                 arr({p_i}, F[tl, t(i,j)]) + arr*(r−1, j, t(i,j))
//	                 — or arr({p_i}, F[tl, ∞]) to stop at p_i —
//
// with base case arr*(0, i, tl) = arr({p_i}, F[tl, ∞]). Skyline points are
// sorted by strictly descending first attribute, so t(i,j), the tangent
// where p_j overtakes p_i, is positive and finite for i < j. The term
// arr({p_i}, F[a,b]) integrates the regret of showing p_i against the
// database envelope over tangents [a, b] using the closed forms of
// internal/geom.
//
// The DP is evaluated bottom-up, one layer r at a time: every cell of
// layer r reads only layer r−1, so the cells within a layer are
// independent and are sharded across a worker pool (internal/par). Each
// cell's transition minimum is still taken by one worker scanning its
// successors in ascending order with a strict comparison, so the chosen
// parent — and therefore the reconstructed set, its exact arr, and the
// full DP tables — are bit-identical at any worker count.
package dp2d

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/sched"
	"github.com/regretlab/fam/internal/skyline"
)

// Result is the output of Solve.
type Result struct {
	// Set holds the selected point indices into the original point set,
	// ascending.
	Set []int
	// ARR is the exact average regret ratio of Set under the uniform-box
	// linear distribution.
	ARR float64
	// SkylineSize is the number of skyline points the DP ran on.
	SkylineSize int
}

// Options configures Solve.
type Options struct {
	// Parallelism bounds the worker goroutines sharding each DP layer
	// (and the per-point envelope prefix sums). Zero uses every CPU
	// (GOMAXPROCS); one forces serial execution. Results are
	// bit-identical at any setting.
	Parallelism int
	// Pool is an optional externally owned worker pool the layer sweeps
	// dispatch on; nil spawns per-call goroutines.
	Pool *par.Pool
	// Sched tags the pool fan-outs with scheduling attributes for the
	// pool's grant policy when the context carries none of its own. The
	// DP tables are identical under any scheduling.
	Sched sched.Attrs
}

// ErrBadK is returned when k is not positive.
var ErrBadK = errors.New("dp2d: k must be positive")

// Solve runs the dynamic program on the (full) 2-d point set with default
// options (all CPUs). Dominated points are removed first — they are never
// anyone's best point, so the optimum over the skyline equals the optimum
// over the database.
func Solve(ctx context.Context, points [][]float64, k int) (Result, error) {
	return SolveOpts(ctx, points, k, Options{})
}

// SolveOpts runs the dynamic program with explicit options.
func SolveOpts(ctx context.Context, points [][]float64, k int, opts Options) (Result, error) {
	res, _, err := solve(ctx, points, k, opts)
	return res, err
}

// tables is the DP state exposed to in-package determinism tests: the
// value and parent tables, indexed [r][i][prev+1].
type tables struct {
	memo   [][][]float64
	parent [][][]int
}

func solve(ctx context.Context, points [][]float64, k int, opts Options) (Result, tables, error) {
	if k <= 0 {
		return Result{}, tables{}, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	ctx = sched.ContextWithDefault(ctx, opts.Sched)
	sky, err := skyline.Skyline2DSorted(points)
	if err != nil {
		return Result{}, tables{}, err
	}
	m := len(sky)
	// Work points in DP order (descending first attribute).
	pts := make([][]float64, m)
	for i, idx := range sky {
		pts[i] = points[idx]
	}
	if k >= m {
		// Whole skyline fits: exact arr is 0.
		out := append([]int(nil), sky...)
		sort.Ints(out)
		return Result{Set: out, ARR: 0, SkylineSize: m}, tables{}, nil
	}

	dbEnv, err := geom.ComputeEnvelope(points)
	if err != nil {
		return Result{}, tables{}, err
	}

	// single(i, a, b) = arr({p_i}, F[a, b]): regret of showing p_i alone to
	// the users with tangents in [a, b], against the database envelope.
	// Implemented as a difference of the cumulative integral
	// A_i(t) = arr({p_i}, F[0, t]), with per-point prefix sums over the
	// database envelope segments (O(E) per point, O(log E) per query) —
	// the DP issues O(k·n³) single() calls, so per-call cost dominates the
	// total runtime. Every point is evaluated by the bottom-up DP, so all
	// prefix rows are built up front — sharded across workers, each row
	// independently and deterministically, which also makes single() a
	// pure read during the parallel layer sweeps.
	envStarts := make([]float64, len(dbEnv.Idx))
	for s := 1; s < len(dbEnv.Idx); s++ {
		envStarts[s] = dbEnv.Breaks[s-1]
	}
	prefix := make([][]float64, m) // prefix[i][s] = A_i(envStarts[s])
	workers := par.Workers(opts.Parallelism, m)
	if err := opts.Pool.Shards(ctx, workers, m, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			pre := make([]float64, len(dbEnv.Idx)+1)
			for s, best := range dbEnv.Idx {
				pre[s+1] = pre[s] + geom.RegretIntegral(pts[i], points[best], envStarts[s], dbEnv.Breaks[s])
			}
			prefix[i] = pre
		}
	}); err != nil {
		return Result{}, tables{}, err
	}
	cumulative := func(i int, t float64) float64 {
		if t <= 0 {
			return 0
		}
		// Find the segment containing t: the first break >= t.
		s := sort.SearchFloat64s(dbEnv.Breaks, t)
		if s >= len(dbEnv.Idx) {
			return prefix[i][len(dbEnv.Idx)]
		}
		best := dbEnv.Idx[s]
		return prefix[i][s] + geom.RegretIntegral(pts[i], points[best], envStarts[s], t)
	}
	single := func(i int, a, b float64) float64 {
		v := cumulative(i, b) - cumulative(i, a)
		if v < 0 {
			return 0 // round-off guard
		}
		return v
	}

	// boundary(i, j) is the tangent where p_j (j > i in DP order) overtakes
	// p_i: equality of p_i[0] + t p_i[1] = p_j[0] + t p_j[1].
	boundary := func(i, j int) float64 {
		if j == m {
			return math.Inf(1)
		}
		return (pts[i][0] - pts[j][0]) / (pts[j][1] - pts[i][1])
	}

	// memo[r][i][prev+1] with tl = 0 when prev == -1, else boundary(prev, i).
	// Layer r answers "minimum arr over the tangents ≥ tl when p_i is shown
	// from tl and at most r more points may follow". Reachable cells: the
	// recurrence only ever queries prev ∈ [0, i) at layers below the top
	// and prev = -1 at the top layer (the openers), so those are the cells
	// each sweep computes.
	memo := make([][][]float64, k)
	parent := make([][][]int, k) // chosen successor j (m means "stop")
	for r := 0; r < k; r++ {
		memo[r] = make([][]float64, m)
		parent[r] = make([][]int, m)
		for i := 0; i < m; i++ {
			memo[r][i] = make([]float64, m+1)
			parent[r][i] = make([]int, m+1)
		}
	}

	// cell computes one (r, i, prev) state from layer r-1: the "stop"
	// option against every legal successor, scanned in ascending order
	// with a strict tolerance comparison — the same order and arithmetic
	// at any worker count.
	cell := func(r, i, prev int) {
		tl := 0.0
		if prev >= 0 {
			tl = boundary(prev, i)
		}
		best := single(i, tl, math.Inf(1))
		bestJ := m
		if r > 0 {
			for j := i + 1; j < m; j++ {
				tj := boundary(i, j)
				if tj < tl {
					continue
				}
				v := single(i, tl, tj) + memo[r-1][j][i+1]
				if v < best-1e-15 {
					best, bestJ = v, j
				}
			}
		}
		memo[r][i][prev+1] = best
		parent[r][i][prev+1] = bestJ
	}

	// Bottom-up layer sweeps: rows of a layer are sharded across workers;
	// every cell only reads the completed layer r-1 (and the immutable
	// prefix sums), so there is no cross-worker communication inside a
	// layer and the join between layers is the only synchronization.
	for r := 0; r < k; r++ {
		if err := opts.Pool.Shards(ctx, workers, m, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if r == k-1 {
					cell(r, i, -1) // openers: only tl = 0 is ever queried
					continue
				}
				for prev := 0; prev < i; prev++ {
					cell(r, i, prev)
				}
			}
		}); err != nil {
			return Result{}, tables{}, err
		}
	}
	// k == 1 has a single layer serving as both base case and opener row;
	// the r == k-1 branch above already handled it.

	bestStart, bestVal := -1, math.Inf(1)
	for i := 0; i < m; i++ {
		// p_i can open the solution only if it is the best shown point at
		// t = 0; any i may be tried (Theorem 6 scans all) — suboptimal
		// openers are simply never minimal.
		if v := memo[k-1][i][0]; v < bestVal-1e-15 {
			bestVal, bestStart = v, i
		}
	}

	// Reconstruct the chain.
	var chain []int
	r, i, prev := k-1, bestStart, -1
	for {
		chain = append(chain, i)
		j := parent[r][i][prev+1]
		if j == m || r == 0 {
			break
		}
		prev, i, r = i, j, r-1
	}
	out := make([]int, len(chain))
	for idx, c := range chain {
		out[idx] = sky[c]
	}
	// The recurrence optimizes over "at most r points", so the chain may be
	// shorter than k. Padding with unused skyline points cannot increase
	// arr (Lemma 1) and keeps the value optimal; re-deriving the exact arr
	// of the padded set keeps the reported number honest.
	if len(out) < k {
		used := make(map[int]bool, len(out))
		for _, p := range out {
			used[p] = true
		}
		for _, p := range sky {
			if len(out) == k {
				break
			}
			if !used[p] {
				out = append(out, p)
			}
		}
		arr, err := geom.ExactARR(points, out)
		if err != nil {
			return Result{}, tables{}, err
		}
		bestVal = arr
	}
	sort.Ints(out)
	return Result{Set: out, ARR: bestVal, SkylineSize: m}, tables{memo: memo, parent: parent}, nil
}
