// Package dp2d implements the exact dynamic program of Section IV: for a
// 2-dimensional database under linear utility functions whose weights are
// uniform on [0,1]², it finds the size-k set minimizing the exact average
// regret ratio in O(n⁴) (n = skyline size).
//
// The recurrence (Theorem 6), written in tangent space t = w2/w1:
//
//	arr*(r, i, tl) = min over j ∈ (i, n] with t(i,j) ≥ tl of
//	                 arr({p_i}, F[tl, t(i,j)]) + arr*(r−1, j, t(i,j))
//	                 — or arr({p_i}, F[tl, ∞]) to stop at p_i —
//
// with base case arr*(0, i, tl) = arr({p_i}, F[tl, ∞]). Skyline points are
// sorted by strictly descending first attribute, so t(i,j), the tangent
// where p_j overtakes p_i, is positive and finite for i < j. The term
// arr({p_i}, F[a,b]) integrates the regret of showing p_i against the
// database envelope over tangents [a, b] using the closed forms of
// internal/geom.
package dp2d

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/skyline"
)

// Result is the output of Solve.
type Result struct {
	// Set holds the selected point indices into the original point set,
	// ascending.
	Set []int
	// ARR is the exact average regret ratio of Set under the uniform-box
	// linear distribution.
	ARR float64
	// SkylineSize is the number of skyline points the DP ran on.
	SkylineSize int
}

// ErrBadK is returned when k is not positive.
var ErrBadK = errors.New("dp2d: k must be positive")

// Solve runs the dynamic program on the (full) 2-d point set. Dominated
// points are removed first — they are never anyone's best point, so the
// optimum over the skyline equals the optimum over the database.
func Solve(ctx context.Context, points [][]float64, k int) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("%w: k=%d", ErrBadK, k)
	}
	sky, err := skyline.Skyline2DSorted(points)
	if err != nil {
		return Result{}, err
	}
	m := len(sky)
	// Work points in DP order (descending first attribute).
	pts := make([][]float64, m)
	for i, idx := range sky {
		pts[i] = points[idx]
	}
	if k >= m {
		// Whole skyline fits: exact arr is 0.
		out := append([]int(nil), sky...)
		sort.Ints(out)
		return Result{Set: out, ARR: 0, SkylineSize: m}, nil
	}

	dbEnv, err := geom.ComputeEnvelope(points)
	if err != nil {
		return Result{}, err
	}

	// single(i, a, b) = arr({p_i}, F[a, b]): regret of showing p_i alone to
	// the users with tangents in [a, b], against the database envelope.
	// Implemented as a difference of the cumulative integral
	// A_i(t) = arr({p_i}, F[0, t]), with per-point prefix sums over the
	// database envelope segments built lazily (O(E) per point, O(log E)
	// per query) — the DP issues O(k·n³) single() calls, so per-call cost
	// dominates the total runtime.
	envStarts := make([]float64, len(dbEnv.Idx))
	for s := 1; s < len(dbEnv.Idx); s++ {
		envStarts[s] = dbEnv.Breaks[s-1]
	}
	prefix := make([][]float64, m) // prefix[i][s] = A_i(envStarts[s])
	cumulative := func(i int, t float64) float64 {
		if prefix[i] == nil {
			pre := make([]float64, len(dbEnv.Idx)+1)
			for s, best := range dbEnv.Idx {
				hi := dbEnv.Breaks[s]
				pre[s+1] = pre[s] + geom.RegretIntegral(pts[i], points[best], envStarts[s], hi)
			}
			prefix[i] = pre
		}
		if t <= 0 {
			return 0
		}
		// Find the segment containing t: the first break >= t.
		s := sort.SearchFloat64s(dbEnv.Breaks, t)
		if s >= len(dbEnv.Idx) {
			return prefix[i][len(dbEnv.Idx)]
		}
		best := dbEnv.Idx[s]
		return prefix[i][s] + geom.RegretIntegral(pts[i], points[best], envStarts[s], t)
	}
	single := func(i int, a, b float64) float64 {
		v := cumulative(i, b) - cumulative(i, a)
		if v < 0 {
			return 0 // round-off guard
		}
		return v
	}

	// boundary(i, j) is the tangent where p_j (j > i in DP order) overtakes
	// p_i: equality of p_i[0] + t p_i[1] = p_j[0] + t p_j[1].
	boundary := func(i, j int) float64 {
		if j == m {
			return math.Inf(1)
		}
		return (pts[i][0] - pts[j][0]) / (pts[j][1] - pts[i][1])
	}

	// memo[r][i][prev+1] with tl = 0 when prev == -1, else boundary(prev, i).
	const unset = -1.0
	memo := make([][][]float64, k)
	parent := make([][][]int, k) // chosen successor j (m means "stop")
	for r := 0; r < k; r++ {
		memo[r] = make([][]float64, m)
		parent[r] = make([][]int, m)
		for i := 0; i < m; i++ {
			memo[r][i] = make([]float64, m+1)
			parent[r][i] = make([]int, m+1)
			for p := range memo[r][i] {
				memo[r][i][p] = unset
			}
		}
	}

	var ctxErr error
	var solve func(r, i, prev int) float64
	solve = func(r, i, prev int) float64 {
		if ctxErr != nil {
			return 0
		}
		if v := memo[r][i][prev+1]; v != unset {
			return v
		}
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return 0
		}
		tl := 0.0
		if prev >= 0 {
			tl = boundary(prev, i)
		}
		// Option "stop": p_i is the best shown point for all tangents ≥ tl.
		best := single(i, tl, math.Inf(1))
		bestJ := m
		if r > 0 {
			for j := i + 1; j < m; j++ {
				tj := boundary(i, j)
				if tj < tl {
					continue
				}
				v := single(i, tl, tj) + solve(r-1, j, i)
				if v < best-1e-15 {
					best, bestJ = v, j
				}
			}
		}
		memo[r][i][prev+1] = best
		parent[r][i][prev+1] = bestJ
		return best
	}

	bestStart, bestVal := -1, math.Inf(1)
	for i := 0; i < m; i++ {
		// p_i can open the solution only if it is the best shown point at
		// t = 0; any i may be tried (Theorem 6 scans all) — suboptimal
		// openers are simply never minimal.
		if v := solve(k-1, i, -1); v < bestVal-1e-15 {
			bestVal, bestStart = v, i
		}
	}
	if ctxErr != nil {
		return Result{}, ctxErr
	}

	// Reconstruct the chain.
	var chain []int
	r, i, prev := k-1, bestStart, -1
	for {
		chain = append(chain, i)
		j := parent[r][i][prev+1]
		if j == m || r == 0 {
			break
		}
		prev, i, r = i, j, r-1
	}
	out := make([]int, len(chain))
	for idx, c := range chain {
		out[idx] = sky[c]
	}
	// The recurrence optimizes over "at most r points", so the chain may be
	// shorter than k. Padding with unused skyline points cannot increase
	// arr (Lemma 1) and keeps the value optimal; re-deriving the exact arr
	// of the padded set keeps the reported number honest.
	if len(out) < k {
		used := make(map[int]bool, len(out))
		for _, p := range out {
			used[p] = true
		}
		for _, p := range sky {
			if len(out) == k {
				break
			}
			if !used[p] {
				out = append(out, p)
			}
		}
		arr, err := geom.ExactARR(points, out)
		if err != nil {
			return Result{}, err
		}
		bestVal = arr
	}
	sort.Ints(out)
	return Result{Set: out, ARR: bestVal, SkylineSize: m}, nil
}
