package dp2d

import (
	"context"
	"reflect"
	"testing"

	"github.com/regretlab/fam/internal/rng"
)

// bandPoints generates points near the anti-diagonal so the skyline — and
// therefore the DP state space — is large enough for the layer sweeps to
// actually shard.
func bandPoints(g *rng.RNG, n int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		x := g.Float64()
		pts[i] = []float64{x, 1 - x + 0.05*g.Float64()}
	}
	return pts
}

// The parallel layer sweeps must be bit-identical to the serial run:
// same selected set, same exact ARR, and the same value/parent tables in
// every cell the DP computes — at any worker count.
func TestSolveParallelMatchesSerialTables(t *testing.T) {
	ctx := context.Background()
	g := rng.New(101)
	pts := bandPoints(g, 150)
	const k = 4
	refRes, refTab, err := solve(ctx, pts, k, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if refRes.SkylineSize < 20 {
		t.Fatalf("degenerate instance: skyline %d", refRes.SkylineSize)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		res, tab, err := solve(ctx, pts, k, Options{Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(res.Set, refRes.Set) {
			t.Fatalf("workers=%d: set %v != %v", workers, res.Set, refRes.Set)
		}
		if res.ARR != refRes.ARR {
			t.Fatalf("workers=%d: ARR %v != %v (must be bit-identical)", workers, res.ARR, refRes.ARR)
		}
		if res.SkylineSize != refRes.SkylineSize {
			t.Fatalf("workers=%d: skyline %d != %d", workers, res.SkylineSize, refRes.SkylineSize)
		}
		if !reflect.DeepEqual(tab.memo, refTab.memo) {
			t.Fatalf("workers=%d: DP value tables diverged", workers)
		}
		if !reflect.DeepEqual(tab.parent, refTab.parent) {
			t.Fatalf("workers=%d: DP parent tables diverged", workers)
		}
	}
}

// Randomized sweep: the public SolveOpts result is identical across worker
// counts on many small instances (varied n and k, including k larger than
// the skyline).
func TestSolveOptsParallelRandomized(t *testing.T) {
	ctx := context.Background()
	g := rng.New(211)
	for trial := 0; trial < 20; trial++ {
		n := g.IntN(60) + 5
		k := g.IntN(5) + 1
		pts := bandPoints(g, n)
		ref, err := SolveOpts(ctx, pts, k, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{3, 0} {
			res, err := SolveOpts(ctx, pts, k, Options{Parallelism: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if !reflect.DeepEqual(res.Set, ref.Set) || res.ARR != ref.ARR {
				t.Fatalf("trial %d workers=%d: (%v, %v) != (%v, %v)",
					trial, workers, res.Set, res.ARR, ref.Set, ref.ARR)
			}
		}
	}
}

// Cancellation must be honored from inside the sharded layer sweeps.
func TestSolveParallelPreCanceled(t *testing.T) {
	g := rng.New(307)
	pts := bandPoints(g, 200)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveOpts(ctx, pts, 5, Options{Parallelism: 4}); err == nil {
		t.Fatal("canceled context must error")
	}
}
