// Package vec provides the small dense linear-algebra kernel used by the
// learning substrates (matrix factorization, Gaussian mixture models) and
// by the utility-function machinery. It is deliberately minimal: dense
// float64 vectors and matrices, BLAS-1/2/3 style helpers, and a Cholesky
// factorization for sampling from multivariate Gaussians.
package vec

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when operand shapes are incompatible.
var ErrDimensionMismatch = errors.New("vec: dimension mismatch")

// ErrNotPositiveDefinite is returned by Cholesky when the input matrix is
// not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("vec: matrix not positive definite")

// Dot returns the inner product of a and b.
// It panics if the lengths differ; callers validate shapes at API
// boundaries, so an internal mismatch is a programming error.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of a.
func Norm2(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Scale multiplies every element of a by c, in place.
func Scale(a []float64, c float64) {
	for i := range a {
		a[i] *= c
	}
}

// AddScaled computes dst += c*src in place.
// It panics if the lengths differ.
func AddScaled(dst []float64, c float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vec: AddScaled length mismatch %d != %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += c * v
	}
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("vec: Sub length mismatch %d != %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// Clone returns a copy of a.
func Clone(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// Max returns the maximum element of a and its index.
// It returns (-Inf, -1) for an empty slice.
func Max(a []float64) (float64, int) {
	best, idx := math.Inf(-1), -1
	for i, v := range a {
		if v > best {
			best, idx = v, i
		}
	}
	return best, idx
}

// Sum returns the sum of the elements of a.
func Sum(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v
	}
	return s
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vec: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m · x and returns the result.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: matrix %dx%d times vector %d", ErrDimensionMismatch, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out, nil
}

// Mul computes m · other and returns the result.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, fmt.Errorf("%w: %dx%d times %dx%d", ErrDimensionMismatch, m.Rows, m.Cols, other.Rows, other.Cols)
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for l := 0; l < m.Cols; l++ {
			a := mi[l]
			if a == 0 {
				continue
			}
			or := other.Row(l)
			for j := range oi {
				oi[j] += a * or[j]
			}
		}
	}
	return out, nil
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Cholesky computes the lower-triangular L with m = L·Lᵀ.
// m must be square and symmetric positive definite; a small jitter can be
// added by the caller to regularize near-singular covariance matrices.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("%w: Cholesky of %dx%d", ErrDimensionMismatch, m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, fmt.Errorf("%w: pivot %d is %g", ErrNotPositiveDefinite, i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveLower solves L·x = b for lower-triangular L (forward substitution).
func (m *Matrix) SolveLower(b []float64) ([]float64, error) {
	if m.Rows != m.Cols || len(b) != m.Rows {
		return nil, fmt.Errorf("%w: SolveLower %dx%d with rhs %d", ErrDimensionMismatch, m.Rows, m.Cols, len(b))
	}
	x := make([]float64, len(b))
	for i := 0; i < m.Rows; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= m.At(i, j) * x[j]
		}
		d := m.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("vec: SolveLower zero diagonal at %d", i)
		}
		x[i] = s / d
	}
	return x, nil
}

// LogDetLower returns log|det(L·Lᵀ)| = 2·Σ log L_ii for lower-triangular L.
func (m *Matrix) LogDetLower() float64 {
	var s float64
	for i := 0; i < m.Rows; i++ {
		s += math.Log(m.At(i, i))
	}
	return 2 * s
}

// AddDiagonal adds c to every diagonal element, in place.
func (m *Matrix) AddDiagonal(c float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += c
	}
}
