package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
}

func TestScaleAddScaledSub(t *testing.T) {
	a := []float64{1, 2}
	Scale(a, 3)
	if a[0] != 3 || a[1] != 6 {
		t.Fatalf("Scale = %v", a)
	}
	AddScaled(a, 2, []float64{1, 1})
	if a[0] != 5 || a[1] != 8 {
		t.Fatalf("AddScaled = %v", a)
	}
	d := Sub(a, []float64{5, 8})
	if d[0] != 0 || d[1] != 0 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestMaxAndSum(t *testing.T) {
	v, i := Max([]float64{1, 9, 3})
	if v != 9 || i != 1 {
		t.Fatalf("Max = (%v,%v)", v, i)
	}
	if _, i := Max(nil); i != -1 {
		t.Fatalf("Max(nil) index = %v, want -1", i)
	}
	if s := Sum([]float64{1, 2, 3}); s != 6 {
		t.Fatalf("Sum = %v", s)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(0, 2, 2)
	m.Set(1, 1, 5)
	if m.At(0, 2) != 2 || m.At(1, 1) != 5 {
		t.Fatal("At/Set roundtrip failed")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias storage")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone must not alias")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	out, err := m.MulVec([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 3 || out[1] != 7 {
		t.Fatalf("MulVec = %v", out)
	}
	if _, err := m.MulVec([]float64{1}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestMulAndTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	for i := 0; i < 6; i++ {
		a.Data[i] = float64(i + 1)
	}
	b := a.Transpose()
	if b.Rows != 3 || b.Cols != 2 || b.At(2, 1) != 6 {
		t.Fatalf("Transpose wrong: %+v", b)
	}
	p, err := a.Mul(b) // 2x3 * 3x2 = 2x2
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 of a = [1 2 3]; p[0][0] = 1+4+9 = 14; p[0][1] = 4+10+18 = 32.
	if p.At(0, 0) != 14 || p.At(0, 1) != 32 || p.At(1, 1) != 77 {
		t.Fatalf("Mul wrong: %v", p.Data)
	}
	if _, err := a.Mul(a); err == nil {
		t.Fatal("expected dimension error for 2x3 * 2x3")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	// A = L0 L0^T with a known lower factor.
	l0 := NewMatrix(3, 3)
	l0.Set(0, 0, 2)
	l0.Set(1, 0, 1)
	l0.Set(1, 1, 3)
	l0.Set(2, 0, 0.5)
	l0.Set(2, 1, -1)
	l0.Set(2, 2, 1.5)
	a, err := l0.Mul(l0.Transpose())
	if err != nil {
		t.Fatal(err)
	}
	l, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEqual(l.At(i, j), l0.At(i, j), 1e-12) {
				t.Fatalf("Cholesky factor mismatch at (%d,%d): %v vs %v", i, j, l.At(i, j), l0.At(i, j))
			}
		}
	}
	if got, want := l.LogDetLower(), 2*math.Log(2*3*1.5); !almostEqual(got, want, 1e-12) {
		t.Fatalf("LogDetLower = %v, want %v", got, want)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, -1
	if _, err := a.Cholesky(); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestSolveLower(t *testing.T) {
	l := NewMatrix(2, 2)
	l.Set(0, 0, 2)
	l.Set(1, 0, 1)
	l.Set(1, 1, 4)
	x, err := l.SolveLower([]float64{4, 10})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 || x[1] != 2 {
		t.Fatalf("SolveLower = %v", x)
	}
	l.Set(1, 1, 0)
	if _, err := l.SolveLower([]float64{1, 1}); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestAddDiagonal(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddDiagonal(3)
	if m.At(0, 0) != 3 || m.At(1, 1) != 3 || m.At(0, 1) != 0 {
		t.Fatalf("AddDiagonal = %v", m.Data)
	}
}

// Property: Cholesky of A + n*I (diagonally dominant random symmetric A)
// reconstructs the matrix.
func TestCholeskyReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(uint64(seed)%4) + 2
		a := NewMatrix(n, n)
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53)
		}
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := next() - 0.5
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		a.AddDiagonal(float64(n)) // ensure SPD
		l, err := a.Cholesky()
		if err != nil {
			return false
		}
		rec, err := l.Mul(l.Transpose())
		if err != nil {
			return false
		}
		for i := range a.Data {
			if !almostEqual(rec.Data[i], a.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ on random shapes.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := uint64(seed)
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11)/float64(1<<53) - 0.5
		}
		r := int(uint64(seed)%3) + 1
		c := int(uint64(seed)/3%3) + 1
		k := int(uint64(seed)/9%3) + 1
		a := NewMatrix(r, c)
		b := NewMatrix(c, k)
		for i := range a.Data {
			a.Data[i] = next()
		}
		for i := range b.Data {
			b.Data[i] = next()
		}
		ab, err := a.Mul(b)
		if err != nil {
			return false
		}
		ba, err := b.Transpose().Mul(a.Transpose())
		if err != nil {
			return false
		}
		abt := ab.Transpose()
		for i := range abt.Data {
			if !almostEqual(abt.Data[i], ba.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
