// Package kernel provides the dense utility-matrix storage and the
// scan primitives shared by every solver's inner loop. A Matrix is the
// N×n utility table in user-major layout — each user's row is one
// contiguous block, so the per-candidate scans of GREEDY-SHRINK walk
// memory linearly — with an opt-in float32 storage mode that halves the
// resident bytes at the cost of ~7 decimal digits. A Transposed view is
// the point-major copy used by insertion-style solvers (GreedyAdd),
// whose hot loop reads one point's utility across all users: the
// transpose turns that strided column access into a contiguous pass.
//
// Determinism contract: every scan visits the supplied index list in
// order with strict comparisons (`v > best`), so the lowest index wins
// ties exactly like the historical per-element loops they replace. In
// float32 mode values are converted with float64(float32(v)) at both
// store and load, so At, Row scans and Transposed columns all observe
// the identical rounded value — results are bit-deterministic within a
// storage mode; only across modes do they differ.
package kernel

// Block is the tile edge used by the cache-blocked transpose. 64×64
// float64 tiles (32 KB source + 32 KB destination working set) fit
// comfortably in L1/L2 on every current core.
const Block = 64

// Matrix is a dense users×points utility table with contiguous
// user-major rows, stored as float64 or (opt-in) float32.
type Matrix struct {
	users  int
	points int
	f64    []float64
	f32    []float32
}

// New allocates a users×points matrix. float32Mode selects the halved
// storage representation.
func New(users, points int, float32Mode bool) *Matrix {
	m := &Matrix{users: users, points: points}
	if float32Mode {
		m.f32 = make([]float32, users*points)
	} else {
		m.f64 = make([]float64, users*points)
	}
	return m
}

// Users returns the row count N.
func (m *Matrix) Users() int { return m.users }

// Points returns the column count n.
func (m *Matrix) Points() int { return m.points }

// Float32 reports whether the matrix uses float32 storage.
func (m *Matrix) Float32() bool { return m.f32 != nil }

// At returns entry (u, p) as float64. In float32 mode the value is the
// stored rounding of the original — identical to what every scan sees.
func (m *Matrix) At(u, p int) float64 {
	if m.f32 != nil {
		return float64(m.f32[u*m.points+p])
	}
	return m.f64[u*m.points+p]
}

// Set stores entry (u, p), rounding to float32 in float32 mode.
func (m *Matrix) Set(u, p int, v float64) {
	if m.f32 != nil {
		m.f32[u*m.points+p] = float32(v)
		return
	}
	m.f64[u*m.points+p] = v
}

// FootprintBytes returns the exact resident bytes of the backing array
// plus its slice header.
func (m *Matrix) FootprintBytes() int64 {
	const sliceHeader = 24
	if m.f32 != nil {
		return sliceHeader + int64(len(m.f32))*4
	}
	return sliceHeader + int64(len(m.f64))*8
}

// RowTwoMax scans row u over the listed columns (visited in order) and
// returns the best and second-best entries. Sentinels are (-1, -1.0)
// when fewer than one/two columns are listed; callers clamp negative
// values to zero exactly like the historical closures. The first index
// encountered wins ties via the strict `>` comparisons.
func (m *Matrix) RowTwoMax(u int, idx []int32) (b1 int32, v1 float64, b2 int32, v2 float64) {
	b1, b2 = -1, -1
	v1, v2 = -1, -1
	if m.f32 != nil {
		row := m.f32[u*m.points : (u+1)*m.points]
		for _, p := range idx {
			v := float64(row[p])
			if v > v1 {
				b2, v2 = b1, v1
				b1, v1 = p, v
			} else if v > v2 {
				b2, v2 = p, v
			}
		}
		return
	}
	row := m.f64[u*m.points : (u+1)*m.points]
	for _, p := range idx {
		v := row[p]
		if v > v1 {
			b2, v2 = b1, v1
			b1, v1 = p, v
		} else if v > v2 {
			b2, v2 = p, v
		}
	}
	return
}

// RowMax scans row u over the listed columns and returns the argmax
// (first index wins ties) with sentinel (-1, -1.0) for an empty list.
func (m *Matrix) RowMax(u int, idx []int32) (int32, float64) {
	var bi int32 = -1
	bv := -1.0
	if m.f32 != nil {
		row := m.f32[u*m.points : (u+1)*m.points]
		for _, p := range idx {
			if v := float64(row[p]); v > bv {
				bi, bv = p, v
			}
		}
		return bi, bv
	}
	row := m.f64[u*m.points : (u+1)*m.points]
	for _, p := range idx {
		if v := row[p]; v > bv {
			bi, bv = p, v
		}
	}
	return bi, bv
}

// RowMaxExcl is RowMax skipping the single excluded column.
func (m *Matrix) RowMaxExcl(u int, idx []int32, excl int32) (int32, float64) {
	var bi int32 = -1
	bv := -1.0
	if m.f32 != nil {
		row := m.f32[u*m.points : (u+1)*m.points]
		for _, p := range idx {
			if p == excl {
				continue
			}
			if v := float64(row[p]); v > bv {
				bi, bv = p, v
			}
		}
		return bi, bv
	}
	row := m.f64[u*m.points : (u+1)*m.points]
	for _, p := range idx {
		if p == excl {
			continue
		}
		if v := row[p]; v > bv {
			bi, bv = p, v
		}
	}
	return bi, bv
}

// Transposed is the point-major copy of a Matrix: Col(p) is the
// contiguous utility column of point p across all users. Values are
// always materialized as float64 — for a float32 source the conversion
// float64(float32) is exact, so Col(p)[u] == Matrix.At(u, p) in either
// mode and solvers reading columns stay bit-identical to element-wise
// access.
type Transposed struct {
	users  int
	points int
	vals   []float64
}

// Transpose builds the point-major copy with a cache-blocked tile loop:
// both the source row segment and the destination column segment of a
// Block×Block tile stay resident while the tile is copied, instead of
// striding the full matrix once per row.
func (m *Matrix) Transpose() *Transposed {
	t := &Transposed{users: m.users, points: m.points, vals: make([]float64, m.users*m.points)}
	for u0 := 0; u0 < m.users; u0 += Block {
		uMax := u0 + Block
		if uMax > m.users {
			uMax = m.users
		}
		for p0 := 0; p0 < m.points; p0 += Block {
			pMax := p0 + Block
			if pMax > m.points {
				pMax = m.points
			}
			if m.f32 != nil {
				for u := u0; u < uMax; u++ {
					row := m.f32[u*m.points : (u+1)*m.points]
					for p := p0; p < pMax; p++ {
						t.vals[p*m.users+u] = float64(row[p])
					}
				}
			} else {
				for u := u0; u < uMax; u++ {
					row := m.f64[u*m.points : (u+1)*m.points]
					for p := p0; p < pMax; p++ {
						t.vals[p*m.users+u] = row[p]
					}
				}
			}
		}
	}
	return t
}

// Col returns the contiguous utility column of point p (length Users).
// The slice aliases the transpose's backing array; callers must not
// mutate it.
func (t *Transposed) Col(p int) []float64 {
	return t.vals[p*t.users : (p+1)*t.users]
}
