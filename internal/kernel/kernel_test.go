package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// refTwoMax is the historical per-element closure the kernel scans
// replace: visit listed columns in order, strict comparisons, sentinel
// -1/-1.0.
func refTwoMax(at func(u, p int) float64, u int, idx []int32) (int32, float64, int32, float64) {
	b1, b2 := int32(-1), int32(-1)
	v1, v2 := -1.0, -1.0
	for _, p := range idx {
		v := at(u, int(p))
		if v > v1 {
			b2, v2 = b1, v1
			b1, v1 = p, v
		} else if v > v2 {
			b2, v2 = p, v
		}
	}
	return b1, v1, b2, v2
}

func refMaxExcl(at func(u, p int) float64, u int, idx []int32, excl int32) (int32, float64) {
	bi, bv := int32(-1), -1.0
	for _, p := range idx {
		if p == excl {
			continue
		}
		if v := at(u, int(p)); v > bv {
			bi, bv = p, v
		}
	}
	return bi, bv
}

func fillRandom(m *Matrix, seed int64, ties bool) {
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < m.Users(); u++ {
		for p := 0; p < m.Points(); p++ {
			v := rng.Float64()
			if ties && rng.Intn(4) == 0 {
				// Quantize hard so duplicate values are common and the
				// lowest-index tie-break is actually exercised.
				v = math.Floor(v*4) / 4
			}
			m.Set(u, p, v)
		}
	}
}

func subsets(n int, rng *rand.Rand) [][]int32 {
	full := make([]int32, n)
	for i := range full {
		full[i] = int32(i)
	}
	sparse := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(3) != 0 {
			sparse = append(sparse, int32(i))
		}
	}
	return [][]int32{full, sparse, {}, {int32(n / 2)}}
}

func TestScansMatchReference(t *testing.T) {
	for _, f32 := range []bool{false, true} {
		m := New(37, 53, f32)
		fillRandom(m, 7, true)
		rng := rand.New(rand.NewSource(11))
		for _, idx := range subsets(m.Points(), rng) {
			for u := 0; u < m.Users(); u++ {
				b1, v1, b2, v2 := m.RowTwoMax(u, idx)
				rb1, rv1, rb2, rv2 := refTwoMax(m.At, u, idx)
				if b1 != rb1 || v1 != rv1 || b2 != rb2 || v2 != rv2 {
					t.Fatalf("f32=%v u=%d: RowTwoMax=(%d,%v,%d,%v) ref=(%d,%v,%d,%v)",
						f32, u, b1, v1, b2, v2, rb1, rv1, rb2, rv2)
				}
				bi, bv := m.RowMax(u, idx)
				if rbi, rbv := refMaxExcl(m.At, u, idx, -1); bi != rbi || bv != rbv {
					t.Fatalf("f32=%v u=%d: RowMax=(%d,%v) ref=(%d,%v)", f32, u, bi, bv, rbi, rbv)
				}
				var excl int32 = -1
				if len(idx) > 0 {
					excl = idx[len(idx)/2]
				}
				bi, bv = m.RowMaxExcl(u, idx, excl)
				if rbi, rbv := refMaxExcl(m.At, u, idx, excl); bi != rbi || bv != rbv {
					t.Fatalf("f32=%v u=%d excl=%d: RowMaxExcl=(%d,%v) ref=(%d,%v)",
						f32, u, excl, bi, bv, rbi, rbv)
				}
			}
		}
	}
}

func TestTransposeMatchesAt(t *testing.T) {
	for _, f32 := range []bool{false, true} {
		// Sizes straddling the tile edge exercise the partial-tile paths.
		for _, dims := range [][2]int{{3, 5}, {Block, Block}, {Block + 9, 2*Block + 1}} {
			m := New(dims[0], dims[1], f32)
			fillRandom(m, 13, false)
			tp := m.Transpose()
			for p := 0; p < m.Points(); p++ {
				col := tp.Col(p)
				if len(col) != m.Users() {
					t.Fatalf("f32=%v dims=%v: col %d has length %d", f32, dims, p, len(col))
				}
				for u := 0; u < m.Users(); u++ {
					if col[u] != m.At(u, p) {
						t.Fatalf("f32=%v dims=%v: Col(%d)[%d]=%v At=%v", f32, dims, p, u, col[u], m.At(u, p))
					}
				}
			}
		}
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	m := New(2, 2, true)
	v := 0.1 // not representable exactly in float32
	m.Set(0, 0, v)
	want := float64(float32(v))
	if got := m.At(0, 0); got != want {
		t.Fatalf("float32 round-trip: got %v want %v", got, want)
	}
	if m.At(0, 0) == v {
		t.Fatal("float32 storage unexpectedly preserved full float64 precision")
	}
}

func TestFootprintBytes(t *testing.T) {
	const sliceHeader = 24
	if got, want := New(10, 7, false).FootprintBytes(), int64(sliceHeader+10*7*8); got != want {
		t.Fatalf("f64 footprint: got %d want %d", got, want)
	}
	if got, want := New(10, 7, true).FootprintBytes(), int64(sliceHeader+10*7*4); got != want {
		t.Fatalf("f32 footprint: got %d want %d", got, want)
	}
}
