package point

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		p, q []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equality is not dominance
		{[]float64{1, 1}, []float64{1, 0}, true},
		{[]float64{0, 0}, []float64{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.p, c.q); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestWeaklyDominates(t *testing.T) {
	if !WeaklyDominates([]float64{1, 1}, []float64{1, 1}) {
		t.Fatal("a point weakly dominates itself")
	}
	if WeaklyDominates([]float64{1, 0}, []float64{0, 1}) {
		t.Fatal("incomparable points should not weakly dominate")
	}
}

// Property: dominance is antisymmetric and irreflexive.
func TestDominanceAntisymmetry(t *testing.T) {
	f := func(a, b [3]uint8) bool {
		p := []float64{float64(a[0]), float64(a[1]), float64(a[2])}
		q := []float64{float64(b[0]), float64(b[1]), float64(b[2])}
		if Dominates(p, p) {
			return false
		}
		return !(Dominates(p, q) && Dominates(q, p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: dominance is transitive.
func TestDominanceTransitivity(t *testing.T) {
	f := func(a, b, c [3]uint8) bool {
		p := []float64{float64(a[0]), float64(a[1]), float64(a[2])}
		q := []float64{float64(b[0]), float64(b[1]), float64(b[2])}
		r := []float64{float64(c[0]), float64(c[1]), float64(c[2])}
		if Dominates(p, q) && Dominates(q, r) {
			return Dominates(p, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidate(t *testing.T) {
	if _, err := Validate(nil); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := Validate([][]float64{{}}); err == nil {
		t.Fatal("zero-dimensional must error")
	}
	if _, err := Validate([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged must error")
	}
	if _, err := Validate([][]float64{{1, math.NaN()}}); err == nil {
		t.Fatal("NaN must error")
	}
	if _, err := Validate([][]float64{{1, math.Inf(1)}}); err == nil {
		t.Fatal("Inf must error")
	}
	d, err := Validate([][]float64{{1, 2}, {3, 4}})
	if err != nil || d != 2 {
		t.Fatalf("Validate = (%v, %v)", d, err)
	}
}

func TestNormalize(t *testing.T) {
	pts := [][]float64{{0, 10, 5}, {10, 20, 5}, {5, 15, 5}}
	norm, err := Normalize(pts)
	if err != nil {
		t.Fatal(err)
	}
	if norm[0][0] != 0 || norm[1][0] != 1 || norm[2][0] != 0.5 {
		t.Fatalf("attribute 0 = %v %v %v", norm[0][0], norm[1][0], norm[2][0])
	}
	if norm[0][1] != 0 || norm[1][1] != 1 {
		t.Fatal("attribute 1 not min-max scaled")
	}
	// Constant attribute maps to 1.
	for i := range norm {
		if norm[i][2] != 1 {
			t.Fatalf("constant attribute should map to 1, got %v", norm[i][2])
		}
	}
	// Input untouched.
	if pts[0][0] != 0 || pts[1][1] != 20 {
		t.Fatal("Normalize must not modify input")
	}
}

// Property: normalized values are always within [0, 1].
func TestNormalizeRangeProperty(t *testing.T) {
	f := func(raw [4][2]int8) bool {
		pts := make([][]float64, 4)
		for i, r := range raw {
			pts[i] = []float64{float64(r[0]), float64(r[1])}
		}
		norm, err := Normalize(pts)
		if err != nil {
			return false
		}
		for _, p := range norm {
			for _, v := range p {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDedup(t *testing.T) {
	pts := [][]float64{{1, 2}, {3, 4}, {1, 2}, {5, 6}, {3, 4}}
	kept, idx := Dedup(pts)
	if len(kept) != 3 || idx[0] != 0 || idx[1] != 1 || idx[2] != 3 {
		t.Fatalf("Dedup kept %d at %v", len(kept), idx)
	}
	// Negative zero and zero are distinct bit patterns; Dedup is bitwise.
	kept2, _ := Dedup([][]float64{{0.0}, {math.Copysign(0, -1)}})
	if len(kept2) != 2 {
		t.Fatal("bitwise dedup should distinguish +0 and -0")
	}
}

func TestSelect(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	sub := Select(pts, []int{2, 0})
	if len(sub) != 2 || sub[0][0] != 3 || sub[1][0] != 1 {
		t.Fatalf("Select = %v", sub)
	}
}
