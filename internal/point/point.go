// Package point defines the primitive data-point operations shared by the
// whole repository: dominance tests, normalization to the unit box (the
// paper assumes every utility value is at most 1), and basic validation.
//
// Throughout the repository, "larger is better" on every attribute: a point
// p dominates q when p is at least as good on every attribute and strictly
// better on at least one. This is the convention of the skyline literature
// the paper builds on.
package point

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when an operation needs at least one point.
var ErrEmpty = errors.New("point: empty point set")

// ErrRagged is returned when points do not all share one dimensionality.
var ErrRagged = errors.New("point: ragged point set")

// Dominates reports whether p dominates q: p[i] >= q[i] for all i and
// p[i] > q[i] for some i. The slices must have equal length.
func Dominates(p, q []float64) bool {
	strict := false
	for i := range p {
		if p[i] < q[i] {
			return false
		}
		if p[i] > q[i] {
			strict = true
		}
	}
	return strict
}

// WeaklyDominates reports whether p[i] >= q[i] for all i.
func WeaklyDominates(p, q []float64) bool {
	for i := range p {
		if p[i] < q[i] {
			return false
		}
	}
	return true
}

// Validate checks that points is non-empty, rectangular, and free of NaNs
// and infinities. It returns the common dimensionality.
func Validate(points [][]float64) (int, error) {
	if len(points) == 0 {
		return 0, ErrEmpty
	}
	d := len(points[0])
	if d == 0 {
		return 0, errors.New("point: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != d {
			return 0, fmt.Errorf("%w: point %d has %d attributes, want %d", ErrRagged, i, len(p), d)
		}
		for j, v := range p {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("point: point %d attribute %d is %v", i, j, v)
			}
		}
	}
	return d, nil
}

// Normalize rescales each attribute to [0, 1] using a min-max transform and
// returns a new point set (the input is not modified). Constant attributes
// map to 1 so that "larger is better" keeps every point equally good on
// them. The paper assumes utilities are at most 1; normalizing the data to
// the unit box makes that hold for all weight vectors in the unit box too.
func Normalize(points [][]float64) ([][]float64, error) {
	d, err := Validate(points)
	if err != nil {
		return nil, err
	}
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range points {
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	out := make([][]float64, len(points))
	for i, p := range points {
		q := make([]float64, d)
		for j, v := range p {
			if hi[j] > lo[j] {
				q[j] = (v - lo[j]) / (hi[j] - lo[j])
			} else {
				q[j] = 1
			}
		}
		out[i] = q
	}
	return out, nil
}

// Dedup removes exact duplicate points, keeping the first occurrence, and
// returns the kept points along with the original index of each kept point.
func Dedup(points [][]float64) ([][]float64, []int) {
	type key string
	seen := make(map[key]bool, len(points))
	var kept [][]float64
	var idx []int
	buf := make([]byte, 0, 64)
	for i, p := range points {
		buf = buf[:0]
		for _, v := range p {
			bits := math.Float64bits(v)
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(bits>>s))
			}
		}
		k := key(buf)
		if !seen[k] {
			seen[k] = true
			kept = append(kept, p)
			idx = append(idx, i)
		}
	}
	return kept, idx
}

// Select returns the subset of points at the given indices.
func Select(points [][]float64, indices []int) [][]float64 {
	out := make([][]float64, len(indices))
	for i, idx := range indices {
		out[i] = points[idx]
	}
	return out
}
