package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()
	fill := func(v string) func(context.Context) (any, error) {
		return func(context.Context) (any, error) { return v, nil }
	}

	v, hit, err := c.Do(ctx, "a", fill("A"))
	if err != nil || hit || v.(string) != "A" {
		t.Fatalf("first Do = (%v, %v, %v)", v, hit, err)
	}
	v, hit, err = c.Do(ctx, "a", fill("ignored"))
	if err != nil || !hit || v.(string) != "A" {
		t.Fatalf("second Do = (%v, %v, %v), want cached A", v, hit, err)
	}

	// Fill b, touch a, fill c -> b is the LRU victim.
	if _, _, err := c.Do(ctx, "b", fill("B")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(ctx, "a", fill("ignored")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Do(ctx, "c", fill("C")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived eviction")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Capacity != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestCacheSingleflight: concurrent Do calls for one absent key must run
// the fill exactly once, with every other caller coalescing onto it. The
// fill blocks until all callers have arrived, so the coalesced count is
// deterministic.
func TestCacheSingleflight(t *testing.T) {
	c := NewCache(0)
	const callers = 8
	var fills atomic.Int64
	arrived := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func(context.Context) (any, error) {
				fills.Add(1)
				<-arrived // hold the fill open until every caller has called Do
				return 42, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			if v.(int) != 42 {
				t.Errorf("v = %v", v)
			}
		}()
	}
	// Wait until all callers are either the filler or coalesced waiters,
	// then release the fill.
	for {
		s := c.Stats()
		if s.Misses+s.Coalesced == callers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	once.Do(func() { close(arrived) })
	wg.Wait()

	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != callers-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d coalesced", s, callers-1)
	}
}

// TestCacheErrorNotStored: a failed fill must not poison the cache; the
// next Do retries.
func TestCacheErrorNotStored(t *testing.T) {
	c := NewCache(0)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func(context.Context) (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.Do(ctx, "k", func(context.Context) (any, error) { return "ok", nil })
	if err != nil || hit || v.(string) != "ok" {
		t.Fatalf("retry = (%v, %v, %v)", v, hit, err)
	}
	s := c.Stats()
	if s.Errors != 1 || s.Misses != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestCacheCanceledWaiterFillSurvives: a requester that gives up waiting
// gets its context error, but the detached fill still completes and is
// stored for the next arrival.
func TestCacheCanceledWaiterFillSurvives(t *testing.T) {
	c := NewCache(0)
	release := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func(context.Context) (any, error) {
			<-release
			return "late", nil
		})
		done <- err
	}()
	// Let the fill start, abandon the wait, then release the fill.
	for c.Stats().Misses == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter err = %v", err)
	}
	close(release)

	// The fill was detached: it must land in the cache.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, ok := c.Get("k"); ok {
			if v.(string) != "late" {
				t.Fatalf("v = %v", v)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached fill never stored its value")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheConcurrentDistinctKeys: hammer the cache with overlapping keys
// under -race.
func TestCacheConcurrentDistinctKeys(t *testing.T) {
	c := NewCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				v, _, err := c.Do(context.Background(), key, func(context.Context) (any, error) {
					return key, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != key {
					t.Errorf("key %s got %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCacheTTLExpiry: entries older than the TTL are treated as absent
// — dropped on touch, counted as Expired, and re-filled.
func TestCacheTTLExpiry(t *testing.T) {
	c := NewCacheConfig(Config{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.SetNow(func() time.Time { return now })
	ctx := context.Background()

	fills := 0
	fill := func(context.Context) (any, error) { fills++; return fills, nil }

	if v, hit, _ := c.Do(ctx, "k", fill); hit || v.(int) != 1 {
		t.Fatalf("first Do = (%v, %v)", v, hit)
	}
	// Within the TTL: a hit.
	now = now.Add(30 * time.Second)
	if v, hit, _ := c.Do(ctx, "k", fill); !hit || v.(int) != 1 {
		t.Fatalf("warm Do = (%v, %v)", v, hit)
	}
	// Past the TTL: the entry expires and the fill re-runs.
	now = now.Add(2 * time.Minute)
	if v, hit, _ := c.Do(ctx, "k", fill); hit || v.(int) != 2 {
		t.Fatalf("expired Do = (%v, %v)", v, hit)
	}
	s := c.Stats()
	if s.Expired != 1 || s.Misses != 2 || s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TTL != time.Minute {
		t.Fatalf("stats TTL = %v", s.TTL)
	}

	// Get honors expiry too.
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get returned an expired entry")
	}
}

// TestCacheByteBudget: the byte budget evicts LRU entries by Size, and
// a single oversized entry is kept (dropping it would refill forever)
// while everything else yields.
func TestCacheByteBudget(t *testing.T) {
	c := NewCacheConfig(Config{
		MaxBytes: 100,
		Size:     func(v any) int64 { return v.(int64) },
	})
	ctx := context.Background()
	put := func(key string, size int64) {
		t.Helper()
		if _, _, err := c.Do(ctx, key, func(context.Context) (any, error) { return size, nil }); err != nil {
			t.Fatal(err)
		}
	}

	put("a", 40)
	put("b", 40)
	if s := c.Stats(); s.Bytes != 80 || s.Entries != 2 || s.MaxBytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
	// 40+40+40 > 100: the LRU entry "a" goes.
	put("c", 40)
	if _, ok := c.Get("a"); ok {
		t.Fatal("LRU entry survived the byte budget")
	}
	if s := c.Stats(); s.Bytes != 80 || s.Evictions != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// An oversized entry evicts everything else but is itself kept.
	put("huge", 500)
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 500 {
		t.Fatalf("stats after oversized = %+v", s)
	}
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry must be kept")
	}
}

// TestCacheEntryAndByteBoundsCompose: both bounds apply; whichever
// binds first evicts.
func TestCacheEntryAndByteBoundsCompose(t *testing.T) {
	c := NewCacheConfig(Config{
		MaxEntries: 2,
		MaxBytes:   1000,
		Size:       func(any) int64 { return 10 },
	})
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Do(ctx, k, func(context.Context) (any, error) { return 0, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.Entries != 2 || s.Evictions != 1 || s.Bytes != 20 {
		t.Fatalf("stats = %+v", s)
	}
}
