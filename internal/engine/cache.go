// Package engine holds the serving-side machinery behind fam.Engine: a
// bounded LRU cache with singleflight fill deduplication, hit/miss/
// in-flight statistics, and an eviction policy combining an entry cap, a
// byte budget, and a per-entry TTL. The public fam.Engine composes two of
// these caches — one for preprocessing artifacts (skyline indexes,
// sampled utility functions, materialized utility matrices), one for
// whole query results — over the shared worker pool of internal/par.
package engine

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that started a fill (each successful fill
	// stores exactly one entry, so Misses also counts fills begun).
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups that found a fill already in flight for
	// their key and waited for it instead of duplicating the work — the
	// singleflight savings.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped to keep the cache within its
	// entry cap or byte budget.
	Evictions uint64 `json:"evictions"`
	// Expired counts entries dropped because their TTL elapsed (a lookup
	// that finds an expired entry counts one Expired and one Miss).
	Expired uint64 `json:"expired"`
	// Errors counts fills that failed; failed fills are never stored.
	Errors uint64 `json:"errors"`
	// Entries and Capacity describe the current occupancy in entries
	// (Capacity 0 = unbounded).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
	// Bytes and MaxBytes describe the current occupancy against the byte
	// budget (both 0 when the cache is not byte-bounded or has no sizer).
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	// TTL is the per-entry lifetime (0 = entries never expire).
	TTL time.Duration `json:"ttl_ns"`
}

// Config parameterizes a Cache's bounds and eviction policy. The zero
// value is an unbounded, never-expiring cache.
type Config struct {
	// MaxEntries caps the number of stored entries (0 or negative =
	// unbounded).
	MaxEntries int
	// MaxBytes caps the summed Size of stored entries (0 or negative =
	// unbounded). It only binds when Size is non-nil.
	MaxBytes int64
	// TTL is the per-entry lifetime: a lookup after the entry's fill time
	// + TTL treats it as absent and re-fills (0 = never expire). Expiry
	// is lazy — entries are dropped when a lookup or a store touches
	// them, not by a background sweeper.
	TTL time.Duration
	// Size estimates the resident bytes of a value for the MaxBytes
	// budget. Nil disables byte accounting.
	Size func(val any) int64
}

// call is one in-flight fill that later arrivals for the same key wait
// on. waiters counts the coalesced arrivals, so the fill can report
// whether it served anyone beyond its own requester (the "shared" trace
// attribute).
type call struct {
	done    chan struct{}
	val     any
	err     error
	waiters atomic.Int32
}

// sharedKey carries the fill's *call through the detached fill context,
// letting Waiters read the coalesced-arrival count from inside the fill.
type sharedKey struct{}

// Waiters returns, from inside a fill function, how many coalesced
// arrivals are waiting on this fill beyond the requester that started
// it (0 outside a fill, and 0 when the fill served only its own
// requester). The count is read at call time: a tracer reads it at the
// end of the fill, when every waiter of the round has registered.
func Waiters(ctx context.Context) int {
	cl, _ := ctx.Value(sharedKey{}).(*call)
	if cl == nil {
		return 0
	}
	return int(cl.waiters.Load())
}

// Cache is a bounded LRU keyed by string with singleflight fill
// deduplication: concurrent Do calls for the same absent key run the
// fill once and share the outcome. All methods are safe for concurrent
// use.
type Cache struct {
	mu       sync.Mutex
	cfg      Config
	bytes    int64
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // value: *entry
	inflight map[string]*call
	stats    CacheStats
	now      func() time.Time // injectable for TTL tests
}

type entry struct {
	key     string
	val     any
	size    int64
	expires time.Time // zero = never
}

// NewCache returns a cache holding at most capacity entries (0 or
// negative = unbounded), with no byte budget and no TTL.
func NewCache(capacity int) *Cache {
	return NewCacheConfig(Config{MaxEntries: capacity})
}

// NewCacheConfig returns a cache with the full eviction policy.
func NewCacheConfig(cfg Config) *Cache {
	if cfg.MaxEntries < 0 {
		cfg.MaxEntries = 0 // unbounded
	}
	if cfg.MaxBytes < 0 {
		cfg.MaxBytes = 0 // unbounded
	}
	return &Cache{
		cfg:      cfg,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
		now:      time.Now,
	}
}

// lookup returns the live entry for key, dropping it first if expired.
// Caller holds c.mu.
func (c *Cache) lookup(key string) (*entry, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	en := el.Value.(*entry)
	if !en.expires.IsZero() && c.now().After(en.expires) {
		c.remove(el)
		c.stats.Expired++
		return nil, false
	}
	c.ll.MoveToFront(el)
	return en, true
}

// Do returns the cached value for key, filling it with fill on a miss.
// The fill runs detached from ctx (context.WithoutCancel): a canceled
// requester abandons its wait — Do returns ctx.Err() — but the fill
// completes and is stored for the next arrival, since cached artifacts
// are shared infrastructure, not per-request work. Concurrent Do calls
// for the same absent key coalesce onto one fill. hit reports whether
// the value came from the store (false for the filler and for
// coalesced waiters). Failed fills are not stored and their error goes
// to every coalesced waiter of that round.
func (c *Cache) Do(ctx context.Context, key string, fill func(ctx context.Context) (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if en, ok := c.lookup(key); ok {
		c.stats.Hits++
		v := en.val
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		cl.waiters.Add(1)
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, false, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		// WithoutCancel detaches the fill from the requester's lifetime but
		// keeps ctx values — trace spans and scheduling attributes flow into
		// the fill. The call handle rides along so the fill can ask Waiters
		// how many arrivals coalesced onto it.
		v, ferr := fill(context.WithValue(context.WithoutCancel(ctx), sharedKey{}, cl))
		cl.val, cl.err = v, ferr
		c.mu.Lock()
		delete(c.inflight, key)
		if ferr != nil {
			c.stats.Errors++
		} else {
			c.store(key, v)
		}
		c.mu.Unlock()
		close(cl.done)
	}()

	select {
	case <-cl.done:
		return cl.val, false, cl.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// store inserts under the lock and evicts the least recently used
// entries beyond the entry cap and the byte budget.
func (c *Cache) store(key string, val any) {
	var size int64
	if c.cfg.Size != nil {
		size = c.cfg.Size(val)
	}
	var expires time.Time
	if c.cfg.TTL > 0 {
		expires = c.now().Add(c.cfg.TTL)
	}
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*entry)
		c.bytes += size - en.size
		en.val, en.size, en.expires = val, size, expires
		c.ll.MoveToFront(el)
	} else {
		c.entries[key] = c.ll.PushFront(&entry{key: key, val: val, size: size, expires: expires})
		c.bytes += size
	}
	over := func() bool {
		if c.cfg.MaxEntries > 0 && c.ll.Len() > c.cfg.MaxEntries {
			return true
		}
		return c.cfg.MaxBytes > 0 && c.cfg.Size != nil && c.bytes > c.cfg.MaxBytes && c.ll.Len() > 1
	}
	for over() {
		c.remove(c.ll.Back())
		c.stats.Evictions++
	}
}

// remove drops one element. Caller holds c.mu.
func (c *Cache) remove(el *list.Element) {
	en := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.entries, en.key)
	c.bytes -= en.size
}

// Get returns the cached value without filling (and without disturbing
// the stats beyond a hit), primarily for tests.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	en, ok := c.lookup(key)
	if !ok {
		return nil, false
	}
	c.stats.Hits++
	return en.val, true
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.cfg.MaxEntries
	s.Bytes = c.bytes
	s.MaxBytes = c.cfg.MaxBytes
	s.TTL = c.cfg.TTL
	return s
}

// SetNow overrides the cache's clock; tests use it to drive TTL expiry
// deterministically.
func (c *Cache) SetNow(now func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = now
}
