// Package engine holds the serving-side machinery behind fam.Engine: a
// bounded LRU cache with singleflight fill deduplication and hit/miss/
// in-flight statistics. The public fam.Engine composes two of these
// caches — one for preprocessing artifacts (skyline indexes, sampled
// utility functions, materialized utility matrices), one for whole query
// results — over the shared worker pool of internal/par.
package engine

import (
	"container/list"
	"context"
	"sync"
)

// CacheStats is a point-in-time snapshot of a cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from a stored entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that started a fill (each successful fill
	// stores exactly one entry, so Misses also counts fills begun).
	Misses uint64 `json:"misses"`
	// Coalesced counts lookups that found a fill already in flight for
	// their key and waited for it instead of duplicating the work — the
	// singleflight savings.
	Coalesced uint64 `json:"coalesced"`
	// Evictions counts entries dropped to keep the cache within
	// capacity.
	Evictions uint64 `json:"evictions"`
	// Errors counts fills that failed; failed fills are never stored.
	Errors uint64 `json:"errors"`
	// Entries and Capacity describe the current occupancy (Capacity 0 =
	// unbounded).
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// call is one in-flight fill that later arrivals for the same key wait
// on.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a bounded LRU keyed by string with singleflight fill
// deduplication: concurrent Do calls for the same absent key run the
// fill once and share the outcome. All methods are safe for concurrent
// use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	entries  map[string]*list.Element // value: *entry
	inflight map[string]*call
	stats    CacheStats
}

type entry struct {
	key string
	val any
}

// NewCache returns a cache holding at most capacity entries (0 or
// negative = unbounded).
func NewCache(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Do returns the cached value for key, filling it with fill on a miss.
// The fill runs detached from ctx (context.WithoutCancel): a canceled
// requester abandons its wait — Do returns ctx.Err() — but the fill
// completes and is stored for the next arrival, since cached artifacts
// are shared infrastructure, not per-request work. Concurrent Do calls
// for the same absent key coalesce onto one fill. hit reports whether
// the value came from the store (false for the filler and for
// coalesced waiters). Failed fills are not stored and their error goes
// to every coalesced waiter of that round.
func (c *Cache) Do(ctx context.Context, key string, fill func(ctx context.Context) (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*entry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		select {
		case <-cl.done:
			return cl.val, false, cl.err
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.stats.Misses++
	c.mu.Unlock()

	go func() {
		v, ferr := fill(context.WithoutCancel(ctx))
		cl.val, cl.err = v, ferr
		c.mu.Lock()
		delete(c.inflight, key)
		if ferr != nil {
			c.stats.Errors++
		} else {
			c.store(key, v)
		}
		c.mu.Unlock()
		close(cl.done)
	}()

	select {
	case <-cl.done:
		return cl.val, false, cl.err
	case <-ctx.Done():
		return nil, false, ctx.Err()
	}
}

// store inserts under the lock and evicts the least recently used
// entries beyond capacity.
func (c *Cache) store(key string, val any) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.capacity > 0 && c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry).key)
		c.stats.Evictions++
	}
}

// Get returns the cached value without filling (and without disturbing
// the stats beyond a hit), primarily for tests.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*entry).val, true
}

// Len returns the number of stored entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.capacity
	return s
}
