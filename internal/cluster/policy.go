package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// RouteKey is what a policy routes on: the raw group key the router
// derives from request fields (the best pre-normalization guess at
// the query's preprocessing identity) and the dataset name alone for
// coarse consistent-hash placement.
type RouteKey struct {
	// GroupKey fingerprints the request fields that determine the
	// preprocessing instance: dataset, skyline toggle, seed, sample
	// size (or the ε/σ pair that derives it). Two requests with equal
	// GroupKeys share an instance; unequal GroupKeys may still
	// normalize to the same instance — the learned affinity map
	// closes that gap.
	GroupKey string
	// Dataset is the dataset name, the consistent-hash placement key.
	Dataset string
}

// Policy picks the replica for one routing decision. Candidates are
// the currently routable replicas in registration order, never empty.
// The reason labels the decision in famrouter_route_decisions_total —
// policies reuse the same vocabulary ("affinity", "ring",
// "least-loaded", ...) so dashboards can tell a learned-map hit from
// a cold placement from a fallback.
type Policy interface {
	Name() string
	Pick(key RouteKey, candidates []*Replica) (*Replica, string)
}

// Learner is implemented by policies that learn from served
// responses. The router calls Learn with the real normalized instance
// key echoed on X-Fam-Instance-Key and the replica that served it.
type Learner interface {
	Learn(key RouteKey, instanceKey string, served *Replica)
}

// RoundRobin cycles candidates in order, ignoring load and affinity —
// the control-group policy: it provably spreads identical queries
// across replicas, which is exactly what makes it the baseline the
// affinity integration test compares against.
type RoundRobin struct {
	next atomic.Uint64
}

func (p *RoundRobin) Name() string { return "round-robin" }

func (p *RoundRobin) Pick(_ RouteKey, candidates []*Replica) (*Replica, string) {
	return candidates[(p.next.Add(1)-1)%uint64(len(candidates))], "round-robin"
}

// LeastLoaded picks the replica with the lowest live load: the
// router's own in-flight count plus the queue depth from the last
// health check. Ties break toward the earlier replica, which keeps
// single-stream traffic on one warm replica instead of striping it.
type LeastLoaded struct{}

func (LeastLoaded) Name() string { return "least-loaded" }

func (LeastLoaded) Pick(_ RouteKey, candidates []*Replica) (*Replica, string) {
	return minBy(candidates, loadScore), "least-loaded"
}

// loadScore is the live queue pressure of one replica.
func loadScore(r *Replica) float64 {
	score := float64(r.Inflight())
	if h := r.Health(); h != nil {
		score += float64(h.QueueDepth)
	}
	return score
}

// WeightedScore blends the health signals into one score: live load,
// a strong penalty for a shedding replica, and a bonus for a warm
// result cache. Lowest score wins.
type WeightedScore struct{}

func (WeightedScore) Name() string { return "weighted" }

func (WeightedScore) Pick(_ RouteKey, candidates []*Replica) (*Replica, string) {
	return minBy(candidates, func(r *Replica) float64 {
		score := loadScore(r)
		if h := r.Health(); h != nil {
			// A replica shedding 100% of its window scores as 20 extra
			// queued requests; a fully warm result cache forgives 2.
			score += 20*h.ShedRate - 2*h.ResultHitRate
		}
		return score
	}), "weighted"
}

// minBy returns the candidate with the lowest score, first wins ties.
func minBy(candidates []*Replica, score func(*Replica) float64) *Replica {
	best, bestScore := candidates[0], score(candidates[0])
	for _, r := range candidates[1:] {
		if s := score(r); s < bestScore {
			best, bestScore = r, s
		}
	}
	return best
}

// Affinity routes each preprocessing instance to one owner replica so
// its prep and result caches fill exactly once cluster-wide.
//
// Placement is layered. The learned map is consulted first: raw group
// key → normalized instance key (taught by X-Fam-Instance-Key echoes)
// → the replica that last served that instance. A miss falls back to
// consistent hashing over the dataset name — deterministic, so even
// a cold router sends a dataset's queries to one replica. Either way,
// an owner that is down or shedding is abandoned for the least-loaded
// candidate; the learned map self-heals because the fallback replica
// becomes the new owner the moment it serves the instance.
type Affinity struct {
	// ShedCooldown is how long one observed 429/503 keeps routing
	// away from an owner. Default 2s.
	ShedCooldown time.Duration
	// ShedThreshold is the health-check shed rate above which an
	// owner counts as shedding. Default 0.5.
	ShedThreshold float64

	ring     *ring
	fallback LeastLoaded
	clock    func() time.Time

	mu     sync.Mutex
	groups map[string]string   // raw group key → normalized instance key
	owners map[string]*Replica // instance key → last replica to serve it
}

// NewAffinity builds the affinity policy over the full membership.
func NewAffinity(replicas []*Replica) *Affinity {
	return &Affinity{
		ShedCooldown:  2 * time.Second,
		ShedThreshold: 0.5,
		ring:          newRing(replicas),
		clock:         time.Now,
		groups:        make(map[string]string),
		owners:        make(map[string]*Replica),
	}
}

func (p *Affinity) Name() string { return "affinity" }

func (p *Affinity) Pick(key RouteKey, candidates []*Replica) (*Replica, string) {
	if owner := p.learnedOwner(key.GroupKey); owner != nil {
		if owner.Up() && !owner.Shedding(p.clock(), p.ShedCooldown, p.ShedThreshold) {
			return owner, "affinity"
		}
		r, _ := p.fallback.Pick(key, candidates)
		return r, "affinity-fallback"
	}
	if owner := p.ring.owner(key.Dataset); owner != nil {
		if !owner.Shedding(p.clock(), p.ShedCooldown, p.ShedThreshold) {
			return owner, "ring"
		}
		r, _ := p.fallback.Pick(key, candidates)
		return r, "ring-fallback"
	}
	r, _ := p.fallback.Pick(key, candidates)
	return r, "least-loaded"
}

// learnedOwner resolves group key → instance key → owner, nil on any
// gap in the chain.
func (p *Affinity) learnedOwner(groupKey string) *Replica {
	p.mu.Lock()
	defer p.mu.Unlock()
	inst, ok := p.groups[groupKey]
	if !ok {
		return nil
	}
	return p.owners[inst]
}

// Learn records that served answered instanceKey for this group key.
// Ownership follows the latest server, so a fallback replica that
// absorbed an owner's traffic keeps it — its caches are the warm ones
// now — instead of traffic snapping back to a cold owner.
func (p *Affinity) Learn(key RouteKey, instanceKey string, served *Replica) {
	if instanceKey == "" || served == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.groups[key.GroupKey] = instanceKey
	p.owners[instanceKey] = served
}

// NewPolicy resolves a policy by flag name over the registry's
// membership.
func NewPolicy(name string, reg *Registry) (Policy, error) {
	switch name {
	case "round-robin":
		return &RoundRobin{}, nil
	case "least-loaded":
		return LeastLoaded{}, nil
	case "weighted":
		return WeightedScore{}, nil
	case "affinity":
		return NewAffinity(reg.Replicas()), nil
	}
	return nil, fmt.Errorf("cluster: unknown policy %q (want round-robin, least-loaded, weighted, or affinity)", name)
}
