package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/obs"
	"github.com/regretlab/fam/serve"
)

// testCluster is N real famserve replicas (engine + serve handler
// over httptest) behind one registry, all marked routable.
type testCluster struct {
	engines  []*fam.Engine
	servers  []*httptest.Server
	registry *Registry
}

func startCluster(t *testing.T, n int, wrap func(i int, h http.Handler) http.Handler) *testCluster {
	t.Helper()
	tc := &testCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		engine := fam.NewEngine(fam.EngineConfig{})
		t.Cleanup(engine.Close)
		for _, name := range []string{"hotels", "cabins"} {
			ds, err := fam.Hotels(120, 3)
			if err != nil {
				t.Fatal(err)
			}
			dist, err := fam.UniformLinear(ds.Dim())
			if err != nil {
				t.Fatal(err)
			}
			if err := engine.Register(name, ds, dist); err != nil {
				t.Fatal(err)
			}
		}
		var h http.Handler = serve.NewHandler(engine)
		if wrap != nil {
			h = wrap(i, h)
		}
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		tc.engines = append(tc.engines, engine)
		tc.servers = append(tc.servers, srv)
		urls[i] = srv.URL
	}
	reg, err := NewRegistry(urls)
	if err != nil {
		t.Fatal(err)
	}
	hc := NewHealthChecker(reg, nil)
	hc.FailThreshold = 1
	hc.CheckOnce(context.Background())
	for _, r := range reg.Replicas() {
		if !r.Up() {
			t.Fatalf("replica %s not up after initial check", r.Name)
		}
	}
	tc.registry = reg
	return tc
}

func startRouter(t *testing.T, tc *testCluster, cfg RouterConfig) (*httptest.Server, *Router) {
	t.Helper()
	rt := NewRouter(tc.registry, cfg)
	srv := httptest.NewServer(rt)
	t.Cleanup(srv.Close)
	return srv, rt
}

func postJSON(t *testing.T, url string, body any, out any) (int, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(payload, out); err != nil {
			t.Fatalf("decoding %s response %q: %v", url, payload, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// prepFillReplicas counts replicas whose prep cache took at least one
// fill — the cluster-wide cold-preprocessing cost.
func prepFillReplicas(tc *testCluster) int {
	n := 0
	for _, e := range tc.engines {
		if e.Stats().PrepCache.Misses > 0 {
			n++
		}
	}
	return n
}

var selectBody = map[string]any{"dataset": "hotels", "k": 5, "seed": 7, "sample_size": 120}

// TestRouterAffinityWarmsCluster is the tentpole acceptance test:
// repeated identical queries through the affinity policy land on one
// replica, so the cluster pays exactly one prep fill and the second
// query is a result-cache hit — served through the router.
func TestRouterAffinityWarmsCluster(t *testing.T) {
	tc := startCluster(t, 3, nil)
	srv, _ := startRouter(t, tc, RouterConfig{})

	var first serve.SelectResponse
	if code, _ := postJSON(t, srv.URL+"/v1/select", selectBody, &first); code != http.StatusOK {
		t.Fatalf("first select status %d", code)
	}
	if first.Cached {
		t.Fatal("first select reported cached")
	}
	for i := 0; i < 3; i++ {
		var resp serve.SelectResponse
		code, hdr := postJSON(t, srv.URL+"/v1/select", selectBody, &resp)
		if code != http.StatusOK {
			t.Fatalf("repeat %d status %d", i, code)
		}
		if !resp.Cached {
			t.Fatalf("repeat %d not served from cache: affinity failed to pin the instance", i)
		}
		if hdr.Get(serve.HeaderInstanceKey) == "" {
			t.Fatalf("repeat %d missing %s header", i, serve.HeaderInstanceKey)
		}
	}
	if got := prepFillReplicas(tc); got != 1 {
		t.Fatalf("prep fills on %d replicas, want exactly 1", got)
	}
}

// TestRouterRoundRobinSpreadsFills proves the affinity result is the
// policy's doing, not luck: the same workload under round-robin pays
// the prep fill on at least two replicas.
func TestRouterRoundRobinSpreadsFills(t *testing.T) {
	tc := startCluster(t, 3, nil)
	srv, _ := startRouter(t, tc, RouterConfig{Policy: &RoundRobin{}})

	for i := 0; i < 3; i++ {
		var resp serve.SelectResponse
		if code, _ := postJSON(t, srv.URL+"/v1/select", selectBody, &resp); code != http.StatusOK {
			t.Fatalf("select %d status %d", i, code)
		}
	}
	if got := prepFillReplicas(tc); got < 2 {
		t.Fatalf("prep fills on %d replicas under round-robin, want >= 2", got)
	}
}

// TestRouterFailover kills the replica that owns the warm instance
// mid-stream: the router passively marks it down on the transport
// error, retries the request on a survivor, and keeps answering 200 —
// no 502 storm — while /metrics records the transition.
func TestRouterFailover(t *testing.T) {
	tc := startCluster(t, 3, nil)
	srv, _ := startRouter(t, tc, RouterConfig{})

	if code, _ := postJSON(t, srv.URL+"/v1/select", selectBody, nil); code != http.StatusOK {
		t.Fatalf("warm select status %d", code)
	}
	owner := -1
	for i, e := range tc.engines {
		if e.Stats().Selects > 0 {
			owner = i
		}
	}
	if owner < 0 {
		t.Fatal("no replica served the warm select")
	}
	tc.servers[owner].CloseClientConnections()
	tc.servers[owner].Close()

	for i := 0; i < 5; i++ {
		if code, _ := postJSON(t, srv.URL+"/v1/select", selectBody, nil); code != http.StatusOK {
			t.Fatalf("post-kill select %d status %d", i, code)
		}
	}
	dead := tc.registry.Replicas()[owner]
	if dead.Up() {
		t.Fatal("killed replica still marked up")
	}

	metrics := scrapeMetrics(t, srv.URL)
	if !strings.Contains(metrics, fmt.Sprintf("famrouter_replica_transitions_total{replica=%q} 2", dead.Name)) {
		t.Fatalf("metrics missing down transition for %s:\n%s", dead.Name, metrics)
	}
	if !strings.Contains(metrics, "famrouter_replicas_up 2") {
		t.Fatal("metrics do not show 2 replicas up")
	}
	if !strings.Contains(metrics, "famrouter_retries_total 1") {
		t.Fatal("metrics do not show the failover retry")
	}
}

func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	return string(body)
}

// TestRouterScatterGather drives a mixed batch through the router:
// members split into per-instance sub-batches across replicas, slots
// reassemble in request order, and a bad member degrades to its own
// error slot without touching the others.
func TestRouterScatterGather(t *testing.T) {
	tc := startCluster(t, 2, nil)
	srv, _ := startRouter(t, tc, RouterConfig{})

	batch := map[string]any{"queries": []map[string]any{
		{"dataset": "hotels", "k": 3, "seed": 7},
		{"dataset": "cabins", "k": 4, "seed": 7},
		{"dataset": "hotels", "k": 5, "seed": 7},
		{"dataset": "missing", "k": 2, "seed": 7},
	}}
	var resp serve.BatchSelectResponse
	if code, _ := postJSON(t, srv.URL+"/v2/select", batch, &resp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("got %d slots, want 4", len(resp.Results))
	}
	wantDatasets := []string{"hotels", "cabins", "hotels"}
	for i, want := range wantDatasets {
		slot := resp.Results[i]
		if slot.Error != "" || slot.SelectResponse == nil {
			t.Fatalf("slot %d failed: %+v", i, slot)
		}
		if slot.Dataset != want || slot.K != batch["queries"].([]map[string]any)[i]["k"] {
			t.Fatalf("slot %d = dataset %q k %d, want %q (order not preserved)", i, slot.Dataset, slot.K, want)
		}
	}
	if bad := resp.Results[3]; bad.Error == "" || bad.Status != http.StatusNotFound {
		t.Fatalf("bad-dataset slot = %+v, want a 404 error slot", bad)
	}

	metrics := scrapeMetrics(t, srv.URL)
	if !strings.Contains(metrics, "famrouter_scatter_batches_total 1") {
		t.Fatal("metrics missing scatter batch count")
	}
	if !strings.Contains(metrics, "famrouter_scatter_subrequests_total 3") {
		t.Fatalf("metrics missing the 3 scatter sub-requests:\n%s", metrics)
	}
}

// TestRouterScatterAffinityGroups runs the same instance group twice
// through scatter-gather: the second batch must hit the result cache
// of whichever replica served the first, proving learned affinity
// covers the batch path too.
func TestRouterScatterAffinityGroups(t *testing.T) {
	tc := startCluster(t, 3, nil)
	srv, _ := startRouter(t, tc, RouterConfig{})

	batch := map[string]any{"queries": []map[string]any{
		{"dataset": "hotels", "k": 3, "seed": 7},
		{"dataset": "hotels", "k": 4, "seed": 7},
	}}
	for round := 0; round < 2; round++ {
		var resp serve.BatchSelectResponse
		if code, _ := postJSON(t, srv.URL+"/v2/select", batch, &resp); code != http.StatusOK {
			t.Fatalf("round %d status %d", round, code)
		}
		if round == 1 {
			for i, slot := range resp.Results {
				if slot.SelectResponse == nil || !slot.Cached {
					t.Fatalf("round 2 slot %d not cached: %+v", i, slot)
				}
			}
		}
	}
	if got := prepFillReplicas(tc); got != 1 {
		t.Fatalf("prep fills on %d replicas, want exactly 1", got)
	}
}

// TestRouterTraceparentPropagation covers the satellite contract: a
// traced request through the router reaches the replica under the
// same trace ID (the router's forward span as parent), and a
// malformed inbound traceparent is ignored at both hops.
func TestRouterTraceparentPropagation(t *testing.T) {
	var mu sync.Mutex
	received := map[int][]string{} // replica index → inbound traceparent headers
	adopted := map[int][]string{}  // replica index → trace IDs the replica armed
	tc := startCluster(t, 2, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			received[i] = append(received[i], r.Header.Get(serve.HeaderTraceparent))
			mu.Unlock()
			h.ServeHTTP(w, r)
			mu.Lock()
			adopted[i] = append(adopted[i], w.Header().Get(serve.HeaderTrace))
			mu.Unlock()
		})
	})
	srv, _ := startRouter(t, tc, RouterConfig{})

	traceID := strings.Repeat("ab", 16)
	buf, _ := json.Marshal(selectBody)
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/select", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(serve.HeaderTrace, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced select status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(serve.HeaderTrace); got != traceID {
		t.Fatalf("router echoed trace ID %q, want %q", got, traceID)
	}
	routerTrace, routerSpan, ok := obs.ParseTraceparent(resp.Header.Get(serve.HeaderTraceparent))
	if !ok || routerTrace != traceID {
		t.Fatalf("router traceparent %q does not carry trace %s", resp.Header.Get(serve.HeaderTraceparent), traceID)
	}
	mu.Lock()
	var gotParent, gotAdopted string
	for _, hs := range received {
		for _, h := range hs {
			if h != "" {
				gotParent = h
			}
		}
	}
	for _, ids := range adopted {
		for _, id := range ids {
			if id != "" {
				gotAdopted = id
			}
		}
	}
	mu.Unlock()
	repTrace, repSpan, ok := obs.ParseTraceparent(gotParent)
	if !ok {
		t.Fatalf("replica received unparseable traceparent %q", gotParent)
	}
	if repTrace != traceID {
		t.Fatalf("replica trace ID %s, want %s: router and replica spans are in different traces", repTrace, traceID)
	}
	if repSpan == routerSpan {
		t.Fatal("replica's remote parent is the router root span; want the forward child span")
	}
	if gotAdopted != traceID {
		t.Fatalf("replica armed trace %q, want %s", gotAdopted, traceID)
	}

	// Malformed inbound traceparent: not armed, forwarded verbatim,
	// ignored at both hops — the request still succeeds untraced.
	for k := range received {
		delete(received, k)
	}
	req2, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/select", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	req2.Header.Set(serve.HeaderTraceparent, "garbage-not-a-traceparent")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("malformed-trace select status %d", resp2.StatusCode)
	}
	if got := resp2.Header.Get(serve.HeaderTrace); got != "" {
		t.Fatalf("malformed traceparent armed a trace (%q) at some hop", got)
	}
	mu.Lock()
	var forwarded []string
	for _, hs := range received {
		forwarded = append(forwarded, hs...)
	}
	mu.Unlock()
	if len(forwarded) != 1 || forwarded[0] != "garbage-not-a-traceparent" {
		t.Fatalf("malformed traceparent not forwarded verbatim: %q", forwarded)
	}
}

// TestRouterBroadcastUpload sends a CSV upload through the router and
// expects every replica to accept the dataset.
func TestRouterBroadcastUpload(t *testing.T) {
	tc := startCluster(t, 3, nil)
	srv, _ := startRouter(t, tc, RouterConfig{})

	csv := "a,b\n1,2\n3,4\n5,6\n"
	resp, err := http.Post(srv.URL+"/v1/datasets?name=mine", "text/csv", strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	for i, e := range tc.engines {
		if e.Stats().Datasets != 3 {
			t.Fatalf("replica %d has %d datasets, want 3 (broadcast missed it)", i, e.Stats().Datasets)
		}
	}
}

// TestRegistryValidation pins the registry's URL hygiene.
func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(nil); err == nil {
		t.Fatal("empty registry accepted")
	}
	if _, err := NewRegistry([]string{"not a url"}); err == nil {
		t.Fatal("relative URL accepted")
	}
	if _, err := NewRegistry([]string{"http://a:1", "http://a:1"}); err == nil {
		t.Fatal("duplicate replica accepted")
	}
}

// TestRingStability pins consistent hashing: the owner of a key is
// stable, skips down replicas, and returns when they recover.
func TestRingStability(t *testing.T) {
	reps := []*Replica{{Name: "a"}, {Name: "b"}, {Name: "c"}}
	for _, r := range reps {
		r.setUp(true)
	}
	rg := newRing(reps)
	owner := rg.owner("hotels")
	if owner == nil {
		t.Fatal("no owner for hotels")
	}
	for i := 0; i < 10; i++ {
		if got := rg.owner("hotels"); got != owner {
			t.Fatal("owner not stable across lookups")
		}
	}
	owner.setUp(false)
	fallback := rg.owner("hotels")
	if fallback == nil || fallback == owner {
		t.Fatalf("down owner still returned")
	}
	owner.setUp(true)
	if got := rg.owner("hotels"); got != owner {
		t.Fatal("recovered owner did not reclaim its arc")
	}
	for _, r := range reps {
		r.setUp(false)
	}
	if got := rg.owner("hotels"); got != nil {
		t.Fatalf("all-down ring returned %v", got.Name)
	}
}

// TestAffinityShedFallback pins the backpressure rule: a learned
// owner that recently shed is bypassed for the least-loaded replica,
// and ownership follows whoever actually serves the instance.
func TestAffinityShedFallback(t *testing.T) {
	reps := []*Replica{{Name: "a"}, {Name: "b"}}
	for _, r := range reps {
		r.setUp(true)
	}
	p := NewAffinity(reps)
	key := RouteKey{GroupKey: "g1", Dataset: "hotels"}
	p.Learn(key, "inst1", reps[0])
	if got, reason := p.Pick(key, reps); got != reps[0] || reason != "affinity" {
		t.Fatalf("learned owner not used: %s (%s)", got.Name, reason)
	}
	reps[0].noteShed(p.clock())
	reps[0].inflight.Add(5)
	got, reason := p.Pick(key, reps)
	if got != reps[1] || reason != "affinity-fallback" {
		t.Fatalf("shedding owner not bypassed: %s (%s)", got.Name, reason)
	}
	p.Learn(key, "inst1", reps[1])
	reps[0].lastShed.Store(0)
	if got, _ := p.Pick(key, reps); got != reps[1] {
		t.Fatal("ownership did not follow the serving replica")
	}
}

// TestRouterNoReplicas pins the empty-cluster answer: 502 with the
// v2 error envelope, not a panic or a hang.
func TestRouterNoReplicas(t *testing.T) {
	reg, err := NewRegistry([]string{"http://127.0.0.1:1"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewRouter(reg, RouterConfig{}))
	defer srv.Close()
	var env serve.ErrorV2
	code, _ := postJSON(t, srv.URL+"/v1/select", selectBody, &env)
	if code != http.StatusBadGateway || env.Code != serve.CodeUnavailable {
		t.Fatalf("empty-cluster select = %d %+v", code, env)
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router healthz with no up replicas = %d, want 503", resp.StatusCode)
	}
}
