package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/regretlab/fam/internal/obs"
	"github.com/regretlab/fam/serve"
)

// maxBodyBytes bounds one routed request or upstream response body.
// Uploads are the big case; 64 MiB matches a generous CSV dataset.
const maxBodyBytes = 64 << 20

// Router is the HTTP front end over the replica set. It terminates
// the same API surface famserve exposes — /v1/select, /v1/evaluate,
// /v2/select, datasets, stats — and forwards each request to a
// replica chosen by the routing policy, retrying transport failures
// against the remaining replicas (queries are idempotent). v2 batches
// take the scatter-gather path: members group by instance key, each
// group goes to its affine replica as one sub-batch, and the slots
// reassemble in request order.
type Router struct {
	reg     *Registry
	policy  Policy
	learner Learner // policy's Learn hook, nil when it has none
	client  *http.Client
	log     *slog.Logger
	clock   func() time.Time
	start   time.Time
	retries int
	mux     *http.ServeMux
	metrics *routerMetrics
}

// RouterConfig carries the router's knobs; zero values take defaults.
type RouterConfig struct {
	// Policy picks replicas. Default: affinity over the registry.
	Policy Policy
	// Retries is how many additional replicas a request may try after
	// a transport failure. 0 takes the default of 1; negative keeps
	// passive mark-down but fails the request on the first dead
	// replica.
	Retries int
	// Client issues the forwarded requests. Default http.DefaultClient.
	Client *http.Client
	// Log receives routing warnings. Nil discards them.
	Log *slog.Logger
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// NewRouter builds the routing handler over a registry.
func NewRouter(reg *Registry, cfg RouterConfig) *Router {
	if cfg.Policy == nil {
		cfg.Policy = NewAffinity(reg.Replicas())
	}
	if cfg.Retries == 0 {
		cfg.Retries = 1
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	rt := &Router{
		reg:     reg,
		policy:  cfg.Policy,
		client:  cfg.Client,
		log:     cfg.Log,
		clock:   cfg.Clock,
		start:   cfg.Clock(),
		retries: cfg.Retries,
		mux:     http.NewServeMux(),
		metrics: newRouterMetrics(),
	}
	rt.learner, _ = cfg.Policy.(Learner)
	rt.mux.HandleFunc("POST /v1/select", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/evaluate", rt.handleQuery)
	rt.mux.HandleFunc("POST /v2/select", rt.handleScatter)
	rt.mux.HandleFunc("GET /v1/datasets", rt.handleAny)
	rt.mux.HandleFunc("GET /v2/datasets", rt.handleAny)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleAny)
	rt.mux.HandleFunc("GET /v2/stats", rt.handleAny)
	rt.mux.HandleFunc("POST /v1/datasets", rt.handleBroadcast)
	rt.mux.HandleFunc("POST /v2/datasets", rt.handleBroadcast)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return rt
}

// Policy returns the active routing policy.
func (rt *Router) Policy() Policy { return rt.policy }

// ServeHTTP is the router's observability middleware: it arms a trace
// when the client asked for one (so router and replica spans share a
// trace ID), records per-endpoint metrics, and dispatches.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	_, pattern := rt.mux.Handler(r)
	if pattern == "" {
		pattern = "(unmatched)"
	}
	ctx := r.Context()
	if traceID, remoteSpan, armed := inboundTrace(r); armed {
		col := obs.NewCollector(traceID)
		if remoteSpan != "" {
			col.SetRemoteParent(remoteSpan)
		}
		ctx = obs.NewCollectorContext(ctx, col)
		var root *obs.Span
		ctx, root = obs.Start(ctx, "router "+pattern)
		defer root.End()
		w.Header().Set(serve.HeaderTrace, col.TraceID())
		w.Header().Set(serve.HeaderTraceparent, obs.FormatTraceparent(col.TraceID(), root.SpanID))
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	begin := rt.clock()
	rt.mux.ServeHTTP(rec, r.WithContext(ctx))
	rt.metrics.record(pattern, rec.status, rt.clock().Sub(begin).Seconds())
}

// inboundTrace mirrors the replica's header contract: X-Fam-Trace
// wins the trace ID, a malformed traceparent is ignored rather than
// failing the request.
func inboundTrace(r *http.Request) (traceID, remoteSpan string, armed bool) {
	if v := r.Header.Get(serve.HeaderTraceparent); v != "" {
		if t, s, ok := obs.ParseTraceparent(v); ok {
			traceID, remoteSpan, armed = t, s, true
		}
	}
	if v := r.Header.Get(serve.HeaderTrace); v != "" {
		armed = true
		if obs.ValidTraceID(v) {
			traceID = v
		}
	}
	return traceID, remoteSpan, armed
}

// routeFields are the request-body fields that determine a query's
// preprocessing instance — the router's routing key, decoded
// tolerantly (unknown fields ignored, missing fields zero).
type routeFields struct {
	Dataset        string  `json:"dataset"`
	Seed           uint64  `json:"seed"`
	Epsilon        float64 `json:"epsilon"`
	Sigma          float64 `json:"sigma"`
	SampleSize     int     `json:"sample_size"`
	DisableSkyline bool    `json:"disable_skyline"`
}

// routeKey renders the raw group key. Two requests with equal keys
// share a preprocessing instance; the learned affinity map handles
// distinct keys that normalize to the same instance (e.g. an explicit
// sample_size equal to the ε/σ-derived default).
func (f routeFields) routeKey() RouteKey {
	return RouteKey{
		GroupKey: fmt.Sprintf("%s|sky=%t|seed=%d|eps=%g|sig=%g|N=%d",
			f.Dataset, !f.DisableSkyline, f.Seed, f.Epsilon, f.Sigma, f.SampleSize),
		Dataset: f.Dataset,
	}
}

// handleQuery proxies one single-query request (v1 select/evaluate)
// to the policy-chosen replica.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	var fields routeFields
	_ = json.Unmarshal(body, &fields) // a bad body routes anywhere; the replica rejects it
	resp, respBody, replica, err := rt.dispatch(r, fields.routeKey(), body)
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, err)
		return
	}
	if rt.learner != nil && resp.StatusCode == http.StatusOK {
		if key := resp.Header.Get(serve.HeaderInstanceKey); key != "" {
			rt.learner.Learn(fields.routeKey(), firstKey(key), replica)
		}
	}
	rt.relay(w, resp, respBody)
}

// handleAny proxies a read-only endpoint (datasets, stats) to any
// routable replica.
func (rt *Router) handleAny(w http.ResponseWriter, r *http.Request) {
	resp, respBody, _, err := rt.dispatch(r, RouteKey{}, nil)
	if err != nil {
		rt.writeError(w, http.StatusBadGateway, err)
		return
	}
	rt.relay(w, resp, respBody)
}

// handleBroadcast fans a dataset upload out to every routable
// replica: affinity only pays off when the affine replica actually
// has the dataset, so uploads must land everywhere. The upload
// succeeds only if every routable replica accepted it; on a partial
// failure the response names the failed replicas and the caller
// re-uploads (the operation is idempotent — a replica that already
// has the dataset answers 409, which the router treats as success).
func (rt *Router) handleBroadcast(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("reading request: %w", err))
		return
	}
	replicas := rt.reg.UpReplicas()
	if len(replicas) == 0 {
		rt.writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no routable replicas"))
		return
	}
	type answer struct {
		replica *Replica
		resp    *http.Response
		body    []byte
		err     error
	}
	answers := make([]answer, len(replicas))
	var wg sync.WaitGroup
	for i, rep := range replicas {
		wg.Add(1)
		go func(i int, rep *Replica) {
			defer wg.Done()
			resp, respBody, err := rt.forward(r.Context(), rep, r, body)
			answers[i] = answer{replica: rep, resp: resp, body: respBody, err: err}
		}(i, rep)
	}
	wg.Wait()
	var failed []string
	var success *answer
	for i := range answers {
		a := &answers[i]
		switch {
		case a.err != nil:
			failed = append(failed, fmt.Sprintf("%s: %v", a.replica.Name, a.err))
		case a.resp.StatusCode < 300 || a.resp.StatusCode == http.StatusConflict:
			if success == nil || a.resp.StatusCode < 300 {
				success = a
			}
		default:
			failed = append(failed, fmt.Sprintf("%s: status %d", a.replica.Name, a.resp.StatusCode))
		}
	}
	if len(failed) > 0 {
		rt.writeError(w, http.StatusBadGateway,
			fmt.Errorf("upload incomplete, re-upload to converge: %s", strings.Join(failed, "; ")))
		return
	}
	rt.relay(w, success.resp, success.body)
}

// dispatch picks a replica for the request and forwards it, retrying
// transport failures against replicas not yet tried. A replica that
// fails at the transport layer is passively marked down on the spot —
// a crashed process stops receiving traffic immediately instead of
// waiting out the health checker's fail threshold.
func (rt *Router) dispatch(r *http.Request, key RouteKey, body []byte) (*http.Response, []byte, *Replica, error) {
	tried := make(map[*Replica]bool)
	var lastErr error
	for attempt := 0; attempt <= rt.retries; attempt++ {
		candidates := rt.untried(tried)
		if len(candidates) == 0 {
			break
		}
		pickStart := rt.clock()
		replica, reason := rt.policy.Pick(key, candidates)
		rt.metrics.decision(reason, rt.clock().Sub(pickStart).Seconds())
		if attempt > 0 {
			replica.retried.Add(1)
			rt.metrics.retries.Add(1)
		}
		tried[replica] = true
		resp, respBody, err := rt.forward(r.Context(), replica, r, body)
		if err != nil {
			if r.Context().Err() != nil {
				return nil, nil, nil, r.Context().Err()
			}
			lastErr = err
			replica.failed.Add(1)
			replica.setUp(false)
			rt.log.Warn("replica transport failure", "replica", replica.Name, "err", err)
			continue
		}
		replica.routed.Add(1)
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			replica.noteShed(rt.clock())
		}
		return resp, respBody, replica, nil
	}
	if lastErr != nil {
		return nil, nil, nil, fmt.Errorf("all routable replicas failed: %w", lastErr)
	}
	return nil, nil, nil, fmt.Errorf("no routable replicas")
}

// untried returns the routable replicas not yet attempted for this
// request, in registration order.
func (rt *Router) untried(tried map[*Replica]bool) []*Replica {
	up := rt.reg.UpReplicas()
	out := up[:0:0]
	for _, r := range up {
		if !tried[r] {
			out = append(out, r)
		}
	}
	return out
}

// forward sends one copy of the request to one replica and reads the
// full response. The inbound headers travel verbatim (a malformed
// traceparent included — the replica ignores it exactly as the router
// did); when this request is traced, the router overrides traceparent
// with its own forward span so the replica's root span parents under
// the router's trace.
func (rt *Router) forward(ctx context.Context, replica *Replica, r *http.Request, body []byte) (*http.Response, []byte, error) {
	var span *obs.Span
	if obs.Active(ctx) {
		ctx, span = obs.Start(ctx, "forward "+replica.Name)
		defer span.End()
		span.SetAttr("replica", replica.Name)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, replica.BaseURL+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	copyHeaders(req.Header, r.Header)
	if span != nil {
		col := span.Collector()
		req.Header.Set(serve.HeaderTraceparent, obs.FormatTraceparent(col.TraceID(), span.SpanID))
		req.Header.Del(serve.HeaderTrace) // traceparent alone carries the parent link
	}
	replica.inflight.Add(1)
	defer replica.inflight.Add(-1)
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("reading %s response: %w", replica.Name, err)
	}
	if span != nil {
		span.SetAttrInt("status", resp.StatusCode)
	}
	return resp, respBody, nil
}

// hopHeaders are the hop-by-hop headers a proxy must not forward.
var hopHeaders = []string{"Connection", "Keep-Alive", "Proxy-Connection", "Te", "Trailer", "Transfer-Encoding", "Upgrade"}

func copyHeaders(dst, src http.Header) {
	for k, vs := range src {
		for _, v := range vs {
			dst.Add(k, v)
		}
	}
	for _, k := range hopHeaders {
		dst.Del(k)
	}
	dst.Del("Content-Length") // recomputed for the new body reader
}

// relay writes an upstream response through to the client. Headers
// the router already owns (the trace headers of an armed request)
// win over the replica's — the client sees the router's root span,
// with the replica's spans parented beneath it in the shared trace.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, body []byte) {
	for k, vs := range resp.Header {
		if k == "Content-Length" || w.Header().Get(k) != "" {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = w.Write(body)
}

// writeError renders a router-level failure in the v2 error dialect.
func (rt *Router) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(serve.ErrorV2{Code: routerErrorCode(status), Message: err.Error()})
}

func routerErrorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return serve.CodeBadRequest
	case http.StatusNotFound:
		return serve.CodeNotFound
	case http.StatusRequestEntityTooLarge:
		return serve.CodePayloadTooLarge
	case http.StatusTooManyRequests:
		return serve.CodeShed
	case http.StatusServiceUnavailable, http.StatusBadGateway:
		return serve.CodeUnavailable
	default:
		return serve.CodeInternal
	}
}

// firstKey returns the first of a comma-joined instance-key list.
func firstKey(v string) string {
	if i := strings.IndexByte(v, ','); i >= 0 {
		return v[:i]
	}
	return v
}

// RouterHealthz is the body of the router's own GET /healthz.
type RouterHealthz struct {
	OK       bool    `json:"ok"`
	Policy   string  `json:"policy"`
	Replicas int     `json:"replicas"`
	Up       int     `json:"up"`
	UptimeS  float64 `json:"uptime_s"`
}

// handleHealthz serves the router's own readiness: OK while at least
// one replica is routable.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := len(rt.reg.UpReplicas())
	status := http.StatusOK
	if up == 0 {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(RouterHealthz{
		OK:       up > 0,
		Policy:   rt.policy.Name(),
		Replicas: len(rt.reg.Replicas()),
		Up:       up,
		UptimeS:  rt.clock().Sub(rt.start).Seconds(),
	})
}

// sortedReplicaNames returns replica names sorted for stable
// exposition output.
func (rt *Router) sortedReplicas() []*Replica {
	reps := append([]*Replica(nil), rt.reg.Replicas()...)
	sort.Slice(reps, func(i, j int) bool { return reps[i].Name < reps[j].Name })
	return reps
}
