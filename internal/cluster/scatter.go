package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"github.com/regretlab/fam/serve"
)

// This file is the scatter-gather path for POST /v2/select: the
// distributed half of the engine's batch planner. Members group by
// routing key (the same preprocessing-instance grouping the planner
// uses), each group is forwarded to its policy-chosen replica as one
// sub-batch — so a group's representative fill and its dedup
// followers stay on one replica's caches — and the per-slot results
// reassemble in the original member order, exactly as a single
// replica would have answered.

// batchWire is the v2 batch envelope with members kept as raw bytes:
// the router routes on a few fields but forwards bodies verbatim, so
// replicas see exactly what the client sent.
type batchWire struct {
	Queries []json.RawMessage `json:"queries"`
	Exec    json.RawMessage   `json:"exec,omitempty"`
}

// batchResultsWire decodes a replica's batch answer without touching
// the member payloads.
type batchResultsWire struct {
	Results []json.RawMessage `json:"results"`
}

// scatterGroup is one instance-key group: the member indices it owns
// in the original batch and their raw bodies.
type scatterGroup struct {
	key     RouteKey
	indices []int
	queries []json.RawMessage
}

// handleScatter serves POST /v2/select by splitting the batch across
// replicas per instance-key group and reassembling slot answers in
// order. A group whose replica fails (transport exhausted or a
// non-200 batch envelope) degrades to per-slot errors in the v2
// member shape; the other groups' results are unaffected.
func (rt *Router) handleScatter(w http.ResponseWriter, r *http.Request) {
	var req batchWire
	if err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		rt.writeError(w, http.StatusBadRequest, fmt.Errorf("empty batch: queries must be non-empty"))
		return
	}
	groups := groupMembers(req.Queries)
	rt.metrics.scatterBatches.Add(1)
	rt.metrics.scatterSubrequests.Add(uint64(len(groups)))

	slots := make([]json.RawMessage, len(req.Queries))
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *scatterGroup) {
			defer wg.Done()
			rt.runGroup(r, g, req.Exec, slots)
		}(g)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(batchResultsWire{Results: slots})
}

// groupMembers splits batch members into instance-key groups,
// preserving first-appearance order.
func groupMembers(queries []json.RawMessage) []*scatterGroup {
	var order []*scatterGroup
	byKey := make(map[string]*scatterGroup)
	for i, raw := range queries {
		var fields routeFields
		_ = json.Unmarshal(raw, &fields) // undecodable members group together and fail on a replica
		key := fields.routeKey()
		g := byKey[key.GroupKey]
		if g == nil {
			g = &scatterGroup{key: key}
			byKey[key.GroupKey] = g
			order = append(order, g)
		}
		g.indices = append(g.indices, i)
		g.queries = append(g.queries, raw)
	}
	return order
}

// runGroup forwards one group's sub-batch and fills its slots. Every
// failure mode becomes per-slot errors so the batch answer always has
// one entry per member.
func (rt *Router) runGroup(r *http.Request, g *scatterGroup, exec json.RawMessage, slots []json.RawMessage) {
	sub, err := json.Marshal(batchWire{Queries: g.queries, Exec: exec})
	if err != nil {
		rt.fillErrors(g, slots, http.StatusInternalServerError, fmt.Sprintf("encoding sub-batch: %v", err))
		return
	}
	resp, body, replica, err := rt.dispatch(r, g.key, sub)
	if err != nil {
		rt.fillErrors(g, slots, http.StatusBadGateway, err.Error())
		return
	}
	if resp.StatusCode != http.StatusOK {
		// The replica rejected the whole sub-batch (bad exec block,
		// over the batch limit, shed). Surface its envelope message
		// per slot under the replica's status.
		rt.fillErrors(g, slots, resp.StatusCode, upstreamMessage(body, resp.StatusCode))
		return
	}
	var results batchResultsWire
	if err := json.Unmarshal(body, &results); err != nil || len(results.Results) != len(g.indices) {
		rt.fillErrors(g, slots, http.StatusBadGateway,
			fmt.Sprintf("replica %s answered a malformed batch response", replica.Name))
		return
	}
	for j, idx := range g.indices {
		slots[idx] = results.Results[j]
	}
	if rt.learner != nil {
		if key := resp.Header.Get(serve.HeaderInstanceKey); key != "" {
			rt.learner.Learn(g.key, firstKey(key), replica)
		}
	}
}

// fillErrors writes the v2 batch member error shape into every slot
// of a failed group.
func (rt *Router) fillErrors(g *scatterGroup, slots []json.RawMessage, status int, msg string) {
	member, err := json.Marshal(serve.BatchMemberResponse{Error: msg, Status: status, Code: routerErrorCode(status)})
	if err != nil {
		member = []byte(`{"error":"router error","status":502,"code":"unavailable"}`)
	}
	for _, idx := range g.indices {
		slots[idx] = member
	}
}

// upstreamMessage extracts the human message from a replica's v2
// error envelope, falling back to the bare status.
func upstreamMessage(body []byte, status int) string {
	var env serve.ErrorV2
	if err := json.Unmarshal(body, &env); err == nil && env.Message != "" {
		return env.Message
	}
	return fmt.Sprintf("replica answered status %d", status)
}
