package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is the virtual-node count per replica. 64 vnodes keep
// the dataset→replica split within a few percent of even for the
// single-digit replica counts a famserve cluster runs at, at the cost
// of a few hundred ring points — negligible to search.
const ringVnodes = 64

// ring is a consistent-hash ring over the registry: datasets map to
// owner replicas, and membership changes move only the datasets whose
// arcs a replica owned. The ring hashes the full membership — routable
// state is applied at lookup time by walking clockwise past down
// replicas, so a replica that comes back immediately reclaims its
// arcs (and its warm caches) without rebuilding anything.
type ring struct {
	points []ringPoint
}

type ringPoint struct {
	hash    uint32
	replica *Replica
}

// newRing places every replica at ringVnodes points.
func newRing(replicas []*Replica) *ring {
	r := &ring{points: make([]ringPoint, 0, len(replicas)*ringVnodes)}
	for _, rep := range replicas {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashKey(fmt.Sprintf("%s#%d", rep.Name, v)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on name so equal hashes still order deterministically.
		return r.points[i].replica.Name < r.points[j].replica.Name
	})
	return r
}

// owner returns the first routable replica clockwise from key's hash,
// or nil if no replica is routable.
func (r *ring) owner(key string) *Replica {
	if len(r.points) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if p.replica.Up() {
			return p.replica
		}
	}
	return nil
}

// hashKey is FNV-1a over the key — stable across processes, so every
// router instance agrees on dataset placement without coordination.
func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}
