package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/regretlab/fam/serve"
)

// HealthChecker polls every replica's GET /healthz on a fixed
// interval and flips routable state: one good answer marks a replica
// up, FailThreshold consecutive bad answers mark it down. The checker
// is the slow path of failure detection — the router also marks a
// replica down passively on a transport error, so a crashed replica
// stops receiving traffic before the next tick.
type HealthChecker struct {
	// Interval between check rounds. Default 500ms.
	Interval time.Duration
	// Timeout bounds one replica probe. Default 2s.
	Timeout time.Duration
	// FailThreshold is the consecutive-failure count that marks a
	// replica down. Default 2 — one lost probe is noise, two is an
	// outage.
	FailThreshold int
	// Log receives up/down transition lines. Nil disables logging.
	Log *slog.Logger

	reg    *Registry
	client *http.Client

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// NewHealthChecker builds a checker over the registry. A nil client
// uses a dedicated one with sane probe timeouts.
func NewHealthChecker(reg *Registry, client *http.Client) *HealthChecker {
	if client == nil {
		client = &http.Client{}
	}
	return &HealthChecker{
		Interval:      500 * time.Millisecond,
		Timeout:       2 * time.Second,
		FailThreshold: 2,
		reg:           reg,
		client:        client,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
}

// CheckOnce probes every replica concurrently and applies the
// up/down transitions. It blocks until the round completes, so a
// caller can run one synchronous round before serving traffic.
func (hc *HealthChecker) CheckOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, r := range hc.reg.Replicas() {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			hc.check(ctx, r)
		}(r)
	}
	wg.Wait()
}

// Start launches the periodic check loop. Stop ends it.
func (hc *HealthChecker) Start() {
	hc.startOnce.Do(func() {
		hc.started.Store(true)
		go func() {
			defer close(hc.done)
			ticker := time.NewTicker(hc.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-hc.stop:
					return
				case <-ticker.C:
					hc.CheckOnce(context.Background())
				}
			}
		}()
	})
}

// Stop ends the check loop and waits for it to exit. Safe to call
// more than once, or without Start having run.
func (hc *HealthChecker) Stop() {
	hc.stopOnce.Do(func() { close(hc.stop) })
	if hc.started.Load() {
		<-hc.done
	}
}

// check probes one replica and applies the transition rules.
func (hc *HealthChecker) check(ctx context.Context, r *Replica) {
	h, err := hc.probe(ctx, r)
	if err != nil || !h.OK {
		fails := r.fails.Add(1)
		if int(fails) >= hc.FailThreshold && r.setUp(false) && hc.Log != nil {
			hc.Log.Warn("replica down", "replica", r.Name, "consecutive_fails", fails, "err", errString(err))
		}
		return
	}
	r.fails.Store(0)
	r.health.Store(h)
	if r.setUp(true) && hc.Log != nil {
		hc.Log.Info("replica up", "replica", r.Name, "queue_depth", h.QueueDepth, "shed_rate", h.ShedRate)
	}
}

// probe fetches and decodes one /healthz answer.
func (hc *HealthChecker) probe(ctx context.Context, r *Replica) (*Health, error) {
	ctx, cancel := context.WithTimeout(ctx, hc.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("healthz: status %d", resp.StatusCode)
	}
	var body serve.HealthzResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return nil, fmt.Errorf("healthz: decoding: %w", err)
	}
	return &Health{
		OK:            body.OK,
		QueueDepth:    body.QueueDepth,
		ShedRate:      body.ShedRate,
		ResultHitRate: body.ResultHitRate,
		CheckedAt:     time.Now(),
	}, nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}
