// Package cluster is the scale-out tier above famserve: a replica
// registry with periodic health checks, pluggable routing policies
// (round-robin, least-loaded, weighted scoring, instance-key
// affinity), a reverse proxy for the query endpoints, and a
// scatter-gather path that splits v2 batches across replicas by
// instance-key group. The point is the distributed analogue of the
// batch planner's representative-first fills: queries that share a
// preprocessing instance land on the replica whose prep/result caches
// are already warm for it, so the cluster re-pays the ~half-second
// cold preprocessing cost once instead of once per replica.
package cluster

import (
	"fmt"
	"net/url"
	"sync/atomic"
	"time"
)

// Health is one /healthz observation of a replica — the routing
// signals a policy scores against, plus when they were taken.
type Health struct {
	OK            bool
	QueueDepth    int
	ShedRate      float64
	ResultHitRate float64
	CheckedAt     time.Time
}

// Replica is one famserve instance behind the router. All fields the
// router mutates are atomics: health checks, request forwarding, and
// the metrics scrape touch replicas concurrently without a lock.
type Replica struct {
	// BaseURL is the replica's root, e.g. "http://127.0.0.1:8071".
	BaseURL string
	// Name labels the replica in metrics and logs (the URL's host:port).
	Name string

	up       atomic.Bool
	health   atomic.Pointer[Health]
	inflight atomic.Int64
	fails    atomic.Int32 // consecutive failed health checks

	routed      atomic.Uint64
	retried     atomic.Uint64
	failed      atomic.Uint64
	transitions atomic.Uint64
	lastShed    atomic.Int64 // UnixNano of the last observed 429/503
}

// Up reports whether the replica is currently considered routable.
func (r *Replica) Up() bool { return r.up.Load() }

// Inflight reports the requests the router currently has open against
// the replica — the live half of the least-loaded score.
func (r *Replica) Inflight() int64 { return r.inflight.Load() }

// Health returns the latest health observation (nil before the first
// successful check).
func (r *Replica) Health() *Health { return r.health.Load() }

// Shedding reports whether the replica pushed back recently: a 429 or
// 503 observed within cooldown, or a shed rate above threshold on the
// last health check. Affinity routing falls back to least-loaded for
// a shedding owner instead of piling onto it.
func (r *Replica) Shedding(now time.Time, cooldown time.Duration, threshold float64) bool {
	if last := r.lastShed.Load(); last > 0 && now.Sub(time.Unix(0, last)) < cooldown {
		return true
	}
	if h := r.health.Load(); h != nil && h.ShedRate > threshold {
		return true
	}
	return false
}

// noteShed records replica backpressure (a 429 or 503 answer).
func (r *Replica) noteShed(now time.Time) { r.lastShed.Store(now.UnixNano()) }

// setUp flips the routable bit, counting each transition.
func (r *Replica) setUp(up bool) (changed bool) {
	if r.up.Swap(up) != up {
		r.transitions.Add(1)
		return true
	}
	return false
}

// Registry is the fixed replica set the router serves. Membership is
// static for a router's lifetime (restart to change it); everything
// about a member is dynamic.
type Registry struct {
	replicas []*Replica
}

// NewRegistry builds a registry from replica base URLs. Replicas
// start down: run a health check (or CheckOnce) before routing.
func NewRegistry(baseURLs []string) (*Registry, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	seen := make(map[string]bool, len(baseURLs))
	reg := &Registry{}
	for _, raw := range baseURLs {
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: replica %q: need an absolute URL like http://host:port", raw)
		}
		base := u.Scheme + "://" + u.Host
		if seen[base] {
			return nil, fmt.Errorf("cluster: duplicate replica %q", base)
		}
		seen[base] = true
		reg.replicas = append(reg.replicas, &Replica{BaseURL: base, Name: u.Host})
	}
	return reg, nil
}

// Replicas returns the full membership in registration order.
func (g *Registry) Replicas() []*Replica { return g.replicas }

// UpReplicas returns the currently routable members, preserving
// registration order so policies see a stable candidate layout.
func (g *Registry) UpReplicas() []*Replica {
	up := make([]*Replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		if r.Up() {
			up = append(up, r)
		}
	}
	return up
}
