package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// This file implements the router's GET /metrics: Prometheus text
// exposition (version 0.0.4), zero external dependencies, same
// conventions as the replica's fam_* series. The per-replica series
// are the observable proof of the failure-handling contract: a killed
// replica shows famrouter_replica_up dropping to 0, its
// transitions_total advancing, and routed_total flat while the
// survivors' counters keep climbing.
//
// Exported series (labels in parentheses):
//
//	famrouter_requests_total             (endpoint, code) counter
//	famrouter_request_duration_seconds   (endpoint) histogram
//	famrouter_route_decisions_total      (reason)   counter
//	famrouter_route_decision_seconds               histogram
//	famrouter_retries_total                         counter
//	famrouter_scatter_batches_total                 counter
//	famrouter_scatter_subrequests_total             counter
//	famrouter_replicas                              gauge
//	famrouter_replicas_up                           gauge
//	famrouter_policy_info                (policy)   gauge (constant 1)
//	famrouter_replica_up                 (replica)  gauge
//	famrouter_replica_inflight           (replica)  gauge
//	famrouter_replica_queue_depth        (replica)  gauge
//	famrouter_replica_shed_rate          (replica)  gauge
//	famrouter_replica_result_hit_rate    (replica)  gauge
//	famrouter_replica_routed_total       (replica)  counter
//	famrouter_replica_retried_total      (replica)  counter
//	famrouter_replica_failed_total       (replica)  counter
//	famrouter_replica_transitions_total  (replica)  counter

// requestBuckets are the upper bounds (seconds) of the request
// latency histogram; +Inf is implicit as the final bucket.
var requestBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1, 2.5, 10}

// decisionBuckets bound the routing-decision histogram: decisions are
// map lookups and ring walks, so the scale is microseconds.
var decisionBuckets = []float64{1e-6, 5e-6, 25e-6, 1e-4, 1e-3, 1e-2}

// histogram is a fixed-bucket latency accumulator.
type histogram struct {
	buckets []uint64 // len(bounds)+1; last = +Inf
	sum     float64
	count   uint64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{buckets: make([]uint64, len(bounds)+1)}
}

func (h *histogram) observe(bounds []float64, seconds float64) {
	h.sum += seconds
	h.count++
	for i, bound := range bounds {
		if seconds <= bound {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(bounds)]++
}

// write renders the histogram's exposition lines under an inner label
// list (as produced by labelKV; "" for no labels).
func (h *histogram) write(w *expWriter, name, inner string, bounds []float64) {
	cum := uint64(0)
	for i, bound := range bounds {
		cum += h.buckets[i]
		w.sample(name+"_bucket", mergeLabels(inner, "le", formatValue(bound)), float64(cum))
	}
	cum += h.buckets[len(bounds)]
	w.sample(name+"_bucket", mergeLabels(inner, "le", "+Inf"), float64(cum))
	w.sample(name+"_sum", labelString(inner), h.sum)
	w.sample(name+"_count", labelString(inner), float64(h.count))
}

// endpointStats accumulates one route's request counts and latency.
type endpointStats struct {
	codes map[int]uint64
	dur   *histogram
}

// routerMetrics is the router-level accounting behind /metrics. A
// plain mutex over small maps — the critical section is a few map
// operations, dwarfed by the forwarded request itself.
type routerMetrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	decisions map[string]uint64
	decideDur *histogram

	retries            atomic.Uint64
	scatterBatches     atomic.Uint64
	scatterSubrequests atomic.Uint64
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{
		endpoints: map[string]*endpointStats{},
		decisions: map[string]uint64{},
		decideDur: newHistogram(decisionBuckets),
	}
}

// record accounts one served request under its route pattern.
func (m *routerMetrics) record(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	es := m.endpoints[endpoint]
	if es == nil {
		es = &endpointStats{codes: map[int]uint64{}, dur: newHistogram(requestBuckets)}
		m.endpoints[endpoint] = es
	}
	es.codes[code]++
	es.dur.observe(requestBuckets, seconds)
}

// decision accounts one routing decision under its reason.
func (m *routerMetrics) decision(reason string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decisions[reason]++
	m.decideDur.observe(decisionBuckets, seconds)
}

// statusRecorder captures the response status for request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

// expWriter accumulates exposition lines; the # TYPE header is
// emitted once per metric family, on its first sample.
type expWriter struct {
	sb    strings.Builder
	typed map[string]bool
}

func newExpWriter() *expWriter {
	return &expWriter{typed: map[string]bool{}}
}

func (w *expWriter) family(name, kind, help string) {
	if w.typed[name] {
		return
	}
	w.typed[name] = true
	fmt.Fprintf(&w.sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

func (w *expWriter) sample(name, labelSet string, value float64) {
	fmt.Fprintf(&w.sb, "%s%s %s\n", name, labelSet, formatValue(value))
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// labelKV renders key/value pairs as the inner label list (no braces),
// sorted for deterministic output.
func labelKV(kv ...string) string {
	pairs := make([]string, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", kv[i], escapeLabel(kv[i+1])))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// labelString wraps an inner label list in braces ("" stays "").
func labelString(inner string) string {
	if inner == "" {
		return ""
	}
	return "{" + inner + "}"
}

// mergeLabels appends one more pair to an inner label list and wraps.
func mergeLabels(inner, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, escapeLabel(value))
	if inner == "" {
		return "{" + pair + "}"
	}
	return "{" + inner + "," + pair + "}"
}

// formatValue renders a sample value: integral values without an
// exponent (counter deltas stay grep-able in CI smoke checks), the
// rest in Go's shortest float form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// handleMetrics serves the router's GET /metrics.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	out := newExpWriter()

	// Identity and topology.
	out.family("famrouter_policy_info", "gauge", "Active routing policy (constant 1; the policy is the label).")
	out.sample("famrouter_policy_info", labelString(labelKV("policy", rt.policy.Name())), 1)
	replicas := rt.sortedReplicas()
	up := 0
	for _, rep := range replicas {
		if rep.Up() {
			up++
		}
	}
	out.family("famrouter_replicas", "gauge", "Registered replicas.")
	out.sample("famrouter_replicas", "", float64(len(replicas)))
	out.family("famrouter_replicas_up", "gauge", "Currently routable replicas.")
	out.sample("famrouter_replicas_up", "", float64(up))

	// Per-replica state: the failure-transition evidence.
	out.family("famrouter_replica_up", "gauge", "Replica routable state (1 = routable), by replica.")
	out.family("famrouter_replica_inflight", "gauge", "Requests the router holds open against the replica.")
	out.family("famrouter_replica_queue_depth", "gauge", "Replica queue depth from its last health check.")
	out.family("famrouter_replica_shed_rate", "gauge", "Replica windowed shed rate from its last health check.")
	out.family("famrouter_replica_result_hit_rate", "gauge", "Replica result-cache hit rate from its last health check.")
	out.family("famrouter_replica_routed_total", "counter", "Requests forwarded to the replica that reached it.")
	out.family("famrouter_replica_retried_total", "counter", "Requests that reached the replica as a retry of another replica's failure.")
	out.family("famrouter_replica_failed_total", "counter", "Forwards that failed at the transport layer, by replica.")
	out.family("famrouter_replica_transitions_total", "counter", "Up/down transitions observed for the replica.")
	for _, rep := range replicas {
		ls := labelString(labelKV("replica", rep.Name))
		upVal := 0.0
		if rep.Up() {
			upVal = 1
		}
		out.sample("famrouter_replica_up", ls, upVal)
		out.sample("famrouter_replica_inflight", ls, float64(rep.Inflight()))
		if h := rep.Health(); h != nil {
			out.sample("famrouter_replica_queue_depth", ls, float64(h.QueueDepth))
			out.sample("famrouter_replica_shed_rate", ls, h.ShedRate)
			out.sample("famrouter_replica_result_hit_rate", ls, h.ResultHitRate)
		}
		out.sample("famrouter_replica_routed_total", ls, float64(rep.routed.Load()))
		out.sample("famrouter_replica_retried_total", ls, float64(rep.retried.Load()))
		out.sample("famrouter_replica_failed_total", ls, float64(rep.failed.Load()))
		out.sample("famrouter_replica_transitions_total", ls, float64(rep.transitions.Load()))
	}

	// Routing decisions and scatter volume.
	out.family("famrouter_retries_total", "counter", "Forward attempts made after another replica's transport failure.")
	out.sample("famrouter_retries_total", "", float64(rt.metrics.retries.Load()))
	out.family("famrouter_scatter_batches_total", "counter", "v2 batches served through scatter-gather.")
	out.sample("famrouter_scatter_batches_total", "", float64(rt.metrics.scatterBatches.Load()))
	out.family("famrouter_scatter_subrequests_total", "counter", "Sub-batches forwarded by scatter-gather.")
	out.sample("famrouter_scatter_subrequests_total", "", float64(rt.metrics.scatterSubrequests.Load()))

	rt.metrics.mu.Lock()
	out.family("famrouter_route_decisions_total", "counter", "Routing decisions, by reason the policy gave.")
	reasons := make([]string, 0, len(rt.metrics.decisions))
	for reason := range rt.metrics.decisions {
		reasons = append(reasons, reason)
	}
	sort.Strings(reasons)
	for _, reason := range reasons {
		out.sample("famrouter_route_decisions_total", labelString(labelKV("reason", reason)), float64(rt.metrics.decisions[reason]))
	}
	out.family("famrouter_route_decision_seconds", "histogram", "Time spent picking a replica per decision.")
	rt.metrics.decideDur.write(out, "famrouter_route_decision_seconds", "", decisionBuckets)

	// HTTP: per-endpoint request counters and latency histograms.
	out.family("famrouter_requests_total", "counter", "Requests served, by route pattern and status code.")
	out.family("famrouter_request_duration_seconds", "histogram", "Request latency, by route pattern.")
	endpoints := make([]string, 0, len(rt.metrics.endpoints))
	for ep := range rt.metrics.endpoints {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		es := rt.metrics.endpoints[ep]
		codes := make([]int, 0, len(es.codes))
		for code := range es.codes {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			out.sample("famrouter_requests_total",
				labelString(labelKV("endpoint", ep, "code", fmt.Sprintf("%d", code))), float64(es.codes[code]))
		}
		es.dur.write(out, "famrouter_request_duration_seconds", labelKV("endpoint", ep), requestBuckets)
	}
	rt.metrics.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(out.sb.String()))
}
