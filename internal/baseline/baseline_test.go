package baseline

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

func randPoints(g *rng.RNG, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		g.UniformVec(p)
		pts[i] = p
	}
	return pts
}

func linearInstance(t *testing.T, pts [][]float64, N int, seed uint64) *core.Instance {
	t.Helper()
	dist, err := utility.NewUniformSimplexLinear(len(pts[0]))
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := sampling.Sample(dist, N, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(pts, funcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestMRRGreedyLPValidation(t *testing.T) {
	ctx := context.Background()
	pts := [][]float64{{1, 0}, {0, 1}}
	if _, err := MRRGreedyLP(ctx, nil, 1, 1, nil); err == nil {
		t.Fatal("empty points must error")
	}
	if _, err := MRRGreedyLP(ctx, pts, 0, 1, nil); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := MRRGreedyLP(ctx, pts, 3, 1, nil); err == nil {
		t.Fatal("k>n must error")
	}
}

func TestMRRGreedyLPSimple(t *testing.T) {
	// Extremes plus a midpoint: first pick = max first attribute (index 0);
	// the point realizing the max regret then is (0,1).
	pts := [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}}
	set, err := MRRGreedyLP(context.Background(), pts, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0] != 0 || set[1] != 1 {
		t.Fatalf("set = %v, want [0 1]", set)
	}
}

func TestMaxRegretRatioLPDecreases(t *testing.T) {
	g := rng.New(3)
	pts := randPoints(g, 30, 3)
	ctx := context.Background()
	prev := 2.0
	for k := 1; k <= 6; k++ {
		set, err := MRRGreedyLP(ctx, pts, k, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != k {
			t.Fatalf("k=%d: |set| = %d", k, len(set))
		}
		mrr, err := MaxRegretRatioLP(ctx, pts, set)
		if err != nil {
			t.Fatal(err)
		}
		if mrr < 0 || mrr > 1 {
			t.Fatalf("mrr = %v", mrr)
		}
		if mrr > prev+1e-9 {
			t.Fatalf("mrr increased when k grew: %v -> %v", prev, mrr)
		}
		prev = mrr
	}
	// Whole database: zero max regret.
	all := make([]int, len(pts))
	for i := range all {
		all[i] = i
	}
	mrr, err := MaxRegretRatioLP(ctx, pts, all)
	if err != nil {
		t.Fatal(err)
	}
	if mrr > 1e-9 {
		t.Fatalf("mrr(D) = %v, want 0", mrr)
	}
}

// The LP-based max regret ratio must agree with a dense Monte-Carlo
// estimate (the MC value is a lower bound that approaches the LP optimum).
func TestMaxRegretRatioLPMatchesSampling(t *testing.T) {
	g := rng.New(7)
	pts := randPoints(g, 12, 2)
	set := []int{0, 1, 2}
	ctx := context.Background()
	exact, err := MaxRegretRatioLP(ctx, pts, set)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for trial := 0; trial < 200000; trial++ {
		w := []float64{g.Float64(), g.Float64()}
		var bestD, bestS float64
		for _, p := range pts {
			if v := w[0]*p[0] + w[1]*p[1]; v > bestD {
				bestD = v
			}
		}
		for _, s := range set {
			if v := w[0]*pts[s][0] + w[1]*pts[s][1]; v > bestS {
				bestS = v
			}
		}
		if bestD > 0 {
			if rr := (bestD - bestS) / bestD; rr > worst {
				worst = rr
			}
		}
	}
	if worst > exact+1e-9 {
		t.Fatalf("sampled mrr %v exceeds LP mrr %v", worst, exact)
	}
	if exact-worst > 0.02 {
		t.Fatalf("LP mrr %v far above dense sampling %v", exact, worst)
	}
}

func TestMRRGreedyLPCancel(t *testing.T) {
	g := rng.New(9)
	pts := randPoints(g, 50, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MRRGreedyLP(ctx, pts, 5, 1, nil); err == nil {
		t.Fatal("canceled context must error")
	}
}

func TestMRRGreedyLPFillsWhenSaturated(t *testing.T) {
	// One point dominates everything: regret hits 0 after the first pick,
	// but the result must still have k members.
	pts := [][]float64{{1, 1}, {0.5, 0.5}, {0.2, 0.2}}
	set, err := MRRGreedyLP(context.Background(), pts, 3, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 3 {
		t.Fatalf("set = %v", set)
	}
}

func TestMRRGreedySampled(t *testing.T) {
	g := rng.New(11)
	pts := randPoints(g, 25, 3)
	in := linearInstance(t, pts, 400, 12)
	ctx := context.Background()
	if _, err := MRRGreedySampled(ctx, nil, 2); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, err := MRRGreedySampled(ctx, in, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	prev := 2.0
	for k := 1; k <= 5; k++ {
		set, err := MRRGreedySampled(ctx, in, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(set) != k {
			t.Fatalf("k=%d: %v", k, set)
		}
		m, err := in.Evaluate(set, nil)
		if err != nil {
			t.Fatal(err)
		}
		if m.MaxRR > prev+1e-9 {
			t.Fatalf("sampled mrr increased: %v -> %v", prev, m.MaxRR)
		}
		prev = m.MaxRR
	}
}

func TestSkyDom(t *testing.T) {
	ctx := context.Background()
	// Point 0 dominates 3 points, point 1 dominates 1, point 2 dominates
	// none; greedy coverage should pick 0 then 1.
	pts := [][]float64{
		{0.9, 0.9}, // dominates 3,4,5
		{0.2, 1.0}, // dominates 5? (0.2>0.1, 1.0>0.1) yes; and (0.1,0.95)
		{1.0, 0.1}, // skyline
		{0.8, 0.8},
		{0.5, 0.5},
		{0.1, 0.1},
	}
	set, err := SkyDom(ctx, pts, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 || set[0] != 0 {
		t.Fatalf("set = %v", set)
	}
	cov, err := DominanceCoverage(pts, set)
	if err != nil {
		t.Fatal(err)
	}
	// No 2-subset covers more than what greedy found.
	best := 0
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			c, _ := DominanceCoverage(pts, []int{a, b})
			if c > best {
				best = c
			}
		}
	}
	if cov < best {
		t.Fatalf("greedy coverage %d < optimal pair coverage %d", cov, best)
	}
}

func TestSkyDomValidationAndPadding(t *testing.T) {
	ctx := context.Background()
	if _, err := SkyDom(ctx, nil, 1, 1, nil); err == nil {
		t.Fatal("empty must error")
	}
	pts := [][]float64{{1, 1}, {0.5, 0.5}, {0.4, 0.4}}
	if _, err := SkyDom(ctx, pts, 0, 1, nil); err == nil {
		t.Fatal("k=0 must error")
	}
	// Skyline has 1 point; k=2 must pad.
	set, err := SkyDom(ctx, pts, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("set = %v", set)
	}
	ctxC, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := SkyDom(ctxC, pts, 2, 1, nil); err == nil {
		t.Fatal("canceled context must error")
	}
}

func TestKHit(t *testing.T) {
	ctx := context.Background()
	// Three extreme points; simplex-uniform users' favorites concentrate
	// on them.
	pts := [][]float64{{1, 0}, {0, 1}, {0.9, 0.9}, {0.1, 0.1}}
	in := linearInstance(t, pts, 2000, 21)
	if _, err := KHit(ctx, nil, 1); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, err := KHit(ctx, in, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	set, err := KHit(ctx, in, 1)
	if err != nil {
		t.Fatal(err)
	}
	// (0.9, 0.9) wins for almost all weights.
	if len(set) != 1 || set[0] != 2 {
		t.Fatalf("set = %v, want [2]", set)
	}
	p, err := HitProbability(in, set)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.5 {
		t.Fatalf("hit probability of the dominant point = %v", p)
	}
	// The k-hit set maximizes hit probability among all k-subsets (exact
	// for the sampled objective): verify for k=2 against enumeration.
	set2, err := KHit(ctx, in, 2)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := HitProbability(in, set2)
	for a := 0; a < len(pts); a++ {
		for b := a + 1; b < len(pts); b++ {
			pb, _ := HitProbability(in, []int{a, b})
			if pb > p2+1e-12 {
				t.Fatalf("pair (%d,%d) beats k-hit: %v > %v", a, b, pb, p2)
			}
		}
	}
	// Point 3 is dominated: never a favorite.
	p3, _ := HitProbability(in, []int{3})
	if p3 != 0 {
		t.Fatalf("dominated point hit probability = %v", p3)
	}
	if _, err := HitProbability(in, []int{99}); err == nil {
		t.Fatal("out-of-range set must error")
	}
}

// On identical instances, GREEDY-SHRINK should achieve arr no worse than
// (and typically better than) the three baselines — the headline claim of
// the paper's Figures 1, 2 and 6.
func TestShrinkBeatsBaselinesOnARR(t *testing.T) {
	g := rng.New(31)
	pts := randPoints(g, 60, 4)
	in := linearInstance(t, pts, 1500, 32)
	ctx := context.Background()
	k := 5

	gsSet, _, err := core.GreedyShrink(ctx, in, k, core.StrategyDelta)
	if err != nil {
		t.Fatal(err)
	}
	gsARR, _ := in.ARR(gsSet)

	others := map[string][]int{}
	if s, err := MRRGreedyLP(ctx, pts, k, 1, nil); err == nil {
		others["mrr"] = s
	} else {
		t.Fatal(err)
	}
	if s, err := SkyDom(ctx, pts, k, 1, nil); err == nil {
		others["skydom"] = s
	} else {
		t.Fatal(err)
	}
	if s, err := KHit(ctx, in, k); err == nil {
		others["khit"] = s
	} else {
		t.Fatal(err)
	}
	for name, set := range others {
		arr, err := in.ARR(set)
		if err != nil {
			t.Fatal(err)
		}
		if gsARR > arr+0.02 {
			t.Fatalf("greedy-shrink arr %v much worse than %s arr %v", gsARR, name, arr)
		}
	}
}

// The envelope-based exact 2-d max regret ratio must agree with the
// LP-based evaluation used by MRR-GREEDY (the LP maximizes over all
// non-negative weights; the formulation is scale-invariant, so the two
// coincide).
func TestExactMaxRegretRatioMatchesLP(t *testing.T) {
	g := rng.New(17)
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		n := g.IntN(10) + 3
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{0.05 + 0.95*g.Float64(), 0.05 + 0.95*g.Float64()}
		}
		k := g.IntN(n) + 1
		set := g.Choice(n, k)
		exact, err := geom.ExactMaxRegretRatio(pts, set)
		if err != nil {
			t.Fatal(err)
		}
		viaLP, err := MaxRegretRatioLP(ctx, pts, set)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact-viaLP) > 1e-6 {
			t.Fatalf("trial %d: envelope %v vs LP %v (set %v of %d points)", trial, exact, viaLP, set, n)
		}
	}
}

func TestKHitExact2D(t *testing.T) {
	ctx := context.Background()
	pts := [][]float64{{1, 0}, {0, 1}, {0.9, 0.9}, {0.1, 0.1}}
	set, hit, err := KHitExact2D(ctx, pts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 2 {
		t.Fatalf("set = %v, want [2]", set)
	}
	if hit <= 0.5 || hit > 1 {
		t.Fatalf("hit probability = %v", hit)
	}
	// k = n covers everything.
	_, hitAll, err := KHitExact2D(ctx, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hitAll-1) > 1e-9 {
		t.Fatalf("full-set hit probability = %v", hitAll)
	}
	if _, _, err := KHitExact2D(ctx, pts, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := KHitExact2D(cctx, pts, 1); err == nil {
		t.Fatal("canceled context must error")
	}
}

// The exact 2-d k-hit must agree with the sampled k-hit on a shared
// uniform-box instance (up to sampling ties).
func TestKHitExactMatchesSampled(t *testing.T) {
	ctx := context.Background()
	g := rng.New(61)
	pts := make([][]float64, 30)
	for i := range pts {
		pts[i] = []float64{g.Float64(), g.Float64()}
	}
	boxDist, err := utility.NewUniformBoxLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := sampling.Sample(boxDist, 30000, rng.New(62))
	if err != nil {
		t.Fatal(err)
	}
	in, err := core.NewInstance(pts, funcs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	exactSet, exactHit, err := KHitExact2D(ctx, pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	sampledSet, err := KHit(ctx, in, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The sampled set's exact hit probability can differ only by sampling
	// noise from the optimum.
	masses, err := geom.FavoriteMasses(pts)
	if err != nil {
		t.Fatal(err)
	}
	var sampledHit float64
	for _, p := range sampledSet {
		sampledHit += masses[p]
	}
	if exactHit < sampledHit-1e-9 {
		t.Fatalf("exact k-hit %v (%v) worse than sampled %v (%v)", exactHit, exactSet, sampledHit, sampledSet)
	}
	if exactHit-sampledHit > 0.05 {
		t.Fatalf("sampled k-hit far from optimum: %v vs %v", sampledHit, exactHit)
	}
}

func TestKHitMatchesShrinkClosely(t *testing.T) {
	// The paper observes K-HIT comes close to GREEDY-SHRINK on arr.
	g := rng.New(41)
	pts := randPoints(g, 80, 3)
	in := linearInstance(t, pts, 2000, 42)
	ctx := context.Background()
	gsSet, _, err := core.GreedyShrink(ctx, in, 10, core.StrategyDelta)
	if err != nil {
		t.Fatal(err)
	}
	khSet, err := KHit(ctx, in, 10)
	if err != nil {
		t.Fatal(err)
	}
	gsARR, _ := in.ARR(gsSet)
	khARR, _ := in.ARR(khSet)
	if math.Abs(gsARR-khARR) > 0.05 {
		t.Fatalf("k-hit arr %v far from greedy-shrink arr %v", khARR, gsARR)
	}
}
