package baseline

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/skyline"
)

// skyDomPoints generates a mildly anticorrelated cloud so the skyline is
// large enough that both sharded loops (dominance sets and per-round
// gains) actually fan out.
func skyDomPoints(g *rng.RNG, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		base := g.Float64()
		for j := range p {
			p[j] = 0.7*(1-base) + 0.3*g.Float64()
		}
		p[0] = base
		pts[i] = p
	}
	return pts
}

// SkyDom's sharded dominance sets and gain reductions must reproduce the
// serial lowest-index greedy bit for bit at any worker count.
func TestSkyDomParallelMatchesSerial(t *testing.T) {
	ctx := context.Background()
	g := rng.New(47)
	pts := skyDomPoints(g, 600, 4)
	for _, k := range []int{1, 5, 12} {
		ref, err := SkyDom(ctx, pts, k, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8, 0} {
			got, err := SkyDom(ctx, pts, k, workers, nil)
			if err != nil {
				t.Fatalf("k=%d workers=%d: %v", k, workers, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("k=%d workers=%d: %v != %v", k, workers, got, ref)
			}
		}
	}
}

// DominanceSets must build identical bitsets at any worker count.
func TestDominanceSetsParallelMatchesSerial(t *testing.T) {
	g := rng.New(53)
	pts := skyDomPoints(g, 400, 3)
	sky, err := skyline.Compute(pts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := skyline.DominanceSets(nil, pts, sky, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 0} {
		got, err := skyline.DominanceSets(nil, pts, sky, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d sets, want %d", workers, len(got), len(ref))
		}
		for i := range got {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("workers=%d: dominance set %d diverged", workers, i)
			}
		}
	}
}

// Cancellation must be honored from inside the sharded loops.
func TestSkyDomParallelPreCanceled(t *testing.T) {
	g := rng.New(59)
	pts := skyDomPoints(g, 300, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SkyDom(ctx, pts, 4, 4, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The coverage/hit helpers must reject malformed sets with the typed
// ErrInvalidSet: empty, duplicate, and out-of-range indices.
func TestBaselineSetValidation(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}}
	cases := []struct {
		name string
		set  []int
	}{
		{"empty", nil},
		{"duplicate", []int{0, 0}},
		{"negative", []int{-1}},
		{"out of range", []int{3}},
		{"larger than db", []int{0, 1, 2, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DominanceCoverage(pts, tc.set); !errors.Is(err, ErrInvalidSet) {
				t.Fatalf("DominanceCoverage(%v): err = %v, want ErrInvalidSet", tc.set, err)
			}
		})
	}
	// Valid set sanity: neither extreme point dominates (0.5, 0.5).
	if cov, err := DominanceCoverage(pts, []int{0, 1}); err != nil || cov != 0 {
		t.Fatalf("valid set: cov=%d err=%v", cov, err)
	}
	if cov, err := DominanceCoverage([][]float64{{1, 1}, {0, 1}, {0.5, 0.5}}, []int{0}); err != nil || cov != 2 {
		t.Fatalf("dominating set: cov=%d err=%v", cov, err)
	}
}
