package baseline

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/par"
)

// KHit implements the k-hit query of Peng and Wong (SIGMOD 2015) under the
// sampled distribution Θ: find the k points maximizing the probability
// that a random user's favorite database point belongs to the set. Because
// each user has exactly one favorite point, the hit probability of a set
// is the sum of its members' favorite-point probabilities, so the sampled
// optimum is exactly the k points with the highest favorite counts.
// (Peng and Wong compute these probabilities geometrically; the Monte-Carlo
// estimate over the instance's N sampled users preserves the objective —
// see DESIGN.md, substitution table.)
func KHit(ctx context.Context, in *core.Instance, k int) ([]int, error) {
	if in == nil {
		return nil, errors.New("baseline: nil instance")
	}
	n := in.NumPoints()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Tally favorite points with one count array per worker; integer
	// merges are order-independent, so the histogram — and the selection —
	// is identical at any worker bound.
	N := in.NumFuncs()
	nw := par.Bounded(in.Parallelism(), N) // per-user work is one lookup; shed workers on small N
	local := make([][]int, nw)
	if err := in.Pool().Shards(ctx, nw, N, func(w, lo, hi int) {
		counts := make([]int, n)
		for u := lo; u < hi; u++ {
			if ctx.Err() != nil {
				return
			}
			if b, _ := in.BestInDatabase(u); b >= 0 {
				counts[b]++
			}
		}
		local[w] = counts
	}); err != nil {
		return nil, err
	}
	counts := make([]int, n)
	for _, lc := range local {
		if lc == nil {
			continue
		}
		for p, c := range lc {
			counts[p] += c
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// Highest favorite count first; ties to the lower index for
	// determinism.
	sort.SliceStable(order, func(a, b int) bool {
		if counts[order[a]] != counts[order[b]] {
			return counts[order[a]] > counts[order[b]]
		}
		return order[a] < order[b]
	})
	selected := append([]int(nil), order[:k]...)
	sort.Ints(selected)
	return selected, nil
}

// KHitExact2D solves the k-hit query exactly for 2-d databases under
// linear utilities with weights uniform on [0,1]²: each point's
// favorite-point probability is its envelope mass (geom.FavoriteMasses),
// and the optimal set is the k most probable favorites. It returns the
// selected indices (ascending) and the exact hit probability achieved.
func KHitExact2D(ctx context.Context, points [][]float64, k int) ([]int, float64, error) {
	if k <= 0 || k > len(points) {
		return nil, 0, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, len(points))
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	masses, err := geom.FavoriteMasses(points)
	if err != nil {
		return nil, 0, err
	}
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if masses[order[a]] != masses[order[b]] {
			return masses[order[a]] > masses[order[b]]
		}
		return order[a] < order[b]
	})
	selected := append([]int(nil), order[:k]...)
	var hit float64
	for _, p := range selected {
		hit += masses[p]
	}
	sort.Ints(selected)
	return selected, hit, nil
}

// HitProbability estimates the k-hit objective of a set: the fraction of
// sampled users whose favorite database point is in the set. The set must
// be non-empty with valid, distinct indices (ErrInvalidSet otherwise).
func HitProbability(in *core.Instance, set []int) (float64, error) {
	if in == nil {
		return 0, errors.New("baseline: nil instance")
	}
	if err := core.ValidateSet(set, in.NumPoints()); err != nil {
		return 0, err
	}
	inSet := make(map[int]bool, len(set))
	for _, p := range set {
		inSet[p] = true
	}
	hits := 0
	for u := 0; u < in.NumFuncs(); u++ {
		if b, _ := in.BestInDatabase(u); b >= 0 && inSet[b] {
			hits++
		}
	}
	return float64(hits) / float64(in.NumFuncs()), nil
}
