package baseline

import (
	"context"
	"fmt"
	"sort"

	"github.com/regretlab/fam/internal/bitset"
	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/skyline"
)

// SkyDom implements the representative-skyline selection of Lin et al.
// (ICDE 2007): choose k skyline points that together dominate the largest
// number of database points. Maximizing dominance coverage is a max-cover
// instance, solved greedily (the classic (1−1/e) heuristic, which is also
// what makes SKY-DOM expensive on large skylines — visible in the paper's
// query-time plots).
func SkyDom(ctx context.Context, points [][]float64, k int) ([]int, error) {
	if _, err := point.Validate(points); err != nil {
		return nil, err
	}
	n := len(points)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	sky, err := skyline.Compute(points)
	if err != nil {
		return nil, err
	}
	domSets := skyline.DominanceSets(points, sky)

	covered := bitset.New(n)
	used := make([]bool, len(sky))
	var selected []int
	for len(selected) < k && len(selected) < len(sky) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		bestIdx, bestGain := -1, -1
		for i := range sky {
			if used[i] {
				continue
			}
			gain := covered.AndNotCount(domSets[i])
			if gain > bestGain {
				bestIdx, bestGain = i, gain
			}
		}
		if bestIdx == -1 {
			break
		}
		used[bestIdx] = true
		covered.UnionWith(domSets[bestIdx])
		selected = append(selected, sky[bestIdx])
	}
	// If the skyline is smaller than k, pad with the lowest-index
	// non-skyline points so the result always has k members.
	if len(selected) < k {
		inSel := make(map[int]bool, len(selected))
		for _, p := range selected {
			inSel[p] = true
		}
		for p := 0; p < n && len(selected) < k; p++ {
			if !inSel[p] {
				selected = append(selected, p)
			}
		}
	}
	sort.Ints(selected)
	return selected, nil
}

// DominanceCoverage returns how many points of the database are dominated
// by at least one member of the set — the objective SkyDom maximizes.
func DominanceCoverage(points [][]float64, set []int) (int, error) {
	if _, err := point.Validate(points); err != nil {
		return 0, err
	}
	covered := bitset.New(len(points))
	for _, s := range set {
		if s < 0 || s >= len(points) {
			return 0, fmt.Errorf("baseline: point index %d out of range", s)
		}
		for j := range points {
			if j != s && point.Dominates(points[s], points[j]) {
				covered.Add(j)
			}
		}
	}
	return covered.Count(), nil
}
