package baseline

import (
	"context"
	"fmt"
	"sort"

	"github.com/regretlab/fam/internal/bitset"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/skyline"
)

// ErrInvalidSet is returned when an explicit selection set is empty,
// larger than the database, contains an out-of-range index, or repeats an
// index. It is core.ErrInvalidSet, so one errors.Is target matches the
// whole library; validation goes through core.ValidateSet.
var ErrInvalidSet = core.ErrInvalidSet

// SkyDom implements the representative-skyline selection of Lin et al.
// (ICDE 2007): choose k skyline points that together dominate the largest
// number of database points. Maximizing dominance coverage is a max-cover
// instance, solved greedily (the classic (1−1/e) heuristic, which is also
// what makes SKY-DOM expensive on large skylines — visible in the paper's
// query-time plots).
//
// Both hot loops are sharded across `workers` goroutines (0 = all CPUs,
// 1 = serial), dispatched on the optional externally owned pool (nil
// spawns per-call goroutines): the per-candidate dominance sets are built
// concurrently, and each greedy round fans the per-candidate coverage
// gains out across the workers. Every worker keeps the first strict
// maximum of its ascending index block and the merge visits workers in
// ascending order with a strict comparison, so the selected set is
// bit-identical to the serial lowest-index tie-break at any worker count.
func SkyDom(ctx context.Context, points [][]float64, k, workers int, pool *par.Pool) ([]int, error) {
	if _, err := point.Validate(points); err != nil {
		return nil, err
	}
	n := len(points)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	sky, err := skyline.ComputeOpts(ctx, points, skyline.ComputeOptions{Workers: workers, Pool: pool})
	if err != nil {
		return nil, err
	}
	domSets, err := skyline.DominanceSets(ctx, points, sky, workers, pool)
	if err != nil {
		return nil, err
	}

	covered := bitset.New(n)
	used := make([]bool, len(sky))
	// Gain scans cost O(n/64) each — cheap items, so workers shed on small
	// skylines rather than paying dispatch for nothing.
	nw := par.Bounded(workers, len(sky))
	type best struct {
		idx, gain int
	}
	locals := make([]best, nw)
	var selected []int
	for len(selected) < k && len(selected) < len(sky) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for w := range locals {
			locals[w] = best{idx: -1, gain: -1}
		}
		if err := pool.Shards(ctx, nw, len(sky), func(w, lo, hi int) {
			b := best{idx: -1, gain: -1}
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				if used[i] {
					continue
				}
				if gain := covered.AndNotCount(domSets[i]); gain > b.gain {
					b = best{idx: i, gain: gain}
				}
			}
			locals[w] = b
		}); err != nil {
			return nil, err
		}
		// Ascending worker blocks + strict comparison = serial first-max.
		bestIdx, bestGain := -1, -1
		for _, b := range locals {
			if b.idx >= 0 && b.gain > bestGain {
				bestIdx, bestGain = b.idx, b.gain
			}
		}
		if bestIdx == -1 {
			break
		}
		used[bestIdx] = true
		covered.UnionWith(domSets[bestIdx])
		selected = append(selected, sky[bestIdx])
	}
	// If the skyline is smaller than k, pad with the lowest-index
	// non-skyline points so the result always has k members.
	if len(selected) < k {
		inSel := make(map[int]bool, len(selected))
		for _, p := range selected {
			inSel[p] = true
		}
		for p := 0; p < n && len(selected) < k; p++ {
			if !inSel[p] {
				selected = append(selected, p)
			}
		}
	}
	sort.Ints(selected)
	return selected, nil
}

// DominanceCoverage returns how many points of the database are dominated
// by at least one member of the set — the objective SkyDom maximizes. The
// set must be non-empty with valid, distinct indices (ErrInvalidSet
// otherwise).
func DominanceCoverage(points [][]float64, set []int) (int, error) {
	if _, err := point.Validate(points); err != nil {
		return 0, err
	}
	if err := core.ValidateSet(set, len(points)); err != nil {
		return 0, err
	}
	covered := bitset.New(len(points))
	for _, s := range set {
		for j := range points {
			if j != s && point.Dominates(points[s], points[j]) {
				covered.Add(j)
			}
		}
	}
	return covered.Count(), nil
}
