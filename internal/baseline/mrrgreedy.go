// Package baseline implements the three competitor algorithms of the
// paper's evaluation (Section V):
//
//   - MRR-GREEDY — the greedy max-regret-ratio minimizer of Nanongkai et
//     al. (VLDB 2010), in both the LP-exact form for linear utilities and a
//     sampled form for arbitrary distributions.
//   - SKY-DOM — the representative-skyline algorithm of Lin et al.
//     (ICDE 2007): pick the k skyline points that together dominate the
//     most points.
//   - K-HIT — the k-hit query of Peng and Wong (SIGMOD 2015): pick the k
//     points maximizing the probability that a random user's favorite
//     point is among them.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/lp"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/point"
)

// ErrBadK is returned when k is out of (0, n].
var ErrBadK = errors.New("baseline: k must satisfy 0 < k <= n")

// MRRGreedyLP runs the RDP-GREEDY algorithm of Nanongkai et al. for linear
// utility functions with non-negative weights: the first point maximizes
// the first attribute; each subsequent step adds the point that currently
// realizes the maximum regret ratio against the selected set. The regret
// ratio of candidate p against set S is evaluated exactly by the LP
//
//	minimize  z   subject to   w·q ≤ z (q ∈ S),  w·p = 1,  w ≥ 0,
//
// whose optimum z* gives regret ratio 1 − z*.
//
// The per-candidate LPs of one greedy step are independent, so they are
// sharded across `workers` goroutines (0 = all CPUs, 1 = serial),
// dispatched on the optional externally owned pool (nil spawns per-call
// goroutines); each worker tracks the strict maximum of its contiguous
// candidate block and the blocks are merged in index order, reproducing
// the serial lowest-index tie-break exactly.
func MRRGreedyLP(ctx context.Context, points [][]float64, k, workers int, pool *par.Pool) ([]int, error) {
	d, err := point.Validate(points)
	if err != nil {
		return nil, err
	}
	n := len(points)
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}

	// Seed: the point with the largest first attribute (ties: lowest idx).
	first := 0
	for p := 1; p < n; p++ {
		if points[p][0] > points[first][0] {
			first = p
		}
	}
	selected := []int{first}
	inSet := make([]bool, n)
	inSet[first] = true

	// Each item is a full LP solve — expensive enough that fan-out pays
	// even for a handful of candidates, so no grain bound (par.Workers,
	// not par.Bounded).
	nw := par.Workers(workers, n)
	worsts := make([]int, nw)
	worstRRs := make([]float64, nw)
	errs := make([]error, nw)
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := pool.Shards(ctx, nw, n, func(w, lo, hi int) {
			worsts[w], worstRRs[w], errs[w] = -1, -1.0, nil
			for p := lo; p < hi; p++ {
				if ctx.Err() != nil {
					return
				}
				if inSet[p] {
					continue
				}
				rr, err := regretRatioLP(points, selected, p, d)
				if err != nil {
					errs[w] = err
					return
				}
				if rr > worstRRs[w] {
					worsts[w], worstRRs[w] = p, rr
				}
			}
		}); err != nil {
			return nil, err
		}
		worst, worstRR := -1, -1.0
		for w := 0; w < nw; w++ {
			if errs[w] != nil {
				return nil, errs[w]
			}
			if worsts[w] >= 0 && worstRRs[w] > worstRR {
				worst, worstRR = worsts[w], worstRRs[w]
			}
		}
		if worst == -1 || worstRR <= 1e-12 {
			// Remaining points add nothing (max regret ratio already 0);
			// fill with the lowest-index leftovers to reach k.
			for p := 0; p < n && len(selected) < k; p++ {
				if !inSet[p] {
					selected = append(selected, p)
					inSet[p] = true
				}
			}
			break
		}
		selected = append(selected, worst)
		inSet[worst] = true
	}
	sort.Ints(selected)
	return selected, nil
}

// MaxRegretRatioLP evaluates the exact maximum regret ratio of the set
// over all non-negative linear utility functions: max over p ∈ D of the
// per-candidate LP optimum.
func MaxRegretRatioLP(ctx context.Context, points [][]float64, set []int) (float64, error) {
	d, err := point.Validate(points)
	if err != nil {
		return 0, err
	}
	if len(set) == 0 {
		return 1, nil
	}
	var worst float64
	for p := range points {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		rr, err := regretRatioLP(points, set, p, d)
		if err != nil {
			return 0, err
		}
		if rr > worst {
			worst = rr
		}
	}
	return worst, nil
}

// regretRatioLP computes max_w (w·p − max_{q∈S} w·q)/(w·p) over w ≥ 0 via
// the normalization w·p = 1.
func regretRatioLP(points [][]float64, set []int, p, d int) (float64, error) {
	// Variables: x = [w_1..w_d, z]. Minimize z.
	nv := d + 1
	c := make([]float64, nv)
	c[d] = 1
	a := make([][]float64, 0, len(set)+1)
	b := make([]float64, 0, len(set)+1)
	rel := make([]lp.Relation, 0, len(set)+1)
	for _, q := range set {
		row := make([]float64, nv)
		copy(row, points[q])
		row[d] = -1 // w·q − z ≤ 0
		a = append(a, row)
		b = append(b, 0)
		rel = append(rel, lp.LE)
	}
	row := make([]float64, nv)
	copy(row, points[p])
	a = append(a, row)
	b = append(b, 1)
	rel = append(rel, lp.EQ)

	sol, err := lp.Solve(lp.Problem{C: c, A: a, B: b, Rel: rel})
	if err != nil {
		return 0, fmt.Errorf("baseline: regret LP for point %d: %w", p, err)
	}
	switch sol.Status {
	case lp.Optimal:
		rr := 1 - sol.Value
		if rr < 0 {
			rr = 0
		}
		if rr > 1 {
			rr = 1
		}
		return rr, nil
	case lp.Infeasible:
		// w·p = 1 unreachable (p is the origin): p causes no regret.
		return 0, nil
	default:
		return 0, fmt.Errorf("baseline: regret LP for point %d is %v", p, sol.Status)
	}
}

// MRRGreedySampled is the distribution-aware analogue used when utilities
// are not linear (e.g. the learned Θ of the Yahoo! pipeline): the max
// regret ratio is taken over the instance's sampled utility functions, and
// each greedy step adds the point realizing the current sampled maximum.
//
// The per-user scans (worst-regret search and best-value refresh) are
// sharded across the instance's worker bound with the lowest-index merge,
// so the selection is bit-identical to a serial run.
func MRRGreedySampled(ctx context.Context, in *core.Instance, k int) ([]int, error) {
	if in == nil {
		return nil, errors.New("baseline: nil instance")
	}
	n, N := in.NumPoints(), in.NumFuncs()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	// Per-user work here is a handful of lookups, so small user samples
	// shed workers (par.Bounded) instead of paying dispatch for nothing.
	nw := par.Bounded(in.Parallelism(), N)

	// bestVal[u] = user u's best utility within the selected set.
	bestVal := make([]float64, N)
	inSet := make([]bool, n)

	// Seed with the point maximizing the first attribute when points carry
	// attributes; Table-based instances fall back to the point with the
	// highest total sampled utility.
	first := 0
	for p := 1; p < n; p++ {
		if in.Points[p][0] > in.Points[first][0] {
			first = p
		}
	}
	add := func(p int) error {
		inSet[p] = true
		return in.Pool().Shards(ctx, nw, N, func(w, lo, hi int) {
			for u := lo; u < hi; u++ {
				if ctx.Err() != nil {
					return
				}
				if v := in.Utility(u, p); v > bestVal[u] {
					bestVal[u] = v
				}
			}
		})
	}
	if err := add(first); err != nil {
		return nil, err
	}
	selected := []int{first}

	worstUs := make([]int, nw)
	worstRRs := make([]float64, nw)
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The user with the worst current regret ratio identifies the
		// point to add (their favorite). Each worker keeps the strict
		// maximum of its contiguous user block; merging blocks in order
		// preserves the serial lowest-user tie-break.
		if err := in.Pool().Shards(ctx, nw, N, func(w, lo, hi int) {
			worstUs[w], worstRRs[w] = -1, -1.0
			for u := lo; u < hi; u++ {
				if ctx.Err() != nil {
					return
				}
				satD := 0.0
				if b, s := in.BestInDatabase(u); b >= 0 {
					satD = s
				} else {
					continue
				}
				rr := (satD - bestVal[u]) / satD
				if rr > worstRRs[w] {
					worstUs[w], worstRRs[w] = u, rr
				}
			}
		}); err != nil {
			return nil, err
		}
		worstU, worstRR := -1, -1.0
		for w := 0; w < nw; w++ {
			if worstUs[w] >= 0 && worstRRs[w] > worstRR {
				worstU, worstRR = worstUs[w], worstRRs[w]
			}
		}
		if worstU == -1 || worstRR <= 1e-12 {
			for p := 0; p < n && len(selected) < k; p++ {
				if !inSet[p] {
					selected = append(selected, p)
					inSet[p] = true
				}
			}
			break
		}
		b, _ := in.BestInDatabase(worstU)
		if inSet[b] {
			// Favorite already selected yet regret > 0 is impossible;
			// defensive fallback to the best unselected point for worstU.
			bestP, bestV := -1, -1.0
			for p := 0; p < n; p++ {
				if inSet[p] {
					continue
				}
				if v := in.Utility(worstU, p); v > bestV {
					bestP, bestV = p, v
				}
			}
			b = bestP
			if b == -1 {
				break
			}
		}
		if err := add(b); err != nil {
			return nil, err
		}
		selected = append(selected, b)
	}
	sort.Ints(selected)
	return selected, nil
}
