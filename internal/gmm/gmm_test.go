package gmm

import (
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
)

// twoClusterData builds two well-separated Gaussian blobs.
func twoClusterData(n int, seed uint64) [][]float64 {
	g := rng.New(seed)
	data := make([][]float64, n)
	for i := range data {
		var mu []float64
		if i%2 == 0 {
			mu = []float64{0, 0}
		} else {
			mu = []float64{6, 6}
		}
		data[i] = []float64{mu[0] + 0.5*g.Normal(), mu[1] + 0.5*g.Normal()}
	}
	return data
}

func TestFitRecoversTwoClusters(t *testing.T) {
	data := twoClusterData(400, 1)
	cfg := DefaultConfig()
	cfg.Components = 2
	cfg.Seed = 5
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Means should land near (0,0) and (6,6) in some order.
	near := func(mu []float64, x, y float64) bool {
		return math.Abs(mu[0]-x) < 0.5 && math.Abs(mu[1]-y) < 0.5
	}
	ok := (near(m.Means[0], 0, 0) && near(m.Means[1], 6, 6)) ||
		(near(m.Means[0], 6, 6) && near(m.Means[1], 0, 0))
	if !ok {
		t.Fatalf("means = %v", m.Means)
	}
	for _, w := range m.Weights {
		if math.Abs(w-0.5) > 0.1 {
			t.Fatalf("weights = %v", m.Weights)
		}
	}
}

func TestFitValidation(t *testing.T) {
	data := twoClusterData(20, 2)
	bad := []Config{
		{Components: 0, MaxIters: 10, Tol: 1e-6, Jitter: 1e-6},
		{Components: 21, MaxIters: 10, Tol: 1e-6, Jitter: 1e-6},
		{Components: 2, MaxIters: 0, Tol: 1e-6, Jitter: 1e-6},
		{Components: 2, MaxIters: 10, Tol: 0, Jitter: 1e-6},
		{Components: 2, MaxIters: 10, Tol: 1e-6, Jitter: -1},
	}
	for i, cfg := range bad {
		if _, err := Fit(data, cfg); err == nil {
			t.Errorf("bad config %d should error", i)
		}
	}
	if _, err := Fit(nil, DefaultConfig()); err == nil {
		t.Fatal("empty data must error")
	}
	if _, err := Fit([][]float64{{}}, DefaultConfig()); err == nil {
		t.Fatal("zero-dim data must error")
	}
	if _, err := Fit([][]float64{{1, 2}, {1}}, Config{Components: 1, MaxIters: 5, Tol: 1e-6, Jitter: 1e-6}); err == nil {
		t.Fatal("ragged data must error")
	}
}

// EM's defining property: the log-likelihood never decreases. We re-run
// Fit with increasing iteration caps and check the trajectory.
func TestLogLikelihoodMonotone(t *testing.T) {
	data := twoClusterData(200, 3)
	prev := math.Inf(-1)
	for _, iters := range []int{1, 2, 3, 5, 8, 13, 21} {
		cfg := Config{Components: 3, MaxIters: iters, Tol: 1e-12, Jitter: 1e-6, Seed: 9}
		m, err := Fit(data, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if m.LogLik < prev-1e-6 {
			t.Fatalf("log-likelihood decreased: %v -> %v at iters=%d", prev, m.LogLik, iters)
		}
		prev = m.LogLik
	}
}

func TestLogDensity(t *testing.T) {
	data := twoClusterData(300, 4)
	cfg := DefaultConfig()
	cfg.Components = 2
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nearCluster, _ := m.LogDensity([]float64{0, 0})
	farAway, _ := m.LogDensity([]float64{30, -30})
	if nearCluster <= farAway {
		t.Fatalf("density at cluster %v should exceed density far away %v", nearCluster, farAway)
	}
	if _, err := m.LogDensity([]float64{1}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
}

func TestSampleVectorDistribution(t *testing.T) {
	data := twoClusterData(400, 5)
	cfg := DefaultConfig()
	cfg.Components = 2
	cfg.Seed = 6
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.VectorDim() != 2 {
		t.Fatalf("VectorDim = %d", m.VectorDim())
	}
	g := rng.New(7)
	const n = 4000
	nearA, nearB := 0, 0
	for i := 0; i < n; i++ {
		v := m.SampleVector(g)
		da := math.Hypot(v[0], v[1])
		db := math.Hypot(v[0]-6, v[1]-6)
		if da < db {
			nearA++
		} else {
			nearB++
		}
	}
	// Samples should split roughly evenly across the two modes.
	if math.Abs(float64(nearA)/n-0.5) > 0.08 {
		t.Fatalf("mode split %d/%d", nearA, nearB)
	}
}

func TestSingleComponentMatchesMoments(t *testing.T) {
	g := rng.New(8)
	const n = 2000
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{2 + g.Normal(), -1 + 2*g.Normal()}
	}
	cfg := Config{Components: 1, MaxIters: 50, Tol: 1e-9, Jitter: 1e-9, Seed: 1}
	m, err := Fit(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Means[0][0]-2) > 0.1 || math.Abs(m.Means[0][1]+1) > 0.15 {
		t.Fatalf("mean = %v", m.Means[0])
	}
	// Covariance diagonal ~ [1, 4]: check via Cholesky reconstruction.
	l := m.Chols[0]
	var c00, c11 float64
	c00 = l.At(0, 0) * l.At(0, 0)
	c11 = l.At(1, 0)*l.At(1, 0) + l.At(1, 1)*l.At(1, 1)
	if math.Abs(c00-1) > 0.2 || math.Abs(c11-4) > 0.6 {
		t.Fatalf("covariance diag = %v %v", c00, c11)
	}
}

func TestFitDeterminism(t *testing.T) {
	data := twoClusterData(100, 9)
	cfg := DefaultConfig()
	cfg.Components = 2
	m1, err1 := Fit(data, cfg)
	m2, err2 := Fit(data, cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if m1.LogLik != m2.LogLik {
		t.Fatal("same seed must reproduce the fit")
	}
}
