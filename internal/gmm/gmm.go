// Package gmm implements a full-covariance Gaussian mixture model fitted
// with expectation-maximization. It is the second stage of the paper's
// Yahoo! pipeline (Section V-B2): "a Multivariate Gaussian Mixture Model
// with 5 mixture models" is fit over user utility representations learned
// by matrix factorization, and utility functions are then sampled from the
// mixture when estimating the average regret ratio.
package gmm

import (
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/vec"
)

// Config controls EM fitting.
type Config struct {
	Components int     // number of mixture components (the paper uses 5)
	MaxIters   int     // EM iteration cap
	Tol        float64 // relative log-likelihood improvement for convergence
	Jitter     float64 // diagonal regularization added to covariances
	Seed       uint64  // RNG seed for initialization
}

// DefaultConfig mirrors the paper's 5-component mixture.
func DefaultConfig() Config {
	return Config{Components: 5, MaxIters: 200, Tol: 1e-6, Jitter: 1e-6, Seed: 1}
}

// Model is a fitted mixture. Covariances are stored via their Cholesky
// factors, which is what both density evaluation and sampling need.
type Model struct {
	Weights []float64     // mixing proportions, sum to 1
	Means   [][]float64   // component means
	Chols   []*vec.Matrix // lower Cholesky factors of the covariances
	Dim     int
	// LogLik is the final training log-likelihood (monotonically
	// non-decreasing across EM iterations; verified in tests).
	LogLik float64
	Iters  int
}

// ErrBadInput reports invalid fitting inputs.
var ErrBadInput = errors.New("gmm: bad input")

// Fit runs EM on the data rows.
func Fit(data [][]float64, cfg Config) (*Model, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty data", ErrBadInput)
	}
	dim := len(data[0])
	if dim == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional data", ErrBadInput)
	}
	for i, row := range data {
		if len(row) != dim {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrBadInput, i, len(row), dim)
		}
	}
	if cfg.Components <= 0 || cfg.Components > len(data) {
		return nil, fmt.Errorf("%w: %d components for %d rows", ErrBadInput, cfg.Components, len(data))
	}
	if cfg.MaxIters <= 0 || cfg.Tol <= 0 || cfg.Jitter < 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadInput, cfg)
	}
	g := rng.New(cfg.Seed)
	k, n := cfg.Components, len(data)

	m := &Model{
		Weights: make([]float64, k),
		Means:   make([][]float64, k),
		Chols:   make([]*vec.Matrix, k),
		Dim:     dim,
	}
	// k-means++-style seeding for the means; shared diagonal covariance.
	m.Means[0] = vec.Clone(data[g.IntN(n)])
	dists := make([]float64, n)
	for c := 1; c < k; c++ {
		for i, row := range data {
			best := math.Inf(1)
			for _, mu := range m.Means[:c] {
				d := sqDist(row, mu)
				if d < best {
					best = d
				}
			}
			dists[i] = best
		}
		m.Means[c] = vec.Clone(data[g.Categorical(dists)])
	}
	varTotal := dataVariance(data)
	if varTotal <= 0 {
		varTotal = 1
	}
	for c := 0; c < k; c++ {
		m.Weights[c] = 1 / float64(k)
		cov := vec.NewMatrix(dim, dim)
		cov.AddDiagonal(varTotal + cfg.Jitter)
		chol, err := cov.Cholesky()
		if err != nil {
			return nil, fmt.Errorf("gmm: initial covariance: %w", err)
		}
		m.Chols[c] = chol
	}

	resp := vec.NewMatrix(n, k) // responsibilities
	prev := math.Inf(-1)
	for iter := 1; iter <= cfg.MaxIters; iter++ {
		// E step.
		var ll float64
		for i, row := range data {
			ri := resp.Row(i)
			maxLog := math.Inf(-1)
			for c := 0; c < k; c++ {
				lp := math.Log(m.Weights[c]) + m.logDensity(c, row)
				ri[c] = lp
				if lp > maxLog {
					maxLog = lp
				}
			}
			var sum float64
			for c := 0; c < k; c++ {
				ri[c] = math.Exp(ri[c] - maxLog)
				sum += ri[c]
			}
			for c := 0; c < k; c++ {
				ri[c] /= sum
			}
			ll += maxLog + math.Log(sum)
		}
		m.LogLik = ll
		m.Iters = iter

		// M step.
		for c := 0; c < k; c++ {
			var nc float64
			mu := make([]float64, dim)
			for i, row := range data {
				r := resp.At(i, c)
				nc += r
				vec.AddScaled(mu, r, row)
			}
			if nc < 1e-10 {
				// Dead component: re-seed on the farthest point.
				worst, wi := -1.0, 0
				for i, row := range data {
					d := sqDist(row, m.Means[c])
					if d > worst {
						worst, wi = d, i
					}
				}
				m.Means[c] = vec.Clone(data[wi])
				m.Weights[c] = 1e-6
				continue
			}
			vec.Scale(mu, 1/nc)
			cov := vec.NewMatrix(dim, dim)
			diff := make([]float64, dim)
			for i, row := range data {
				r := resp.At(i, c)
				if r == 0 {
					continue
				}
				for j := range diff {
					diff[j] = row[j] - mu[j]
				}
				for a := 0; a < dim; a++ {
					ca := cov.Row(a)
					da := r * diff[a]
					for b := 0; b < dim; b++ {
						ca[b] += da * diff[b]
					}
				}
			}
			for i := range cov.Data {
				cov.Data[i] /= nc
			}
			cov.AddDiagonal(cfg.Jitter)
			chol, err := cov.Cholesky()
			if err != nil {
				// Degenerate covariance: inflate the diagonal until SPD.
				cov.AddDiagonal(1e-3)
				chol, err = cov.Cholesky()
				if err != nil {
					return nil, fmt.Errorf("gmm: component %d covariance: %w", c, err)
				}
			}
			m.Means[c] = mu
			m.Chols[c] = chol
			m.Weights[c] = nc / float64(n)
		}
		normalize(m.Weights)

		if ll-prev < cfg.Tol*math.Abs(ll) && iter > 1 {
			break
		}
		prev = ll
	}
	return m, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func dataVariance(data [][]float64) float64 {
	dim := len(data[0])
	mean := make([]float64, dim)
	for _, row := range data {
		vec.AddScaled(mean, 1, row)
	}
	vec.Scale(mean, 1/float64(len(data)))
	var s float64
	for _, row := range data {
		s += sqDist(row, mean)
	}
	return s / float64(len(data)*dim)
}

func normalize(w []float64) {
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum == 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= sum
	}
}

// logDensity evaluates the log N(x | mean_c, Sigma_c) via the Cholesky
// factor: solve L y = (x - mu), then logpdf = -1/2 (y·y + logdet + d ln 2π).
func (m *Model) logDensity(c int, x []float64) float64 {
	diff := vec.Sub(x, m.Means[c])
	y, err := m.Chols[c].SolveLower(diff)
	if err != nil {
		return math.Inf(-1)
	}
	var quad float64
	for _, v := range y {
		quad += v * v
	}
	return -0.5 * (quad + m.Chols[c].LogDetLower() + float64(m.Dim)*math.Log(2*math.Pi))
}

// LogDensity evaluates the mixture log-density at x.
func (m *Model) LogDensity(x []float64) (float64, error) {
	if len(x) != m.Dim {
		return 0, fmt.Errorf("%w: point dim %d, model dim %d", ErrBadInput, len(x), m.Dim)
	}
	maxLog := math.Inf(-1)
	logs := make([]float64, len(m.Weights))
	for c := range m.Weights {
		logs[c] = math.Log(m.Weights[c]) + m.logDensity(c, x)
		if logs[c] > maxLog {
			maxLog = logs[c]
		}
	}
	var sum float64
	for _, lp := range logs {
		sum += math.Exp(lp - maxLog)
	}
	return maxLog + math.Log(sum), nil
}

// SampleVector draws one vector from the mixture. It implements
// utility.VectorSampler so a fitted model can directly serve as the weight
// distribution of a latent-linear Θ.
func (m *Model) SampleVector(g *rng.RNG) []float64 {
	c := g.Categorical(m.Weights)
	z := make([]float64, m.Dim)
	g.NormalVec(z)
	// x = mu + L z.
	out := vec.Clone(m.Means[c])
	l := m.Chols[c]
	for i := 0; i < m.Dim; i++ {
		row := l.Row(i)
		var s float64
		for j := 0; j <= i; j++ {
			s += row[j] * z[j]
		}
		out[i] += s
	}
	return out
}

// VectorDim implements utility.VectorSampler.
func (m *Model) VectorDim() int { return m.Dim }
