package mf

import (
	"math"
	"testing"

	"github.com/regretlab/fam/internal/dataset"
)

func trainSmall(t *testing.T) (*dataset.RatingsData, *Model) {
	t.Helper()
	data, err := dataset.SimulatedRatings(80, 40, 3, 3, 0.6, 0.02, 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Seed = 2
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return data, m
}

func TestTrainReducesRMSE(t *testing.T) {
	data, m := trainSmall(t)
	// Baseline: predicting the global mean for everything.
	var sum float64
	for _, r := range data.Ratings {
		sum += r.Score
	}
	mean := sum / float64(len(data.Ratings))
	var se float64
	for _, r := range data.Ratings {
		d := r.Score - mean
		se += d * d
	}
	baseline := math.Sqrt(se / float64(len(data.Ratings)))
	got, err := m.RMSE(data.Ratings)
	if err != nil {
		t.Fatal(err)
	}
	if got >= baseline*0.5 {
		t.Fatalf("training RMSE %v should beat mean baseline %v by 2x", got, baseline)
	}
}

func TestGeneralization(t *testing.T) {
	// Train on a sparse sample; check predictions correlate with the
	// planted scores on held-out cells.
	data, err := dataset.SimulatedRatings(100, 50, 3, 3, 0.4, 0.02, 21)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Seed = 3
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed := make(map[[2]int]bool, len(data.Ratings))
	for _, r := range data.Ratings {
		observed[[2]int{r.User, r.Item}] = true
	}
	// Pearson correlation between predicted and planted on unobserved cells.
	var xs, ys []float64
	for u := 0; u < data.NumUsers; u++ {
		for i := 0; i < data.NumItems; i++ {
			if observed[[2]int{u, i}] {
				continue
			}
			var truth float64
			for f := 0; f < 3; f++ {
				truth += data.TrueUserF[u][f] * data.TrueItemF[i][f]
			}
			xs = append(xs, truth)
			ys = append(ys, m.Predict(u, i))
		}
	}
	if len(xs) < 100 {
		t.Fatalf("too few held-out cells: %d", len(xs))
	}
	if r := pearson(xs, ys); r < 0.8 {
		t.Fatalf("held-out correlation %v < 0.8", r)
	}
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, syy, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		syy += y[i] * y[i]
		sxy += x[i] * y[i]
	}
	cov := sxy/n - sx/n*sy/n
	vx := sxx/n - sx/n*sx/n
	vy := syy/n - sy/n*sy/n
	return cov / math.Sqrt(vx*vy)
}

func TestTrainValidation(t *testing.T) {
	data, _ := dataset.SimulatedRatings(10, 10, 2, 2, 0.5, 0, 1)
	bad := []Config{
		{Rank: 0, Epochs: 1, LearnRate: 0.1, InitScale: 0.1},
		{Rank: 2, Epochs: 0, LearnRate: 0.1, InitScale: 0.1},
		{Rank: 2, Epochs: 1, LearnRate: 0, InitScale: 0.1},
		{Rank: 2, Epochs: 1, LearnRate: 0.1, Reg: -1, InitScale: 0.1},
		{Rank: 2, Epochs: 1, LearnRate: 0.1, InitScale: 0},
	}
	for i, cfg := range bad {
		if _, err := Train(data, cfg); err == nil {
			t.Errorf("bad config %d should error", i)
		}
	}
	if _, err := Train(nil, DefaultConfig(2)); err == nil {
		t.Fatal("nil data must error")
	}
	if _, err := Train(&dataset.RatingsData{NumUsers: 2, NumItems: 2,
		Ratings: []dataset.Rating{{User: 5, Item: 0, Score: 1}}}, DefaultConfig(2)); err == nil {
		t.Fatal("out-of-range rating must error")
	}
}

func TestPredictBounds(t *testing.T) {
	_, m := trainSmall(t)
	if got := m.Predict(-1, 0); got != m.GlobalMean {
		t.Fatalf("out-of-range user should predict mean, got %v", got)
	}
	if got := m.Predict(0, 9999); got != m.GlobalMean {
		t.Fatalf("out-of-range item should predict mean, got %v", got)
	}
}

func TestRMSEEmpty(t *testing.T) {
	_, m := trainSmall(t)
	if _, err := m.RMSE(nil); err == nil {
		t.Fatal("empty RMSE must error")
	}
}

func TestCompletedUtilityRowNonNegative(t *testing.T) {
	data, m := trainSmall(t)
	row := m.CompletedUtilityRow(0)
	if len(row) != data.NumItems {
		t.Fatalf("row length %d", len(row))
	}
	for _, v := range row {
		if v < 0 {
			t.Fatal("completed utilities must be non-negative")
		}
	}
}

func TestWeightVectorItemPointsConsistency(t *testing.T) {
	_, m := trainSmall(t)
	points := m.ItemPoints()
	users := m.UserVectors()
	for u := 0; u < 5; u++ {
		w := WeightVector(users[u])
		if len(w) != m.Rank+2 || len(points[0]) != m.Rank+2 {
			t.Fatalf("layout mismatch: %d vs %d", len(w), len(points[0]))
		}
		for i := 0; i < 5; i++ {
			var dot float64
			for j := range w {
				dot += w[j] * points[i][j]
			}
			if math.Abs(dot-m.Predict(u, i)) > 1e-9 {
				t.Fatalf("dot(%d,%d) = %v, Predict = %v", u, i, dot, m.Predict(u, i))
			}
		}
	}
}

func TestNonNegGate(t *testing.T) {
	data, _ := dataset.SimulatedRatings(40, 20, 2, 2, 0.6, 0.02, 7)
	cfg := DefaultConfig(2)
	cfg.NonNegGate = true
	m, err := Train(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.UserF {
		for _, v := range f {
			if v < 0 {
				t.Fatal("NonNegGate must keep user factors non-negative")
			}
		}
	}
	for _, f := range m.ItemF {
		for _, v := range f {
			if v < 0 {
				t.Fatal("NonNegGate must keep item factors non-negative")
			}
		}
	}
}

func TestTrainDeterminism(t *testing.T) {
	data, _ := dataset.SimulatedRatings(30, 15, 2, 2, 0.5, 0.02, 3)
	cfg := DefaultConfig(2)
	m1, err1 := Train(data, cfg)
	m2, err2 := Train(data, cfg)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for u := range m1.UserF {
		for j := range m1.UserF[u] {
			if m1.UserF[u][j] != m2.UserF[u][j] {
				t.Fatal("same seed must reproduce the model")
			}
		}
	}
}
