// Package mf implements biased stochastic-gradient matrix factorization,
// the first stage of the Yahoo!-style pipeline (Section V-B2): given a
// sparse ratings matrix it learns user and item latent factors so that the
// utility of every (user, item) pair can be inferred, including unobserved
// cells. The resulting item factors become the "points" of a latent-space
// FAM instance and the user factors feed the GMM of internal/gmm.
package mf

import (
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/rng"
)

// Config controls training.
type Config struct {
	Rank       int     // latent dimensionality
	Epochs     int     // SGD passes over the ratings
	LearnRate  float64 // SGD step size
	Reg        float64 // L2 regularization strength
	InitScale  float64 // initial factor magnitude
	Seed       uint64  // RNG seed for init and shuffling
	NonNegGate bool    // project factors onto the non-negative orthant each step
}

// DefaultConfig returns sensible small-scale defaults.
func DefaultConfig(rank int) Config {
	return Config{
		Rank:      rank,
		Epochs:    60,
		LearnRate: 0.02,
		Reg:       0.05,
		InitScale: 0.1,
		Seed:      1,
	}
}

// Model is a trained factorization.
type Model struct {
	Rank       int
	UserF      [][]float64 // numUsers x Rank
	ItemF      [][]float64 // numItems x Rank
	UserBias   []float64
	ItemBias   []float64
	GlobalMean float64
}

// ErrBadConfig reports invalid training parameters.
var ErrBadConfig = errors.New("mf: bad config")

// Train factorizes the ratings with SGD.
func Train(data *dataset.RatingsData, cfg Config) (*Model, error) {
	if data == nil || len(data.Ratings) == 0 {
		return nil, errors.New("mf: no ratings")
	}
	if cfg.Rank <= 0 || cfg.Epochs <= 0 || cfg.LearnRate <= 0 || cfg.Reg < 0 || cfg.InitScale <= 0 {
		return nil, fmt.Errorf("%w: %+v", ErrBadConfig, cfg)
	}
	g := rng.New(cfg.Seed)
	m := &Model{
		Rank:     cfg.Rank,
		UserF:    randFactors(data.NumUsers, cfg.Rank, cfg.InitScale, g),
		ItemF:    randFactors(data.NumItems, cfg.Rank, cfg.InitScale, g),
		UserBias: make([]float64, data.NumUsers),
		ItemBias: make([]float64, data.NumItems),
	}
	var sum float64
	for _, r := range data.Ratings {
		if r.User < 0 || r.User >= data.NumUsers || r.Item < 0 || r.Item >= data.NumItems {
			return nil, fmt.Errorf("mf: rating out of range: %+v", r)
		}
		sum += r.Score
	}
	m.GlobalMean = sum / float64(len(data.Ratings))

	order := make([]int, len(data.Ratings))
	for i := range order {
		order[i] = i
	}
	lr, reg := cfg.LearnRate, cfg.Reg
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		g.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			r := data.Ratings[idx]
			uf, vf := m.UserF[r.User], m.ItemF[r.Item]
			pred := m.GlobalMean + m.UserBias[r.User] + m.ItemBias[r.Item] + dot(uf, vf)
			err := r.Score - pred
			m.UserBias[r.User] += lr * (err - reg*m.UserBias[r.User])
			m.ItemBias[r.Item] += lr * (err - reg*m.ItemBias[r.Item])
			for f := 0; f < cfg.Rank; f++ {
				u, v := uf[f], vf[f]
				uf[f] += lr * (err*v - reg*u)
				vf[f] += lr * (err*u - reg*v)
				if cfg.NonNegGate {
					if uf[f] < 0 {
						uf[f] = 0
					}
					if vf[f] < 0 {
						vf[f] = 0
					}
				}
			}
		}
	}
	return m, nil
}

func randFactors(n, rank int, scale float64, g *rng.RNG) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		f := make([]float64, rank)
		for j := range f {
			f[j] = scale * g.Float64()
		}
		out[i] = f
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Predict returns the model's score for (user, item); indices out of range
// return the global mean.
func (m *Model) Predict(user, item int) float64 {
	if user < 0 || user >= len(m.UserF) || item < 0 || item >= len(m.ItemF) {
		return m.GlobalMean
	}
	return m.GlobalMean + m.UserBias[user] + m.ItemBias[item] + dot(m.UserF[user], m.ItemF[item])
}

// RMSE returns the root-mean-square error over the given ratings.
func (m *Model) RMSE(ratings []dataset.Rating) (float64, error) {
	if len(ratings) == 0 {
		return 0, errors.New("mf: RMSE of empty rating set")
	}
	var se float64
	for _, r := range ratings {
		d := r.Score - m.Predict(r.User, r.Item)
		se += d * d
	}
	return math.Sqrt(se / float64(len(ratings))), nil
}

// CompletedUtilityRow reconstructs user u's utility over all items
// (the completed row of the ratings matrix), clamped at zero so it is a
// valid utility vector.
func (m *Model) CompletedUtilityRow(user int) []float64 {
	out := make([]float64, len(m.ItemF))
	for i := range out {
		v := m.Predict(user, i)
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// UserVectors returns the learned user latent vectors augmented with the
// user bias as a trailing coordinate — the representation the GMM is fit
// on. (Including the bias lets the mixture capture overall rating level.)
func (m *Model) UserVectors() [][]float64 {
	out := make([][]float64, len(m.UserF))
	for u, f := range m.UserF {
		v := make([]float64, m.Rank+1)
		copy(v, f)
		v[m.Rank] = m.UserBias[u]
		out[u] = v
	}
	return out
}

// ItemPoints returns the learned item factors as latent-space "points" for
// a FAM instance, with the additive item-side terms folded into extra
// coordinates: each point has Rank+2 columns
//
//	[factors..., itemBias+globalMean, 1].
//
// Paired with WeightVector, dot(WeightVector(uv), point_i) == Predict(u, i)
// where uv is row u of UserVectors.
func (m *Model) ItemPoints() [][]float64 {
	out := make([][]float64, len(m.ItemF))
	for i, f := range m.ItemF {
		p := make([]float64, m.Rank+2)
		copy(p, f)
		p[m.Rank] = m.ItemBias[i] + m.GlobalMean
		p[m.Rank+1] = 1
		out[i] = p
	}
	return out
}

// WeightVector maps a user latent vector in the UserVectors layout
// [factors..., userBias] (Rank+1 values — either a learned row or a GMM
// sample) to the weight layout matching ItemPoints:
//
//	[factors..., 1, userBias].
//
// With this layout, dot(weight, itemPoint) reproduces the model's
// prediction for the user described by the latent vector.
func WeightVector(latent []float64) []float64 {
	rank := len(latent) - 1
	out := make([]float64, rank+2)
	copy(out, latent[:rank])
	out[rank] = 1
	out[rank+1] = latent[rank]
	return out
}
