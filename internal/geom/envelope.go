// Package geom implements the 2-d geometry of Section IV: linear utility
// functions over 2-d points parameterized by the angle they make with the
// first axis, the "best point as the angle sweeps" structure, and the
// closed-form integration of the regret ratio against the uniform measure
// on the weight square [0,1]² (Section IV-C2).
//
// Everything works in tangent space t = w2/w1 ∈ [0, +∞] (t = +∞ encodes
// θ = π/2): a utility function with tangent t ranks points by the line
// value L_p(t) = p[0] + t·p[1], so "the best point at angle θ" is the
// upper envelope of n lines. The uniform measure on the weight square
// pushes forward to density
//
//	m(t) = 1/2           for t ≤ 1,
//	m(t) = 1/(2t²)       for t > 1,
//
// which integrates to 1 over [0, ∞).
package geom

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Envelope is the upper envelope of the lines L_p(t) = p[0] + t·p[1] of a
// 2-d point set: which point is best for each tangent range.
type Envelope struct {
	// Idx[i] is the point (index into the constructor's slice) that is
	// best on the tangent interval [start_i, Breaks[i]), where start_0 = 0
	// and start_i = Breaks[i-1].
	Idx []int
	// Breaks[i] is the tangent where segment i ends; Breaks[len-1] = +Inf.
	Breaks []float64

	points [][]float64
}

// ErrNeed2D is returned for points that are not two-dimensional.
var ErrNeed2D = errors.New("geom: points must be 2-dimensional")

// ErrDegenerate is returned when every point is the origin, so no utility
// function has positive satisfaction anywhere.
var ErrDegenerate = errors.New("geom: all points are the origin")

// ComputeEnvelope builds the upper envelope of the given 2-d points.
// Ties prefer the lower point index, matching the tie-breaking of the
// sampled evaluator.
func ComputeEnvelope(points [][]float64) (*Envelope, error) {
	if len(points) == 0 {
		return nil, errors.New("geom: empty point set")
	}
	for i, p := range points {
		if len(p) != 2 {
			return nil, fmt.Errorf("%w: point %d has %d attributes", ErrNeed2D, i, len(p))
		}
		if p[0] < 0 || p[1] < 0 || math.IsNaN(p[0]) || math.IsNaN(p[1]) ||
			math.IsInf(p[0], 0) || math.IsInf(p[1], 0) {
			return nil, fmt.Errorf("geom: point %d = (%v, %v) must be finite and non-negative", i, p[0], p[1])
		}
	}
	nonzero := false
	for _, p := range points {
		if p[0] > 0 || p[1] > 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		return nil, ErrDegenerate
	}

	// Sort candidate lines by slope ascending, intercept descending,
	// index ascending; for equal slopes only the best intercept (lowest
	// index among equals) can appear on the envelope.
	order := make([]int, len(points))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		pa, pb := points[order[a]], points[order[b]]
		if pa[1] != pb[1] {
			return pa[1] < pb[1]
		}
		if pa[0] != pb[0] {
			return pa[0] > pb[0]
		}
		return order[a] < order[b]
	})
	// Deduplicate slopes, keeping the dominant line per slope.
	var lines []int
	for _, idx := range order {
		if len(lines) > 0 && points[lines[len(lines)-1]][1] == points[idx][1] {
			continue // same slope, worse (or equal) intercept
		}
		lines = append(lines, idx)
	}

	// crossing returns the tangent where line b overtakes line a
	// (slope(b) > slope(a) required).
	crossing := func(a, b int) float64 {
		pa, pb := points[a], points[b]
		return (pa[0] - pb[0]) / (pb[1] - pa[1])
	}

	// Incremental upper-envelope construction in slope order. stack holds
	// envelope candidates; breaks[i] is where stack[i+1] overtakes
	// stack[i].
	var stack []int
	var breaks []float64
	for _, idx := range lines {
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			// If idx's intercept already dominates top at the tangent where
			// top became best, top never appears.
			tCross := crossing(top, idx)
			var tStart float64
			if len(breaks) > 0 {
				tStart = breaks[len(breaks)-1]
			}
			if tCross <= tStart {
				stack = stack[:len(stack)-1]
				if len(breaks) > 0 {
					breaks = breaks[:len(breaks)-1]
				}
				continue
			}
			breaks = append(breaks, tCross)
			break
		}
		stack = append(stack, idx)
	}
	// Drop leading segments of zero width (can occur when the first line
	// is overtaken at t = 0).
	for len(breaks) > 0 && breaks[0] == 0 {
		stack = stack[1:]
		breaks = breaks[1:]
	}
	breaks = append(breaks, math.Inf(1))
	return &Envelope{Idx: stack, Breaks: breaks, points: points}, nil
}

// BestAt returns the envelope point index best at tangent t (ties at
// breakpoints resolve to the earlier segment).
func (e *Envelope) BestAt(t float64) int {
	i := sort.SearchFloat64s(e.Breaks, t)
	if i == len(e.Breaks) {
		i = len(e.Breaks) - 1
	}
	// SearchFloat64s finds the first break >= t; a break exactly equal to
	// t closes its segment, so the point is still the segment owner.
	return e.Idx[i]
}

// Segments invokes fn for each envelope segment [a, b) with its best point
// index, restricted to the tangent window [lo, hi]. Empty intersections
// are skipped.
func (e *Envelope) Segments(lo, hi float64, fn func(best int, a, b float64)) {
	start := 0.0
	for i, idx := range e.Idx {
		end := e.Breaks[i]
		a, b := math.Max(start, lo), math.Min(end, hi)
		if a < b {
			fn(idx, a, b)
		}
		start = end
		if start >= hi {
			break
		}
	}
}
