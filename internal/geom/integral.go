package geom

import (
	"math"
)

// RegretIntegral evaluates, in closed form,
//
//	∫_a^b (1 − (s0 + t·s1)/(q0 + t·q1)) · m(t) dt
//
// where sel = (s0, s1) is the shown point, best = (q0, q1) is the point
// that maximizes utility on the whole database for tangents in [a, b], and
// m is the push-forward of the uniform measure on the weight square
// (m(t) = 1/2 for t ≤ 1, 1/(2t²) for t > 1). b may be +Inf.
//
// Precondition (guaranteed when best comes from the database envelope):
// the best line dominates the sel line on [a, b], so the integrand is
// non-negative, and the best line is not identically zero on (a, b).
func RegretIntegral(sel, best []float64, a, b float64) float64 {
	if a >= b {
		return 0
	}
	var total float64
	// Piece 1: t in [a, min(b, 1)] with m = 1/2.
	if a < 1 {
		hi := math.Min(b, 1)
		total += 0.5 * (gAntideriv(sel, best, hi) - gAntideriv(sel, best, a))
	}
	// Piece 2: t in [max(a, 1), b] with m = 1/(2t²).
	if b > 1 {
		lo := math.Max(a, 1)
		total += 0.5 * (hAntideriv(sel, best, b) - hAntideriv(sel, best, lo))
	}
	if total < 0 && total > -1e-12 {
		total = 0 // clamp tiny negative round-off
	}
	return total
}

// gAntideriv is an antiderivative of g(t) = 1 − (s0 + t·s1)/(q0 + t·q1).
func gAntideriv(sel, best []float64, t float64) float64 {
	s0, s1 := sel[0], sel[1]
	q0, q1 := best[0], best[1]
	if q1 == 0 {
		// g = 1 − (s0 + t s1)/q0.
		return t - (s0*t+s1*t*t/2)/q0
	}
	// ∫ (s0 + t s1)/(q0 + t q1) dt = (s1/q1) t + ((s0 q1 − s1 q0)/q1²) ln(q0 + q1 t).
	c := (s0*q1 - s1*q0) / (q1 * q1)
	return t - (s1/q1)*t - c*math.Log(q0+q1*t)
}

// hAntideriv is an antiderivative of h(t) = g(t)/t², valid for t ≥ 1, with
// a finite limit at t = +Inf.
func hAntideriv(sel, best []float64, t float64) float64 {
	s0, s1 := sel[0], sel[1]
	q0, q1 := best[0], best[1]
	inf := math.IsInf(t, 1)
	switch {
	case q1 == 0:
		// h = 1/t² − (s0 + s1 t)/(q0 t²)
		//   = (1 − s0/q0)/t² − (s1/q0)/t.
		// On the envelope at t → ∞ with slope 0, every slope is 0 (s1 = 0);
		// the log term then vanishes.
		if inf {
			if s1 != 0 {
				return math.Inf(-1) // documented precondition violation
			}
			return 0
		}
		return -(1-s0/q0)/t - (s1/q0)*math.Log(t)
	case q0 == 0:
		// h = 1/t² − (s0 + s1 t)/(q1 t³)
		//   = 1/t² − s0/(q1 t³) − s1/(q1 t²).
		if inf {
			return 0
		}
		return -1/t + s0/(2*q1*t*t) + s1/(q1*t)
	default:
		// Partial fractions with B = s0/q0, C/q1 = (s0 q1 − s1 q0)/q0²:
		// H(t) = (B − 1)/t − (C/q1)·ln(q1 + q0/t).
		bb := s0 / q0
		cOverQ1 := (s0*q1 - s1*q0) / (q0 * q0)
		if inf {
			return -cOverQ1 * math.Log(q1)
		}
		return (bb-1)/t - cOverQ1*math.Log(q1+q0/t)
	}
}

// RegretIntegralSimpson evaluates the same integral as RegretIntegral by
// adaptive Simpson quadrature. It exists to cross-check the closed forms
// (property-tested to agree) and to support non-uniform tangent densities
// in the future. b may be +Inf.
func RegretIntegralSimpson(sel, best []float64, a, b float64) float64 {
	if a >= b {
		return 0
	}
	g := func(t float64) float64 {
		den := best[0] + t*best[1]
		if den <= 0 {
			return 0
		}
		return 1 - (sel[0]+t*sel[1])/den
	}
	var total float64
	if a < 1 {
		hi := math.Min(b, 1)
		total += adaptiveSimpson(func(t float64) float64 { return g(t) / 2 }, a, hi, 1e-12, 40)
	}
	if b > 1 {
		// Substitute u = 1/t: ∫_{max(a,1)}^{b} g(t)/(2t²) dt
		//   = ∫_{1/b}^{1/max(a,1)} g(1/u)/2 du, with g(1/u) rational in u.
		lo := math.Max(a, 1)
		uLo := 0.0
		if !math.IsInf(b, 1) {
			uLo = 1 / b
		}
		uHi := 1 / lo
		gu := func(u float64) float64 {
			den := best[0]*u + best[1]
			if den <= 0 {
				return 0
			}
			return 1 - (sel[0]*u+sel[1])/den
		}
		total += adaptiveSimpson(func(u float64) float64 { return gu(u) / 2 }, uLo, uHi, 1e-12, 40)
	}
	return total
}

// adaptiveSimpson integrates f over [a, b] with the classic recursive
// error estimate.
func adaptiveSimpson(f func(float64) float64, a, b, tol float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	whole := (b - a) / 6 * (fa + 4*fc + fb)
	return simpsonAux(f, a, b, tol, whole, fa, fb, fc, depth)
}

func simpsonAux(f func(float64) float64, a, b, tol, whole, fa, fb, fc float64, depth int) float64 {
	c := (a + b) / 2
	l, r := (a+c)/2, (c+b)/2
	fl, fr := f(l), f(r)
	left := (c - a) / 6 * (fa + 4*fl + fc)
	right := (b - c) / 6 * (fc + 4*fr + fb)
	if depth <= 0 || math.Abs(left+right-whole) <= 15*tol {
		return left + right + (left+right-whole)/15
	}
	return simpsonAux(f, a, c, tol/2, left, fa, fc, fl, depth-1) +
		simpsonAux(f, c, b, tol/2, right, fc, fb, fr, depth-1)
}

// Mass returns the measure of the tangent interval [a, b] under m(t); the
// whole line [0, ∞] has mass 1.
func Mass(a, b float64) float64 {
	if a >= b {
		return 0
	}
	var total float64
	if a < 1 {
		total += 0.5 * (math.Min(b, 1) - a)
	}
	if b > 1 {
		lo := math.Max(a, 1)
		if math.IsInf(b, 1) {
			total += 0.5 / lo
		} else {
			total += 0.5 * (1/lo - 1/b)
		}
	}
	return total
}
