package geom

import (
	"errors"
	"fmt"
	"math"
)

// ExactARR computes the exact (not sampled) average regret ratio of the
// selection set under the uniform-box linear distribution over 2-d weight
// vectors — the quantity the Section IV dynamic program optimizes. The
// tangent line [0, ∞] is partitioned by the superposition of the
// database envelope (which fixes each user's best point in D, i.e. the
// denominator of the regret ratio) and the selection envelope (which fixes
// the satisfaction from S); each cell contributes one closed-form integral.
func ExactARR(points [][]float64, set []int) (float64, error) {
	if len(set) == 0 {
		return 0, errors.New("geom: empty selection set")
	}
	seen := make(map[int]bool, len(set))
	selPts := make([][]float64, len(set))
	for i, p := range set {
		if p < 0 || p >= len(points) {
			return 0, fmt.Errorf("geom: point index %d out of range [0,%d)", p, len(points))
		}
		if seen[p] {
			return 0, fmt.Errorf("geom: duplicate point index %d", p)
		}
		seen[p] = true
		selPts[i] = points[p]
	}
	dbEnv, err := ComputeEnvelope(points)
	if err != nil {
		return 0, err
	}
	selEnv, err := ComputeEnvelope(selPts)
	if err != nil {
		if errors.Is(err, ErrDegenerate) {
			// A selection of all-origin points satisfies no one: the whole
			// population keeps regret ratio 1 (unless D is degenerate too,
			// which ComputeEnvelope above would have rejected).
			return 1, nil
		}
		return 0, err
	}

	var total float64
	dbEnv.Segments(0, math.Inf(1), func(best int, a, b float64) {
		selEnv.Segments(a, b, func(selBest int, lo, hi float64) {
			total += RegretIntegral(selPts[selBest], points[best], lo, hi)
		})
	})
	return total, nil
}
