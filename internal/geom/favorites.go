package geom

import "math"

// FavoriteMasses returns, for each point, the exact probability that it is
// a random user's favorite under 2-d linear utilities with weights uniform
// on [0,1]²: the tangent-measure mass of the envelope segments the point
// owns. Points never on the envelope get 0; the masses sum to 1. This is
// the quantity the k-hit query of Peng & Wong ranks points by, computed in
// closed form for the 2-d case (their general algorithm estimates it
// geometrically in higher dimensions).
func FavoriteMasses(points [][]float64) ([]float64, error) {
	env, err := ComputeEnvelope(points)
	if err != nil {
		return nil, err
	}
	masses := make([]float64, len(points))
	env.Segments(0, math.Inf(1), func(best int, a, b float64) {
		masses[best] += Mass(a, b)
	})
	return masses, nil
}
