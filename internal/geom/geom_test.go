package geom

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/regretlab/fam/internal/rng"
)

func TestComputeEnvelopeValidation(t *testing.T) {
	if _, err := ComputeEnvelope(nil); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := ComputeEnvelope([][]float64{{1, 2, 3}}); err == nil {
		t.Fatal("3-d must error")
	}
	if _, err := ComputeEnvelope([][]float64{{-1, 0}}); err == nil {
		t.Fatal("negative must error")
	}
	if _, err := ComputeEnvelope([][]float64{{math.NaN(), 0}}); err == nil {
		t.Fatal("NaN must error")
	}
	if _, err := ComputeEnvelope([][]float64{{0, 0}, {0, 0}}); err == nil {
		t.Fatal("all-origin must error with ErrDegenerate")
	}
}

func TestEnvelopeSimple(t *testing.T) {
	// Points: (1,0) best at small t, (0,1) best at large t, (0.6,0.6) best
	// in the middle: crossing of (1,0) and (0.6,0.6): 1 = 0.6 + 0.6t at
	// t = 2/3; crossing of (0.6,0.6) and (0,1): 0.6+0.6t = t at t = 1.5.
	pts := [][]float64{{1, 0}, {0, 1}, {0.6, 0.6}}
	env, err := ComputeEnvelope(pts)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx := []int{0, 2, 1}
	if len(env.Idx) != 3 {
		t.Fatalf("envelope = %v breaks %v", env.Idx, env.Breaks)
	}
	for i, w := range wantIdx {
		if env.Idx[i] != w {
			t.Fatalf("envelope order = %v, want %v", env.Idx, wantIdx)
		}
	}
	if math.Abs(env.Breaks[0]-2.0/3) > 1e-12 || math.Abs(env.Breaks[1]-1.5) > 1e-12 {
		t.Fatalf("breaks = %v", env.Breaks)
	}
	if !math.IsInf(env.Breaks[2], 1) {
		t.Fatal("last break must be +Inf")
	}
	if env.BestAt(0) != 0 || env.BestAt(1) != 2 || env.BestAt(100) != 1 {
		t.Fatalf("BestAt wrong: %d %d %d", env.BestAt(0), env.BestAt(1), env.BestAt(100))
	}
}

func TestEnvelopeSkipsDominated(t *testing.T) {
	// (0.5, 0.5) is below the chord of (1,0)-(0,1): never best.
	pts := [][]float64{{1, 0}, {0, 1}, {0.45, 0.45}}
	env, err := ComputeEnvelope(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range env.Idx {
		if idx == 2 {
			t.Fatalf("dominated point on envelope: %v", env.Idx)
		}
	}
}

func TestEnvelopeDuplicateSlopes(t *testing.T) {
	// Same slope: only the better intercept may win; ties keep lowest idx.
	pts := [][]float64{{0.5, 0.5}, {0.8, 0.5}, {0.8, 0.5}}
	env, err := ComputeEnvelope(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Idx) != 1 || env.Idx[0] != 1 {
		t.Fatalf("envelope = %v", env.Idx)
	}
}

// Property: for random points and random tangents, BestAt matches the
// brute-force argmax of the line values.
func TestEnvelopeMatchesBruteForceProperty(t *testing.T) {
	g := rng.New(11)
	f := func(nRaw uint8, tRaw uint16) bool {
		n := int(nRaw%12) + 1
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{g.Float64(), g.Float64()}
		}
		env, err := ComputeEnvelope(pts)
		if err != nil {
			return false
		}
		// Tangent grid including large values.
		tan := float64(tRaw) / 1000
		bestVal := math.Inf(-1)
		for _, p := range pts {
			if v := p[0] + tan*p[1]; v > bestVal {
				bestVal = v
			}
		}
		got := pts[env.BestAt(tan)]
		return math.Abs(got[0]+tan*got[1]-bestVal) < 1e-9*(1+bestVal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentsWindow(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {0.6, 0.6}}
	env, _ := ComputeEnvelope(pts)
	var total float64
	env.Segments(0, math.Inf(1), func(_ int, a, b float64) { total += Mass(a, b) })
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("segments mass = %v, want 1", total)
	}
	// Restricted window.
	var cnt int
	env.Segments(0.7, 1.4, func(best int, a, b float64) {
		cnt++
		if best != 2 {
			t.Fatalf("window [0.7,1.4] best = %d", best)
		}
	})
	if cnt != 1 {
		t.Fatalf("window segments = %d", cnt)
	}
}

func TestMass(t *testing.T) {
	if got := Mass(0, math.Inf(1)); math.Abs(got-1) > 1e-12 {
		t.Fatalf("total mass = %v", got)
	}
	if got := Mass(0, 1); got != 0.5 {
		t.Fatalf("mass below diagonal = %v", got)
	}
	if got := Mass(1, math.Inf(1)); got != 0.5 {
		t.Fatalf("mass above diagonal = %v", got)
	}
	if Mass(2, 2) != 0 || Mass(3, 2) != 0 {
		t.Fatal("empty interval mass must be 0")
	}
	if got := Mass(2, 4); math.Abs(got-(0.5/2-0.5/4)) > 1e-12 {
		t.Fatalf("Mass(2,4) = %v", got)
	}
}

func TestRegretIntegralZeroSelection(t *testing.T) {
	// sel = origin => integrand is exactly 1 => integral = Mass(a,b).
	best := []float64{1, 1}
	zero := []float64{0, 0}
	for _, iv := range [][2]float64{{0, 1}, {0.5, 2}, {1, math.Inf(1)}, {0, math.Inf(1)}} {
		got := RegretIntegral(zero, best, iv[0], iv[1])
		want := Mass(iv[0], iv[1])
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("interval %v: %v != mass %v", iv, got, want)
		}
	}
}

func TestRegretIntegralSelfIsZero(t *testing.T) {
	p := []float64{0.3, 0.7}
	if got := RegretIntegral(p, p, 0, math.Inf(1)); math.Abs(got) > 1e-12 {
		t.Fatalf("self-regret = %v", got)
	}
}

// Property: the closed form matches adaptive Simpson on random segments
// where the best line dominates the selected line.
func TestClosedFormMatchesSimpsonProperty(t *testing.T) {
	g := rng.New(23)
	for trial := 0; trial < 400; trial++ {
		// best dominates sel pointwise => dominates as a line everywhere.
		best := []float64{0.2 + g.Float64(), 0.2 + g.Float64()}
		sel := []float64{best[0] * g.Float64(), best[1] * g.Float64()}
		a := g.Float64() * 3
		b := a + g.Float64()*3
		if trial%5 == 0 {
			b = math.Inf(1)
		}
		got := RegretIntegral(sel, best, a, b)
		want := RegretIntegralSimpson(sel, best, a, b)
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("trial %d: closed %v vs simpson %v (sel=%v best=%v a=%v b=%v)",
				trial, got, want, sel, best, a, b)
		}
	}
}

// Degenerate best-line shapes (q0 = 0 or q1 = 0) must also match Simpson.
func TestClosedFormDegenerateLines(t *testing.T) {
	cases := []struct {
		sel, best []float64
		a, b      float64
	}{
		{[]float64{0.1, 0}, []float64{1, 0}, 0, 1},           // q1 = 0, finite
		{[]float64{0.1, 0}, []float64{1, 0}, 0.5, 3},         // q1 = 0 crossing t=1
		{[]float64{0, 0.3}, []float64{0, 1}, 0.2, 2},         // q0 = 0
		{[]float64{0, 0.3}, []float64{0, 1}, 1, math.Inf(1)}, // q0 = 0 to Inf
		{[]float64{0.2, 0.1}, []float64{0.5, 1}, 2, math.Inf(1)},
	}
	for i, c := range cases {
		got := RegretIntegral(c.sel, c.best, c.a, c.b)
		want := RegretIntegralSimpson(c.sel, c.best, c.a, c.b)
		if math.Abs(got-want) > 1e-8 {
			t.Fatalf("case %d: closed %v vs simpson %v", i, got, want)
		}
	}
}

func TestExactARRValidation(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}}
	if _, err := ExactARR(pts, nil); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := ExactARR(pts, []int{0, 0}); err == nil {
		t.Fatal("duplicate must error")
	}
	if _, err := ExactARR(pts, []int{5}); err == nil {
		t.Fatal("out of range must error")
	}
}

func TestExactARRWholeDatabaseIsZero(t *testing.T) {
	g := rng.New(31)
	pts := make([][]float64, 12)
	all := make([]int, 12)
	for i := range pts {
		pts[i] = []float64{g.Float64(), g.Float64()}
		all[i] = i
	}
	arr, err := ExactARR(pts, all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arr) > 1e-12 {
		t.Fatalf("arr(D) = %v, want 0", arr)
	}
}

func TestExactARRZeroSelection(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {0, 0}}
	arr, err := ExactARR(pts, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if arr != 1 {
		t.Fatalf("arr of origin-only selection = %v, want 1", arr)
	}
}

func TestExactARRHandComputed(t *testing.T) {
	// D = {(1,0), (0,1)}, S = {(1,0)}. Best in D switches at t=1.
	// For t<1 best=(1,0)=sel: no regret. For t>1 best=(0,1):
	// rr(t) = 1 − 1/t (sel value 1, best value t).
	// ∫_1^∞ (1 − 1/t)·1/(2t²) dt = [−1/t + 1/(2t²)]·(1/2)... compute:
	// ∫ (1/(2t²) − 1/(2t³)) dt from 1 to ∞ = 1/2 − 1/4 = 1/4.
	pts := [][]float64{{1, 0}, {0, 1}}
	arr, err := ExactARR(pts, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arr-0.25) > 1e-12 {
		t.Fatalf("arr = %v, want 0.25", arr)
	}
	// Symmetric case.
	arr2, _ := ExactARR(pts, []int{1})
	if math.Abs(arr2-0.25) > 1e-12 {
		t.Fatalf("arr = %v, want 0.25", arr2)
	}
}

// Property: ExactARR agrees with a Monte-Carlo estimate over uniform-box
// weight vectors.
func TestExactARRMatchesMonteCarlo(t *testing.T) {
	g := rng.New(47)
	for trial := 0; trial < 10; trial++ {
		n := g.IntN(8) + 2
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{g.Float64(), g.Float64()}
		}
		k := g.IntN(n) + 1
		set := g.Choice(n, k)
		exact, err := ExactARR(pts, set)
		if err != nil {
			t.Fatal(err)
		}
		const N = 200000
		var sum float64
		for s := 0; s < N; s++ {
			w0, w1 := g.Float64(), g.Float64()
			bestD, bestS := 0.0, 0.0
			for i, p := range pts {
				v := w0*p[0] + w1*p[1]
				if v > bestD {
					bestD = v
				}
				_ = i
			}
			for _, i := range set {
				v := w0*pts[i][0] + w1*pts[i][1]
				if v > bestS {
					bestS = v
				}
			}
			if bestD > 0 {
				sum += (bestD - bestS) / bestD
			}
		}
		mc := sum / N
		if math.Abs(exact-mc) > 0.01 {
			t.Fatalf("trial %d: exact %v vs MC %v (n=%d set=%v)", trial, exact, mc, n, set)
		}
	}
}
