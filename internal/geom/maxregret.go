package geom

import (
	"errors"
	"math"
)

// ExactMaxRegretRatio computes the exact maximum regret ratio of the
// selection under 2-d linear utilities with non-negative weights:
//
//	mrr(S) = max_t (1 − L_S(t) / L_D(t))
//
// where L_S and L_D are the selection and database line envelopes. Within
// any cell of the superposed envelopes the ratio of the two lines is a
// Möbius function of t, which is monotone, so the maximum over the cell is
// attained at a cell boundary — scanning all boundaries (including t = 0
// and t → ∞) gives the exact maximum. This is the 2-d counterpart of the
// LP-based evaluation used by the MRR-GREEDY baseline, and cross-checks it
// in tests.
func ExactMaxRegretRatio(points [][]float64, set []int) (float64, error) {
	if len(set) == 0 {
		return 1, nil
	}
	seen := make(map[int]bool, len(set))
	selPts := make([][]float64, len(set))
	for i, p := range set {
		if p < 0 || p >= len(points) {
			return 0, errors.New("geom: point index out of range")
		}
		if seen[p] {
			return 0, errors.New("geom: duplicate point index")
		}
		seen[p] = true
		selPts[i] = points[p]
	}
	dbEnv, err := ComputeEnvelope(points)
	if err != nil {
		return 0, err
	}
	selEnv, err := ComputeEnvelope(selPts)
	if err != nil {
		if errors.Is(err, ErrDegenerate) {
			return 1, nil
		}
		return 0, err
	}

	// Collect candidate tangents: every breakpoint of either envelope,
	// plus the extremes.
	cands := []float64{0}
	for _, b := range dbEnv.Breaks {
		if !math.IsInf(b, 1) {
			cands = append(cands, b)
		}
	}
	for _, b := range selEnv.Breaks {
		if !math.IsInf(b, 1) {
			cands = append(cands, b)
		}
	}

	ratioAt := func(t float64) float64 {
		d := points[dbEnv.BestAt(t)]
		s := selPts[selEnv.BestAt(t)]
		den := d[0] + t*d[1]
		if den <= 0 {
			return 0
		}
		rr := 1 - (s[0]+t*s[1])/den
		if rr < 0 {
			return 0
		}
		return rr
	}

	var worst float64
	for _, t := range cands {
		if rr := ratioAt(t); rr > worst {
			worst = rr
		}
		// Each breakpoint closes one cell and opens another; probing a
		// hair to each side covers both one-sided limits.
		if t > 0 {
			if rr := ratioAt(t * (1 - 1e-12)); rr > worst {
				worst = rr
			}
		}
		if rr := ratioAt(t*(1+1e-12) + 1e-300); rr > worst {
			worst = rr
		}
	}
	// The t → ∞ limit: ratio of slopes (or of intercepts when the top
	// slopes are both zero).
	dInf := points[dbEnv.Idx[len(dbEnv.Idx)-1]]
	sInf := selPts[selEnv.Idx[len(selEnv.Idx)-1]]
	var limit float64
	if dInf[1] > 0 {
		limit = 1 - sInf[1]/dInf[1]
	} else if dInf[0] > 0 {
		limit = 1 - sInf[0]/dInf[0]
	}
	if limit > worst {
		worst = limit
	}
	if worst > 1 {
		worst = 1
	}
	return worst, nil
}
