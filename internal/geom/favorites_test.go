package geom

import (
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
)

func TestFavoriteMassesSumToOne(t *testing.T) {
	g := rng.New(53)
	for trial := 0; trial < 50; trial++ {
		n := g.IntN(20) + 1
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{g.Float64(), g.Float64()}
		}
		masses, err := FavoriteMasses(pts)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, m := range masses {
			if m < 0 {
				t.Fatal("negative mass")
			}
			sum += m
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: masses sum to %v", trial, sum)
		}
	}
}

func TestFavoriteMassesHandComputed(t *testing.T) {
	// (1,0) best for t<1, (0,1) for t>1: masses 1/2 each.
	pts := [][]float64{{1, 0}, {0, 1}, {0.3, 0.3}}
	masses, err := FavoriteMasses(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(masses[0]-0.5) > 1e-12 || math.Abs(masses[1]-0.5) > 1e-12 {
		t.Fatalf("masses = %v", masses)
	}
	if masses[2] != 0 {
		t.Fatal("dominated point must have zero mass")
	}
}

// Exact masses must match Monte-Carlo favorite counts.
func TestFavoriteMassesMatchSampling(t *testing.T) {
	g := rng.New(59)
	pts := make([][]float64, 8)
	for i := range pts {
		pts[i] = []float64{g.Float64(), g.Float64()}
	}
	masses, err := FavoriteMasses(pts)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, len(pts))
	const N = 400000
	for s := 0; s < N; s++ {
		w0, w1 := g.Float64(), g.Float64()
		best, bestVal := 0, -1.0
		for i, p := range pts {
			if v := w0*p[0] + w1*p[1]; v > bestVal {
				best, bestVal = i, v
			}
		}
		counts[best]++
	}
	for i := range pts {
		if math.Abs(masses[i]-counts[i]/N) > 0.005 {
			t.Fatalf("point %d: exact %v vs sampled %v", i, masses[i], counts[i]/N)
		}
	}
}
