package geom

import (
	"math"
	"testing"
)

func TestExactMaxRegretRatioBasics(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}}
	// Showing only (1,0): worst user is t → ∞ (pure second attribute),
	// whose regret ratio tends to 1 − 0/1 = 1.
	mrr, err := ExactMaxRegretRatio(pts, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mrr-1) > 1e-9 {
		t.Fatalf("mrr = %v, want 1", mrr)
	}
	// Showing everything: no regret.
	mrr, err = ExactMaxRegretRatio(pts, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if mrr > 1e-12 {
		t.Fatalf("mrr(D) = %v, want 0", mrr)
	}
	// Empty set: total regret.
	mrr, err = ExactMaxRegretRatio(pts, nil)
	if err != nil || mrr != 1 {
		t.Fatalf("mrr(∅) = %v, %v", mrr, err)
	}
	if _, err := ExactMaxRegretRatio(pts, []int{7}); err == nil {
		t.Fatal("out of range must error")
	}
	if _, err := ExactMaxRegretRatio(pts, []int{0, 0}); err == nil {
		t.Fatal("duplicate must error")
	}
}

func TestExactMaxRegretRatioHandComputed(t *testing.T) {
	// D = {(1,0), (0,1), (0.8,0.8)}, S = {(0.8,0.8)}. Worst cases are the
	// axis extremes: at t=0, rr = 1 − 0.8/1 = 0.2; at t→∞ the same.
	pts := [][]float64{{1, 0}, {0, 1}, {0.8, 0.8}}
	mrr, err := ExactMaxRegretRatio(pts, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mrr-0.2) > 1e-9 {
		t.Fatalf("mrr = %v, want 0.2", mrr)
	}
}

// The cross-check against the LP-based evaluation lives in
// internal/baseline's tests (baseline imports geom, so the reverse import
// here would cycle).
