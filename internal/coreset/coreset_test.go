package coreset

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

func synthetic(n, d, N int, seed uint64) ([][]float64, []utility.Func) {
	r := rng.New(seed)
	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, d)
		for j := range points[i] {
			points[i][j] = r.Float64()
		}
	}
	funcs := make([]utility.Func, N)
	for u := range funcs {
		w := make([]float64, d)
		for j := range w {
			w[j] = r.Float64()
		}
		funcs[u] = utility.Linear{W: w}
	}
	return points, funcs
}

func TestArgmaxAlwaysSurvives(t *testing.T) {
	points, funcs := synthetic(120, 4, 40, 7)
	got, err := Filter(context.Background(), points, nil, funcs, Options{Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	surv := make(map[int]bool, len(got))
	for _, c := range got {
		surv[c] = true
	}
	for u, f := range funcs {
		best, bi := -1.0, -1
		for p := range points {
			if v := f.Value(p, points[p]); v > best {
				best, bi = v, p
			}
		}
		if best > 0 && !surv[bi] {
			t.Fatalf("user %d argmax %d missing from coreset", u, bi)
		}
	}
	if len(got) == len(points) {
		t.Fatal("coreset pruned nothing on a 120-point instance; test is vacuous")
	}
}

func TestEpsZeroKeepsOnlyArgmaxes(t *testing.T) {
	points, funcs := synthetic(80, 3, 25, 11)
	got, err := Filter(context.Background(), points, nil, funcs, Options{Eps: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int]bool)
	for _, f := range funcs {
		best, bi := -1.0, -1
		for p := range points {
			if v := f.Value(p, points[p]); v > best {
				best, bi = v, p
			}
		}
		if best > 0 {
			want[bi] = true
		}
	}
	// With eps=0 the threshold is the max itself, so survivors are
	// exactly the points achieving some user's max (ties included; none
	// occur for continuous random weights).
	if len(got) != len(want) {
		t.Fatalf("eps=0: %d survivors, want %d argmaxes", len(got), len(want))
	}
	for _, c := range got {
		if !want[c] {
			t.Fatalf("eps=0: survivor %d is no user's argmax", c)
		}
	}
}

func TestMonotoneInEps(t *testing.T) {
	points, funcs := synthetic(150, 4, 30, 3)
	prev := -1
	for _, eps := range []float64{0, 0.01, 0.05, 0.2, 0.5} {
		got, err := Filter(context.Background(), points, nil, funcs, Options{Eps: eps})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) < prev {
			t.Fatalf("eps=%v: %d survivors, fewer than %d at smaller eps", eps, len(got), prev)
		}
		prev = len(got)
	}
}

func TestWorkerCountIndependent(t *testing.T) {
	points, funcs := synthetic(200, 5, 64, 19)
	base, err := Filter(context.Background(), points, nil, funcs, Options{Eps: 0.1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		got, err := Filter(context.Background(), points, nil, funcs, Options{Eps: 0.1, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("workers=%d: survivors diverge from serial run", workers)
		}
	}
}

func TestCandidateSubsetOriginalIndices(t *testing.T) {
	points, _ := synthetic(50, 2, 1, 5)
	// Table utilities key on original row indices; filtering a candidate
	// subset must evaluate at those indices, not positions.
	u := make([]float64, 50)
	u[17] = 1.0
	u[23] = 0.97
	u[4] = 0.5
	funcs := []utility.Func{utility.Table{U: u}}
	cand := []int{4, 17, 23, 31}
	got, err := Filter(context.Background(), points, cand, funcs, Options{Eps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{17, 23}; !reflect.DeepEqual(got, want) {
		t.Fatalf("subset filter = %v, want %v", got, want)
	}
}

func TestDegenerateUsersMarkNothing(t *testing.T) {
	points := [][]float64{{0, 0}, {0, 0}}
	funcs := []utility.Func{utility.Linear{W: []float64{1, 1}}}
	got, err := Filter(context.Background(), points, nil, funcs, Options{Eps: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("degenerate-only instance should yield empty coreset, got %v", got)
	}
}

func TestBadEps(t *testing.T) {
	points, funcs := synthetic(10, 2, 3, 1)
	for _, eps := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := Filter(context.Background(), points, nil, funcs, Options{Eps: eps}); !errors.Is(err, ErrBadEps) {
			t.Fatalf("eps=%v: want ErrBadEps, got %v", eps, err)
		}
	}
}

func TestInvalidUtilitySurfaces(t *testing.T) {
	points := [][]float64{{1, 1}}
	funcs := []utility.Func{utility.Linear{W: []float64{-1, 0}}}
	if _, err := Filter(context.Background(), points, nil, funcs, Options{Eps: 0.1}); err == nil {
		t.Fatal("negative utility must be rejected")
	}
}
