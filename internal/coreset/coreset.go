// Package coreset implements the ε-kernel candidate filter that makes
// the n=10⁶ regime tractable: before any solver runs, candidates that
// are never within ε of best for any sampled utility function are
// dropped. A candidate c survives iff some user u has
//
//	f_u(c) ≥ (1−ε) · max_{c'} f_u(c'),
//
// i.e. c is the argmax of some sampled utility or within ε of one. The
// per-user argmax always survives (it trivially satisfies its own
// threshold), so every user's satisfaction over the pruned set equals
// their satisfaction over the full candidate set — satD and bestD are
// unchanged, and the average regret ratio reported for any selection
// over the pruned candidates is still the database-level value. What
// pruning can cost is solution quality, bounded by ε: a dropped
// candidate improves no user by more than an ε fraction of their best,
// which is the ε-kernel guarantee of Agarwal–Kumar–Sintos–Suri that
// greedy over a coreset preserves its approximation factor up to ε.
//
// Determinism: survival marks are per-(user, candidate) pure predicates
// OR-merged across users, so the surviving set — returned in ascending
// original-index order — is identical at any worker count.
package coreset

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/sched"
	"github.com/regretlab/fam/internal/utility"
)

// Options configures the filter.
type Options struct {
	// Eps is the kernel tolerance in [0, 1): a candidate survives when
	// it reaches (1−Eps) of some user's best utility. Zero keeps only
	// exact (possibly tied) per-user argmaxes.
	Eps float64
	// Parallelism bounds the worker goroutines sharding the per-user
	// scans (0 = all CPUs, 1 = serial). The result is identical at any
	// setting.
	Parallelism int
	// Pool is an externally owned worker pool; nil spawns per-call
	// goroutines.
	Pool *par.Pool
	// Sched tags pool fan-outs with default scheduling attributes.
	Sched sched.Attrs
}

// ErrBadEps is returned when the tolerance is outside [0, 1).
var ErrBadEps = errors.New("coreset: eps must satisfy 0 <= eps < 1")

// Filter returns the surviving subset of cand in ascending original-
// index order. points is the full dataset — candidates are evaluated at
// their original indices so index-keyed utility functions (utility.Table)
// resolve correctly. cand must be sorted ascending; a nil cand means
// every point is a candidate. Users whose best utility over the
// candidates is non-positive are degenerate and mark no survivors,
// mirroring instance preprocessing. Utilities must be non-negative and
// finite; violations are reported in deterministic (user, candidate)
// order.
func Filter(ctx context.Context, points [][]float64, cand []int, funcs []utility.Func, opts Options) ([]int, error) {
	if opts.Eps < 0 || opts.Eps >= 1 || math.IsNaN(opts.Eps) {
		return nil, fmt.Errorf("%w: got %v", ErrBadEps, opts.Eps)
	}
	if cand == nil {
		cand = make([]int, len(points))
		for i := range cand {
			cand[i] = i
		}
	}
	m, N := len(cand), len(funcs)
	if m == 0 || N == 0 {
		return []int{}, nil
	}

	// Each worker owns a contiguous user range and a private mark array;
	// marks are true-only, so the OR-merge across workers is idempotent
	// and the survivor set is worker-count independent.
	workers := par.Workers(opts.Parallelism, N)
	marks := make([][]bool, workers)
	errs := make([]error, workers)
	err := opts.Pool.Shards(sched.ContextWithDefault(ctx, opts.Sched), workers, N, func(w, lo, hi int) {
		mark := make([]bool, m)
		vals := make([]float64, m)
		for u := lo; u < hi; u++ {
			if ctx.Err() != nil {
				return
			}
			f := funcs[u]
			best := -1.0
			for i, c := range cand {
				v := f.Value(c, points[c])
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					if errs[w] == nil {
						errs[w] = fmt.Errorf("coreset: utility function %d returned %v for point %d (must be a non-negative finite value)", u, v, c)
					}
					return
				}
				vals[i] = v
				if v > best {
					best = v
				}
			}
			if best <= 0 {
				continue // degenerate user: no point satisfies them
			}
			thresh := (1 - opts.Eps) * best
			for i := range vals {
				if vals[i] >= thresh {
					mark[i] = true
				}
			}
		}
		marks[w] = mark
	})
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	out := make([]int, 0, m)
	for i, c := range cand {
		for w := 0; w < workers; w++ {
			if marks[w] != nil && marks[w][i] {
				out = append(out, c)
				break
			}
		}
	}
	return out, nil
}
