// Package dataset provides every point set the evaluation consumes: the
// Börzsönyi-style synthetic generator (independent / correlated /
// anti-correlated), deterministic simulated stand-ins for the paper's real
// datasets (NBA, Household-6d, Forest Cover, US Census), a planted low-rank
// ratings generator for the Yahoo!-style pipeline, and CSV input/output.
//
// All generators are seeded and deterministic. Attribute semantics follow
// the skyline convention: larger is better on every attribute, values lie
// in [0, 1] after generation.
package dataset

import (
	"errors"
	"fmt"

	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/rng"
)

// Dataset is a named point set with optional attribute and row labels.
type Dataset struct {
	Name   string
	Attrs  []string    // attribute names, len == dimension
	Labels []string    // optional row labels (e.g. player names), len == n or nil
	Points [][]float64 // n rows of d attributes, larger-is-better, in [0,1]
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// Dim returns the attribute dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	dim, err := point.Validate(d.Points)
	if err != nil {
		return fmt.Errorf("dataset %q: %w", d.Name, err)
	}
	if d.Attrs != nil {
		if len(d.Attrs) != dim {
			return fmt.Errorf("dataset %q: %d attribute names for dimension %d", d.Name, len(d.Attrs), dim)
		}
		for i, a := range d.Attrs {
			// Empty names break CSV round-trips (encoding/csv treats an
			// all-empty record as a blank line and skips it on read).
			if a == "" {
				return fmt.Errorf("dataset %q: attribute %d has an empty name", d.Name, i)
			}
		}
	}
	if d.Labels != nil && len(d.Labels) != len(d.Points) {
		return fmt.Errorf("dataset %q: %d labels for %d points", d.Name, len(d.Labels), len(d.Points))
	}
	return nil
}

// Label returns the label of row i, synthesizing "row-i" when labels are
// absent.
func (d *Dataset) Label(i int) string {
	if d.Labels != nil && i >= 0 && i < len(d.Labels) {
		return d.Labels[i]
	}
	return fmt.Sprintf("row-%d", i)
}

// Subset returns a new dataset restricted to the given row indices.
func (d *Dataset) Subset(indices []int, name string) *Dataset {
	out := &Dataset{Name: name, Attrs: d.Attrs}
	out.Points = point.Select(d.Points, indices)
	if d.Labels != nil {
		out.Labels = make([]string, len(indices))
		for i, idx := range indices {
			out.Labels[i] = d.Labels[idx]
		}
	}
	return out
}

// Correlation selects the attribute dependence structure of Synthetic.
type Correlation int

// Synthetic data families from the skyline-operator paper, plus the
// spherical variant common in the regret-minimization literature.
const (
	Independent    Correlation = iota // attributes i.i.d. uniform
	Correlated                        // attributes positively coupled
	Anticorrelated                    // good on one attribute ⇒ bad on others (planar front)
	Spherical                         // anticorrelated with a convex front (spherical shell)
)

func (c Correlation) String() string {
	switch c {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case Anticorrelated:
		return "anticorrelated"
	case Spherical:
		return "spherical"
	default:
		return fmt.Sprintf("dataset.Correlation(%d)", int(c))
	}
}

// ErrBadShape is returned for non-positive sizes or dimensions.
var ErrBadShape = errors.New("dataset: n and d must be positive")

// Synthetic generates n points of dimension d with the requested
// correlation structure, in the style of the generator of Börzsönyi,
// Kossmann and Stocker (ICDE 2001).
func Synthetic(n, d int, corr Correlation, seed uint64) (*Dataset, error) {
	if n <= 0 || d <= 0 {
		return nil, fmt.Errorf("%w: n=%d d=%d", ErrBadShape, n, d)
	}
	g := rng.New(seed)
	pts := make([][]float64, n)
	switch corr {
	case Independent:
		for i := range pts {
			p := make([]float64, d)
			g.UniformVec(p)
			pts[i] = p
		}
	case Correlated:
		// A base quality plus small symmetric jitter per attribute.
		for i := range pts {
			base := g.Float64()
			p := make([]float64, d)
			for j := range p {
				p[j] = clamp01(base + 0.15*g.Normal())
			}
			pts[i] = p
		}
	case Anticorrelated:
		// Points near the hyperplane Σx = d/2: a random split of a fixed
		// budget plus jitter, so excelling on one attribute costs others.
		for i := range pts {
			w := g.Dirichlet(1, d)
			p := make([]float64, d)
			for j := range p {
				p[j] = clamp01(w[j]*float64(d)/2 + 0.05*g.Normal())
			}
			pts[i] = p
		}
	case Spherical:
		// Points near a spherical shell in the non-negative orthant:
		// unlike the planar anticorrelated front, the shell is strictly
		// convex, so under linear utilities every direction has its own
		// best point and small selections necessarily leave regret — the
		// regime the k-regret literature studies.
		for i := range pts {
			dir := g.UnitSphereNonNeg(d)
			// A thin shell keeps the front close to the sphere itself: a
			// wide radial spread would let a few outer points dominate and
			// flatten the effective front into a polygon.
			r := 0.92 + 0.02*g.Normal()
			p := make([]float64, d)
			for j := range p {
				p[j] = clamp01(r * dir[j])
			}
			pts[i] = p
		}
	default:
		return nil, fmt.Errorf("dataset: unknown correlation %d", int(corr))
	}
	ds := &Dataset{
		Name:   fmt.Sprintf("synthetic-%s(n=%d,d=%d)", corr, n, d),
		Attrs:  genericAttrs(d),
		Points: pts,
	}
	return ds, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func genericAttrs(d int) []string {
	out := make([]string, d)
	for i := range out {
		out[i] = fmt.Sprintf("a%d", i)
	}
	return out
}
