package dataset

import (
	"fmt"

	"github.com/regretlab/fam/internal/rng"
)

// Rating is one observed (user, item, score) triple of a sparse ratings
// matrix, the input format of the Yahoo!-style pipeline (Section V-B2).
type Rating struct {
	User  int
	Item  int
	Score float64
}

// RatingsData is a sparse ratings matrix with planted ground truth. The
// planted factors are exported so tests can verify that matrix
// factorization recovers the structure; the pipeline itself never reads
// them.
type RatingsData struct {
	NumUsers int
	NumItems int
	Ratings  []Rating
	// TrueUserF and TrueItemF are the planted latent factors
	// (NumUsers×rank and NumItems×rank). Score(u,i) before noise is
	// TrueUserF[u]·TrueItemF[i].
	TrueUserF [][]float64
	TrueItemF [][]float64
}

// SimulatedRatings plants a low-rank preference structure with user
// archetypes (mirroring genre clusters in music ratings: the learned Θ
// should be multi-modal, which is why the paper fits a 5-component GMM) and
// returns a sparse sample of noisy ratings.
//
// density is the fraction of (user, item) cells observed; noise is the
// standard deviation of additive Gaussian rating noise.
func SimulatedRatings(numUsers, numItems, rank, archetypes int, density, noise float64, seed uint64) (*RatingsData, error) {
	if numUsers <= 0 || numItems <= 0 || rank <= 0 || archetypes <= 0 {
		return nil, fmt.Errorf("%w: users=%d items=%d rank=%d archetypes=%d", ErrBadShape, numUsers, numItems, rank, archetypes)
	}
	if density <= 0 || density > 1 {
		return nil, fmt.Errorf("dataset: density must be in (0,1], got %v", density)
	}
	if noise < 0 {
		return nil, fmt.Errorf("dataset: noise must be non-negative, got %v", noise)
	}
	g := rng.New(seed)

	// Archetype centers in latent space: well-separated non-negative
	// directions so the user population is genuinely multi-modal.
	centers := make([][]float64, archetypes)
	for a := range centers {
		c := make([]float64, rank)
		for j := range c {
			c[j] = 0.1 + 0.9*g.Float64()
		}
		// Emphasize a signature coordinate per archetype.
		c[a%rank] += 1.5
		centers[a] = c
	}

	userF := make([][]float64, numUsers)
	for u := range userF {
		a := centers[g.IntN(archetypes)]
		f := make([]float64, rank)
		for j := range f {
			// Wide within-archetype spread keeps the population genuinely
			// diverse: a handful of items cannot satisfy every listener.
			f[j] = a[j] + 0.5*g.Normal()
			if f[j] < 0 {
				f[j] = 0
			}
		}
		userF[u] = f
	}
	itemF := make([][]float64, numItems)
	for i := range itemF {
		f := make([]float64, rank)
		for j := range f {
			f[j] = g.Float64()
		}
		itemF[i] = f
	}

	var ratings []Rating
	for u := 0; u < numUsers; u++ {
		for i := 0; i < numItems; i++ {
			if g.Float64() >= density {
				continue
			}
			var s float64
			for j := 0; j < rank; j++ {
				s += userF[u][j] * itemF[i][j]
			}
			s += noise * g.Normal()
			if s < 0 {
				s = 0
			}
			ratings = append(ratings, Rating{User: u, Item: i, Score: s})
		}
	}
	if len(ratings) == 0 {
		return nil, fmt.Errorf("dataset: density %v produced no ratings", density)
	}
	return &RatingsData{
		NumUsers:  numUsers,
		NumItems:  numItems,
		Ratings:   ratings,
		TrueUserF: userF,
		TrueItemF: itemF,
	}, nil
}
