package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/regretlab/fam/internal/skyline"
)

func TestSyntheticShapes(t *testing.T) {
	for _, corr := range []Correlation{Independent, Correlated, Anticorrelated, Spherical} {
		ds, err := Synthetic(200, 4, corr, 1)
		if err != nil {
			t.Fatal(err)
		}
		if ds.N() != 200 || ds.Dim() != 4 {
			t.Fatalf("%s: shape %dx%d", corr, ds.N(), ds.Dim())
		}
		if err := ds.Validate(); err != nil {
			t.Fatal(err)
		}
		for _, p := range ds.Points {
			for _, v := range p {
				if v < 0 || v > 1 {
					t.Fatalf("%s: value %v out of [0,1]", corr, v)
				}
			}
		}
	}
	if _, err := Synthetic(0, 3, Independent, 1); err == nil {
		t.Fatal("n=0 must error")
	}
	if _, err := Synthetic(10, 0, Independent, 1); err == nil {
		t.Fatal("d=0 must error")
	}
	if _, err := Synthetic(10, 3, Correlation(99), 1); err == nil {
		t.Fatal("unknown correlation must error")
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, _ := Synthetic(50, 3, Anticorrelated, 42)
	b, _ := Synthetic(50, 3, Anticorrelated, 42)
	c, _ := Synthetic(50, 3, Anticorrelated, 43)
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != b.Points[i][j] {
				t.Fatal("same seed must reproduce data")
			}
		}
	}
	diff := false
	for i := range a.Points {
		for j := range a.Points[i] {
			if a.Points[i][j] != c.Points[i][j] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

// Skyline sizes must order as anticorrelated > independent > correlated —
// the defining property of the Börzsönyi generator families.
func TestSyntheticSkylineOrdering(t *testing.T) {
	sizes := map[Correlation]int{}
	for _, corr := range []Correlation{Independent, Correlated, Anticorrelated} {
		ds, err := Synthetic(2000, 5, corr, 7)
		if err != nil {
			t.Fatal(err)
		}
		sky, err := skyline.Compute(ds.Points)
		if err != nil {
			t.Fatal(err)
		}
		sizes[corr] = len(sky)
	}
	if !(sizes[Anticorrelated] > sizes[Independent] && sizes[Independent] > sizes[Correlated]) {
		t.Fatalf("skyline sizes anti=%d indep=%d corr=%d violate expected ordering",
			sizes[Anticorrelated], sizes[Independent], sizes[Correlated])
	}
}

func TestSimulatedRealDatasets(t *testing.T) {
	cases := []struct {
		name string
		gen  func(int, uint64) (*Dataset, error)
		d    int
	}{
		{"nba", SimulatedNBA, 15},
		{"nba22", SimulatedNBA22, 22},
		{"household", SimulatedHousehold, 6},
		{"forest", SimulatedForestCover, 11},
		{"census", SimulatedUSCensus, 10},
		{"hotels", Hotels, 5},
	}
	for _, c := range cases {
		ds, err := c.gen(300, 11)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ds.N() != 300 || ds.Dim() != c.d {
			t.Fatalf("%s: shape %dx%d, want 300x%d", c.name, ds.N(), ds.Dim(), c.d)
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if _, err := c.gen(0, 1); err == nil {
			t.Fatalf("%s: n=0 must error", c.name)
		}
	}
	// Labeled datasets expose labels.
	nba, _ := SimulatedNBA(10, 1)
	if nba.Labels == nil || nba.Label(3) == "" {
		t.Fatal("NBA stand-in should carry labels")
	}
	house, _ := SimulatedHousehold(10, 1)
	if got := house.Label(2); got != "row-2" {
		t.Fatalf("unlabeled fallback = %q", got)
	}
}

// The role model must produce specialization: the NBA stand-in's skyline
// should contain players of different roles, i.e., more than a couple of
// points even though abilities are scalar.
func TestSimulatedNBASkylineNotTrivial(t *testing.T) {
	ds, err := SimulatedNBA(1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := skyline.Compute(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) < 10 {
		t.Fatalf("NBA skyline suspiciously small: %d", len(sky))
	}
	if len(sky) == ds.N() {
		t.Fatal("NBA skyline should not be the whole dataset")
	}
}

func TestSubset(t *testing.T) {
	ds, _ := SimulatedNBA(20, 1)
	sub := ds.Subset([]int{3, 5}, "sub")
	if sub.N() != 2 || sub.Label(0) != ds.Label(3) || sub.Label(1) != ds.Label(5) {
		t.Fatalf("Subset wrong: %+v", sub.Labels)
	}
	if &sub.Points[0][0] != &ds.Points[3][0] {
		t.Fatal("Subset should share point storage")
	}
}

func TestValidateCatchesInconsistency(t *testing.T) {
	d := &Dataset{Name: "x", Points: [][]float64{{1, 2}}, Attrs: []string{"a"}}
	if err := d.Validate(); err == nil {
		t.Fatal("attr count mismatch must error")
	}
	d = &Dataset{Name: "x", Points: [][]float64{{1}}, Labels: []string{"a", "b"}}
	if err := d.Validate(); err == nil {
		t.Fatal("label count mismatch must error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := Hotels(25, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "hotels-rt")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatalf("round trip shape %dx%d", back.N(), back.Dim())
	}
	for i := range ds.Points {
		if back.Labels[i] != ds.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for j := range ds.Points[i] {
			if back.Points[i][j] != ds.Points[i][j] {
				t.Fatalf("value (%d,%d) mismatch: %v vs %v", i, j, back.Points[i][j], ds.Points[i][j])
			}
		}
	}
	for j, a := range ds.Attrs {
		if back.Attrs[j] != a {
			t.Fatalf("attr %d mismatch", j)
		}
	}
}

func TestCSVNoLabels(t *testing.T) {
	ds, _ := Synthetic(5, 2, Independent, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "label") {
		t.Fatal("unlabeled dataset should not emit a label column")
	}
	back, err := ReadCSV(&buf, "x")
	if err != nil {
		t.Fatal(err)
	}
	if back.Labels != nil {
		t.Fatal("no labels expected")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"label\n",             // no attribute columns
		"a,b\n1\n",            // short row (csv lib errors on field count)
		"a,b\n1,notanumber\n", // bad float
		"a\n",                 // header only, no rows
		"a,b\n1,NaN\n",        // NaN fails dataset validation
	}
	for i, s := range cases {
		if _, err := ReadCSV(strings.NewReader(s), "bad"); err == nil {
			t.Errorf("case %d should error: %q", i, s)
		}
	}
}

func TestSimulatedRatings(t *testing.T) {
	rd, err := SimulatedRatings(50, 30, 4, 3, 0.5, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumUsers != 50 || rd.NumItems != 30 {
		t.Fatalf("shape %dx%d", rd.NumUsers, rd.NumItems)
	}
	exp := 50.0 * 30.0 * 0.5
	if got := float64(len(rd.Ratings)); math.Abs(got-exp) > exp*0.2 {
		t.Fatalf("got %v ratings, expected about %v", got, exp)
	}
	for _, r := range rd.Ratings {
		if r.User < 0 || r.User >= 50 || r.Item < 0 || r.Item >= 30 {
			t.Fatalf("rating out of range: %+v", r)
		}
		if r.Score < 0 {
			t.Fatalf("negative score: %+v", r)
		}
	}
	if len(rd.TrueUserF) != 50 || len(rd.TrueItemF) != 30 || len(rd.TrueUserF[0]) != 4 {
		t.Fatal("planted factors missing")
	}
	// Parameter validation.
	bad := []struct {
		u, i, r, a int
		den, noise float64
	}{
		{0, 1, 1, 1, 0.5, 0}, {1, 0, 1, 1, 0.5, 0}, {1, 1, 0, 1, 0.5, 0},
		{1, 1, 1, 0, 0.5, 0}, {1, 1, 1, 1, 0, 0}, {1, 1, 1, 1, 1.5, 0},
		{1, 1, 1, 1, 0.5, -1},
	}
	for i, c := range bad {
		if _, err := SimulatedRatings(c.u, c.i, c.r, c.a, c.den, c.noise, 1); err == nil {
			t.Errorf("bad case %d should error", i)
		}
	}
}

func TestCorrelationString(t *testing.T) {
	if Independent.String() != "independent" || Correlated.String() != "correlated" ||
		Anticorrelated.String() != "anticorrelated" || Spherical.String() != "spherical" ||
		Correlation(9).String() == "" {
		t.Fatal("Correlation.String broken")
	}
}

// The spherical family must produce a convex front: its skyline is large
// and no single point covers most linear users (unlike correlated data).
func TestSphericalFrontIsHard(t *testing.T) {
	ds, err := Synthetic(3000, 2, Spherical, 5)
	if err != nil {
		t.Fatal(err)
	}
	sky, err := skyline.Compute(ds.Points)
	if err != nil {
		t.Fatal(err)
	}
	if len(sky) < 15 {
		t.Fatalf("spherical 2-d skyline = %d, expected a wide front", len(sky))
	}
}
