package dataset

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV hardens the CSV loader against malformed input: whatever the
// bytes, it must either return a structurally valid dataset or an error —
// never panic, and never hand back a dataset that fails its own Validate.
func FuzzReadCSV(f *testing.F) {
	f.Add("a,b\n1,2\n3,4\n")
	f.Add("label,a\nx,1\n")
	f.Add("a\n\n")
	f.Add("a,b\n1\n")
	f.Add("a,b\n1,NaN\n")
	f.Add("label\n")
	f.Add(",,,\n1,2,3,4\n")
	f.Add("a,b\n1e308,2e308\n")
	f.Add("a;b\n1;2\n")
	f.Fuzz(func(t *testing.T, input string) {
		ds, err := ReadCSV(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		if vErr := ds.Validate(); vErr != nil {
			t.Fatalf("ReadCSV accepted %q but Validate rejects it: %v", input, vErr)
		}
		// Accepted datasets must round-trip.
		var buf bytes.Buffer
		if wErr := WriteCSV(&buf, ds); wErr != nil {
			t.Fatalf("round-trip write failed for %q: %v", input, wErr)
		}
		back, rErr := ReadCSV(&buf, "fuzz-rt")
		if rErr != nil {
			t.Fatalf("round-trip read failed for %q: %v", input, rErr)
		}
		if back.N() != ds.N() || back.Dim() != ds.Dim() {
			t.Fatalf("round trip changed shape for %q", input)
		}
	})
}
