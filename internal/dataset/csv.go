package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the dataset with a header row of attribute names. When
// the dataset has row labels, a leading "label" column is emitted.
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	hasLabels := d.Labels != nil
	header := make([]string, 0, d.Dim()+1)
	if hasLabels {
		header = append(header, "label")
	}
	if d.Attrs != nil {
		header = append(header, d.Attrs...)
	} else {
		header = append(header, genericAttrs(d.Dim())...)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	row := make([]string, 0, len(header))
	for i, p := range d.Points {
		row = row[:0]
		if hasLabels {
			row = append(row, d.Labels[i])
		}
		for _, v := range p {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset written by WriteCSV (or any CSV whose first row
// is a header). A leading column named "label" is treated as row labels;
// all remaining columns must be numeric.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if len(header) == 0 {
		return nil, errors.New("dataset: empty header")
	}
	hasLabels := header[0] == "label"
	attrStart := 0
	if hasLabels {
		attrStart = 1
	}
	if len(header) == attrStart {
		return nil, errors.New("dataset: no attribute columns")
	}
	for i, name := range header[attrStart:] {
		if name == "" {
			return nil, fmt.Errorf("dataset: attribute column %d has an empty name", i)
		}
	}
	attrs := append([]string(nil), header[attrStart:]...)
	d := &Dataset{Name: name, Attrs: attrs}
	if hasLabels {
		d.Labels = []string{}
	}
	rowNum := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading row %d: %w", rowNum, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", rowNum, len(rec), len(header))
		}
		p := make([]float64, len(attrs))
		for j, s := range rec[attrStart:] {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %q: %w", rowNum, attrs[j], err)
			}
			p[j] = v
		}
		if hasLabels {
			d.Labels = append(d.Labels, rec[0])
		}
		d.Points = append(d.Points, p)
		rowNum++
	}
	if len(d.Points) == 0 {
		return nil, errors.New("dataset: no data rows")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
