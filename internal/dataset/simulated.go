package dataset

import (
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/rng"
)

// This file builds deterministic stand-ins for the paper's real datasets
// (Table IV). The originals (basketballreference.com, IPUMS, UCI KDD) are
// not redistributable here, so each stand-in is a generative model tuned to
// the structural property that drives the algorithms' behaviour on the real
// data: performance/price attributes are positively correlated with
// role-dependent specialization, which yields moderately sized skylines and
// the regret-ratio decay the paper reports. Sizes and dimensionalities
// default to the paper's (Table IV) but are parameterized so tests and CI
// benches can run scaled down.

// nbaStatNames are the per-season statistical categories of the 15-d NBA
// stand-in.
var nbaStatNames = []string{
	"pts", "reb", "ast", "stl", "blk", "fgm", "fga", "ftm", "fta", "tpm",
	"min", "gp", "oreb", "dreb", "tov_inv",
}

// nbaRoles capture the specialization pattern of basketball positions:
// each role boosts a subset of statistics. Index into nbaStatNames.
var nbaRoles = [][]int{
	{0, 5, 6, 9},      // scoring guard: points, field goals, threes
	{2, 3, 0, 10},     // playmaker: assists, steals, minutes
	{1, 4, 12, 13},    // center: rebounds, blocks
	{0, 1, 5, 10, 11}, // forward: points+rebounds, durability
	{3, 4, 14, 13},    // defensive specialist
}

// SimulatedNBA generates an NBA-style dataset with n players and the
// paper's 15 statistical dimensions. Player quality follows a heavy-tailed
// latent ability; each player has a role that concentrates his output on a
// subset of statistics, which is what makes small representative sets
// meaningful (guards cannot cover fans who value rebounds).
func SimulatedNBA(n int, seed uint64) (*Dataset, error) {
	return simulatedRoleData("nba-sim", n, nbaStatNames, nbaRoles, seed)
}

// SimulatedNBA22 generates the 22-dimensional variant used by the paper's
// Section V-A survey experiment (664 players, 22 statistics).
func SimulatedNBA22(n int, seed uint64) (*Dataset, error) {
	attrs := make([]string, 22)
	copy(attrs, nbaStatNames)
	for i := len(nbaStatNames); i < 22; i++ {
		attrs[i] = fmt.Sprintf("adv%d", i-len(nbaStatNames))
	}
	roles := [][]int{
		{0, 5, 6, 9, 15}, {2, 3, 10, 16}, {1, 4, 12, 13, 17},
		{0, 1, 5, 11, 18}, {3, 4, 14, 19}, {0, 2, 20, 21},
	}
	ds, err := simulatedRoleData("nba22-sim", n, attrs, roles, seed)
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// simulatedRoleData is the shared latent-ability + role model.
func simulatedRoleData(name string, n int, attrs []string, roles [][]int, seed uint64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadShape, n)
	}
	d := len(attrs)
	g := rng.New(seed)
	pts := make([][]float64, n)
	labels := make([]string, n)
	for i := range pts {
		// Heavy-tailed ability: a few stars, many journeymen.
		ability := g.Gamma(2) / 6
		if ability > 1 {
			ability = 1
		}
		role := roles[g.IntN(len(roles))]
		boosted := make(map[int]bool, len(role))
		for _, j := range role {
			boosted[j] = true
		}
		p := make([]float64, d)
		for j := range p {
			base := 0.25 * ability
			if boosted[j] {
				base = ability
			}
			p[j] = clamp01(base * (0.7 + 0.6*g.Float64()))
		}
		pts[i] = p
		labels[i] = fmt.Sprintf("%s-player-%03d", name, i)
	}
	norm, err := point.Normalize(pts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: fmt.Sprintf("%s(n=%d,d=%d)", name, n, d), Attrs: attrs, Labels: labels, Points: norm}, nil
}

// SimulatedHousehold generates the 6-attribute household-economics
// stand-in (the paper's Household-6d has n = 127,931, d = 6). Households
// have a latent wealth level; attributes (all oriented larger-is-better)
// correlate with wealth with attribute-specific noise.
func SimulatedHousehold(n int, seed uint64) (*Dataset, error) {
	attrs := []string{"income", "rooms", "vehicles", "education", "insurance", "savings"}
	return simulatedWealthData("household6d-sim", n, attrs, 0.25, seed)
}

// SimulatedForestCover generates the 11-attribute Forest-Cover stand-in
// (paper: n = 100,000, d = 11): terrain attributes with two weakly coupled
// latent factors (elevation regime and hydrology).
func SimulatedForestCover(n int, seed uint64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadShape, n)
	}
	attrs := []string{
		"elevation", "aspect", "slope_inv", "h_dist_hydro_inv", "v_dist_hydro_inv",
		"h_dist_road_inv", "hillshade_9am", "hillshade_noon", "hillshade_3pm",
		"h_dist_fire_inv", "soil_quality",
	}
	g := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		elev := g.Float64()
		hydro := g.Float64()
		p := make([]float64, len(attrs))
		for j := range p {
			var mu float64
			switch {
			case j < 3 || j >= 6 && j <= 8: // terrain/shade follow elevation
				mu = elev
			case j < 6: // distances follow hydrology
				mu = hydro
			default: // fire distance and soil mix both
				mu = 0.5*elev + 0.5*hydro
			}
			p[j] = clamp01(mu + 0.2*g.Normal())
		}
		pts[i] = p
	}
	norm, err := point.Normalize(pts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: fmt.Sprintf("forestcover-sim(n=%d,d=%d)", n, len(attrs)), Attrs: attrs, Points: norm}, nil
}

// SimulatedUSCensus generates the 10-attribute US-Census stand-in
// (paper: n = 100,000, d = 10).
func SimulatedUSCensus(n int, seed uint64) (*Dataset, error) {
	attrs := []string{
		"income", "education", "hours", "capital_gain", "age_score",
		"occupation_rank", "household_size_inv", "commute_inv", "home_value", "benefits",
	}
	return simulatedWealthData("uscensus-sim", n, attrs, 0.3, seed)
}

// simulatedWealthData draws each record around a latent prosperity level
// combined with a per-record allocation of that prosperity across the
// attributes (a household trades income against savings, education against
// hours, …). The wealth term produces the positive correlation typical of
// economic data; the allocation term produces the attribute trade-offs
// that give real datasets their non-trivial skylines.
func simulatedWealthData(name string, n int, attrs []string, noise float64, seed uint64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadShape, n)
	}
	d := len(attrs)
	g := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		wealth := g.Float64()
		alloc := g.Dirichlet(1, d)
		p := make([]float64, d)
		for j := range p {
			// sqrt of a Dirichlet draw lies on the unit sphere: the
			// allocation front is convex, so no single record serves every
			// preference — the property that makes representative-set
			// selection on real economic data non-trivial.
			p[j] = clamp01(0.35*wealth + 0.65*math.Sqrt(alloc[j]) + noise*g.Normal())
		}
		pts[i] = p
	}
	norm, err := point.Normalize(pts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: fmt.Sprintf("%s(n=%d,d=%d)", name, n, d), Attrs: attrs, Points: norm}, nil
}

// Hotels generates the hotel-booking scenario of the paper's introduction:
// n hotels described by price value, rating, location and amenity scores,
// with realistic trade-offs (central location costs money; luxury hotels
// rate higher).
func Hotels(n int, seed uint64) (*Dataset, error) {
	if n <= 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadShape, n)
	}
	attrs := []string{"price_value", "rating", "location", "amenities", "quietness"}
	g := rng.New(seed)
	pts := make([][]float64, n)
	labels := make([]string, n)
	for i := range pts {
		luxury := g.Float64() // 0 = budget, 1 = luxury
		central := g.Float64()
		p := make([]float64, len(attrs))
		p[0] = clamp01(1 - 0.6*luxury - 0.3*central + 0.15*g.Normal()) // value for money
		p[1] = clamp01(0.3 + 0.6*luxury + 0.1*g.Normal())              // rating
		p[2] = clamp01(central + 0.1*g.Normal())                       // location
		p[3] = clamp01(0.2 + 0.7*luxury + 0.15*g.Normal())             // amenities
		p[4] = clamp01(1 - 0.7*central + 0.15*g.Normal())              // quietness
		pts[i] = p
		labels[i] = fmt.Sprintf("hotel-%03d", i)
	}
	norm, err := point.Normalize(pts)
	if err != nil {
		return nil, err
	}
	return &Dataset{Name: fmt.Sprintf("hotels(n=%d)", n), Attrs: attrs, Labels: labels, Points: norm}, nil
}
