// Package stats provides the summary statistics the evaluation section
// reports: mean, standard deviation, and the regret-ratio-at-percentile
// curves of Figures 3 and 10–12.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic of an empty sample is requested.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs)), nil
}

// Variance returns the population variance of xs (the paper's Definition 5
// is a population quantity over the sampled users, not an n-1 estimator).
func Variance(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using the
// nearest-rank method on a sorted copy, matching "the regret ratio at the
// q-th percentile of users" in the paper: the value v such that q percent
// of users have regret ratio at most v.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1], nil
}

// Percentiles evaluates several percentiles with one sort.
func Percentiles(xs []float64, ps []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of [0,100]")
		}
		if p == 0 {
			out[i] = sorted[0]
			continue
		}
		rank := int(math.Ceil(p / 100 * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out, nil
}

// WeightedMean returns Σ w_i·x_i / Σ w_i. Weights must be non-negative
// with positive total.
func WeightedMean(xs, ws []float64) (float64, error) {
	if err := checkWeights(xs, ws); err != nil {
		return 0, err
	}
	var num, den float64
	for i, x := range xs {
		num += ws[i] * x
		den += ws[i]
	}
	return num / den, nil
}

// WeightedVariance returns the weighted population variance
// Σ w_i·(x_i − μ)² / Σ w_i with μ the weighted mean.
func WeightedVariance(xs, ws []float64) (float64, error) {
	m, err := WeightedMean(xs, ws)
	if err != nil {
		return 0, err
	}
	var num, den float64
	for i, x := range xs {
		d := x - m
		num += ws[i] * d * d
		den += ws[i]
	}
	return num / den, nil
}

// WeightedPercentiles generalizes Percentiles by nearest-rank on the
// cumulative weight: the p-th percentile is the smallest value v with
// cumulative weight(x ≤ v) ≥ p% of the total weight.
func WeightedPercentiles(xs, ws []float64, ps []float64) ([]float64, error) {
	if err := checkWeights(xs, ws); err != nil {
		return nil, err
	}
	type pair struct{ x, w float64 }
	pairs := make([]pair, len(xs))
	var total float64
	for i := range xs {
		pairs[i] = pair{xs[i], ws[i]}
		total += ws[i]
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })
	out := make([]float64, len(ps))
	for pi, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("stats: percentile out of [0,100]")
		}
		target := p / 100 * total
		var cum float64
		val := pairs[len(pairs)-1].x
		for _, pr := range pairs {
			cum += pr.w
			if cum >= target {
				val = pr.x
				break
			}
		}
		if p == 0 {
			val = pairs[0].x
		}
		out[pi] = val
	}
	return out, nil
}

func checkWeights(xs, ws []float64) error {
	if len(xs) == 0 {
		return ErrEmpty
	}
	if len(ws) != len(xs) {
		return errors.New("stats: weights length mismatch")
	}
	var total float64
	for _, w := range ws {
		if w < 0 || math.IsNaN(w) {
			return errors.New("stats: weights must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		return errors.New("stats: total weight must be positive")
	}
	return nil
}

// Summary bundles the statistics every experiment reports for a sample of
// per-user regret ratios.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	mn, mx := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	return Summary{N: len(xs), Mean: m, StdDev: sd, Min: mn, Max: mx}, nil
}
