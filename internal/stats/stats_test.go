package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	m, err := Mean(xs)
	if err != nil || m != 2.5 {
		t.Fatalf("Mean = %v, %v", m, err)
	}
	v, err := Variance(xs)
	if err != nil || math.Abs(v-1.25) > 1e-12 {
		t.Fatalf("Variance = %v, %v", v, err)
	}
	sd, err := StdDev(xs)
	if err != nil || math.Abs(sd-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("StdDev = %v, %v", sd, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("empty Mean must error")
	}
	if _, err := Variance(nil); err == nil {
		t.Fatal("empty Variance must error")
	}
	if _, err := StdDev(nil); err == nil {
		t.Fatal("empty StdDev must error")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4} // sorted: 1 2 3 4 5
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {60, 3}, {80, 4}, {100, 5}, {99, 5},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil || got != c.want {
			t.Errorf("Percentile(%v) = %v (%v), want %v", c.p, got, err, c.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Fatal("negative percentile must error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile > 100 must error")
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("empty sample must error")
	}
	// Input is not modified.
	if xs[0] != 5 {
		t.Fatal("Percentile must not sort the input in place")
	}
}

func TestPercentiles(t *testing.T) {
	xs := []float64{0.1, 0.9, 0.5}
	got, err := Percentiles(xs, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0.1 || got[1] != 0.5 || got[2] != 0.9 {
		t.Fatalf("Percentiles = %v", got)
	}
	if _, err := Percentiles(nil, []float64{50}); err == nil {
		t.Fatal("empty sample must error")
	}
	if _, err := Percentiles(xs, []float64{150}); err == nil {
		t.Fatal("bad percentile must error")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 2 || s.Mean != 3 || s.Min != 2 || s.Max != 4 || s.StdDev != 1 {
		t.Fatalf("Summary = %+v", s)
	}
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty Summarize must error")
	}
}

// Property: Percentile is monotone in p and agrees with Percentiles.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint8, p1, p2 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a, b := float64(p1%101), float64(p2%101)
		if a > b {
			a, b = b, a
		}
		va, err1 := Percentile(xs, a)
		vb, err2 := Percentile(xs, b)
		if err1 != nil || err2 != nil {
			return false
		}
		multi, err := Percentiles(xs, []float64{a, b})
		if err != nil || multi[0] != va || multi[1] != vb {
			return false
		}
		return va <= vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the p=100 percentile is the max and p=0 is the min; the mean
// lies between them.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		lo, _ := Percentile(xs, 0)
		hi, _ := Percentile(xs, 100)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return lo == sorted[0] && hi == sorted[len(sorted)-1] &&
			s.Mean >= s.Min-1e-12 && s.Mean <= s.Max+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
