package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightedMeanBasics(t *testing.T) {
	m, err := WeightedMean([]float64{1, 3}, []float64{1, 3})
	if err != nil || m != 2.5 {
		t.Fatalf("WeightedMean = %v, %v", m, err)
	}
	if _, err := WeightedMean(nil, nil); err == nil {
		t.Fatal("empty must error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero total must error")
	}
	if _, err := WeightedMean([]float64{1}, []float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight must error")
	}
}

func TestWeightedVariance(t *testing.T) {
	// Equal weights reduce to the population variance.
	v, err := WeightedVariance([]float64{1, 2, 3, 4}, []float64{1, 1, 1, 1})
	if err != nil || math.Abs(v-1.25) > 1e-12 {
		t.Fatalf("WeightedVariance = %v, %v", v, err)
	}
	// All mass on one point: zero variance.
	v, err = WeightedVariance([]float64{1, 100}, []float64{1, 0})
	if err != nil || v != 0 {
		t.Fatalf("point-mass variance = %v, %v", v, err)
	}
}

func TestWeightedPercentiles(t *testing.T) {
	xs := []float64{1, 2, 3}
	ws := []float64{1, 1, 2} // cumulative: 1, 2, 4
	got, err := WeightedPercentiles(xs, ws, []float64{0, 25, 50, 75, 100})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 2, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("WeightedPercentiles = %v, want %v", got, want)
		}
	}
	if _, err := WeightedPercentiles(xs, ws, []float64{120}); err == nil {
		t.Fatal("bad percentile must error")
	}
}

// Property: with unit weights, weighted statistics equal the unweighted
// ones.
func TestWeightedReducesToUnweighted(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
			ws[i] = 1
		}
		wm, e1 := WeightedMean(xs, ws)
		m, e2 := Mean(xs)
		if e1 != nil || e2 != nil || math.Abs(wm-m) > 1e-12 {
			return false
		}
		wv, e1 := WeightedVariance(xs, ws)
		v, e2 := Variance(xs)
		if e1 != nil || e2 != nil || math.Abs(wv-v) > 1e-9 {
			return false
		}
		levels := []float64{0, 30, 60, 90, 100}
		wp, e1 := WeightedPercentiles(xs, ws, levels)
		p, e2 := Percentiles(xs, levels)
		if e1 != nil || e2 != nil {
			return false
		}
		for i := range p {
			if wp[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: integer weights equal physical replication.
func TestWeightedEqualsReplication(t *testing.T) {
	f := func(raw []uint8, wraw []uint8) bool {
		if len(raw) == 0 || len(wraw) < len(raw) {
			return true
		}
		xs := make([]float64, len(raw))
		ws := make([]float64, len(raw))
		var rep []float64
		var totalW float64
		for i, v := range raw {
			xs[i] = float64(v)
			w := int(wraw[i]%3) + 1
			ws[i] = float64(w)
			totalW += float64(w)
			for r := 0; r < w; r++ {
				rep = append(rep, xs[i])
			}
		}
		wm, e1 := WeightedMean(xs, ws)
		m, e2 := Mean(rep)
		if e1 != nil || e2 != nil || math.Abs(wm-m) > 1e-9 {
			return false
		}
		levels := []float64{25, 50, 75, 100}
		wp, e1 := WeightedPercentiles(xs, ws, levels)
		p, e2 := Percentiles(rep, levels)
		if e1 != nil || e2 != nil {
			return false
		}
		for i := range p {
			if wp[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
