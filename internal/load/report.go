package load

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/stats"
)

// ReportSchemaVersion identifies the BENCH_*.json layout; consumers of
// the perf trajectory should check it before comparing runs.
const ReportSchemaVersion = 1

// LatencySummary is the distribution summary the report carries for
// latency-like samples (milliseconds).
type LatencySummary struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarize(xs []float64) LatencySummary {
	if len(xs) == 0 {
		return LatencySummary{}
	}
	mean, _ := stats.Mean(xs)
	ps, _ := stats.Percentiles(xs, []float64{50, 90, 95, 99, 100})
	return LatencySummary{MeanMS: mean, P50MS: ps[0], P90MS: ps[1], P95MS: ps[2], P99MS: ps[3], MaxMS: ps[4]}
}

// ClassReport breaks the run down by scheduling class.
type ClassReport struct {
	Offered   int `json:"offered"`
	Completed int `json:"completed"`
	Shed      int `json:"shed"`
	Errors    int `json:"errors"`
	// CompletionRate = Completed / Offered; the per-class inputs of the
	// Jain index.
	CompletionRate float64        `json:"completion_rate"`
	Latency        LatencySummary `json:"latency"`
	QueueWait      LatencySummary `json:"queue_wait"`
}

// CacheRates reports the engine's cache behaviour over the run window
// as deltas between two EngineStats snapshots.
type CacheRates struct {
	ResultHits   uint64 `json:"result_hits"`
	ResultMisses uint64 `json:"result_misses"`
	PrepHits     uint64 `json:"prep_hits"`
	PrepMisses   uint64 `json:"prep_misses"`
	// Hit rates are hits/(hits+misses); -1 when the window had no
	// lookups of that kind.
	ResultHitRate float64 `json:"result_hit_rate"`
	PrepHitRate   float64 `json:"prep_hit_rate"`
}

// CacheRatesFrom computes the run-window cache rates from the stats
// snapshots taken before and after the run.
func CacheRatesFrom(before, after fam.EngineStats) CacheRates {
	c := CacheRates{
		ResultHits:   after.ResultCache.Hits - before.ResultCache.Hits,
		ResultMisses: after.ResultCache.Misses - before.ResultCache.Misses,
		PrepHits:     after.PrepCache.Hits - before.PrepCache.Hits,
		PrepMisses:   after.PrepCache.Misses - before.PrepCache.Misses,
	}
	c.ResultHitRate = rate(c.ResultHits, c.ResultMisses)
	c.PrepHitRate = rate(c.PrepHits, c.PrepMisses)
	return c
}

func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return -1
	}
	return float64(hits) / float64(hits+misses)
}

// SchedClassRates is one class's scheduler activity over the run
// window.
type SchedClassRates struct {
	Granted uint64 `json:"granted"`
	Shed    uint64 `json:"shed"`
	Stale   uint64 `json:"stale"`
}

// SchedRates reports the engine's scheduler behaviour over the run
// window as deltas between two EngineStats snapshots: the per-class
// grant shares (the fairness evidence of the deficit-bounded grant
// fix) and the count of starvation-relief grants.
type SchedRates struct {
	Granted       uint64                     `json:"granted"`
	DeficitGrants uint64                     `json:"deficit_grants"`
	Classes       map[string]SchedClassRates `json:"classes,omitempty"`
}

// SchedRatesFrom computes the run-window scheduler rates from the
// stats snapshots taken before and after the run.
func SchedRatesFrom(before, after fam.EngineStats) SchedRates {
	s := SchedRates{
		Granted:       after.Sched.Granted - before.Sched.Granted,
		DeficitGrants: after.Sched.DeficitGrants - before.Sched.DeficitGrants,
	}
	for class, a := range after.Sched.PerClass {
		b := before.Sched.PerClass[class]
		cr := SchedClassRates{
			Granted: a.Granted - b.Granted,
			Shed:    a.Shed - b.Shed,
			Stale:   a.Stale - b.Stale,
		}
		if cr == (SchedClassRates{}) {
			continue
		}
		if s.Classes == nil {
			s.Classes = map[string]SchedClassRates{}
		}
		s.Classes[class] = cr
	}
	return s
}

// Report is the machine-readable fitness report of one famload run —
// the perf-trajectory data point BENCH_<label>.json carries.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Label         string `json:"label"`
	// Mode is "engine" (in-process) or "http".
	Mode string `json:"mode"`
	// Workload echoes the generating spec (nil for replayed traces);
	// TraceEntries is the full trace length including warmup.
	Workload     *Spec `json:"workload,omitempty"`
	TraceEntries int   `json:"trace_entries"`
	Paced        bool  `json:"paced"`
	// WallMS is the runner's wall-clock span; MeasuredMS the span minus
	// the warmup window (the throughput denominator).
	WallMS     float64 `json:"wall_ms"`
	MeasuredMS float64 `json:"measured_ms"`

	// Offered counts measurement-window requests; the accounting
	// invariant Offered == Completed + Shed + Errors always holds.
	Offered   int     `json:"offered"`
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
	Errors    int     `json:"errors"`
	ShedRate  float64 `json:"shed_rate"`
	// ThroughputRPS is completed requests per measured second.
	ThroughputRPS float64 `json:"throughput_rps"`

	Latency   LatencySummary `json:"latency"`
	QueueWait LatencySummary `json:"queue_wait"`
	// Classes breaks the run down by priority class; JainIndex is
	// Jain's fairness index over the per-class completion rates
	// (1 = perfectly even, 1/n = one class starved the rest).
	Classes   map[string]ClassReport `json:"classes"`
	JainIndex float64                `json:"jain_index"`

	// CachedFraction is the share of completed requests answered from
	// the result cache as observed per request; Caches the engine-side
	// delta view (nil when no stats snapshots were available).
	CachedFraction float64     `json:"cached_fraction"`
	Caches         *CacheRates `json:"caches,omitempty"`
	// Sched is the engine-side scheduler delta view over the run window
	// (nil when no stats snapshots were available): per-class grant
	// shares and starvation-relief grants.
	Sched *SchedRates `json:"sched,omitempty"`

	// OutcomeHash fingerprints the deterministic per-request outcome
	// triple sequence (status, cached, shed) over the full trace —
	// equal hashes mean byte-identical outcome sequences, the replay
	// determinism check.
	OutcomeHash string `json:"outcome_hash"`
}

// Jain returns Jain's fairness index (Σx)²/(n·Σx²) of the samples:
// 1 when all equal, approaching 1/n under maximal skew. An empty
// sample reports 1 (no class was treated unfairly), but an all-zero
// sample reports 0: every class starved is a total outage, the
// opposite of fair — reporting 1 there made an outage read as
// perfectly balanced in CI.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// OutcomeHash fingerprints the deterministic outcome fields as FNV-1a
// over one "status,cached,shed" line per request, in trace order.
func OutcomeHash(outcomes []Outcome) string {
	h := fnv.New64a()
	for _, o := range outcomes {
		fmt.Fprintf(h, "%d,%t,%t\n", o.Status, o.Cached, o.Shed)
	}
	return fmt.Sprintf("fnv1a:%016x", h.Sum64())
}

// WriteOutcomes writes the outcome sequence as JSONL — the
// byte-comparable artifact of the replay determinism check. Only the
// deterministic fields are written: timings vary run to run, and raw
// error messages may embed resolved wall-clock deadlines, so failures
// are labeled by a stable status-derived code instead.
func WriteOutcomes(w io.Writer, outcomes []Outcome) error {
	enc := json.NewEncoder(w)
	for _, o := range outcomes {
		if err := enc.Encode(struct {
			I      int    `json:"i"`
			Status int    `json:"status"`
			Cached bool   `json:"cached"`
			Shed   bool   `json:"shed"`
			Code   string `json:"code,omitempty"`
		}{o.I, o.Status, o.Cached, o.Shed, statusCode(o.Status)}); err != nil {
			return err
		}
	}
	return nil
}

// statusCode labels a non-200 outcome with the serve layer's stable
// envelope code for that status ("" for success). The table mirrors
// serve's errorCode: 409 (duplicate dataset upload) and 413 (body over
// the upload cap) carry their own codes — folding them into "internal"
// made replayed upload traffic's outcome artifacts unstable.
func statusCode(status int) string {
	switch status {
	case 200:
		return ""
	case 400:
		return "bad_request"
	case 403:
		return "forbidden"
	case 404:
		return "not_found"
	case 409:
		return "conflict"
	case 413:
		return "payload_too_large"
	case 429:
		return "shed"
	case 502:
		return "bad_gateway"
	case 503:
		return "unavailable"
	default:
		return "internal"
	}
}

// BuildReport aggregates the outcomes into the fitness report. The
// warmup-marked outcomes are excluded from every aggregate except
// TraceEntries and OutcomeHash (which cover the full trace, keeping
// the hash comparable across warmup settings at fixed trace).
func BuildReport(label, mode string, outcomes []Outcome, wall, warmup time.Duration, cfg RunConfig) Report {
	r := Report{
		SchemaVersion: ReportSchemaVersion,
		Label:         label,
		Mode:          mode,
		TraceEntries:  len(outcomes),
		Paced:         cfg.Paced,
		WallMS:        float64(wall) / 1e6,
		Classes:       map[string]ClassReport{},
		OutcomeHash:   OutcomeHash(outcomes),
	}
	measured := wall - warmup
	if measured < 0 {
		measured = 0
	}
	r.MeasuredMS = float64(measured) / 1e6

	var latencies, waits []float64
	classSamples := map[string]*struct {
		cr         ClassReport
		lat, waits []float64
	}{}
	cached := 0
	for _, o := range outcomes {
		if o.Warm {
			continue
		}
		r.Offered++
		class := o.Priority
		if class == "" {
			class = fam.PriorityNormal.String()
		}
		cs := classSamples[class]
		if cs == nil {
			cs = &struct {
				cr         ClassReport
				lat, waits []float64
			}{}
			classSamples[class] = cs
		}
		cs.cr.Offered++
		switch {
		case o.Shed:
			r.Shed++
			cs.cr.Shed++
		case o.Status != 200:
			r.Errors++
			cs.cr.Errors++
		default:
			r.Completed++
			cs.cr.Completed++
			if o.Cached {
				cached++
			}
			latencies = append(latencies, o.LatencyMS)
			waits = append(waits, o.QueueWaitMS)
			cs.lat = append(cs.lat, o.LatencyMS)
			cs.waits = append(cs.waits, o.QueueWaitMS)
		}
	}
	if r.Offered > 0 {
		r.ShedRate = float64(r.Shed) / float64(r.Offered)
	}
	if r.Completed > 0 {
		r.CachedFraction = float64(cached) / float64(r.Completed)
	}
	if measured > 0 {
		r.ThroughputRPS = float64(r.Completed) / measured.Seconds()
	}
	r.Latency = summarize(latencies)
	r.QueueWait = summarize(waits)
	var rates []float64
	for class, cs := range classSamples {
		if cs.cr.Offered > 0 {
			cs.cr.CompletionRate = float64(cs.cr.Completed) / float64(cs.cr.Offered)
		}
		cs.cr.Latency = summarize(cs.lat)
		cs.cr.QueueWait = summarize(cs.waits)
		r.Classes[class] = cs.cr
		rates = append(rates, cs.cr.CompletionRate)
	}
	r.JainIndex = Jain(rates)
	return r
}
