// Package load is the sustained-load harness behind cmd/famload and the
// serve layer's request-trace recorder: open-loop workload generation
// (Poisson/Gamma/uniform arrivals over weighted query templates),
// JSONL trace record/replay, a runner that drives either a fam.Engine
// in-process or the HTTP surface, and a machine-readable fitness
// report (throughput, latency percentiles, shed rate, per-class
// fairness, cache hit rates).
//
// Everything is seed-deterministic: a Spec generates the same trace at
// the same seed, and a sequential (unpaced) replay of a trace produces
// a byte-identical per-request outcome sequence across runs.
package load

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	fam "github.com/regretlab/fam"
)

// Request is one traced query: the semantic fields of a selection or
// evaluation plus the client-visible scheduling knobs. It is the JSONL
// wire shape of a trace line (minus the timestamp, which TraceEntry
// adds) and deliberately carries strings/milliseconds rather than
// fam's resolved types, so traces survive replay on another day — a
// relative deadline_ms re-resolves against the replay clock, exactly
// as the HTTP surface resolves it against request arrival.
type Request struct {
	Dataset        string  `json:"dataset"`
	K              int     `json:"k,omitempty"`
	Algorithm      string  `json:"algorithm,omitempty"`
	Seed           uint64  `json:"seed,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	Sigma          float64 `json:"sigma,omitempty"`
	SampleSize     int     `json:"sample_size,omitempty"`
	DisableSkyline bool    `json:"disable_skyline,omitempty"`
	Coreset        bool    `json:"coreset,omitempty"`
	CoresetEps     float64 `json:"coreset_eps,omitempty"`
	Float32        bool    `json:"float32,omitempty"`
	// Set turns the request into an evaluation of these row indices.
	Set []int `json:"set,omitempty"`

	// Execution-policy knobs, mirroring the v2 exec block.
	Parallelism int    `json:"parallelism,omitempty"`
	LazyBatch   int    `json:"lazy_batch,omitempty"`
	Priority    string `json:"priority,omitempty"`
	DeadlineMS  int64  `json:"deadline_ms,omitempty"`
	MaxQueue    int    `json:"max_queue,omitempty"`
}

// Query maps the request to its semantic fam.Query. An unknown
// Algorithm surfaces from the engine as ErrBadOptions — the runner
// records it as a 400 outcome rather than failing the run.
func (r Request) Query() fam.Query {
	q := fam.Query{
		Dataset:        r.Dataset,
		K:              r.K,
		Seed:           r.Seed,
		Epsilon:        r.Epsilon,
		Sigma:          r.Sigma,
		SampleSize:     r.SampleSize,
		DisableSkyline: r.DisableSkyline,
		Coreset:        r.Coreset,
		CoresetEps:     r.CoresetEps,
		Float32:        r.Float32,
		ExplicitSet:    r.Set,
	}
	if r.Algorithm != "" {
		if a, err := fam.ParseAlgorithm(r.Algorithm); err == nil {
			q.Algorithm = a
		} else {
			q.Algorithm = fam.Algorithm(-1) // invalid on purpose: fails as ErrBadOptions
		}
	}
	return q
}

// maxDeadlineMS clamps |deadline_ms| at one year, matching the serve
// layer: a huge positive value stays a generous future deadline and can
// never overflow the nanosecond conversion; a huge negative one stays
// expired (sheds on admission).
const maxDeadlineMS = int64(365 * 24 * time.Hour / time.Millisecond)

// Exec resolves the request's execution policy at the given arrival
// time (the same relative-deadline resolution the HTTP surface
// applies). An unknown priority name is an error.
func (r Request) Exec(now time.Time) (fam.Exec, error) {
	exec := fam.Exec{
		Parallelism: r.Parallelism,
		LazyBatch:   r.LazyBatch,
		MaxQueue:    r.MaxQueue,
	}
	if r.Priority != "" {
		p, err := fam.ParsePriority(r.Priority)
		if err != nil {
			return fam.Exec{}, err
		}
		exec.Priority = p
	}
	if r.DeadlineMS != 0 {
		ms := r.DeadlineMS
		switch {
		case ms > maxDeadlineMS:
			ms = maxDeadlineMS
		case ms < -maxDeadlineMS:
			ms = -maxDeadlineMS
		}
		exec.Deadline = now.Add(time.Duration(ms) * time.Millisecond)
	}
	return exec, nil
}

// TraceEntry is one line of a JSONL trace: a request and its offset
// from the start of the trace in milliseconds. Entries are kept in
// nondecreasing t_ms order by the generator; ReadTrace tolerates any
// order and the paced runner sorts by offset implicitly (each entry is
// scheduled at its own offset).
type TraceEntry struct {
	TMS float64 `json:"t_ms"`
	Request
}

// TraceWriter appends trace entries as JSONL, safe for concurrent
// recorders (the serve layer records from per-request goroutines).
type TraceWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewTraceWriter wraps w as a JSONL trace sink.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{enc: json.NewEncoder(w)}
}

// Record appends one entry.
func (t *TraceWriter) Record(e TraceEntry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(e)
}

// WriteTrace writes all entries to w as JSONL.
func WriteTrace(w io.Writer, entries []TraceEntry) error {
	tw := NewTraceWriter(w)
	for _, e := range entries {
		if err := tw.Record(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadTrace parses a JSONL trace. Blank lines are skipped; a malformed
// line fails with its line number.
func ReadTrace(r io.Reader) ([]TraceEntry, error) {
	var out []TraceEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e TraceEntry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
