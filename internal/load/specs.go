package load

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	fam "github.com/regretlab/fam"
)

// DatasetSpec is one parsed dataset registration of the -datasets
// flag shared by cmd/famserve and cmd/famload.
type DatasetSpec struct {
	Name string
	DS   *fam.Dataset
}

// ParseDatasetSpecs parses a -datasets flag value: comma-separated
// entries of the form [name=]kind[:n[:seed]], with synthetic
// additionally taking [:d[:corr]] between n and seed:
// synthetic:n:d:corr:seed.
func ParseDatasetSpecs(s string) ([]DatasetSpec, error) {
	var out []DatasetSpec
	seen := map[string]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name := ""
		if eq := strings.IndexByte(item, '='); eq >= 0 {
			name, item = item[:eq], item[eq+1:]
		}
		parts := strings.Split(item, ":")
		kind := parts[0]
		if name == "" {
			name = kind
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate dataset name %q (use name=kind:... to disambiguate)", name)
		}
		seen[name] = true
		ds, err := BuildDataset(kind, parts[1:])
		if err != nil {
			return nil, fmt.Errorf("dataset spec %q: %w", item, err)
		}
		out = append(out, DatasetSpec{Name: name, DS: ds})
	}
	if len(out) == 0 {
		return nil, errors.New("no datasets configured")
	}
	return out, nil
}

// BuildDataset constructs one dataset from a spec kind and its
// colon-separated arguments.
func BuildDataset(kind string, args []string) (*fam.Dataset, error) {
	num := func(i, def int) (int, error) {
		if i >= len(args) || args[i] == "" {
			return def, nil
		}
		return strconv.Atoi(args[i])
	}
	if kind == "synthetic" {
		n, err := num(0, 1000)
		if err != nil {
			return nil, err
		}
		d, err := num(1, 6)
		if err != nil {
			return nil, err
		}
		corr := fam.Independent
		if len(args) > 2 && args[2] != "" {
			switch args[2] {
			case "independent":
				corr = fam.Independent
			case "correlated":
				corr = fam.Correlated
			case "anticorrelated":
				corr = fam.Anticorrelated
			case "spherical":
				corr = fam.Spherical
			default:
				return nil, fmt.Errorf("unknown correlation %q", args[2])
			}
		}
		seed, err := num(3, 1)
		if err != nil {
			return nil, err
		}
		return fam.Synthetic(n, d, corr, uint64(seed))
	}

	n, err := num(0, 1000)
	if err != nil {
		return nil, err
	}
	seed, err := num(1, 1)
	if err != nil {
		return nil, err
	}
	switch kind {
	case "hotels":
		return fam.Hotels(n, uint64(seed))
	case "nba":
		return fam.SimulatedNBA(n, uint64(seed))
	case "nba22":
		return fam.SimulatedNBA22(n, uint64(seed))
	case "household":
		return fam.SimulatedHousehold(n, uint64(seed))
	case "forestcover":
		return fam.SimulatedForestCover(n, uint64(seed))
	case "uscensus":
		return fam.SimulatedUSCensus(n, uint64(seed))
	default:
		return nil, fmt.Errorf("unknown dataset kind %q (want hotels|nba|nba22|household|forestcover|uscensus|synthetic)", kind)
	}
}

// BuildEngine constructs an engine and registers every dataset of the
// spec string under a uniform-linear (or, with ces > 0, CES)
// distribution — the shared startup path of famserve and famload.
func BuildEngine(cfg fam.EngineConfig, specs string, ces float64) (*fam.Engine, []fam.DatasetInfo, error) {
	regs, err := ParseDatasetSpecs(specs)
	if err != nil {
		return nil, nil, err
	}
	engine := fam.NewEngine(cfg)
	for _, reg := range regs {
		var dist fam.Distribution
		if ces > 0 {
			dist, err = fam.CESUniform(reg.DS.Dim(), ces)
		} else {
			dist, err = fam.UniformLinear(reg.DS.Dim())
		}
		if err != nil {
			engine.Close()
			return nil, nil, err
		}
		if err := engine.Register(reg.Name, reg.DS, dist); err != nil {
			engine.Close()
			return nil, nil, fmt.Errorf("registering %q: %w", reg.Name, err)
		}
	}
	return engine, engine.Datasets(), nil
}
