package load

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	fam "github.com/regretlab/fam"
)

// Outcome is the per-request result the runner records: the fields the
// fitness report aggregates, plus the deterministic triple
// (Status, Cached, Shed) that the replay-determinism guarantee covers
// (latencies are wall-clock measurements and vary run to run).
type Outcome struct {
	// I is the request's index in the trace.
	I int `json:"i"`
	// Status is the HTTP-equivalent outcome code (200 on success, 429
	// shed, 503 deadline/unavailable, 400/404 client errors, 500
	// otherwise) — identical whether the engine was driven in-process
	// or over HTTP.
	Status int `json:"status"`
	// Cached marks result-cache hits.
	Cached bool `json:"cached,omitempty"`
	// Shed marks admission-control rejections (Status 429).
	Shed bool `json:"shed,omitempty"`
	// Warm marks warmup-window requests: executed (they warm caches and
	// queues) but excluded from the measurement report.
	Warm bool `json:"warm,omitempty"`
	// Priority is the request's scheduling class ("" = normal).
	Priority string `json:"priority,omitempty"`
	// LatencyMS is the request's end-to-end latency as observed by the
	// runner; QueueWaitMS the engine-attributed scheduling wait
	// (Telemetry.QueueWait), when the target reports it.
	LatencyMS   float64 `json:"latency_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	// Err carries the failure message of non-200 outcomes.
	Err string `json:"error,omitempty"`
}

// Target executes one traced request and reports its outcome fields
// (Status, Cached, Shed, QueueWaitMS, Err); the runner fills I,
// Priority, Warm, and LatencyMS.
type Target interface {
	Do(ctx context.Context, req Request) Outcome
}

// statusOf mirrors the serve layer's error→status mapping so the
// in-process engine target and the HTTP target report identical
// outcome codes for the same failure.
func statusOf(err error) int {
	switch {
	case errors.Is(err, fam.ErrBadOptions), errors.Is(err, fam.ErrInvalidSet), errors.Is(err, fam.ErrNilArgument):
		return http.StatusBadRequest
	case errors.Is(err, fam.ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, fam.ErrShed):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, fam.ErrEngineClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// EngineTarget drives a fam.Engine in-process — no HTTP between the
// generator and the scheduler, so the harness measures the engine, not
// the network stack.
type EngineTarget struct {
	Engine *fam.Engine
	// Clock resolves relative deadlines; nil = time.Now.
	Clock func() time.Time
}

// Do implements Target on the engine's Select/Evaluate paths.
func (t EngineTarget) Do(ctx context.Context, req Request) Outcome {
	now := time.Now
	if t.Clock != nil {
		now = t.Clock
	}
	exec, err := req.Exec(now())
	if err != nil {
		return Outcome{Status: http.StatusBadRequest, Err: err.Error()}
	}
	if req.Set != nil {
		_, err := t.Engine.Evaluate(ctx, req.Query(), exec)
		return outcomeOf(err, false, 0)
	}
	res, tel, err := t.Engine.Select(ctx, req.Query(), exec)
	if err != nil {
		return outcomeOf(err, false, 0)
	}
	var wait time.Duration
	if tel != nil {
		wait = tel.QueueWait
	}
	return outcomeOf(nil, res.Cached, wait)
}

func outcomeOf(err error, cached bool, wait time.Duration) Outcome {
	if err != nil {
		status := statusOf(err)
		return Outcome{Status: status, Shed: status == http.StatusTooManyRequests, Err: err.Error()}
	}
	return Outcome{Status: http.StatusOK, Cached: cached, QueueWaitMS: float64(wait) / 1e6}
}

// HTTPTarget drives a famserve instance through its v2 surface: each
// request becomes a one-member POST /v2/select batch, so the traced
// scheduling knobs travel in the exec block exactly as a real client
// would send them.
type HTTPTarget struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Client is the HTTP client; nil uses http.DefaultClient.
	Client *http.Client
}

// The wire shapes HTTPTarget speaks. They structurally mirror the
// serve package's v2 types; load deliberately does not import serve
// (serve imports load to record traces).
type (
	httpBatchRequest struct {
		Queries []Request       `json:"queries"`
		Exec    httpExecRequest `json:"exec"`
	}
	httpExecRequest struct {
		Parallelism int    `json:"parallelism,omitempty"`
		LazyBatch   int    `json:"lazy_batch,omitempty"`
		Priority    string `json:"priority,omitempty"`
		DeadlineMS  int64  `json:"deadline_ms,omitempty"`
		MaxQueue    int    `json:"max_queue,omitempty"`
	}
	httpBatchResponse struct {
		Results []struct {
			Cached    bool   `json:"cached"`
			Error     string `json:"error"`
			Status    int    `json:"status"`
			Telemetry *struct {
				QueueWaitMS float64 `json:"queue_wait_ms"`
			} `json:"telemetry"`
		} `json:"results"`
	}
	httpErrorV2 struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}
)

// Do implements Target over POST /v2/select.
func (t HTTPTarget) Do(ctx context.Context, req Request) Outcome {
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	// The member carries the semantic query; the scheduling knobs ride
	// the exec block (Request embeds both, and the member's exec fields
	// are omitempty-zero after this split).
	member := req
	member.Parallelism, member.LazyBatch, member.Priority, member.DeadlineMS, member.MaxQueue = 0, 0, "", 0, 0
	body, err := json.Marshal(httpBatchRequest{
		Queries: []Request{member},
		Exec: httpExecRequest{
			Parallelism: req.Parallelism,
			LazyBatch:   req.LazyBatch,
			Priority:    req.Priority,
			DeadlineMS:  req.DeadlineMS,
			MaxQueue:    req.MaxQueue,
		},
	})
	if err != nil {
		return Outcome{Status: http.StatusBadRequest, Err: err.Error()}
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(t.BaseURL, "/")+"/v2/select", bytes.NewReader(body))
	if err != nil {
		return Outcome{Status: http.StatusBadRequest, Err: err.Error()}
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return Outcome{Status: http.StatusBadGateway, Err: err.Error()}
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return Outcome{Status: http.StatusBadGateway, Err: err.Error()}
	}
	if resp.StatusCode != http.StatusOK {
		var e httpErrorV2
		msg := strings.TrimSpace(string(payload))
		if json.Unmarshal(payload, &e) == nil && e.Message != "" {
			msg = e.Message
		}
		return Outcome{
			Status: resp.StatusCode,
			Shed:   resp.StatusCode == http.StatusTooManyRequests,
			Err:    msg,
		}
	}
	var batch httpBatchResponse
	if err := json.Unmarshal(payload, &batch); err != nil {
		return Outcome{Status: http.StatusBadGateway, Err: fmt.Sprintf("decoding batch response: %v", err)}
	}
	if len(batch.Results) != 1 {
		return Outcome{Status: http.StatusBadGateway, Err: fmt.Sprintf("expected 1 result slot, got %d", len(batch.Results))}
	}
	slot := batch.Results[0]
	if slot.Error != "" {
		status := slot.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		return Outcome{Status: status, Shed: status == http.StatusTooManyRequests, Err: slot.Error}
	}
	out := Outcome{Status: http.StatusOK, Cached: slot.Cached}
	if slot.Telemetry != nil {
		out.QueueWaitMS = slot.Telemetry.QueueWaitMS
	}
	return out
}

// MultiTarget stripes requests across several targets round-robin —
// the direct-to-replicas baseline a through-router run is compared
// against: same workload, no routing policy, so the delta in cache
// hit rate is attributable to routing alone.
type MultiTarget struct {
	targets []Target
	next    atomic.Uint64
}

// NewMultiTarget builds a round-robin fan over the targets.
func NewMultiTarget(targets ...Target) (*MultiTarget, error) {
	if len(targets) == 0 {
		return nil, errors.New("load: MultiTarget needs at least one target")
	}
	for _, t := range targets {
		if t == nil {
			return nil, errors.New("load: MultiTarget got a nil target")
		}
	}
	return &MultiTarget{targets: append([]Target(nil), targets...)}, nil
}

// Do implements Target by forwarding to the next target in rotation.
func (t *MultiTarget) Do(ctx context.Context, req Request) Outcome {
	return t.targets[(t.next.Add(1)-1)%uint64(len(t.targets))].Do(ctx, req)
}

// RunConfig tunes a trace run.
type RunConfig struct {
	// Warmup marks every request whose trace offset falls inside this
	// window as Warm: executed, but excluded from the measurement
	// report.
	Warmup time.Duration
	// Paced replays the trace open-loop at its recorded offsets (each
	// request fires at its own t_ms regardless of earlier completions).
	// Unpaced runs are sequential — one request at a time, in trace
	// order — which is what makes replay outcomes deterministic.
	Paced bool
	// Speed scales paced time: 2 replays twice as fast. 0 = 1.
	Speed float64
}

// Run drives the trace against the target and returns the per-request
// outcomes (in trace order) and the wall-clock span of the run.
func Run(ctx context.Context, target Target, trace []TraceEntry, cfg RunConfig) ([]Outcome, time.Duration, error) {
	if target == nil {
		return nil, 0, errors.New("load: nil target")
	}
	if len(trace) == 0 {
		return nil, 0, errors.New("load: empty trace")
	}
	speed := cfg.Speed
	if speed <= 0 {
		speed = 1
	}
	warmupMS := float64(cfg.Warmup) / 1e6
	outcomes := make([]Outcome, len(trace))
	start := time.Now()
	runOne := func(i int) {
		t0 := time.Now()
		o := target.Do(ctx, trace[i].Request)
		o.I = i
		o.LatencyMS = float64(time.Since(t0)) / 1e6
		o.Priority = trace[i].Priority
		o.Warm = trace[i].TMS < warmupMS
		outcomes[i] = o
	}
	if !cfg.Paced {
		for i := range trace {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			runOne(i)
		}
		return outcomes, time.Since(start), nil
	}
	var wg sync.WaitGroup
	for i := range trace {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			due := start.Add(time.Duration(trace[i].TMS / speed * float64(time.Millisecond)))
			if d := time.Until(due); d > 0 {
				timer := time.NewTimer(d)
				defer timer.Stop()
				select {
				case <-timer.C:
				case <-ctx.Done():
					outcomes[i] = Outcome{I: i, Status: http.StatusServiceUnavailable,
						Priority: trace[i].Priority, Warm: trace[i].TMS < warmupMS, Err: ctx.Err().Error()}
					return
				}
			}
			runOne(i)
		}(i)
	}
	wg.Wait()
	return outcomes, time.Since(start), nil
}
