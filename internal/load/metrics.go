package load

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	fam "github.com/regretlab/fam"
)

// ParseMetrics reads a Prometheus text exposition (version 0.0.4) into
// a flat sample map keyed by `name{labels}` exactly as written (no
// label reordering), e.g.
//
//	m[`fam_sched_granted_total{class="low"}`] = 42
//
// Comment (#) and blank lines are skipped; a malformed sample line is
// an error. The parser covers what famserve emits — it is the scrape
// half of famload's /metrics probe, not a general Prometheus client.
func ParseMetrics(r io.Reader) (map[string]float64, error) {
	samples := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		cut := strings.LastIndexByte(line, ' ')
		if cut <= 0 {
			return nil, fmt.Errorf("malformed metrics line %q", line)
		}
		value, err := strconv.ParseFloat(line[cut+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed metrics value in %q: %w", line, err)
		}
		samples[strings.TrimSpace(line[:cut])] = value
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// classOf extracts the class label value from a per-class series key
// like `fam_sched_granted_total{class="low"}`.
func classOf(key string) (string, bool) {
	const marker = `{class="`
	i := strings.Index(key, marker)
	if i < 0 {
		return "", false
	}
	rest := key[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// EngineStatsFromMetrics reconstructs the EngineStats fields the
// report's cache/sched delta views need from one /metrics scrape —
// famload's HTTP-mode stats probe. Series famload does not report on
// are left at zero.
func EngineStatsFromMetrics(m map[string]float64) fam.EngineStats {
	var s fam.EngineStats
	s.PrepCache.Hits = uint64(m[`fam_cache_hits_total{cache="prep"}`])
	s.PrepCache.Misses = uint64(m[`fam_cache_misses_total{cache="prep"}`])
	s.ResultCache.Hits = uint64(m[`fam_cache_hits_total{cache="result"}`])
	s.ResultCache.Misses = uint64(m[`fam_cache_misses_total{cache="result"}`])
	s.Sched.DeficitGrants = uint64(m["fam_sched_deficit_grants_total"])
	for key, v := range m {
		class, ok := classOf(key)
		if !ok || !strings.HasPrefix(key, "fam_sched_") {
			continue
		}
		if s.Sched.PerClass == nil {
			s.Sched.PerClass = map[string]fam.SchedClassStats{}
		}
		cs := s.Sched.PerClass[class]
		switch {
		case strings.HasPrefix(key, "fam_sched_granted_total"):
			cs.Granted = uint64(v)
			s.Sched.Granted += uint64(v)
		case strings.HasPrefix(key, "fam_sched_shed_total"):
			cs.Shed = uint64(v)
		case strings.HasPrefix(key, "fam_sched_stale_total"):
			cs.Stale = uint64(v)
		}
		s.Sched.PerClass[class] = cs
	}
	return s
}
