package load

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	fam "github.com/regretlab/fam"
)

func testSpec(rate float64, dur time.Duration, seed uint64) Spec {
	return Spec{
		Rate:     rate,
		Duration: dur,
		Seed:     seed,
		Templates: []Template{
			{Weight: 3, Base: Request{Dataset: "tiny", SampleSize: 40, Priority: "high"}, Ks: []int{2, 3}},
			{Weight: 1, Base: Request{Dataset: "tiny", SampleSize: 40, Priority: "low"}, Ks: []int{4}},
		},
	}
}

func newLoadEngine(t *testing.T) *fam.Engine {
	t.Helper()
	e, _, err := BuildEngine(fam.EngineConfig{Workers: 2}, "tiny=synthetic:25:3:independent:11", 0)
	if err != nil {
		t.Fatalf("BuildEngine: %v", err)
	}
	t.Cleanup(e.Close)
	return e
}

// Equal specs at equal seeds generate identical traces; a different
// seed moves the arrivals.
func TestGenerateDeterministic(t *testing.T) {
	a, err := testSpec(200, time.Second, 7).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	b, err := testSpec(200, time.Second, 7).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	c, err := testSpec(200, time.Second, 8).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(c) == len(a) && len(a) > 0 && c[0].TMS == a[0].TMS {
		t.Fatal("different seeds generated an identical first arrival")
	}
	// Arrivals must be ordered and inside the horizon.
	prev := 0.0
	for i, e := range a {
		if e.TMS < prev {
			t.Fatalf("entry %d out of order: %g after %g", i, e.TMS, prev)
		}
		if e.TMS >= 1000 {
			t.Fatalf("entry %d beyond horizon: %g", i, e.TMS)
		}
		prev = e.TMS
	}
	// Rate sanity: 200 rps over 1 s ≈ 200 arrivals.
	if len(a) < 100 || len(a) > 400 {
		t.Fatalf("poisson trace size %d wildly off the 200 mean", len(a))
	}
}

func TestGenerateArrivalProcesses(t *testing.T) {
	for _, arrival := range []string{ArrivalPoisson, ArrivalGamma, ArrivalUniform} {
		s := testSpec(500, time.Second, 3)
		s.Arrival = arrival
		trace, err := s.Generate()
		if err != nil {
			t.Fatalf("%s: %v", arrival, err)
		}
		if len(trace) < 250 || len(trace) > 1000 {
			t.Fatalf("%s: trace size %d off the 500 mean", arrival, len(trace))
		}
	}
	s := testSpec(100, time.Second, 3)
	s.Arrival = "fibonacci"
	if _, err := s.Generate(); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	trace, err := testSpec(100, time.Second, 5).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, trace); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if len(got) != len(trace) {
		t.Fatalf("round trip lost entries: %d vs %d", len(got), len(trace))
	}
	for i := range got {
		if got[i].Dataset != trace[i].Dataset || got[i].K != trace[i].K ||
			got[i].Priority != trace[i].Priority || got[i].TMS != trace[i].TMS {
			t.Fatalf("entry %d differs after round trip: %+v vs %+v", i, got[i], trace[i])
		}
	}
}

func TestParseMix(t *testing.T) {
	ts, err := ParseMix("ds=hotels,k=2-4,prio=high,deadline=200,par=4,w=3;ds=cat,k=5|9,seed=1|2,algo=greedy-add")
	if err != nil {
		t.Fatalf("ParseMix: %v", err)
	}
	if len(ts) != 2 {
		t.Fatalf("want 2 templates, got %d", len(ts))
	}
	a := ts[0]
	if a.Base.Dataset != "hotels" || a.Weight != 3 || a.Base.Priority != "high" || a.Base.DeadlineMS != 200 || a.Base.Parallelism != 4 {
		t.Fatalf("template 0 mis-parsed: %+v", a)
	}
	if len(a.Ks) != 3 || a.Ks[0] != 2 || a.Ks[2] != 4 {
		t.Fatalf("k range mis-parsed: %v", a.Ks)
	}
	b := ts[1]
	if len(b.Ks) != 2 || b.Ks[1] != 9 || len(b.Seeds) != 2 || b.Seeds[1] != 2 || b.Base.Algorithm != "greedy-add" {
		t.Fatalf("template 1 mis-parsed: %+v", b)
	}
	for _, bad := range []string{"", "k=5", "ds=h", "ds=h,k=5,zebra=1", "ds=h,k=9-2"} {
		if _, err := ParseMix(bad); err == nil {
			t.Fatalf("ParseMix(%q) accepted", bad)
		}
	}
}

// Sequential (unpaced) replay of one trace against a deterministic
// engine must produce a byte-identical outcome sequence across runs —
// the famload -replay guarantee.
func TestReplayDeterministic(t *testing.T) {
	trace, err := testSpec(300, 500*time.Millisecond, 21).Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	runOnce := func() ([]Outcome, string) {
		e := newLoadEngine(t)
		outcomes, _, err := Run(context.Background(), EngineTarget{Engine: e}, trace, RunConfig{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteOutcomes(&buf, outcomes); err != nil {
			t.Fatalf("WriteOutcomes: %v", err)
		}
		return outcomes, buf.String()
	}
	o1, bytes1 := runOnce()
	o2, bytes2 := runOnce()
	if OutcomeHash(o1) != OutcomeHash(o2) {
		t.Fatalf("outcome hashes differ across replays: %s vs %s", OutcomeHash(o1), OutcomeHash(o2))
	}
	if bytes1 != bytes2 {
		t.Fatal("outcome JSONL differs across replays")
	}
	// The trace mixes first-seen and repeated fingerprints, so the
	// deterministic sequence should contain both cold and cached
	// completions.
	var cold, warm int
	for _, o := range o1 {
		if o.Status != 200 {
			t.Fatalf("outcome %d: status %d (%s)", o.I, o.Status, o.Err)
		}
		if o.Cached {
			warm++
		} else {
			cold++
		}
	}
	if cold == 0 || warm == 0 {
		t.Fatalf("expected a mix of cold and cached outcomes, got cold=%d cached=%d", cold, warm)
	}
}

// The engine target maps failures to the same statuses the HTTP
// surface would answer.
func TestEngineTargetStatuses(t *testing.T) {
	e := newLoadEngine(t)
	target := EngineTarget{Engine: e}
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		req  Request
		want int
	}{
		{"ok", Request{Dataset: "tiny", K: 2, SampleSize: 40}, 200},
		{"bad k", Request{Dataset: "tiny", K: -2, SampleSize: 40}, 400},
		{"bad algorithm", Request{Dataset: "tiny", K: 2, Algorithm: "bogosort", SampleSize: 40}, 400},
		{"unknown dataset", Request{Dataset: "nope", K: 2, SampleSize: 40}, 404},
		{"expired deadline", Request{Dataset: "tiny", K: 2, SampleSize: 40, DeadlineMS: -50}, 429},
		{"bad priority", Request{Dataset: "tiny", K: 2, SampleSize: 40, Priority: "argh"}, 400},
		{"evaluate", Request{Dataset: "tiny", Set: []int{0, 1}, SampleSize: 40}, 200},
		{"bad set", Request{Dataset: "tiny", Set: []int{0, 99999}, SampleSize: 40}, 400},
	} {
		o := target.Do(ctx, tc.req)
		if o.Status != tc.want {
			t.Errorf("%s: status %d, want %d (err %q)", tc.name, o.Status, tc.want, o.Err)
		}
		if tc.want == 429 && !o.Shed {
			t.Errorf("%s: 429 outcome not marked shed", tc.name)
		}
	}
}

func TestBuildReportAccounting(t *testing.T) {
	outcomes := []Outcome{
		{I: 0, Status: 200, Cached: false, Priority: "high", LatencyMS: 10, Warm: true},
		{I: 1, Status: 200, Cached: true, Priority: "high", LatencyMS: 2},
		{I: 2, Status: 200, Cached: false, Priority: "high", LatencyMS: 8},
		{I: 3, Status: 429, Shed: true, Priority: "low"},
		{I: 4, Status: 200, Cached: true, Priority: "low", LatencyMS: 4},
		{I: 5, Status: 400, Priority: ""},
	}
	r := BuildReport("t", "engine", outcomes, 2*time.Second, 500*time.Millisecond, RunConfig{})
	if r.Offered != 5 {
		t.Fatalf("Offered = %d, want 5 (warmup excluded)", r.Offered)
	}
	if got := r.Completed + r.Shed + r.Errors; got != r.Offered {
		t.Fatalf("accounting broken: %d+%d+%d != %d", r.Completed, r.Shed, r.Errors, r.Offered)
	}
	if r.Completed != 3 || r.Shed != 1 || r.Errors != 1 {
		t.Fatalf("counts: completed=%d shed=%d errors=%d", r.Completed, r.Shed, r.Errors)
	}
	if r.ShedRate != 0.2 {
		t.Fatalf("ShedRate = %g, want 0.2", r.ShedRate)
	}
	if math.Abs(r.ThroughputRPS-2.0) > 1e-9 { // 3 completed / 1.5 s measured
		t.Fatalf("ThroughputRPS = %g, want 2", r.ThroughputRPS)
	}
	if math.Abs(r.CachedFraction-2.0/3) > 1e-9 {
		t.Fatalf("CachedFraction = %g, want 2/3", r.CachedFraction)
	}
	if len(r.Classes) != 3 {
		t.Fatalf("classes: %v", r.Classes)
	}
	high := r.Classes["high"]
	if high.Offered != 2 || high.Completed != 2 || high.CompletionRate != 1 {
		t.Fatalf("high class: %+v", high)
	}
	low := r.Classes["low"]
	if low.Offered != 2 || low.Shed != 1 || low.CompletionRate != 0.5 {
		t.Fatalf("low class: %+v", low)
	}
	if r.JainIndex <= 0 || r.JainIndex > 1 {
		t.Fatalf("JainIndex = %g out of (0,1]", r.JainIndex)
	}
	if !strings.HasPrefix(r.OutcomeHash, "fnv1a:") {
		t.Fatalf("OutcomeHash = %q", r.OutcomeHash)
	}
}

func TestJain(t *testing.T) {
	if j := Jain([]float64{1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("Jain(equal) = %g", j)
	}
	if j := Jain([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("Jain(starved) = %g, want 0.25", j)
	}
	if j := Jain(nil); j != 1 {
		t.Fatalf("Jain(nil) = %g", j)
	}
	// All classes at zero is a total outage — the opposite of fair. It
	// must read 0, not 1 (the old behaviour made an outage pass the CI
	// fairness gate).
	if j := Jain([]float64{0, 0, 0}); j != 0 {
		t.Fatalf("Jain(all-zero) = %g, want 0", j)
	}
}

// TestStatusCode pins the outcome-artifact code table against serve's
// envelope codes: 409 and 413 (both reachable via dataset uploads)
// must carry their own codes, not fold into "internal".
func TestStatusCode(t *testing.T) {
	cases := []struct {
		status int
		want   string
	}{
		{200, ""},
		{400, "bad_request"},
		{403, "forbidden"},
		{404, "not_found"},
		{409, "conflict"},
		{413, "payload_too_large"},
		{429, "shed"},
		{502, "bad_gateway"},
		{503, "unavailable"},
		{500, "internal"},
		{418, "internal"},
	}
	for _, c := range cases {
		if got := statusCode(c.status); got != c.want {
			t.Fatalf("statusCode(%d) = %q, want %q", c.status, got, c.want)
		}
	}
}

// TestParseMetricsRoundtrip: the scrape parser reads famserve-shaped
// exposition text into the flat sample map, and the EngineStats
// reconstruction surfaces the cache and per-class sched fields the
// report deltas consume.
func TestParseMetricsRoundtrip(t *testing.T) {
	text := `# HELP fam_sched_granted_total Helper requests granted, by class.
# TYPE fam_sched_granted_total counter
fam_sched_granted_total{class="high"} 40
fam_sched_granted_total{class="low"} 2
fam_sched_shed_total{class="low"} 1
fam_sched_stale_total{class="normal"} 3
fam_sched_deficit_grants_total 5

fam_cache_hits_total{cache="result"} 7
fam_cache_misses_total{cache="result"} 11
fam_cache_hits_total{cache="prep"} 13
fam_cache_misses_total{cache="prep"} 17
fam_engine_uptime_seconds 1.25
`
	m, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if m[`fam_sched_granted_total{class="high"}`] != 40 || m["fam_engine_uptime_seconds"] != 1.25 {
		t.Fatalf("parsed samples: %+v", m)
	}
	s := EngineStatsFromMetrics(m)
	if s.ResultCache.Hits != 7 || s.ResultCache.Misses != 11 || s.PrepCache.Hits != 13 || s.PrepCache.Misses != 17 {
		t.Fatalf("cache reconstruction: %+v", s)
	}
	if s.Sched.DeficitGrants != 5 || s.Sched.Granted != 42 {
		t.Fatalf("sched reconstruction: %+v", s.Sched)
	}
	if s.Sched.PerClass["high"].Granted != 40 || s.Sched.PerClass["low"].Granted != 2 ||
		s.Sched.PerClass["low"].Shed != 1 || s.Sched.PerClass["normal"].Stale != 3 {
		t.Fatalf("per-class reconstruction: %+v", s.Sched.PerClass)
	}

	if _, err := ParseMetrics(strings.NewReader("garbage-without-value\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestSchedRatesFrom: the run-window delta view subtracts the before
// snapshot per class and drops classes with no activity.
func TestSchedRatesFrom(t *testing.T) {
	var before, after fam.EngineStats
	before.Sched.Granted = 10
	before.Sched.DeficitGrants = 1
	before.Sched.PerClass = map[string]fam.SchedClassStats{
		"high": {Granted: 8},
		"low":  {Granted: 2},
	}
	after.Sched.Granted = 50
	after.Sched.DeficitGrants = 4
	after.Sched.PerClass = map[string]fam.SchedClassStats{
		"high":   {Granted: 40},
		"low":    {Granted: 8, Shed: 2},
		"normal": {}, // present but idle over the window
	}
	s := SchedRatesFrom(before, after)
	if s.Granted != 40 || s.DeficitGrants != 3 {
		t.Fatalf("totals: %+v", s)
	}
	if s.Classes["high"].Granted != 32 || s.Classes["low"].Granted != 6 || s.Classes["low"].Shed != 2 {
		t.Fatalf("classes: %+v", s.Classes)
	}
	if _, ok := s.Classes["normal"]; ok {
		t.Fatal("idle class must be dropped from the delta view")
	}
}

// Paced runs execute every entry and respect the warmup marking.
func TestRunPaced(t *testing.T) {
	spec := testSpec(400, 300*time.Millisecond, 2)
	trace, err := spec.Generate()
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	e := newLoadEngine(t)
	outcomes, wall, err := Run(context.Background(), EngineTarget{Engine: e}, trace,
		RunConfig{Paced: true, Warmup: 100 * time.Millisecond, Speed: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wall <= 0 {
		t.Fatal("no wall time")
	}
	var warm, measured int
	for i, o := range outcomes {
		if o.I != i {
			t.Fatalf("outcome %d has index %d", i, o.I)
		}
		if o.Warm {
			warm++
		} else {
			measured++
		}
	}
	if warm == 0 || measured == 0 {
		t.Fatalf("warmup split degenerate: warm=%d measured=%d", warm, measured)
	}
}

func TestCacheRatesFrom(t *testing.T) {
	var before, after fam.EngineStats
	before.ResultCache.Hits, before.ResultCache.Misses = 10, 5
	after.ResultCache.Hits, after.ResultCache.Misses = 40, 15
	before.PrepCache.Hits, before.PrepCache.Misses = 2, 2
	after.PrepCache.Hits, after.PrepCache.Misses = 2, 2
	c := CacheRatesFrom(before, after)
	if c.ResultHits != 30 || c.ResultMisses != 10 || c.ResultHitRate != 0.75 {
		t.Fatalf("result rates: %+v", c)
	}
	if c.PrepHitRate != -1 {
		t.Fatalf("prep rate of empty window = %g, want -1", c.PrepHitRate)
	}
}

func TestParseDatasetSpecs(t *testing.T) {
	specs, err := ParseDatasetSpecs("hotels:50,cat=synthetic:30:2:anticorrelated:3")
	if err != nil {
		t.Fatalf("ParseDatasetSpecs: %v", err)
	}
	if len(specs) != 2 || specs[0].Name != "hotels" || specs[1].Name != "cat" {
		t.Fatalf("specs mis-parsed: %+v", specs)
	}
	if specs[1].DS.N() != 30 || specs[1].DS.Dim() != 2 {
		t.Fatalf("synthetic spec mis-built: n=%d dim=%d", specs[1].DS.N(), specs[1].DS.Dim())
	}
	if _, err := ParseDatasetSpecs("hotels:10,hotels:20"); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := ParseDatasetSpecs(""); err == nil {
		t.Fatal("empty spec accepted")
	}
}

// countingTarget records which target served each request.
type countingTarget struct {
	id    int
	calls *[]int
	mu    *sync.Mutex
}

func (t countingTarget) Do(ctx context.Context, req Request) Outcome {
	t.mu.Lock()
	*t.calls = append(*t.calls, t.id)
	t.mu.Unlock()
	return Outcome{Status: 200}
}

// MultiTarget stripes strictly round-robin, so a sequential run's
// target sequence is the repeating rotation.
func TestMultiTargetRoundRobin(t *testing.T) {
	var calls []int
	var mu sync.Mutex
	mt, err := NewMultiTarget(
		countingTarget{id: 0, calls: &calls, mu: &mu},
		countingTarget{id: 1, calls: &calls, mu: &mu},
		countingTarget{id: 2, calls: &calls, mu: &mu},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if o := mt.Do(context.Background(), Request{}); o.Status != 200 {
			t.Fatalf("call %d status %d", i, o.Status)
		}
	}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	if !reflect.DeepEqual(calls, want) {
		t.Fatalf("striping %v, want %v", calls, want)
	}

	if _, err := NewMultiTarget(); err == nil {
		t.Fatal("empty MultiTarget accepted")
	}
	if _, err := NewMultiTarget(nil); err == nil {
		t.Fatal("nil member accepted")
	}
}
