package load

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"github.com/regretlab/fam/internal/rng"
)

// The arrival processes a Spec can generate.
const (
	ArrivalPoisson = "poisson"
	ArrivalGamma   = "gamma"
	ArrivalUniform = "uniform"
)

// Template is one weighted request shape of a workload mix. Each
// generated request copies Base and then picks K (and Seed) uniformly
// from the candidate lists, so one template expresses "k-sweep over
// 2..8 at high priority" without enumerating requests.
type Template struct {
	// Weight is the template's relative share of the mix (non-negative;
	// zero-weight templates never fire). Defaults to 1 when the whole
	// mix leaves weights unset.
	Weight float64 `json:"weight,omitempty"`
	// Base is the request shape; its K/Seed are used when the candidate
	// lists are empty.
	Base Request `json:"base"`
	// Ks are the candidate K values, picked uniformly per request.
	Ks []int `json:"ks,omitempty"`
	// Seeds are the candidate query seeds, picked uniformly per request.
	Seeds []uint64 `json:"seeds,omitempty"`
}

// Spec is an open-loop workload: requests arrive at Rate per second
// for Duration, independent of completion times (an overloaded target
// falls behind and sheds; the generator never slows down for it —
// that is the point of open-loop load testing).
type Spec struct {
	// Rate is the mean arrival rate in requests/second.
	Rate float64 `json:"rate"`
	// Duration is the workload length (warmup included; the runner's
	// warmup window is a reporting concern, not a generation one).
	Duration time.Duration `json:"duration_ns"`
	// Arrival picks the inter-arrival process: "poisson" (default,
	// exponential gaps), "gamma" (GammaShape-tunable burstiness), or
	// "uniform" (a metronome at exactly 1/Rate).
	Arrival string `json:"arrival,omitempty"`
	// GammaShape sets the gamma arrival shape: < 1 is burstier than
	// Poisson, > 1 smoother. Defaults to 0.5. Ignored by the other
	// processes.
	GammaShape float64 `json:"gamma_shape,omitempty"`
	// Seed drives all generation randomness; equal specs with equal
	// seeds generate identical traces.
	Seed uint64 `json:"seed"`
	// Templates is the weighted mix; at least one is required.
	Templates []Template `json:"templates"`
}

// Generate expands the spec into a timestamped trace,
// deterministically in Seed.
func (s Spec) Generate() ([]TraceEntry, error) {
	if s.Rate <= 0 {
		return nil, fmt.Errorf("load: rate must be positive, got %g", s.Rate)
	}
	if s.Duration <= 0 {
		return nil, fmt.Errorf("load: duration must be positive, got %s", s.Duration)
	}
	if len(s.Templates) == 0 {
		return nil, errors.New("load: spec has no templates")
	}
	arrival := s.Arrival
	if arrival == "" {
		arrival = ArrivalPoisson
	}
	shape := s.GammaShape
	if shape <= 0 {
		shape = 0.5
	}
	switch arrival {
	case ArrivalPoisson, ArrivalGamma, ArrivalUniform:
	default:
		return nil, fmt.Errorf("load: unknown arrival process %q (want %s|%s|%s)",
			arrival, ArrivalPoisson, ArrivalGamma, ArrivalUniform)
	}
	weights := make([]float64, len(s.Templates))
	var total float64
	for i, t := range s.Templates {
		if t.Weight < 0 {
			return nil, fmt.Errorf("load: template %d has negative weight %g", i, t.Weight)
		}
		weights[i] = t.Weight
		total += t.Weight
	}
	if total == 0 {
		// All-unset weights mean a uniform mix.
		for i := range weights {
			weights[i] = 1
		}
	}

	g := rng.New(s.Seed)
	horizon := s.Duration.Seconds()
	mean := 1 / s.Rate
	var out []TraceEntry
	t := 0.0
	for {
		// Inter-arrival gap in seconds, mean 1/Rate for every process.
		var gap float64
		switch arrival {
		case ArrivalPoisson:
			gap = g.Exponential() * mean
		case ArrivalGamma:
			gap = g.Gamma(shape) * mean / shape
		case ArrivalUniform:
			gap = mean
		}
		t += gap
		if t >= horizon {
			return out, nil
		}
		tmpl := s.Templates[g.Categorical(weights)]
		req := tmpl.Base
		if len(tmpl.Ks) > 0 {
			req.K = tmpl.Ks[g.IntN(len(tmpl.Ks))]
		}
		if len(tmpl.Seeds) > 0 {
			req.Seed = tmpl.Seeds[g.IntN(len(tmpl.Seeds))]
		}
		out = append(out, TraceEntry{TMS: t * 1e3, Request: req})
	}
}

// ParseMix parses the famload -mix DSL into templates: semicolon-
// separated template clauses of comma-separated key=value pairs.
//
//	ds=hotels,k=2-8,prio=high,deadline=200,w=3;ds=hotels,k=5|9,prio=low
//
// Keys: ds (dataset, required), k (single value "5", range "2-8", or
// list "2|5|9"), seed (single or "1|2|3" list), algo, prio
// (low|normal|high), deadline (relative ms), maxq, par (per-request
// shard parallelism), n (sample size), eps, sigma, w (weight).
// Unknown keys fail loudly — a typo should not silently change the
// workload.
func ParseMix(s string) ([]Template, error) {
	var out []Template
	for ci, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		// Weight defaults to 1 so a clause that omits w= still fires
		// when other clauses set explicit weights.
		t := Template{Weight: 1}
		for _, kv := range strings.Split(clause, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("load: mix clause %d: %q is not key=value", ci+1, kv)
			}
			var err error
			switch key {
			case "ds":
				t.Base.Dataset = val
			case "k":
				t.Ks, err = parseIntList(val)
			case "seed":
				var seeds []int
				if seeds, err = parseIntList(val); err == nil {
					t.Seeds = make([]uint64, len(seeds))
					for i, v := range seeds {
						t.Seeds[i] = uint64(v)
					}
				}
			case "algo":
				t.Base.Algorithm = val
			case "prio":
				t.Base.Priority = val
			case "deadline":
				t.Base.DeadlineMS, err = strconv.ParseInt(val, 10, 64)
			case "maxq":
				t.Base.MaxQueue, err = strconv.Atoi(val)
			case "par":
				t.Base.Parallelism, err = strconv.Atoi(val)
			case "n":
				t.Base.SampleSize, err = strconv.Atoi(val)
			case "eps":
				t.Base.Epsilon, err = strconv.ParseFloat(val, 64)
			case "sigma":
				t.Base.Sigma, err = strconv.ParseFloat(val, 64)
			case "w":
				t.Weight, err = strconv.ParseFloat(val, 64)
			default:
				return nil, fmt.Errorf("load: mix clause %d: unknown key %q", ci+1, key)
			}
			if err != nil {
				return nil, fmt.Errorf("load: mix clause %d: %s=%q: %w", ci+1, key, val, err)
			}
		}
		if t.Base.Dataset == "" {
			return nil, fmt.Errorf("load: mix clause %d: missing ds=", ci+1)
		}
		if len(t.Ks) == 0 && t.Base.K == 0 && t.Base.Set == nil {
			return nil, fmt.Errorf("load: mix clause %d: missing k=", ci+1)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, errors.New("load: empty mix")
	}
	return out, nil
}

// parseIntList parses "5", "2-8" (inclusive range), or "2|5|9".
func parseIntList(s string) ([]int, error) {
	if lo, hi, ok := strings.Cut(s, "-"); ok && lo != "" {
		a, err := strconv.Atoi(lo)
		if err != nil {
			return nil, err
		}
		b, err := strconv.Atoi(hi)
		if err != nil {
			return nil, err
		}
		if b < a {
			return nil, fmt.Errorf("range %q is reversed", s)
		}
		out := make([]int, 0, b-a+1)
		for v := a; v <= b; v++ {
			out = append(out, v)
		}
		return out, nil
	}
	parts := strings.Split(s, "|")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
