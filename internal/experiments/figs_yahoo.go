package experiments

import (
	"context"
	"fmt"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/gmm"
	"github.com/regretlab/fam/internal/mf"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

func init() {
	register(Runner{
		ID:          "fig2",
		Description: "Effect of k on the simulated-Yahoo! dataset (MF + GMM learned Θ): arr and query time (Fig 2)",
		Run:         runFig2,
	})
	register(Runner{
		ID:          "fig3",
		Description: "Std dev of regret ratio vs k, and the user-percentile regret distribution, on simulated-Yahoo! (Fig 3)",
		Run:         runFig3,
	})
}

// yahooPrep builds the full Section V-B2 pipeline on the simulated ratings
// corpus: planted multi-modal preferences → sparse ratings → matrix
// factorization → 5-component GMM over user vectors → latent-linear Θ over
// latent item points.
func yahooPrep(cfg Config, N int) (*prep, error) {
	var users, items, rank int
	var density float64
	switch cfg.Scale {
	case ScaleBench:
		users, items, rank, density = 150, 250, 4, 0.3
	case ScaleSmall:
		users, items, rank, density = 400, 1500, 6, 0.15
	default:
		// The paper's Yahoo! set has 8,933 items.
		users, items, rank, density = 1000, 8933, 8, 0.05
	}
	rd, err := dataset.SimulatedRatings(users, items, rank, 5, density, 0.05, cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	mfCfg := mf.DefaultConfig(rank)
	mfCfg.Seed = cfg.Seed + 12
	model, err := mf.Train(rd, mfCfg)
	if err != nil {
		return nil, err
	}
	gmmCfg := gmm.DefaultConfig() // 5 components, as in the paper
	gmmCfg.Seed = cfg.Seed + 13
	mixture, err := gmm.Fit(model.UserVectors(), gmmCfg)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewLatentLinear(yahooSampler{m: mixture}, 0)
	if err != nil {
		return nil, err
	}
	ds := &dataset.Dataset{Name: "yahoo-sim", Points: model.ItemPoints()}
	return newPrep(ds, dist, N, cfg.Seed+14, cfg)
}

// yahooSampler adapts GMM user-vector samples to the item-point layout.
type yahooSampler struct {
	m *gmm.Model
}

func (s yahooSampler) SampleVector(g *rng.RNG) []float64 {
	return mf.WeightVector(s.m.SampleVector(g))
}

func (s yahooSampler) VectorDim() int { return s.m.VectorDim() + 1 }

func yahooKs(cfg Config) []int {
	if cfg.Scale == ScaleBench {
		return []int{5, 10, 15}
	}
	return []int{5, 10, 15, 20, 25, 30}
}

func yahooN(cfg Config) int {
	if cfg.Scale == ScaleBench {
		return 2000
	}
	return 10000
}

func runFig2(ctx context.Context, cfg Config) ([]*Table, error) {
	p, err := yahooPrep(cfg, yahooN(cfg))
	if err != nil {
		return nil, err
	}
	ks := yahooKs(cfg)
	res, err := p.sweep(ctx, standardAlgos(), ks)
	if err != nil {
		return nil, err
	}
	arrT := seriesTable("fig2a", "average regret ratio vs k (simulated Yahoo!, learned Θ)", "k", ks,
		standardAlgos(), res, func(r algoRun) string { return f4(r.Metrics.ARR) })
	timeT := seriesTable("fig2b", "query time (seconds) vs k (simulated Yahoo!)", "k", ks,
		standardAlgos(), res, func(r algoRun) string { return secs(r.Query) })
	return []*Table{arrT, timeT}, nil
}

func runFig3(ctx context.Context, cfg Config) ([]*Table, error) {
	p, err := yahooPrep(cfg, yahooN(cfg))
	if err != nil {
		return nil, err
	}
	ks := yahooKs(cfg)
	res, err := p.sweep(ctx, standardAlgos(), ks)
	if err != nil {
		return nil, err
	}
	sdT := seriesTable("fig3a", "std dev of regret ratio vs k (simulated Yahoo!)", "k", ks,
		standardAlgos(), res, func(r algoRun) string { return f4(r.Metrics.StdDev) })

	// Percentile distribution at the default k = 10.
	const k = 10
	distT := &Table{
		ID:     "fig3b",
		Title:  fmt.Sprintf("regret ratio at user percentiles (simulated Yahoo!, k=%d)", k),
		Header: append([]string{"percentile"}, standardAlgos()...),
	}
	for li, level := range core.DefaultPercentiles {
		row := []string{fmt.Sprintf("%.0f", level)}
		for _, a := range standardAlgos() {
			row = append(row, f4(res[a][k].Metrics.Percentiles[li]))
		}
		distT.Rows = append(distT.Rows, row)
	}
	return []*Table{sdT, distT}, nil
}
