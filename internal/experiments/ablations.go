package experiments

import (
	"context"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

func init() {
	register(Runner{
		ID:          "ablation1",
		Description: "GREEDY-SHRINK evaluation strategies (naive vs lazy vs delta): query time, identical output (A1)",
		Run:         runAblation1,
	})
	register(Runner{
		ID:          "ablation2",
		Description: "Improvements 1 and 2 work counters: fraction of users rescanned, candidates re-evaluated (A2)",
		Run:         runAblation2,
	})
	register(Runner{
		ID:          "ablation3",
		Description: "Closed-form vs adaptive-Simpson integration in the 2-d machinery (A3)",
		Run:         runAblation3,
	})
	register(Runner{
		ID:          "ablation4",
		Description: "Skyline preprocessing on/off for GREEDY-SHRINK (A4)",
		Run:         runAblation4,
	})
	register(Runner{
		ID:          "ablation5",
		Description: "LP-exact vs sampled MRR-GREEDY: sets, max regret ratio, time (A5)",
		Run:         runAblation5,
	})
	register(Runner{
		ID:          "ablation6",
		Description: "Greedy removal (GREEDY-SHRINK) vs greedy insertion (GREEDY-ADD): arr and query time across k (A6)",
		Run:         runAblation6,
	})
}

func ablationPrep(cfg Config) (*prep, error) {
	n, N := 2000, 5000
	if cfg.Scale == ScaleBench {
		n, N = 400, 1000
	} else if cfg.Scale == ScalePaper {
		n, N = 10000, 10000
	}
	ds, err := dataset.SimulatedHousehold(n, cfg.Seed+41)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewUniformSimplexLinear(ds.Dim())
	if err != nil {
		return nil, err
	}
	return newPrep(ds, dist, N, cfg.Seed+42, cfg)
}

func runAblation1(ctx context.Context, cfg Config) ([]*Table, error) {
	p, err := ablationPrep(cfg)
	if err != nil {
		return nil, err
	}
	const k = 10
	t := &Table{
		ID:     "ablation1",
		Title:  fmt.Sprintf("GREEDY-SHRINK strategies on Household stand-in (candidates=%d, N=%d, k=%d)", len(p.candidates), p.in.NumFuncs(), k),
		Header: []string{"strategy", "query s", "arr", "evaluations", "user rescans"},
	}
	var refARR float64
	for i, s := range []core.Strategy{core.StrategyNaive, core.StrategyLazy, core.StrategyDelta} {
		start := timeNow()
		set, stats, err := core.GreedyShrink(ctx, p.in, k, s)
		if err != nil {
			return nil, err
		}
		elapsed := timeSince(start)
		arr, err := p.in.ARR(set)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			refARR = arr
		} else if math.Abs(arr-refARR) > 1e-9 {
			return nil, fmt.Errorf("experiments: strategy %v arr %v != reference %v", s, arr, refARR)
		}
		t.Rows = append(t.Rows, []string{
			s.String(), secs(elapsed), f4(arr), itoa(stats.Evaluations), itoa(stats.UserRescans),
		})
	}
	return []*Table{t}, nil
}

func runAblation2(ctx context.Context, cfg Config) ([]*Table, error) {
	p, err := ablationPrep(cfg)
	if err != nil {
		return nil, err
	}
	const k = 10
	_, stats, err := core.GreedyShrink(ctx, p.in, k, core.StrategyLazy)
	if err != nil {
		return nil, err
	}
	iters := stats.Iterations
	if iters == 0 {
		iters = 1
	}
	evalFrac := float64(stats.Evaluations) / float64(stats.CandidateTotal)
	rescanPerIter := float64(stats.UserRescans) / float64(iters)
	userFrac := rescanPerIter / float64(p.in.NumFuncs())
	t := &Table{
		ID:     "ablation2",
		Title:  "lazy GREEDY-SHRINK work counters (the paper reports ≈68% of candidates and ≈1% of users per iteration)",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"iterations", itoa(stats.Iterations)},
			{"candidate evaluations", itoa(stats.Evaluations)},
			{"candidates skipped by bounds", itoa(stats.EvalSkipped)},
			{"fraction of candidates evaluated", f4(evalFrac)},
			{"user rescans per iteration", f2(rescanPerIter)},
			{"fraction of users rescanned per iteration", f4(userFrac)},
		},
	}
	return []*Table{t}, nil
}

func runAblation3(ctx context.Context, cfg Config) ([]*Table, error) {
	trials := 200
	if cfg.Scale == ScaleBench {
		trials = 50
	}
	g := rng.New(cfg.Seed + 43)
	var maxDiff float64
	closedStart := timeNow()
	type job struct {
		sel, best []float64
		a, b      float64
	}
	jobs := make([]job, trials)
	for i := range jobs {
		best := []float64{0.2 + g.Float64(), 0.2 + g.Float64()}
		sel := []float64{best[0] * g.Float64(), best[1] * g.Float64()}
		a := g.Float64() * 2
		b := a + g.Float64()*2
		if i%4 == 0 {
			b = math.Inf(1)
		}
		jobs[i] = job{sel, best, a, b}
	}
	if err := checkCtx(ctx); err != nil {
		return nil, err
	}
	closedStart = timeNow()
	closedVals := make([]float64, trials)
	for i, j := range jobs {
		closedVals[i] = geom.RegretIntegral(j.sel, j.best, j.a, j.b)
	}
	closedTime := timeSince(closedStart)
	simpsonStart := timeNow()
	for i, j := range jobs {
		v := geom.RegretIntegralSimpson(j.sel, j.best, j.a, j.b)
		if d := math.Abs(v - closedVals[i]); d > maxDiff {
			maxDiff = d
		}
	}
	simpsonTime := timeSince(simpsonStart)
	t := &Table{
		ID:     "ablation3",
		Title:  fmt.Sprintf("closed-form vs adaptive-Simpson regret integrals (%d random segments)", trials),
		Header: []string{"method", "total s", "max |diff|"},
		Rows: [][]string{
			{"closed-form", secs(closedTime), "0"},
			{"adaptive-simpson", secs(simpsonTime), fmt.Sprintf("%.2e", maxDiff)},
		},
	}
	return []*Table{t}, nil
}

func runAblation4(ctx context.Context, cfg Config) ([]*Table, error) {
	n, N := 5000, 5000
	if cfg.Scale == ScaleBench {
		n, N = 800, 1000
	}
	ds, err := dataset.SimulatedHousehold(n, cfg.Seed+44)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewUniformSimplexLinear(ds.Dim())
	if err != nil {
		return nil, err
	}
	const k = 10
	funcs, err := sampling.Sample(dist, N, rng.New(cfg.Seed+45))
	if err != nil {
		return nil, err
	}

	// Without skyline: shrink starts from all n points.
	fullStart := timeNow()
	inFull, err := core.NewInstance(ds.Points, funcs, core.Options{Parallelism: cfg.Exec.Parallelism, Sched: cfg.Exec.schedAttrs()})
	if err != nil {
		return nil, err
	}
	fullPrep := timeSince(fullStart)
	fullQ := timeNow()
	setFull, _, err := core.GreedyShrink(ctx, inFull, k, core.StrategyDelta)
	if err != nil {
		return nil, err
	}
	fullQuery := timeSince(fullQ)
	arrFull, _ := inFull.ARR(setFull)

	// With skyline preprocessing.
	skyStart := timeNow()
	sky, err := skyline.Compute(ds.Points)
	if err != nil {
		return nil, err
	}
	pts := make([][]float64, len(sky))
	for i, s := range sky {
		pts[i] = ds.Points[s]
	}
	inSky, err := core.NewInstance(pts, funcs, core.Options{Parallelism: cfg.Exec.Parallelism, Sched: cfg.Exec.schedAttrs()})
	if err != nil {
		return nil, err
	}
	skyPrep := timeSince(skyStart)
	skyQ := timeNow()
	setSky, _, err := core.GreedyShrink(ctx, inSky, min(k, len(sky)), core.StrategyDelta)
	if err != nil {
		return nil, err
	}
	skyQuery := timeSince(skyQ)
	arrSky, _ := inSky.ARR(setSky)

	t := &Table{
		ID:     "ablation4",
		Title:  fmt.Sprintf("skyline preprocessing for GREEDY-SHRINK (n=%d, skyline=%d, N=%d, k=%d)", n, len(sky), N, k),
		Header: []string{"variant", "preprocess s", "query s", "arr"},
		Rows: [][]string{
			{"no skyline", secs(fullPrep), secs(fullQuery), f4(arrFull)},
			{"with skyline", secs(skyPrep), secs(skyQuery), f4(arrSky)},
		},
	}
	if math.Abs(arrFull-arrSky) > 1e-9 {
		return nil, fmt.Errorf("experiments: skyline preprocessing changed arr: %v vs %v", arrFull, arrSky)
	}
	return []*Table{t}, nil
}

func runAblation5(ctx context.Context, cfg Config) ([]*Table, error) {
	p, err := ablationPrep(cfg)
	if err != nil {
		return nil, err
	}
	const k = 10
	lpRun, err := p.runAlgo(ctx, algoMRR, k) // linear prep => LP variant
	if err != nil {
		return nil, err
	}

	sampledStart := timeNow()
	sampledLocal, err := baseline.MRRGreedySampled(ctx, p.in, k)
	if err != nil {
		return nil, err
	}
	sampledTime := timeSince(sampledStart)
	sm, err := p.in.Evaluate(sampledLocal, nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "ablation5",
		Title:  fmt.Sprintf("MRR-GREEDY variants (candidates=%d, N=%d, k=%d)", len(p.candidates), p.in.NumFuncs(), k),
		Header: []string{"variant", "time s", "arr", "sampled max rr"},
		Rows: [][]string{
			{"lp-exact", secs(lpRun.Query), f4(lpRun.Metrics.ARR), f4(lpRun.Metrics.MaxRR)},
			{"sampled", secs(sampledTime), f4(sm.ARR), f4(sm.MaxRR)},
		},
	}
	return []*Table{t}, nil
}

// runAblation6 compares the paper's removal-based greedy against the
// insertion-based greedy of the authors' earlier SIGMOD 2016 poster.
// Shrink runs n−k iterations, add runs k, so their costs cross as k grows
// toward n; both land in the same quality neighborhood.
func runAblation6(ctx context.Context, cfg Config) ([]*Table, error) {
	p, err := ablationPrep(cfg)
	if err != nil {
		return nil, err
	}
	ks := []int{5, 10, 20, 40}
	t := &Table{
		ID:     "ablation6",
		Title:  fmt.Sprintf("greedy removal vs insertion (candidates=%d, N=%d)", len(p.candidates), p.in.NumFuncs()),
		Header: []string{"k", "shrink arr", "add arr", "shrink s", "add s"},
	}
	for _, k := range ks {
		if k > len(p.candidates) {
			break
		}
		sStart := timeNow()
		_, sStats, err := core.GreedyShrink(ctx, p.in, k, core.StrategyDelta)
		if err != nil {
			return nil, err
		}
		sTime := timeSince(sStart)
		aStart := timeNow()
		_, aStats, err := core.GreedyAdd(ctx, p.in, k)
		if err != nil {
			return nil, err
		}
		aTime := timeSince(aStart)
		t.Rows = append(t.Rows, []string{
			itoa(k), f4(sStats.FinalARR), f4(aStats.FinalARR), secs(sTime), secs(aTime),
		})
	}
	return []*Table{t}, nil
}
