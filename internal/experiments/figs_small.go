package experiments

import (
	"context"
	"fmt"

	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

func init() {
	register(Runner{
		ID:          "fig8",
		Description: "Comparison with brute force on a small sampled dataset: arr, arr/optimal, query time (Fig 8)",
		Run:         runFig8,
	})
	register(Runner{
		ID:          "fig9",
		Description: "Effect of the sampling error parameter ε: arr, arr/optimal, query time (Fig 9)",
		Run:         runFig9,
	})
}

// smallSample draws a small subset of the Household stand-in (the paper
// samples 100 points of Household-6d for its brute-force studies).
func smallSample(cfg Config, n int) (*dataset.Dataset, error) {
	base, err := dataset.SimulatedHousehold(4*n, cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	idx := rng.New(cfg.Seed+8).Choice(base.N(), n)
	return base.Subset(idx, fmt.Sprintf("household-sample-%d", n)), nil
}

// fig8Scale returns (n, N, ks) — the brute-force budget grows as C(n, k),
// which is exactly why the paper reports 50+ hours at n=100, k=5.
func fig8Scale(cfg Config) (int, int, []int) {
	switch cfg.Scale {
	case ScaleBench:
		return 30, 500, []int{1, 2, 3}
	case ScaleSmall:
		return 50, 2000, []int{1, 2, 3, 4}
	default:
		return 100, 10000, []int{1, 2, 3, 4}
	}
}

func runFig8(ctx context.Context, cfg Config) ([]*Table, error) {
	n, N, ks := fig8Scale(cfg)
	ds, err := smallSample(cfg, n)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewUniformSimplexLinear(ds.Dim())
	if err != nil {
		return nil, err
	}
	p, err := newPrep(ds, dist, N, cfg.Seed+9, cfg)
	if err != nil {
		return nil, err
	}
	algos := append(standardAlgos(), algoBF)
	res, err := p.sweep(ctx, algos, ks)
	if err != nil {
		return nil, err
	}
	arrT := seriesTable("fig8a", fmt.Sprintf("average regret ratio vs k (household sample, n=%d)", n),
		"k", ks, algos, res, func(r algoRun) string { return f4(r.Metrics.ARR) })
	ratioT := ratioTable("fig8b", "arr / optimal (brute force) vs k", "k", ks, standardAlgos(), res, algoBF)
	timeT := seriesTable("fig8c", "query time (seconds) vs k", "k", ks, algos, res,
		func(r algoRun) string { return secs(r.Query) })
	return []*Table{arrT, ratioT, timeT}, nil
}

// ratioTable renders each algorithm's metric relative to a reference
// algorithm's (the optimal one).
func ratioTable(id, title, xName string, xs []int, algos []string,
	res map[string]map[int]algoRun, ref string) *Table {
	t := &Table{ID: id, Title: title, Header: append([]string{xName}, algos...)}
	for _, x := range xs {
		opt := res[ref][x].Metrics.ARR
		row := []string{itoa(x)}
		for _, a := range algos {
			v := res[a][x].Metrics.ARR
			switch {
			case opt <= 1e-12 && v <= 1e-12:
				row = append(row, "1.00")
			case opt <= 1e-12:
				row = append(row, "inf")
			default:
				row = append(row, f2(v/opt))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// fig9Scale returns (n, k, eps values).
func fig9Scale(cfg Config) (int, int, []float64) {
	switch cfg.Scale {
	case ScaleBench:
		return 30, 3, []float64{0.1, 0.05}
	case ScaleSmall:
		return 50, 3, []float64{0.1, 0.05, 0.01}
	default:
		return 100, 4, []float64{0.1, 0.05, 0.01, 0.005}
	}
}

func runFig9(ctx context.Context, cfg Config) ([]*Table, error) {
	n, k, epss := fig9Scale(cfg)
	ds, err := smallSample(cfg, n)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewUniformSimplexLinear(ds.Dim())
	if err != nil {
		return nil, err
	}
	algos := append(standardAlgos(), algoBF)
	const sigma = 0.1

	arrT := &Table{ID: "fig9a", Title: fmt.Sprintf("average regret ratio vs ε (household sample, n=%d, k=%d, σ=%.1f)", n, k, sigma),
		Header: append([]string{"eps", "N"}, algos...)}
	ratioT := &Table{ID: "fig9b", Title: "arr / optimal (brute force) vs ε",
		Header: append([]string{"eps", "N"}, standardAlgos()...)}
	timeT := &Table{ID: "fig9c", Title: "query time (seconds) vs ε",
		Header: append([]string{"eps", "N"}, algos...)}

	for ei, eps := range epss {
		N, err := sampling.SampleSize(eps, sigma)
		if err != nil {
			return nil, err
		}
		p, err := newPrep(ds, dist, N, cfg.Seed+20+uint64(ei), cfg)
		if err != nil {
			return nil, err
		}
		res := make(map[string]algoRun, len(algos))
		for _, a := range algos {
			r, err := p.runAlgo(ctx, a, k)
			if err != nil {
				return nil, err
			}
			res[a] = r
		}
		epsLabel := fmt.Sprintf("%g", eps)
		nLabel := itoa(N)

		arrRow := []string{epsLabel, nLabel}
		timeRow := []string{epsLabel, nLabel}
		for _, a := range algos {
			arrRow = append(arrRow, f4(res[a].Metrics.ARR))
			timeRow = append(timeRow, secs(res[a].Query))
		}
		arrT.Rows = append(arrT.Rows, arrRow)
		timeT.Rows = append(timeT.Rows, timeRow)

		opt := res[algoBF].Metrics.ARR
		ratioRow := []string{epsLabel, nLabel}
		for _, a := range standardAlgos() {
			v := res[a].Metrics.ARR
			switch {
			case opt <= 1e-12 && v <= 1e-12:
				ratioRow = append(ratioRow, "1.00")
			case opt <= 1e-12:
				ratioRow = append(ratioRow, "inf")
			default:
				ratioRow = append(ratioRow, f2(v/opt))
			}
		}
		ratioT.Rows = append(ratioT.Rows, ratioRow)
	}
	return []*Table{arrT, ratioT, timeT}, nil
}
