package experiments

import (
	"context"
	"fmt"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

func init() {
	register(Runner{
		ID:          "table2",
		Description: "The three 5-player NBA sets chosen by ARR, MRR and K-HIT (Table II)",
		Run:         runTable2,
	})
	register(Runner{
		ID:          "table5",
		Description: "Sample size N for chosen ε and σ per Theorem 4 (Table V)",
		Run:         runTable5,
	})
}

func runTable2(ctx context.Context, cfg Config) ([]*Table, error) {
	n, N := 664, 10000 // the paper's Section V-A population
	if cfg.Scale == ScaleBench {
		n, N = 200, 2000
	}
	ds, err := dataset.SimulatedNBA22(n, cfg.Seed+2016)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewUniformSimplexLinear(ds.Dim())
	if err != nil {
		return nil, err
	}
	p, err := newPrep(ds, dist, N, cfg.Seed+2017, cfg)
	if err != nil {
		return nil, err
	}
	const k = 5
	algos := []string{algoGS, algoMRR, algoKH}
	sets := make(map[string]algoRun, len(algos))
	for _, a := range algos {
		r, err := p.runAlgo(ctx, a, k)
		if err != nil {
			return nil, err
		}
		sets[a] = r
	}

	members := &Table{
		ID:     "table2",
		Title:  fmt.Sprintf("the three %d-player sets (S_arr, S_mrr, S_k-hit) on the NBA stand-in (n=%d)", k, n),
		Header: []string{"S_arr", "S_mrr", "S_k-hit"},
	}
	for i := 0; i < k; i++ {
		members.Rows = append(members.Rows, []string{
			ds.Label(sets[algoGS].Set[i]),
			ds.Label(sets[algoMRR].Set[i]),
			ds.Label(sets[algoKH].Set[i]),
		})
	}

	overlap := func(a, b []int) int {
		in := make(map[int]bool, len(a))
		for _, x := range a {
			in[x] = true
		}
		c := 0
		for _, x := range b {
			if in[x] {
				c++
			}
		}
		return c
	}
	quality := &Table{
		ID:     "table2-metrics",
		Title:  "set quality and overlap (the paper observes S_arr ≈ S_k-hit, S_mrr diverging)",
		Header: []string{"set", "arr", "stddev", "max rr", "hit prob", "|∩ S_arr|"},
	}
	for _, a := range algos {
		r := sets[a]
		hit, err := baseline.HitProbability(p.in, p.toInstance(r.Set))
		if err != nil {
			return nil, err
		}
		quality.Rows = append(quality.Rows, []string{
			a, f4(r.Metrics.ARR), f4(r.Metrics.StdDev), f4(r.Metrics.MaxRR),
			f4(hit), itoa(overlap(sets[algoGS].Set, r.Set)),
		})
	}
	return []*Table{members, quality}, nil
}

func runTable5(_ context.Context, _ Config) ([]*Table, error) {
	t := &Table{
		ID:     "table5",
		Title:  "sample size N for chosen ε and σ (N = ⌈3·ln(1/σ)/ε²⌉, Theorem 4)",
		Header: []string{"eps", "sigma", "N"},
	}
	for _, row := range sampling.TableV() {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", row.Eps), fmt.Sprintf("%g", row.Sigma), itoa(row.N),
		})
	}
	return []*Table{t}, nil
}
