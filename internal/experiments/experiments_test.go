package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func benchCfg() Config { return Config{Scale: ScaleBench, Seed: 1} }

func TestParseScale(t *testing.T) {
	for s, want := range map[string]Scale{"bench": ScaleBench, "small": ScaleSmall, "paper": ScalePaper} {
		got, err := ParseScale(s)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("unknown scale must error")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "table2", "table5",
		"ablation1", "ablation2", "ablation3", "ablation4", "ablation5",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(IDs()) < len(want) {
		t.Fatalf("registry has %d entries, want at least %d", len(IDs()), len(want))
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup must miss unknown ids")
	}
	if _, err := Run(context.Background(), "nope", benchCfg()); err == nil {
		t.Fatal("Run of unknown id must error")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== x: demo ==") || !strings.Contains(out, "long-header") {
		t.Fatalf("render output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
}

// Every registered experiment must run to completion at bench scale and
// produce non-empty tables with rectangular rows.
func TestAllExperimentsRunAtBenchScale(t *testing.T) {
	if testing.Short() {
		t.Skip("bench-scale experiment sweep skipped in -short")
	}
	ctx := context.Background()
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tables, err := r.Run(ctx, benchCfg())
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", r.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("%s table %s has no rows", r.ID, tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("%s table %s row %v does not match header %v", r.ID, tab.ID, row, tab.Header)
					}
				}
			}
		})
	}
}

// Spot-check the scientific claims at bench scale: GREEDY-SHRINK's arr is
// competitive in Fig 8 (close to brute-force optimum) and Table V matches
// the formula exactly.
func TestFig8GreedyNearOptimal(t *testing.T) {
	tables, err := Run(context.Background(), "fig8", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	var ratio *Table
	for _, tab := range tables {
		if tab.ID == "fig8b" {
			ratio = tab
		}
	}
	if ratio == nil {
		t.Fatal("fig8b missing")
	}
	// Column 1 is Greedy-Shrink; every ratio must be close to 1.
	for _, row := range ratio.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad ratio cell %q", row[1])
		}
		if v > 1.1 {
			t.Fatalf("greedy-shrink ratio %v too far above optimal (row %v)", v, row)
		}
	}
}

func TestTable5Exact(t *testing.T) {
	tables, err := Run(context.Background(), "table5", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 6 {
		t.Fatalf("table5 shape: %+v", tables)
	}
	if tables[0].Rows[0][2] != "69078" {
		t.Fatalf("table5 first N = %s, want 69078 (paper prints 69,077 via floor)", tables[0].Rows[0][2])
	}
}

// Determinism: the same config renders byte-identical tables (timing
// columns excluded — compare an arr table).
func TestExperimentDeterminism(t *testing.T) {
	run := func() string {
		tables, err := Run(context.Background(), "fig8", benchCfg())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, tab := range tables {
			if tab.ID == "fig8a" || tab.ID == "fig8b" {
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
		}
		return buf.String()
	}
	if run() != run() {
		t.Fatal("experiment output must be deterministic for equal seeds")
	}
}
