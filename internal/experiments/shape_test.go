package experiments

import (
	"context"
	"strconv"
	"testing"
)

// These tests pin the paper's qualitative claims at bench scale: if a
// refactor changes who wins an experiment, they fail. Cell values are
// parsed from the rendered tables so the tests also cover the rendering
// pipeline end to end.

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("table %s cell (%d,%d) = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

func findTable(t *testing.T, tables []*Table, id string) *Table {
	t.Helper()
	for _, tab := range tables {
		if tab.ID == id {
			return tab
		}
	}
	t.Fatalf("table %s missing", id)
	return nil
}

func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("table %s has no column %q (header %v)", tab.ID, name, tab.Header)
	return -1
}

// Figure 1's claim: the DP is optimal — no algorithm's sampled arr may be
// meaningfully below it, and Greedy-Shrink stays close to it.
func TestFig1DPOptimalityShape(t *testing.T) {
	tables, err := Run(context.Background(), "fig1", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	arrT := findTable(t, tables, "fig1a")
	dpCol := colIndex(t, arrT, algoDP)
	gsCol := colIndex(t, arrT, algoGS)
	for r := range arrT.Rows {
		dp := cellFloat(t, arrT, r, dpCol)
		gs := cellFloat(t, arrT, r, gsCol)
		// Sampling noise allowance.
		if gs < dp-0.02 {
			t.Fatalf("row %d: greedy %v beats the DP optimum %v beyond noise", r, gs, dp)
		}
		if gs > 2*dp+0.02 {
			t.Fatalf("row %d: greedy %v far from optimum %v", r, gs, dp)
		}
	}
}

// Figure 2's claim: on a learned Θ, the distribution-aware algorithms (GS,
// KH) beat Sky-Dom, which ignores Θ entirely.
func TestFig2DistributionAwareShape(t *testing.T) {
	tables, err := Run(context.Background(), "fig2", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	arrT := findTable(t, tables, "fig2a")
	gsCol := colIndex(t, arrT, algoGS)
	sdCol := colIndex(t, arrT, algoSD)
	gsWins := 0
	for r := range arrT.Rows {
		if cellFloat(t, arrT, r, gsCol) <= cellFloat(t, arrT, r, sdCol)+1e-9 {
			gsWins++
		}
	}
	if gsWins < len(arrT.Rows) {
		t.Fatalf("Greedy-Shrink should beat Sky-Dom at every k on the learned Θ (won %d/%d)", gsWins, len(arrT.Rows))
	}
}

// Figure 6's claim: GS achieves the lowest (or tied-lowest) arr among the
// four algorithms on every real-dataset stand-in, for most k.
func TestFig6WinnerShape(t *testing.T) {
	tables, err := Run(context.Background(), "fig6", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range tables {
		gsCol := colIndex(t, tab, algoGS)
		wins := 0
		for r := range tab.Rows {
			gs := cellFloat(t, tab, r, gsCol)
			bestOther := 1.0
			for c := 1; c < len(tab.Header); c++ {
				if c == gsCol {
					continue
				}
				if v := cellFloat(t, tab, r, c); v < bestOther {
					bestOther = v
				}
			}
			if gs <= bestOther+0.002 {
				wins++
			}
		}
		if wins < (len(tab.Rows)+1)/2 {
			t.Fatalf("%s: Greedy-Shrink competitive in only %d/%d rows", tab.ID, wins, len(tab.Rows))
		}
	}
}

// Figures 11/12's claim: growing the evaluation sample does not move the
// percentile curves.
func TestFig11Fig12Stability(t *testing.T) {
	ctx := context.Background()
	t11, err := Run(ctx, "fig11", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	t12, err := Run(ctx, "fig12", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t11) != len(t12) {
		t.Fatalf("table counts differ: %d vs %d", len(t11), len(t12))
	}
	for i := range t11 {
		a, b := t11[i], t12[i]
		// The 100th percentile (last row) is the sample maximum — an
		// extreme order statistic that legitimately drifts with N; the
		// paper's stability claim covers percentiles up to the 99th.
		for r := 0; r < len(a.Rows)-1; r++ {
			for c := 1; c < len(a.Header); c++ {
				va := cellFloat(t, a, r, c)
				vb := cellFloat(t, b, r, c)
				if diff := va - vb; diff > 0.03 || diff < -0.03 {
					t.Fatalf("%s row %d col %d: N=small %v vs N=large %v", a.ID, r, c, va, vb)
				}
			}
		}
	}
}

// Ablation 6's claim: add and shrink land in the same quality
// neighborhood.
func TestAblation6Shape(t *testing.T) {
	tables, err := Run(context.Background(), "ablation6", benchCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	for r := range tab.Rows {
		shrink := cellFloat(t, tab, r, 1)
		add := cellFloat(t, tab, r, 2)
		if diff := shrink - add; diff > 0.05 || diff < -0.05 {
			t.Fatalf("row %d: shrink %v vs add %v diverge", r, shrink, add)
		}
	}
}
