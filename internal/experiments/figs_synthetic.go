package experiments

import (
	"context"
	"math"

	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/dp2d"
	"github.com/regretlab/fam/internal/utility"
)

func init() {
	register(Runner{
		ID:          "fig1",
		Description: "Effect of k on a 2-d dataset: arr, arr/optimal (DP) and query time (Fig 1)",
		Run:         runFig1,
	})
	register(Runner{
		ID:          "fig5",
		Description: "Effect of dimensionality d on synthetic data: arr and query time (Fig 5)",
		Run:         runFig5,
	})
	register(Runner{
		ID:          "fig7",
		Description: "Effect of database size n on synthetic data: arr and query time (Fig 7)",
		Run:         runFig7,
	})
}

// runFig1 reproduces Figure 1: a 2-d synthetic dataset where the dynamic
// program provides the true optimum; all algorithms are compared on arr,
// on the ratio to the optimum, and on query time.
func runFig1(ctx context.Context, cfg Config) ([]*Table, error) {
	var n, N int
	var ks []int
	switch cfg.Scale {
	case ScaleBench:
		n, N, ks = 500, 1000, []int{1, 2, 3, 4, 5}
	case ScaleSmall:
		n, N, ks = 10000, 10000, []int{1, 2, 3, 4, 5, 6, 7}
	default: // ScalePaper — Figure 1 is already paper scale at small
		n, N, ks = 10000, 10000, []int{1, 2, 3, 4, 5, 6, 7}
	}
	// The spherical family's convex front makes the 2-d study non-trivial:
	// with independent or planar-anticorrelated data, one or two points
	// already satisfy (almost) every linear user and all curves collapse
	// to zero.
	ds, err := dataset.Synthetic(n, 2, dataset.Spherical, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dist, err := utility.NewUniformBoxLinear(2)
	if err != nil {
		return nil, err
	}
	p, err := newPrep(ds, dist, N, cfg.Seed+1, cfg)
	if err != nil {
		return nil, err
	}
	res, err := p.sweep(ctx, standardAlgos(), ks)
	if err != nil {
		return nil, err
	}
	// The DP column: exact optimum per k.
	dpRes := make(map[int]algoRun)
	dpExact := make(map[int]float64)
	for _, k := range ks {
		if err := checkCtx(ctx); err != nil {
			return nil, err
		}
		r, err := timedDP(ctx, ds.Points, k, p)
		if err != nil {
			return nil, err
		}
		dpRes[k] = r.run
		dpExact[k] = r.exact
	}

	algos := append(standardAlgos(), algoDP)
	all := res
	all[algoDP] = dpRes

	arrT := seriesTable("fig1a", "average regret ratio vs k (2-d synthetic)", "k", ks, algos, all,
		func(r algoRun) string { return f4(r.Metrics.ARR) })

	ratioT := &Table{ID: "fig1b", Title: "arr / optimal (DP) vs k", Header: append([]string{"k"}, standardAlgos()...)}
	for _, k := range ks {
		opt := dpRes[k].Metrics.ARR
		row := []string{itoa(k)}
		for _, a := range standardAlgos() {
			v := all[a][k].Metrics.ARR
			if opt <= 1e-12 {
				if v <= 1e-12 {
					row = append(row, "1.00")
				} else {
					row = append(row, "inf")
				}
				continue
			}
			row = append(row, f2(v/opt))
		}
		ratioT.Rows = append(ratioT.Rows, row)
	}

	timeT := seriesTable("fig1c", "query time (seconds) vs k", "k", ks, algos, all,
		func(r algoRun) string { return secs(r.Query) })

	exactT := &Table{ID: "fig1d", Title: "DP exact arr vs sampled arr (sampling-bound check)",
		Header: []string{"k", "exact", "sampled", "|diff|"}}
	for _, k := range ks {
		exactT.Rows = append(exactT.Rows, []string{
			itoa(k), f4(dpExact[k]), f4(dpRes[k].Metrics.ARR),
			f4(math.Abs(dpExact[k] - dpRes[k].Metrics.ARR)),
		})
	}
	return []*Table{arrT, ratioT, timeT, exactT}, nil
}

type dpOutcome struct {
	run   algoRun
	exact float64
}

// timedDP runs the dynamic program and evaluates its set on the prep's
// sampled instance for comparability with the other algorithms.
func timedDP(ctx context.Context, points [][]float64, k int, p *prep) (dpOutcome, error) {
	start := timeNow()
	out, err := dp2d.SolveOpts(ctx, points, k, dp2d.Options{Parallelism: p.in.Parallelism()})
	if err != nil {
		return dpOutcome{}, err
	}
	query := timeSince(start)
	local, err := toLocal(out.Set, p)
	if err != nil {
		return dpOutcome{}, err
	}
	m, err := p.in.Evaluate(local, nil)
	if err != nil {
		return dpOutcome{}, err
	}
	return dpOutcome{run: algoRun{Set: out.Set, Query: query, Metrics: m}, exact: out.ARR}, nil
}

// toLocal maps dataset indices into prep-instance indices. DP selections
// are skyline points, so they are always inside a monotone prep's
// candidate set.
func toLocal(set []int, p *prep) ([]int, error) {
	if !p.restricted {
		return set, nil
	}
	pos := make(map[int]int, len(p.candidates))
	for i, c := range p.candidates {
		pos[c] = i
	}
	out := make([]int, len(set))
	for i, s := range set {
		l, ok := pos[s]
		if !ok {
			return nil, errNotCandidate(s)
		}
		out[i] = l
	}
	return out, nil
}

type errNotCandidate int

func (e errNotCandidate) Error() string {
	return "experiments: selected point " + itoa(int(e)) + " is not a skyline candidate"
}

// runFig5 reproduces Figure 5: dimensionality sweep at fixed n and k.
func runFig5(ctx context.Context, cfg Config) ([]*Table, error) {
	var n, N, k int
	var dims []int
	switch cfg.Scale {
	case ScaleBench:
		n, N, k, dims = 800, 1000, 10, []int{5, 10, 15}
	case ScaleSmall:
		n, N, k, dims = 2000, 5000, 10, []int{5, 10, 15, 20, 25, 30}
	default:
		n, N, k, dims = 10000, 10000, 10, []int{5, 10, 15, 20, 25, 30}
	}
	algos := standardAlgos()
	res := make(map[string]map[int]algoRun, len(algos))
	for _, a := range algos {
		res[a] = make(map[int]algoRun, len(dims))
	}
	for _, d := range dims {
		ds, err := dataset.Synthetic(n, d, dataset.Independent, cfg.Seed+uint64(d))
		if err != nil {
			return nil, err
		}
		dist, err := utility.NewUniformSimplexLinear(d)
		if err != nil {
			return nil, err
		}
		p, err := newPrep(ds, dist, N, cfg.Seed+100+uint64(d), cfg)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			r, err := p.runAlgo(ctx, a, k)
			if err != nil {
				return nil, err
			}
			res[a][d] = r
		}
	}
	arrT := seriesTable("fig5a", "average regret ratio vs d (synthetic, k=10)", "d", dims, algos, res,
		func(r algoRun) string { return f4(r.Metrics.ARR) })
	timeT := seriesTable("fig5b", "query time (seconds) vs d", "d", dims, algos, res,
		func(r algoRun) string { return secs(r.Query) })
	return []*Table{arrT, timeT}, nil
}

// runFig7 reproduces Figure 7: database-size sweep at fixed d and k.
func runFig7(ctx context.Context, cfg Config) ([]*Table, error) {
	var N, k, d int
	var ns []int
	switch cfg.Scale {
	case ScaleBench:
		N, k, d, ns = 1000, 10, 6, []int{1000, 4000}
	case ScaleSmall:
		N, k, d, ns = 10000, 10, 6, []int{1000, 10000, 100000}
	default:
		N, k, d, ns = 10000, 10, 6, []int{1000, 10000, 100000, 1000000, 10000000}
	}
	algos := standardAlgos()
	res := make(map[string]map[int]algoRun, len(algos))
	for _, a := range algos {
		res[a] = make(map[int]algoRun, len(ns))
	}
	for _, n := range ns {
		ds, err := dataset.Synthetic(n, d, dataset.Independent, cfg.Seed+uint64(n))
		if err != nil {
			return nil, err
		}
		dist, err := utility.NewUniformSimplexLinear(d)
		if err != nil {
			return nil, err
		}
		p, err := newPrep(ds, dist, N, cfg.Seed+200+uint64(n), cfg)
		if err != nil {
			return nil, err
		}
		for _, a := range algos {
			r, err := p.runAlgo(ctx, a, k)
			if err != nil {
				return nil, err
			}
			res[a][n] = r
		}
	}
	arrT := seriesTable("fig7a", "average regret ratio vs n (synthetic, d=6, k=10)", "n", ns, algos, res,
		func(r algoRun) string { return f4(r.Metrics.ARR) })
	timeT := seriesTable("fig7b", "query time (seconds) vs n", "n", ns, algos, res,
		func(r algoRun) string { return secs(r.Query) })
	return []*Table{arrT, timeT}, nil
}
