// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V and Appendix B). Each experiment is a registered
// Runner producing text tables with the same rows and series the paper
// plots; cmd/famexp renders them and the repository-root benchmarks wrap
// them in testing.B. Experiments accept three scales:
//
//   - ScaleBench: minimal sizes so `go test -bench=.` stays in CI budgets.
//   - ScaleSmall: the default; qualitative shapes match the paper within
//     minutes on a laptop.
//   - ScalePaper: the paper's dataset sizes and sample counts (long).
//
// See DESIGN.md §3 for the experiment-to-module index and EXPERIMENTS.md
// for recorded paper-vs-measured outcomes.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/sched"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

// Scale selects experiment sizes.
type Scale int

// Experiment scales.
const (
	ScaleBench Scale = iota
	ScaleSmall
	ScalePaper
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "bench":
		return ScaleBench, nil
	case "small":
		return ScaleSmall, nil
	case "paper":
		return ScalePaper, nil
	default:
		return 0, fmt.Errorf("experiments: unknown scale %q (want bench|small|paper)", s)
	}
}

// Exec is the execution policy of a run, mirroring the library's
// Query/Exec split: knobs that change how fast the experiments run but
// never what the tables say.
type Exec struct {
	// Parallelism bounds the worker goroutines of every instance built by
	// the experiments (0 = all CPUs, 1 = serial). Results are identical
	// at any setting; only the timing columns change.
	Parallelism int
	// LazyBatch sets the lazy strategy's refresh batch size on every
	// instance (<=1 = the paper's serial pop-refresh loop). Tables are
	// identical at any setting; only the lazy work counters and timings
	// change.
	LazyBatch int
	// Priority is the scheduling class the run's fan-outs are tagged
	// with, for experiments sharing a process (and its worker pool) with
	// serving traffic. Tables are identical at any class.
	Priority sched.Priority
}

// schedAttrs converts the Exec's scheduling fields for core.Options.
func (x Exec) schedAttrs() sched.Attrs { return sched.Attrs{Priority: x.Priority} }

// Config parameterizes a run: (Scale, Seed) is the semantic half — it
// determines every table cell — and Exec is the execution half.
type Config struct {
	Scale Scale
	Seed  uint64
	Exec  Exec
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Runner is a registered experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(ctx context.Context, cfg Config) ([]*Table, error)
}

// registry holds all experiments in presentation order.
var registry []Runner

func register(r Runner) { registry = append(registry, r) }

// All returns the experiments in registration order.
func All() []Runner { return append([]Runner(nil), registry...) }

// Lookup finds an experiment by ID.
func Lookup(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// IDs returns the registered experiment identifiers.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}

// prep is a shared experimental setup: one dataset, one sampled Θ, one
// preprocessed instance (on the skyline candidates for monotone Θ, per the
// paper's preprocessing step). All algorithms run against the same prep so
// their query times are comparable.
type prep struct {
	ds         *dataset.Dataset
	dist       utility.Distribution
	in         *core.Instance
	candidates []int // instance index -> dataset index
	restricted bool
	linear     bool // Θ samples plain linear functions (enables LP MRR)
	preprocess time.Duration
}

// newPrep builds the shared setup; cfg supplies the worker bound and the
// lazy refresh batch size for the instance.
func newPrep(ds *dataset.Dataset, dist utility.Distribution, n int, seed uint64, cfg Config) (*prep, error) {
	start := time.Now()
	candidates := make([]int, ds.N())
	for i := range candidates {
		candidates[i] = i
	}
	points := ds.Points
	restricted := false
	if dist.Monotone() && dist.Dim() != 0 {
		sky, err := skyline.Compute(ds.Points)
		if err != nil {
			return nil, err
		}
		if len(sky) < ds.N() {
			candidates = sky
			points = make([][]float64, len(sky))
			for i, c := range sky {
				points[i] = ds.Points[c]
			}
			restricted = true
		}
	}
	funcs, err := sampling.Sample(dist, n, rng.New(seed))
	if err != nil {
		return nil, err
	}
	in, err := core.NewInstance(points, funcs, core.Options{Parallelism: cfg.Exec.Parallelism, LazyBatch: cfg.Exec.LazyBatch, Sched: cfg.Exec.schedAttrs()})
	if err != nil {
		return nil, err
	}
	linear := false
	switch dist.(type) {
	case utility.UniformSimplexLinear, utility.UniformBoxLinear, utility.UniformSphereLinear:
		linear = true
	}
	return &prep{
		ds: ds, dist: dist, in: in, candidates: candidates,
		restricted: restricted, linear: linear, preprocess: time.Since(start),
	}, nil
}

// Algorithm labels used across experiment tables (the paper's legend).
const (
	algoGS    = "Greedy-Shrink"
	algoLazy  = "Greedy-Shrink-Lazy"
	algoNaive = "Greedy-Shrink-Naive"
	algoMRR   = "MRR-Greedy"
	algoSD    = "Sky-Dom"
	algoKH    = "K-Hit"
	algoBF    = "Brute-Force"
	algoDP    = "DP"
)

// standardAlgos is the four-way comparison of Figures 2 and 4–7.
func standardAlgos() []string { return []string{algoGS, algoMRR, algoSD, algoKH} }

// algoRun is one algorithm execution on a prep.
type algoRun struct {
	Set     []int // dataset indices
	Query   time.Duration
	Metrics core.Metrics
}

// runAlgo executes the named algorithm at size k on the prep and evaluates
// the result on the prep's instance. SKY-DOM runs on the full dataset (its
// dominance objective needs the dominated points) and its metrics are
// evaluated on the skyline members of its selection — for monotone Θ the
// dominated members contribute nothing to any user's satisfaction.
func (p *prep) runAlgo(ctx context.Context, algo string, k int) (algoRun, error) {
	if k > len(p.candidates) {
		k = len(p.candidates)
	}
	if algo == algoSD {
		start := time.Now()
		dsSet, err := baseline.SkyDom(ctx, p.ds.Points, k, p.in.Parallelism(), p.in.Pool())
		if err != nil {
			return algoRun{}, fmt.Errorf("experiments: %s(k=%d): %w", algo, k, err)
		}
		query := time.Since(start)
		local := p.toInstance(dsSet)
		if len(local) == 0 {
			return algoRun{}, fmt.Errorf("experiments: %s(k=%d): no skyline member selected", algo, k)
		}
		m, err := p.in.Evaluate(local, nil)
		if err != nil {
			return algoRun{}, err
		}
		return algoRun{Set: dsSet, Query: query, Metrics: m}, nil
	}

	start := time.Now()
	var local []int
	var err error
	switch algo {
	case algoGS:
		local, _, err = core.GreedyShrink(ctx, p.in, k, core.StrategyDelta)
	case algoLazy:
		local, _, err = core.GreedyShrink(ctx, p.in, k, core.StrategyLazy)
	case algoNaive:
		local, _, err = core.GreedyShrink(ctx, p.in, k, core.StrategyNaive)
	case algoMRR:
		if p.linear {
			local, err = baseline.MRRGreedyLP(ctx, instancePoints(p), k, p.in.Parallelism(), p.in.Pool())
		} else {
			local, err = baseline.MRRGreedySampled(ctx, p.in, k)
		}
	case algoKH:
		local, err = baseline.KHit(ctx, p.in, k)
	case algoBF:
		local, _, err = core.BruteForce(ctx, p.in, k)
	default:
		return algoRun{}, fmt.Errorf("experiments: unknown algorithm %q", algo)
	}
	if err != nil {
		return algoRun{}, fmt.Errorf("experiments: %s(k=%d): %w", algo, k, err)
	}
	query := time.Since(start)
	m, err := p.in.Evaluate(local, nil)
	if err != nil {
		return algoRun{}, err
	}
	set := make([]int, len(local))
	for i, l := range local {
		set[i] = p.candidates[l]
	}
	sort.Ints(set)
	return algoRun{Set: set, Query: query, Metrics: m}, nil
}

// toInstance maps dataset indices to instance indices, dropping points
// outside the candidate set.
func (p *prep) toInstance(dsSet []int) []int {
	pos := make(map[int]int, len(p.candidates))
	for i, c := range p.candidates {
		pos[c] = i
	}
	var local []int
	for _, s := range dsSet {
		if l, ok := pos[s]; ok {
			local = append(local, l)
		}
	}
	return local
}

// timeNow/timeSince aliases keep experiment files free of direct time
// imports.
var (
	timeNow   = time.Now
	timeSince = time.Since
)

// instancePoints returns the candidate point slice of the prep.
func instancePoints(p *prep) [][]float64 {
	if !p.restricted {
		return p.ds.Points
	}
	pts := make([][]float64, len(p.candidates))
	for i, c := range p.candidates {
		pts[i] = p.ds.Points[c]
	}
	return pts
}

// sweep runs every algorithm at every k and returns results keyed by
// algorithm then k.
func (p *prep) sweep(ctx context.Context, algos []string, ks []int) (map[string]map[int]algoRun, error) {
	out := make(map[string]map[int]algoRun, len(algos))
	for _, a := range algos {
		out[a] = make(map[int]algoRun, len(ks))
		for _, k := range ks {
			r, err := p.runAlgo(ctx, a, k)
			if err != nil {
				return nil, err
			}
			out[a][k] = r
		}
	}
	return out, nil
}

// Formatting helpers shared by the experiment tables.

func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func secs(d time.Duration) string {
	return fmt.Sprintf("%.4g", d.Seconds())
}
func itoa(v int) string { return fmt.Sprintf("%d", v) }

// seriesTable builds a "k vs algorithms" table from sweep results using
// the given cell extractor.
func seriesTable(id, title, xName string, xs []int, algos []string,
	res map[string]map[int]algoRun, cell func(algoRun) string) *Table {
	t := &Table{ID: id, Title: title, Header: append([]string{xName}, algos...)}
	for _, x := range xs {
		row := []string{itoa(x)}
		for _, a := range algos {
			row = append(row, cell(res[a][x]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// errCanceled wraps context errors uniformly.
func checkCtx(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// ErrUnknownExperiment is returned by Run for unregistered IDs.
var ErrUnknownExperiment = errors.New("experiments: unknown experiment")

// Run executes one experiment by ID.
func Run(ctx context.Context, id string, cfg Config) ([]*Table, error) {
	r, ok := Lookup(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q (known: %s)", ErrUnknownExperiment, id, strings.Join(IDs(), ", "))
	}
	return r.Run(ctx, cfg)
}
