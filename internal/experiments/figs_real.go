package experiments

import (
	"context"
	"fmt"

	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/utility"
)

func init() {
	register(Runner{
		ID:          "fig4",
		Description: "Query time vs k on the four real-dataset stand-ins (Fig 4)",
		Run: func(ctx context.Context, cfg Config) ([]*Table, error) {
			return runRealSweep(ctx, cfg, "fig4", "query time (seconds)",
				func(r algoRun) string { return secs(r.Query) })
		},
	})
	register(Runner{
		ID:          "fig6",
		Description: "Average regret ratio vs k on the four real-dataset stand-ins (Fig 6)",
		Run: func(ctx context.Context, cfg Config) ([]*Table, error) {
			return runRealSweep(ctx, cfg, "fig6", "average regret ratio",
				func(r algoRun) string { return f4(r.Metrics.ARR) })
		},
	})
	register(Runner{
		ID:          "fig10",
		Description: "Standard deviation of regret ratio vs k on real-dataset stand-ins (Fig 10)",
		Run: func(ctx context.Context, cfg Config) ([]*Table, error) {
			return runRealSweep(ctx, cfg, "fig10", "std dev of regret ratio",
				func(r algoRun) string { return f4(r.Metrics.StdDev) })
		},
	})
	register(Runner{
		ID:          "fig11",
		Description: "Regret ratio distribution across user percentiles, N=10,000 (Fig 11)",
		Run: func(ctx context.Context, cfg Config) ([]*Table, error) {
			return runRealPercentiles(ctx, cfg, "fig11", percentileSampleSize(cfg, false))
		},
	})
	register(Runner{
		ID:          "fig12",
		Description: "Regret ratio distribution with a large sample, N=1,000,000 at paper scale (Fig 12)",
		Run: func(ctx context.Context, cfg Config) ([]*Table, error) {
			return runRealPercentiles(ctx, cfg, "fig12", percentileSampleSize(cfg, true))
		},
	})
}

// realDataset describes one of the paper's Table IV datasets.
type realDataset struct {
	name string
	gen  func(n int, seed uint64) (*dataset.Dataset, error)
	// paperN is the size from the paper's Table IV.
	paperN int
}

func realDatasets() []realDataset {
	return []realDataset{
		{"Household-6d", dataset.SimulatedHousehold, 127931},
		{"ForestCover", dataset.SimulatedForestCover, 100000},
		{"USCensus", dataset.SimulatedUSCensus, 100000},
		{"NBA", dataset.SimulatedNBA, 16915},
	}
}

// realScale returns (n per dataset, sample size, ks) for the shared
// real-dataset sweeps.
func realScale(cfg Config) (func(realDataset) int, int, []int) {
	switch cfg.Scale {
	case ScaleBench:
		return func(realDataset) int { return 600 }, 1000, []int{5, 15, 25}
	case ScaleSmall:
		return func(realDataset) int { return 5000 }, 10000, []int{5, 10, 15, 20, 25, 30}
	default:
		return func(rd realDataset) int { return rd.paperN }, 10000, []int{5, 10, 15, 20, 25, 30}
	}
}

// runRealSweep builds one table per real dataset with algorithms as
// columns and k as rows, extracting one cell per run — the layout of
// Figures 4, 6 and 10.
func runRealSweep(ctx context.Context, cfg Config, id, what string, cell func(algoRun) string) ([]*Table, error) {
	sizeOf, N, ks := realScale(cfg)
	var tables []*Table
	for di, rd := range realDatasets() {
		ds, err := rd.gen(sizeOf(rd), cfg.Seed+uint64(di))
		if err != nil {
			return nil, err
		}
		dist, err := utility.NewUniformSimplexLinear(ds.Dim())
		if err != nil {
			return nil, err
		}
		p, err := newPrep(ds, dist, N, cfg.Seed+1000+uint64(di), cfg)
		if err != nil {
			return nil, err
		}
		res, err := p.sweep(ctx, standardAlgos(), ks)
		if err != nil {
			return nil, err
		}
		t := seriesTable(fmt.Sprintf("%s-%s", id, rd.name),
			fmt.Sprintf("%s vs k on %s (n=%d, d=%d)", what, rd.name, ds.N(), ds.Dim()),
			"k", ks, standardAlgos(), res, cell)
		tables = append(tables, t)
	}
	return tables, nil
}

// percentileSampleSize picks N for the Fig 11/12 percentile studies.
func percentileSampleSize(cfg Config, large bool) int {
	switch cfg.Scale {
	case ScaleBench:
		if large {
			return 20000
		}
		return 5000
	case ScaleSmall:
		if large {
			return 100000
		}
		return 10000
	default:
		if large {
			return 1000000
		}
		return 10000
	}
}

// runRealPercentiles reproduces the percentile plots: the regret ratio at
// the 70/80/90/95/99/100-th user percentiles for each algorithm's k=10
// selection.
func runRealPercentiles(ctx context.Context, cfg Config, id string, N int) ([]*Table, error) {
	sizeOf, selectionN, _ := realScale(cfg)
	const k = 10
	var tables []*Table
	for di, rd := range realDatasets() {
		ds, err := rd.gen(sizeOf(rd), cfg.Seed+uint64(di))
		if err != nil {
			return nil, err
		}
		dist, err := utility.NewUniformSimplexLinear(ds.Dim())
		if err != nil {
			return nil, err
		}
		// Selection uses the default sample size; the percentile
		// measurement re-evaluates the chosen sets under N users (the
		// point of Fig 12 is that growing N to 10⁶ does not change the
		// distribution).
		p, err := newPrep(ds, dist, selectionN, cfg.Seed+2000+uint64(di), cfg)
		if err != nil {
			return nil, err
		}
		sets := make(map[string][]int, len(standardAlgos()))
		for _, a := range standardAlgos() {
			r, err := p.runAlgo(ctx, a, k)
			if err != nil {
				return nil, err
			}
			sets[a] = r.Set
		}
		big, err := newPrep(ds, dist, N, cfg.Seed+3000+uint64(di), cfg)
		if err != nil {
			return nil, err
		}
		t := &Table{
			ID:     fmt.Sprintf("%s-%s", id, rd.name),
			Title:  fmt.Sprintf("regret ratio at user percentiles on %s (k=%d, N=%d)", rd.name, k, N),
			Header: append([]string{"percentile"}, standardAlgos()...),
		}
		perAlgo := make(map[string]core.Metrics, len(standardAlgos()))
		for _, a := range standardAlgos() {
			local := big.toInstance(sets[a])
			m, err := big.in.Evaluate(local, nil)
			if err != nil {
				return nil, err
			}
			perAlgo[a] = m
		}
		for li, level := range core.DefaultPercentiles {
			row := []string{fmt.Sprintf("%.0f", level)}
			for _, a := range standardAlgos() {
				row = append(row, f4(perAlgo[a].Percentiles[li]))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}
