package par

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	cases := []struct {
		requested, items, want int
	}{
		{1, 100, 1},
		{4, 100, 4},
		{8, 3, 3},
		{-2, 5, min(runtime.GOMAXPROCS(0), 5)},
		{0, 1 << 30, runtime.GOMAXPROCS(0)},
		{3, 0, 1},
	}
	for _, c := range cases {
		if got := Workers(c.requested, c.items); got != c.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.items, got, c.want)
		}
	}
}

// Every index must be visited exactly once, whatever the worker count.
func TestShardsCoverage(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 3, 7, 16, 0} {
		for _, n := range []int{1, 2, 5, 97, 1000} {
			hits := make([]int32, n)
			err := Shards(ctx, workers, n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

// Blocks must be contiguous and ordered by worker id — the property the
// deterministic argmin/argmax merges depend on.
func TestShardsContiguousOrdered(t *testing.T) {
	const n = 103
	los := make([]int, 8)
	his := make([]int, 8)
	seen := make([]bool, 8)
	err := Shards(context.Background(), 8, n, func(w, lo, hi int) {
		los[w], his[w], seen[w] = lo, hi, true
	})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for w := 0; w < 8; w++ {
		if !seen[w] {
			t.Fatalf("worker %d never ran", w)
		}
		if los[w] != prev || his[w] < los[w] {
			t.Fatalf("worker %d got [%d,%d), want lo=%d", w, los[w], his[w], prev)
		}
		prev = his[w]
	}
	if prev != n {
		t.Fatalf("blocks end at %d, want %d", prev, n)
	}
}

// A pre-canceled context must not run any work.
func TestShardsPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Bool
	err := Shards(ctx, 4, 100, func(w, lo, hi int) { ran.Store(true) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("worker body ran under a pre-canceled context")
	}
}

// A cancellation during the run must surface as ctx.Err() after the join.
func TestShardsMidRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	err := Shards(ctx, 4, 64, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == lo {
				cancel()
			}
			if ctx.Err() != nil {
				return // what solver loops do per item
			}
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestShardsEmpty(t *testing.T) {
	if err := Shards(context.Background(), 4, 0, func(w, lo, hi int) {
		t.Fatal("fn must not run for n=0")
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBounded(t *testing.T) {
	cases := []struct {
		requested, items, want int
	}{
		{8, 1000, 8},          // plenty of items: untouched
		{8, 100, 100 / Grain}, // shed workers, don't serialize
		{8, 2 * Grain, 2},     // exactly two grains: two workers
		{8, Grain, 1},         // one grain: serial
		{8, 3, 1},             // tiny: serial
		{1, 1000, 1},          // explicit serial stays serial
	}
	for _, c := range cases {
		if got := Bounded(c.requested, c.items); got != c.want {
			t.Errorf("Bounded(%d, %d) = %d, want %d", c.requested, c.items, got, c.want)
		}
	}
}
