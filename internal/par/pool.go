package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/regretlab/fam/internal/obs"
	"github.com/regretlab/fam/internal/sched"
)

// Pool is a long-lived, bounded set of helper goroutines shared by every
// concurrent query of a serving process. A one-shot Select spawns its
// shard goroutines per call (package-level Shards); a server handling
// many concurrent queries instead multiplexes them over one Pool so the
// process never runs more than Size helper goroutines regardless of how
// many queries are in flight.
//
// Scheduling is caller-participating: Pool.Shards enqueues up to
// workers−1 helper requests and then works through the shard blocks on
// the calling goroutine itself, with helpers claiming further blocks as
// they arrive. The caller always makes progress, so a saturated pool
// degrades a query toward inline execution instead of deadlocking, and a
// closed (or nil) pool behaves exactly like the plain goroutine-per-shard
// Shards.
//
// Which queued request a freed helper serves next is decided by a
// pluggable grant policy (internal/sched): the default WeightedEDF
// orders ready requests by weighted priority class, then earliest
// deadline, then arrival — exact FIFO for requests without scheduling
// attributes, which is every caller that does not attach sched.Attrs to
// its context. Requests whose deadline has already passed are shed by
// admission control (Shards returns sched.ErrShed) instead of being
// queued.
//
// Block boundaries are computed exactly as in package-level Shards, and
// every block is claimed by exactly one runner, so the deterministic
// lowest-index reductions built on Shards are unaffected by which
// goroutine happens to execute a block — or by the order requests are
// granted helpers in.
type Pool struct {
	size      int
	queue     *sched.Queue
	wake      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// Config parameterizes NewPoolConfig. The zero value matches
// NewPool(0): GOMAXPROCS helpers under the default WeightedEDF grant
// policy on the real clock.
type Config struct {
	// Size is the helper goroutine count (0 or negative = GOMAXPROCS).
	Size int
	// Policy orders pending helper requests (nil = sched.WeightedEDF
	// with default class weights; sched.FIFO{} restores the legacy
	// arrival-order grants).
	Policy sched.Policy
	// Clock drives deadline admission and queue-wait accounting (nil =
	// real time). Tests inject a fixed clock for deterministic EDF
	// ordering and shed decisions.
	Clock sched.Clock
}

// NewPool starts a pool of `size` helper goroutines (0 or negative =
// GOMAXPROCS) with the default grant policy. Close releases them.
func NewPool(size int) *Pool {
	return NewPoolConfig(Config{Size: size})
}

// NewPoolConfig starts a pool with an explicit grant policy and clock.
func NewPoolConfig(cfg Config) *Pool {
	size := cfg.Size
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size:  size,
		queue: sched.NewQueue(cfg.Policy, cfg.Clock),
		// The wake buffer lets a query signal its helper requests without
		// blocking even when all helpers are busy; a full buffer means
		// enough wakeups are already pending to drain the queue.
		wake: make(chan struct{}, size),
		done: make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		go p.helperLoop()
	}
	return p
}

// helperLoop serves granted requests until the pool closes. After each
// wakeup the helper drains the grant queue: the policy picks the next
// request, stale tickets (their Shards call already finished) are
// discarded for free.
func (p *Pool) helperLoop() {
	for {
		select {
		case <-p.wake:
			for {
				run := p.queue.Pop()
				if run == nil {
					break
				}
				run()
			}
		case <-p.done:
			return
		}
	}
}

// Size returns the number of helper goroutines (0 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

// QueueDepth returns the number of pending helper requests (0 for a nil
// pool). Serving layers use it for load-shedding admission control; the
// count may include stale tickets not yet discarded, so it is an upper
// bound on genuinely waiting work.
func (p *Pool) QueueDepth() int {
	if p == nil {
		return 0
	}
	return p.queue.Depth()
}

// SchedStats returns a snapshot of the grant-queue counters (zero for a
// nil pool).
func (p *Pool) SchedStats() sched.Stats {
	if p == nil {
		return sched.Stats{}
	}
	return p.queue.Stats()
}

// Close stops the helper goroutines. Shards calls that are in flight
// finish normally (their callers run any unclaimed blocks), and later
// Shards calls still work — they just run without helpers. Close is
// idempotent and safe on a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.done) })
}

// Shards partitions [0, n) into contiguous blocks exactly like the
// package-level Shards and runs fn(w, lo, hi) once per block, using pool
// helpers plus the calling goroutine instead of spawning fresh
// goroutines. A nil receiver delegates to the package-level Shards, so
// code threaded with an optional pool needs no branching. All block
// writes happen-before Shards returns.
//
// Scheduling attributes attached to ctx via sched.NewContext order this
// call's helper requests against other queued work; a deadline that has
// already passed sheds the call (sched.ErrShed) before any block runs.
func (p *Pool) Shards(ctx context.Context, workers, n int, fn func(w, lo, hi int)) error {
	if p == nil {
		return Shards(ctx, workers, n, fn)
	}
	if n <= 0 {
		return ctx.Err()
	}
	// Admission control: work whose deadline has already passed can only
	// steal helpers from live requests — shed it before decomposition.
	attrs := sched.FromContext(ctx)
	// The current trace span (if any) rides on the ticket attrs so each
	// grant reports its enqueue-to-grant wait as a span event. Attached
	// here, not stored in the sched context: tracing must not turn an
	// otherwise attribute-less request into scheduled work.
	attrs.Span = obs.FromContext(ctx)
	if p.queue.ShedExpired(attrs) {
		return sched.ErrShed
	}
	workers = Workers(workers, n)
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers == 1 {
		fn(0, 0, n)
		return ctx.Err()
	}

	// Blocks are claimed through an atomic cursor: the caller and every
	// helper loop "claim next block, run it" until all blocks are taken.
	// A helper granted the request after the caller finished everything
	// finds the cursor exhausted and returns immediately.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	run := func() {
		for {
			w := int(next.Add(1)) - 1
			if w >= workers {
				return
			}
			fn(w, w*n/workers, (w+1)*n/workers)
			wg.Done()
		}
	}
	call := &sched.Call{}
	p.requestHelpers(workers-1, attrs, call, run)
	// Give the woken helpers a scheduling point before the caller starts
	// claiming blocks. Without it a caller on a saturated single-P
	// runtime claims every block before any helper runs, so tickets only
	// ever go stale and the grant policy (and its per-class counters)
	// never gets to act.
	runtime.Gosched()
	run()
	wg.Wait()
	// Tickets not yet granted are stale: every block is claimed, so the
	// queue drops them now — they must not linger inflating the queue
	// depth that admission control reads.
	p.queue.FinishCall(call)
	return ctx.Err()
}

// requestHelpers enqueues up to count helper requests under the call's
// scheduling attributes and signals the helpers. A closed pool enqueues
// nothing — the caller-participating loop picks up the slack. Requests
// beyond the pool size are pointless (there are only size helpers) and
// are trimmed.
func (p *Pool) requestHelpers(count int, attrs sched.Attrs, call *sched.Call, run func()) {
	select {
	case <-p.done:
		return
	default:
	}
	if count > p.size {
		count = p.size
	}
	for h := 0; h < count; h++ {
		p.queue.Push(attrs, call, run)
	}
	// Wake signals are advisory: a full buffer means enough wakeups are
	// already pending, and the receiving helper drains the whole queue.
	for h := 0; h < count; h++ {
		select {
		case p.wake <- struct{}{}:
		default:
			return
		}
	}
}
