package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a long-lived, bounded set of helper goroutines shared by every
// concurrent query of a serving process. A one-shot Select spawns its
// shard goroutines per call (package-level Shards); a server handling
// many concurrent queries instead multiplexes them over one Pool so the
// process never runs more than Size helper goroutines regardless of how
// many queries are in flight.
//
// Scheduling is caller-participating: Pool.Shards enqueues up to
// workers−1 helper requests and then works through the shard blocks on
// the calling goroutine itself, with helpers claiming further blocks as
// they arrive. The caller always makes progress, so a saturated pool
// degrades a query toward inline execution instead of deadlocking, and a
// closed (or nil) pool behaves exactly like the plain goroutine-per-shard
// Shards. Helper requests drain in FIFO order, so concurrent queries
// receive helpers fairly in arrival order.
//
// Block boundaries are computed exactly as in package-level Shards, and
// every block is claimed by exactly one runner, so the deterministic
// lowest-index reductions built on Shards are unaffected by which
// goroutine happens to execute a block.
type Pool struct {
	size      int
	helpers   chan func()
	done      chan struct{}
	closeOnce sync.Once
}

// NewPool starts a pool of `size` helper goroutines (0 or negative =
// GOMAXPROCS). Close releases them.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		size: size,
		// The buffer lets a query queue its helper requests without
		// blocking even when all helpers are busy; queued requests are
		// picked up FIFO as helpers free up. A stale request (its blocks
		// all claimed by then) costs one atomic load.
		helpers: make(chan func(), size),
		done:    make(chan struct{}),
	}
	for i := 0; i < size; i++ {
		go p.helperLoop()
	}
	return p
}

func (p *Pool) helperLoop() {
	for {
		select {
		case fn := <-p.helpers:
			fn()
		case <-p.done:
			return
		}
	}
}

// Size returns the number of helper goroutines (0 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

// Close stops the helper goroutines. Shards calls that are in flight
// finish normally (their callers run any unclaimed blocks), and later
// Shards calls still work — they just run without helpers. Close is
// idempotent and safe on a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closeOnce.Do(func() { close(p.done) })
}

// Shards partitions [0, n) into contiguous blocks exactly like the
// package-level Shards and runs fn(w, lo, hi) once per block, using pool
// helpers plus the calling goroutine instead of spawning fresh
// goroutines. A nil receiver delegates to the package-level Shards, so
// code threaded with an optional pool needs no branching. All block
// writes happen-before Shards returns.
func (p *Pool) Shards(ctx context.Context, workers, n int, fn func(w, lo, hi int)) error {
	if p == nil {
		return Shards(ctx, workers, n, fn)
	}
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers == 1 {
		fn(0, 0, n)
		return ctx.Err()
	}

	// Blocks are claimed through an atomic cursor: the caller and every
	// helper loop "claim next block, run it" until all blocks are taken.
	// A helper that arrives after the caller finished everything finds
	// the cursor exhausted and returns immediately.
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	run := func() {
		for {
			w := int(next.Add(1)) - 1
			if w >= workers {
				return
			}
			fn(w, w*n/workers, (w+1)*n/workers)
			wg.Done()
		}
	}
	p.requestHelpers(workers-1, run)
	run()
	wg.Wait()
	return ctx.Err()
}

// requestHelpers enqueues up to count helper requests without ever
// blocking: a full queue or a closed pool simply means fewer (or no)
// helpers, and the caller-participating loop picks up the slack.
func (p *Pool) requestHelpers(count int, run func()) {
	for h := 0; h < count; h++ {
		select {
		case <-p.done:
			return
		default:
		}
		select {
		case p.helpers <- run:
		default:
			return
		}
	}
}
