package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// blocksOf records the (w, lo, hi) triples a Shards run hands out.
func blocksOf(t *testing.T, run func(fn func(w, lo, hi int)) error) map[[3]int]bool {
	t.Helper()
	var mu sync.Mutex
	got := map[[3]int]bool{}
	if err := run(func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		key := [3]int{w, lo, hi}
		if got[key] {
			t.Errorf("block %v dispatched twice", key)
		}
		got[key] = true
	}); err != nil {
		t.Fatalf("Shards: %v", err)
	}
	return got
}

// TestPoolShardsMatchesPlainShards pins the determinism contract: the
// pool hands out exactly the block decomposition of package-level Shards.
func TestPoolShardsMatchesPlainShards(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ctx := context.Background()
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			plain := blocksOf(t, func(fn func(w, lo, hi int)) error {
				return Shards(ctx, workers, n, fn)
			})
			pooled := blocksOf(t, func(fn func(w, lo, hi int)) error {
				return pool.Shards(ctx, workers, n, fn)
			})
			if len(plain) != len(pooled) {
				t.Fatalf("n=%d workers=%d: %d plain blocks vs %d pooled", n, workers, len(plain), len(pooled))
			}
			for b := range plain {
				if !pooled[b] {
					t.Fatalf("n=%d workers=%d: block %v missing from pooled run", n, workers, b)
				}
			}
		}
	}
}

// TestPoolNilFallsBackToShards: a nil pool must behave exactly like the
// plain Shards so optional threading needs no branches.
func TestPoolNilFallsBackToShards(t *testing.T) {
	var p *Pool
	var ran atomic.Int64
	if err := p.Shards(context.Background(), 4, 100, func(w, lo, hi int) {
		ran.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("nil pool covered %d of 100 items", ran.Load())
	}
	if p.Size() != 0 {
		t.Fatalf("nil pool Size = %d", p.Size())
	}
	p.Close() // must not panic
}

// TestPoolSaturationNoDeadlock: many concurrent queries on a tiny pool
// must all complete because callers participate in their own work.
func TestPoolSaturationNoDeadlock(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	var covered atomic.Int64
	const queries, items = 32, 257
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.Shards(ctx, 8, items, func(w, lo, hi int) {
				covered.Add(int64(hi - lo))
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if covered.Load() != queries*items {
		t.Fatalf("covered %d of %d items", covered.Load(), queries*items)
	}
}

// TestPoolHelpersParticipate: with an idle pool, all blocks of one call
// run concurrently (caller + helpers), proven by a barrier that only
// opens when every block has started.
func TestPoolHelpersParticipate(t *testing.T) {
	const workers = 4
	pool := NewPool(workers)
	defer pool.Close()
	var barrier sync.WaitGroup
	barrier.Add(workers)
	if err := pool.Shards(context.Background(), workers, workers*Grain*100, func(w, lo, hi int) {
		barrier.Done()
		barrier.Wait() // deadlocks unless all blocks run concurrently
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolClosedStillServes: Shards after Close falls back to running all
// blocks on the caller.
func TestPoolClosedStillServes(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // idempotent
	var covered atomic.Int64
	if err := pool.Shards(context.Background(), 4, 100, func(w, lo, hi int) {
		covered.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if covered.Load() != 100 {
		t.Fatalf("covered %d of 100 items after Close", covered.Load())
	}
}

// TestPoolPreCanceledContext: a canceled context stops the call before
// any block runs, mirroring the plain Shards contract.
func TestPoolPreCanceledContext(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := pool.Shards(ctx, 4, 100, func(w, lo, hi int) { ran = true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("block ran despite pre-canceled context")
	}
}
