package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/regretlab/fam/internal/sched"
)

// blocksOf records the (w, lo, hi) triples a Shards run hands out.
func blocksOf(t *testing.T, run func(fn func(w, lo, hi int)) error) map[[3]int]bool {
	t.Helper()
	var mu sync.Mutex
	got := map[[3]int]bool{}
	if err := run(func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		key := [3]int{w, lo, hi}
		if got[key] {
			t.Errorf("block %v dispatched twice", key)
		}
		got[key] = true
	}); err != nil {
		t.Fatalf("Shards: %v", err)
	}
	return got
}

// TestPoolShardsMatchesPlainShards pins the determinism contract: the
// pool hands out exactly the block decomposition of package-level Shards.
func TestPoolShardsMatchesPlainShards(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ctx := context.Background()
	for _, n := range []int{1, 2, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			plain := blocksOf(t, func(fn func(w, lo, hi int)) error {
				return Shards(ctx, workers, n, fn)
			})
			pooled := blocksOf(t, func(fn func(w, lo, hi int)) error {
				return pool.Shards(ctx, workers, n, fn)
			})
			if len(plain) != len(pooled) {
				t.Fatalf("n=%d workers=%d: %d plain blocks vs %d pooled", n, workers, len(plain), len(pooled))
			}
			for b := range plain {
				if !pooled[b] {
					t.Fatalf("n=%d workers=%d: block %v missing from pooled run", n, workers, b)
				}
			}
		}
	}
}

// TestPoolNilFallsBackToShards: a nil pool must behave exactly like the
// plain Shards so optional threading needs no branches.
func TestPoolNilFallsBackToShards(t *testing.T) {
	var p *Pool
	var ran atomic.Int64
	if err := p.Shards(context.Background(), 4, 100, func(w, lo, hi int) {
		ran.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 {
		t.Fatalf("nil pool covered %d of 100 items", ran.Load())
	}
	if p.Size() != 0 {
		t.Fatalf("nil pool Size = %d", p.Size())
	}
	p.Close() // must not panic
}

// TestPoolSaturationNoDeadlock: many concurrent queries on a tiny pool
// must all complete because callers participate in their own work.
func TestPoolSaturationNoDeadlock(t *testing.T) {
	pool := NewPool(1)
	defer pool.Close()
	ctx := context.Background()
	var wg sync.WaitGroup
	var covered atomic.Int64
	const queries, items = 32, 257
	for q := 0; q < queries; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := pool.Shards(ctx, 8, items, func(w, lo, hi int) {
				covered.Add(int64(hi - lo))
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if covered.Load() != queries*items {
		t.Fatalf("covered %d of %d items", covered.Load(), queries*items)
	}
}

// TestPoolHelpersParticipate: with an idle pool, all blocks of one call
// run concurrently (caller + helpers), proven by a barrier that only
// opens when every block has started.
func TestPoolHelpersParticipate(t *testing.T) {
	const workers = 4
	pool := NewPool(workers)
	defer pool.Close()
	var barrier sync.WaitGroup
	barrier.Add(workers)
	if err := pool.Shards(context.Background(), workers, workers*Grain*100, func(w, lo, hi int) {
		barrier.Done()
		barrier.Wait() // deadlocks unless all blocks run concurrently
	}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolClosedStillServes: Shards after Close falls back to running all
// blocks on the caller.
func TestPoolClosedStillServes(t *testing.T) {
	pool := NewPool(2)
	pool.Close()
	pool.Close() // idempotent
	var covered atomic.Int64
	if err := pool.Shards(context.Background(), 4, 100, func(w, lo, hi int) {
		covered.Add(int64(hi - lo))
	}); err != nil {
		t.Fatal(err)
	}
	if covered.Load() != 100 {
		t.Fatalf("covered %d of 100 items after Close", covered.Load())
	}
}

// TestPoolPreCanceledContext: a canceled context stops the call before
// any block runs, mirroring the plain Shards contract.
func TestPoolPreCanceledContext(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := pool.Shards(ctx, 4, 100, func(w, lo, hi int) { ran = true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("block ran despite pre-canceled context")
	}
}

// TestPoolPriorityGrantOrder is the deterministic scheduler test of the
// grant policy: with the single helper occupied and both requests
// already queued, releasing the helper must grant the high-priority
// request before the earlier-arrived low-priority one. The test drives
// the grant queue white-box (the helper is saturated by a directly
// enqueued blocker), so there is no timing dependence: the pop order is
// exactly the policy's order.
func TestPoolPriorityGrantOrder(t *testing.T) {
	pool := NewPoolConfig(Config{Size: 1})
	defer pool.Close()

	// Saturate the only helper with a blocker.
	block := make(chan struct{})
	started := make(chan struct{})
	pool.queue.Push(sched.Attrs{}, nil, func() {
		close(started)
		<-block
	})
	pool.wake <- struct{}{}
	<-started

	// Queue low-priority work first, high-priority second; both are
	// pending before the helper frees up.
	order := make(chan string, 2)
	pool.queue.Push(sched.Attrs{Priority: sched.Low}, nil, func() { order <- "low" })
	pool.queue.Push(sched.Attrs{Priority: sched.High}, nil, func() { order <- "high" })
	pool.wake <- struct{}{}
	close(block)

	if first := <-order; first != "high" {
		t.Fatalf("first grant went to %q, want the high-priority request", first)
	}
	if second := <-order; second != "low" {
		t.Fatalf("second grant went to %q, want the queued low-priority request", second)
	}
}

// TestPoolEDFGrantOrder: among queued requests of one class, the
// earlier deadline is granted first regardless of arrival order —
// deterministic under the injected clock.
func TestPoolEDFGrantOrder(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	pool := NewPoolConfig(Config{Size: 1, Clock: func() time.Time { return t0 }})
	defer pool.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	pool.queue.Push(sched.Attrs{}, nil, func() {
		close(started)
		<-block
	})
	pool.wake <- struct{}{}
	<-started

	order := make(chan string, 3)
	pool.queue.Push(sched.Attrs{Deadline: t0.Add(9 * time.Second)}, nil, func() { order <- "9s" })
	pool.queue.Push(sched.Attrs{Deadline: t0.Add(3 * time.Second)}, nil, func() { order <- "3s" })
	pool.queue.Push(sched.Attrs{Deadline: t0.Add(6 * time.Second)}, nil, func() { order <- "6s" })
	pool.wake <- struct{}{}
	close(block)

	for _, want := range []string{"3s", "6s", "9s"} {
		if got := <-order; got != want {
			t.Fatalf("grant = %q, want %q (EDF order)", got, want)
		}
	}
}

// TestPoolShedsExpiredDeadline: admission control rejects a Shards call
// whose context deadline attr already passed — no block runs, the call
// reports sched.ErrShed, and the shed is counted.
func TestPoolShedsExpiredDeadline(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	pool := NewPoolConfig(Config{Size: 2, Clock: func() time.Time { return t0 }})
	defer pool.Close()

	ctx := sched.NewContext(context.Background(), sched.Attrs{Deadline: t0.Add(-time.Second)})
	ran := false
	err := pool.Shards(ctx, 4, 100, func(w, lo, hi int) { ran = true })
	if !errors.Is(err, sched.ErrShed) {
		t.Fatalf("err = %v, want sched.ErrShed", err)
	}
	if ran {
		t.Fatal("block ran despite expired deadline")
	}
	if s := pool.SchedStats(); s.Shed != 1 {
		t.Fatalf("shed count = %d, want 1", s.Shed)
	}

	// A live deadline is admitted and the call completes normally.
	live := sched.NewContext(context.Background(), sched.Attrs{Deadline: t0.Add(time.Hour)})
	var covered atomic.Int64
	if err := pool.Shards(live, 4, 100, func(w, lo, hi int) { covered.Add(int64(hi - lo)) }); err != nil {
		t.Fatal(err)
	}
	if covered.Load() != 100 {
		t.Fatalf("covered %d of 100", covered.Load())
	}
}

// TestPoolAttrsKeepDecompositionIdentical: scheduling attributes must
// never change block boundaries — the bit-determinism contract.
func TestPoolAttrsKeepDecompositionIdentical(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	ctx := sched.NewContext(context.Background(),
		sched.Attrs{Priority: sched.High, Deadline: time.Now().Add(time.Hour)})
	for _, n := range []int{1, 7, 100} {
		for _, workers := range []int{1, 3, 8} {
			plain := blocksOf(t, func(fn func(w, lo, hi int)) error {
				return Shards(context.Background(), workers, n, fn)
			})
			tagged := blocksOf(t, func(fn func(w, lo, hi int)) error {
				return pool.Shards(ctx, workers, n, fn)
			})
			if len(plain) != len(tagged) {
				t.Fatalf("n=%d workers=%d: %d blocks vs %d with attrs", n, workers, len(plain), len(tagged))
			}
			for b := range plain {
				if !tagged[b] {
					t.Fatalf("n=%d workers=%d: block %v missing under attrs", n, workers, b)
				}
			}
		}
	}
}

// TestPoolFIFOPolicyOption: the legacy policy remains available through
// NewPoolConfig and grants strictly by arrival.
func TestPoolFIFOPolicyOption(t *testing.T) {
	pool := NewPoolConfig(Config{Size: 1, Policy: sched.FIFO{}})
	defer pool.Close()

	block := make(chan struct{})
	started := make(chan struct{})
	pool.queue.Push(sched.Attrs{}, nil, func() {
		close(started)
		<-block
	})
	pool.wake <- struct{}{}
	<-started

	order := make(chan string, 2)
	pool.queue.Push(sched.Attrs{Priority: sched.Low}, nil, func() { order <- "low" })
	pool.queue.Push(sched.Attrs{Priority: sched.High}, nil, func() { order <- "high" })
	pool.wake <- struct{}{}
	close(block)

	if first := <-order; first != "low" {
		t.Fatalf("FIFO granted %q first, want the earlier-arrived request", first)
	}
	if s := pool.SchedStats(); s.Policy != "fifo" {
		t.Fatalf("policy = %q, want fifo", s.Policy)
	}
}

// TestPoolQueueDrainsAfterLoad: after sustained Shards traffic the
// grant queue must return to depth 0 — finished calls discard their
// unneeded tickets, so admission control never mistakes leftovers for
// genuine load — and helpers must have been granted real work along
// the way.
func TestPoolQueueDrainsAfterLoad(t *testing.T) {
	pool := NewPool(4)
	defer pool.Close()
	work := make([]float64, 1_000_000)
	for r := 0; r < 50; r++ {
		if err := pool.Shards(context.Background(), 4, len(work), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				work[i] += float64(i % 7)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if d := pool.QueueDepth(); d != 0 {
		t.Fatalf("queue depth = %d after all calls finished, want 0", d)
	}
	s := pool.SchedStats()
	if s.Granted+s.Stale != 50*3 {
		t.Fatalf("granted %d + stale %d != %d requests", s.Granted, s.Stale, 50*3)
	}
}

// TestPoolShardsAttributesQueueWait: helper grants of a Shards call add
// their enqueue-to-grant latency to the wait counter carried in the
// call's scheduling attrs, and the attributed total matches the pool's
// own grant-wait sum exactly — no other traffic, same clock reads. The
// injected clock advances on every read, so the waits are strictly
// positive whenever a ticket is granted.
func TestPoolShardsAttributesQueueWait(t *testing.T) {
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	var ticks atomic.Int64
	clock := func() time.Time { return t0.Add(time.Duration(ticks.Add(1)) * time.Millisecond) }
	pool := NewPoolConfig(Config{Size: 2, Clock: clock})
	defer pool.Close()

	w := new(sched.WaitCounter)
	ctx := sched.NewContext(context.Background(), sched.Attrs{Wait: w})
	var total atomic.Int64
	if err := pool.Shards(ctx, 4, 1000, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			total.Add(int64(i))
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := total.Load(), int64(1000*999/2); got != want {
		t.Fatalf("shard sum = %d, want %d", got, want)
	}
	s := pool.SchedStats()
	if w.Load() != s.QueueWait {
		t.Fatalf("attributed wait %v != pool grant-wait sum %v", w.Load(), s.QueueWait)
	}
	if s.Granted > 0 && w.Load() <= 0 {
		t.Fatalf("granted %d tickets under an advancing clock but attributed wait is %v", s.Granted, w.Load())
	}
}

// TestPoolPerClassStatsSurface: the queue's per-class counters flow
// through Pool.SchedStats — every class that requested helpers is
// accounted (each pushed ticket ends granted or stale), so the serving
// layers above can export per-class grant shares without reaching into
// internal/sched.
func TestPoolPerClassStatsSurface(t *testing.T) {
	pool := NewPoolConfig(Config{Size: 2})
	defer pool.Close()
	for _, p := range []sched.Priority{sched.Low, sched.High} {
		ctx := sched.NewContext(context.Background(), sched.Attrs{Priority: p})
		var n atomic.Int64
		if err := pool.Shards(ctx, 4, 200, func(_, lo, hi int) { n.Add(int64(hi - lo)) }); err != nil {
			t.Fatal(err)
		}
		if n.Load() != 200 {
			t.Fatalf("covered %d of 200", n.Load())
		}
	}
	s := pool.SchedStats()
	if s.PerClass == nil {
		t.Fatal("SchedStats.PerClass not populated after classed traffic")
	}
	var granted, stale uint64
	for _, class := range []string{"low", "high"} {
		cs, ok := s.PerClass[class]
		if !ok || cs.Granted+cs.Stale == 0 {
			t.Fatalf("class %q unaccounted in %+v", class, s.PerClass)
		}
	}
	for _, cs := range s.PerClass {
		granted += cs.Granted
		stale += cs.Stale
	}
	if granted != s.Granted || stale != s.Stale {
		t.Fatalf("per-class sums (%d/%d) do not partition pool totals (%d/%d)", granted, stale, s.Granted, s.Stale)
	}
}
