// Package par is the bounded worker pool shared by the query engine
// (internal/core) and the baselines (internal/baseline). It shards an
// index range [0, n) into one contiguous block per worker, which is the
// property every deterministic reduction in this repository relies on:
// per-item results are independent, blocks are ordered by index, so a
// merge that visits workers in ascending order with a strict comparison
// reproduces the serial lowest-index tie-break bit for bit.
package par

import (
	"context"
	"runtime"
	"sync"
)

// Workers resolves a requested parallelism level against the number of
// independent items. Zero or negative requests mean "use every CPU"
// (GOMAXPROCS); the result is clamped to items so no worker starts empty,
// and is at least 1.
func Workers(requested, items int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > items {
		w = items
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Grain is the minimum number of cheap items per worker before a fan-out
// pays for its goroutine dispatch.
const Grain = 16

// Bounded resolves a worker count like Workers but additionally requires
// every worker to hold at least Grain items, shedding workers (rather
// than collapsing straight to serial) as batches shrink. Use it for
// cheap per-item work — O(n) scans and the like; callers whose items are
// individually expensive (an LP solve, a full candidate evaluation)
// should use Workers directly.
func Bounded(requested, items int) int {
	w := Workers(requested, items)
	if max := items / Grain; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Shards partitions [0, n) into `workers` contiguous blocks and runs
// fn(w, lo, hi) for block w on its own goroutine. With workers <= 1 (or
// nothing to do) fn runs inline on the caller's goroutine, so serial
// execution has zero scheduling overhead and identical semantics.
//
// fn is responsible for polling ctx inside its block when items are
// expensive (every solver in this repository checks once per item);
// Shards itself checks before dispatch and after the join, so a
// pre-canceled context never starts work and a mid-run cancellation is
// always reported. The returned error is ctx.Err() or nil — worker
// results travel through caller-owned slices indexed by item or worker.
func Shards(ctx context.Context, workers, n int, fn func(w, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if err := ctx.Err(); err != nil {
		return err
	}
	if workers == 1 {
		fn(0, 0, n)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}
