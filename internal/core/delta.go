package core

import (
	"context"

	"github.com/regretlab/fam/internal/obs"
)

// deltaShrink implements GREEDY-SHRINK with best- and second-best-point
// tracking. For every user the algorithm maintains the best and second-best
// point of the current set S; the evaluation value of removing p decomposes
// as
//
//	arr(S−{p}) = arr(S) + Σ_{u: best(u)=p} (f_u(best) − f_u(second)) / satD(u) / N,
//
// so all candidate evaluations are available from one accumulator array
// rc[p] that is maintained incrementally: a user's contribution moves only
// when their best or second-best point is removed. Each iteration is
// O(|S|) to pick the argmin plus O(|S|) per affected user to rescan,
// and the paper observes only ≈1% of users are affected per iteration.
//
// Parallelism: the per-user scans (initialization and the per-iteration
// rescans) are pure reads of the utility matrix and the alive set, so they
// are sharded across the worker pool into position-indexed buffers; the
// accumulator updates they feed are then applied serially in the original
// user order. Floating-point accumulation order is therefore identical to
// the serial run, keeping rc — and every selection — bit-identical at any
// worker count.
func deltaShrink(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	n, N := in.NumPoints(), in.NumFuncs()
	var stats ShrinkStats
	pool := newEvalPool(in, &stats)
	set := newAliveSet(n)

	best := make([]int32, N)
	second := make([]int32, N)
	bestVal := make([]float64, N)
	secondVal := make([]float64, N)
	rc := make([]float64, n)
	usersByBest := make([][]int32, n)
	usersBySecond := make([][]int32, n)

	// twoMax finds the best (first index wins ties) and second-best alive
	// points for user u via the kernel's contiguous row scan over the
	// compacted alive list — same ascending visit order as the historical
	// full-array scan, without touching dead points. Returns sentinel -1
	// indices when unavailable.
	twoMax := func(u int) (b1 int32, v1 float64, b2 int32, v2 float64) {
		b1, v1, b2, v2 = in.rowTwoMax(u, set.list)
		if v1 < 0 {
			v1 = 0
		}
		if v2 < 0 {
			v2 = 0
		}
		return
	}

	// secondMax finds the best alive point for user u excluding the
	// point `excl`.
	secondMax := func(u int, excl int32) (int32, float64) {
		idx, val := in.rowMaxExcl(u, set.list, excl)
		if val < 0 {
			val = 0
		}
		return idx, val
	}

	// pairBuf holds parallel-computed (best, second) pairs, indexed by the
	// position of the user in the batch being rescanned.
	type pair struct {
		b1, b2 int32
		v1, v2 float64
	}
	pairs := make([]pair, 0, N)

	// Initialization: one full scan per user, computed in parallel and
	// accumulated serially in user order. Contributions are scaled by the
	// user's probability mass so weighted (Appendix A) instances are
	// optimized exactly.
	pairs = pairs[:N]
	if err := pool.run(ctx, N, func(w, lo, hi int) {
		for u := lo; u < hi; u++ {
			if ctx.Err() != nil {
				return
			}
			if in.satD[u] <= 0 {
				continue
			}
			b1, v1, b2, v2 := twoMax(u)
			pairs[u] = pair{b1: b1, b2: b2, v1: v1, v2: v2}
		}
	}); err != nil {
		return nil, stats, err
	}
	for u := 0; u < N; u++ {
		if in.satD[u] <= 0 {
			best[u], second[u] = -1, -1
			continue
		}
		p := pairs[u]
		best[u], bestVal[u] = p.b1, p.v1
		second[u], secondVal[u] = p.b2, p.v2
		rc[p.b1] += in.Weight(u) * (p.v1 - p.v2) / in.satD[u]
		usersByBest[p.b1] = append(usersByBest[p.b1], int32(u))
		if p.b2 >= 0 {
			usersBySecond[p.b2] = append(usersBySecond[p.b2], int32(u))
		}
	}

	rescan := make([]int32, 0, N) // users needing a second-best refresh
	for set.count > k {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += set.count
		// The argmin of rc over the alive points is the point whose
		// removal increases arr the least; every candidate's evaluation is
		// already available, so all of them count as evaluated.
		stats.Evaluations += set.count
		// Round span: eval count is a pure function of the instance
		// (set.count is worker-independent), keeping the trace shape
		// deterministic at any worker count.
		_, round := obs.Start(ctx, "round")
		round.SetAttrInt("iter", stats.Iterations)
		round.SetAttrInt("evals", set.count)
		chosen := -1
		for _, p32 := range set.list {
			if p := int(p32); chosen == -1 || rc[p] < rc[chosen] {
				chosen = p
			}
		}
		set.remove(chosen)

		// Users whose best point was removed: promote their second-best,
		// rescan for a fresh pair, and move their rc contribution. The
		// rescans only read alive/utility state, so they run in parallel;
		// the rc and index-list updates are applied serially in list order.
		affected := usersByBest[chosen]
		stats.UserRescans += len(affected)
		pairs = pairs[:len(affected)]
		if err := pool.run(ctx, len(affected), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				b1, v1, b2, v2 := twoMax(int(affected[i]))
				pairs[i] = pair{b1: b1, b2: b2, v1: v1, v2: v2}
			}
		}); err != nil {
			return nil, stats, err
		}
		for i, u := range affected {
			p := pairs[i]
			best[u], bestVal[u] = p.b1, p.v1
			second[u], secondVal[u] = p.b2, p.v2
			if p.b1 >= 0 {
				rc[p.b1] += in.Weight(int(u)) * (p.v1 - p.v2) / in.satD[u]
				usersByBest[p.b1] = append(usersByBest[p.b1], u)
				if p.b2 >= 0 {
					usersBySecond[p.b2] = append(usersBySecond[p.b2], u)
				}
			}
		}

		// Users whose second-best point was removed (best unchanged):
		// their removal cost for the best point grows. The queue may hold
		// stale or duplicate entries; serially, processing a user updates
		// second[u] so later duplicates fail the filter — keeping only the
		// first passing occurrence reproduces that exactly.
		rescan = rescan[:0]
		for _, u := range usersBySecond[chosen] {
			if best[u] == int32(chosen) || second[u] != int32(chosen) {
				continue // handled above, or a stale queue entry
			}
			second[u] = -2 // mark claimed so duplicates are skipped
			rescan = append(rescan, u)
		}
		stats.UserRescans += len(rescan)
		pairs = pairs[:len(rescan)]
		if err := pool.run(ctx, len(rescan), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				u := rescan[i]
				b2, v2 := secondMax(int(u), best[u])
				pairs[i] = pair{b2: b2, v2: v2}
			}
		}); err != nil {
			return nil, stats, err
		}
		for i, u := range rescan {
			p := pairs[i]
			oldV2 := secondVal[u]
			second[u], secondVal[u] = p.b2, p.v2
			rc[best[u]] += in.Weight(int(u)) * (oldV2 - p.v2) / in.satD[u]
			if p.b2 >= 0 {
				usersBySecond[p.b2] = append(usersBySecond[p.b2], u)
			}
		}
		usersByBest[chosen] = nil
		usersBySecond[chosen] = nil
		round.End()
	}
	return set.members(), stats, nil
}
