package core

import (
	"context"
)

// deltaShrink implements GREEDY-SHRINK with best- and second-best-point
// tracking. For every user the algorithm maintains the best and second-best
// point of the current set S; the evaluation value of removing p decomposes
// as
//
//	arr(S−{p}) = arr(S) + Σ_{u: best(u)=p} (f_u(best) − f_u(second)) / satD(u) / N,
//
// so all candidate evaluations are available from one accumulator array
// rc[p] that is maintained incrementally: a user's contribution moves only
// when their best or second-best point is removed. Each iteration is
// O(|S|) to pick the argmin plus O(|S|) per affected user to rescan,
// and the paper observes only ≈1% of users are affected per iteration.
func deltaShrink(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	n, N := in.NumPoints(), in.NumFuncs()
	var stats ShrinkStats
	set := newAliveSet(n)

	best := make([]int32, N)
	second := make([]int32, N)
	bestVal := make([]float64, N)
	secondVal := make([]float64, N)
	rc := make([]float64, n)
	usersByBest := make([][]int32, n)
	usersBySecond := make([][]int32, n)

	// twoMax finds the best (first index wins ties) and second-best alive
	// points for user u. Returns sentinel -1 indices when unavailable.
	twoMax := func(u int) (b1 int32, v1 float64, b2 int32, v2 float64) {
		b1, b2 = -1, -1
		v1, v2 = -1, -1
		for p := 0; p < n; p++ {
			if !set.alive[p] {
				continue
			}
			v := in.Utility(u, p)
			if v > v1 {
				b2, v2 = b1, v1
				b1, v1 = int32(p), v
			} else if v > v2 {
				b2, v2 = int32(p), v
			}
		}
		if v1 < 0 {
			v1 = 0
		}
		if v2 < 0 {
			v2 = 0
		}
		return
	}

	// secondMax finds the best alive point for user u excluding the
	// point `excl`.
	secondMax := func(u int, excl int32) (int32, float64) {
		var idx int32 = -1
		val := -1.0
		for p := 0; p < n; p++ {
			if !set.alive[p] || int32(p) == excl {
				continue
			}
			if v := in.Utility(u, p); v > val {
				idx, val = int32(p), v
			}
		}
		if val < 0 {
			val = 0
		}
		return idx, val
	}

	// Initialization: one full scan per user. Contributions are scaled by
	// the user's probability mass so weighted (Appendix A) instances are
	// optimized exactly.
	for u := 0; u < N; u++ {
		if in.satD[u] <= 0 {
			best[u], second[u] = -1, -1
			continue
		}
		b1, v1, b2, v2 := twoMax(u)
		best[u], bestVal[u] = b1, v1
		second[u], secondVal[u] = b2, v2
		rc[b1] += in.Weight(u) * (v1 - v2) / in.satD[u]
		usersByBest[b1] = append(usersByBest[b1], int32(u))
		if b2 >= 0 {
			usersBySecond[b2] = append(usersBySecond[b2], int32(u))
		}
	}

	for set.count > k {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += set.count
		// The argmin of rc over the alive points is the point whose
		// removal increases arr the least; every candidate's evaluation is
		// already available, so all of them count as evaluated.
		stats.Evaluations += set.count
		chosen := -1
		for p := 0; p < n; p++ {
			if set.alive[p] && (chosen == -1 || rc[p] < rc[chosen]) {
				chosen = p
			}
		}
		set.remove(chosen)

		// Users whose best point was removed: promote their second-best,
		// rescan for a fresh pair, and move their rc contribution.
		for _, u := range usersByBest[chosen] {
			stats.UserRescans++
			b1, v1, b2, v2 := twoMax(int(u))
			best[u], bestVal[u] = b1, v1
			second[u], secondVal[u] = b2, v2
			if b1 >= 0 {
				rc[b1] += in.Weight(int(u)) * (v1 - v2) / in.satD[u]
				usersByBest[b1] = append(usersByBest[b1], u)
				if b2 >= 0 {
					usersBySecond[b2] = append(usersBySecond[b2], u)
				}
			}
		}
		// Users whose second-best point was removed (best unchanged):
		// their removal cost for the best point grows.
		for _, u := range usersBySecond[chosen] {
			if best[u] == int32(chosen) || second[u] != int32(chosen) {
				continue // handled above, or a stale queue entry
			}
			stats.UserRescans++
			oldV2 := secondVal[u]
			b2, v2 := secondMax(int(u), best[u])
			second[u], secondVal[u] = b2, v2
			rc[best[u]] += in.Weight(int(u)) * (oldV2 - v2) / in.satD[u]
			if b2 >= 0 {
				usersBySecond[b2] = append(usersBySecond[b2], u)
			}
		}
		usersByBest[chosen] = nil
		usersBySecond[chosen] = nil
	}
	return set.members(), stats, nil
}
