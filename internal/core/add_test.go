package core

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
)

func TestGreedyAddValidation(t *testing.T) {
	in := randomInstance(t, 6, 2, 20, 1)
	ctx := context.Background()
	if _, _, err := GreedyAdd(ctx, nil, 2); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, _, err := GreedyAdd(ctx, in, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, _, err := GreedyAdd(ctx, in, 7); err == nil {
		t.Fatal("k>n must error")
	}
	if _, err := GreedyAddPlain(ctx, nil, 2); err == nil {
		t.Fatal("plain nil instance must error")
	}
	if _, err := GreedyAddPlain(ctx, in, 0); err == nil {
		t.Fatal("plain k=0 must error")
	}
}

// The lazy-accelerated GreedyAdd must match the unaccelerated reference on
// random instances.
func TestGreedyAddLazyMatchesPlain(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(0); seed < 20; seed++ {
		g := rng.New(seed + 700)
		n := g.IntN(15) + 5
		N := g.IntN(50) + 10
		in := sampledTableInstance(g, n, N)
		k := g.IntN(n) + 1
		lazy, stats, err := GreedyAdd(ctx, in, k)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := GreedyAddPlain(ctx, in, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(lazy) != len(plain) {
			t.Fatalf("seed %d: %v vs %v", seed, lazy, plain)
		}
		for i := range lazy {
			if lazy[i] != plain[i] {
				t.Fatalf("seed %d: lazy %v != plain %v", seed, lazy, plain)
			}
		}
		arr, _ := in.ARR(lazy)
		if math.Abs(arr-stats.FinalARR) > 1e-15 {
			t.Fatalf("seed %d: FinalARR %v != %v", seed, stats.FinalARR, arr)
		}
	}
}

// GreedyAdd must actually skip evaluations (the lazy acceleration works).
func TestGreedyAddSkipsEvaluations(t *testing.T) {
	in := randomInstance(t, 80, 4, 400, 3)
	_, stats, err := GreedyAdd(context.Background(), in, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EvalSkipped <= 0 {
		t.Fatalf("no evaluations skipped: %+v", stats)
	}
	if stats.Evaluations >= stats.CandidateTotal+in.NumPoints() {
		t.Fatalf("lazy add evaluated everything: %+v", stats)
	}
}

// Add and shrink are different heuristics but should land in the same
// quality neighborhood; both must be optimal at k = n.
func TestGreedyAddVsShrinkQuality(t *testing.T) {
	ctx := context.Background()
	in := randomInstance(t, 40, 3, 600, 5)
	for _, k := range []int{1, 5, 15, 40} {
		addSet, addStats, err := GreedyAdd(ctx, in, k)
		if err != nil {
			t.Fatal(err)
		}
		_, shrinkStats, err := GreedyShrink(ctx, in, k, StrategyDelta)
		if err != nil {
			t.Fatal(err)
		}
		if len(addSet) != k {
			t.Fatalf("k=%d: add set %v", k, addSet)
		}
		if math.Abs(addStats.FinalARR-shrinkStats.FinalARR) > 0.05 {
			t.Fatalf("k=%d: add %v and shrink %v far apart", k, addStats.FinalARR, shrinkStats.FinalARR)
		}
	}
	// k = n: both must select everything and reach arr 0.
	addSet, addStats, _ := GreedyAdd(ctx, in, 40)
	if len(addSet) != 40 || addStats.FinalARR != 0 {
		t.Fatalf("k=n: %d points, arr %v", len(addSet), addStats.FinalARR)
	}
}

func TestGreedyAddCancel(t *testing.T) {
	in := randomInstance(t, 30, 3, 100, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := GreedyAdd(ctx, in, 3); err == nil {
		t.Fatal("canceled context must error")
	}
	if _, err := GreedyAddPlain(ctx, in, 3); err == nil {
		t.Fatal("plain canceled context must error")
	}
}

// GreedyAdd on a weighted instance equals GreedyAdd on the replicated one.
func TestGreedyAddWeighted(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(0); seed < 8; seed++ {
		weighted, plain := weightedAndReplicated(t, seed+800)
		k := weighted.NumPoints()/2 + 1
		sw, _, err := GreedyAdd(ctx, weighted, k)
		if err != nil {
			t.Fatal(err)
		}
		sp, _, err := GreedyAdd(ctx, plain, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sw {
			if sw[i] != sp[i] {
				t.Fatalf("seed %d: weighted %v != replicated %v", seed, sw, sp)
			}
		}
	}
}
