package core

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

// weightedAndReplicated builds the same user population twice: once as a
// weighted instance with integer weights, once with each user physically
// replicated weight-many times. The two must be indistinguishable.
func weightedAndReplicated(t *testing.T, seed uint64) (*Instance, *Instance) {
	t.Helper()
	g := rng.New(seed)
	n := g.IntN(8) + 4
	numUsers := g.IntN(6) + 2
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i)}
	}
	var funcs []utility.Func
	var weights []float64
	var replicated []utility.Func
	for u := 0; u < numUsers; u++ {
		tu := make([]float64, n)
		for p := range tu {
			tu[p] = g.Float64()
		}
		f := utility.Table{U: tu}
		w := g.IntN(4) + 1
		funcs = append(funcs, f)
		weights = append(weights, float64(w))
		for r := 0; r < w; r++ {
			replicated = append(replicated, f)
		}
	}
	weighted, err := NewInstance(pts, funcs, Options{Weights: weights})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewInstance(pts, replicated, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return weighted, plain
}

func TestWeightValidation(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	funcs := []utility.Func{utility.Table{U: []float64{1, 2}}}
	if _, err := NewInstance(pts, funcs, Options{Weights: []float64{1, 2}}); err == nil {
		t.Fatal("weight length mismatch must error")
	}
	if _, err := NewInstance(pts, funcs, Options{Weights: []float64{-1}}); err == nil {
		t.Fatal("negative weight must error")
	}
	if _, err := NewInstance(pts, funcs, Options{Weights: []float64{0}}); err == nil {
		t.Fatal("zero total weight must error")
	}
	if _, err := NewInstance(pts, funcs, Options{Weights: []float64{math.NaN()}}); err == nil {
		t.Fatal("NaN weight must error")
	}
	in, err := NewInstance(pts, funcs, Options{Weights: []float64{2.5}})
	if err != nil {
		t.Fatal(err)
	}
	if !in.Weighted() || in.Weight(0) != 2.5 || in.TotalWeight() != 2.5 {
		t.Fatal("weight accessors wrong")
	}
	plain, _ := NewInstance(pts, funcs, Options{})
	if plain.Weighted() || plain.Weight(0) != 1 || plain.TotalWeight() != 1 {
		t.Fatal("uniform accessors wrong")
	}
}

// The paper's Appendix A example: Table I users with uniform probability
// 0.25 each — exact weighted arr must match the hand computation.
func TestWeightedTableIExact(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}, {3}}
	funcs := []utility.Func{
		utility.Table{U: []float64{0.9, 0.7, 0.2, 0.4}},
		utility.Table{U: []float64{0.6, 1, 0.5, 0.2}},
		utility.Table{U: []float64{0.2, 0.6, 0.3, 1}},
		utility.Table{U: []float64{0.1, 0.2, 1, 0.9}},
	}
	in, err := NewInstance(pts, funcs, Options{Weights: []float64{0.25, 0.25, 0.25, 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := in.ARR([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if want := 19.0 / 72.0; math.Abs(arr-want) > 1e-12 {
		t.Fatalf("weighted ARR = %v, want %v", arr, want)
	}
	// Non-uniform weights shift the answer toward the heavy user.
	heavy, _ := NewInstance(pts, funcs, Options{Weights: []float64{10, 0.1, 0.1, 0.1}})
	arrH, _ := heavy.ARR([]int{2, 3})
	// Alex (weight 10) has rr 5/9; the average must approach that.
	if arrH < 0.5 {
		t.Fatalf("heavy-user ARR = %v, expected > 0.5", arrH)
	}
}

// Property: weighted instance == physically replicated instance for ARR,
// Evaluate, GreedyShrink (all strategies) and BruteForce.
func TestWeightedEqualsReplicated(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(0); seed < 15; seed++ {
		weighted, plain := weightedAndReplicated(t, seed+600)
		n := weighted.NumPoints()

		// ARR on a fixed set.
		set := []int{0, n - 1}
		aw, err1 := weighted.ARR(set)
		ap, err2 := plain.ARR(set)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if math.Abs(aw-ap) > 1e-12 {
			t.Fatalf("seed %d: weighted ARR %v != replicated %v", seed, aw, ap)
		}

		// Metrics.
		mw, err := weighted.Evaluate(set, nil)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := plain.Evaluate(set, nil)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mw.ARR-mp.ARR) > 1e-12 || math.Abs(mw.StdDev-mp.StdDev) > 1e-12 {
			t.Fatalf("seed %d: weighted metrics %+v != replicated %+v", seed, mw, mp)
		}
		for i := range mw.Percentiles {
			if math.Abs(mw.Percentiles[i]-mp.Percentiles[i]) > 1e-12 {
				t.Fatalf("seed %d: percentile %d differs: %v vs %v", seed, i, mw.Percentiles[i], mp.Percentiles[i])
			}
		}

		// GreedyShrink, all strategies.
		k := n/2 + 1
		for _, s := range allStrategies() {
			sw, _, err := GreedyShrink(ctx, weighted, k, s)
			if err != nil {
				t.Fatal(err)
			}
			sp, _, err := GreedyShrink(ctx, plain, k, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sw {
				if sw[i] != sp[i] {
					t.Fatalf("seed %d %v: weighted set %v != replicated %v", seed, s, sw, sp)
				}
			}
		}

		// BruteForce.
		bw, arrW, err := BruteForce(ctx, weighted, 2)
		if err != nil {
			t.Fatal(err)
		}
		bp, arrP, err := BruteForce(ctx, plain, 2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(arrW-arrP) > 1e-12 {
			t.Fatalf("seed %d: brute arr %v != %v (%v vs %v)", seed, arrW, arrP, bw, bp)
		}

		// Steepness.
		stW, err := Steepness(weighted)
		if err != nil {
			t.Fatal(err)
		}
		stP, err := Steepness(plain)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(stW-stP) > 1e-12 {
			t.Fatalf("seed %d: steepness %v != %v", seed, stW, stP)
		}
	}
}

// Zero-weight users must not influence the selection.
func TestZeroWeightUsersIgnored(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	funcs := []utility.Func{
		utility.Table{U: []float64{1, 0, 0}},   // wants point 0, weight 0
		utility.Table{U: []float64{0, 0.2, 1}}, // wants point 2
	}
	in, err := NewInstance(pts, funcs, Options{Weights: []float64{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	set, _, err := GreedyShrink(context.Background(), in, 1, StrategyDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 || set[0] != 2 {
		t.Fatalf("selection %v should serve only the weighted user", set)
	}
	arr, _ := in.ARR([]int{2})
	if arr != 0 {
		t.Fatalf("arr = %v, want 0 (zero-weight user ignored)", arr)
	}
}
