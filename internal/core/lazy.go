package core

import (
	"container/heap"
	"context"
)

// lazyShrink is the paper-faithful GREEDY-SHRINK of Section III-C and
// Appendix C.
//
// Improvement 1 (best-point calculation): each user's best point within the
// current set S is cached; evaluating arr(S−{p}) only touches the users
// whose cached best point is p (for everyone else the satisfaction is
// unchanged), and each touched user rescans S−{p} once.
//
// Improvement 2 (computation based on the previous iteration): evaluation
// values computed in earlier iterations are kept in a min-priority queue.
// By supermodularity they are lower bounds on the current values (Lemma 2),
// so the true argmin is found by popping the queue and refreshing entries
// until a fresh entry surfaces (Lemma 3); candidates whose stale lower
// bound never reaches the top are skipped entirely.
func lazyShrink(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	n, N := in.NumPoints(), in.NumFuncs()
	var stats ShrinkStats
	set := newAliveSet(n)

	best := make([]int32, N)
	bestVal := make([]float64, N)
	usersByBest := make([][]int32, n)
	var arrSum float64 // Σ_u rr(S,u), unnormalized by N

	for u := 0; u < N; u++ {
		if in.satD[u] <= 0 {
			best[u] = -1
			continue
		}
		bi, bv := int32(-1), -1.0
		for p := 0; p < n; p++ {
			if v := in.Utility(u, p); v > bv {
				bi, bv = int32(p), v
			}
		}
		best[u], bestVal[u] = bi, bv
		usersByBest[bi] = append(usersByBest[bi], int32(u))
		arrSum += in.Weight(u) * (in.satD[u] - bv) / in.satD[u]
	}

	// evaluate returns the unnormalized arr of S−{p}: only users whose
	// best point is p change satisfaction (Improvement 1).
	evaluate := func(p int) float64 {
		v := arrSum
		for _, u := range usersByBest[p] {
			stats.UserRescans++
			nv := -1.0
			for q := 0; q < n; q++ {
				if !set.alive[q] || q == p {
					continue
				}
				if w := in.Utility(int(u), q); w > nv {
					nv = w
				}
			}
			if nv < 0 {
				nv = 0
			}
			v += in.Weight(int(u)) * (bestVal[u] - nv) / in.satD[u]
		}
		return v
	}

	// seq invalidates superseded queue entries; epoch marks the iteration
	// an entry's value was computed in (fresh == current iteration).
	seq := make([]int, n)
	pq := make(evalQueue, 0, n)
	for p := 0; p < n; p++ {
		stats.Evaluations++
		pq = append(pq, evalEntry{point: p, val: evaluate(p), epoch: 0, seq: 0})
	}
	heap.Init(&pq)

	for iter := 1; set.count > k; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += set.count
		evalsBefore := stats.Evaluations
		chosen := -1
		var chosenVal float64
		for {
			e := heap.Pop(&pq).(evalEntry)
			if !set.alive[e.point] || e.seq != seq[e.point] {
				continue // superseded or removed
			}
			if e.epoch == iter {
				chosen, chosenVal = e.point, e.val
				break
			}
			// Stale lower bound on top: refresh it (Lemma 3 case 1 rules
			// out everything beneath it only if the refreshed value stays
			// on top, which the queue re-check handles).
			stats.Evaluations++
			seq[e.point]++
			heap.Push(&pq, evalEntry{point: e.point, val: evaluate(e.point), epoch: iter, seq: seq[e.point]})
		}
		stats.EvalSkipped += set.count - (stats.Evaluations - evalsBefore)

		set.remove(chosen)
		arrSum = chosenVal
		for _, u := range usersByBest[chosen] {
			stats.UserRescans++
			bi, bv := int32(-1), -1.0
			for q := 0; q < n; q++ {
				if !set.alive[q] {
					continue
				}
				if w := in.Utility(int(u), q); w > bv {
					bi, bv = int32(q), w
				}
			}
			if bv < 0 {
				bv = 0
			}
			best[u], bestVal[u] = bi, bv
			if bi >= 0 {
				usersByBest[bi] = append(usersByBest[bi], u)
			}
		}
		usersByBest[chosen] = nil
	}
	return set.members(), stats, nil
}

type evalEntry struct {
	point int
	val   float64
	epoch int // iteration the value was computed in
	seq   int // entry generation; stale generations are discarded
}

// evalQueue is a min-heap on (val, point); the point tiebreak keeps the
// lazy strategy's selections identical to the other strategies.
type evalQueue []evalEntry

func (q evalQueue) Len() int { return len(q) }
func (q evalQueue) Less(i, j int) bool {
	if q[i].val != q[j].val {
		return q[i].val < q[j].val
	}
	return q[i].point < q[j].point
}
func (q evalQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *evalQueue) Push(x interface{}) { *q = append(*q, x.(evalEntry)) }
func (q *evalQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
