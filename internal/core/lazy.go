package core

import (
	"container/heap"
	"context"

	"github.com/regretlab/fam/internal/obs"
)

// lazyShrink is the paper-faithful GREEDY-SHRINK of Section III-C and
// Appendix C.
//
// Improvement 1 (best-point calculation): each user's best point within the
// current set S is cached; evaluating arr(S−{p}) only touches the users
// whose cached best point is p (for everyone else the satisfaction is
// unchanged), and each touched user rescans S−{p} once.
//
// Improvement 2 (computation based on the previous iteration): evaluation
// values computed in earlier iterations are kept in a min-priority queue.
// By supermodularity they are lower bounds on the current values (Lemma 2),
// so the true argmin is found by popping the queue and refreshing entries
// until a fresh entry surfaces (Lemma 3); candidates whose stale lower
// bound never reaches the top are skipped entirely.
//
// Parallelism: the initial n candidate evaluations and the per-iteration
// best-point rescans are independent reads, so they are sharded across
// the worker pool; their mutations (heap construction, best-point moves)
// are applied serially in index order, keeping the run bit-identical to
// serial. The pop-refresh loop is sequential by default — each refresh
// decides whether the next pop happens — which keeps the
// Evaluations/EvalSkipped counters exact.
//
// Batched refresh (LazyBatch > 1): instead of refreshing the single stale
// entry at the queue head, up to LazyBatch stale entries are popped and
// re-evaluated concurrently, betting that the head's refreshed value will
// not stay on top. The selected set is unchanged at any batch size: every
// queue key is a lower bound on its entry's current value (Lemma 2), so
// the loop still terminates exactly when the fresh minimum — the
// lowest-index argmin of the true evaluation values — surfaces. Only the
// work counters move: entries below the head might never have been
// refreshed serially, so Evaluations/EvalSkipped/UserRescans become
// batch-size dependent, tracked by the Speculative* counters.
func lazyShrink(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	n, N := in.NumPoints(), in.NumFuncs()
	var stats ShrinkStats
	pool := newEvalPool(in, &stats)
	set := newAliveSet(n)

	best := make([]int32, N)
	bestVal := make([]float64, N)
	usersByBest := make([][]int32, n)
	var arrSum float64 // Σ_u rr(S,u), unnormalized by N

	for u := 0; u < N; u++ {
		if in.satD[u] <= 0 {
			best[u] = -1
			continue
		}
		bi, bv := in.rowMax(u, set.list)
		best[u], bestVal[u] = bi, bv
		usersByBest[bi] = append(usersByBest[bi], int32(u))
		arrSum += in.Weight(u) * (in.satD[u] - bv) / in.satD[u]
	}

	// evaluate returns the unnormalized arr of S−{p} and the number of
	// user rescans it performed: only users whose best point is p change
	// satisfaction (Improvement 1). Pure reads — safe to run for several
	// candidates concurrently.
	evaluate := func(p int) (float64, int) {
		v := arrSum
		rescans := 0
		for _, u := range usersByBest[p] {
			rescans++
			_, nv := in.rowMaxExcl(int(u), set.list, int32(p))
			if nv < 0 {
				nv = 0
			}
			v += in.Weight(int(u)) * (bestVal[u] - nv) / in.satD[u]
		}
		return v, rescans
	}

	// Initial evaluation of every candidate, sharded across workers; the
	// heap is built serially from the index-ordered buffer.
	vals := make([]float64, n)
	rescanCount := make([]int, pool.workers)
	if err := pool.run(ctx, n, func(w, lo, hi int) {
		for p := lo; p < hi; p++ {
			if ctx.Err() != nil {
				return
			}
			v, r := evaluate(p)
			vals[p] = v
			rescanCount[w] += r
		}
	}); err != nil {
		return nil, stats, err
	}
	for _, r := range rescanCount {
		stats.UserRescans += r
	}

	// seq invalidates superseded queue entries; epoch marks the iteration
	// an entry's value was computed in (fresh == current iteration).
	seq := make([]int, n)
	pq := make(evalQueue, 0, n)
	for p := 0; p < n; p++ {
		stats.Evaluations++
		pq = append(pq, evalEntry{point: p, val: vals[p], epoch: 0, seq: 0})
	}
	heap.Init(&pq)

	type move struct {
		bi int32
		bv float64
	}
	moves := make([]move, 0, N)
	// The adaptive controller (negative LazyBatch option) sizes the batch
	// from observed behavior: an iteration that needed more than one
	// refresh sweep had queue-head churn a bigger batch would have merged
	// into one parallel round, so the batch doubles; an iteration that
	// resolved in a single sweep while wasting more than half its batch
	// on unused speculation shrinks it. A fixed LazyBatch keeps today's
	// behavior. Any batch trajectory selects the identical set (every
	// queue key is a Lemma 2 lower bound regardless of when it was
	// refreshed), so the controller moves only the work counters.
	adaptive := in.LazyBatchAdaptive()
	lazyB := in.LazyBatch()
	maxB := lazyB
	if adaptive {
		lazyB, maxB = adaptiveStartBatch, adaptiveMaxBatch
	}
	stats.LazyBatch = lazyB
	batch := make([]evalEntry, 0, maxB)
	type refresh struct {
		val     float64
		rescans int
	}
	refreshed := make([]refresh, maxB)
	spec := make([]int, 0, maxB) // points refreshed speculatively this iteration
	for iter := 1; set.count > k; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += set.count
		evalsBefore := stats.Evaluations
		chosen := -1
		var chosenVal float64
		spec = spec[:0]
		sweeps := 0 // refresh sweeps this iteration (batches actually refreshed)
		for chosen == -1 {
			// Collect up to lazyB stale entries off the top; a fresh entry
			// ends the sweep early (everything beneath it is ruled out by
			// its lower bound once the collected entries are refreshed).
			batch = batch[:0]
			fresh := evalEntry{point: -1}
			for len(batch) < lazyB && pq.Len() > 0 {
				e := heap.Pop(&pq).(evalEntry)
				if !set.alive[e.point] || e.seq != seq[e.point] {
					continue // superseded or removed
				}
				if e.epoch == iter {
					fresh = e
					break
				}
				batch = append(batch, e)
			}
			if len(batch) == 0 {
				// Fresh value on top: it is the lowest-index argmin
				// (Lemma 3 case 1 — every remaining key is a lower bound
				// at or above it).
				chosen, chosenVal = fresh.point, fresh.val
				break
			}
			sweeps++
			stats.Evaluations += len(batch)
			stats.SpeculativeEvals += len(batch) - 1
			for i := range batch {
				seq[batch[i].point]++
				if i > 0 {
					spec = append(spec, batch[i].point)
				}
			}
			if len(batch) == 1 {
				// The head entry alone: refresh inline, exactly the serial
				// pop-refresh step.
				v, r := evaluate(batch[0].point)
				stats.UserRescans += r
				heap.Push(&pq, evalEntry{point: batch[0].point, val: v, epoch: iter, seq: seq[batch[0].point]})
			} else {
				out := refreshed[:len(batch)]
				ents := batch
				if err := pool.runWide(ctx, len(ents), func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						if ctx.Err() != nil {
							return
						}
						v, r := evaluate(ents[i].point)
						out[i] = refresh{val: v, rescans: r}
					}
				}); err != nil {
					return nil, stats, err
				}
				for i := range ents {
					stats.UserRescans += out[i].rescans
					heap.Push(&pq, evalEntry{point: ents[i].point, val: out[i].val, epoch: iter, seq: seq[ents[i].point]})
				}
			}
			if fresh.point >= 0 {
				heap.Push(&pq, fresh)
			}
		}
		stats.EvalSkipped += set.count - (stats.Evaluations - evalsBefore)
		// Round span: the refresh batches are deterministic (bit-identical
		// heap state at any worker count), so the computed-eval count is a
		// pure function of the instance and the trace shape stays fixed.
		_, round := obs.Start(ctx, "round")
		round.SetAttrInt("iter", stats.Iterations)
		round.SetAttrInt("evals", stats.Evaluations-evalsBefore)
		iterHits, iterWaste := 0, 0
		for _, p := range spec {
			if p == chosen {
				iterHits++
			} else {
				iterWaste++
			}
		}
		stats.SpeculativeHits += iterHits
		stats.SpeculativeWaste += iterWaste
		if adaptive {
			switch {
			case sweeps > 1 && lazyB < adaptiveMaxBatch:
				// Head churn: the refreshed head kept getting displaced,
				// costing serial refresh rounds a bigger batch merges.
				lazyB *= 2
				stats.AdaptiveGrows++
			case sweeps == 1 && iterWaste > lazyB/2 && lazyB > adaptiveMinBatch:
				// Waste spike: resolved on the first sweep but more than
				// half the batch was speculation the iteration never used.
				lazyB /= 2
				stats.AdaptiveShrinks++
			}
			stats.LazyBatch = lazyB
		}

		set.remove(chosen)
		arrSum = chosenVal
		// Refresh the best point of every user who lost theirs: parallel
		// scans into a position-indexed buffer, serial application.
		affected := usersByBest[chosen]
		stats.UserRescans += len(affected)
		moves = moves[:len(affected)]
		if err := pool.run(ctx, len(affected), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				u := affected[i]
				bi, bv := in.rowMax(int(u), set.list)
				if bv < 0 {
					bv = 0
				}
				moves[i] = move{bi: bi, bv: bv}
			}
		}); err != nil {
			return nil, stats, err
		}
		for i, u := range affected {
			best[u], bestVal[u] = moves[i].bi, moves[i].bv
			if moves[i].bi >= 0 {
				usersByBest[moves[i].bi] = append(usersByBest[moves[i].bi], u)
			}
		}
		usersByBest[chosen] = nil
		round.End()
	}
	return set.members(), stats, nil
}

// Adaptive LazyBatch controller constants: the batch starts mid-range
// (so both decisions are reachable), doubles on multi-sweep iterations,
// and halves on single-sweep iterations that wasted more than half
// their batch; iterations between the two thresholds hold the size.
const (
	adaptiveStartBatch = 8
	adaptiveMinBatch   = 2
	adaptiveMaxBatch   = 64
)

type evalEntry struct {
	point int
	val   float64
	epoch int // iteration the value was computed in
	seq   int // entry generation; stale generations are discarded
}

// evalQueue is a min-heap on (val, point); the point tiebreak keeps the
// lazy strategy's selections identical to the other strategies.
type evalQueue []evalEntry

func (q evalQueue) Len() int { return len(q) }
func (q evalQueue) Less(i, j int) bool {
	if q[i].val != q[j].val {
		return q[i].val < q[j].val
	}
	return q[i].point < q[j].point
}
func (q evalQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *evalQueue) Push(x interface{}) { *q = append(*q, x.(evalEntry)) }
func (q *evalQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
