package core

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
)

// GreedyAdd is the insertion-based greedy: start from the empty set and
// repeatedly add the point that decreases the average regret ratio the
// most. This is the algorithm family of the authors' earlier SIGMOD 2016
// poster and the natural ablation partner of GREEDY-SHRINK: supermodularity
// of arr (Theorem 2) makes the marginal decrease of an addition diminishing
// in the current set, so the classic lazy-greedy acceleration applies —
// stale gains are upper bounds and most candidates are never re-evaluated.
//
// For k ≪ n, GreedyAdd runs k iterations instead of GREEDY-SHRINK's n−k,
// at the price of losing Theorem 3's approximation guarantee (which is
// stated for greedy removal). The ablation6 experiment compares both.
//
// The initial gain sweep over all n candidates and the per-iteration
// best-value refresh over all N users are sharded across the instance's
// worker pool; both are per-item independent, so the run is bit-identical
// to serial at any worker count.
func GreedyAdd(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	if in == nil {
		return nil, ShrinkStats{}, errors.New("core: nil instance")
	}
	n, N := in.NumPoints(), in.NumFuncs()
	if k <= 0 || k > n {
		return nil, ShrinkStats{}, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	var stats ShrinkStats
	pool := newEvalPool(in, &stats)

	// bestVal[u] = user u's best utility within the selected set.
	bestVal := make([]float64, N)
	inSet := make([]bool, n)

	// The gain loop reads one point's utility across all users — a
	// stride-n column walk through the user-major matrix. The transient
	// point-major transpose turns every gain evaluation into a contiguous
	// pass; values are identical to element-wise access (float32 storage
	// rounds identically on both paths), so selections are unchanged. Nil
	// when the matrix is not materialized — then utilities are recomputed
	// on demand either way.
	tp := in.Transposed()

	// gain(p) = Σ_u w_u · max(0, f_u(p) − bestVal[u]) / satD[u]: the
	// (unnormalized) drop in arr from adding p.
	gain := func(p int) float64 {
		var g float64
		if tp != nil {
			col := tp.Col(p)
			for u := 0; u < N; u++ {
				if in.satD[u] <= 0 {
					continue
				}
				if v := col[u]; v > bestVal[u] {
					g += in.Weight(u) * (v - bestVal[u]) / in.satD[u]
				}
			}
			return g
		}
		for u := 0; u < N; u++ {
			if in.satD[u] <= 0 {
				continue
			}
			if v := in.Utility(u, p); v > bestVal[u] {
				g += in.Weight(u) * (v - bestVal[u]) / in.satD[u]
			}
		}
		return g
	}

	// Initial gains, computed in parallel and heapified in index order.
	gains := make([]float64, n)
	if err := pool.run(ctx, n, func(w, lo, hi int) {
		for p := lo; p < hi; p++ {
			if ctx.Err() != nil {
				return
			}
			gains[p] = gain(p)
		}
	}); err != nil {
		return nil, stats, err
	}
	seq := make([]int, n)
	pq := make(gainQueue, 0, n)
	for p := 0; p < n; p++ {
		stats.Evaluations++
		pq = append(pq, gainEntry{point: p, gain: gains[p], epoch: 0, seq: 0})
	}
	heap.Init(&pq)

	improved := make([]int, pool.workers)
	var selected []int
	for iter := 1; len(selected) < k; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += n - len(selected)
		evalsBefore := stats.Evaluations
		chosen := -1
		for {
			e := heap.Pop(&pq).(gainEntry)
			if inSet[e.point] || e.seq != seq[e.point] {
				continue
			}
			if e.epoch == iter {
				chosen = e.point
				break
			}
			// Stale upper bound on top: refresh (diminishing returns make
			// old gains upper bounds, mirroring Lemma 2 on the add side).
			stats.Evaluations++
			seq[e.point]++
			heap.Push(&pq, gainEntry{point: e.point, gain: gain(e.point), epoch: iter, seq: seq[e.point]})
		}
		stats.EvalSkipped += (n - len(selected)) - (stats.Evaluations - evalsBefore)

		inSet[chosen] = true
		selected = append(selected, chosen)
		// Refresh every user's in-set best value; each user's slot is
		// written only by its own shard, so this is race-free and order-
		// independent (plain assignments, no accumulation).
		for w := range improved {
			improved[w] = 0
		}
		var chosenCol []float64
		if tp != nil {
			chosenCol = tp.Col(chosen)
		}
		if err := pool.run(ctx, N, func(w, lo, hi int) {
			for u := lo; u < hi; u++ {
				if ctx.Err() != nil {
					return
				}
				if in.satD[u] <= 0 {
					continue
				}
				v := 0.0
				if chosenCol != nil {
					v = chosenCol[u]
				} else {
					v = in.Utility(u, chosen)
				}
				if v > bestVal[u] {
					bestVal[u] = v
					improved[w]++
				}
			}
		}); err != nil {
			return nil, stats, err
		}
		for _, c := range improved {
			stats.UserRescans += c
		}
	}
	sort.Ints(selected)
	arr, err := in.ARR(selected)
	if err != nil {
		return nil, stats, err
	}
	stats.FinalARR = arr
	return selected, stats, nil
}

type gainEntry struct {
	point int
	gain  float64
	epoch int
	seq   int
}

// gainQueue is a max-heap on (gain, -point): larger gains first, ties to
// the lower point index for determinism.
type gainQueue []gainEntry

func (q gainQueue) Len() int { return len(q) }
func (q gainQueue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].point < q[j].point
}
func (q gainQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *gainQueue) Push(x interface{}) { *q = append(*q, x.(gainEntry)) }
func (q *gainQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// GreedyAddPlain is the unaccelerated reference: every iteration evaluates
// every remaining candidate, sharded across the worker pool with the
// serial lowest-index argmax reduction. Used to validate the lazy version.
func GreedyAddPlain(ctx context.Context, in *Instance, k int) ([]int, error) {
	if in == nil {
		return nil, errors.New("core: nil instance")
	}
	n, N := in.NumPoints(), in.NumFuncs()
	if k <= 0 || k > n {
		return nil, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	pool := newEvalPool(in, nil)
	bestVal := make([]float64, N)
	inSet := make([]bool, n)
	gains := make([]float64, n)
	var selected []int
	for len(selected) < k {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := pool.run(ctx, n, func(w, lo, hi int) {
			for p := lo; p < hi; p++ {
				if ctx.Err() != nil {
					return
				}
				if inSet[p] {
					continue
				}
				var g float64
				for u := 0; u < N; u++ {
					if in.satD[u] <= 0 {
						continue
					}
					if v := in.Utility(u, p); v > bestVal[u] {
						g += in.Weight(u) * (v - bestVal[u]) / in.satD[u]
					}
				}
				gains[p] = g
			}
		}); err != nil {
			return nil, err
		}
		chosen, chosenGain := -1, -1.0
		for p := 0; p < n; p++ {
			if inSet[p] {
				continue
			}
			if gains[p] > chosenGain {
				chosen, chosenGain = p, gains[p]
			}
		}
		inSet[chosen] = true
		selected = append(selected, chosen)
		for u := 0; u < N; u++ {
			if v := in.Utility(u, chosen); v > bestVal[u] {
				bestVal[u] = v
			}
		}
	}
	sort.Ints(selected)
	return selected, nil
}
