package core

import (
	"math"

	"github.com/regretlab/fam/internal/stats"
)

// Metrics bundles every statistic the evaluation section reports about a
// selection set.
type Metrics struct {
	ARR             float64   // average regret ratio (Definition 4, sampled or exact-weighted)
	VRR             float64   // variance of regret ratio (Definition 5)
	StdDev          float64   // sqrt(VRR), the quantity plotted in Figs 3/10
	Percentiles     []float64 // regret ratio at PercentileLevels
	PercentileLevel []float64 // the levels requested
	MaxRR           float64   // maximum regret ratio over users with positive mass
	DegenerateUsers int
}

// DefaultPercentiles are the user percentiles of Figures 3 and 11/12.
var DefaultPercentiles = []float64{70, 80, 90, 95, 99, 100}

// Evaluate computes Metrics for a selection set. Passing nil levels uses
// DefaultPercentiles. Weighted instances produce probability-weighted
// statistics (Appendix A).
func (in *Instance) Evaluate(set []int, levels []float64) (Metrics, error) {
	if levels == nil {
		levels = DefaultPercentiles
	}
	rrs, err := in.RegretRatios(set)
	if err != nil {
		return Metrics{}, err
	}

	var mean, vrr float64
	var pct []float64
	if in.Weighted() {
		ws := make([]float64, len(rrs))
		for u := range ws {
			ws[u] = in.Weight(u)
		}
		if mean, err = stats.WeightedMean(rrs, ws); err != nil {
			return Metrics{}, err
		}
		if vrr, err = stats.WeightedVariance(rrs, ws); err != nil {
			return Metrics{}, err
		}
		if pct, err = stats.WeightedPercentiles(rrs, ws, levels); err != nil {
			return Metrics{}, err
		}
	} else {
		if mean, err = stats.Mean(rrs); err != nil {
			return Metrics{}, err
		}
		if vrr, err = stats.Variance(rrs); err != nil {
			return Metrics{}, err
		}
		if pct, err = stats.Percentiles(rrs, levels); err != nil {
			return Metrics{}, err
		}
	}

	var maxRR float64
	for u, v := range rrs {
		if in.Weight(u) > 0 && v > maxRR {
			maxRR = v
		}
	}
	return Metrics{
		ARR:             mean,
		VRR:             vrr,
		StdDev:          math.Sqrt(vrr),
		Percentiles:     pct,
		PercentileLevel: append([]float64(nil), levels...),
		MaxRR:           maxRR,
		DegenerateUsers: in.degen,
	}, nil
}
