package core

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

func float32Instance(t testing.TB, seed uint64, n, d, N int, f32 bool, budget int64) *Instance {
	t.Helper()
	g := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		g.UniformVec(p)
		pts[i] = p
	}
	dist, err := utility.NewUniformSimplexLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := sampling.Sample(dist, N, g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(pts, funcs, Options{Float32: f32, CacheBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// Float32 mode is stats-tolerant, not bit-identical: per-element
// utilities round through float32, so ARR may drift by the rounding
// (~1e-7 relative) and tie-breaks can flip. The mode's contract is that
// every observable stays within that tolerance of the float64 run.
func TestFloat32Tolerance(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 80, 4, 300, 10
	for _, seed := range []uint64{2, 29} {
		f64in := float32Instance(t, seed, n, d, N, false, 0)
		f32in := float32Instance(t, seed, n, d, N, true, 0)
		if !f32in.Float32() || f64in.Float32() {
			t.Fatal("Float32 accessor does not reflect the option")
		}
		for _, strat := range []Strategy{StrategyDelta, StrategyLazy, StrategyNaive} {
			ref, refStats, err := GreedyShrink(ctx, f64in, k, strat)
			if err != nil {
				t.Fatal(err)
			}
			set, stats, err := GreedyShrink(ctx, f32in, k, strat)
			if err != nil {
				t.Fatal(err)
			}
			if len(set) != len(ref) {
				t.Fatalf("seed=%d %v: |set| = %d, want %d", seed, strat, len(set), len(ref))
			}
			if diff := math.Abs(stats.FinalARR - refStats.FinalARR); diff > 1e-5 {
				t.Fatalf("seed=%d %v: float32 ARR drifted %v from float64", seed, strat, diff)
			}
		}
	}
}

// Float32 rounding applies on the uncached recompute path too, so
// results never depend on whether the matrix fit the cache budget.
func TestFloat32CacheBudgetIndependent(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 60, 3, 200, 8
	cached := float32Instance(t, 17, n, d, N, true, 0)
	uncached := float32Instance(t, 17, n, d, N, true, -1)
	if !cached.Cached() || uncached.Cached() {
		t.Fatalf("cache flags: %v %v", cached.Cached(), uncached.Cached())
	}
	for u := 0; u < N; u += 37 {
		for p := 0; p < n; p += 13 {
			if cached.Utility(u, p) != uncached.Utility(u, p) {
				t.Fatalf("f32 utility (%d,%d) differs cached vs uncached", u, p)
			}
		}
	}
	for _, strat := range []Strategy{StrategyDelta, StrategyLazy, StrategyNaive} {
		ref, refStats, err := GreedyShrink(ctx, cached, k, strat)
		if err != nil {
			t.Fatal(err)
		}
		set, stats, err := GreedyShrink(ctx, uncached, k, strat)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, "f32-budget", set, ref)
		if stats.FinalARR != refStats.FinalARR {
			t.Fatalf("%v: FinalARR %v != %v across cache budgets", strat, stats.FinalARR, refStats.FinalARR)
		}
	}
	addRef, _, err := GreedyAdd(ctx, cached, k)
	if err != nil {
		t.Fatal(err)
	}
	addSet, _, err := GreedyAdd(ctx, uncached, k)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "f32-budget-add", addSet, addRef)
}
