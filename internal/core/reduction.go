package core

import (
	"context"
	"errors"
	"fmt"

	"github.com/regretlab/fam/internal/utility"
)

// SetCoverInstance is an instance of the Set Cover decision problem:
// does a sub-collection of at most K subsets cover the whole universe?
type SetCoverInstance struct {
	UniverseSize int     // elements are 0 .. UniverseSize-1
	Subsets      [][]int // each subset lists the elements it contains
	K            int
}

// ReduceSetCover builds the FAM instance of the paper's Theorem 1 proof:
// one database point per subset, and one utility function per universe
// element whose utility vector is the indicator of the subsets containing
// that element (the paper's F_i spaces, taken at c = 1 with uniform mass).
// The reduction's defining property — the instance admits a size-K
// selection with average regret ratio 0 if and only if the Set Cover
// instance is a yes-instance — is what makes FAM NP-hard, and is verified
// by tests against exhaustive search.
func ReduceSetCover(sc SetCoverInstance) (*Instance, error) {
	if sc.UniverseSize <= 0 {
		return nil, errors.New("core: empty universe")
	}
	if len(sc.Subsets) == 0 {
		return nil, errors.New("core: no subsets")
	}
	if sc.K <= 0 {
		return nil, errors.New("core: K must be positive")
	}
	covered := make([]bool, sc.UniverseSize)
	for si, sub := range sc.Subsets {
		for _, e := range sub {
			if e < 0 || e >= sc.UniverseSize {
				return nil, fmt.Errorf("core: subset %d contains element %d outside universe [0,%d)", si, e, sc.UniverseSize)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			// The paper restricts to non-trivial instances where every
			// element is coverable; otherwise the answer is trivially no.
			return nil, fmt.Errorf("core: element %d is in no subset (trivial no-instance)", e)
		}
	}

	// Point i (one per subset) is the coordinate vector e_i; utility
	// function for element u is the Table whose entry for subset i is 1
	// iff u ∈ subset i.
	n := len(sc.Subsets)
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{float64(i)} // coordinates unused by Table
	}
	funcs := make([]utility.Func, sc.UniverseSize)
	for u := 0; u < sc.UniverseSize; u++ {
		tu := make([]float64, n)
		for si, sub := range sc.Subsets {
			for _, e := range sub {
				if e == u {
					tu[si] = 1
					break
				}
			}
		}
		funcs[u] = utility.Table{U: tu}
	}
	return NewInstance(points, funcs, Options{})
}

// HasZeroRegretSelection answers the decision question on a reduced
// instance by exact search: is there a size-k selection with arr exactly
// 0? By Theorem 1's correctness lemma this equals the Set Cover answer.
// It is exponential in the worst case (the point of the reduction) and is
// meant for small instances and tests.
func HasZeroRegretSelection(ctx context.Context, in *Instance, k int) (bool, []int, error) {
	set, arr, err := BruteForce(ctx, in, k)
	if err != nil {
		return false, nil, err
	}
	return arr == 0, set, nil
}
