package core

import (
	"errors"
	"math"
)

// Steepness computes the steepness s of the sampled arr(·) function
// (Definition 8 with U = D):
//
//	s = max over x with d(x,{x}) > 0 of (d(x,{x}) − d(x,D)) / d(x,{x})
//
// where d(x, X) = arr(X−{x}) − arr(X). Both ingredients have closed forms
// under the sampled estimator: arr(∅) counts every non-degenerate user at
// regret ratio 1, arr(D) = 0, and arr(D−{x}) only re-scores users whose
// database-best point is x.
func Steepness(in *Instance) (float64, error) {
	if in == nil {
		return 0, errors.New("core: nil instance")
	}
	n, N := in.NumPoints(), in.NumFuncs()
	if n < 2 {
		return 0, errors.New("core: steepness needs at least two points")
	}

	// arrEmpty = arr(∅), unnormalized: every non-degenerate user carries
	// their full mass at regret ratio 1.
	var arrEmpty float64
	for u := 0; u < N; u++ {
		if in.satD[u] > 0 {
			arrEmpty += in.Weight(u)
		}
	}

	// Per-user second-best utility in D, for arr(D−{x}).
	singles := make([]float64, n) // Σ_u w_u·rr({x}, u), unnormalized
	dropTop := make([]float64, n) // Σ_{u: bestD(u)=x} w_u·(best − second)/satD
	for u := 0; u < N; u++ {
		if in.satD[u] <= 0 {
			continue
		}
		w := in.Weight(u)
		b1, v1, v2 := -1, -1.0, -1.0
		for p := 0; p < n; p++ {
			v := in.Utility(u, p)
			if v > v1 {
				v2 = v1
				b1, v1 = p, v
			} else if v > v2 {
				v2 = v
			}
			singles[p] += w * (in.satD[u] - min0(v)) / in.satD[u]
		}
		if v2 < 0 {
			v2 = 0
		}
		dropTop[b1] += w * (v1 - v2) / in.satD[u]
	}

	s := 0.0
	for x := 0; x < n; x++ {
		dSingle := arrEmpty - singles[x] // d(x,{x}) = arr(∅) − arr({x})
		if dSingle <= 0 {
			continue
		}
		dFull := dropTop[x] // d(x,D) = arr(D−{x}) − arr(D) = arr(D−{x})
		if v := (dSingle - dFull) / dSingle; v > s {
			s = v
		}
	}
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s, nil
}

func min0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// ApproxRatioBound evaluates Theorem 3's guarantee: GREEDY-SHRINK's arr is
// within a factor (e^t − 1)/t of optimal, where t = s/(1−s). The bound is
// 1 at s = 0 (arr would be modular) and diverges as s → 1.
func ApproxRatioBound(s float64) float64 {
	if s < 0 {
		s = 0
	}
	if s >= 1 {
		return math.Inf(1)
	}
	t := s / (1 - s)
	if t < 1e-12 {
		return 1 // lim_{t→0} (e^t − 1)/t
	}
	return (math.Exp(t) - 1) / t
}
