package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/par"
)

// MaxBruteForceSubsets bounds the C(n, k) enumeration of BruteForce; larger
// instances return ErrTooLarge instead of running for hours.
const MaxBruteForceSubsets = 20_000_000

// ErrTooLarge is returned when an exact enumeration would exceed
// MaxBruteForceSubsets subsets.
var ErrTooLarge = errors.New("core: instance too large for brute force")

// BruteForce finds the exact sampled-arr optimum by enumerating all
// C(n, k) subsets in lexicographic order (so ties resolve to the
// lexicographically smallest set). Running per-user best values are
// maintained incrementally down the recursion, making the leaf cost O(N)
// rather than O(kN). The context is checked between sibling branches.
//
// The enumeration is sharded across the worker pool by first element.
// Subtree sizes decay polynomially in the first element (C(n−1−p, k−1)
// subsets start at p), so contiguous blocks would leave the first worker
// with most of the work; instead first elements are dealt round-robin
// (worker w takes p ≡ w mod workers), which balances the load. Each
// worker keeps the first strict minimum of its own lexicographically
// ordered subsequence, so its local optimum is the lexicographically
// smallest among its ties; the merge compares (arr, set) with an explicit
// lexicographic set tie-break, which reproduces the serial
// smallest-set-wins answer exactly at any worker count.
func BruteForce(ctx context.Context, in *Instance, k int) ([]int, float64, error) {
	if in == nil {
		return nil, 0, errors.New("core: nil instance")
	}
	n, N := in.NumPoints(), in.NumFuncs()
	if k <= 0 || k > n {
		return nil, 0, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	if c := binomial(n, k); c < 0 || c > MaxBruteForceSubsets {
		return nil, 0, fmt.Errorf("%w: C(%d,%d) subsets", ErrTooLarge, n, k)
	}

	firsts := n - k + 1 // valid smallest elements: 0 .. n-k
	workers := par.Workers(in.Parallelism(), firsts)
	results := make([]struct {
		set []int
		arr float64
		ok  bool
	}, workers)

	if err := in.pool.Shards(ctx, workers, firsts, func(w, _, _ int) {
		bestSet := make([]int, k)
		bestARR := math.Inf(1)
		found := false
		chosen := make([]int, 0, k)
		// bestVals[depth][u] is user u's best utility among chosen[:depth].
		bestVals := make([][]float64, k+1)
		for i := range bestVals {
			bestVals[i] = make([]float64, N)
		}

		var canceled bool
		var rec func(start, depth int)
		rec = func(start, depth int) {
			if canceled {
				return
			}
			if depth == k {
				var sum float64
				vals := bestVals[depth]
				for u := 0; u < N; u++ {
					if in.satD[u] <= 0 {
						continue
					}
					sum += in.Weight(u) * (in.satD[u] - vals[u]) / in.satD[u]
				}
				arr := sum / in.totalW
				if arr < bestARR {
					bestARR = arr
					found = true
					copy(bestSet, chosen)
				}
				return
			}
			if ctx.Err() != nil {
				canceled = true
				return
			}
			// Leave room for the remaining k-depth-1 picks.
			for p := start; p <= n-(k-depth); p++ {
				cur, next := bestVals[depth], bestVals[depth+1]
				for u := 0; u < N; u++ {
					v := in.Utility(u, p)
					if v > cur[u] {
						next[u] = v
					} else {
						next[u] = cur[u]
					}
				}
				chosen = append(chosen, p)
				rec(p+1, depth+1)
				chosen = chosen[:depth]
			}
		}
		// Round-robin over first elements; the contiguous block Shards
		// hands out is ignored in favor of the stride — together the
		// workers still cover every first element exactly once.
		for p := w; p < firsts && !canceled; p += workers {
			chosen = append(chosen[:0], p)
			cur, next := bestVals[0], bestVals[1]
			for u := 0; u < N; u++ {
				v := in.Utility(u, p)
				if v > cur[u] {
					next[u] = v
				} else {
					next[u] = cur[u]
				}
			}
			rec(p+1, 1)
		}
		if !canceled && found {
			results[w].set, results[w].arr, results[w].ok = bestSet, bestARR, true
		}
	}); err != nil {
		return nil, 0, err
	}

	bestSet, bestARR, found := []int(nil), math.Inf(1), false
	for _, r := range results {
		if !r.ok {
			continue
		}
		if r.arr < bestARR || (r.arr == bestARR && lexLess(r.set, bestSet)) {
			bestSet, bestARR, found = r.set, r.arr, true
		}
	}
	if !found {
		// All workers bailed without a leaf — only possible on
		// cancellation races not caught by the post-join check.
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		return nil, 0, errors.New("core: brute force found no subset")
	}
	return bestSet, bestARR, nil
}

// lexLess reports whether set a is lexicographically before b; both are
// ascending index lists of equal length.
func lexLess(a, b []int) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// binomial returns C(n, k), or -1 on overflow past MaxBruteForceSubsets.
func binomial(n, k int) int {
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > 10*MaxBruteForceSubsets || c < 0 {
			return -1
		}
	}
	return c
}
