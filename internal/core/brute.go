package core

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// MaxBruteForceSubsets bounds the C(n, k) enumeration of BruteForce; larger
// instances return ErrTooLarge instead of running for hours.
const MaxBruteForceSubsets = 20_000_000

// ErrTooLarge is returned when an exact enumeration would exceed
// MaxBruteForceSubsets subsets.
var ErrTooLarge = errors.New("core: instance too large for brute force")

// BruteForce finds the exact sampled-arr optimum by enumerating all
// C(n, k) subsets in lexicographic order (so ties resolve to the
// lexicographically smallest set). Running per-user best values are
// maintained incrementally down the recursion, making the leaf cost O(N)
// rather than O(kN). The context is checked between sibling branches.
func BruteForce(ctx context.Context, in *Instance, k int) ([]int, float64, error) {
	if in == nil {
		return nil, 0, errors.New("core: nil instance")
	}
	n, N := in.NumPoints(), in.NumFuncs()
	if k <= 0 || k > n {
		return nil, 0, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	if c := binomial(n, k); c < 0 || c > MaxBruteForceSubsets {
		return nil, 0, fmt.Errorf("%w: C(%d,%d) subsets", ErrTooLarge, n, k)
	}

	bestSet := make([]int, k)
	bestARR := math.Inf(1)
	chosen := make([]int, 0, k)
	// bestVals[depth][u] is user u's best utility among chosen[:depth].
	bestVals := make([][]float64, k+1)
	for i := range bestVals {
		bestVals[i] = make([]float64, N)
	}

	var ctxErr error
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if ctxErr != nil {
			return
		}
		if depth == k {
			var sum float64
			vals := bestVals[depth]
			for u := 0; u < N; u++ {
				if in.satD[u] <= 0 {
					continue
				}
				sum += in.Weight(u) * (in.satD[u] - vals[u]) / in.satD[u]
			}
			arr := sum / in.totalW
			if arr < bestARR {
				bestARR = arr
				copy(bestSet, chosen)
			}
			return
		}
		if err := ctx.Err(); err != nil {
			ctxErr = err
			return
		}
		// Leave room for the remaining k-depth-1 picks.
		for p := start; p <= n-(k-depth); p++ {
			cur, next := bestVals[depth], bestVals[depth+1]
			for u := 0; u < N; u++ {
				v := in.Utility(u, p)
				if v > cur[u] {
					next[u] = v
				} else {
					next[u] = cur[u]
				}
			}
			chosen = append(chosen, p)
			rec(p+1, depth+1)
			chosen = chosen[:depth]
		}
	}
	rec(0, 0)
	if ctxErr != nil {
		return nil, 0, ctxErr
	}
	return bestSet, bestARR, nil
}

// binomial returns C(n, k), or -1 on overflow past MaxBruteForceSubsets.
func binomial(n, k int) int {
	if k > n-k {
		k = n - k
	}
	c := 1
	for i := 0; i < k; i++ {
		c = c * (n - i) / (i + 1)
		if c > 10*MaxBruteForceSubsets || c < 0 {
			return -1
		}
	}
	return c
}
