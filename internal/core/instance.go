// Package core implements the paper's contribution: the sampled
// average-regret-ratio evaluator (Section III-C, Equation 1) and the
// GREEDY-SHRINK algorithm (Algorithm 1) in three interchangeable
// strategies — the naive recomputation baseline, the paper-faithful lazy
// variant with Improvements 1 and 2 (Appendix C), and a delta variant that
// additionally tracks each user's second-best point. A brute-force exact
// solver for small instances and the steepness-based approximation bound
// (Theorem 3) round out the package.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/regretlab/fam/internal/kernel"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/point"
	"github.com/regretlab/fam/internal/sched"
	"github.com/regretlab/fam/internal/utility"
)

// Instance binds a point set to N sampled utility functions and owns the
// preprocessing state of Section III-D2: each user's satisfaction over the
// full database (satD) and best point in the database. Building an
// Instance is the paper's "preprocessing time"; everything that runs on a
// built Instance counts as "query time".
type Instance struct {
	Points [][]float64
	Funcs  []utility.Func

	satD  []float64 // satD[u] = max_p f_u(p); 0 for degenerate users
	bestD []int32   // argmax, -1 for degenerate users
	degen int       // number of users with satD <= 0 (their rr is defined 0)

	wt     []float64 // per-user probability mass; nil = uniform
	totalW float64   // Σ wt, or N when uniform

	mat       *kernel.Matrix // optional N x n utility matrix (user-major)
	cacheUsed bool
	f32       bool // float32 storage mode: utilities round through float32

	par       int         // requested worker bound for preprocessing and query (0 = all CPUs)
	lazyBatch int         // lazy-strategy refresh batch size (<=1 = serial refresh)
	pool      *par.Pool   // externally owned worker pool; nil spawns per-call goroutines
	sched     sched.Attrs // default scheduling attrs for pool fan-outs
}

// Options configures instance construction.
type Options struct {
	// CacheBudget is the maximum number of float64 utility entries
	// (N × n) the instance may precompute. Below the budget, all utilities
	// are materialized once (O(Nn) space, O(1) lookups); above it they are
	// recomputed on demand (O(d) per lookup), the trade-off of Section
	// III-D3. Zero applies DefaultCacheBudget; negative disables caching.
	// The budget counts entries, not bytes: Float32 mode halves the bytes
	// per entry but not the entry count.
	CacheBudget int64
	// Float32 stores the materialized utility matrix as float32, halving
	// resident bytes at the cost of ~7 decimal digits. Every utility the
	// solvers observe is rounded through float32 — including the uncached
	// recompute path, so results are independent of the cache budget —
	// which makes runs bit-deterministic within the mode but numerically
	// different from float64 runs (ARR differences are bounded by the
	// rounding, ~1e-7 relative).
	Float32 bool
	// Weights assigns a probability mass to each utility function
	// (Appendix A: for a countably finite F the average regret ratio is
	// the exact weighted sum Σ rr(S,f)·η(f), no sampling needed). Nil
	// means uniform. Length must equal the number of functions; entries
	// must be non-negative and finite with a positive total.
	Weights []float64
	// Parallelism bounds the worker goroutines used for preprocessing
	// (utility materialization and best-point indexing) and for the
	// query-phase candidate evaluations of every solver that takes this
	// instance. Per-item work is independent and all reductions break
	// ties to the lowest index, so results are bit-identical at any
	// setting. Zero uses GOMAXPROCS; one forces serial execution.
	Parallelism int
	// LazyBatch sets the refresh batch size of the lazy GREEDY-SHRINK
	// strategy: when a stale lower bound surfaces on the priority queue,
	// up to LazyBatch stale entries are popped and re-evaluated
	// concurrently instead of one at a time. The selected set and the
	// final average regret ratio are identical at any batch size — the
	// queue still converges to the lowest-index argmin — but the
	// evaluation-count statistics (Evaluations, EvalSkipped, UserRescans
	// and the speculative counters) may differ, because entries beyond
	// the queue head are refreshed speculatively. Zero or one keeps the
	// paper's serial pop-refresh loop with exact counters. A negative
	// value enables the adaptive controller: the batch doubles while
	// speculative waste stays low and halves on waste spikes, reported
	// through the ShrinkStats.Adaptive* counters.
	LazyBatch int
	// Pool is an externally owned worker pool (par.NewPool) shared with
	// other concurrent queries of a long-lived serving process. When set,
	// preprocessing and every solver's query-phase fan-out runs on the
	// pool's helpers (plus the calling goroutine) instead of spawning
	// fresh goroutines per call; Parallelism still bounds the shard count
	// of each fan-out, so results remain bit-identical with or without a
	// pool. Nil keeps the one-shot spawn-per-call behavior.
	Pool *par.Pool
	// Sched tags the instance's pool fan-outs with scheduling attributes
	// (priority class, deadline) for the pool's grant policy whenever the
	// dispatch context does not already carry its own — request-level
	// attrs attached via sched.NewContext always win. Scheduling changes
	// when work is granted helpers, never what it computes: block
	// decomposition and every reduction are unaffected.
	Sched sched.Attrs
}

// DefaultCacheBudget caps the utility cache at 32M entries (256 MB).
const DefaultCacheBudget = int64(32 << 20)

// ErrNoFuncs is returned when no utility functions are supplied.
var ErrNoFuncs = errors.New("core: need at least one sampled utility function")

// NewInstance validates the inputs and runs preprocessing.
func NewInstance(points [][]float64, funcs []utility.Func, opts Options) (*Instance, error) {
	if _, err := point.Validate(points); err != nil {
		return nil, err
	}
	if len(funcs) == 0 {
		return nil, ErrNoFuncs
	}
	for i, f := range funcs {
		if f == nil {
			return nil, fmt.Errorf("core: utility function %d is nil", i)
		}
	}
	in := &Instance{Points: points, Funcs: funcs, totalW: float64(len(funcs))}
	if opts.Weights != nil {
		if len(opts.Weights) != len(funcs) {
			return nil, fmt.Errorf("core: %d weights for %d utility functions", len(opts.Weights), len(funcs))
		}
		var total float64
		for i, w := range opts.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("core: weight %d is %v", i, w)
			}
			total += w
		}
		if total <= 0 {
			return nil, errors.New("core: weights sum to zero")
		}
		in.wt = append([]float64(nil), opts.Weights...)
		in.totalW = total
	}

	budget := opts.CacheBudget
	if budget == 0 {
		budget = DefaultCacheBudget
	}
	n, N := len(points), len(funcs)
	if budget > 0 && int64(n)*int64(N) <= budget {
		in.mat = kernel.New(N, n, opts.Float32)
		in.cacheUsed = true
	}
	in.f32 = opts.Float32

	in.par = opts.Parallelism
	in.lazyBatch = opts.LazyBatch
	in.pool = opts.Pool
	in.sched = opts.Sched
	in.satD = make([]float64, N)
	in.bestD = make([]int32, N)
	// Preprocessing is embarrassingly parallel across users: each worker
	// owns a contiguous user range, fills its cache rows, and indexes best
	// points. Results are bit-identical at any parallelism level. Errors
	// are reported per worker and merged in worker order so the same
	// invalid utility is always the one surfaced.
	workers := par.Workers(opts.Parallelism, N)
	errs := make([]error, workers)
	if err := in.pool.Shards(sched.ContextWithDefault(context.Background(), opts.Sched), workers, N, func(w, lo, hi int) {
		errs[w] = in.preprocessUsers(lo, hi)
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for u := 0; u < N; u++ {
		if in.bestD[u] == -1 {
			in.degen++
		}
	}
	return in, nil
}

// preprocessUsers fills cache rows and best-point indexes for users in
// [lo, hi).
func (in *Instance) preprocessUsers(lo, hi int) error {
	n := len(in.Points)
	for u := lo; u < hi; u++ {
		if in.cacheUsed {
			f := in.Funcs[u]
			for p := 0; p < n; p++ {
				in.mat.Set(u, p, f.Value(p, in.Points[p]))
			}
		}
		best, bestIdx := 0.0, int32(-1)
		for p := 0; p < n; p++ {
			v := in.Utility(u, p)
			// Definition 1 requires utilities to be non-negative reals;
			// reject functions that break it rather than silently
			// corrupting every downstream comparison.
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("core: utility function %d returned %v for point %d (must be a non-negative finite value)", u, v, p)
			}
			if bestIdx == -1 || v > best {
				best, bestIdx = v, int32(p)
			}
		}
		if best <= 0 {
			in.satD[u] = 0
			in.bestD[u] = -1
			continue
		}
		in.satD[u] = best
		in.bestD[u] = bestIdx
	}
	return nil
}

// Utility returns f_u(p_j), from the materialized matrix when cached.
// In float32 mode the uncached recompute path applies the same rounding
// the matrix stores, so the observed value never depends on the cache
// budget.
func (in *Instance) Utility(u, j int) float64 {
	if in.cacheUsed {
		return in.mat.At(u, j)
	}
	v := in.Funcs[u].Value(j, in.Points[j])
	if in.f32 {
		return float64(float32(v))
	}
	return v
}

// rowTwoMax returns user u's best and second-best points among the
// listed candidates (visited in order, first index wins ties), with
// sentinels (-1, -1.0). Dispatches to the kernel's contiguous row scan
// when the matrix is materialized.
func (in *Instance) rowTwoMax(u int, idx []int32) (int32, float64, int32, float64) {
	if in.cacheUsed {
		return in.mat.RowTwoMax(u, idx)
	}
	b1, b2 := int32(-1), int32(-1)
	v1, v2 := -1.0, -1.0
	for _, p := range idx {
		v := in.Utility(u, int(p))
		if v > v1 {
			b2, v2 = b1, v1
			b1, v1 = p, v
		} else if v > v2 {
			b2, v2 = p, v
		}
	}
	return b1, v1, b2, v2
}

// rowMax returns user u's best point among the listed candidates with
// sentinel (-1, -1.0) for an empty list.
func (in *Instance) rowMax(u int, idx []int32) (int32, float64) {
	if in.cacheUsed {
		return in.mat.RowMax(u, idx)
	}
	bi, bv := int32(-1), -1.0
	for _, p := range idx {
		if v := in.Utility(u, int(p)); v > bv {
			bi, bv = p, v
		}
	}
	return bi, bv
}

// rowMaxExcl is rowMax skipping the single excluded candidate.
func (in *Instance) rowMaxExcl(u int, idx []int32, excl int32) (int32, float64) {
	if in.cacheUsed {
		return in.mat.RowMaxExcl(u, idx, excl)
	}
	bi, bv := int32(-1), -1.0
	for _, p := range idx {
		if p == excl {
			continue
		}
		if v := in.Utility(u, int(p)); v > bv {
			bi, bv = p, v
		}
	}
	return bi, bv
}

// Transposed returns a freshly built point-major copy of the utility
// matrix (nil when not materialized): Col(p) is point p's contiguous
// utility column across users, the access pattern of insertion-style
// solvers. The copy is transient per call — it is not part of
// MemoryFootprint — and costs one cache-blocked O(Nn) pass.
func (in *Instance) Transposed() *kernel.Transposed {
	if !in.cacheUsed {
		return nil
	}
	return in.mat.Transpose()
}

// NumPoints returns n.
func (in *Instance) NumPoints() int { return len(in.Points) }

// NumFuncs returns the sample size N.
func (in *Instance) NumFuncs() int { return len(in.Funcs) }

// DegenerateUsers returns the number of sampled users whose utility is
// non-positive on every database point; their regret ratio is defined as 0
// and they are excluded from averages.
func (in *Instance) DegenerateUsers() int { return in.degen }

// Cached reports whether the N×n utility matrix was materialized.
func (in *Instance) Cached() bool { return in.cacheUsed }

// Float32 reports whether the instance runs in float32 storage mode.
func (in *Instance) Float32() bool { return in.f32 }

// MemoryFootprint returns the exact resident bytes of the instance's
// owned preprocessing artifacts: the materialized utility matrix (when
// cached), the satisfaction and best-point indexes, and the user
// weights. Points and Funcs are shared references (the dataset and the
// sampled-function cache own them) and are deliberately excluded —
// callers sizing a cache entry account for them once at their owner.
func (in *Instance) MemoryFootprint() int64 {
	const sliceHeader = 24
	N := int64(len(in.Funcs))
	var size int64
	if in.cacheUsed {
		// One flat N×n backing array (4 bytes per entry in float32 mode).
		size += in.mat.FootprintBytes()
	}
	size += sliceHeader + N*8 // satD
	size += sliceHeader + N*4 // bestD
	if in.wt != nil {
		size += sliceHeader + N*8
	}
	return size
}

// BestInDatabase returns user u's best point index in D (-1 if degenerate)
// and their satisfaction from the full database.
func (in *Instance) BestInDatabase(u int) (int, float64) {
	return int(in.bestD[u]), in.satD[u]
}

// ErrInvalidSet is returned when a selection set is empty, larger than the
// database, contains an out-of-range index, or repeats an index. Callers
// can match it with errors.Is to distinguish bad input from solver
// failures.
var ErrInvalidSet = errors.New("core: invalid selection set")

// ValidateSet checks that set is a non-empty list of valid, distinct
// indices into [0, n). Every violation is reported as a wrapped
// ErrInvalidSet.
func ValidateSet(set []int, n int) error {
	if len(set) == 0 {
		return fmt.Errorf("%w: empty", ErrInvalidSet)
	}
	if len(set) > n {
		return fmt.Errorf("%w: %d indices for %d points", ErrInvalidSet, len(set), n)
	}
	seen := make(map[int]bool, len(set))
	for _, p := range set {
		if p < 0 || p >= n {
			return fmt.Errorf("%w: point index %d out of range [0,%d)", ErrInvalidSet, p, n)
		}
		if seen[p] {
			return fmt.Errorf("%w: duplicate point index %d", ErrInvalidSet, p)
		}
		seen[p] = true
	}
	return nil
}

// validateSet checks that set is a non-empty list of valid, distinct point
// indices.
func (in *Instance) validateSet(set []int) error {
	return ValidateSet(set, len(in.Points))
}

// RegretRatios returns the per-user regret ratio of the set (Equation 1's
// summands): rr[u] = (satD[u] - max_{p∈set} f_u(p)) / satD[u], clamped to
// [0, 1]; degenerate users score 0.
func (in *Instance) RegretRatios(set []int) ([]float64, error) {
	if err := in.validateSet(set); err != nil {
		return nil, err
	}
	out := make([]float64, in.NumFuncs())
	for u := range in.Funcs {
		if in.satD[u] <= 0 {
			continue
		}
		var best float64
		for _, p := range set {
			if v := in.Utility(u, p); v > best {
				best = v
			}
		}
		rr := (in.satD[u] - best) / in.satD[u]
		if rr < 0 {
			rr = 0
		}
		out[u] = rr
	}
	return out, nil
}

// ARR evaluates the average regret ratio of the set: the Monte-Carlo
// estimator of Equation 1 for sampled instances, or the exact weighted sum
// of Appendix A when the instance carries weights.
func (in *Instance) ARR(set []int) (float64, error) {
	rrs, err := in.RegretRatios(set)
	if err != nil {
		return 0, err
	}
	var sum float64
	for u, v := range rrs {
		sum += in.Weight(u) * v
	}
	return sum / in.totalW, nil
}

// Weight returns user u's probability mass (1 for uniform instances).
func (in *Instance) Weight(u int) float64 {
	if in.wt == nil {
		return 1
	}
	return in.wt[u]
}

// TotalWeight returns the normalization constant Σ_u Weight(u).
func (in *Instance) TotalWeight() float64 { return in.totalW }

// Weighted reports whether the instance carries explicit user weights.
func (in *Instance) Weighted() bool { return in.wt != nil }
