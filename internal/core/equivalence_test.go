package core

import (
	"context"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

// workerInstance builds a seeded instance with the requested worker bound.
func workerInstance(t testing.TB, seed uint64, n, d, N, workers int) *Instance {
	t.Helper()
	g := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		g.UniformVec(p)
		pts[i] = p
	}
	dist, err := utility.NewUniformSimplexLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := sampling.Sample(dist, N, g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(pts, funcs, Options{Parallelism: workers})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func sameSet(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: |set| = %d, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: set[%d] = %d, want %d (got %v want %v)", label, i, got[i], want[i], got, want)
		}
	}
}

// All three GREEDY-SHRINK strategies must return identical sets on seeded
// randomized instances — they implement the same Algorithm 1, differing
// only in how evaluation values are obtained.
func TestStrategyEquivalenceRandomized(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{1, 7, 23, 101} {
		in := workerInstance(t, seed, 60, 4, 300, 1)
		ref, _, err := GreedyShrink(ctx, in, 8, StrategyDelta)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []Strategy{StrategyLazy, StrategyNaive} {
			set, _, err := GreedyShrink(ctx, in, 8, s)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, s.String(), set, ref)
		}
	}
}

// Every parallel solver must be bit-identical to its serial run: same set,
// same FinalARR bits, same work counters. Only the worker/batch counters
// may differ with the worker bound.
func TestParallelMatchesSerialAllSolvers(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 80, 4, 500, 10
	serial := workerInstance(t, 42, n, d, N, 1)

	type run struct {
		set   []int
		stats ShrinkStats
	}
	solve := func(in *Instance, name string) run {
		t.Helper()
		switch name {
		case "delta", "lazy", "naive":
			s := map[string]Strategy{"delta": StrategyDelta, "lazy": StrategyLazy, "naive": StrategyNaive}[name]
			set, stats, err := GreedyShrink(ctx, in, k, s)
			if err != nil {
				t.Fatal(err)
			}
			return run{set, stats}
		case "add":
			set, stats, err := GreedyAdd(ctx, in, k)
			if err != nil {
				t.Fatal(err)
			}
			return run{set, stats}
		case "add-plain":
			set, err := GreedyAddPlain(ctx, in, k)
			if err != nil {
				t.Fatal(err)
			}
			return run{set, ShrinkStats{}}
		case "brute":
			set, arr, err := BruteForce(ctx, in, 3)
			if err != nil {
				t.Fatal(err)
			}
			return run{set, ShrinkStats{FinalARR: arr}}
		}
		t.Fatalf("unknown solver %q", name)
		return run{}
	}

	solvers := []string{"delta", "lazy", "naive", "add", "add-plain", "brute"}
	refs := make(map[string]run, len(solvers))
	for _, name := range solvers {
		refs[name] = solve(serial, name)
	}
	if w := refs["delta"].stats.Workers; w != 1 {
		t.Fatalf("serial delta ran with Workers=%d", w)
	}

	for _, workers := range []int{2, 3, 8, 0} {
		par := workerInstance(t, 42, n, d, N, workers)
		for _, name := range solvers {
			got, ref := solve(par, name), refs[name]
			label := name
			sameSet(t, label, got.set, ref.set)
			if got.stats.FinalARR != ref.stats.FinalARR {
				t.Fatalf("workers=%d %s: FinalARR %v != %v", workers, label, got.stats.FinalARR, ref.stats.FinalARR)
			}
			if got.stats.Evaluations != ref.stats.Evaluations ||
				got.stats.EvalSkipped != ref.stats.EvalSkipped ||
				got.stats.UserRescans != ref.stats.UserRescans ||
				got.stats.Iterations != ref.stats.Iterations ||
				got.stats.CandidateTotal != ref.stats.CandidateTotal {
				t.Fatalf("workers=%d %s: work counters diverged: %+v vs %+v", workers, label, got.stats, ref.stats)
			}
		}
	}
}

// Weighted (Appendix A) instances exercise a different accumulation path;
// parallel must stay bit-identical there too.
func TestParallelMatchesSerialWeighted(t *testing.T) {
	ctx := context.Background()
	g := rng.New(5)
	const n, d, N = 50, 3, 200
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		g.UniformVec(p)
		pts[i] = p
	}
	dist, err := utility.NewUniformSimplexLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := sampling.Sample(dist, N, g)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, N)
	for i := range weights {
		weights[i] = g.Float64() + 0.01
	}
	build := func(workers int) *Instance {
		in, err := NewInstance(pts, funcs, Options{Weights: weights, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	ref, refStats, err := GreedyShrink(ctx, build(1), 6, StrategyDelta)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		set, stats, err := GreedyShrink(ctx, build(workers), 6, StrategyDelta)
		if err != nil {
			t.Fatal(err)
		}
		sameSet(t, "weighted-delta", set, ref)
		if stats.FinalARR != refStats.FinalARR {
			t.Fatalf("workers=%d: FinalARR %v != %v", workers, stats.FinalARR, refStats.FinalARR)
		}
	}
}

// Every solver must return promptly with ctx.Err() on a pre-canceled
// context, including when evaluations would run inside the worker pool.
func TestSolversPreCanceled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		in := workerInstance(t, 3, 40, 3, 200, workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, s := range []Strategy{StrategyDelta, StrategyLazy, StrategyNaive} {
			if _, _, err := GreedyShrink(ctx, in, 5, s); err != context.Canceled {
				t.Fatalf("workers=%d %s: err = %v, want context.Canceled", workers, s, err)
			}
		}
		if _, _, err := GreedyAdd(ctx, in, 5); err != context.Canceled {
			t.Fatalf("workers=%d GreedyAdd: err = %v", workers, err)
		}
		if _, err := GreedyAddPlain(ctx, in, 5); err != context.Canceled {
			t.Fatalf("workers=%d GreedyAddPlain: err = %v", workers, err)
		}
		if _, _, err := BruteForce(ctx, in, 3); err != context.Canceled {
			t.Fatalf("workers=%d BruteForce: err = %v", workers, err)
		}
	}
}

// The worker/contention counters must reflect the configured bound and
// count every batch exactly once.
func TestShrinkStatsWorkerCounters(t *testing.T) {
	ctx := context.Background()
	in := workerInstance(t, 11, 120, 3, 400, 4)
	_, stats, err := GreedyShrink(ctx, in, 10, StrategyDelta)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers != 4 {
		t.Fatalf("Workers = %d, want 4", stats.Workers)
	}
	if stats.ParallelBatches+stats.SerialBatches == 0 {
		t.Fatal("no evaluation batches recorded")
	}
	// n=120 with 4 workers clears the dispatch grain, so at least the
	// initialization batch must have fanned out.
	if stats.ParallelBatches == 0 {
		t.Fatal("initialization batch never fanned out")
	}

	serialIn := workerInstance(t, 11, 120, 3, 400, 1)
	_, sstats, err := GreedyShrink(ctx, serialIn, 10, StrategyDelta)
	if err != nil {
		t.Fatal(err)
	}
	if sstats.Workers != 1 || sstats.ParallelBatches != 0 {
		t.Fatalf("serial run recorded Workers=%d ParallelBatches=%d", sstats.Workers, sstats.ParallelBatches)
	}
}
