package core

import (
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/sched"
	"github.com/regretlab/fam/internal/utility"
)

// randomInstance builds a random linear FAM instance for tests.
func randomInstance(t *testing.T, n, d, N int, seed uint64) *Instance {
	t.Helper()
	g := rng.New(seed)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		g.UniformVec(p)
		pts[i] = p
	}
	dist, err := utility.NewUniformSimplexLinear(d)
	if err != nil {
		t.Fatal(err)
	}
	funcs, err := sampling.Sample(dist, N, g)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewInstance(pts, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNewInstanceValidation(t *testing.T) {
	dist, _ := utility.NewUniformSimplexLinear(2)
	g := rng.New(1)
	funcs, _ := sampling.Sample(dist, 3, g)
	if _, err := NewInstance(nil, funcs, Options{}); err == nil {
		t.Fatal("empty points must error")
	}
	if _, err := NewInstance([][]float64{{1, 2}}, nil, Options{}); err == nil {
		t.Fatal("no funcs must error")
	}
	if _, err := NewInstance([][]float64{{1, 2}}, []utility.Func{nil}, Options{}); err == nil {
		t.Fatal("nil func must error")
	}
}

func TestUtilityCacheModes(t *testing.T) {
	mk := func(budget int64) *Instance {
		pts := [][]float64{{0.2, 0.8}, {0.9, 0.1}}
		funcs := []utility.Func{
			utility.Linear{W: []float64{1, 0}},
			utility.Linear{W: []float64{0, 1}},
		}
		in, err := NewInstance(pts, funcs, Options{CacheBudget: budget})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	cached := mk(0)    // default budget, tiny instance => cached
	uncached := mk(-1) // disabled
	if !cached.Cached() || uncached.Cached() {
		t.Fatalf("cache flags: %v %v", cached.Cached(), uncached.Cached())
	}
	for u := 0; u < 2; u++ {
		for p := 0; p < 2; p++ {
			if cached.Utility(u, p) != uncached.Utility(u, p) {
				t.Fatal("cache must not change values")
			}
		}
	}
}

func TestPreprocessingBestPoints(t *testing.T) {
	pts := [][]float64{{1, 0}, {0, 1}, {0.4, 0.4}}
	funcs := []utility.Func{
		utility.Linear{W: []float64{1, 0}},     // best: point 0
		utility.Linear{W: []float64{0, 1}},     // best: point 1
		utility.Linear{W: []float64{0.5, 0.5}}, // 0.5 vs 0.5 vs 0.4 — tie: first index wins
	}
	in, err := NewInstance(pts, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		u, best int
		sat     float64
	}{{0, 0, 1}, {1, 1, 1}, {2, 0, 0.5}}
	for _, c := range cases {
		b, s := in.BestInDatabase(c.u)
		if b != c.best || math.Abs(s-c.sat) > 1e-12 {
			t.Fatalf("user %d: best=%d sat=%v, want %d %v", c.u, b, s, c.best, c.sat)
		}
	}
	if in.DegenerateUsers() != 0 {
		t.Fatal("no degenerate users expected")
	}
}

func TestDegenerateUsers(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 0}}
	funcs := []utility.Func{
		utility.Linear{W: []float64{1, 1}}, // zero utility everywhere
		utility.Table{U: []float64{0.5, 0.2}},
	}
	in, err := NewInstance(pts, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if in.DegenerateUsers() != 1 {
		t.Fatalf("degenerate = %d, want 1", in.DegenerateUsers())
	}
	b, _ := in.BestInDatabase(0)
	if b != -1 {
		t.Fatal("degenerate user must have best -1")
	}
	// Degenerate users contribute rr = 0.
	arr, err := in.ARR([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	// User 1: sat({1}) = 0.2, satD = 0.5 => rr = 0.6; average over 2 users.
	if math.Abs(arr-0.3) > 1e-12 {
		t.Fatalf("ARR = %v, want 0.3", arr)
	}
}

func TestARRHandComputed(t *testing.T) {
	// The paper's Table I example: 4 hotels, 4 users, S = {Intercontinental,
	// Hilton} (indices 2, 3). Utilities are pre-normalized, satD = 1 each.
	pts := [][]float64{{0}, {1}, {2}, {3}} // placeholder coordinates
	funcs := []utility.Func{
		utility.Table{U: []float64{0.9, 0.7, 0.2, 0.4}}, // Alex
		utility.Table{U: []float64{0.6, 1, 0.5, 0.2}},   // Jerry
		utility.Table{U: []float64{0.2, 0.6, 0.3, 1}},   // Tom
		utility.Table{U: []float64{0.1, 0.2, 1, 0.9}},   // Sam
	}
	in, err := NewInstance(pts, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := in.ARR([]int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// rr: Alex (0.9-0.4)/0.9 = 5/9, Jerry (1-0.5)/1 = 0.5, Tom 0, Sam 0
	// => arr = (5/9 + 1/2) / 4 = 19/72.
	if want := 19.0 / 72.0; math.Abs(arr-want) > 1e-12 {
		t.Fatalf("ARR = %v, want %v", arr, want)
	}
	// Full database: arr = 0.
	arrAll, _ := in.ARR([]int{0, 1, 2, 3})
	if arrAll != 0 {
		t.Fatalf("arr(D) = %v, want 0", arrAll)
	}
}

func TestRegretRatiosValidation(t *testing.T) {
	in := randomInstance(t, 5, 2, 10, 1)
	if _, err := in.ARR(nil); err == nil {
		t.Fatal("empty set must error")
	}
	if _, err := in.ARR([]int{0, 0}); err == nil {
		t.Fatal("duplicate index must error")
	}
	if _, err := in.ARR([]int{-1}); err == nil {
		t.Fatal("negative index must error")
	}
	if _, err := in.ARR([]int{99}); err == nil {
		t.Fatal("out-of-range index must error")
	}
}

func TestEvaluateMetrics(t *testing.T) {
	in := randomInstance(t, 20, 3, 500, 2)
	m, err := in.Evaluate([]int{0, 1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.ARR < 0 || m.ARR > 1 {
		t.Fatalf("ARR = %v", m.ARR)
	}
	if m.StdDev < 0 || math.Abs(m.StdDev*m.StdDev-m.VRR) > 1e-12 {
		t.Fatalf("StdDev/VRR inconsistent: %v %v", m.StdDev, m.VRR)
	}
	if len(m.Percentiles) != len(DefaultPercentiles) {
		t.Fatalf("percentile count %d", len(m.Percentiles))
	}
	for i := 1; i < len(m.Percentiles); i++ {
		if m.Percentiles[i] < m.Percentiles[i-1] {
			t.Fatal("percentiles must be non-decreasing")
		}
	}
	if m.MaxRR != m.Percentiles[len(m.Percentiles)-1] {
		t.Fatalf("MaxRR %v != 100th percentile %v", m.MaxRR, m.Percentiles[len(m.Percentiles)-1])
	}
	if m.MaxRR < m.ARR {
		t.Fatal("max regret ratio must dominate the average")
	}
	// Custom levels.
	m2, err := in.Evaluate([]int{0}, []float64{50})
	if err != nil || len(m2.Percentiles) != 1 {
		t.Fatalf("custom levels: %v %v", m2.Percentiles, err)
	}
}

// TestInstanceMemoryFootprint pins the exact-size accounting the
// serving cache's byte budgets rely on, for cached, uncached, and
// weighted instances, and checks WithExecution clones carry their
// execution knobs without copying artifacts.
func TestInstanceMemoryFootprint(t *testing.T) {
	points := [][]float64{{1, 0}, {0, 1}, {0.4, 0.7}}
	funcs := []utility.Func{
		utility.Linear{W: []float64{0.5, 0.5}},
		utility.Linear{W: []float64{0.9, 0.1}},
	}
	const sliceHeader = 24
	n, N := int64(3), int64(2)

	cached, err := NewInstance(points, funcs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sliceHeader + N*n*8 + // flat matrix backing array
		sliceHeader + N*8 + sliceHeader + N*4 // satD + bestD
	if got := cached.MemoryFootprint(); got != want {
		t.Fatalf("cached footprint = %d, want %d", got, want)
	}

	f32, err := NewInstance(points, funcs, Options{Float32: true})
	if err != nil {
		t.Fatal(err)
	}
	wantF32 := sliceHeader + N*n*4 + // float32 halves matrix bytes
		sliceHeader + N*8 + sliceHeader + N*4
	if got := f32.MemoryFootprint(); got != wantF32 {
		t.Fatalf("float32 footprint = %d, want %d", got, wantF32)
	}

	uncached, err := NewInstance(points, funcs, Options{CacheBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := uncached.MemoryFootprint(), sliceHeader+N*8+sliceHeader+N*4; got != want {
		t.Fatalf("uncached footprint = %d, want %d", got, want)
	}

	weighted, err := NewInstance(points, funcs, Options{Weights: []float64{0.3, 0.7}})
	if err != nil {
		t.Fatal(err)
	}
	if got := weighted.MemoryFootprint(); got != want+sliceHeader+N*8 {
		t.Fatalf("weighted footprint = %d, want %d", got, want+sliceHeader+N*8)
	}

	// WithExecution: knobs move, artifacts (and their accounting) don't.
	clone := cached.WithExecution(3, 7, nil, sched.Attrs{Priority: sched.High})
	if clone.Parallelism() != 3 || clone.LazyBatch() != 7 || clone.Pool() != nil {
		t.Fatalf("clone knobs = (%d, %d, %v)", clone.Parallelism(), clone.LazyBatch(), clone.Pool())
	}
	if clone.MemoryFootprint() != cached.MemoryFootprint() {
		t.Fatal("clone accounts different bytes than its parent")
	}
	cached.SetParallelism(5)
	if cached.Parallelism() != 5 || clone.Parallelism() != 3 {
		t.Fatal("SetParallelism leaked between clone and parent")
	}
	cached.SetLazyBatch(9)
	if cached.LazyBatch() != 9 {
		t.Fatal("SetLazyBatch did not stick")
	}
}
