package core

import (
	"context"
	"testing"
)

// lazyBatchInstance builds a seeded instance with the given worker bound
// and lazy refresh batch size.
func lazyBatchInstance(t testing.TB, seed uint64, n, d, N, workers, batch int) *Instance {
	t.Helper()
	in := workerInstance(t, seed, n, d, N, workers)
	in.SetLazyBatch(batch)
	return in
}

// The batched lazy refresh is stats-tolerant equivalent to the serial
// pop-refresh loop: for every batch size B and worker bound, the selected
// set, FinalARR (the ARR metric of the selection), Iterations, and
// CandidateTotal are bit-identical to the serial lazy run; only the
// evaluation-count statistics (Evaluations, EvalSkipped, UserRescans, the
// speculative counters, and the batch/dispatch counters) may differ,
// because entries below the queue head are refreshed speculatively.
func TestLazyBatchStatsTolerantEquivalence(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 90, 4, 400, 12
	for _, seed := range []uint64{3, 19, 57} {
		ref, refStats, err := GreedyShrink(ctx, lazyBatchInstance(t, seed, n, d, N, 1, 0), k, StrategyLazy)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{1, 4, 16} {
			for _, workers := range []int{1, 4, 8} {
				in := lazyBatchInstance(t, seed, n, d, N, workers, batch)
				set, stats, err := GreedyShrink(ctx, in, k, StrategyLazy)
				if err != nil {
					t.Fatalf("seed=%d B=%d workers=%d: %v", seed, batch, workers, err)
				}
				label := "lazy-batch"
				sameSet(t, label, set, ref)
				if stats.FinalARR != refStats.FinalARR {
					t.Fatalf("seed=%d B=%d workers=%d: FinalARR %v != %v",
						seed, batch, workers, stats.FinalARR, refStats.FinalARR)
				}
				if stats.Iterations != refStats.Iterations || stats.CandidateTotal != refStats.CandidateTotal {
					t.Fatalf("seed=%d B=%d workers=%d: iteration counters diverged: %+v vs %+v",
						seed, batch, workers, stats, refStats)
				}
				if stats.LazyBatch != batch {
					t.Fatalf("seed=%d B=%d: stats.LazyBatch = %d", seed, batch, stats.LazyBatch)
				}
				if batch <= 1 {
					// B = 1 is exactly the serial pop-refresh loop: even the
					// evaluation counts must match, and nothing is
					// speculative.
					if stats.Evaluations != refStats.Evaluations ||
						stats.EvalSkipped != refStats.EvalSkipped ||
						stats.UserRescans != refStats.UserRescans {
						t.Fatalf("seed=%d workers=%d: B=1 work counters diverged: %+v vs %+v",
							seed, workers, stats, refStats)
					}
					if stats.SpeculativeEvals != 0 || stats.SpeculativeHits != 0 || stats.SpeculativeWaste != 0 {
						t.Fatalf("seed=%d workers=%d: B=1 recorded speculative work: %+v", seed, workers, stats)
					}
					continue
				}
				// B > 1: speculative accounting must be internally
				// consistent, and every refresh is still bounded by one per
				// candidate per iteration.
				if stats.SpeculativeHits+stats.SpeculativeWaste != stats.SpeculativeEvals {
					t.Fatalf("seed=%d B=%d workers=%d: hits %d + waste %d != evals %d",
						seed, batch, workers, stats.SpeculativeHits, stats.SpeculativeWaste, stats.SpeculativeEvals)
				}
				if stats.Evaluations < refStats.Evaluations {
					t.Fatalf("seed=%d B=%d: batched run evaluated less than serial (%d < %d)",
						seed, batch, stats.Evaluations, refStats.Evaluations)
				}
				if stats.Evaluations+stats.EvalSkipped != refStats.Evaluations+refStats.EvalSkipped {
					t.Fatalf("seed=%d B=%d: evaluations+skips changed: %d+%d vs %d+%d",
						seed, batch, stats.Evaluations, stats.EvalSkipped,
						refStats.Evaluations, refStats.EvalSkipped)
				}
			}
		}
	}
}

// A batch size far larger than the candidate pool must degrade gracefully
// (refresh everything alive, never drain the queue into a panic) and still
// return the serial selection.
func TestLazyBatchLargerThanCandidates(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 24, 3, 150, 4
	ref, _, err := GreedyShrink(ctx, lazyBatchInstance(t, 7, n, d, N, 1, 0), k, StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	in := lazyBatchInstance(t, 7, n, d, N, 4, 1024)
	set, stats, err := GreedyShrink(ctx, in, k, StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "huge-batch", set, ref)
	if stats.LazyBatch != 1024 {
		t.Fatalf("LazyBatch = %d", stats.LazyBatch)
	}
}

// The batched refresh path must honor cancellation from inside the pool.
func TestLazyBatchPreCanceled(t *testing.T) {
	in := lazyBatchInstance(t, 5, 60, 3, 200, 4, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := GreedyShrink(ctx, in, 5, StrategyLazy); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
