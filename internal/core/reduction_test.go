package core

import (
	"context"
	"testing"

	"github.com/regretlab/fam/internal/rng"
)

func TestReduceSetCoverValidation(t *testing.T) {
	if _, err := ReduceSetCover(SetCoverInstance{UniverseSize: 0, Subsets: [][]int{{0}}, K: 1}); err == nil {
		t.Fatal("empty universe must error")
	}
	if _, err := ReduceSetCover(SetCoverInstance{UniverseSize: 2, Subsets: nil, K: 1}); err == nil {
		t.Fatal("no subsets must error")
	}
	if _, err := ReduceSetCover(SetCoverInstance{UniverseSize: 2, Subsets: [][]int{{0, 1}}, K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := ReduceSetCover(SetCoverInstance{UniverseSize: 2, Subsets: [][]int{{0, 5}}, K: 1}); err == nil {
		t.Fatal("out-of-universe element must error")
	}
	if _, err := ReduceSetCover(SetCoverInstance{UniverseSize: 3, Subsets: [][]int{{0, 1}}, K: 1}); err == nil {
		t.Fatal("uncoverable element must error")
	}
}

func TestReduceSetCoverYesInstance(t *testing.T) {
	// Universe {0..4}; subsets {0,1},{2,3},{4},{1,2}; cover of size 3
	// exists ({0,1},{2,3},{4}).
	sc := SetCoverInstance{
		UniverseSize: 5,
		Subsets:      [][]int{{0, 1}, {2, 3}, {4}, {1, 2}},
		K:            3,
	}
	in, err := ReduceSetCover(sc)
	if err != nil {
		t.Fatal(err)
	}
	yes, cover, err := HasZeroRegretSelection(context.Background(), in, sc.K)
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Fatal("expected a yes-instance")
	}
	// The witness must be an actual cover.
	covered := make([]bool, sc.UniverseSize)
	for _, si := range cover {
		for _, e := range sc.Subsets[si] {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			t.Fatalf("witness %v does not cover element %d", cover, e)
		}
	}
}

func TestReduceSetCoverNoInstance(t *testing.T) {
	// Three disjoint pairs cannot be covered by 2 subsets.
	sc := SetCoverInstance{
		UniverseSize: 6,
		Subsets:      [][]int{{0, 1}, {2, 3}, {4, 5}},
		K:            2,
	}
	in, err := ReduceSetCover(sc)
	if err != nil {
		t.Fatal(err)
	}
	yes, _, err := HasZeroRegretSelection(context.Background(), in, sc.K)
	if err != nil {
		t.Fatal(err)
	}
	if yes {
		t.Fatal("expected a no-instance")
	}
}

// Property: on random small instances, the FAM answer equals a direct
// exhaustive set-cover check — Lemma 6 (correctness of the reduction).
func TestReductionMatchesDirectSetCover(t *testing.T) {
	g := rng.New(97)
	for trial := 0; trial < 40; trial++ {
		uSize := g.IntN(6) + 2
		nSubs := g.IntN(5) + 2
		subs := make([][]int, nSubs)
		for si := range subs {
			var s []int
			for e := 0; e < uSize; e++ {
				if g.Float64() < 0.45 {
					s = append(s, e)
				}
			}
			subs[si] = s
		}
		// Ensure coverability (the reduction requires it).
		covered := make([]bool, uSize)
		for _, s := range subs {
			for _, e := range s {
				covered[e] = true
			}
		}
		for e, ok := range covered {
			if !ok {
				subs[0] = append(subs[0], e)
			}
		}
		k := g.IntN(nSubs) + 1
		sc := SetCoverInstance{UniverseSize: uSize, Subsets: subs, K: k}
		in, err := ReduceSetCover(sc)
		if err != nil {
			t.Fatal(err)
		}
		famYes, _, err := HasZeroRegretSelection(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		directYes := directSetCover(sc)
		if famYes != directYes {
			t.Fatalf("trial %d: FAM says %v, direct search says %v (%+v)", trial, famYes, directYes, sc)
		}
	}
}

// directSetCover answers Set Cover by brute force over subset choices.
func directSetCover(sc SetCoverInstance) bool {
	n := len(sc.Subsets)
	var rec func(start, picked int, covered []bool) bool
	full := func(covered []bool) bool {
		for _, ok := range covered {
			if !ok {
				return false
			}
		}
		return true
	}
	rec = func(start, picked int, covered []bool) bool {
		if full(covered) {
			return true
		}
		if picked == sc.K {
			return false
		}
		for si := start; si < n; si++ {
			next := append([]bool(nil), covered...)
			for _, e := range sc.Subsets[si] {
				next[e] = true
			}
			if rec(si+1, picked+1, next) {
				return true
			}
		}
		return false
	}
	return rec(0, 0, make([]bool, sc.UniverseSize))
}
