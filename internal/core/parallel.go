package core

import (
	"context"

	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/sched"
)

// Parallelism returns the worker bound configured for this instance:
// the effective goroutine count used by preprocessing and by every
// solver's query-phase evaluation (1 means serial).
func (in *Instance) Parallelism() int {
	return par.Workers(in.par, 1<<30)
}

// SetParallelism changes the instance's worker bound (0 = all CPUs,
// 1 = serial). Solver output is bit-identical at any setting, so this is
// safe to vary between runs on a shared instance; it must not be called
// concurrently with a running solver.
func (in *Instance) SetParallelism(p int) { in.par = p }

// LazyBatch returns the effective refresh batch size of the lazy
// GREEDY-SHRINK strategy (at least 1; 1 means the serial pop-refresh
// loop). When the adaptive controller is enabled (negative setting)
// this is the serial floor; the controller's live size is reported in
// ShrinkStats.LazyBatch.
func (in *Instance) LazyBatch() int {
	if in.lazyBatch < 1 {
		return 1
	}
	return in.lazyBatch
}

// LazyBatchAdaptive reports whether the lazy strategy's refresh batch
// size is driven by the adaptive controller (negative LazyBatch
// setting): the batch grows while speculative waste stays low and
// shrinks on waste spikes.
func (in *Instance) LazyBatchAdaptive() bool { return in.lazyBatch < 0 }

// SetLazyBatch changes the lazy strategy's refresh batch size (0 or 1 =
// serial refresh, >1 = fixed batch, negative = adaptive controller).
// Selected sets and FinalARR are identical at any setting; evaluation-
// count statistics may differ. It must not be called concurrently with
// a running solver.
func (in *Instance) SetLazyBatch(b int) { in.lazyBatch = b }

// Pool returns the externally owned worker pool the instance dispatches
// on (nil = spawn goroutines per call).
func (in *Instance) Pool() *par.Pool { return in.pool }

// WithExecution returns a shallow clone of the instance with different
// execution knobs: worker bound, lazy refresh batch, worker pool, and
// default scheduling attributes for the clone's pool fan-outs. The
// clone shares every preprocessing artifact (points, utility functions,
// the materialized utility matrix, best-point indexes) with the receiver
// — an Instance is immutable after construction, so a serving engine can
// cache one preprocessed Instance per dataset and hand each concurrent
// query its own clone with per-request settings at zero copy cost.
func (in *Instance) WithExecution(parallelism, lazyBatch int, pool *par.Pool, attrs sched.Attrs) *Instance {
	cp := *in
	cp.par = parallelism
	cp.lazyBatch = lazyBatch
	cp.pool = pool
	cp.sched = attrs
	return &cp
}

// evalPool shards the query phase's independent per-item evaluations
// (candidates or users) across the instance's worker bound and keeps the
// worker/contention counters reported in ShrinkStats. The zero batch
// count distinguishes "solver ran serially" from "pool never used".
type evalPool struct {
	workers int
	stats   *ShrinkStats
	pool    *par.Pool
	attrs   sched.Attrs
}

// newEvalPool derives the solver's pool from the instance. The stats
// pointer may be nil for solvers that report no counters (BruteForce).
func newEvalPool(in *Instance, stats *ShrinkStats) *evalPool {
	p := &evalPool{workers: in.Parallelism(), stats: stats, pool: in.pool, attrs: in.sched}
	if stats != nil {
		stats.Workers = p.workers
	}
	return p
}

// run executes fn over contiguous shards of [0, n). As batches shrink,
// workers are shed (par.Bounded's grain) rather than jumping straight to
// serial, and batches too small for any fan-out run inline; both outcomes
// are counted. fn must poll ctx per item (every caller in this package
// does) so that cancellation inside the pool is prompt; run reports the
// context error after the join.
func (e *evalPool) run(ctx context.Context, n int, fn func(w, lo, hi int)) error {
	return e.dispatch(ctx, par.Bounded(e.workers, n), n, fn)
}

// runWide is run without the grain bound, for batches whose items are
// individually expensive (a full candidate evaluation) and pay for
// fan-out even when there are only a handful of them.
func (e *evalPool) runWide(ctx context.Context, n int, fn func(w, lo, hi int)) error {
	return e.dispatch(ctx, par.Workers(e.workers, n), n, fn)
}

func (e *evalPool) dispatch(ctx context.Context, workers, n int, fn func(w, lo, hi int)) error {
	if n <= 0 {
		// Nothing to evaluate; not a batch — keep the counters honest.
		return ctx.Err()
	}
	if e.stats != nil {
		if workers > 1 {
			e.stats.ParallelBatches++
		} else {
			e.stats.SerialBatches++
		}
	}
	// A nil pool spawns per-call goroutines (one-shot Select); a shared
	// pool multiplexes the same blocks over long-lived helpers, granted
	// per the instance's scheduling attrs unless the request carries its
	// own.
	return e.pool.Shards(sched.ContextWithDefault(ctx, e.attrs), workers, n, fn)
}
