package core

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

// Parallel preprocessing must be bit-identical to serial.
func TestParallelPreprocessingDeterminism(t *testing.T) {
	g := rng.New(91)
	pts := make([][]float64, 120)
	for i := range pts {
		p := make([]float64, 4)
		g.UniformVec(p)
		pts[i] = p
	}
	dist, _ := utility.NewUniformSimplexLinear(4)
	funcs, _ := sampling.Sample(dist, 700, g)

	serial, err := NewInstance(pts, funcs, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 0} {
		par, err := NewInstance(pts, funcs, Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < serial.NumFuncs(); u++ {
			bs, ss := serial.BestInDatabase(u)
			bp, sp := par.BestInDatabase(u)
			if bs != bp || ss != sp {
				t.Fatalf("workers=%d user %d: (%d,%v) vs (%d,%v)", workers, u, bs, ss, bp, sp)
			}
		}
		set, _, err := GreedyShrink(context.Background(), par, 5, StrategyDelta)
		if err != nil {
			t.Fatal(err)
		}
		refSet, _, err := GreedyShrink(context.Background(), serial, 5, StrategyDelta)
		if err != nil {
			t.Fatal(err)
		}
		for i := range set {
			if set[i] != refSet[i] {
				t.Fatalf("workers=%d: selection differs", workers)
			}
		}
	}
}

// badFunc returns an invalid utility for one (user-local) point.
type badFunc struct {
	bad float64
}

func (b badFunc) Value(idx int, _ []float64) float64 {
	if idx == 1 {
		return b.bad
	}
	return 0.5
}

func TestInvalidUtilityRejected(t *testing.T) {
	pts := [][]float64{{0}, {1}, {2}}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1} {
		funcs := []utility.Func{badFunc{bad: bad}}
		if _, err := NewInstance(pts, funcs, Options{}); err == nil {
			t.Fatalf("utility value %v must be rejected", bad)
		}
		// Parallel path propagates the same error.
		if _, err := NewInstance(pts, funcs, Options{Parallelism: 4}); err == nil {
			t.Fatalf("utility value %v must be rejected in parallel mode", bad)
		}
	}
}

// More workers than users must not break partitioning.
func TestParallelMoreWorkersThanUsers(t *testing.T) {
	pts := [][]float64{{0.2, 0.8}, {0.9, 0.1}}
	funcs := []utility.Func{
		utility.Linear{W: []float64{1, 0}},
		utility.Linear{W: []float64{0, 1}},
	}
	in, err := NewInstance(pts, funcs, Options{Parallelism: 64})
	if err != nil {
		t.Fatal(err)
	}
	if b, _ := in.BestInDatabase(0); b != 1 {
		t.Fatalf("user 0 best = %d", b)
	}
	if b, _ := in.BestInDatabase(1); b != 0 {
		t.Fatalf("user 1 best = %d", b)
	}
}
