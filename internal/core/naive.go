package core

import (
	"context"

	"github.com/regretlab/fam/internal/obs"
)

// naiveShrink is the straightforward implementation of Algorithm 1: every
// iteration evaluates arr(S−{p}) from scratch for every candidate p ∈ S.
// One iteration costs O(|S|² · N) utility evaluations; the paper reports
// this baseline needing 50+ hours to pick 5 of 100 points at N = 10,000.
// It exists as the correctness reference and the ablation baseline.
//
// The candidate evaluations are independent, so each iteration fans them
// out across the instance's worker pool; the argmin reduction scans the
// evaluation buffer in index order with a strict comparison, which keeps
// the selection identical to the serial lowest-index tie-break.
func naiveShrink(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	n, N := in.NumPoints(), in.NumFuncs()
	var stats ShrinkStats
	pool := newEvalPool(in, &stats)
	set := newAliveSet(n)

	// arrWithout computes the unnormalized arr of S−{p} by full scans.
	arrWithout := func(excl int) float64 {
		var sum float64
		for u := 0; u < N; u++ {
			if in.satD[u] <= 0 {
				continue
			}
			bv := -1.0
			for q := 0; q < n; q++ {
				if !set.alive[q] || q == excl {
					continue
				}
				if v := in.Utility(u, q); v > bv {
					bv = v
				}
			}
			if bv < 0 {
				bv = 0
			}
			sum += in.Weight(u) * (in.satD[u] - bv) / in.satD[u]
		}
		return sum
	}

	vals := make([]float64, n)
	for set.count > k {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += set.count
		stats.Evaluations += set.count
		_, round := obs.Start(ctx, "round")
		round.SetAttrInt("iter", stats.Iterations)
		round.SetAttrInt("evals", set.count)
		// Each candidate costs a full O(|S|·N) scan, so fan out even for
		// small candidate sets (no grain bound).
		if err := pool.runWide(ctx, n, func(w, lo, hi int) {
			for p := lo; p < hi; p++ {
				if ctx.Err() != nil {
					return
				}
				if set.alive[p] {
					vals[p] = arrWithout(p)
				}
			}
		}); err != nil {
			return nil, stats, err
		}
		chosen := -1
		for p := 0; p < n; p++ {
			if set.alive[p] && (chosen == -1 || vals[p] < vals[chosen]) {
				chosen = p
			}
		}
		set.remove(chosen)
		round.End()
	}
	return set.members(), stats, nil
}
