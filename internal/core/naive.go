package core

import (
	"context"

	"github.com/regretlab/fam/internal/obs"
)

// naiveShrink is the straightforward implementation of Algorithm 1: every
// iteration evaluates arr(S−{p}) from scratch for every candidate p ∈ S.
// One iteration costs O(|S|² · N) utility evaluations; the paper reports
// this baseline needing 50+ hours to pick 5 of 100 points at N = 10,000.
// It exists as the correctness reference and the ablation baseline.
//
// The candidate evaluations are independent, so each iteration fans them
// out across the instance's worker pool; the argmin reduction scans the
// evaluation buffer in index order with a strict comparison, which keeps
// the selection identical to the serial lowest-index tie-break.
func naiveShrink(ctx context.Context, in *Instance, k int) ([]int, ShrinkStats, error) {
	n, N := in.NumPoints(), in.NumFuncs()
	var stats ShrinkStats
	pool := newEvalPool(in, &stats)
	set := newAliveSet(n)

	// arrWithout computes the unnormalized arr of S−{p} by full scans of
	// the compacted alive list (same ascending visit order as the
	// historical full-array scan; accumulation stays in user order).
	arrWithout := func(excl int) float64 {
		var sum float64
		for u := 0; u < N; u++ {
			if in.satD[u] <= 0 {
				continue
			}
			_, bv := in.rowMaxExcl(u, set.list, int32(excl))
			if bv < 0 {
				bv = 0
			}
			sum += in.Weight(u) * (in.satD[u] - bv) / in.satD[u]
		}
		return sum
	}

	vals := make([]float64, n)
	for set.count > k {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		stats.Iterations++
		stats.CandidateTotal += set.count
		stats.Evaluations += set.count
		_, round := obs.Start(ctx, "round")
		round.SetAttrInt("iter", stats.Iterations)
		round.SetAttrInt("evals", set.count)
		// Each candidate costs a full O(|S|·N) scan, so fan out even for
		// small candidate sets (no grain bound). Sharding the alive list
		// instead of [0, n) skips dead candidates entirely; each vals[p]
		// is an independent pure function of the set, so shard boundaries
		// cannot change any value.
		alive := set.list
		if err := pool.runWide(ctx, len(alive), func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					return
				}
				p := int(alive[i])
				vals[p] = arrWithout(p)
			}
		}); err != nil {
			return nil, stats, err
		}
		chosen := -1
		for _, p32 := range alive {
			if p := int(p32); chosen == -1 || vals[p] < vals[chosen] {
				chosen = p
			}
		}
		set.remove(chosen)
		round.End()
	}
	return set.members(), stats, nil
}
