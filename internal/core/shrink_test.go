package core

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/rng"
)

func allStrategies() []Strategy {
	return []Strategy{StrategyDelta, StrategyLazy, StrategyNaive}
}

func TestGreedyShrinkValidation(t *testing.T) {
	in := randomInstance(t, 6, 2, 20, 1)
	ctx := context.Background()
	if _, _, err := GreedyShrink(ctx, nil, 2, StrategyDelta); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, _, err := GreedyShrink(ctx, in, 0, StrategyDelta); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, _, err := GreedyShrink(ctx, in, 7, StrategyDelta); err == nil {
		t.Fatal("k>n must error")
	}
	if _, _, err := GreedyShrink(ctx, in, 2, Strategy(42)); err == nil {
		t.Fatal("unknown strategy must error")
	}
}

func TestGreedyShrinkKEqualsN(t *testing.T) {
	in := randomInstance(t, 5, 2, 30, 2)
	for _, s := range allStrategies() {
		set, st, err := GreedyShrink(context.Background(), in, 5, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(set) != 5 || st.Iterations != 0 {
			t.Fatalf("%v: set=%v iters=%d", s, set, st.Iterations)
		}
		if st.FinalARR != 0 {
			t.Fatalf("%v: arr(D) = %v, want 0", s, st.FinalARR)
		}
	}
}

func TestGreedyShrinkBasicShape(t *testing.T) {
	in := randomInstance(t, 25, 3, 200, 3)
	for _, s := range allStrategies() {
		set, st, err := GreedyShrink(context.Background(), in, 4, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(set) != 4 {
			t.Fatalf("%v: |set| = %d", s, len(set))
		}
		for i := 1; i < len(set); i++ {
			if set[i] <= set[i-1] {
				t.Fatalf("%v: set not sorted ascending: %v", s, set)
			}
		}
		if st.Iterations != 21 {
			t.Fatalf("%v: iterations = %d, want 21", s, st.Iterations)
		}
		arr, _ := in.ARR(set)
		if math.Abs(arr-st.FinalARR) > 1e-15 {
			t.Fatalf("%v: FinalARR %v != ARR %v", s, st.FinalARR, arr)
		}
	}
}

// All three strategies implement the same algorithm and must return the
// same solution set on random instances.
func TestStrategiesAgree(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		g := rng.New(seed + 500)
		n := g.IntN(15) + 5
		N := g.IntN(60) + 10
		in := sampledTableInstance(g, n, N)
		k := g.IntN(n-1) + 1
		var ref []int
		var refARR float64
		for i, s := range allStrategies() {
			set, st, err := GreedyShrink(context.Background(), in, k, s)
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, s, err)
			}
			if i == 0 {
				ref, refARR = set, st.FinalARR
				continue
			}
			if math.Abs(st.FinalARR-refARR) > 1e-9 {
				t.Fatalf("seed %d: %v arr %v vs delta arr %v", seed, s, st.FinalARR, refARR)
			}
			if len(set) != len(ref) {
				t.Fatalf("seed %d: %v set %v vs %v", seed, s, set, ref)
			}
			for j := range set {
				if set[j] != ref[j] {
					t.Fatalf("seed %d: %v set %v vs delta set %v", seed, s, set, ref)
				}
			}
		}
	}
}

// GREEDY-SHRINK's arr must decrease (weakly) as k grows, and equal the
// brute-force optimum closely on small instances (the paper observes an
// empirical approximation ratio of exactly 1).
func TestGreedyShrinkVsBruteForce(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := rng.New(seed + 900)
		in := sampledTableInstance(g, 10, 40)
		for k := 1; k <= 4; k++ {
			set, st, err := GreedyShrink(context.Background(), in, k, StrategyDelta)
			if err != nil {
				t.Fatal(err)
			}
			_, optARR, err := BruteForce(context.Background(), in, k)
			if err != nil {
				t.Fatal(err)
			}
			if st.FinalARR < optARR-1e-12 {
				t.Fatalf("greedy %v beat the optimum %v?!", st.FinalARR, optARR)
			}
			// Theorem 3 guarantee with measured steepness.
			s, err := Steepness(in)
			if err != nil {
				t.Fatal(err)
			}
			bound := ApproxRatioBound(s)
			if !math.IsInf(bound, 1) && optARR > 1e-12 && st.FinalARR > bound*optARR+1e-9 {
				t.Fatalf("seed %d k %d: greedy %v exceeds bound %v × opt %v (set %v)",
					seed, k, st.FinalARR, bound, optARR, set)
			}
		}
	}
}

func TestGreedyShrinkMonotoneInK(t *testing.T) {
	in := randomInstance(t, 30, 3, 300, 7)
	prev := math.Inf(1)
	for k := 1; k <= 10; k++ {
		_, st, err := GreedyShrink(context.Background(), in, k, StrategyDelta)
		if err != nil {
			t.Fatal(err)
		}
		// Greedy removal is nested: the k-solution is a superset of the
		// (k-1)-solution, so arr is monotone along the removal path.
		if st.FinalARR > prev+1e-12 {
			t.Fatalf("arr increased with k: %v -> %v at k=%d", prev, st.FinalARR, k)
		}
		prev = st.FinalARR
	}
}

func TestGreedyShrinkContextCancel(t *testing.T) {
	in := randomInstance(t, 40, 3, 200, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range allStrategies() {
		if _, _, err := GreedyShrink(ctx, in, 2, s); err == nil {
			t.Fatalf("%v: canceled context must error", s)
		}
	}
}

func TestLazyCountersReported(t *testing.T) {
	in := randomInstance(t, 60, 4, 500, 9)
	_, st, err := GreedyShrink(context.Background(), in, 10, StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evaluations <= 0 || st.UserRescans <= 0 {
		t.Fatalf("counters empty: %+v", st)
	}
	// Improvement 2 must actually skip work: far fewer evaluations than the
	// naive candidate total.
	if st.Evaluations >= st.CandidateTotal {
		t.Fatalf("lazy evaluated %d of %d candidates — no pruning?", st.Evaluations, st.CandidateTotal)
	}
	if st.EvalSkipped <= 0 {
		t.Fatalf("expected skipped evaluations, got %+v", st)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyDelta.String() != "delta" || StrategyLazy.String() != "lazy" ||
		StrategyNaive.String() != "naive" || Strategy(9).String() == "" {
		t.Fatal("Strategy.String broken")
	}
}

func TestBruteForceValidation(t *testing.T) {
	in := randomInstance(t, 6, 2, 10, 10)
	ctx := context.Background()
	if _, _, err := BruteForce(ctx, nil, 2); err == nil {
		t.Fatal("nil instance must error")
	}
	if _, _, err := BruteForce(ctx, in, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, _, err := BruteForce(ctx, in, 7); err == nil {
		t.Fatal("k>n must error")
	}
}

func TestBruteForceTooLarge(t *testing.T) {
	in := randomInstance(t, 64, 2, 5, 11)
	if _, _, err := BruteForce(context.Background(), in, 20); err == nil {
		t.Fatal("C(64,20) must be rejected")
	}
}

func TestBruteForceCancel(t *testing.T) {
	in := randomInstance(t, 20, 2, 50, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := BruteForce(ctx, in, 3); err == nil {
		t.Fatal("canceled context must error")
	}
}

// Brute force must match exhaustive recomputation through the public ARR
// on tiny instances.
func TestBruteForceExact(t *testing.T) {
	g := rng.New(13)
	in := sampledTableInstance(g, 7, 25)
	for k := 1; k <= 3; k++ {
		set, arr, err := BruteForce(context.Background(), in, k)
		if err != nil {
			t.Fatal(err)
		}
		check, err := in.ARR(set)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(check-arr) > 1e-12 {
			t.Fatalf("reported arr %v != recomputed %v", arr, check)
		}
		// No subset may beat it.
		var verify func(start int, chosen []int)
		verify = func(start int, chosen []int) {
			if len(chosen) == k {
				a, _ := in.ARR(chosen)
				if a < arr-1e-12 {
					t.Fatalf("subset %v has arr %v < brute force %v", chosen, a, arr)
				}
				return
			}
			for p := start; p < in.NumPoints(); p++ {
				verify(p+1, append(chosen, p))
			}
		}
		verify(0, nil)
	}
}
