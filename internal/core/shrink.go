package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/regretlab/fam/internal/obs"
)

// Strategy selects the GREEDY-SHRINK implementation. All strategies run
// Algorithm 1 — start from the whole database and repeatedly remove the
// point whose removal increases the average regret ratio the least — and
// produce identical solutions; they differ only in how the per-candidate
// evaluation values arr(S−{p}) are obtained.
type Strategy int

const (
	// StrategyDelta tracks each user's best and second-best point in the
	// current set, making every evaluation value available from per-point
	// accumulators in O(1). This is the default and the fastest variant.
	StrategyDelta Strategy = iota
	// StrategyLazy is the paper-faithful variant: Improvement 1 (per-user
	// best-point caching so only users whose best point is the removed
	// point are re-evaluated) plus Improvement 2 (previous-iteration
	// evaluation values kept as lower bounds in a priority queue —
	// Lemmas 2 and 3 — so most candidates are never re-evaluated).
	StrategyLazy
	// StrategyNaive recomputes arr(S−{p}) from scratch for every candidate
	// in every iteration — the paper's "straightforward implementation"
	// reference point. Only viable on small instances.
	StrategyNaive
)

func (s Strategy) String() string {
	switch s {
	case StrategyDelta:
		return "delta"
	case StrategyLazy:
		return "lazy"
	case StrategyNaive:
		return "naive"
	default:
		return fmt.Sprintf("core.Strategy(%d)", int(s))
	}
}

// ShrinkStats reports the work GREEDY-SHRINK performed; the lazy-variant
// counters mirror the paper's observation that only ≈1% of users and ≈68%
// of candidate points need reprocessing per iteration. The worker
// counters describe the parallel query engine's behavior: how many
// evaluation batches were sharded across workers and how many were too
// small to pay for goroutine dispatch (the contention guard) and ran
// inline. Work counters (Evaluations, UserRescans, …) and the selected
// set are identical at every worker count; only the batch counters
// depend on Workers.
type ShrinkStats struct {
	Iterations     int     // points removed (n - k)
	Evaluations    int     // arr(S−{p}) evaluations actually computed
	EvalSkipped    int     // candidate evaluations avoided by lower bounds
	UserRescans    int     // users whose best/second point was recomputed
	FinalARR       float64 // sampled arr of the returned set
	Strategy       Strategy
	CandidateTotal int // total candidate evaluations a naive run would do

	Workers         int // worker goroutines available to the query phase (1 = serial)
	ParallelBatches int // evaluation batches sharded across workers
	SerialBatches   int // batches run inline to avoid dispatch contention

	// Batched-lazy counters (StrategyLazy with LazyBatch > 1). A
	// speculative refresh re-evaluates a stale queue entry below the
	// queue head, work the serial pop-refresh loop might have skipped.
	// A hit means the speculatively refreshed entry became the removed
	// point of its iteration; a waste means it did not (its exact value
	// still tightens the entry's lower bound for later iterations).
	// All three are zero when LazyBatch <= 1.
	LazyBatch        int // effective refresh batch size (1 = serial; adaptive: final controller value)
	SpeculativeEvals int // stale entries refreshed below the queue head
	SpeculativeHits  int // speculative refreshes that resolved their iteration
	SpeculativeWaste int // speculative refreshes that did not (Evals - Hits)

	// Adaptive-controller counters (negative LazyBatch option): the
	// controller doubles the batch while an iteration's speculative
	// waste fraction stays low and halves it on waste spikes. The
	// selected set and FinalARR are identical to any fixed batch size —
	// only the work counters move with the controller's trajectory.
	AdaptiveGrows   int // batch-size doublings
	AdaptiveShrinks int // batch-size halvings after waste spikes
}

// ErrBadK is returned when k is out of (0, n].
var ErrBadK = errors.New("core: k must satisfy 0 < k <= n")

// GreedyShrink runs Algorithm 1 with the given strategy and returns the
// selected point indices in ascending order. The context is checked once
// per removal iteration, so cancellation latency is one iteration.
func GreedyShrink(ctx context.Context, in *Instance, k int, strategy Strategy) ([]int, ShrinkStats, error) {
	if in == nil {
		return nil, ShrinkStats{}, errors.New("core: nil instance")
	}
	n := in.NumPoints()
	if k <= 0 || k > n {
		return nil, ShrinkStats{}, fmt.Errorf("%w: k=%d n=%d", ErrBadK, k, n)
	}
	ctx, span := obs.Start(ctx, "shrink")
	span.SetAttr("strategy", strategy.String())
	span.SetAttrInt("n", n)
	span.SetAttrInt("k", k)
	defer span.End()
	var (
		set   []int
		stats ShrinkStats
		err   error
	)
	switch strategy {
	case StrategyDelta:
		set, stats, err = deltaShrink(ctx, in, k)
	case StrategyLazy:
		set, stats, err = lazyShrink(ctx, in, k)
	case StrategyNaive:
		set, stats, err = naiveShrink(ctx, in, k)
	default:
		return nil, ShrinkStats{}, fmt.Errorf("core: unknown strategy %d", int(strategy))
	}
	if err != nil {
		return nil, stats, err
	}
	sort.Ints(set)
	stats.Strategy = strategy
	arr, err := in.ARR(set)
	if err != nil {
		return nil, stats, err
	}
	stats.FinalARR = arr
	return set, stats, nil
}

// aliveSet is the shared mutable selection-set representation: the
// alive bitmap for O(1) membership tests plus a compacted ascending
// index list so candidate scans visit only alive points — iterating the
// list reproduces the historical "skip dead points" scans exactly (same
// ascending visit order) without touching the n−|S| dead entries.
type aliveSet struct {
	alive []bool
	list  []int32 // alive indices, ascending
	count int
}

func newAliveSet(n int) *aliveSet {
	a := &aliveSet{alive: make([]bool, n), list: make([]int32, n), count: n}
	for i := range a.alive {
		a.alive[i] = true
		a.list[i] = int32(i)
	}
	return a
}

func (a *aliveSet) remove(p int) {
	if !a.alive[p] {
		return
	}
	a.alive[p] = false
	a.count--
	i := sort.Search(len(a.list), func(i int) bool { return a.list[i] >= int32(p) })
	a.list = append(a.list[:i], a.list[i+1:]...)
}

func (a *aliveSet) members() []int {
	out := make([]int, len(a.list))
	for i, p := range a.list {
		out[i] = int(p)
	}
	return out
}
