package core

import (
	"context"
	"testing"
)

// The adaptive LazyBatch controller (negative option) is stats-tolerant
// equivalent to every fixed batch size: identical selected set, FinalARR
// and iteration counters at any worker count; only work counters follow
// the controller's batch trajectory.
func TestAdaptiveLazyBatchEquivalence(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 90, 4, 400, 12
	for _, seed := range []uint64{3, 19, 57} {
		ref, refStats, err := GreedyShrink(ctx, lazyBatchInstance(t, seed, n, d, N, 1, 0), k, StrategyLazy)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4, 8} {
			in := lazyBatchInstance(t, seed, n, d, N, workers, -1)
			if !in.LazyBatchAdaptive() {
				t.Fatal("negative LazyBatch did not enable the adaptive controller")
			}
			set, stats, err := GreedyShrink(ctx, in, k, StrategyLazy)
			if err != nil {
				t.Fatalf("seed=%d workers=%d: %v", seed, workers, err)
			}
			sameSet(t, "adaptive", set, ref)
			if stats.FinalARR != refStats.FinalARR {
				t.Fatalf("seed=%d workers=%d: FinalARR %v != %v", seed, workers, stats.FinalARR, refStats.FinalARR)
			}
			if stats.Iterations != refStats.Iterations || stats.CandidateTotal != refStats.CandidateTotal {
				t.Fatalf("seed=%d workers=%d: iteration counters diverged: %+v vs %+v",
					seed, workers, stats, refStats)
			}
			if stats.LazyBatch < adaptiveMinBatch || stats.LazyBatch > adaptiveMaxBatch {
				t.Fatalf("seed=%d: final controller batch %d outside [%d, %d]",
					seed, stats.LazyBatch, adaptiveMinBatch, adaptiveMaxBatch)
			}
			if stats.SpeculativeHits+stats.SpeculativeWaste != stats.SpeculativeEvals {
				t.Fatalf("seed=%d: hits %d + waste %d != evals %d",
					seed, stats.SpeculativeHits, stats.SpeculativeWaste, stats.SpeculativeEvals)
			}
			if stats.Evaluations+stats.EvalSkipped != refStats.Evaluations+refStats.EvalSkipped {
				t.Fatalf("seed=%d: evaluations+skips changed: %d+%d vs %d+%d",
					seed, stats.Evaluations, stats.EvalSkipped, refStats.Evaluations, refStats.EvalSkipped)
			}
		}
	}
}

// The controller is deterministic and live: two adaptive runs on the
// same instance report the same decision counters; on a smooth instance
// (stable queue head, so speculation is mostly waste) it must shrink
// away from the start size and end up doing less evaluation work than a
// fixed batch pinned at the start size. Fixed batch sizes never record
// controller decisions.
func TestAdaptiveControllerCounters(t *testing.T) {
	ctx := context.Background()
	const n, d, N, k = 120, 4, 500, 10
	a1, s1, err := GreedyShrink(ctx, lazyBatchInstance(t, 11, n, d, N, 4, -1), k, StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	a2, s2, err := GreedyShrink(ctx, lazyBatchInstance(t, 11, n, d, N, 4, -1), k, StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "adaptive-repeat", a2, a1)
	if s1.AdaptiveGrows != s2.AdaptiveGrows || s1.AdaptiveShrinks != s2.AdaptiveShrinks || s1.LazyBatch != s2.LazyBatch {
		t.Fatalf("controller decisions not deterministic: %+v vs %+v", s1, s2)
	}
	if s1.AdaptiveShrinks == 0 {
		t.Fatalf("controller never shrank on a smooth instance; the adaptive path is inert: %+v", s1)
	}
	_, fixed, err := GreedyShrink(ctx, lazyBatchInstance(t, 11, n, d, N, 4, adaptiveStartBatch), k, StrategyLazy)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.AdaptiveGrows != 0 || fixed.AdaptiveShrinks != 0 {
		t.Fatalf("fixed batch recorded controller decisions: %+v", fixed)
	}
	if s1.Evaluations >= fixed.Evaluations {
		t.Fatalf("adaptive run evaluated %d, fixed B=%d run %d; controller saved nothing",
			s1.Evaluations, adaptiveStartBatch, fixed.Evaluations)
	}
}
