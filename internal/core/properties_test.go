package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/utility"
)

// sampledTableInstance builds a small instance with explicit random
// utility tables so properties are checked on fully general (not just
// linear) utility functions.
func sampledTableInstance(g *rng.RNG, n, N int) *Instance {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i)} // coordinates unused by Table funcs
	}
	funcs := make([]utility.Func, N)
	for u := 0; u < N; u++ {
		tu := make([]float64, n)
		for p := range tu {
			tu[p] = g.Float64()
		}
		funcs[u] = utility.Table{U: tu}
	}
	in, err := NewInstance(pts, funcs, Options{})
	if err != nil {
		panic(err)
	}
	return in
}

// Property (Lemma 1): arr is monotonically decreasing — adding any point
// never increases the sampled average regret ratio.
func TestARRMonotoneDecreasingProperty(t *testing.T) {
	g := rng.New(101)
	f := func(seed uint32) bool {
		n := int(seed%8) + 3
		N := int(seed/8%16) + 4
		in := sampledTableInstance(g, n, N)
		// Random non-empty S ⊊ D and p ∉ S.
		var S []int
		for p := 0; p < n-1; p++ {
			if g.Float64() < 0.5 {
				S = append(S, p)
			}
		}
		if len(S) == 0 {
			S = []int{0}
		}
		p := n - 1
		arrS, err1 := in.ARR(S)
		arrSp, err2 := in.ARR(append(append([]int{}, S...), p))
		if err1 != nil || err2 != nil {
			return false
		}
		return arrSp <= arrS+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 2): arr is supermodular —
// arr(S∪{p}) − arr(S) ≤ arr(T∪{p}) − arr(T) for S ⊆ T, p ∉ T.
func TestARRSupermodularProperty(t *testing.T) {
	g := rng.New(202)
	f := func(seed uint32) bool {
		n := int(seed%8) + 3
		N := int(seed/8%16) + 4
		in := sampledTableInstance(g, n, N)
		var S, T []int
		for p := 0; p < n-1; p++ {
			r := g.Float64()
			if r < 0.3 {
				S = append(S, p)
				T = append(T, p)
			} else if r < 0.6 {
				T = append(T, p)
			}
		}
		if len(S) == 0 {
			S = append(S, 0)
			found := false
			for _, q := range T {
				if q == 0 {
					found = true
				}
			}
			if !found {
				T = append([]int{0}, T...)
			}
		}
		p := n - 1
		arrS, e1 := in.ARR(S)
		arrT, e2 := in.ARR(T)
		arrSp, e3 := in.ARR(append(append([]int{}, S...), p))
		arrTp, e4 := in.ARR(append(append([]int{}, T...), p))
		if e1 != nil || e2 != nil || e3 != nil || e4 != nil {
			return false
		}
		return (arrSp - arrS) <= (arrTp-arrT)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: steepness lies in [0, 1] and the Theorem 3 bound is ≥ 1.
func TestSteepnessProperty(t *testing.T) {
	g := rng.New(303)
	f := func(seed uint32) bool {
		n := int(seed%8) + 3
		N := int(seed/8%16) + 4
		in := sampledTableInstance(g, n, N)
		s, err := Steepness(in)
		if err != nil {
			return false
		}
		if s < 0 || s > 1 {
			return false
		}
		return ApproxRatioBound(s) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestApproxRatioBoundEdges(t *testing.T) {
	if got := ApproxRatioBound(0); got != 1 {
		t.Fatalf("bound(0) = %v", got)
	}
	if got := ApproxRatioBound(-0.5); got != 1 {
		t.Fatalf("bound(-0.5) = %v", got)
	}
	if !math.IsInf(ApproxRatioBound(1), 1) {
		t.Fatal("bound(1) must be +Inf")
	}
	// Monotone increasing in s.
	prev := 1.0
	for s := 0.05; s < 1; s += 0.05 {
		b := ApproxRatioBound(s)
		if b < prev {
			t.Fatalf("bound not monotone at s=%v", s)
		}
		prev = b
	}
}

func TestSteepnessErrors(t *testing.T) {
	if _, err := Steepness(nil); err == nil {
		t.Fatal("nil instance must error")
	}
	g := rng.New(1)
	in := sampledTableInstance(g, 1, 3)
	if _, err := Steepness(in); err == nil {
		t.Fatal("single point must error")
	}
}
