package fam_test

import (
	"context"
	"fmt"
	"log"

	fam "github.com/regretlab/fam"
)

// ExampleSelect shows the core workflow: generate (or load) a dataset,
// declare what is known about users, and select the representative set.
func ExampleSelect() {
	ctx := context.Background()
	hotels, err := fam.Hotels(200, 42)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(hotels.Dim())
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := fam.Select(ctx, fam.Query{Data: hotels, Dist: dist, K: 5, Seed: 1, SampleSize: 2000}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.Indices), "hotels selected")
	fmt.Println("arr below 5%:", res.Metrics.ARR < 0.05)
	// Output:
	// 5 hotels selected
	// arr below 5%: true
}

// ExampleEvaluate measures the quality of a hand-picked selection.
func ExampleEvaluate() {
	ctx := context.Background()
	hotels, err := fam.Hotels(100, 7)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(hotels.Dim())
	if err != nil {
		log.Fatal(err)
	}
	// "Just show the first three rows" is a bad strategy:
	naive, err := fam.Evaluate(ctx, fam.Query{
		Data: hotels, Dist: dist, Seed: 1, SampleSize: 2000, ExplicitSet: []int{0, 1, 2},
	}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := fam.Select(ctx, fam.Query{Data: hotels, Dist: dist, K: 3, Seed: 1, SampleSize: 2000}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("optimized beats naive:", res.Metrics.ARR < naive.ARR)
	// Output:
	// optimized beats naive: true
}

// ExampleSelect_exactDiscrete evaluates a finite user population exactly
// (the paper's Appendix A): four known users with explicit per-point
// utilities, no sampling involved.
func ExampleSelect_exactDiscrete() {
	ctx := context.Background()
	ds := &fam.Dataset{
		Name:   "hotels",
		Labels: []string{"Holiday Inn", "Shangri la", "Intercontinental", "Hilton"},
		Points: [][]float64{{0}, {1}, {2}, {3}},
	}
	users, err := fam.TableUsers([][]float64{
		{0.9, 0.7, 0.2, 0.4}, // Alex
		{0.6, 1.0, 0.5, 0.2}, // Jerry
		{0.2, 0.6, 0.3, 1.0}, // Tom
		{0.1, 0.2, 1.0, 0.9}, // Sam
	}, []float64{0.25, 0.25, 0.25, 0.25}, false)
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := fam.Select(ctx, fam.Query{
		Data: ds, Dist: users, K: 2, Algorithm: fam.BruteForce, ExactDiscrete: true,
	}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Labels)
	fmt.Printf("exact average regret ratio: %.4f\n", res.Metrics.ARR)
	// Output:
	// [Shangri la Hilton]
	// exact average regret ratio: 0.0806
}

// ExampleSampleSize reproduces rows of the paper's Table V.
func ExampleSampleSize() {
	n, err := fam.SampleSize(0.01, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(n)
	// Output:
	// 69078
}
