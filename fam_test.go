package fam

import (
	"bytes"
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/rng"
)

func hotelSetup(t *testing.T) (*Dataset, Distribution) {
	t.Helper()
	ds, err := Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(ds.Dim())
	if err != nil {
		t.Fatal(err)
	}
	return ds, dist
}

func TestSelectValidation(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	if _, err := SelectWithOptions(ctx, nil, dist, SelectOptions{K: 3}); err == nil {
		t.Fatal("nil dataset must error")
	}
	if _, err := SelectWithOptions(ctx, ds, nil, SelectOptions{K: 3}); err == nil {
		t.Fatal("nil distribution must error")
	}
	if _, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 0}); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 1000}); err == nil {
		t.Fatal("K>n must error")
	}
	wrongDim, _ := UniformLinear(3)
	if _, err := SelectWithOptions(ctx, ds, wrongDim, SelectOptions{K: 3}); err == nil {
		t.Fatal("dimension mismatch must error")
	}
	if _, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 3, Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm must error")
	}
	if _, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 3, Epsilon: 2}); err == nil {
		t.Fatal("bad epsilon must error")
	}
}

func TestSelectDefaultPipeline(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 5 || len(res.Labels) != 5 {
		t.Fatalf("result %+v", res)
	}
	for i := 1; i < len(res.Indices); i++ {
		if res.Indices[i] <= res.Indices[i-1] {
			t.Fatalf("indices not ascending: %v", res.Indices)
		}
	}
	if res.Metrics.ARR < 0 || res.Metrics.ARR > 1 {
		t.Fatalf("ARR = %v", res.Metrics.ARR)
	}
	// Monotone linear Θ => skyline preprocessing engaged.
	if res.SkylineSize >= ds.N() {
		t.Fatalf("skyline preprocessing skipped: %d", res.SkylineSize)
	}
	if res.ExactARR >= 0 {
		t.Fatal("ExactARR should be unset for sampled algorithms")
	}
	if res.Stats.Iterations == 0 {
		t.Fatal("shrink stats missing")
	}
	// Labels match the dataset.
	for i, idx := range res.Indices {
		if res.Labels[i] != ds.Label(idx) {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestSelectDeterminism(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	a, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("same seed must reproduce the selection")
		}
	}
	if a.Metrics.ARR != b.Metrics.ARR {
		t.Fatal("same seed must reproduce metrics")
	}
}

func TestSelectAllAlgorithmsRun(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	algos := []Algorithm{GreedyShrink, GreedyShrinkLazy, GreedyShrinkNaive, BruteForce, MRRGreedy, SkyDom, KHit, GreedyAdd}
	arr := map[Algorithm]float64{}
	for _, a := range algos {
		res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 3, Seed: 5, Algorithm: a, SampleSize: 400})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(res.Indices) != 3 {
			t.Fatalf("%v: %v", a, res.Indices)
		}
		arr[a] = res.Metrics.ARR
	}
	// The greedy variants agree with each other and with brute force being
	// no worse than them.
	if arr[GreedyShrink] != arr[GreedyShrinkLazy] || arr[GreedyShrink] != arr[GreedyShrinkNaive] {
		t.Fatalf("greedy variants disagree: %v", arr)
	}
	if arr[BruteForce] > arr[GreedyShrink]+1e-12 {
		t.Fatalf("brute force %v worse than greedy %v", arr[BruteForce], arr[GreedyShrink])
	}
}

func TestSelectDP2D(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(400, 2, Independent, 11)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformBoxLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 3, Seed: 1, Algorithm: DP2D, SampleSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactARR < 0 {
		t.Fatal("DP must report exact ARR")
	}
	// Sampled metric should be close to the exact value.
	if math.Abs(res.ExactARR-res.Metrics.ARR) > 0.03 {
		t.Fatalf("exact %v vs sampled %v", res.ExactARR, res.Metrics.ARR)
	}
	// DP is optimal: no sampled algorithm may do meaningfully better.
	gs, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 3, Seed: 1, Algorithm: GreedyShrink, SampleSize: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if gs.Metrics.ARR < res.Metrics.ARR-0.03 {
		t.Fatalf("greedy %v beat DP optimum %v by too much", gs.Metrics.ARR, res.Metrics.ARR)
	}
}

func TestSelectNonMonotoneSkipsSkyline(t *testing.T) {
	ctx := context.Background()
	// Latent pipeline: non-monotone Θ.
	rd, err := dataset.SimulatedRatings(60, 50, 3, 3, 0.5, 0.05, 13)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := LearnDistribution(rd.Ratings, RatingsPipelineConfig{
		NumUsers: rd.NumUsers, NumItems: rd.NumItems, Rank: 3, Components: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pipe.TrainRMSE <= 0 {
		t.Fatalf("rmse = %v", pipe.TrainRMSE)
	}
	res, err := SelectWithOptions(ctx, pipe.Items, pipe.Dist, SelectOptions{K: 5, Seed: 3, SampleSize: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkylineSize != pipe.Items.N() {
		t.Fatalf("skyline must be skipped for non-monotone Θ: %d vs %d", res.SkylineSize, pipe.Items.N())
	}
	if len(res.Indices) != 5 {
		t.Fatalf("indices %v", res.Indices)
	}
	// The learned Θ is non-degenerate: selection should satisfy most users.
	if res.Metrics.ARR > 0.4 {
		t.Fatalf("latent ARR suspiciously high: %v", res.Metrics.ARR)
	}
}

func TestSelectTableDistribution(t *testing.T) {
	ctx := context.Background()
	// The paper's Table I: 4 hotels, 4 users.
	tables := [][]float64{
		{0.9, 0.7, 0.2, 0.4},
		{0.6, 1, 0.5, 0.2},
		{0.2, 0.6, 0.3, 1},
		{0.1, 0.2, 1, 0.9},
	}
	dist, err := TableUsers(tables, []float64{1, 1, 1, 1}, false)
	if err != nil {
		t.Fatal(err)
	}
	ds := &Dataset{
		Name:   "hotels-tableI",
		Labels: []string{"Holiday Inn", "Shangri la", "Intercontinental", "Hilton"},
		Points: [][]float64{{0}, {1}, {2}, {3}},
	}
	res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 2, Seed: 4, SampleSize: 4000, Algorithm: BruteForce})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 2 {
		t.Fatalf("indices %v", res.Indices)
	}
	// {Shangri la, Intercontinental} covers Jerry+Sam exactly and is the
	// best pair: verify via Evaluate comparisons against all pairs.
	best := res.Metrics.ARR
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			m, err := EvaluateWithOptions(ctx, ds, dist, []int{a, b}, SelectOptions{Seed: 4, SampleSize: 4000})
			if err != nil {
				t.Fatal(err)
			}
			if m.ARR < best-1e-9 {
				t.Fatalf("pair (%d,%d) arr %v beats brute force %v", a, b, m.ARR, best)
			}
		}
	}
}

func TestEvaluateValidation(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	if _, err := EvaluateWithOptions(ctx, nil, dist, []int{0}, SelectOptions{}); err == nil {
		t.Fatal("nil dataset must error")
	}
	if _, err := EvaluateWithOptions(ctx, ds, dist, nil, SelectOptions{}); err == nil {
		t.Fatal("empty set must error")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := EvaluateWithOptions(cctx, ds, dist, []int{0}, SelectOptions{}); err == nil {
		t.Fatal("canceled context must error")
	}
}

func TestSampleSizeReexport(t *testing.T) {
	n, err := SampleSize(0.1, 0.1)
	if err != nil || n != 691 {
		t.Fatalf("SampleSize = %d, %v", n, err)
	}
}

func TestCSVRoundTripThroughFacade(t *testing.T) {
	ds, _ := Hotels(10, 2)
	var buf bytes.Buffer
	if err := SaveCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf, "again")
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != ds.N() || back.Dim() != ds.Dim() {
		t.Fatal("round trip shape mismatch")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		GreedyShrink: "greedy-shrink", GreedyShrinkLazy: "greedy-shrink-lazy",
		GreedyShrinkNaive: "greedy-shrink-naive", DP2D: "dp", BruteForce: "brute-force",
		MRRGreedy: "mrr-greedy", SkyDom: "sky-dom", KHit: "k-hit",
		GreedyAdd: "greedy-add", Algorithm(99): "unknown",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}

func TestSelectCESDistribution(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(150, 4, Independent, 21)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := CESUniform(4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 4, Seed: 2, SampleSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	// CES is monotone: skyline preprocessing must engage.
	if res.SkylineSize >= ds.N() {
		t.Fatalf("skyline not applied for CES: %d", res.SkylineSize)
	}
	// MRRGreedy under CES must fall back to the sampled variant (and run).
	res2, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 4, Seed: 2, SampleSize: 500, Algorithm: MRRGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Indices) != 4 {
		t.Fatalf("mrr-greedy CES: %v", res2.Indices)
	}
}

func TestSelectDisableSkyline(t *testing.T) {
	ctx := context.Background()
	ds, dist := hotelSetup(t)
	res, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 3, Seed: 1, DisableSkyline: true, SampleSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	if res.SkylineSize != ds.N() {
		t.Fatalf("skyline applied despite DisableSkyline: %d", res.SkylineSize)
	}
}

// Skyline preprocessing must not change the selected set (monotone Θ).
func TestSkylineRestrictionPreservesResult(t *testing.T) {
	ctx := context.Background()
	g := rng.New(5)
	_ = g
	ds, err := Synthetic(200, 3, Independent, 31)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(3)
	if err != nil {
		t.Fatal(err)
	}
	withSky, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 5, Seed: 8, SampleSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	without, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: 5, Seed: 8, SampleSize: 600, DisableSkyline: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withSky.Indices) != len(without.Indices) {
		t.Fatalf("%v vs %v", withSky.Indices, without.Indices)
	}
	for i := range withSky.Indices {
		if withSky.Indices[i] != without.Indices[i] {
			t.Fatalf("skyline restriction changed the answer: %v vs %v", withSky.Indices, without.Indices)
		}
	}
	if math.Abs(withSky.Metrics.ARR-without.Metrics.ARR) > 1e-12 {
		t.Fatalf("arr differs: %v vs %v", withSky.Metrics.ARR, without.Metrics.ARR)
	}
}
