package fam

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// allAlgorithms is every member of the Algorithm enum; the determinism
// and cancellation suites below must cover each one.
var allAlgorithms = []Algorithm{
	GreedyShrink, GreedyShrinkLazy, GreedyShrinkNaive,
	DP2D, BruteForce, MRRGreedy, SkyDom, KHit, GreedyAdd,
}

// Every algorithm must return bit-identical selections and Metrics when
// the worker bound changes: the parallel query engine shards independent
// evaluations and merges with a lowest-index tie-break, so Parallelism is
// a pure throughput knob. The 2-d dataset keeps DP2D and BruteForce in
// range; UniformLinear(2) matches DP2D's model.
func TestSelectParallelMatchesSerialAllAlgorithms(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(60, 2, Independent, 3)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range allAlgorithms {
		opts := SelectOptions{K: 3, Seed: 9, SampleSize: 300, Algorithm: algo, Parallelism: 1}
		ref, err := SelectWithOptions(ctx, ds, dist, opts)
		if err != nil {
			t.Fatalf("%s serial: %v", algo, err)
		}
		for _, workers := range []int{2, 4, 0} {
			opts.Parallelism = workers
			got, err := SelectWithOptions(ctx, ds, dist, opts)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", algo, workers, err)
			}
			if !reflect.DeepEqual(got.Indices, ref.Indices) {
				t.Fatalf("%s workers=%d: indices %v != %v", algo, workers, got.Indices, ref.Indices)
			}
			if !reflect.DeepEqual(got.Metrics, ref.Metrics) {
				t.Fatalf("%s workers=%d: metrics diverged:\n%+v\n%+v", algo, workers, got.Metrics, ref.Metrics)
			}
		}
	}
}

// The sampled MRR-Greedy path (non-linear Θ) parallelizes over users
// rather than LP candidates; it must be deterministic too.
func TestSelectParallelSampledMRR(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(80, 3, Anticorrelated, 5)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := CESUniform(3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectOptions{K: 4, Seed: 2, SampleSize: 400, Algorithm: MRRGreedy, Parallelism: 1}
	ref, err := SelectWithOptions(ctx, ds, dist, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 0} {
		opts.Parallelism = workers
		got, err := SelectWithOptions(ctx, ds, dist, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Indices, ref.Indices) || !reflect.DeepEqual(got.Metrics, ref.Metrics) {
			t.Fatalf("workers=%d: result diverged", workers)
		}
	}
}

// The three GREEDY-SHRINK strategies are interchangeable implementations
// of Algorithm 1 and must agree end-to-end across seeds and datasets.
func TestSelectStrategiesAgree(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []uint64{1, 4} {
		ds, err := Synthetic(70, 4, Independent, seed)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := UniformLinear(4)
		if err != nil {
			t.Fatal(err)
		}
		base := SelectOptions{K: 6, Seed: seed, SampleSize: 350}
		base.Algorithm = GreedyShrink
		ref, err := SelectWithOptions(ctx, ds, dist, base)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range []Algorithm{GreedyShrinkLazy, GreedyShrinkNaive} {
			opts := base
			opts.Algorithm = algo
			got, err := SelectWithOptions(ctx, ds, dist, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Indices, ref.Indices) {
				t.Fatalf("seed=%d %s: indices %v != %v", seed, algo, got.Indices, ref.Indices)
			}
			if got.Metrics.ARR != ref.Metrics.ARR {
				t.Fatalf("seed=%d %s: ARR %v != %v", seed, algo, got.Metrics.ARR, ref.Metrics.ARR)
			}
		}
	}
}

// Every solver reachable from Select must return promptly with ctx.Err()
// on a pre-canceled context — including from inside the worker pools,
// which the Parallelism: 4 setting forces onto the parallel paths.
func TestSelectPreCanceledAllAlgorithms(t *testing.T) {
	ds, err := Synthetic(50, 2, Independent, 7)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range allAlgorithms {
		for _, workers := range []int{1, 4} {
			_, err := SelectWithOptions(ctx, ds, dist, SelectOptions{
				K: 3, Seed: 1, SampleSize: 200, Algorithm: algo, Parallelism: workers,
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%s workers=%d: err = %v, want context.Canceled", algo, workers, err)
			}
		}
	}
}
