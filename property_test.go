package fam

import (
	"context"
	"math"
	"testing"

	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/rng"
)

// propertyAlgos is every solver the cross-algorithm invariant harness
// runs. ARR-optimizing algorithms additionally face the random-baseline
// and exact-lower-bound checks; the non-ARR baselines (MRR-Greedy,
// Sky-Dom, K-Hit optimize different objectives) only face the structural
// invariants.
var propertyAlgos = []struct {
	algo        Algorithm
	optimizeARR bool
}{
	{GreedyShrink, true},
	{GreedyShrinkLazy, true},
	{GreedyShrinkNaive, true},
	{GreedyAdd, true},
	{BruteForce, true},
	{DP2D, false}, // exact on the continuous objective, not the sampled one
	{MRRGreedy, false},
	{SkyDom, false},
	{KHit, false},
}

// TestCrossAlgorithmInvariantsProperty is the property-based harness: on
// ~50 small seeded random 2-d instances it checks the invariants every
// algorithm must satisfy —
//
//   - the selection is non-empty, at most K points, with valid unique
//     ascending indices;
//   - the measured ARR lies in [0, 1];
//   - ARR-optimizing heuristics are never worse than the mean ARR of
//     seeded random K-subsets on the same sampled users;
//   - BruteForce (exact on the sampled objective) lower-bounds every
//     other algorithm's sampled ARR;
//   - DP2D (exact on the continuous 2-d objective) lower-bounds every
//     algorithm's exact continuous ARR.
func TestCrossAlgorithmInvariantsProperty(t *testing.T) {
	ctx := context.Background()
	corrs := []Correlation{Independent, Correlated, Anticorrelated}
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		g := rng.New(seed * 7919)
		n := 8 + g.IntN(7)  // 8..14 keeps BruteForce cheap
		k := 1 + g.IntN(3)  // 1..3
		N := 60 + g.IntN(3) // sampled users

		ds, err := Synthetic(n, 2, corrs[trial%len(corrs)], seed)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := UniformLinear(2)
		if err != nil {
			t.Fatal(err)
		}
		opts := SelectOptions{K: k, Seed: seed, SampleSize: N}

		// Random-set baseline on the same sampled users: the mean ARR of
		// ten uniformly drawn K-subsets (seeded — the harness is
		// deterministic). A single draw can get lucky on tiny instances;
		// the mean is what an optimizer must beat.
		var randomARR float64
		const draws = 10
		for d := 0; d < draws; d++ {
			m, err := EvaluateWithOptions(ctx, ds, dist, randomSubset(g, n, k), opts)
			if err != nil {
				t.Fatal(err)
			}
			randomARR += m.ARR
		}
		randomARR /= draws

		results := make(map[Algorithm]*LegacyResult, len(propertyAlgos))
		for _, pa := range propertyAlgos {
			o := opts
			o.Algorithm = pa.algo
			res, err := SelectWithOptions(ctx, ds, dist, o)
			if err != nil {
				t.Fatalf("trial %d (n=%d k=%d): %s: %v", trial, n, k, pa.algo, err)
			}
			results[pa.algo] = res

			// Structural invariants.
			if len(res.Indices) == 0 || len(res.Indices) > k {
				t.Fatalf("trial %d %s: |set| = %d, want in (0, %d]", trial, pa.algo, len(res.Indices), k)
			}
			seen := make(map[int]bool, len(res.Indices))
			prev := -1
			for _, idx := range res.Indices {
				if idx < 0 || idx >= n {
					t.Fatalf("trial %d %s: index %d out of range [0,%d)", trial, pa.algo, idx, n)
				}
				if seen[idx] {
					t.Fatalf("trial %d %s: duplicate index %d in %v", trial, pa.algo, idx, res.Indices)
				}
				if idx <= prev {
					t.Fatalf("trial %d %s: indices not ascending: %v", trial, pa.algo, res.Indices)
				}
				seen[idx] = true
				prev = idx
			}
			if arr := res.Metrics.ARR; arr < 0 || arr > 1 || math.IsNaN(arr) {
				t.Fatalf("trial %d %s: ARR = %v outside [0,1]", trial, pa.algo, arr)
			}

			// ARR-optimizing algorithms must beat (or tie) the mean random
			// set.
			if pa.optimizeARR && res.Metrics.ARR > randomARR+1e-12 {
				t.Fatalf("trial %d %s: ARR %v worse than random baseline %v (set %v)",
					trial, pa.algo, res.Metrics.ARR, randomARR, res.Indices)
			}
		}

		// BruteForce is the exact optimum of the sampled objective: it
		// lower-bounds every algorithm's sampled ARR (all metrics are
		// measured on the same sampled users).
		bfARR := results[BruteForce].Metrics.ARR
		for _, pa := range propertyAlgos {
			if got := results[pa.algo].Metrics.ARR; got < bfARR-1e-9 {
				t.Fatalf("trial %d: %s sampled ARR %v beats BruteForce %v",
					trial, pa.algo, got, bfARR)
			}
		}

		// DP2D is the exact optimum of the continuous 2-d objective: its
		// exact ARR lower-bounds the exact ARR of every selection (padded
		// DP selections can be shorter than k; compare only full-size sets
		// of other algorithms, which padding can only improve).
		dpExact := results[DP2D].ExactARR
		if dpExact < 0 {
			t.Fatalf("trial %d: DP2D did not report an exact ARR", trial)
		}
		for _, pa := range propertyAlgos {
			exact, err := geom.ExactARR(ds.Points, results[pa.algo].Indices)
			if err != nil {
				t.Fatal(err)
			}
			if exact < dpExact-1e-9 {
				t.Fatalf("trial %d: %s exact ARR %v beats DP2D optimum %v (set %v)",
					trial, pa.algo, exact, dpExact, results[pa.algo].Indices)
			}
		}
	}
}

// TestCoresetARRBoundProperty is the ε-kernel quality harness: on ~50
// seeded random instances (sizes where the prepass actually prunes) the
// coreset-enabled run of every GREEDY-SHRINK-family solver must stay
// within CoresetEps of the unpruned run's ARR — the kernel guarantee —
// while reporting the pruned candidate count and, because every user's
// argmax survives the prepass, metrics that remain database-level
// quantities.
func TestCoresetARRBoundProperty(t *testing.T) {
	ctx := context.Background()
	corrs := []Correlation{Independent, Correlated, Anticorrelated}
	algos := []Algorithm{GreedyShrink, GreedyShrinkLazy, GreedyAdd}
	const trials = 50
	const eps = 0.1
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial + 1)
		g := rng.New(seed * 104729)
		n := 60 + g.IntN(60)   // 60..119 points
		k := 2 + g.IntN(4)     // 2..5
		N := 80 + g.IntN(40)   // sampled users
		d := 2 + trial%2       // 2-d and 3-d instances
		algo := algos[trial%len(algos)]

		ds, err := Synthetic(n, d, corrs[trial%len(corrs)], seed)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := UniformLinear(d)
		if err != nil {
			t.Fatal(err)
		}
		base := Query{Data: ds, Dist: dist, K: k, Algorithm: algo, Seed: seed, SampleSize: N}
		off, _, err := Select(ctx, base, Exec{})
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d %s): coreset off: %v", trial, n, k, algo, err)
		}
		if off.CoresetSize != -1 {
			t.Fatalf("trial %d: coreset-off run reports CoresetSize %d, want -1", trial, off.CoresetSize)
		}
		withCS := base
		withCS.Coreset, withCS.CoresetEps = true, eps
		on, _, err := Select(ctx, withCS, Exec{})
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d %s): coreset on: %v", trial, n, k, algo, err)
		}
		if on.CoresetSize <= 0 || on.CoresetSize > on.SkylineSize {
			t.Fatalf("trial %d: implausible CoresetSize %d (skyline %d)", trial, on.CoresetSize, on.SkylineSize)
		}
		if on.SkylineSize != off.SkylineSize {
			t.Fatalf("trial %d: skyline size moved with the coreset knob: %d vs %d",
				trial, on.SkylineSize, off.SkylineSize)
		}
		if len(on.Indices) != len(off.Indices) {
			t.Fatalf("trial %d %s: |set| %d vs %d", trial, algo, len(on.Indices), len(off.Indices))
		}
		// The kernel guarantee: pruning costs at most eps of ARR.
		if on.Metrics.ARR > off.Metrics.ARR+eps {
			t.Fatalf("trial %d %s (n=%d k=%d): coreset ARR %v exceeds unpruned %v by more than eps=%v (candidates %d of %d)",
				trial, algo, n, k, on.Metrics.ARR, off.Metrics.ARR, eps, on.CoresetSize, on.SkylineSize)
		}
	}
}

// randomSubset draws k distinct indices from [0, n) uniformly.
func randomSubset(g *rng.RNG, n, k int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.IntN(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:k]
}
