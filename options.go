package fam

import (
	"errors"
	"fmt"
	"strings"

	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/utility"
)

// ErrBadOptions is returned when a Query (or legacy SelectOptions) is
// invalid: K out of bounds, Epsilon or Sigma outside (0, 1), a negative
// SampleSize, an unknown Algorithm, a distribution whose dimension does
// not match the dataset, or ExactDiscrete with a non-discrete
// distribution. Match it with errors.Is; the wrapped message names the
// offending field. Bad requests fail here — before any sampling,
// preprocessing, or cache traffic.
var ErrBadOptions = errors.New("fam: bad options")

// normalized is the validated, resolved form of a Query that Select,
// Evaluate, and the Engine all work from: sample sizes are derived, the
// exact-discrete distribution is unwrapped, and the skyline decision is
// made once.
type normalized struct {
	// sampleSize is the resolved number of utility functions to draw
	// (0 when the instance is exact-discrete).
	sampleSize int
	// discrete is the unwrapped distribution when ExactDiscrete is set.
	discrete *utility.Discrete
	// useSkyline reports whether preprocessing restricts candidates to
	// the skyline (monotone Θ, not disabled, not an index-based or
	// skyline-operating algorithm).
	useSkyline bool
	// useCoreset reports whether the ε-kernel candidate prepass runs
	// after the skyline restriction; coresetEps is its resolved
	// tolerance (DefaultCoresetEps when the query left it zero).
	useCoreset bool
	coresetEps float64
}

// DefaultCoresetEps is the kernel tolerance used when a query enables
// Coreset without setting CoresetEps: candidates within 5% of some
// user's best utility survive the prepass — in practice a few hundred
// survivors out of 10⁶ points, at a worst-case ARR cost of the same 5%.
const DefaultCoresetEps = 0.05

// resolveCoresetEps validates and defaults the coreset tolerance:
// zero means DefaultCoresetEps; anything outside [0, 1) is rejected
// (eps ≥ 1 would keep every candidate whose utility is positive for
// nobody's benefit, and a negative tolerance is meaningless).
func resolveCoresetEps(eps float64) (float64, error) {
	if eps == 0 {
		return DefaultCoresetEps, nil
	}
	if eps < 0 || eps >= 1 || eps != eps {
		return 0, fmt.Errorf("%w: CoresetEps must be in [0, 1), got %g", ErrBadOptions, eps)
	}
	return eps, nil
}

// normalizeQuery validates q against the dataset and distribution and
// resolves the derived quantities. needK distinguishes selection queries
// (K and Algorithm must be valid) from evaluation queries (both
// ignored). Every rejection wraps ErrBadOptions except nil arguments
// (ErrNilArgument) and dataset corruption (the dataset's own error).
func normalizeQuery(ds *Dataset, dist Distribution, q Query, needK bool) (normalized, error) {
	if ds == nil || dist == nil {
		return normalized{}, ErrNilArgument
	}
	if err := ds.Validate(); err != nil {
		return normalized{}, err
	}
	return deriveQuery(ds, dist, q, needK)
}

// deriveQuery is normalizeQuery against an already-validated dataset:
// the batch planner keys every member with it, skipping the O(n·d)
// structural re-validation that Register already performed (registered
// datasets are immutable).
func deriveQuery(ds *Dataset, dist Distribution, q Query, needK bool) (normalized, error) {
	var norm normalized
	if needK {
		if q.K <= 0 || q.K > ds.N() {
			return norm, fmt.Errorf("%w: K must satisfy 0 < K <= %d, got %d", ErrBadOptions, ds.N(), q.K)
		}
		if q.Algorithm < GreedyShrink || q.Algorithm > GreedyAdd {
			return norm, fmt.Errorf("%w: unknown algorithm %d", ErrBadOptions, int(q.Algorithm))
		}
	}
	if d := dist.Dim(); d != 0 && d != ds.Dim() {
		return norm, fmt.Errorf("%w: distribution dimension %d != dataset dimension %d", ErrBadOptions, d, ds.Dim())
	}
	if q.ExactDiscrete {
		disc, ok := dist.(*utility.Discrete)
		if !ok {
			return norm, fmt.Errorf("%w: ExactDiscrete requires a discrete distribution, got %s", ErrBadOptions, dist.Name())
		}
		norm.discrete = disc
	} else {
		n, err := resolveSampleSize(q.Epsilon, q.Sigma, q.SampleSize)
		if err != nil {
			return norm, err
		}
		norm.sampleSize = n
	}
	if needK {
		norm.useSkyline = dist.Monotone() && !q.DisableSkyline && dist.Dim() != 0 &&
			q.Algorithm != DP2D && q.Algorithm != SkyDom
	}
	if q.CoresetEps != 0 && !q.Coreset {
		return norm, fmt.Errorf("%w: CoresetEps requires Coreset", ErrBadOptions)
	}
	if q.Coreset {
		if !needK {
			return norm, fmt.Errorf("%w: Coreset applies to selection queries only", ErrBadOptions)
		}
		eps, err := resolveCoresetEps(q.CoresetEps)
		if err != nil {
			return norm, err
		}
		norm.useCoreset, norm.coresetEps = true, eps
	}
	return norm, nil
}

// resolveSampleSize applies Theorem 4's bound to the sampling fields: an
// explicit positive sampleSize wins, otherwise N = ceil(3·ln(1/σ)/ε²)
// with both parameters defaulting to 0.1 (N = 691).
func resolveSampleSize(eps, sigma float64, sampleSize int) (int, error) {
	if sampleSize > 0 {
		return sampleSize, nil
	}
	if sampleSize < 0 {
		return 0, fmt.Errorf("%w: SampleSize must be non-negative, got %d", ErrBadOptions, sampleSize)
	}
	if eps == 0 {
		eps = 0.1
	}
	if sigma == 0 {
		sigma = 0.1
	}
	n, err := sampling.SampleSize(eps, sigma)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	return n, nil
}

// ParseAlgorithm maps an algorithm's short name (as printed by
// Algorithm.String and used in experiment tables, CLI flags, and the
// famserve API) back to the enum, case-insensitively. Unknown names wrap
// ErrBadOptions.
func ParseAlgorithm(s string) (Algorithm, error) {
	name := strings.ToLower(s)
	for a := GreedyShrink; a <= GreedyAdd; a++ {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown algorithm %q", ErrBadOptions, s)
}
