package fam

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestEngineBatchPlannedSharedInstance is the planner's acceptance
// test: 8 queries sharing one preprocessing instance perform exactly
// one representative fill per artifact — 3 prep-cache misses (skyline
// index, sampled functions, built instance) and zero singleflight
// coalescing, because the plan serializes the representative before
// releasing the group instead of racing members into the cache. The
// duplicated fingerprints are answered by exact planned dedups, marked
// Cached exactly as a sequential loop would answer them. Run under
// -race in CI.
func TestEngineBatchPlannedSharedInstance(t *testing.T) {
	fixtures := engineFixtures(t)
	ctx := context.Background()

	// A k-sweep on one dataset at one (seed, N): six distinct members
	// plus two exact duplicates of the k=4 member — 8 queries, one
	// instance key, 2 duplicated fingerprints.
	queries := []Query{
		{Dataset: "hotels", K: 2, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 6, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120}, // dup of [1]
		{Dataset: "hotels", K: 8, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 10, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120}, // dup of [1]
		{Dataset: "hotels", K: 12, Seed: 9, SampleSize: 120},
	}

	// Ground truth: a sequential loop on a fresh engine.
	loopEngine := newTestEngine(t, fixtures)
	want := make([]*Result, len(queries))
	for i, q := range queries {
		res, _, err := loopEngine.Select(ctx, q, Exec{})
		if err != nil {
			t.Fatalf("loop slot %d: %v", i, err)
		}
		want[i] = res
	}

	batchEngine := newTestEngine(t, fixtures)
	slots, err := batchEngine.SelectBatch(ctx, queries, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	for i, slot := range slots {
		if slot.Err != nil {
			t.Fatalf("slot %d: %v", i, slot.Err)
		}
		if len(slot.Result.Indices) != len(want[i].Indices) {
			t.Fatalf("slot %d: %v, want %v", i, slot.Result.Indices, want[i].Indices)
		}
		for j := range want[i].Indices {
			if slot.Result.Indices[j] != want[i].Indices[j] {
				t.Fatalf("slot %d: %v, want %v", i, slot.Result.Indices, want[i].Indices)
			}
		}
		if slot.Result.Metrics.ARR != want[i].Metrics.ARR {
			t.Fatalf("slot %d: ARR %v, want %v", i, slot.Result.Metrics.ARR, want[i].Metrics.ARR)
		}
	}
	// The duplicated members must be marked Cached — a sequential loop
	// answers them from the result cache.
	for _, dup := range []int{3, 6} {
		if !slots[dup].Result.Cached {
			t.Fatalf("duplicate slot %d not marked Cached", dup)
		}
	}

	s := batchEngine.Stats()
	if s.PrepCache.Misses != 3 {
		t.Fatalf("prep fills = %d, want exactly 3 (sky, funcs, instance — one representative pass)", s.PrepCache.Misses)
	}
	if s.PrepCache.Coalesced != 0 {
		t.Fatalf("prep coalesced = %d, want 0: planned batches must not rely on singleflight timing", s.PrepCache.Coalesced)
	}
	if s.PlanGroups != 1 {
		t.Fatalf("plan groups = %d, want 1 (every member shares one instance key)", s.PlanGroups)
	}
	if s.PlannedDedups != 2 {
		t.Fatalf("planned dedups = %d, want exactly 2", s.PlannedDedups)
	}
	// Deduped members never reach the solver: 6 distinct selects.
	if s.Selects != 6 {
		t.Fatalf("selects = %d, want 6 (2 members answered by planned dedup)", s.Selects)
	}
}

// TestEngineBatchPlannedMatchesLoopAtPriorityMix: planned batches are
// bit-identical to the sequential loop at any scheduling mix — low,
// normal, and high classes, with and without (generous) deadlines, at
// several widths. Scheduling orders helper grants; it must never touch
// an answer. Run under -race in CI.
func TestEngineBatchPlannedMatchesLoopAtPriorityMix(t *testing.T) {
	fixtures := engineFixtures(t)
	ctx := context.Background()

	queries := []Query{
		{Dataset: "hotels", K: 3, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120}, // dup
		{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120, Algorithm: GreedyAdd},
		{Dataset: "grid2d", K: 3, Seed: 9, SampleSize: 120, Algorithm: DP2D},
		{Dataset: "tiny", Seed: 9, SampleSize: 120, ExplicitSet: []int{0, 3, 5}},
		{Dataset: "tiny", Seed: 9, SampleSize: 120, ExplicitSet: []int{0, 3, 5}}, // dup eval
		{Dataset: "nope", K: 3},
	}

	loopEngine := newTestEngine(t, fixtures)
	wantRes := make([]*Result, len(queries))
	wantErr := make([]error, len(queries))
	for i, q := range queries {
		if q.ExplicitSet != nil {
			m, err := loopEngine.Evaluate(ctx, q, Exec{})
			if err != nil {
				wantErr[i] = err
				continue
			}
			wantRes[i] = &Result{Metrics: m}
			continue
		}
		wantRes[i], _, wantErr[i] = loopEngine.Select(ctx, q, Exec{})
	}

	execs := []Exec{
		{Priority: PriorityLow},
		{Priority: PriorityHigh, Parallelism: 2},
		{Priority: PriorityNormal, Deadline: time.Now().Add(time.Hour)},
		{Priority: PriorityLow, Deadline: time.Now().Add(time.Hour), Parallelism: 1},
	}
	for ei, exec := range execs {
		batchEngine := newTestEngine(t, fixtures)
		slots, err := batchEngine.SelectBatch(ctx, queries, exec)
		if err != nil {
			t.Fatal(err)
		}
		for i, slot := range slots {
			label := fmt.Sprintf("exec=%d slot=%d", ei, i)
			if wantErr[i] != nil {
				if slot.Err == nil || slot.Err.Error() != wantErr[i].Error() {
					t.Fatalf("%s: err = %v, want %v", label, slot.Err, wantErr[i])
				}
				continue
			}
			if slot.Err != nil {
				t.Fatalf("%s: unexpected error %v", label, slot.Err)
			}
			if queries[i].ExplicitSet != nil {
				if slot.Result.Metrics.ARR != wantRes[i].Metrics.ARR {
					t.Fatalf("%s: eval ARR %v, want %v", label, slot.Result.Metrics.ARR, wantRes[i].Metrics.ARR)
				}
				continue
			}
			if len(slot.Result.Indices) != len(wantRes[i].Indices) {
				t.Fatalf("%s: %v, want %v", label, slot.Result.Indices, wantRes[i].Indices)
			}
			for j := range wantRes[i].Indices {
				if slot.Result.Indices[j] != wantRes[i].Indices[j] {
					t.Fatalf("%s: %v, want %v", label, slot.Result.Indices, wantRes[i].Indices)
				}
			}
			if slot.Result.Metrics.ARR != wantRes[i].Metrics.ARR ||
				slot.Result.ExactARR != wantRes[i].ExactARR ||
				slot.Result.SkylineSize != wantRes[i].SkylineSize {
				t.Fatalf("%s: metrics differ from loop", label)
			}
		}
		if s := batchEngine.Stats(); s.PlannedDedups != 2 {
			t.Fatalf("exec=%d: planned dedups = %d, want exactly 2 (one select dup, one eval dup)", ei, s.PlannedDedups)
		}
	}
}

// TestEngineAdmissionShedsExpiredDeadline: a query whose deadline has
// already passed is shed before any solver work — typed ErrShed,
// counted in EngineStats.Shed, and never stored in any cache.
func TestEngineAdmissionShedsExpiredDeadline(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	expired := Exec{Deadline: time.Now().Add(-time.Second)}

	if _, _, err := e.Select(ctx, Query{Dataset: "hotels", K: 3, SampleSize: 100}, expired); !errors.Is(err, ErrShed) {
		t.Fatalf("expired select: %v, want ErrShed", err)
	}
	if _, err := e.Evaluate(ctx, Query{Dataset: "hotels", SampleSize: 100, ExplicitSet: []int{0, 1}}, expired); !errors.Is(err, ErrShed) {
		t.Fatalf("expired evaluate: %v, want ErrShed", err)
	}
	if _, err := e.SelectBatch(ctx, []Query{{Dataset: "hotels", K: 3, SampleSize: 100}}, expired); !errors.Is(err, ErrShed) {
		t.Fatalf("expired batch: %v, want ErrShed", err)
	}
	s := e.Stats()
	if s.Shed != 3 {
		t.Fatalf("shed = %d, want 3", s.Shed)
	}
	if s.Selects != 0 || s.Evaluates != 0 || s.PrepCache.Misses != 0 || s.ResultCache.Misses != 0 {
		t.Fatalf("shed queries touched the engine: %+v", s)
	}

	// A live deadline admits and completes.
	res, _, err := e.Select(ctx, Query{Dataset: "hotels", K: 3, SampleSize: 100},
		Exec{Deadline: time.Now().Add(time.Hour), Priority: PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Indices) != 3 {
		t.Fatalf("admitted select returned %v", res.Indices)
	}

	// One-shot queries apply the same admission.
	fixtures := engineFixtures(t)
	oneShot := Query{Data: fixtures[0].ds, Dist: fixtures[0].dist, K: 3, SampleSize: 100}
	if _, _, err := Select(ctx, oneShot, expired); !errors.Is(err, ErrShed) {
		t.Fatalf("expired one-shot select: %v, want ErrShed", err)
	}
}

// TestExecMaxQueueAdmission pins the queue-depth admission rule at the
// Exec level with a deterministic depth probe.
func TestExecMaxQueueAdmission(t *testing.T) {
	depth := func(d int) func() int { return func() int { return d } }
	if err := (Exec{MaxQueue: 4}).admit(depth(5)); !errors.Is(err, ErrShed) {
		t.Fatalf("depth 5 > MaxQueue 4: %v, want ErrShed", err)
	}
	if err := (Exec{MaxQueue: 4}).admit(depth(4)); err != nil {
		t.Fatalf("depth 4 <= MaxQueue 4 shed: %v", err)
	}
	if err := (Exec{}).admit(depth(1 << 20)); err != nil {
		t.Fatalf("MaxQueue 0 must accept any depth: %v", err)
	}
}

// TestPriorityRoundTrip pins the Priority text forms used by flags,
// JSON, and headers.
func TestPriorityRoundTrip(t *testing.T) {
	for _, p := range []Priority{PriorityLow, PriorityNormal, PriorityHigh} {
		got, err := ParsePriority(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePriority(%q) = %v, %v", p.String(), got, err)
		}
		text, err := p.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back Priority
		if err := back.UnmarshalText(text); err != nil || back != p {
			t.Fatalf("text round-trip of %v: %v, %v", p, back, err)
		}
	}
	if _, err := ParsePriority("urgent"); !errors.Is(err, ErrBadOptions) {
		t.Fatalf("unknown priority: %v", err)
	}
	if p, err := ParsePriority(""); err != nil || p != PriorityNormal {
		t.Fatalf("empty priority: %v, %v", p, err)
	}
}

// TestEngineBatchQueueWaitTelemetry: batch members report the time they
// waited for their plan slot; released members of a group cannot start
// before their representative finished.
func TestEngineBatchQueueWaitTelemetry(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	queries := []Query{
		{Dataset: "hotels", K: 3, Seed: 9, SampleSize: 120},
		{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 120},
	}
	slots, err := e.SelectBatch(ctx, queries, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	for i, slot := range slots {
		if slot.Err != nil {
			t.Fatalf("slot %d: %v", i, slot.Err)
		}
		if slot.Telemetry == nil {
			t.Fatalf("slot %d: no telemetry", i)
		}
		if slot.Telemetry.QueueWait < 0 {
			t.Fatalf("slot %d: negative queue wait %v", i, slot.Telemetry.QueueWait)
		}
	}
	// Direct Selects report their own pool grant waits too (never
	// negative, and never more than the engine-wide grant-wait sum,
	// which additionally covers shared preprocessing builds).
	res, tel, err := e.Select(ctx, Query{Dataset: "hotels", K: 7, Seed: 9, SampleSize: 120}, Exec{})
	if err != nil || res == nil {
		t.Fatal(err)
	}
	if tel.QueueWait < 0 {
		t.Fatalf("direct select reported negative queue wait %v", tel.QueueWait)
	}
	if total := e.Stats().Sched.QueueWait; tel.QueueWait > total {
		t.Fatalf("direct select queue wait %v exceeds the engine-wide sum %v", tel.QueueWait, total)
	}
	// A result-cache hit reports its own execution — a pure lookup runs
	// no fan-outs, so its QueueWait is exactly zero — and preserves the
	// filling execution's Telemetry under Replay instead of claiming the
	// filler's timings as its own.
	res2, tel2, err := e.Select(ctx, Query{Dataset: "hotels", K: 7, Seed: 9, SampleSize: 120}, Exec{})
	if err != nil || !res2.Cached {
		t.Fatalf("warm repeat: cached=%v err=%v", res2 != nil && res2.Cached, err)
	}
	if tel2.QueueWait != 0 {
		t.Fatalf("pure cache hit reported %v of its own queue wait", tel2.QueueWait)
	}
	if tel2.Replay == nil {
		t.Fatal("cache hit carries no Replay telemetry")
	}
	if tel2.Replay.QueueWait != tel.QueueWait || tel2.Replay.Preprocess != tel.Preprocess ||
		tel2.Replay.Query != tel.Query || tel2.Replay.Stats != tel.Stats {
		t.Fatalf("replayed telemetry (%v, %v, %v) != filler's (%v, %v, %v)",
			tel2.Replay.Preprocess, tel2.Replay.Query, tel2.Replay.QueueWait,
			tel.Preprocess, tel.Query, tel.QueueWait)
	}
	if tel.Replay != nil {
		t.Fatal("filling execution must not carry a Replay")
	}
}

// TestEngineBatchMaxQueueAdmittedOnce: MaxQueue admits or sheds the
// batch as a whole; the members of an admitted batch must not shed on
// the queue depth their own siblings create. A tiny bound on an idle
// engine therefore answers every slot.
func TestEngineBatchMaxQueueAdmittedOnce(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	queries := make([]Query, 8)
	for i := range queries {
		queries[i] = Query{Dataset: "hotels", K: 2 + i, Seed: 9, SampleSize: 120}
	}
	slots, err := e.SelectBatch(ctx, queries, Exec{MaxQueue: 1, Parallelism: 8})
	if err != nil {
		t.Fatalf("idle batch with MaxQueue 1 shed whole: %v", err)
	}
	for i, slot := range slots {
		if slot.Err != nil {
			t.Fatalf("slot %d shed by its own siblings: %v", i, slot.Err)
		}
	}
	if s := e.Stats(); s.Shed != 0 {
		t.Fatalf("shed = %d on an idle engine, want 0", s.Shed)
	}
}
