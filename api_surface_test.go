package fam_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPISurface = flag.Bool("update-api-surface", false,
	"rewrite testdata/api_surface.golden from the current source")

// TestAPISurface pins the exported API of the fam and serve packages
// against a golden file, so a PR cannot silently change a public
// signature, drop a deprecated shim, or leak an unintended export. It is
// the offline equivalent of an apidiff/`go doc` diff: every exported
// type (with its exported fields), function, method, const, and var is
// rendered from the AST and compared textually.
//
// After an intentional API change, regenerate with:
//
//	go test -run TestAPISurface -update-api-surface .
func TestAPISurface(t *testing.T) {
	var sb strings.Builder
	for _, pkg := range []struct{ label, dir string }{
		{"package fam", "."},
		{"package serve", "serve"},
	} {
		fmt.Fprintf(&sb, "# %s\n", pkg.label)
		for _, line := range exportedSurface(t, pkg.dir) {
			sb.WriteString(line)
			sb.WriteString("\n")
		}
		sb.WriteString("\n")
	}
	got := sb.String()

	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateAPISurface {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-api-surface to create it): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines, wantLines := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	gotSet, wantSet := map[string]bool{}, map[string]bool{}
	for _, l := range gotLines {
		gotSet[l] = true
	}
	for _, l := range wantLines {
		wantSet[l] = true
	}
	var added, removed []string
	for _, l := range gotLines {
		if !wantSet[l] {
			added = append(added, l)
		}
	}
	for _, l := range wantLines {
		if !gotSet[l] {
			removed = append(removed, l)
		}
	}
	t.Fatalf("exported API surface changed.\n\nadded/changed:\n  %s\n\nremoved/changed:\n  %s\n\n"+
		"If the change is intentional (including any change to the deprecated v1 shims), regenerate the golden:\n"+
		"\tgo test -run TestAPISurface -update-api-surface .",
		strings.Join(added, "\n  "), strings.Join(removed, "\n  "))
}

// exportedSurface renders every exported declaration of the package in
// dir as one sorted slice of normalized declaration strings.
func exportedSurface(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, pkg := range pkgs {
		var files []string
		for name := range pkg.Files {
			files = append(files, name)
		}
		sort.Strings(files)
		for _, name := range files {
			for _, decl := range pkg.Files[name].Decls {
				lines = append(lines, renderDecl(t, fset, decl)...)
			}
		}
	}
	sort.Strings(lines)
	return lines
}

func renderDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) []string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || !exportedReceiver(d.Recv) {
			return nil
		}
		cp := *d
		cp.Doc, cp.Body = nil, nil
		return []string{render(t, fset, &cp)}
	case *ast.GenDecl:
		var out []string
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				cp := *s
				cp.Doc, cp.Comment = nil, nil
				cp.Type = stripUnexported(cp.Type)
				out = append(out, "type "+render(t, fset, &cp))
			case *ast.ValueSpec:
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				typ := ""
				if s.Type != nil {
					typ = " " + render(t, fset, s.Type)
				}
				for _, n := range s.Names {
					if n.IsExported() {
						out = append(out, kw+" "+n.Name+typ)
					}
				}
			}
		}
		return out
	default:
		return nil
	}
}

// exportedReceiver reports whether a method's receiver type is exported
// (true for plain functions).
func exportedReceiver(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return true
	}
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if ident, ok := typ.(*ast.Ident); ok {
		return ident.IsExported()
	}
	return true
}

// stripUnexported removes unexported fields (and all field docs) from
// struct types, so internal plumbing like Exec's pool pointer does not
// churn the golden.
func stripUnexported(expr ast.Expr) ast.Expr {
	st, ok := expr.(*ast.StructType)
	if !ok || st.Fields == nil {
		return expr
	}
	kept := &ast.FieldList{Opening: st.Fields.Opening, Closing: st.Fields.Closing}
	for _, f := range st.Fields.List {
		cp := *f
		cp.Doc, cp.Comment = nil, nil
		if len(f.Names) == 0 {
			kept.List = append(kept.List, &cp) // embedded field
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, n)
			}
		}
		if len(names) == 0 {
			continue
		}
		cp.Names = names
		kept.List = append(kept.List, &cp)
	}
	out := *st
	out.Fields = kept
	return &out
}

func render(t *testing.T, fset *token.FileSet, node any) string {
	t.Helper()
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, node); err != nil {
		t.Fatal(err)
	}
	// Normalize whitespace so gofmt churn cannot fail the check.
	fields := strings.Fields(buf.String())
	return strings.Join(fields, " ")
}
