package fam

import (
	"context"
	"errors"
	"testing"
)

// Evaluate (and the metrics evaluation inside Select) must reject
// malformed selection sets with the typed ErrInvalidSet instead of
// silently computing on duplicates or out-of-range indices.
func TestEvaluateSetValidation(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(10, 3, Independent, 1)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(3)
	if err != nil {
		t.Fatal(err)
	}
	opts := SelectOptions{Seed: 1, SampleSize: 50}

	cases := []struct {
		name    string
		set     []int
		wantErr bool
	}{
		{"valid", []int{0, 3, 9}, false},
		{"single", []int{5}, false},
		{"empty", nil, true},
		{"empty slice", []int{}, true},
		{"duplicate", []int{1, 4, 1}, true},
		{"negative index", []int{-1, 2}, true},
		{"index == n", []int{0, 10}, true},
		{"index beyond n", []int{0, 999}, true},
		{"larger than dataset", []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 9}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := EvaluateWithOptions(ctx, ds, dist, tc.set, opts)
			if !tc.wantErr {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if m.ARR < 0 || m.ARR > 1 {
					t.Fatalf("ARR = %v", m.ARR)
				}
				return
			}
			if err == nil {
				t.Fatalf("set %v accepted, want error", tc.set)
			}
			if !errors.Is(err, ErrInvalidSet) {
				t.Fatalf("err = %v, want errors.Is(ErrInvalidSet)", err)
			}
		})
	}
}

// Select must reject out-of-range K before running any solver.
func TestSelectKValidation(t *testing.T) {
	ctx := context.Background()
	ds, err := Synthetic(8, 2, Independent, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := UniformLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, -3, 9, 100} {
		if _, err := SelectWithOptions(ctx, ds, dist, SelectOptions{K: k, Seed: 1, SampleSize: 30}); err == nil {
			t.Fatalf("K=%d accepted, want error (n=8)", k)
		}
	}
}
