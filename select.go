package fam

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dp2d"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

// SelectOptions configures Select.
type SelectOptions struct {
	// K is the number of points to select. Required.
	K int
	// Algorithm picks the solver; the zero value is GreedyShrink.
	Algorithm Algorithm
	// Epsilon and Sigma set the Monte-Carlo error and confidence of
	// Theorem 4; the sample size is then N = ceil(3·ln(1/σ)/ε²). Both
	// default to 0.1 (N = 691). SampleSize overrides them when positive.
	Epsilon float64
	Sigma   float64
	// SampleSize fixes the number of sampled utility functions directly.
	SampleSize int
	// Seed drives all sampling; equal seeds give identical results.
	Seed uint64
	// DisableSkyline turns off the skyline preprocessing that is applied
	// automatically for monotone distributions.
	DisableSkyline bool
	// CacheBudget caps the materialized utility matrix (entries); zero
	// uses the default, negative disables caching.
	CacheBudget int64
	// ExactDiscrete switches from Monte-Carlo sampling to the exact
	// weighted evaluation of the paper's Appendix A. It requires a
	// discrete distribution (e.g. one built with TableUsers): each member
	// utility function enters the instance once, weighted by its
	// probability, so the average regret ratio is computed exactly.
	ExactDiscrete bool
	// Parallelism bounds the worker goroutines used for preprocessing
	// (utility materialization, best-point indexing) and for the query
	// phase (the per-candidate evaluations inside every solver). All
	// parallel reductions break ties to the lowest index, so results are
	// bit-identical at any setting. Zero uses every CPU (GOMAXPROCS);
	// one forces serial execution.
	Parallelism int
	// LazyBatch sets the refresh batch size of GreedyShrinkLazy: when a
	// stale lower bound surfaces on the evaluation queue, up to LazyBatch
	// stale entries are re-evaluated concurrently instead of one at a
	// time. Selected sets and all quality metrics are identical at any
	// batch size; only the evaluation-count statistics in Stats
	// (Evaluations, EvalSkipped, UserRescans, Speculative*) depend on it.
	// Zero or one keeps the paper's serial pop-refresh loop. Ignored by
	// every other algorithm.
	LazyBatch int
}

// Result is the outcome of Select.
type Result struct {
	// Indices of the selected points in the dataset, ascending.
	Indices []int
	// Labels of the selected points (row labels or synthesized).
	Labels []string
	// Metrics of the selection measured on the sampled users.
	Metrics Metrics
	// ExactARR is the exact average regret ratio when the algorithm
	// computes one (DP2D); negative otherwise.
	ExactARR float64
	// SkylineSize is the candidate count after skyline preprocessing
	// (equal to the dataset size when preprocessing is off).
	SkylineSize int
	// Preprocess covers skyline computation, utility sampling and
	// best-point indexing; Query covers the selection algorithm itself —
	// the paper's two timing columns.
	Preprocess time.Duration
	Query      time.Duration
	// Stats carries GREEDY-SHRINK work counters when applicable.
	Stats ShrinkStats
}

// ErrNilArgument is returned when the dataset or distribution is nil.
var ErrNilArgument = errors.New("fam: dataset and distribution must be non-nil")

// ErrInvalidSet is returned by Evaluate (and by Metrics evaluation inside
// Select) when an explicit selection set is empty, larger than the
// dataset, contains an out-of-range index, or repeats an index. Match it
// with errors.Is.
var ErrInvalidSet = core.ErrInvalidSet

// Select chooses K points from the dataset minimizing (approximately,
// except for DP2D/BruteForce) the average regret ratio under dist.
func Select(ctx context.Context, ds *Dataset, dist Distribution, opts SelectOptions) (*Result, error) {
	if ds == nil || dist == nil {
		return nil, ErrNilArgument
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if opts.K <= 0 || opts.K > ds.N() {
		return nil, fmt.Errorf("fam: K must satisfy 0 < K <= %d, got %d", ds.N(), opts.K)
	}
	if d := dist.Dim(); d != 0 && d != ds.Dim() {
		return nil, fmt.Errorf("fam: distribution dimension %d != dataset dimension %d", d, ds.Dim())
	}
	var discrete *utility.Discrete
	if opts.ExactDiscrete {
		var ok bool
		discrete, ok = dist.(*utility.Discrete)
		if !ok {
			return nil, fmt.Errorf("fam: ExactDiscrete requires a discrete distribution, got %s", dist.Name())
		}
	}
	n := 0
	if discrete == nil {
		var err error
		n, err = sampleSize(opts)
		if err != nil {
			return nil, err
		}
	}

	preStart := time.Now()

	// Preprocessing step 1: skyline restriction for monotone Θ (every
	// user's favorite is a skyline point, so arr over the skyline equals
	// arr over the database). Index-based (Table) distributions are
	// excluded: their scores are tied to database positions.
	candidates := identity(ds.N())
	useSkyline := dist.Monotone() && !opts.DisableSkyline && dist.Dim() != 0 &&
		opts.Algorithm != DP2D && opts.Algorithm != SkyDom
	if useSkyline {
		sky, err := skyline.Compute(ds.Points)
		if err != nil {
			return nil, err
		}
		if len(sky) > opts.K {
			candidates = sky
		}
	}
	points := ds.Points
	if len(candidates) != ds.N() {
		points = make([][]float64, len(candidates))
		for i, c := range candidates {
			points[i] = ds.Points[c]
		}
	}

	// Preprocessing step 2: sample Θ (or take the discrete support
	// verbatim with its probabilities — Appendix A) and index best points.
	var funcs []UtilityFunc
	var weights []float64
	if discrete != nil {
		funcs = discrete.Funcs
		weights = discrete.Probs
	} else {
		g := rng.New(opts.Seed)
		var err error
		funcs, err = sampleFuncs(dist, n, g, candidates, ds.N())
		if err != nil {
			return nil, err
		}
	}
	in, err := core.NewInstance(points, funcs, core.Options{CacheBudget: opts.CacheBudget, Weights: weights, Parallelism: opts.Parallelism, LazyBatch: opts.LazyBatch})
	if err != nil {
		return nil, err
	}
	preprocess := time.Since(preStart)

	res := &Result{ExactARR: -1, SkylineSize: len(candidates), Preprocess: preprocess}
	queryStart := time.Now()
	var local []int
	switch opts.Algorithm {
	case GreedyShrink, GreedyShrinkLazy, GreedyShrinkNaive:
		strategy := core.StrategyDelta
		if opts.Algorithm == GreedyShrinkLazy {
			strategy = core.StrategyLazy
		} else if opts.Algorithm == GreedyShrinkNaive {
			strategy = core.StrategyNaive
		}
		set, stats, err := core.GreedyShrink(ctx, in, opts.K, strategy)
		if err != nil {
			return nil, err
		}
		local, res.Stats = set, stats
	case DP2D:
		out, err := dp2d.SolveOpts(ctx, ds.Points, opts.K, dp2d.Options{Parallelism: opts.Parallelism})
		if err != nil {
			return nil, err
		}
		local = out.Set // already dataset indices
		res.ExactARR = out.ARR
		res.SkylineSize = out.SkylineSize
	case BruteForce:
		set, _, err := core.BruteForce(ctx, in, opts.K)
		if err != nil {
			return nil, err
		}
		local = set
	case MRRGreedy:
		if dist.Monotone() && isLinearDist(dist) {
			set, err := baseline.MRRGreedyLP(ctx, points, opts.K, opts.Parallelism)
			if err != nil {
				return nil, err
			}
			local = set
		} else {
			set, err := baseline.MRRGreedySampled(ctx, in, opts.K)
			if err != nil {
				return nil, err
			}
			local = set
		}
	case SkyDom:
		set, err := baseline.SkyDom(ctx, ds.Points, opts.K, opts.Parallelism)
		if err != nil {
			return nil, err
		}
		local = set // dataset indices (SkyDom sees the full dataset)
	case KHit:
		set, err := baseline.KHit(ctx, in, opts.K)
		if err != nil {
			return nil, err
		}
		local = set
	case GreedyAdd:
		set, stats, err := core.GreedyAdd(ctx, in, opts.K)
		if err != nil {
			return nil, err
		}
		local, res.Stats = set, stats
	default:
		return nil, fmt.Errorf("fam: unknown algorithm %d", int(opts.Algorithm))
	}
	res.Query = time.Since(queryStart)

	// Map candidate-local indices back to dataset indices.
	res.Indices = make([]int, len(local))
	for i, p := range local {
		if opts.Algorithm == DP2D || opts.Algorithm == SkyDom {
			res.Indices[i] = p
		} else {
			res.Indices[i] = candidates[p]
		}
	}
	res.Labels = make([]string, len(res.Indices))
	for i, idx := range res.Indices {
		res.Labels[i] = ds.Label(idx)
	}

	// Metrics are measured against the candidate instance; for monotone
	// distributions satisfaction over the skyline equals satisfaction over
	// the database, so the numbers are the database-level quantities. For
	// DP2D/SkyDom the selected points may fall outside the candidate set,
	// so evaluate on a full instance.
	evalIn := in
	evalSet := local
	if opts.Algorithm == DP2D || opts.Algorithm == SkyDom {
		if len(candidates) != ds.N() {
			full, err := core.NewInstance(ds.Points, funcs, core.Options{CacheBudget: opts.CacheBudget, Weights: weights, Parallelism: opts.Parallelism})
			if err != nil {
				return nil, err
			}
			evalIn = full
		}
		evalSet = res.Indices
	}
	m, err := evalIn.Evaluate(evalSet, nil)
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	return res, nil
}

// Evaluate measures the Metrics of an explicit selection (dataset row
// indices) under dist with the given sampling parameters.
func Evaluate(ctx context.Context, ds *Dataset, dist Distribution, set []int, opts SelectOptions) (Metrics, error) {
	if ds == nil || dist == nil {
		return Metrics{}, ErrNilArgument
	}
	if err := ds.Validate(); err != nil {
		return Metrics{}, err
	}
	// Reject malformed sets before paying for sampling and preprocessing.
	if err := core.ValidateSet(set, ds.N()); err != nil {
		return Metrics{}, err
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	var funcs []UtilityFunc
	var weights []float64
	if opts.ExactDiscrete {
		disc, ok := dist.(*utility.Discrete)
		if !ok {
			return Metrics{}, fmt.Errorf("fam: ExactDiscrete requires a discrete distribution, got %s", dist.Name())
		}
		funcs, weights = disc.Funcs, disc.Probs
	} else {
		n, err := sampleSize(opts)
		if err != nil {
			return Metrics{}, err
		}
		funcs, err = sampling.Sample(dist, n, rng.New(opts.Seed))
		if err != nil {
			return Metrics{}, err
		}
	}
	in, err := core.NewInstance(ds.Points, funcs, core.Options{CacheBudget: opts.CacheBudget, Weights: weights, Parallelism: opts.Parallelism})
	if err != nil {
		return Metrics{}, err
	}
	return in.Evaluate(set, nil)
}

// SampleSize exposes Theorem 4's bound: the number of sampled utility
// functions needed for error eps at confidence 1-sigma.
func SampleSize(eps, sigma float64) (int, error) { return sampling.SampleSize(eps, sigma) }

func sampleSize(opts SelectOptions) (int, error) {
	if opts.SampleSize > 0 {
		return opts.SampleSize, nil
	}
	eps, sigma := opts.Epsilon, opts.Sigma
	if eps == 0 {
		eps = 0.1
	}
	if sigma == 0 {
		sigma = 0.1
	}
	return sampling.SampleSize(eps, sigma)
}

// sampleFuncs draws n utility functions. When the candidate set is a
// proper subset (skyline restriction), index-based utility functions would
// be misaligned; callers exclude that case via the useSkyline guard, but
// Table functions sampled from a vector distribution do not occur, so a
// direct sample suffices.
func sampleFuncs(dist Distribution, n int, g *rng.RNG, candidates []int, fullN int) ([]UtilityFunc, error) {
	funcs, err := sampling.Sample(dist, n, g)
	if err != nil {
		return nil, err
	}
	if len(candidates) != fullN {
		for _, f := range funcs {
			if _, ok := f.(utility.Table); ok {
				return nil, errors.New("fam: index-based utility functions cannot be combined with skyline preprocessing")
			}
		}
	}
	return funcs, nil
}

// isLinearDist reports whether the distribution samples plain linear
// functions (enabling the LP-exact MRR-GREEDY).
func isLinearDist(dist Distribution) bool {
	switch dist.(type) {
	case utility.UniformSimplexLinear, utility.UniformBoxLinear, utility.UniformSphereLinear:
		return true
	default:
		return false
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
