package fam

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dp2d"
	"github.com/regretlab/fam/internal/par"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

// SelectOptions configures Select.
type SelectOptions struct {
	// K is the number of points to select. Required.
	K int
	// Algorithm picks the solver; the zero value is GreedyShrink.
	Algorithm Algorithm
	// Epsilon and Sigma set the Monte-Carlo error and confidence of
	// Theorem 4; the sample size is then N = ceil(3·ln(1/σ)/ε²). Both
	// default to 0.1 (N = 691). SampleSize overrides them when positive.
	Epsilon float64
	Sigma   float64
	// SampleSize fixes the number of sampled utility functions directly.
	SampleSize int
	// Seed drives all sampling; equal seeds give identical results.
	Seed uint64
	// DisableSkyline turns off the skyline preprocessing that is applied
	// automatically for monotone distributions.
	DisableSkyline bool
	// CacheBudget caps the materialized utility matrix (entries); zero
	// uses the default, negative disables caching.
	CacheBudget int64
	// ExactDiscrete switches from Monte-Carlo sampling to the exact
	// weighted evaluation of the paper's Appendix A. It requires a
	// discrete distribution (e.g. one built with TableUsers): each member
	// utility function enters the instance once, weighted by its
	// probability, so the average regret ratio is computed exactly.
	ExactDiscrete bool
	// Parallelism bounds the worker goroutines used for preprocessing
	// (utility materialization, best-point indexing) and for the query
	// phase (the per-candidate evaluations inside every solver). All
	// parallel reductions break ties to the lowest index, so results are
	// bit-identical at any setting. Zero uses every CPU (GOMAXPROCS);
	// one forces serial execution.
	Parallelism int
	// LazyBatch sets the refresh batch size of GreedyShrinkLazy: when a
	// stale lower bound surfaces on the evaluation queue, up to LazyBatch
	// stale entries are re-evaluated concurrently instead of one at a
	// time. Selected sets and all quality metrics are identical at any
	// batch size; only the evaluation-count statistics in Stats
	// (Evaluations, EvalSkipped, UserRescans, Speculative*) depend on it.
	// Zero or one keeps the paper's serial pop-refresh loop. Ignored by
	// every other algorithm.
	LazyBatch int
}

// Result is the outcome of Select.
type Result struct {
	// Indices of the selected points in the dataset, ascending.
	Indices []int
	// Labels of the selected points (row labels or synthesized).
	Labels []string
	// Metrics of the selection measured on the sampled users.
	Metrics Metrics
	// ExactARR is the exact average regret ratio when the algorithm
	// computes one (DP2D); negative otherwise.
	ExactARR float64
	// SkylineSize is the candidate count after skyline preprocessing
	// (equal to the dataset size when preprocessing is off).
	SkylineSize int
	// Preprocess covers skyline computation, utility sampling and
	// best-point indexing; Query covers the selection algorithm itself —
	// the paper's two timing columns. An Engine reports the time its
	// caches actually spent: Preprocess is near zero when the artifacts
	// were already built, and a result-cache hit (Cached true) carries
	// the timings of the original computation it replays.
	Preprocess time.Duration
	Query      time.Duration
	// Cached reports that the whole Result was answered from an Engine's
	// result cache; always false for one-shot Select.
	Cached bool
	// Stats carries GREEDY-SHRINK work counters when applicable.
	Stats ShrinkStats
}

// ErrNilArgument is returned when the dataset or distribution is nil.
var ErrNilArgument = errors.New("fam: dataset and distribution must be non-nil")

// ErrInvalidSet is returned by Evaluate (and by Metrics evaluation inside
// Select) when an explicit selection set is empty, larger than the
// dataset, contains an out-of-range index, or repeats an index. Match it
// with errors.Is.
var ErrInvalidSet = core.ErrInvalidSet

// Select chooses K points from the dataset minimizing (approximately,
// except for DP2D/BruteForce) the average regret ratio under dist.
func Select(ctx context.Context, ds *Dataset, dist Distribution, opts SelectOptions) (*Result, error) {
	norm, err := normalizeOptions(ds, dist, opts, true)
	if err != nil {
		return nil, err
	}
	preStart := time.Now()
	prep, err := prepare(ctx, ds, dist, opts, norm, nil)
	if err != nil {
		return nil, err
	}
	preprocess := time.Since(preStart)
	res, err := solve(ctx, ds, dist, prep, opts)
	if err != nil {
		return nil, err
	}
	res.Preprocess = preprocess
	return res, nil
}

// prepared is the per-(dataset, distribution, seed) preprocessing state a
// query runs against: the candidate set (skyline-restricted when the
// distribution allows it), the sampled utility functions, and the built
// core.Instance with its materialized utility matrix. One-shot Select
// builds it per call; an Engine builds each artifact once per dataset and
// shares it across every subsequent query.
type prepared struct {
	candidates []int
	funcs      []UtilityFunc
	weights    []float64
	in         *core.Instance
}

// prepare runs the preprocessing pipeline of Section III-D2. The pool, when
// non-nil, carries the shard fan-outs (skyline dominance tests, utility
// materialization, best-point indexing); results are bit-identical with
// or without one.
func prepare(ctx context.Context, ds *Dataset, dist Distribution, opts SelectOptions, norm normalized, pool *par.Pool) (*prepared, error) {
	// Preprocessing step 1: skyline restriction for monotone Θ (every
	// user's favorite is a skyline point, so arr over the skyline equals
	// arr over the database). Index-based (Table) distributions are
	// excluded: their scores are tied to database positions.
	candidates := identity(ds.N())
	if norm.useSkyline {
		sky, err := skyline.ComputeOpts(ctx, ds.Points, skyline.ComputeOptions{Workers: opts.Parallelism, Pool: pool})
		if err != nil {
			return nil, err
		}
		if len(sky) > opts.K {
			candidates = sky
		}
	}

	// Preprocessing step 2: sample Θ (or take the discrete support
	// verbatim with its probabilities — Appendix A) and index best points.
	funcs, weights, err := buildFuncs(dist, norm, opts.Seed)
	if err != nil {
		return nil, err
	}
	return assemble(ds, candidates, funcs, weights, opts, pool)
}

// buildFuncs draws the instance's utility functions: the discrete support
// with its probabilities in exact mode, or norm.sampleSize draws seeded
// by opts.Seed.
func buildFuncs(dist Distribution, norm normalized, seed uint64) ([]UtilityFunc, []float64, error) {
	if norm.discrete != nil {
		return norm.discrete.Funcs, norm.discrete.Probs, nil
	}
	funcs, err := sampling.Sample(dist, norm.sampleSize, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	return funcs, nil, nil
}

// assemble restricts the point set to the candidates and builds the
// core.Instance (utility materialization + best-point indexing).
func assemble(ds *Dataset, candidates []int, funcs []UtilityFunc, weights []float64, opts SelectOptions, pool *par.Pool) (*prepared, error) {
	points := ds.Points
	if len(candidates) != ds.N() {
		// Index-based utility functions would be misaligned on a
		// restricted candidate set; monotone vector distributions never
		// sample them, but guard against a mismatched registration.
		for _, f := range funcs {
			if _, ok := f.(utility.Table); ok {
				return nil, errors.New("fam: index-based utility functions cannot be combined with skyline preprocessing")
			}
		}
		points = make([][]float64, len(candidates))
		for i, c := range candidates {
			points[i] = ds.Points[c]
		}
	}
	in, err := core.NewInstance(points, funcs, core.Options{
		CacheBudget: opts.CacheBudget,
		Weights:     weights,
		Parallelism: opts.Parallelism,
		LazyBatch:   opts.LazyBatch,
		Pool:        pool,
	})
	if err != nil {
		return nil, err
	}
	return &prepared{candidates: candidates, funcs: funcs, weights: weights, in: in}, nil
}

// solve runs the query phase on prepared state: the selected solver, the
// candidate-to-dataset index mapping, and the metrics evaluation. The
// result's Preprocess field is left for the caller, which knows whether
// preprocessing was fresh or cached.
func solve(ctx context.Context, ds *Dataset, dist Distribution, prep *prepared, opts SelectOptions) (*Result, error) {
	in := prep.in
	candidates := prep.candidates
	res := &Result{ExactARR: -1, SkylineSize: len(candidates)}
	queryStart := time.Now()
	var local []int
	switch opts.Algorithm {
	case GreedyShrink, GreedyShrinkLazy, GreedyShrinkNaive:
		strategy := core.StrategyDelta
		if opts.Algorithm == GreedyShrinkLazy {
			strategy = core.StrategyLazy
		} else if opts.Algorithm == GreedyShrinkNaive {
			strategy = core.StrategyNaive
		}
		set, stats, err := core.GreedyShrink(ctx, in, opts.K, strategy)
		if err != nil {
			return nil, err
		}
		local, res.Stats = set, stats
	case DP2D:
		out, err := dp2d.SolveOpts(ctx, ds.Points, opts.K, dp2d.Options{Parallelism: opts.Parallelism, Pool: in.Pool()})
		if err != nil {
			return nil, err
		}
		local = out.Set // already dataset indices
		res.ExactARR = out.ARR
		res.SkylineSize = out.SkylineSize
	case BruteForce:
		set, _, err := core.BruteForce(ctx, in, opts.K)
		if err != nil {
			return nil, err
		}
		local = set
	case MRRGreedy:
		var set []int
		var err error
		if dist.Monotone() && isLinearDist(dist) {
			set, err = baseline.MRRGreedyLP(ctx, in.Points, opts.K, opts.Parallelism, in.Pool())
		} else {
			set, err = baseline.MRRGreedySampled(ctx, in, opts.K)
		}
		if err != nil {
			return nil, err
		}
		local = set
	case SkyDom:
		set, err := baseline.SkyDom(ctx, ds.Points, opts.K, opts.Parallelism, in.Pool())
		if err != nil {
			return nil, err
		}
		local = set // dataset indices (SkyDom sees the full dataset)
	case KHit:
		set, err := baseline.KHit(ctx, in, opts.K)
		if err != nil {
			return nil, err
		}
		local = set
	case GreedyAdd:
		set, stats, err := core.GreedyAdd(ctx, in, opts.K)
		if err != nil {
			return nil, err
		}
		local, res.Stats = set, stats
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadOptions, int(opts.Algorithm))
	}
	res.Query = time.Since(queryStart)

	// Map candidate-local indices back to dataset indices. DP2D and
	// SkyDom operate on the full dataset (the skyline restriction is off
	// for them), so candidates is the identity and the mapping is one.
	res.Indices = make([]int, len(local))
	for i, p := range local {
		if opts.Algorithm == DP2D || opts.Algorithm == SkyDom {
			res.Indices[i] = p
		} else {
			res.Indices[i] = candidates[p]
		}
	}
	res.Labels = make([]string, len(res.Indices))
	for i, idx := range res.Indices {
		res.Labels[i] = ds.Label(idx)
	}

	// Metrics are measured against the candidate instance; for monotone
	// distributions satisfaction over the skyline equals satisfaction
	// over the database, so the numbers are the database-level
	// quantities. DP2D/SkyDom run with the identity candidate set, so
	// their dataset indices are valid on the instance directly.
	evalSet := local
	if opts.Algorithm == DP2D || opts.Algorithm == SkyDom {
		evalSet = res.Indices
	}
	m, err := in.Evaluate(evalSet, nil)
	if err != nil {
		return nil, err
	}
	res.Metrics = m
	return res, nil
}

// Evaluate measures the Metrics of an explicit selection (dataset row
// indices) under dist with the given sampling parameters.
func Evaluate(ctx context.Context, ds *Dataset, dist Distribution, set []int, opts SelectOptions) (Metrics, error) {
	norm, err := normalizeOptions(ds, dist, opts, false)
	if err != nil {
		return Metrics{}, err
	}
	// Reject malformed sets before paying for sampling and preprocessing.
	if err := core.ValidateSet(set, ds.N()); err != nil {
		return Metrics{}, err
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	prep, err := prepare(ctx, ds, dist, opts, norm, nil)
	if err != nil {
		return Metrics{}, err
	}
	return prep.in.Evaluate(set, nil)
}

// SampleSize exposes Theorem 4's bound: the number of sampled utility
// functions needed for error eps at confidence 1-sigma.
func SampleSize(eps, sigma float64) (int, error) { return sampling.SampleSize(eps, sigma) }

// isLinearDist reports whether the distribution samples plain linear
// functions (enabling the LP-exact MRR-GREEDY).
func isLinearDist(dist Distribution) bool {
	switch dist.(type) {
	case utility.UniformSimplexLinear, utility.UniformBoxLinear, utility.UniformSphereLinear:
		return true
	default:
		return false
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
