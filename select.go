package fam

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/coreset"
	"github.com/regretlab/fam/internal/dp2d"
	"github.com/regretlab/fam/internal/obs"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

// Result is the semantic outcome of a selection query: the chosen set
// and its quality. Everything here is a pure function of the Query — no
// timing, no worker counts, no dispatch statistics — which is what lets
// an Engine cache a Result under Query.Fingerprint alone and share it
// across every execution policy. Execution detail lives in Telemetry.
type Result struct {
	// Indices of the selected points in the dataset, ascending (for
	// evaluation queries: the evaluated set as given).
	Indices []int
	// Labels of the selected points (row labels or synthesized).
	Labels []string
	// Metrics of the selection measured on the sampled users.
	Metrics Metrics
	// ExactARR is the exact average regret ratio when the algorithm
	// computes one (DP2D); negative otherwise.
	ExactARR float64
	// SkylineSize is the candidate count after skyline preprocessing
	// (equal to the dataset size when preprocessing is off).
	SkylineSize int
	// CoresetSize is the candidate count the solver actually ran over
	// after the ε-kernel coreset prepass (Query.Coreset); −1 when the
	// prepass was off. When the prepass would have pruned below K the
	// unpruned candidates are kept and CoresetSize equals SkylineSize.
	CoresetSize int
	// Cached reports that the Result was answered from an Engine's
	// result cache; always false for one-shot Select.
	Cached bool
}

// ErrNilArgument is returned when the dataset or distribution is nil.
var ErrNilArgument = errors.New("fam: dataset and distribution must be non-nil")

// ErrInvalidSet is returned by Evaluate (and by Metrics evaluation inside
// Select) when an explicit selection set is empty, larger than the
// dataset, contains an out-of-range index, or repeats an index. Match it
// with errors.Is.
var ErrInvalidSet = core.ErrInvalidSet

// Select chooses q.K points from q.Data minimizing (approximately,
// except for DP2D/BruteForce) the average regret ratio under q.Dist,
// executing under the given policy. The Result depends only on the
// Query; the Exec moves only the Telemetry. Queries with a non-nil
// ExplicitSet are evaluation queries and belong to Evaluate.
func Select(ctx context.Context, q Query, exec Exec) (*Result, *Telemetry, error) {
	if q.ExplicitSet != nil {
		return nil, nil, fmt.Errorf("%w: ExplicitSet makes this an evaluation query; call Evaluate", ErrBadOptions)
	}
	norm, err := normalizeQuery(q.Data, q.Dist, q, true)
	if err != nil {
		return nil, nil, err
	}
	// Admission: a deadline that has already passed is shed before any
	// sampling or preprocessing; an admitted deadline bounds the context
	// (one-shot queries have no shared pool, so MaxQueue does not apply).
	if err := exec.admit(nil); err != nil {
		return nil, nil, err
	}
	ctx, cancel := exec.schedContext(ctx)
	defer cancel()
	ctx, span := obs.Start(ctx, "select")
	defer span.End()
	preStart := time.Now()
	prep, err := prepare(ctx, q.Data, q.Dist, q, norm, exec)
	if err != nil {
		return nil, nil, err
	}
	preprocess := time.Since(preStart)
	res, tel, err := solve(ctx, q.Data, q.Dist, prep, q, exec)
	if err != nil {
		return nil, nil, err
	}
	tel.Preprocess = preprocess
	span.End()
	tel.Trace = traceOf(span)
	return res, tel, nil
}

// Evaluate measures the Metrics of q.ExplicitSet (dataset row indices)
// under q.Dist with the query's sampling parameters.
func Evaluate(ctx context.Context, q Query, exec Exec) (Metrics, error) {
	norm, err := normalizeQuery(q.Data, q.Dist, q, false)
	if err != nil {
		return Metrics{}, err
	}
	// Reject malformed sets before paying for sampling and preprocessing.
	if err := core.ValidateSet(q.ExplicitSet, q.Data.N()); err != nil {
		return Metrics{}, err
	}
	if err := ctx.Err(); err != nil {
		return Metrics{}, err
	}
	if err := exec.admit(nil); err != nil {
		return Metrics{}, err
	}
	ctx, cancel := exec.schedContext(ctx)
	defer cancel()
	prep, err := prepare(ctx, q.Data, q.Dist, q, norm, exec)
	if err != nil {
		return Metrics{}, err
	}
	return prep.in.Evaluate(q.ExplicitSet, nil)
}

// prepared is the per-(dataset, distribution, seed) preprocessing state a
// query runs against: the candidate set (skyline-restricted when the
// distribution allows it), the sampled utility functions, and the built
// core.Instance with its materialized utility matrix. One-shot Select
// builds it per call; an Engine builds each artifact once per dataset and
// shares it across every subsequent query.
type prepared struct {
	candidates []int
	funcs      []UtilityFunc
	weights    []float64
	in         *core.Instance
	// skylineSize is the candidate count before the coreset prepass
	// (what Result.SkylineSize reports); coresetSize is the count after
	// it, or −1 when the prepass was off.
	skylineSize int
	coresetSize int
}

// prepare runs the preprocessing pipeline of Section III-D2 under the
// given execution policy. The exec's pool, when non-nil, carries the
// shard fan-outs (skyline dominance tests, utility materialization,
// best-point indexing); results are bit-identical with or without one.
func prepare(ctx context.Context, ds *Dataset, dist Distribution, q Query, norm normalized, exec Exec) (*prepared, error) {
	ctx, span := obs.Start(ctx, "prepare")
	defer span.End()
	// Preprocessing step 1: skyline restriction for monotone Θ (every
	// user's favorite is a skyline point, so arr over the skyline equals
	// arr over the database). Index-based (Table) distributions are
	// excluded: their scores are tied to database positions.
	candidates := identity(ds.N())
	if norm.useSkyline {
		skyCtx, skySpan := obs.Start(ctx, "skyline")
		sky, err := skyline.ComputeOpts(skyCtx, ds.Points, skyline.ComputeOptions{Workers: exec.Parallelism, Pool: exec.pool})
		if err != nil {
			return nil, err
		}
		skySpan.SetAttrInt("size", len(sky))
		skySpan.End()
		if len(sky) > q.K {
			candidates = sky
		}
	}

	// Preprocessing step 2: sample Θ (or take the discrete support
	// verbatim with its probabilities — Appendix A) and index best points.
	funcs, weights, err := buildFuncs(ctx, dist, norm, q.Seed)
	if err != nil {
		return nil, err
	}

	// Preprocessing step 3 (opt-in): the ε-kernel coreset prepass drops
	// candidates that are never within norm.coresetEps of best for any
	// sampled user. It runs after sampling because the kernel is defined
	// against the drawn functions, and is skipped — like the skyline
	// guard above — when it would leave fewer than K+1 candidates.
	skySize := len(candidates)
	csSize := -1
	if norm.useCoreset {
		cs, err := coresetFilter(ctx, ds, candidates, funcs, norm.coresetEps, exec)
		if err != nil {
			return nil, err
		}
		if len(cs) > q.K {
			candidates = cs
		}
		csSize = len(candidates)
	}
	prep, err := assemble(ctx, ds, candidates, funcs, weights, q, exec)
	if err != nil {
		return nil, err
	}
	prep.skylineSize, prep.coresetSize = skySize, csSize
	return prep, nil
}

// coresetFilter runs the ε-kernel prepass over the current candidates
// under the query's execution policy, tracing candidate counts on the
// "coreset" span.
func coresetFilter(ctx context.Context, ds *Dataset, candidates []int, funcs []UtilityFunc, eps float64, exec Exec) ([]int, error) {
	csCtx, csSpan := obs.Start(ctx, "coreset")
	defer csSpan.End()
	csSpan.SetAttrInt("in", len(candidates))
	cs, err := coreset.Filter(csCtx, ds.Points, candidates, funcs, coreset.Options{
		Eps:         eps,
		Parallelism: exec.Parallelism,
		Pool:        exec.pool,
		Sched:       exec.attrs(),
	})
	if err != nil {
		return nil, err
	}
	csSpan.SetAttrInt("out", len(cs))
	return cs, nil
}

// buildFuncs draws the instance's utility functions: the discrete support
// with its probabilities in exact mode, or norm.sampleSize draws seeded
// by seed.
func buildFuncs(ctx context.Context, dist Distribution, norm normalized, seed uint64) ([]UtilityFunc, []float64, error) {
	_, span := obs.Start(ctx, "buildFuncs")
	defer span.End()
	if norm.discrete != nil {
		span.SetAttrInt("funcs", len(norm.discrete.Funcs))
		return norm.discrete.Funcs, norm.discrete.Probs, nil
	}
	funcs, err := sampling.Sample(dist, norm.sampleSize, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	span.SetAttrInt("funcs", len(funcs))
	return funcs, nil, nil
}

// assemble restricts the point set to the candidates and builds the
// core.Instance (utility materialization + best-point indexing).
func assemble(ctx context.Context, ds *Dataset, candidates []int, funcs []UtilityFunc, weights []float64, q Query, exec Exec) (*prepared, error) {
	_, span := obs.Start(ctx, "assemble")
	span.SetAttrInt("candidates", len(candidates))
	defer span.End()
	points := ds.Points
	if len(candidates) != ds.N() {
		// Index-based utility functions would be misaligned on a
		// restricted candidate set; monotone vector distributions never
		// sample them, but guard against a mismatched registration.
		for _, f := range funcs {
			if _, ok := f.(utility.Table); ok {
				return nil, errors.New("fam: index-based utility functions cannot be combined with skyline or coreset preprocessing")
			}
		}
		points = make([][]float64, len(candidates))
		for i, c := range candidates {
			points[i] = ds.Points[c]
		}
	}
	in, err := core.NewInstance(points, funcs, core.Options{
		CacheBudget: q.CacheBudget,
		Weights:     weights,
		Float32:     q.Float32,
		Parallelism: exec.Parallelism,
		LazyBatch:   exec.LazyBatch,
		Pool:        exec.pool,
		Sched:       exec.attrs(),
	})
	if err != nil {
		return nil, err
	}
	return &prepared{candidates: candidates, funcs: funcs, weights: weights, in: in,
		skylineSize: len(candidates), coresetSize: -1}, nil
}

// solve runs the query phase on prepared state: the selected solver, the
// candidate-to-dataset index mapping, and the metrics evaluation. The
// Telemetry's Preprocess field is left for the caller, which knows
// whether preprocessing was fresh or cached.
func solve(ctx context.Context, ds *Dataset, dist Distribution, prep *prepared, q Query, exec Exec) (*Result, *Telemetry, error) {
	in := prep.in
	candidates := prep.candidates
	res := &Result{ExactARR: -1, SkylineSize: prep.skylineSize, CoresetSize: prep.coresetSize}
	tel := &Telemetry{}
	ctx, span := obs.Start(ctx, "solve")
	span.SetAttr("algorithm", q.Algorithm.String())
	span.SetAttrInt("k", q.K)
	defer span.End()
	queryStart := time.Now()
	var local []int
	switch q.Algorithm {
	case GreedyShrink, GreedyShrinkLazy, GreedyShrinkNaive:
		strategy := core.StrategyDelta
		if q.Algorithm == GreedyShrinkLazy {
			strategy = core.StrategyLazy
		} else if q.Algorithm == GreedyShrinkNaive {
			strategy = core.StrategyNaive
		}
		set, stats, err := core.GreedyShrink(ctx, in, q.K, strategy)
		if err != nil {
			return nil, nil, err
		}
		local, tel.Stats = set, stats
	case DP2D:
		// in.Points is the dataset unless the coreset prepass pruned it
		// (the skyline restriction is off for DP2D); out.Set indexes it,
		// so the uniform candidates[p] mapping below applies.
		out, err := dp2d.SolveOpts(ctx, in.Points, q.K, dp2d.Options{Parallelism: exec.Parallelism, Pool: in.Pool()})
		if err != nil {
			return nil, nil, err
		}
		local = out.Set
		res.ExactARR = out.ARR
		res.SkylineSize = out.SkylineSize
	case BruteForce:
		set, _, err := core.BruteForce(ctx, in, q.K)
		if err != nil {
			return nil, nil, err
		}
		local = set
	case MRRGreedy:
		var set []int
		var err error
		if dist.Monotone() && isLinearDist(dist) {
			set, err = baseline.MRRGreedyLP(ctx, in.Points, q.K, exec.Parallelism, in.Pool())
		} else {
			set, err = baseline.MRRGreedySampled(ctx, in, q.K)
		}
		if err != nil {
			return nil, nil, err
		}
		local = set
	case SkyDom:
		set, err := baseline.SkyDom(ctx, in.Points, q.K, exec.Parallelism, in.Pool())
		if err != nil {
			return nil, nil, err
		}
		local = set // instance indices, identity unless the coreset pruned
	case KHit:
		set, err := baseline.KHit(ctx, in, q.K)
		if err != nil {
			return nil, nil, err
		}
		local = set
	case GreedyAdd:
		set, stats, err := core.GreedyAdd(ctx, in, q.K)
		if err != nil {
			return nil, nil, err
		}
		local, tel.Stats = set, stats
	default:
		return nil, nil, fmt.Errorf("%w: unknown algorithm %d", ErrBadOptions, int(q.Algorithm))
	}
	tel.Query = time.Since(queryStart)

	// Map instance-local indices back to dataset indices. Every solver —
	// DP2D and SkyDom included — now runs over in.Points, so the mapping
	// through candidates is uniform (it is the identity whenever no
	// restriction applied).
	res.Indices = make([]int, len(local))
	for i, p := range local {
		res.Indices[i] = candidates[p]
	}
	res.Labels = make([]string, len(res.Indices))
	for i, idx := range res.Indices {
		res.Labels[i] = ds.Label(idx)
	}

	// Metrics are measured against the candidate instance; for monotone
	// distributions satisfaction over the skyline equals satisfaction
	// over the database, and the coreset keeps every user's argmax, so
	// the numbers are the database-level quantities either way.
	m, err := in.Evaluate(local, nil)
	if err != nil {
		return nil, nil, err
	}
	res.Metrics = m
	return res, tel, nil
}

// SampleSize exposes Theorem 4's bound: the number of sampled utility
// functions needed for error eps at confidence 1-sigma.
func SampleSize(eps, sigma float64) (int, error) { return sampling.SampleSize(eps, sigma) }

// isLinearDist reports whether the distribution samples plain linear
// functions (enabling the LP-exact MRR-GREEDY).
func isLinearDist(dist Distribution) bool {
	switch dist.(type) {
	case utility.UniformSimplexLinear, utility.UniformBoxLinear, utility.UniformSphereLinear:
		return true
	default:
		return false
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
