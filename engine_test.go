package fam

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// engineFixtures builds the three datasets the engine suites query:
// hotels (5-d, skyline-restricted algorithms), an anticorrelated 2-d set
// (DP2D), and a tiny 3-d set (BruteForce).
type engineFixture struct {
	name string
	ds   *Dataset
	dist Distribution
}

func engineFixtures(t testing.TB) []engineFixture {
	t.Helper()
	hotels, err := Hotels(120, 3)
	if err != nil {
		t.Fatal(err)
	}
	hotelDist, err := UniformLinear(hotels.Dim())
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Synthetic(80, 2, Anticorrelated, 7)
	if err != nil {
		t.Fatal(err)
	}
	gridDist, err := UniformBoxLinear(2)
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := Synthetic(25, 3, Independent, 11)
	if err != nil {
		t.Fatal(err)
	}
	tinyDist, err := UniformLinear(3)
	if err != nil {
		t.Fatal(err)
	}
	return []engineFixture{
		{"hotels", hotels, hotelDist},
		{"grid2d", grid, gridDist},
		{"tiny", tiny, tinyDist},
	}
}

// engineQuery is one (dataset, options) Select combo.
type engineQuery struct {
	dataset string
	opts    SelectOptions
}

func engineQueries() []engineQuery {
	base := SelectOptions{Seed: 9, SampleSize: 120}
	with := func(ds string, mod func(*SelectOptions)) engineQuery {
		o := base
		mod(&o)
		return engineQuery{dataset: ds, opts: o}
	}
	return []engineQuery{
		with("hotels", func(o *SelectOptions) { o.K = 5 }),
		with("hotels", func(o *SelectOptions) { o.K = 5; o.Algorithm = GreedyShrinkLazy; o.LazyBatch = 4 }),
		with("hotels", func(o *SelectOptions) { o.K = 3; o.Algorithm = GreedyShrinkNaive }),
		with("hotels", func(o *SelectOptions) { o.K = 7; o.Algorithm = GreedyAdd }),
		with("hotels", func(o *SelectOptions) { o.K = 5; o.Algorithm = KHit }),
		with("hotels", func(o *SelectOptions) { o.K = 4; o.Algorithm = MRRGreedy }),
		with("hotels", func(o *SelectOptions) { o.K = 4; o.Algorithm = SkyDom }),
		with("grid2d", func(o *SelectOptions) { o.K = 3; o.Algorithm = DP2D }),
		with("grid2d", func(o *SelectOptions) { o.K = 4 }),
		with("tiny", func(o *SelectOptions) { o.K = 3; o.Algorithm = BruteForce }),
	}
}

// evalQuery is one (dataset, set) Evaluate combo.
var engineEvalQueries = []struct {
	dataset string
	set     []int
}{
	{"hotels", []int{1, 2, 3, 4, 5}},
	{"grid2d", []int{0, 1, 2}},
	{"tiny", []int{0, 1}},
}

func newTestEngine(t testing.TB, fixtures []engineFixture) *Engine {
	t.Helper()
	e := NewEngine(EngineConfig{})
	t.Cleanup(e.Close)
	for _, f := range fixtures {
		if err := e.Register(f.name, f.ds, f.dist); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// assertResultEqual checks the bit-identity contract: everything except
// the timing fields and the Cached marker must match a one-shot Select.
func assertResultEqual(t testing.TB, label string, got, want *LegacyResult) {
	t.Helper()
	if len(got.Indices) != len(want.Indices) {
		t.Fatalf("%s: %d indices, want %d", label, len(got.Indices), len(want.Indices))
	}
	for i := range want.Indices {
		if got.Indices[i] != want.Indices[i] {
			t.Fatalf("%s: indices %v, want %v", label, got.Indices, want.Indices)
		}
		if got.Labels[i] != want.Labels[i] {
			t.Fatalf("%s: labels %v, want %v", label, got.Labels, want.Labels)
		}
	}
	if got.ExactARR != want.ExactARR || got.SkylineSize != want.SkylineSize {
		t.Fatalf("%s: (ExactARR, SkylineSize) = (%v, %d), want (%v, %d)",
			label, got.ExactARR, got.SkylineSize, want.ExactARR, want.SkylineSize)
	}
	if got.Stats != want.Stats {
		t.Fatalf("%s: stats %+v, want %+v", label, got.Stats, want.Stats)
	}
	assertMetricsEqual(t, label, got.Metrics, want.Metrics)
}

func assertMetricsEqual(t testing.TB, label string, got, want Metrics) {
	t.Helper()
	if got.ARR != want.ARR || got.VRR != want.VRR || got.StdDev != want.StdDev ||
		got.MaxRR != want.MaxRR || got.DegenerateUsers != want.DegenerateUsers {
		t.Fatalf("%s: metrics %+v, want %+v", label, got, want)
	}
	if len(got.Percentiles) != len(want.Percentiles) {
		t.Fatalf("%s: %d percentiles, want %d", label, len(got.Percentiles), len(want.Percentiles))
	}
	for i := range want.Percentiles {
		if got.Percentiles[i] != want.Percentiles[i] {
			t.Fatalf("%s: percentiles %v, want %v", label, got.Percentiles, want.Percentiles)
		}
	}
}

// TestEngineMatchesOneShot drives every algorithm through a warm and a
// cold Engine path and pins bit-identity against fresh one-shot calls.
func TestEngineMatchesOneShot(t *testing.T) {
	fixtures := engineFixtures(t)
	e := newTestEngine(t, fixtures)
	ctx := context.Background()
	byName := map[string]engineFixture{}
	for _, f := range fixtures {
		byName[f.name] = f
	}

	for _, q := range engineQueries() {
		label := fmt.Sprintf("%s/%s/k=%d", q.dataset, q.opts.Algorithm, q.opts.K)
		f := byName[q.dataset]
		want, err := SelectWithOptions(ctx, f.ds, f.dist, q.opts)
		if err != nil {
			t.Fatalf("%s one-shot: %v", label, err)
		}
		cold, err := e.SelectWithOptions(ctx, q.dataset, q.opts)
		if err != nil {
			t.Fatalf("%s cold: %v", label, err)
		}
		if cold.Cached {
			t.Fatalf("%s: cold query reported Cached", label)
		}
		assertResultEqual(t, label+" cold", cold, want)
		warm, err := e.SelectWithOptions(ctx, q.dataset, q.opts)
		if err != nil {
			t.Fatalf("%s warm: %v", label, err)
		}
		if !warm.Cached {
			t.Fatalf("%s: warm query not served from result cache", label)
		}
		assertResultEqual(t, label+" warm", warm, want)
	}

	for _, q := range engineEvalQueries {
		f := byName[q.dataset]
		opts := SelectOptions{Seed: 9, SampleSize: 120}
		want, err := EvaluateWithOptions(ctx, f.ds, f.dist, q.set, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := e.EvaluateWithOptions(ctx, q.dataset, q.set, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertMetricsEqual(t, q.dataset+" evaluate", got, want)
	}

	s := e.Stats()
	if s.ResultCache.Hits == 0 || s.ResultCache.Misses == 0 || s.PrepCache.Misses == 0 {
		t.Fatalf("caches never exercised: %+v", s)
	}
}

// TestEngineConcurrentStress is the serving-path race test: one Engine,
// mixed Select/Evaluate traffic across datasets and k values from many
// goroutines, every answer bit-identical to a fresh one-shot call. Run
// under -race in CI. It also pins the cache contracts: each distinct
// result is computed exactly once (singleflight dedup) no matter how
// many goroutines race for it cold, and a second concurrent sweep does
// no preprocessing work at all.
func TestEngineConcurrentStress(t *testing.T) {
	fixtures := engineFixtures(t)
	byName := map[string]engineFixture{}
	for _, f := range fixtures {
		byName[f.name] = f
	}
	queries := engineQueries()
	ctx := context.Background()

	// Ground truth from fresh one-shot calls.
	wantSelect := make([]*LegacyResult, len(queries))
	for i, q := range queries {
		f := byName[q.dataset]
		res, err := SelectWithOptions(ctx, f.ds, f.dist, q.opts)
		if err != nil {
			t.Fatal(err)
		}
		wantSelect[i] = res
	}
	evalOpts := SelectOptions{Seed: 9, SampleSize: 120}
	wantEval := make([]Metrics, len(engineEvalQueries))
	for i, q := range engineEvalQueries {
		f := byName[q.dataset]
		m, err := EvaluateWithOptions(ctx, f.ds, f.dist, q.set, evalOpts)
		if err != nil {
			t.Fatal(err)
		}
		wantEval[i] = m
	}

	e := newTestEngine(t, fixtures)
	const goroutines = 6
	sweep := func() {
		var start, wg sync.WaitGroup
		start.Add(1)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				start.Wait() // maximize cold-cache collisions
				for i := range queries {
					q := queries[(i+g)%len(queries)] // interleave differently per goroutine
					want := wantSelect[(i+g)%len(queries)]
					label := fmt.Sprintf("g%d %s/%s/k=%d", g, q.dataset, q.opts.Algorithm, q.opts.K)
					got, err := e.SelectWithOptions(ctx, q.dataset, q.opts)
					if err != nil {
						t.Errorf("%s: %v", label, err)
						return
					}
					assertResultEqual(t, label, got, want)
				}
				for i, q := range engineEvalQueries {
					m, err := e.EvaluateWithOptions(ctx, q.dataset, q.set, evalOpts)
					if err != nil {
						t.Errorf("g%d evaluate %s: %v", g, q.dataset, err)
						return
					}
					assertMetricsEqual(t, fmt.Sprintf("g%d evaluate %s", g, q.dataset), m, wantEval[i])
				}
			}(g)
		}
		start.Done()
		wg.Wait()
	}

	sweep()
	cold := e.Stats()
	// Singleflight dedup: every distinct result was computed exactly once
	// even though 6 goroutines raced for it from a cold cache; everyone
	// else either coalesced onto the in-flight computation or hit the
	// stored entry.
	if got, want := cold.ResultCache.Misses, uint64(len(queries)); got != want {
		t.Fatalf("result fills = %d, want exactly %d (singleflight dedup)", got, want)
	}
	totalSelects := uint64(goroutines * len(queries))
	if got := cold.ResultCache.Hits + cold.ResultCache.Coalesced + cold.ResultCache.Misses; got != totalSelects {
		t.Fatalf("hits(%d) + coalesced(%d) + misses(%d) = %d, want %d",
			cold.ResultCache.Hits, cold.ResultCache.Coalesced, cold.ResultCache.Misses, got, totalSelects)
	}
	if cold.PrepCache.Misses == 0 {
		t.Fatal("no preprocessing artifacts were built")
	}
	if cold.Selects != totalSelects || cold.Evaluates != uint64(goroutines*len(engineEvalQueries)) {
		t.Fatalf("query counters %+v", cold)
	}

	sweep()
	warm := e.Stats()
	// Warm sweep: zero new fills anywhere — no preprocessing re-run, no
	// re-materialized matrices, every Select answered from the result
	// cache.
	if warm.PrepCache.Misses != cold.PrepCache.Misses {
		t.Fatalf("warm sweep rebuilt preprocessing: %d fills vs %d", warm.PrepCache.Misses, cold.PrepCache.Misses)
	}
	if warm.ResultCache.Misses != cold.ResultCache.Misses {
		t.Fatalf("warm sweep recomputed results: %d fills vs %d", warm.ResultCache.Misses, cold.ResultCache.Misses)
	}
	if warm.ResultCache.Hits <= cold.ResultCache.Hits {
		t.Fatalf("warm sweep produced no result-cache hits: %+v", warm.ResultCache)
	}
}

// TestEngineFailFast: invalid requests are rejected by the shared
// normalization before any cache or preprocessing work happens.
func TestEngineFailFast(t *testing.T) {
	fixtures := engineFixtures(t)
	e := newTestEngine(t, fixtures)
	ctx := context.Background()

	cases := []struct {
		name string
		opts SelectOptions
	}{
		{"k zero", SelectOptions{K: 0}},
		{"k too large", SelectOptions{K: 10_000}},
		{"bad epsilon", SelectOptions{K: 3, Epsilon: 2}},
		{"bad sigma", SelectOptions{K: 3, Sigma: -0.5}},
		{"negative sample size", SelectOptions{K: 3, SampleSize: -1}},
		{"unknown algorithm", SelectOptions{K: 3, Algorithm: Algorithm(99)}},
		{"exact discrete on continuous", SelectOptions{K: 3, ExactDiscrete: true}},
	}
	for _, tc := range cases {
		if _, err := e.SelectWithOptions(ctx, "hotels", tc.opts); !errors.Is(err, ErrBadOptions) {
			t.Fatalf("%s: err = %v, want ErrBadOptions", tc.name, err)
		}
	}
	if _, err := e.SelectWithOptions(ctx, "nope", SelectOptions{K: 3}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset: %v", err)
	}
	if _, err := e.EvaluateWithOptions(ctx, "hotels", []int{1, 1}, SelectOptions{SampleSize: 50}); !errors.Is(err, ErrInvalidSet) {
		t.Fatalf("invalid set: %v", err)
	}
	s := e.Stats()
	if s.PrepCache.Misses != 0 || s.ResultCache.Misses != 0 {
		t.Fatalf("bad requests reached the caches: %+v", s)
	}

	if err := e.Register("hotels", fixtures[0].ds, fixtures[0].dist); !errors.Is(err, ErrDuplicateDataset) {
		t.Fatalf("duplicate register: %v", err)
	}
	e.Close()
	if _, err := e.SelectWithOptions(ctx, "hotels", SelectOptions{K: 3}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("closed engine select: %v", err)
	}
	if _, err := e.EvaluateWithOptions(ctx, "hotels", []int{0}, SelectOptions{}); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("closed engine evaluate: %v", err)
	}
	if err := e.Register("x", fixtures[0].ds, fixtures[0].dist); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("closed engine register: %v", err)
	}
}

// TestEngineResultIsolation: mutating a returned Result must not corrupt
// the cache.
func TestEngineResultIsolation(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	opts := SelectOptions{K: 5, Seed: 9, SampleSize: 120}
	first, err := e.SelectWithOptions(ctx, "hotels", opts)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int(nil), first.Indices...)
	first.Indices[0] = -999
	first.Labels[0] = "corrupted"
	first.Metrics.Percentiles[0] = -1
	second, err := e.SelectWithOptions(ctx, "hotels", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if second.Indices[i] != want[i] {
			t.Fatalf("cache corrupted through returned pointer: %v, want %v", second.Indices, want)
		}
	}
	if second.Metrics.Percentiles[0] < 0 {
		t.Fatal("metrics corrupted through returned pointer")
	}
}

// TestEngineCachePolicyKnobs: EngineConfig's TTL and byte-budget options
// reach the caches and surface in Stats (and therefore in /v1/stats).
func TestEngineCachePolicyKnobs(t *testing.T) {
	fixtures := engineFixtures(t)
	e := NewEngine(EngineConfig{
		ResultCacheTTL:   30 * time.Millisecond,
		ResultCacheBytes: 1 << 20,
		PrepCacheBytes:   64 << 20,
	})
	t.Cleanup(e.Close)
	for _, f := range fixtures {
		if err := e.Register(f.name, f.ds, f.dist); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	q := Query{Dataset: "hotels", K: 3, Seed: 1, SampleSize: 80}
	if _, _, err := e.Select(ctx, q, Exec{}); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.ResultCache.TTL != 30*time.Millisecond || s.ResultCache.MaxBytes != 1<<20 {
		t.Fatalf("result cache policy not surfaced: %+v", s.ResultCache)
	}
	if s.PrepCache.MaxBytes != 64<<20 {
		t.Fatalf("prep cache policy not surfaced: %+v", s.PrepCache)
	}
	if s.ResultCache.Bytes <= 0 {
		t.Fatalf("result entry has no size estimate: %+v", s.ResultCache)
	}

	// Warm within the TTL…
	warm, _, err := e.Select(ctx, q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Cached {
		t.Fatal("within-TTL query missed the cache")
	}
	// …expired after it: the answer is recomputed (bit-identically).
	time.Sleep(80 * time.Millisecond)
	expired, _, err := e.Select(ctx, q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	if expired.Cached {
		t.Fatal("expired entry still served as a hit")
	}
	if e.Stats().ResultCache.Expired == 0 {
		t.Fatal("expiry not counted")
	}
	for i := range warm.Indices {
		if expired.Indices[i] != warm.Indices[i] {
			t.Fatalf("recomputed answer differs: %v vs %v", expired.Indices, warm.Indices)
		}
	}
}

// TestEngineStatsBatchSnapshotInvariants: Stats snapshots taken while
// batches are in flight must never show the documented cross-counter
// inequalities torn — BatchQueries bounds Batches, PlannedDedups, and
// PlanGroups in every snapshot, because SelectBatch orders its
// increments and Stats orders its loads. Run under -race.
func TestEngineStatsBatchSnapshotInvariants(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Batches with a planned duplicate (two equal members) so
				// PlannedDedups moves alongside BatchQueries/PlanGroups.
				q := Query{Dataset: "tiny", K: 2 + (i+g)%2, Seed: uint64(g), SampleSize: 40}
				if _, err := e.SelectBatch(ctx, []Query{q, q, {Dataset: "tiny", K: 4, Seed: uint64(g), SampleSize: 40}}, Exec{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	deadline := time.Now().Add(500 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := e.Stats()
		if s.Batches > s.BatchQueries {
			t.Fatalf("torn snapshot: Batches %d > BatchQueries %d", s.Batches, s.BatchQueries)
		}
		if s.PlannedDedups > s.BatchQueries {
			t.Fatalf("torn snapshot: PlannedDedups %d > BatchQueries %d", s.PlannedDedups, s.BatchQueries)
		}
		if s.PlanGroups > s.BatchQueries {
			t.Fatalf("torn snapshot: PlanGroups %d > BatchQueries %d", s.PlanGroups, s.BatchQueries)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced, the exact relations hold: 3 members and 1 dedup per batch.
	s := e.Stats()
	if s.BatchQueries != 3*s.Batches {
		t.Fatalf("quiesced: BatchQueries %d != 3×Batches %d", s.BatchQueries, s.Batches)
	}
	if s.PlannedDedups != s.Batches {
		t.Fatalf("quiesced: PlannedDedups %d != Batches %d", s.PlannedDedups, s.Batches)
	}
}

// TestLegacyShimCarriesQueueWait pins the v1 shim's frozen contract: a
// result-cache hit now reports its own near-zero execution with the
// filler's Telemetry under Replay, and the shim folds the replay back
// so the LegacyResult still carries the computing execution's timings
// (QueueWait = the hit's own wait, zero on a pure hit, plus the
// replayed wait) — exactly what v1 always reported.
func TestLegacyShimCarriesQueueWait(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()

	opts := SelectOptions{K: 5, Seed: 9, SampleSize: 120}
	q, exec := opts.Split()
	q.Dataset = "hotels"
	_, tel, err := e.Select(ctx, q, exec)
	if err != nil {
		t.Fatal(err)
	}

	legacy, err := e.SelectWithOptions(ctx, "hotels", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !legacy.Cached {
		t.Fatal("second equivalent query missed the result cache")
	}
	if legacy.QueueWait != tel.QueueWait {
		t.Fatalf("legacy QueueWait %v != replayed telemetry QueueWait %v (shim drops the counter)",
			legacy.QueueWait, tel.QueueWait)
	}
	if legacy.Preprocess != tel.Preprocess || legacy.Query != tel.Query {
		t.Fatalf("legacy timings (%v, %v) != replayed telemetry (%v, %v)",
			legacy.Preprocess, legacy.Query, tel.Preprocess, tel.Query)
	}
}

// TestExecWeightIsExecutionPolicyOnly: the per-tenant weight override
// must never change an answer — only grant order. Equal queries at
// different weights share one result-cache entry and return identical
// selections.
func TestExecWeightIsExecutionPolicyOnly(t *testing.T) {
	e := newTestEngine(t, engineFixtures(t))
	ctx := context.Background()
	q := Query{Dataset: "hotels", K: 4, Seed: 9, SampleSize: 120}

	base, _, err := e.Select(ctx, q, Exec{})
	if err != nil {
		t.Fatal(err)
	}
	weighted, _, err := e.Select(ctx, q, Exec{Weight: 32, Priority: PriorityLow})
	if err != nil {
		t.Fatal(err)
	}
	if !weighted.Cached {
		t.Fatal("weighted run missed the cache: Weight leaked into the query identity")
	}
	if len(base.Indices) != len(weighted.Indices) {
		t.Fatalf("selection sizes differ: %d vs %d", len(base.Indices), len(weighted.Indices))
	}
	for i := range base.Indices {
		if base.Indices[i] != weighted.Indices[i] {
			t.Fatalf("selections differ at %d: %v vs %v", i, base.Indices, weighted.Indices)
		}
	}
}
