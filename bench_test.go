package fam

// This file hosts one benchmark per paper artifact (every table and figure
// of the evaluation section, see DESIGN.md §3) plus the A1–A5 ablations
// and micro-benchmarks of the core kernels. The experiment benchmarks run
// the corresponding internal/experiments runner at bench scale; use
// cmd/famexp for small/paper-scale sweeps with rendered tables.

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/regretlab/fam/internal/baseline"
	"github.com/regretlab/fam/internal/core"
	"github.com/regretlab/fam/internal/dataset"
	"github.com/regretlab/fam/internal/dp2d"
	"github.com/regretlab/fam/internal/experiments"
	"github.com/regretlab/fam/internal/geom"
	"github.com/regretlab/fam/internal/rng"
	"github.com/regretlab/fam/internal/sampling"
	"github.com/regretlab/fam/internal/skyline"
	"github.com/regretlab/fam/internal/utility"
)

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Scale: experiments.ScaleBench, Seed: 1}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(ctx, id, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Paper artifacts (Section V and Appendix B).

func BenchmarkTableII(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTableV(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkFig1(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)   { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)   { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)   { benchExperiment(b, "fig12") }

// Ablations (design choices called out in DESIGN.md).

func BenchmarkAblationShrinkStrategies(b *testing.B) { benchExperiment(b, "ablation1") }
func BenchmarkAblationLazyCounters(b *testing.B)     { benchExperiment(b, "ablation2") }
func BenchmarkAblationIntegration(b *testing.B)      { benchExperiment(b, "ablation3") }
func BenchmarkAblationSkyline(b *testing.B)          { benchExperiment(b, "ablation4") }
func BenchmarkAblationMRR(b *testing.B)              { benchExperiment(b, "ablation5") }
func BenchmarkAblationAddVsShrink(b *testing.B)      { benchExperiment(b, "ablation6") }

// Micro-benchmarks of the core kernels.

func benchInstance(b *testing.B, n, d, N int) *core.Instance {
	b.Helper()
	g := rng.New(7)
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		g.UniformVec(p)
		pts[i] = p
	}
	dist, err := utility.NewUniformSimplexLinear(d)
	if err != nil {
		b.Fatal(err)
	}
	funcs, err := sampling.Sample(dist, N, g)
	if err != nil {
		b.Fatal(err)
	}
	in, err := core.NewInstance(pts, funcs, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkGreedyShrinkDelta(b *testing.B) {
	for _, size := range []struct{ n, N int }{{200, 1000}, {1000, 2000}} {
		b.Run(fmt.Sprintf("n=%d/N=%d", size.n, size.N), func(b *testing.B) {
			in := benchInstance(b, size.n, 6, size.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.GreedyShrink(context.Background(), in, 10, core.StrategyDelta); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkGreedyShrinkLazy(b *testing.B) {
	in := benchInstance(b, 200, 6, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.GreedyShrink(context.Background(), in, 10, core.StrategyLazy); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyShrinkNaive(b *testing.B) {
	in := benchInstance(b, 200, 6, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.GreedyShrink(context.Background(), in, 10, core.StrategyNaive); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyAdd(b *testing.B) {
	in := benchInstance(b, 1000, 6, 2000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.GreedyAdd(context.Background(), in, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel query-engine benchmarks: paper-scale instances (n ≥ 10k points,
// N = 691 sampled users — the Theorem 4 sample size at ε = σ = 0.1) swept
// across worker counts. The instance is built once; only the query phase
// (the solver) is timed, so the workers=1 row is the serial baseline the
// speedup is measured against. Selections are bit-identical across rows.

// parallelBenchInstance builds the shared n=10k instance once per process.
func parallelBenchInstance(b *testing.B) *core.Instance {
	b.Helper()
	parallelBenchOnce.Do(func() {
		parallelBenchIn = benchInstance(b, 10_000, 6, 691)
	})
	if parallelBenchIn == nil {
		b.Fatal("parallel bench instance failed to build")
	}
	return parallelBenchIn
}

var (
	parallelBenchOnce sync.Once
	parallelBenchIn   *core.Instance
)

func benchWorkerSweep(b *testing.B, run func(b *testing.B, in *core.Instance)) {
	b.Helper()
	in := parallelBenchInstance(b)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			in.SetParallelism(workers)
			defer in.SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			run(b, in)
		})
	}
}

func BenchmarkGreedyShrinkDeltaParallel(b *testing.B) {
	benchWorkerSweep(b, func(b *testing.B, in *core.Instance) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.GreedyShrink(context.Background(), in, 9500, core.StrategyDelta); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGreedyShrinkLazyParallel(b *testing.B) {
	benchWorkerSweep(b, func(b *testing.B, in *core.Instance) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.GreedyShrink(context.Background(), in, 9500, core.StrategyLazy); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGreedyAddParallelWorkers(b *testing.B) {
	benchWorkerSweep(b, func(b *testing.B, in *core.Instance) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.GreedyAdd(context.Background(), in, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The naive strategy is quadratic per iteration, so its sweep runs on a
// smaller instance (still the full worker fan-out per candidate).
func BenchmarkGreedyShrinkNaiveParallel(b *testing.B) {
	in := benchInstance(b, 400, 6, 691)
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			in.SetParallelism(workers)
			defer in.SetParallelism(0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.GreedyShrink(context.Background(), in, 395, core.StrategyNaive); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The exact DP and the SKY-DOM baseline complete the parallel story: both
// sweeps run on n=10k datasets. The DP instance pins its skyline size with
// a quarter-circle front (the DP is O(k·m³) in the skyline size m, so an
// uncontrolled anticorrelated skyline would blow the budget) over 9840
// dominated fill points; SKY-DOM runs on an independent 6-d cloud whose
// ~500-point skyline drives both sharded loops. Selections are
// bit-identical across worker counts — only the wall clock moves.

// dp2dBenchPoints builds n 2-d points whose skyline is exactly the m
// front points on a quarter circle.
func dp2dBenchPoints(n, m int) [][]float64 {
	g := rng.New(17)
	pts := make([][]float64, 0, n)
	lo, hi := 0.05, 1.5207 // keep tangents finite and positive
	for i := 0; i < m; i++ {
		th := lo + (hi-lo)*float64(i)/float64(m-1)
		pts = append(pts, []float64{math.Cos(th), math.Sin(th)})
	}
	for len(pts) < n {
		th := lo + (hi-lo)*g.Float64()
		s := 0.5 + 0.2*g.Float64() // well inside the front: always dominated
		pts = append(pts, []float64{s * math.Cos(th), s * math.Sin(th)})
	}
	return pts
}

func BenchmarkDP2DParallel(b *testing.B) {
	pts := dp2dBenchPoints(10_000, 160)
	const k = 6
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := dp2d.SolveOpts(context.Background(), pts, k, dp2d.Options{Parallelism: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSkyDomParallel(b *testing.B) {
	ds, err := dataset.Synthetic(10_000, 6, dataset.Independent, 3)
	if err != nil {
		b.Fatal(err)
	}
	const k = 10
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := baseline.SkyDom(context.Background(), ds.Points, k, workers, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The batched lazy refresh changes work counts, not selections; sweep the
// batch size at a fixed worker count to expose the trade-off.
func BenchmarkGreedyShrinkLazyBatch(b *testing.B) {
	in := parallelBenchInstance(b)
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			in.SetParallelism(8)
			in.SetLazyBatch(batch)
			defer func() {
				in.SetParallelism(0)
				in.SetLazyBatch(0)
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.GreedyShrink(context.Background(), in, 9500, core.StrategyLazy); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkARREvaluation(b *testing.B) {
	in := benchInstance(b, 1000, 6, 2000)
	set := []int{1, 50, 200, 500, 900}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := in.ARR(set); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSkylineCompute(b *testing.B) {
	for _, corr := range []dataset.Correlation{dataset.Independent, dataset.Anticorrelated} {
		b.Run(corr.String(), func(b *testing.B) {
			ds, err := dataset.Synthetic(5000, 6, corr, 3)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := skyline.Compute(ds.Points); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRegretIntegralClosedForm(b *testing.B) {
	sel := []float64{0.3, 0.4}
	best := []float64{0.8, 0.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		geom.RegretIntegral(sel, best, 0.1, 3.5)
	}
}

func BenchmarkRegretIntegralSimpson(b *testing.B) {
	sel := []float64{0.3, 0.4}
	best := []float64{0.8, 0.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		geom.RegretIntegralSimpson(sel, best, 0.1, 3.5)
	}
}

// BenchmarkCoresetKernel sweeps the ε-kernel coreset prepass and the
// cache-blocked evaluation kernel across the paper's n regimes. Each op
// is a full one-shot Select (skyline + sampling + coreset + solver), so
// the rows show where the prepass pays: at 10⁶ the unpruned
// GREEDY-SHRINK family is infeasible (the skyline alone leaves thousands
// of candidates on anticorrelated data and the utility matrix exceeds
// the cache budget), so only coreset-on rows run there. famexp
// -kernel-bench runs the same sweep with solver/preprocess timing split
// and emits the gated BENCH_kernel.json.
func BenchmarkCoresetKernel(b *testing.B) {
	for _, sc := range []struct {
		n    int
		corr Correlation
	}{{10_000, Anticorrelated}, {100_000, Anticorrelated}, {1_000_000, Independent}} {
		ds, err := Synthetic(sc.n, 4, sc.corr, 1)
		if err != nil {
			b.Fatal(err)
		}
		dist, err := UniformLinear(ds.Dim())
		if err != nil {
			b.Fatal(err)
		}
		for _, coreset := range []bool{false, true} {
			if !coreset && sc.n >= 1_000_000 {
				continue
			}
			b.Run(fmt.Sprintf("n=%d/coreset=%t", sc.n, coreset), func(b *testing.B) {
				q := Query{Data: ds, Dist: dist, K: 10, Algorithm: GreedyShrinkLazy,
					SampleSize: 200, Seed: 1, Coreset: coreset}
				res, _, err := Select(context.Background(), q, Exec{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.SkylineSize), "skyline")
				if coreset {
					b.ReportMetric(float64(res.CoresetSize), "candidates")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := Select(context.Background(), q, Exec{}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkSelectEndToEnd(b *testing.B) {
	ds, err := Hotels(500, 5)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := UniformLinear(ds.Dim())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectWithOptions(context.Background(), ds, dist, SelectOptions{K: 8, Seed: 1, SampleSize: 2000}); err != nil {
			b.Fatal(err)
		}
	}
}
