// Command batch walks through the batched serving surface: one Engine,
// one k-sweep issued as a single SelectBatch call — the access pattern
// of the paper's Figures 5–8, where every algorithm is evaluated across
// a range of k on one dataset.
//
// The point of the batch layer is amortization, made possible by the
// Query/Exec split: each member Query is purely semantic, so the Engine
// can see that the whole sweep shares one (dataset, seed, sample-size)
// preprocessing pass — the skyline index, the sampled utility functions,
// and the materialized utility matrix are each built exactly once —
// while the member query phases fan out concurrently over the shared
// worker pool. The answers are bit-identical to issuing the queries one
// at a time.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()
	ds, err := fam.Synthetic(5000, 4, fam.Anticorrelated, 1)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		log.Fatal(err)
	}

	engine := fam.NewEngine(fam.EngineConfig{})
	defer engine.Close()
	if err := engine.Register("catalog", ds, dist); err != nil {
		log.Fatal(err)
	}

	// The sweep: k = 2..16 on one dataset with one seed. Every member is
	// a pure problem statement — no worker counts, no batching knobs.
	var sweep []fam.Query
	for k := 2; k <= 16; k += 2 {
		sweep = append(sweep, fam.Query{Dataset: "catalog", K: k, Seed: 7, SampleSize: 500})
	}

	// One call answers the panel; the Exec applies to the whole batch.
	slots, err := engine.SelectBatch(ctx, sweep, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("k-sweep over %d points (anticorrelated, 4-d, Θ = uniform linear)\n\n", ds.N())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tavg regret\trr@99%\tquery time")
	for i, slot := range slots {
		if slot.Err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", sweep[i].K, slot.Err)
			continue
		}
		m := slot.Result.Metrics
		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%v\n", sweep[i].K, m.ARR, m.Percentiles[4], slot.Telemetry.Query)
	}
	w.Flush()

	// The receipt: the whole sweep paid for preprocessing once.
	s := engine.Stats()
	fmt.Printf("\n%d member queries, %d preprocessing fills (skyline + sampled Θ + utility matrix — one pass)\n",
		s.BatchQueries, s.PrepCache.Misses)

	// Re-running any member is a result-cache hit at any execution
	// policy, because results are keyed on the semantic Query alone.
	again, _, err := engine.Select(ctx, sweep[0], fam.Exec{Parallelism: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-running k=%d at Parallelism=1: cached=%v (the batch filled it at full width)\n",
		sweep[0].K, again.Cached)
}
