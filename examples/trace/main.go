// Command trace walks through end-to-end query tracing: the same
// selection query run twice under a traced context, with the two span
// trees printed side by side.
//
// The first (cold) run misses the result cache and its tree shows the
// whole pipeline — admission, cache lookup, the fill with its prepare
// and solve phases, and one "round" span per solver iteration. The
// second (warm) run hits the cache, so its tree collapses to the
// lookup: traces always describe the execution that returned them,
// never a replay of the filler's. The filler's timings still ride
// along, under Telemetry.Replay.
//
// The serve layer arms tracing from the X-Fam-Trace / traceparent
// headers (or exec.trace in a v2 body); in-process callers arm it
// with fam.TraceContext, as here. An unarmed context skips all of
// this at zero allocation cost.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	fam "github.com/regretlab/fam"
)

func main() {
	ds, err := fam.Hotels(400, 4)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		log.Fatal(err)
	}
	engine := fam.NewEngine(fam.EngineConfig{})
	defer engine.Close()
	if err := engine.Register("hotels", ds, dist); err != nil {
		log.Fatal(err)
	}

	q := fam.Query{Dataset: "hotels", K: 5, Seed: 9, SampleSize: 200}
	ctx := fam.TraceContext(context.Background(), "") // fresh trace ID per call

	_, cold, err := engine.Select(ctx, q, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	res, warm, err := engine.Select(fam.TraceContext(context.Background(), ""), q, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Cached || warm.Replay == nil {
		log.Fatal("second run should have hit the result cache")
	}

	fmt.Printf("cold trace %s\nwarm trace %s\n\n", cold.Trace.TraceID, warm.Trace.TraceID)
	sideBySide(render(cold.Trace), render(warm.Trace))
	fmt.Printf("\nwarm query time %v; the filler's, replayed: %v\n",
		warm.Query, warm.Replay.Query)
}

// render flattens a span tree into indented "name attrs dur" lines,
// compressing the solver's round spans (one line per iteration) into
// a single summary line to keep the cold tree readable.
func render(sp *fam.TraceSpan) []string {
	var lines []string
	var walk func(s *fam.TraceSpan, depth int)
	walk = func(s *fam.TraceSpan, depth int) {
		lines = append(lines, strings.Repeat("  ", depth)+label(s))
		rounds := 0
		for _, ch := range s.Children {
			if ch.Name == "round" {
				rounds++
				continue
			}
			walk(ch, depth+1)
		}
		if rounds > 0 {
			lines = append(lines, fmt.Sprintf("%sround ×%d",
				strings.Repeat("  ", depth+1), rounds))
		}
	}
	walk(sp, 0)
	return lines
}

func label(s *fam.TraceSpan) string {
	parts := []string{s.Name}
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		v := s.Attrs[k]
		if len(v) > 24 {
			v = v[:21] + "..."
		}
		parts = append(parts, k+"="+v)
	}
	parts = append(parts, fmt.Sprintf("(%v)", s.Dur.Round(s.Dur/100+1)))
	return strings.Join(parts, " ")
}

// sideBySide prints two line slices as columns: the cold tree on the
// left, the warm (cache-hit) tree on the right.
func sideBySide(left, right []string) {
	width := len("-- cold --")
	for _, l := range left {
		if len(l) > width {
			width = len(l)
		}
	}
	rows := len(left)
	if len(right) > rows {
		rows = len(right)
	}
	fmt.Printf("%-*s | %s\n", width, "-- cold --", "-- warm --")
	for i := 0; i < rows; i++ {
		var l, r string
		if i < len(left) {
			l = left[i]
		}
		if i < len(right) {
			r = right[i]
		}
		fmt.Printf("%-*s | %s\n", width, l, r)
	}
}
