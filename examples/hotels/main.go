// Command hotels reproduces the paper's motivating scenario (Section I) as
// a comparison study: a booking site must show k hotels to an anonymous
// visitor. It runs GREEDY-SHRINK against the three competitor algorithms
// and reports average regret ratio, regret-ratio spread across users, and
// query time — the axes of the paper's Figures 2, 3 and 6.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()
	hotels, err := fam.Hotels(500, 7)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(hotels.Dim())
	if err != nil {
		log.Fatal(err)
	}

	algos := []fam.Algorithm{fam.GreedyShrink, fam.MRRGreedy, fam.SkyDom, fam.KHit}
	const k = 8

	fmt.Printf("Showing %d of %d hotels to anonymous visitors (uniform linear preferences)\n\n", k, hotels.N())
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tavg regret\tstd dev\trr@90%\trr@99%\tmax rr\tquery time")
	for _, algo := range algos {
		res, tel, err := fam.Select(ctx, fam.Query{
			Data: hotels, Dist: dist, K: k, Seed: 11, SampleSize: 10000, Algorithm: algo,
		}, fam.Exec{})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		m := res.Metrics
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\t%v\n",
			algo, m.ARR, m.StdDev, m.Percentiles[2], m.Percentiles[4], m.MaxRR, tel.Query)
	}
	w.Flush()

	// Show what the winning selection looks like.
	res, _, err := fam.Select(ctx, fam.Query{Data: hotels, Dist: dist, K: k, Seed: 11, SampleSize: 10000}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGREEDY-SHRINK's %d hotels (each excels for a different kind of guest):\n", k)
	for i, idx := range res.Indices {
		p := hotels.Points[idx]
		fmt.Printf("  %-10s value=%.2f rating=%.2f location=%.2f amenities=%.2f quiet=%.2f\n",
			res.Labels[i], p[0], p[1], p[2], p[3], p[4])
	}
}
