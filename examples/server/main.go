// Command server demonstrates the fam serving stack end to end in one
// process: it starts a fam.Engine behind the famserve HTTP API on a
// loopback port, then plays the client — listing datasets, running the
// same selection twice (cold, then answered from the result cache),
// running a second query that reuses the cached preprocessing, scoring a
// hand-picked set, and reading the engine's cache statistics.
//
// Run it with:
//
//	go run ./examples/server
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Server side -------------------------------------------------
	// One Engine owns the worker pool and the caches; it serves every
	// dataset registered on it for the life of the process.
	engine := fam.NewEngine(fam.EngineConfig{})
	defer engine.Close()

	hotels, err := fam.Hotels(500, 42)
	if err != nil {
		return err
	}
	dist, err := fam.UniformLinear(hotels.Dim())
	if err != nil {
		return err
	}
	if err := engine.Register("hotels", hotels, dist); err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: serve.NewHandler(engine)}
	go srv.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	base := "http://" + ln.Addr().String()
	fmt.Println("famserve listening on", base)

	// --- Client side -------------------------------------------------
	var datasets serve.DatasetsResponse
	if err := get(base+"/v1/datasets", &datasets); err != nil {
		return err
	}
	for _, ds := range datasets.Datasets {
		fmt.Printf("dataset %q: %d points, %d attributes, Θ = %s\n", ds.Name, ds.N, ds.Dim, ds.Distribution)
	}

	// A cold query pays for preprocessing (skyline, sampling, utility
	// matrix) and the solve.
	req := serve.SelectRequest{Dataset: "hotels", K: 5, Seed: 7}
	var cold serve.SelectResponse
	if err := post(base+"/v1/select", req, &cold); err != nil {
		return err
	}
	fmt.Printf("\ncold select: %v (arr %.5f) in %.1fms preprocess + %.1fms query\n",
		cold.Labels, cold.Metrics.ARR, cold.PreprocessMS, cold.QueryMS)

	// The same query again is answered from the result cache.
	var warm serve.SelectResponse
	if err := post(base+"/v1/select", req, &warm); err != nil {
		return err
	}
	fmt.Printf("warm select: cached=%v, identical answer %v\n", warm.Cached, warm.Labels)

	// A different K on the same dataset skips preprocessing entirely:
	// the skyline, the sampled users, and the utility matrix are reused.
	req.K = 10
	var k10 serve.SelectResponse
	if err := post(base+"/v1/select", req, &k10); err != nil {
		return err
	}
	fmt.Printf("k=10 select: %d labels in %.1fms preprocess (cache-warm) + %.1fms query\n",
		len(k10.Labels), k10.PreprocessMS, k10.QueryMS)

	// Score a hand-picked set under the same sampled users.
	var ev serve.EvaluateResponse
	if err := post(base+"/v1/evaluate", serve.EvaluateRequest{
		Dataset: "hotels", Set: []int{0, 1, 2, 3, 4}, Seed: 7,
	}, &ev); err != nil {
		return err
	}
	fmt.Printf("evaluate [0..4]: arr %.5f (vs optimized %.5f)\n", ev.Metrics.ARR, cold.Metrics.ARR)

	var stats serve.StatsResponse
	if err := get(base+"/v1/stats", &stats); err != nil {
		return err
	}
	fmt.Printf("\nengine: %d selects, %d evaluates | result cache %d hits / %d fills | prep cache %d artifacts, %d reuses\n",
		stats.Engine.Selects, stats.Engine.Evaluates,
		stats.Engine.ResultCache.Hits, stats.Engine.ResultCache.Misses,
		stats.Engine.PrepCache.Entries, stats.Engine.PrepCache.Hits)
	return nil
}

func get(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func post(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decode(resp, out)
}

func decode(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err == nil && e.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return fmt.Errorf("unexpected status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
