// Command load walks through the open-loop load harness in-process:
// generate a seeded workload, run it against an Engine, build the
// fitness report, and demonstrate the replay-determinism guarantee
// that the famload CLI and the CI perf-trajectory job are built on.
//
// Open-loop means arrivals fire on schedule no matter how far the
// target has fallen behind — an overloaded engine sheds (fam.ErrShed)
// instead of silently slowing the generator down, so the shed rate
// and per-class completion rates in the report are honest measures of
// capacity. The same workload can be saved as a JSONL trace and
// replayed later (or recorded from live famserve traffic with its
// -trace flag) — sequential replay is deterministic per request.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/load"
)

func main() {
	ctx := context.Background()

	// A deliberately small engine so the workload below overloads it:
	// two workers serving a mixed-priority Poisson stream.
	newEngine := func() *fam.Engine {
		engine, _, err := load.BuildEngine(fam.EngineConfig{Workers: 2},
			"catalog=synthetic:2000:4:anticorrelated:3", 0)
		if err != nil {
			log.Fatal(err)
		}
		return engine
	}

	// The workload: 150 req/s of Poisson arrivals for 3 s, three
	// weighted templates — interactive high-priority k-sweeps, a
	// deadline-bounded low-priority class, and one template whose
	// deadline is already expired on arrival (always shed). This is
	// the same shape famload's -mix DSL expresses as
	// "ds=catalog,k=2-8,prio=high,w=3;...".
	spec := load.Spec{
		Rate:     150,
		Duration: 3 * time.Second,
		Arrival:  load.ArrivalPoisson,
		Seed:     7,
		Templates: []load.Template{
			{Weight: 3, Base: load.Request{Dataset: "catalog", SampleSize: 300, Priority: "high"}, Ks: []int{2, 3, 4, 5, 6, 7, 8}},
			{Weight: 1, Base: load.Request{Dataset: "catalog", SampleSize: 300, Priority: "low", DeadlineMS: 250}, Ks: []int{5, 9}},
			{Weight: 1, Base: load.Request{Dataset: "catalog", K: 4, SampleSize: 300, DeadlineMS: -1}},
		},
	}
	trace, err := spec.Generate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d requests over %s (seeded: rerunning gives the identical trace)\n",
		len(trace), spec.Duration)

	// Run it open-loop (paced) with a 1 s warmup window that is
	// generated and executed but excluded from every aggregate.
	engine := newEngine()
	before := engine.Stats()
	cfg := load.RunConfig{Warmup: time.Second, Paced: true}
	outcomes, wall, err := load.Run(ctx, &load.EngineTarget{Engine: engine}, trace, cfg)
	if err != nil {
		log.Fatal(err)
	}
	report := load.BuildReport("example", "engine", outcomes, wall, cfg.Warmup, cfg)
	caches := load.CacheRatesFrom(before, engine.Stats())
	report.Caches = &caches
	engine.Close()

	fmt.Printf("offered=%d completed=%d shed=%d errors=%d (always balances)\n",
		report.Offered, report.Completed, report.Shed, report.Errors)
	fmt.Printf("throughput=%.1f rps  p50=%.1fms p99=%.1fms  shed_rate=%.2f\n",
		report.ThroughputRPS, report.Latency.P50MS, report.Latency.P99MS, report.ShedRate)
	for class, cr := range report.Classes {
		fmt.Printf("  class %-7s offered=%-4d completion_rate=%.2f\n", class, cr.Offered, cr.CompletionRate)
	}
	fmt.Printf("jain fairness over completion rates: %.3f\n", report.JainIndex)

	// Replay determinism: the same trace run sequentially against two
	// freshly built engines yields byte-identical outcome sequences —
	// what CI's replay leg checks with cmp(1) on famload -outcomes.
	replay := func() (string, string) {
		e := newEngine()
		defer e.Close()
		outs, w, err := load.Run(ctx, &load.EngineTarget{Engine: e}, trace, load.RunConfig{})
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := load.WriteOutcomes(&buf, outs); err != nil {
			log.Fatal(err)
		}
		return load.BuildReport("replay", "engine", outs, w, 0, load.RunConfig{}).OutcomeHash, buf.String()
	}
	h1, o1 := replay()
	h2, o2 := replay()
	fmt.Printf("replay outcome hashes: %s vs %s (equal=%v, outcomes byte-identical=%v)\n",
		h1, h2, h1 == h2, o1 == o2)
}
