// Command recommender runs the paper's Yahoo!-music pipeline (Section
// V-B2) end to end on a simulated ratings corpus: sparse song ratings →
// matrix factorization (completing the ratings matrix) → a 5-component
// Gaussian mixture over user latent vectors (the learned, non-uniform,
// non-linear Θ) → GREEDY-SHRINK in the latent item space to pick the songs
// a new, anonymous listener should see.
package main

import (
	"context"
	"fmt"
	"log"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/dataset"
)

func main() {
	ctx := context.Background()

	// Simulated ratings: 400 listeners across 3 taste archetypes rate 500
	// songs, with 20% of the matrix observed.
	rd, err := dataset.SimulatedRatings(400, 500, 6, 3, 0.2, 0.05, 2011)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ratings corpus: %d users x %d songs, %d observed ratings (%.1f%% dense)\n",
		rd.NumUsers, rd.NumItems, len(rd.Ratings),
		100*float64(len(rd.Ratings))/float64(rd.NumUsers*rd.NumItems))

	// Learn Θ: matrix factorization, then a Gaussian mixture over user
	// latent vectors (the paper uses 5 components).
	pipe, err := fam.LearnDistribution(rd.Ratings, fam.RatingsPipelineConfig{
		NumUsers: rd.NumUsers,
		NumItems: rd.NumItems,
		Rank:     8,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Matrix factorization: rank %d, training RMSE %.4f\n", pipe.Model.Rank, pipe.TrainRMSE)
	fmt.Printf("Gaussian mixture over user vectors: %d components, log-likelihood %.1f after %d EM iterations\n",
		len(pipe.Mixture.Weights), pipe.Mixture.LogLik, pipe.Mixture.Iters)

	// Select 5 songs for an anonymous listener drawn from the learned Θ.
	const k = 5
	res, _, err := fam.Select(ctx, fam.Query{
		Data: pipe.Items, Dist: pipe.Dist, K: k, Seed: 7, SampleSize: 10000,
	}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSelected songs (latent-space indices): %v\n", res.Indices)
	fmt.Printf("Average regret ratio over the learned user population: %.6f\n", res.Metrics.ARR)
	fmt.Printf("Std dev %.6f; 95th percentile %.6f; max %.6f\n",
		res.Metrics.StdDev, res.Metrics.Percentiles[3], res.Metrics.MaxRR)

	// Sanity check against a naive popularity baseline: the k songs with
	// the highest average observed rating.
	popular := topByAverageRating(rd, k)
	m, err := fam.Evaluate(ctx, fam.Query{
		Data: pipe.Items, Dist: pipe.Dist, Seed: 7, SampleSize: 10000, ExplicitSet: popular,
	}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPopularity top-%d baseline: average regret ratio %.6f (FAM improves it by %.1f%%)\n",
		k, m.ARR, 100*(m.ARR-res.Metrics.ARR)/m.ARR)
}

// topByAverageRating returns the k items with the highest mean observed
// score.
func topByAverageRating(rd *dataset.RatingsData, k int) []int {
	sums := make([]float64, rd.NumItems)
	counts := make([]int, rd.NumItems)
	for _, r := range rd.Ratings {
		sums[r.Item] += r.Score
		counts[r.Item]++
	}
	type pair struct {
		item int
		avg  float64
	}
	pairs := make([]pair, rd.NumItems)
	for i := range pairs {
		avg := 0.0
		if counts[i] > 0 {
			avg = sums[i] / float64(counts[i])
		}
		pairs[i] = pair{i, avg}
	}
	for i := 0; i < k; i++ { // partial selection sort is plenty here
		best := i
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].avg > pairs[best].avg {
				best = j
			}
		}
		pairs[i], pairs[best] = pairs[best], pairs[i]
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = pairs[i].item
	}
	return out
}
