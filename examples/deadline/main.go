// Command deadline walks through the scheduling half of the Exec
// policy: a deadline-bounded, priority-tagged batch against a serving
// Engine.
//
// The Engine's worker pool grants helpers by a weighted
// earliest-deadline-first policy: under load, queued high-priority
// requests are served before earlier-arrived low-priority ones, and
// among requests of one class the earliest deadline goes first. A
// request whose deadline has already passed on arrival is shed by
// admission control (fam.ErrShed) without consuming any solver time —
// the back-pressure signal a saturated service sends instead of
// queueing work it can no longer finish in time. None of this ever
// changes an answer: scheduling decides when work runs, the Query
// decides what it computes.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()
	ds, err := fam.Synthetic(5000, 4, fam.Anticorrelated, 1)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		log.Fatal(err)
	}
	engine := fam.NewEngine(fam.EngineConfig{})
	defer engine.Close()
	if err := engine.Register("catalog", ds, dist); err != nil {
		log.Fatal(err)
	}

	// A deadline-bounded batch: the dashboard has 250 ms of budget for
	// this panel, and it is background work — low priority, so an
	// interactive query arriving meanwhile is granted helpers first.
	sweep := []fam.Query{
		{Dataset: "catalog", K: 4, Seed: 7, SampleSize: 300},
		{Dataset: "catalog", K: 8, Seed: 7, SampleSize: 300},
		{Dataset: "catalog", K: 12, Seed: 7, SampleSize: 300},
	}
	exec := fam.Exec{
		Priority: fam.PriorityLow,
		Deadline: time.Now().Add(250 * time.Millisecond),
	}
	slots, err := engine.SelectBatch(ctx, sweep, exec)
	if err != nil {
		// A batch whose deadline passed before it started is shed whole.
		if errors.Is(err, fam.ErrShed) {
			log.Fatal("batch shed by admission control — back off and retry")
		}
		log.Fatal(err)
	}
	for i, slot := range slots {
		if slot.Err != nil {
			fmt.Printf("k=%-3d error: %v\n", sweep[i].K, slot.Err)
			continue
		}
		fmt.Printf("k=%-3d arr=%.4f cached=%-5v waited=%v\n",
			sweep[i].K, slot.Result.Metrics.ARR, slot.Result.Cached,
			slot.Telemetry.QueueWait.Round(time.Microsecond))
	}

	// An interactive request rides ahead of queued batch work by class,
	// and its own deadline keeps it honest: if it cannot finish in time,
	// it stops with context.DeadlineExceeded instead of hogging helpers.
	res, tel, err := engine.Select(ctx,
		fam.Query{Dataset: "catalog", K: 5, Seed: 7, SampleSize: 300},
		fam.Exec{Priority: fam.PriorityHigh, Deadline: time.Now().Add(100 * time.Millisecond)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive k=5 arr=%.4f in %v\n",
		res.Metrics.ARR, (tel.Preprocess + tel.Query).Round(time.Microsecond))

	// A deadline that already passed never reaches a solver.
	_, _, err = engine.Select(ctx,
		fam.Query{Dataset: "catalog", K: 5, Seed: 7, SampleSize: 300},
		fam.Exec{Deadline: time.Now().Add(-time.Second)})
	fmt.Printf("expired deadline shed: %v\n", errors.Is(err, fam.ErrShed))

	stats := engine.Stats()
	fmt.Printf("sched policy=%s granted=%d shed(engine)=%d plan_groups=%d\n",
		stats.Sched.Policy, stats.Sched.Granted, stats.Shed, stats.PlanGroups)
}
