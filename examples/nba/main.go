// Command nba mirrors the paper's Section V-A study (Table II): from a
// 664-player, 22-statistic NBA-style dataset, build the three 5-player
// sets chosen by average regret ratio (GREEDY-SHRINK), maximum regret
// ratio (MRR-GREEDY) and the k-hit query, then compare them on the metrics
// a fan would care about: how well each set covers users with different
// tastes, and how the sets overlap. (The paper's human-survey and
// jersey-sales columns require real-world data and are documented as out
// of scope in EXPERIMENTS.md.)
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()
	players, err := fam.SimulatedNBA22(664, 2016)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(players.Dim())
	if err != nil {
		log.Fatal(err)
	}
	const k = 5
	query := func(a fam.Algorithm) fam.Query {
		return fam.Query{Data: players, Dist: dist, K: k, Seed: 3, SampleSize: 10000, Algorithm: a}
	}

	sArr, _, err := fam.Select(ctx, query(fam.GreedyShrink), fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	sMrr, _, err := fam.Select(ctx, query(fam.MRRGreedy), fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	sHit, _, err := fam.Select(ctx, query(fam.KHit), fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Three 5-player sets (structure of the paper's Table II):")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 3, ' ', 0)
	fmt.Fprintln(w, "S_arr (avg regret)\tS_mrr (max regret)\tS_k-hit")
	for i := 0; i < k; i++ {
		fmt.Fprintf(w, "%s\t%s\t%s\n", sArr.Labels[i], sMrr.Labels[i], sHit.Labels[i])
	}
	w.Flush()

	overlap := func(a, b []int) int {
		in := map[int]bool{}
		for _, x := range a {
			in[x] = true
		}
		c := 0
		for _, x := range b {
			if in[x] {
				c++
			}
		}
		return c
	}
	fmt.Printf("\nSet overlaps: |S_arr ∩ S_k-hit| = %d, |S_arr ∩ S_mrr| = %d (the paper observes the arr and k-hit sets nearly coincide while mrr diverges)\n",
		overlap(sArr.Indices, sHit.Indices), overlap(sArr.Indices, sMrr.Indices))

	fmt.Println("\nHow each set serves the fan population:")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "set\tavg regret\tstd dev\trr@99%\tmax rr")
	for _, row := range []struct {
		name string
		res  *fam.Result
	}{{"S_arr", sArr}, {"S_mrr", sMrr}, {"S_k-hit", sHit}} {
		m := row.res.Metrics
		fmt.Fprintf(w, "%s\t%.4f\t%.4f\t%.4f\t%.4f\n", row.name, m.ARR, m.StdDev, m.Percentiles[4], m.MaxRR)
	}
	w.Flush()
}
