// Command twodim demonstrates the exact 2-d machinery of the paper's
// Section IV: on a two-attribute catalogue (think price-value vs quality),
// the dynamic program computes the provably optimal selection under linear
// preferences with weights uniform on [0,1]², and GREEDY-SHRINK is
// measured against that ground truth — the study of the paper's Figure 1.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()

	// A catalogue with a genuine trade-off frontier (spherical
	// anticorrelation): being great on one attribute costs the other.
	ds, err := fam.Synthetic(5000, 2, fam.Spherical, 9)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformBoxLinear(2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Exact optimum (DP) vs GREEDY-SHRINK on a 2-d trade-off catalogue")
	fmt.Printf("n = %d points, Θ = linear with weights uniform on [0,1]²\n\n", ds.N())

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "k\tDP exact arr\tGS sampled arr\tGS/opt\tDP time\tGS time")
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7} {
		dp, dpTel, err := fam.Select(ctx, fam.Query{
			Data: ds, Dist: dist, K: k, Seed: 1, Algorithm: fam.DP2D, SampleSize: 20000,
		}, fam.Exec{})
		if err != nil {
			log.Fatal(err)
		}
		gs, gsTel, err := fam.Select(ctx, fam.Query{
			Data: ds, Dist: dist, K: k, Seed: 1, SampleSize: 20000,
		}, fam.Exec{})
		if err != nil {
			log.Fatal(err)
		}
		ratio := 1.0
		if dp.ExactARR > 1e-12 {
			ratio = gs.Metrics.ARR / dp.ExactARR
		}
		fmt.Fprintf(w, "%d\t%.5f\t%.5f\t%.2f\t%v\t%v\n",
			k, dp.ExactARR, gs.Metrics.ARR, ratio, dpTel.Query, gsTel.Query)
	}
	w.Flush()

	fmt.Println("\nThe DP value is exact (closed-form integration over the weight")
	fmt.Println("square); GREEDY-SHRINK's value is a Monte-Carlo estimate, so a")
	fmt.Println("ratio slightly below 1 reflects sampling error, not a better set.")
}
