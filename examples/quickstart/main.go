// Command quickstart is the smallest end-to-end use of the fam library:
// generate a hotel catalogue, assume nothing about users (uniform linear
// preferences), and pick the 5 hotels that minimize the average regret
// ratio of a random visitor.
package main

import (
	"context"
	"fmt"
	"log"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()

	// A catalogue of 200 hotels scored on value, rating, location,
	// amenities and quietness (all larger-is-better, normalized to [0,1]).
	hotels, err := fam.Hotels(200, 42)
	if err != nil {
		log.Fatal(err)
	}

	// No information about users: linear utilities with weights uniform on
	// the simplex.
	dist, err := fam.UniformLinear(hotels.Dim())
	if err != nil {
		log.Fatal(err)
	}

	// Pick 5 hotels with GREEDY-SHRINK (the default algorithm). Epsilon
	// and Sigma control the sampling bound of Theorem 4.
	// The Query is the problem statement; the Exec (empty here: all CPUs)
	// only tunes how fast it is solved.
	res, tel, err := fam.Select(ctx, fam.Query{
		Data:    hotels,
		Dist:    dist,
		K:       5,
		Epsilon: 0.05,
		Sigma:   0.1,
		Seed:    1,
	}, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("The 5 hotels to show a user we know nothing about:")
	for i, idx := range res.Indices {
		p := hotels.Points[idx]
		fmt.Printf("  %d. %-10s  value=%.2f rating=%.2f location=%.2f amenities=%.2f quiet=%.2f\n",
			i+1, res.Labels[i], p[0], p[1], p[2], p[3], p[4])
	}
	fmt.Printf("\nAverage regret ratio: %.4f (a random user's best shown hotel is within %.1f%% of their true favorite)\n",
		res.Metrics.ARR, 100*res.Metrics.ARR)
	fmt.Printf("99%% of users have regret ratio at most %.4f\n", res.Metrics.Percentiles[4])
	fmt.Printf("Skyline preprocessing reduced %d hotels to %d candidates; query took %v\n",
		hotels.N(), res.SkylineSize, tel.Query)
}
