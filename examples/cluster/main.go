// Command cluster demonstrates the fam scale-out tier end to end in
// one process: three famserve replicas (each its own engine and
// caches) behind a famrouter with the instance-key affinity policy.
// It plays the client through the router — the same selection three
// times (one cold fill, then result-cache hits), a scatter-gathered
// v2 batch, and a look at which replicas actually paid a
// preprocessing fill — then reruns the identical workload under
// round-robin on a fresh cluster to show the difference: affinity
// warms ONE replica where round-robin warms them all.
//
// Run it with:
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	fam "github.com/regretlab/fam"
	"github.com/regretlab/fam/internal/cluster"
	"github.com/regretlab/fam/serve"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("=== affinity: repeated queries pin to one warm replica ===")
	if err := demo(func(reg *cluster.Registry) cluster.Policy {
		return cluster.NewAffinity(reg.Replicas())
	}); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println("=== round-robin: the same workload cold-fills every replica ===")
	return demo(func(*cluster.Registry) cluster.Policy { return &cluster.RoundRobin{} })
}

func demo(newPolicy func(*cluster.Registry) cluster.Policy) error {
	// --- Replica side ------------------------------------------------
	// Three independent famserve handlers, each with its own engine,
	// worker pool, and (crucially) its own cold caches.
	const n = 3
	engines := make([]*fam.Engine, n)
	urls := make([]string, n)
	for i := range engines {
		engine := fam.NewEngine(fam.EngineConfig{})
		defer engine.Close()
		hotels, err := fam.Hotels(500, 42)
		if err != nil {
			return err
		}
		dist, err := fam.UniformLinear(hotels.Dim())
		if err != nil {
			return err
		}
		if err := engine.Register("hotels", hotels, dist); err != nil {
			return err
		}
		srv := httptest.NewServer(serve.NewHandler(engine))
		defer srv.Close()
		engines[i] = engine
		urls[i] = srv.URL
	}

	// --- Router side -------------------------------------------------
	// The registry tracks the membership; one synchronous health round
	// marks everyone routable before traffic arrives (a real deployment
	// runs checker.Start() for the periodic loop).
	reg, err := cluster.NewRegistry(urls)
	if err != nil {
		return err
	}
	checker := cluster.NewHealthChecker(reg, nil)
	checker.CheckOnce(context.Background())
	router := httptest.NewServer(cluster.NewRouter(reg, cluster.RouterConfig{Policy: newPolicy(reg)}))
	defer router.Close()

	// --- Client side -------------------------------------------------
	// The same query three times through the router. Under affinity the
	// first pays the preprocessing fill and the rest are result-cache
	// hits on the same replica; under round-robin each lands on a
	// different cold replica.
	query := map[string]any{"dataset": "hotels", "k": 8, "seed": 7}
	for i := 0; i < 3; i++ {
		var resp serve.SelectResponse
		if err := postJSON(router.URL+"/v1/select", query, &resp); err != nil {
			return err
		}
		fmt.Printf("select %d: arr=%.4f cached=%-5v preprocess=%.0fms\n",
			i+1, resp.Metrics.ARR, resp.Cached, resp.PreprocessMS)
	}

	// A v2 batch through scatter-gather: one sub-batch per instance
	// group, slots reassembled in order.
	batch := map[string]any{"queries": []map[string]any{
		{"dataset": "hotels", "k": 4, "seed": 7},
		{"dataset": "hotels", "k": 6, "seed": 7},
		{"dataset": "hotels", "k": 10, "seed": 7},
	}}
	var batchResp serve.BatchSelectResponse
	if err := postJSON(router.URL+"/v2/select", batch, &batchResp); err != nil {
		return err
	}
	for i, slot := range batchResp.Results {
		fmt.Printf("batch slot %d: k=%d arr=%.4f cached=%v\n", i, slot.K, slot.Metrics.ARR, slot.Cached)
	}

	// The receipts: which replicas paid a preprocessing fill?
	fills := 0
	for i, e := range engines {
		s := e.Stats()
		if s.PrepCache.Misses > 0 {
			fills++
		}
		fmt.Printf("replica %d: selects=%d prep_fills=%d result_hits=%d\n",
			i+1, s.Selects, s.PrepCache.Misses, s.ResultCache.Hits)
	}
	fmt.Printf("replicas that paid the cold preprocessing cost: %d of %d\n", fills, n)
	return nil
}

func postJSON(url string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
