// Command coreset walks through the ε-kernel candidate prepass at the
// n = 10⁶ scale the knob exists for.
//
// The coreset filter keeps a candidate iff it comes within ε of some
// sampled user's best utility. Every user's argmax survives, so the
// reported metrics stay database-level quantities; what the knob trades
// is solution quality — the selected set's ARR can degrade by at most
// CoresetEps — for a candidate set small enough that the GREEDY-SHRINK
// family runs comfortably at a million points.
//
// The walkthrough runs three variants over one synthetic 10⁶-point
// dataset:
//
//  1. skyline only (the default pipeline) — the baseline candidate set;
//  2. skyline + coreset — the prepass pruning the skyline further;
//  3. coreset only (DisableSkyline) — the prepass carrying all the
//     pruning, 10⁶ raw candidates down to a few ten-thousand, which is
//     the regime where the skyline itself is the preprocessing
//     bottleneck (anti-correlated data at scale).
//
// Then it sweeps CoresetEps on a smaller instance to show the
// quality/pruning dial. A candidate is dropped only when it is more
// than ε below best for every sampled user, so smaller ε sets a higher
// bar and prunes harder; what any ε can cost in ARR is bounded by ε.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	fam "github.com/regretlab/fam"
)

func main() {
	ctx := context.Background()
	const n = 1_000_000
	fmt.Printf("generating %d points (4-d, independent)...\n", n)
	ds, err := fam.Synthetic(n, 4, fam.Independent, 1)
	if err != nil {
		log.Fatal(err)
	}
	dist, err := fam.UniformLinear(ds.Dim())
	if err != nil {
		log.Fatal(err)
	}

	base := fam.Query{
		Data: ds, Dist: dist,
		K: 10, Algorithm: fam.GreedyShrinkLazy,
		SampleSize: 200, Seed: 1,
	}
	variants := []struct {
		label string
		mod   func(*fam.Query)
	}{
		{"skyline only", func(q *fam.Query) {}},
		{"skyline + coreset", func(q *fam.Query) { q.Coreset = true }},
		{"coreset only (no skyline)", func(q *fam.Query) { q.Coreset = true; q.DisableSkyline = true }},
	}
	for _, v := range variants {
		q := base
		v.mod(&q)
		start := time.Now()
		res, tel, err := fam.Select(ctx, q, fam.Exec{})
		if err != nil {
			log.Fatal(err)
		}
		candidates := res.SkylineSize
		if res.CoresetSize >= 0 {
			candidates = res.CoresetSize
		}
		fmt.Printf("%-26s candidates=%-6d (skyline %d)  preprocess=%-9v solve=%-9v ARR=%.6f  total=%v\n",
			v.label, candidates, res.SkylineSize,
			tel.Preprocess.Round(time.Millisecond), tel.Query.Round(time.Millisecond),
			res.Metrics.ARR, time.Since(start).Round(time.Millisecond))
	}

	// The ε dial on a smaller anti-correlated instance (big skylines are
	// where the prepass earns its keep): pruning strength rises as ε
	// shrinks, and the reported ARR never exceeds the ε-free answer by
	// more than ε.
	fmt.Println("\nCoresetEps sweep (n=50k anti-correlated, greedy-shrink-lazy):")
	small, err := fam.Synthetic(50_000, 4, fam.Anticorrelated, 1)
	if err != nil {
		log.Fatal(err)
	}
	sq := fam.Query{Data: small, Dist: dist, K: 10, Algorithm: fam.GreedyShrinkLazy, SampleSize: 200, Seed: 1}
	ref, _, err := fam.Select(ctx, sq, fam.Exec{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  eps=off   candidates=%-5d ARR=%.6f\n", ref.SkylineSize, ref.Metrics.ARR)
	for _, eps := range []float64{0.01, 0.05, 0.2} {
		q := sq
		q.Coreset, q.CoresetEps = true, eps
		res, tel, err := fam.Select(ctx, q, fam.Exec{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  eps=%-5g candidates=%-5d ARR=%.6f  (drift %+.6f ≤ eps)  solve=%v\n",
			eps, res.CoresetSize, res.Metrics.ARR, res.Metrics.ARR-ref.Metrics.ARR,
			tel.Query.Round(time.Millisecond))
	}
}
