package fam

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// BenchmarkEngineConcurrent measures the serving path: one Engine, a
// mixed query set (three k values on an n=10,000 anticorrelated 6-d
// dataset), and 1/4/8 concurrent clients.
//
//   - cold: a fresh Engine per iteration — every query pays
//     preprocessing (skyline, sampling, utility-matrix materialization)
//     once per artifact, concurrent clients deduped by singleflight.
//   - warm: a pre-warmed Engine — queries never touch preprocessing
//     (the benchmark asserts zero fills during the timed section) and
//     are answered from the result cache.
//
// The cold/warm gap is the amortization the Engine exists to provide.
func BenchmarkEngineConcurrent(b *testing.B) {
	ds, err := Synthetic(10_000, 6, Anticorrelated, 1)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := UniformLinear(ds.Dim())
	if err != nil {
		b.Fatal(err)
	}
	queries := []SelectOptions{
		{K: 5, Seed: 7, SampleSize: 200},
		{K: 10, Seed: 7, SampleSize: 200},
		{K: 10, Seed: 7, SampleSize: 200, Algorithm: GreedyAdd},
	}
	ctx := context.Background()

	runClients := func(b *testing.B, e *Engine, clients int) {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < len(queries); i++ {
					q := queries[(i+c)%len(queries)]
					if _, err := e.SelectWithOptions(ctx, "bench", q); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
	}

	for _, clients := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("cold/clients=%d", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				e := NewEngine(EngineConfig{})
				if err := e.Register("bench", ds, dist); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				runClients(b, e, clients)
				b.StopTimer()
				s := e.Stats()
				if s.PrepCache.Misses == 0 {
					b.Fatal("cold run did no preprocessing")
				}
				e.Close()
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("warm/clients=%d", clients), func(b *testing.B) {
			e := NewEngine(EngineConfig{})
			defer e.Close()
			if err := e.Register("bench", ds, dist); err != nil {
				b.Fatal(err)
			}
			runClients(b, e, clients) // warm every cache
			before := e.Stats()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runClients(b, e, clients)
			}
			b.StopTimer()
			after := e.Stats()
			// The acceptance contract: warm queries skip preprocessing
			// entirely — zero new fills, no re-materialized matrices.
			if after.PrepCache.Misses != before.PrepCache.Misses {
				b.Fatalf("warm run re-ran preprocessing: %d fills vs %d", after.PrepCache.Misses, before.PrepCache.Misses)
			}
			if after.ResultCache.Misses != before.ResultCache.Misses {
				b.Fatalf("warm run recomputed results: %d fills vs %d", after.ResultCache.Misses, before.ResultCache.Misses)
			}
			if after.ResultCache.Hits <= before.ResultCache.Hits {
				b.Fatal("warm run produced no cache hits")
			}
		})
	}
}

// BenchmarkEngineBatch measures the batched serving surface against a
// query-at-a-time loop on a k-sweep (the access pattern of the paper's
// Figures 5–8: every k on one dataset). The batch amortizes one
// preprocessing pass — the benchmark asserts the whole 8-query sweep
// performs exactly one skyline build, one function sampling, and one
// instance materialization — and fans the member query phases out over
// the shared pool.
func BenchmarkEngineBatch(b *testing.B) {
	ds, err := Synthetic(10_000, 6, Anticorrelated, 1)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := UniformLinear(ds.Dim())
	if err != nil {
		b.Fatal(err)
	}
	sweep := make([]Query, 8)
	for i := range sweep {
		sweep[i] = Query{Dataset: "bench", K: 2 + 2*i, Seed: 7, SampleSize: 200}
	}
	ctx := context.Background()

	b.Run("batch/k-sweep=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := NewEngine(EngineConfig{})
			if err := e.Register("bench", ds, dist); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			slots, err := e.SelectBatch(ctx, sweep, Exec{})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			for j, slot := range slots {
				if slot.Err != nil {
					b.Fatalf("slot %d: %v", j, slot.Err)
				}
			}
			// The acceptance contract: the sweep shares one preprocessing
			// pass (sky + funcs + instance = 3 fills, each exactly once).
			if s := e.Stats(); s.PrepCache.Misses != 3 {
				b.Fatalf("k-sweep did %d prep fills, want exactly 3 (one pass)", s.PrepCache.Misses)
			}
			e.Close()
			b.StartTimer()
		}
	})
	b.Run("loop/k-sweep=8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := NewEngine(EngineConfig{})
			if err := e.Register("bench", ds, dist); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, q := range sweep {
				if _, _, err := e.Select(ctx, q, Exec{}); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			e.Close()
			b.StartTimer()
		}
	})
}

// BenchmarkEngineBatchPlanned measures the batch planner on a
// duplicate-heavy panel: a k-sweep where every query appears twice (the
// shape of a dashboard fan-out where several tenants ask the same
// panel). The planner answers the duplicates by copying their leader's
// slot — zero solver work, exact PlannedDedups — and fills the shared
// preprocessing with one representative pass, no singleflight races.
func BenchmarkEngineBatchPlanned(b *testing.B) {
	ds, err := Synthetic(10_000, 6, Anticorrelated, 1)
	if err != nil {
		b.Fatal(err)
	}
	dist, err := UniformLinear(ds.Dim())
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]Query, 16)
	for i := 0; i < 8; i++ {
		q := Query{Dataset: "bench", K: 2 + 2*i, Seed: 7, SampleSize: 200}
		batch[2*i] = q
		batch[2*i+1] = q // exact duplicate — planner dedup, not a re-solve
	}
	ctx := context.Background()

	b.Run("planned/dup-sweep=16", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := NewEngine(EngineConfig{})
			if err := e.Register("bench", ds, dist); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			slots, err := e.SelectBatch(ctx, batch, Exec{})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			for j, slot := range slots {
				if slot.Err != nil {
					b.Fatalf("slot %d: %v", j, slot.Err)
				}
			}
			s := e.Stats()
			if s.PlannedDedups != 8 {
				b.Fatalf("planned dedups = %d, want 8", s.PlannedDedups)
			}
			if s.PrepCache.Misses != 3 || s.PrepCache.Coalesced != 0 {
				b.Fatalf("prep fills = %d coalesced = %d, want 3 and 0", s.PrepCache.Misses, s.PrepCache.Coalesced)
			}
			e.Close()
			b.StartTimer()
		}
	})
}
